#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/experiment.h"
#include "obs/flight_recorder.h"
#include "obs/json_writer.h"
#include "obs/metrics_registry.h"
#include "obs/prometheus.h"
#include "obs/stats_server.h"
#include "obs/telemetry.h"
#include "obs/trace_clock.h"
#include "obs/trace_merge.h"
#include "obs/trace_recorder.h"
#include "sim/time.h"

namespace massbft {
namespace {

// ------------------------------------------------------------------------
// Minimal recursive-descent JSON validator. The exporters promise
// syntactically valid JSON; this checks that promise without pulling in a
// parser dependency.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    if (!ParseValue()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't') return ParseLiteral("true");
    if (c == 'f') return ParseLiteral("false");
    if (c == 'n') return ParseLiteral("null");
    return ParseNumber();
  }
  bool ParseObject() {
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      if (!ParseString()) return false;
      if (!Consume(':')) return false;
      if (!ParseValue()) return false;
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }
  bool ParseArray() {
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      if (!ParseValue()) return false;
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }
  bool ParseString() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_])))
              return false;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // Unescaped control character.
      }
      ++pos_;
    }
    return false;
  }
  bool ParseLiteral(const char* lit) {
    size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return false;
    char* end = nullptr;
    std::string num = text_.substr(start, pos_ - start);
    std::strtod(num.c_str(), &end);
    return end != nullptr && *end == '\0';
  }

  const std::string& text_;
  size_t pos_ = 0;
};

bool IsValidJson(const std::string& text) {
  return JsonValidator(text).Valid();
}

// --------------------------------------------------------------- JsonWriter

TEST(JsonWriterTest, ObjectsArraysAndCommas) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.BeginObject();
  w.Member("a", 1);
  w.Member("b", "two");
  w.Key("c");
  w.BeginArray();
  w.Value(1.5);
  w.Value(true);
  w.Null();
  w.BeginObject();
  w.Member("nested", uint64_t{18446744073709551615ull});
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(out.str(),
            "{\"a\":1,\"b\":\"two\",\"c\":[1.5,true,null,"
            "{\"nested\":18446744073709551615}]}");
  EXPECT_TRUE(IsValidJson(out.str()));
}

TEST(JsonWriterTest, EscapesStrings) {
  EXPECT_EQ(obs::JsonWriter::Escape("plain"), "plain");
  EXPECT_EQ(obs::JsonWriter::Escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::JsonWriter::Escape("tab\there\n"), "tab\\there\\n");
  std::string ctrl(1, '\x01');
  EXPECT_EQ(obs::JsonWriter::Escape(ctrl), "\\u0001");

  std::ostringstream out;
  obs::JsonWriter w(out);
  w.BeginObject();
  w.Member("k\"ey", std::string("v\\1\n"));
  w.EndObject();
  EXPECT_TRUE(IsValidJson(out.str()));
}

TEST(JsonWriterTest, NumbersRoundTrip) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.BeginArray();
  w.Value(0.125);
  w.Value(int64_t{-7});
  w.Value(3.0);
  w.EndArray();
  EXPECT_TRUE(IsValidJson(out.str()));
  EXPECT_NE(out.str().find("0.125"), std::string::npos);
  EXPECT_NE(out.str().find("-7"), std::string::npos);
}

// --------------------------------------------------------- MetricsRegistry

TEST(MetricsRegistryTest, HandlesAreStableAndShared) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("net/wan_bytes_sent");
  obs::Counter* b = registry.GetCounter("net/wan_bytes_sent");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.counter_count(), 1u);

  a->Add(5);
  b->Add();
  EXPECT_EQ(a->value(), 6u);

  obs::Gauge* g = registry.GetGauge("net/util");
  EXPECT_EQ(g, registry.GetGauge("net/util"));
  g->Set(0.75);
  EXPECT_DOUBLE_EQ(g->value(), 0.75);

  obs::Histogram* h = registry.GetHistogram("pbft/prepare_ms");
  EXPECT_EQ(h, registry.GetHistogram("pbft/prepare_ms"));
  EXPECT_EQ(registry.gauge_count(), 1u);
  EXPECT_EQ(registry.histogram_count(), 1u);
}

TEST(MetricsRegistryTest, DisabledRegistryIgnoresWrites) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("c");
  obs::Histogram* h = registry.GetHistogram("h");
  registry.set_enabled(false);
  c->Add(10);
  h->Record(1.0);
  // New instruments created while disabled are disabled too.
  obs::Gauge* g = registry.GetGauge("g");
  g->Set(4.0);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);

  registry.set_enabled(true);
  c->Add(10);
  g->Set(4.0);
  EXPECT_EQ(c->value(), 10u);
  EXPECT_DOUBLE_EQ(g->value(), 4.0);
}

TEST(MetricsRegistryTest, ResetAllKeepsHandlesValid) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("c");
  obs::Histogram* h = registry.GetHistogram("h");
  c->Add(3);
  h->Record(2.0);
  registry.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  c->Add(1);
  EXPECT_EQ(c->value(), 1u);
  EXPECT_EQ(registry.GetCounter("c"), c);
}

TEST(HistogramTest, ExactStatsAndApproxPercentiles) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("h");
  EXPECT_DOUBLE_EQ(h->min(), 0.0);
  EXPECT_DOUBLE_EQ(h->max(), 0.0);
  EXPECT_DOUBLE_EQ(h->mean(), 0.0);
  EXPECT_DOUBLE_EQ(h->Percentile(0.5), 0.0);

  for (int i = 1; i <= 100; ++i) h->Record(static_cast<double>(i));
  EXPECT_EQ(h->count(), 100u);
  EXPECT_DOUBLE_EQ(h->sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h->min(), 1.0);
  EXPECT_DOUBLE_EQ(h->max(), 100.0);
  EXPECT_DOUBLE_EQ(h->mean(), 50.5);
  // Geometric buckets: percentile exact to within a factor of 2.
  double p50 = h->Percentile(0.5);
  EXPECT_GE(p50, 25.0);
  EXPECT_LE(p50, 128.0);
  double p99 = h->Percentile(0.99);
  EXPECT_GE(p99, 64.0);
  EXPECT_LE(p99, 256.0);
  EXPECT_LE(p50, p99);
}

TEST(MetricsRegistryTest, WriteJsonIsValidAndDeterministic) {
  obs::MetricsRegistry registry;
  registry.GetCounter("z/last")->Add(2);
  registry.GetCounter("a/first")->Add(1);
  registry.GetGauge("util")->Set(0.5);
  registry.GetHistogram("lat_ms")->Record(3.25);

  auto dump = [&registry]() {
    std::ostringstream out;
    obs::JsonWriter w(out);
    registry.WriteJson(w);
    return out.str();
  };
  std::string first = dump();
  EXPECT_TRUE(IsValidJson(first));
  EXPECT_NE(first.find("\"a/first\""), std::string::npos);
  EXPECT_NE(first.find("\"z/last\""), std::string::npos);
  EXPECT_NE(first.find("\"lat_ms\""), std::string::npos);
  // Sorted output: a/first serialized before z/last.
  EXPECT_LT(first.find("\"a/first\""), first.find("\"z/last\""));
  EXPECT_EQ(first, dump());
}

// ------------------------------------------------------------ TraceRecorder

TEST(TraceRecorderTest, DisabledByDefaultRecordsNothing) {
  obs::TraceRecorder trace;
  EXPECT_FALSE(trace.enabled());
  trace.RecordSpan(1, "cat", "name", 0, kMillisecond);
  trace.RecordInstant(1, "cat", "tick", kMillisecond);
  trace.RecordCounter(1, "depth", kMillisecond, 3.0);
  EXPECT_EQ(trace.event_count(), 0u);
}

TEST(TraceRecorderTest, RecordsAndClears) {
  obs::TraceRecorder trace;
  trace.set_enabled(true);
  trace.RecordSpan(7, "entry", "batching", kMillisecond, 3 * kMillisecond,
                   obs::TraceArgs{{{"gid", 1.0}, {"seq", 9.0}}});
  trace.RecordInstant(7, "client", "submit", 2 * kMillisecond);
  trace.RecordCounter(7, "queue", 2 * kMillisecond, 4.0);
  EXPECT_EQ(trace.event_count(), 3u);
  trace.Clear();
  EXPECT_EQ(trace.event_count(), 0u);
}

TEST(TraceRecorderTest, ChromeTraceExportIsValidJson) {
  obs::TraceRecorder trace;
  trace.set_enabled(true);
  trace.RegisterTrack(7, "g0/n3");
  trace.RegisterTrack(0x80000000u, "clients/g0");
  trace.RecordSpan(7, "entry", "local_consensus", kMillisecond,
                   5 * kMillisecond,
                   obs::TraceArgs{{{"gid", 0.0}, {"seq", 1.0}}});
  trace.RecordInstant(0x80000000u, "client", "submit", kMillisecond / 2);
  trace.RecordCounter(7, "inflight", 2 * kMillisecond, 2.0);

  std::ostringstream out;
  trace.WriteChromeTrace(out);
  std::string doc = out.str();
  EXPECT_TRUE(IsValidJson(doc));
  EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  // Track metadata precedes the span events.
  size_t meta = doc.find("thread_name");
  size_t span = doc.find("\"ph\":\"X\"");
  ASSERT_NE(meta, std::string::npos);
  ASSERT_NE(span, std::string::npos);
  EXPECT_LT(meta, span);
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(doc.find("local_consensus"), std::string::npos);
  EXPECT_NE(doc.find("g0/n3"), std::string::npos);
}

TEST(TraceRecorderTest, WriteChromeTraceFileRoundTrips) {
  obs::TraceRecorder trace;
  trace.set_enabled(true);
  trace.RecordSpan(1, "cat", "span", 0, kMillisecond);

  std::string path = testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(trace.WriteChromeTraceFile(path).ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_TRUE(IsValidJson(buf.str()));

  EXPECT_FALSE(
      trace.WriteChromeTraceFile("/no/such/dir/obs_test_trace.json").ok());
}

// ---------------------------------------------------------------- Telemetry

TEST(TelemetryTest, PhaseSpansFeedHistogramAndTrace) {
  obs::Telemetry tel;
  EXPECT_FALSE(tel.tracing());
  tel.RecordPhaseSpan(obs::Phase::kLocalConsensus, 7, kMillisecond,
                      5 * kMillisecond, 0, 1);
  const obs::Histogram& local = tel.phase(obs::Phase::kLocalConsensus);
  EXPECT_EQ(local.count(), 1u);
  EXPECT_DOUBLE_EQ(local.sum(), 4.0);  // Milliseconds.
  EXPECT_EQ(tel.trace().event_count(), 0u);  // Tracing off: no span.

  tel.set_tracing(true);
  tel.RecordPhaseSpan(obs::Phase::kLocalConsensus, 7, 0, 2 * kMillisecond, 0,
                      2);
  EXPECT_EQ(local.count(), 2u);
  EXPECT_DOUBLE_EQ(local.sum(), 6.0);
  EXPECT_EQ(tel.trace().event_count(), 1u);
}

TEST(TelemetryTest, PhaseNamesAndTracks) {
  EXPECT_STREQ(obs::PhaseName(obs::Phase::kBatching), "batching");
  EXPECT_STREQ(obs::PhaseName(obs::Phase::kGlobalReplication),
               "global_replication");
  // Phase histograms live in the registry under phase/<name>_ms.
  obs::Telemetry tel;
  EXPECT_EQ(tel.phase_histogram(obs::Phase::kEncode),
            tel.registry().GetHistogram("phase/encode_ms"));
  // Client tracks never collide with node tracks (high bit set).
  EXPECT_NE(obs::Telemetry::ClientTrack(0), obs::Telemetry::NodeTrack(0));
  EXPECT_NE(obs::Telemetry::ClientTrack(1), obs::Telemetry::ClientTrack(2));
}

// ------------------------------------------- End-to-end export determinism

ExperimentConfig SmallTracedConfig(uint64_t seed) {
  ExperimentConfig config;
  config.topology = TopologyConfig::Nationwide(2, 4);
  config.protocol = ProtocolConfig::MassBft();
  config.workload = WorkloadKind::kYcsbA;
  config.workload_scale = 0.01;
  config.clients_per_group = 20;
  config.duration = kSecond / 2;
  config.warmup = kSecond / 10;
  config.seed = seed;
  config.enable_tracing = true;
  return config;
}

struct TracedRun {
  std::string trace_json;
  std::string metrics_json;
  std::string result_json;
  size_t event_count = 0;
};

TracedRun RunTraced(uint64_t seed) {
  Experiment experiment(SmallTracedConfig(seed));
  EXPECT_TRUE(experiment.Setup().ok());
  ExperimentResult result = experiment.Run();
  // Host-timing fields are the one legitimately nondeterministic part of a
  // fixed-seed run; zero them so the JSON comparison pins everything else.
  result.wall_ms = 0;
  result.events_per_sec = 0;
  result.sim_time_ratio = 0;
  TracedRun run;
  std::ostringstream trace_out;
  experiment.telemetry().trace().WriteChromeTrace(trace_out);
  run.trace_json = trace_out.str();
  std::ostringstream metrics_out;
  obs::JsonWriter w(metrics_out);
  experiment.telemetry().registry().WriteJson(w);
  run.metrics_json = metrics_out.str();
  run.result_json = result.ToJson();
  run.event_count = experiment.telemetry().trace().event_count();
  return run;
}

TEST(ObsEndToEndTest, TraceIsDeterministicForFixedSeed) {
  TracedRun a = RunTraced(7);
  TracedRun b = RunTraced(7);
  EXPECT_GT(a.event_count, 0u);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.result_json, b.result_json);
}

TEST(ObsEndToEndTest, ExportsParseAndCoverCommitPath) {
  TracedRun run = RunTraced(11);
  EXPECT_TRUE(IsValidJson(run.trace_json));
  EXPECT_TRUE(IsValidJson(run.metrics_json));
  EXPECT_TRUE(IsValidJson(run.result_json));
  // The entry lifecycle appears in the trace...
  EXPECT_NE(run.trace_json.find("\"batching\""), std::string::npos);
  EXPECT_NE(run.trace_json.find("\"local_consensus\""), std::string::npos);
  EXPECT_NE(run.trace_json.find("\"global_replication\""), std::string::npos);
  EXPECT_NE(run.trace_json.find("\"execution\""), std::string::npos);
  EXPECT_NE(run.trace_json.find("\"submit\""), std::string::npos);
  EXPECT_NE(run.trace_json.find("wan_transfer"), std::string::npos);
  // ...and the registry holds the matching series.
  EXPECT_NE(run.metrics_json.find("\"phase/local_consensus_ms\""),
            std::string::npos);
  EXPECT_NE(run.metrics_json.find("\"net/wan_bytes_sent\""),
            std::string::npos);
  EXPECT_NE(run.metrics_json.find("\"pbft/prepare_ms\""), std::string::npos);
  // The result dump carries the Fig 11 phase sums and abort accounting.
  EXPECT_NE(run.result_json.find("\"phases\""), std::string::npos);
  EXPECT_NE(run.result_json.find("\"aborted_txns\""), std::string::npos);
  EXPECT_NE(run.result_json.find("\"timeline\""), std::string::npos);
}

// --------------------------------------------------------------- TraceClock

TEST(TraceClockTest, MonotoneSinceStableAnchor) {
  const uint64_t anchor = obs::TraceClock::UnixAnchorNs();
  EXPECT_EQ(obs::TraceClock::UnixAnchorNs(), anchor);
  // Anchored after 2020-01-01 (unix 1577836800s): catches an uninitialized
  // or steady-clock-valued anchor without assuming anything about "now".
  EXPECT_GT(anchor, 1577836800ull * 1000000000ull);

  uint64_t prev = obs::TraceClock::NowNs();
  for (int i = 0; i < 100; ++i) {
    const uint64_t now = obs::TraceClock::NowNs();
    EXPECT_GE(now, prev);
    prev = now;
  }
  EXPECT_EQ(obs::TraceClock::UnixAnchorNs(), anchor);
}

// ----------------------------------------------------------- FlightRecorder

TEST(FlightRecorderTest, KeepsEverythingBelowCapacity) {
  obs::FlightRecorder flight(4);
  flight.Record(10, "node", "start");
  flight.Record(20, "wire", "send", 3, 9);
  flight.Record(30, "fault", "delayed", 1);
  EXPECT_EQ(flight.capacity(), 4u);
  EXPECT_EQ(flight.recorded(), 3u);

  std::vector<obs::FlightEvent> events = flight.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].t_ns, 10u);
  EXPECT_STREQ(events[0].name, "start");
  EXPECT_EQ(events[1].t_ns, 20u);
  EXPECT_DOUBLE_EQ(events[1].a, 3.0);
  EXPECT_DOUBLE_EQ(events[1].b, 9.0);
  EXPECT_EQ(events[2].t_ns, 30u);
}

TEST(FlightRecorderTest, WrapsKeepingTheNewestOldestFirst) {
  obs::FlightRecorder flight(4);
  for (uint64_t i = 0; i < 10; ++i) flight.Record(i, "cat", "tick", double(i));
  EXPECT_EQ(flight.recorded(), 10u);

  std::vector<obs::FlightEvent> events = flight.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].t_ns, 6u + i) << "slot " << i;
    EXPECT_DOUBLE_EQ(events[i].a, 6.0 + double(i));
  }
}

TEST(FlightRecorderTest, DumpNamesOwnerAndKeptCounts) {
  obs::FlightRecorder flight(2);
  flight.Record(1500000, "node", "start");
  flight.Record(2500000, "fault", "dropped", 7);
  flight.Record(3500000, "node", "stop");

  std::ostringstream out;
  flight.Dump(out, "node g0/n1");
  const std::string text = out.str();
  EXPECT_NE(text.find("--- flight recorder node g0/n1: kept 2 of 3 events"),
            std::string::npos);
  // The wrapped-away "start" event must be gone; the survivors print
  // oldest-first with millisecond timestamps and both payload slots.
  EXPECT_EQ(text.find("node/start"), std::string::npos);
  const size_t dropped = text.find("fault/dropped a=7 b=0");
  const size_t stop = text.find("node/stop");
  ASSERT_NE(dropped, std::string::npos);
  ASSERT_NE(stop, std::string::npos);
  EXPECT_LT(dropped, stop);
  EXPECT_NE(text.find("2.500 ms"), std::string::npos);
}

TEST(FlightRecorderTest, ClearForgetsHistory) {
  obs::FlightRecorder flight(4);
  for (uint64_t i = 0; i < 6; ++i) flight.Record(i, "cat", "tick");
  flight.Clear();
  EXPECT_EQ(flight.recorded(), 0u);
  EXPECT_TRUE(flight.Snapshot().empty());
  // The ring is reusable after Clear.
  flight.Record(99, "cat", "tick");
  ASSERT_EQ(flight.Snapshot().size(), 1u);
  EXPECT_EQ(flight.Snapshot()[0].t_ns, 99u);
}

// --------------------------------------------------------------- Prometheus

TEST(PrometheusTest, NameMapsSlashesAndBadCharsToUnderscores) {
  EXPECT_EQ(obs::PrometheusName("net/wan_bytes_sent"),
            "massbft_net_wan_bytes_sent");
  EXPECT_EQ(obs::PrometheusName("phase/local_consensus_ms"),
            "massbft_phase_local_consensus_ms");
  EXPECT_EQ(obs::PrometheusName("a-b.c/d"), "massbft_a_b_c_d");
}

/// Counts non-overlapping occurrences of `needle` in `text`.
size_t CountOccurrences(const std::string& text, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size()))
    ++count;
  return count;
}

std::vector<obs::LabeledSnapshot> TwoNodeSnapshots() {
  obs::MetricsRegistry a;
  a.GetCounter("net/frames")->Add(3);
  a.GetGauge("queue/depth")->Set(2.5);
  obs::Histogram* ha = a.GetHistogram("phase/exec_ms");
  for (double v : {1.0, 2.0, 3.0, 4.0}) ha->Record(v);

  obs::MetricsRegistry b;
  b.GetCounter("net/frames")->Add(5);
  b.GetGauge("queue/depth")->Set(0.0);
  b.GetHistogram("phase/exec_ms")->Record(10.0);

  std::vector<obs::LabeledSnapshot> snapshots;
  snapshots.push_back({"node=\"g0/n0\"", a.Snapshot()});
  snapshots.push_back({"node=\"g0/n1\"", b.Snapshot()});
  return snapshots;
}

TEST(PrometheusTest, GroupsTypeHeadersAcrossLabeledSnapshots) {
  std::ostringstream out;
  obs::WritePrometheusText(TwoNodeSnapshots(), out);
  const std::string text = out.str();

  // One # TYPE line per metric even though two nodes expose each series.
  EXPECT_EQ(CountOccurrences(text, "# TYPE massbft_net_frames counter"), 1u);
  EXPECT_EQ(CountOccurrences(text, "# TYPE massbft_queue_depth gauge"), 1u);
  EXPECT_EQ(CountOccurrences(text, "# TYPE massbft_phase_exec_ms summary"),
            1u);

  // Counters and gauges carry the node label verbatim.
  EXPECT_NE(text.find("massbft_net_frames{node=\"g0/n0\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("massbft_net_frames{node=\"g0/n1\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("massbft_queue_depth{node=\"g0/n0\"} 2.5\n"),
            std::string::npos);

  // Histograms expose as summaries: two quantiles plus _sum and _count.
  EXPECT_NE(
      text.find("massbft_phase_exec_ms{node=\"g0/n0\",quantile=\"0.5\"}"),
      std::string::npos);
  EXPECT_NE(
      text.find("massbft_phase_exec_ms{node=\"g0/n0\",quantile=\"0.99\"}"),
      std::string::npos);
  EXPECT_NE(text.find("massbft_phase_exec_ms_sum{node=\"g0/n0\"} 10\n"),
            std::string::npos);
  EXPECT_NE(text.find("massbft_phase_exec_ms_count{node=\"g0/n0\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("massbft_phase_exec_ms_count{node=\"g0/n1\"} 1\n"),
            std::string::npos);
}

TEST(PrometheusTest, EmptyLabelsOmitBracesAndOutputIsDeterministic) {
  obs::MetricsRegistry reg;
  reg.GetCounter("commit/txns")->Add(42);
  std::vector<obs::LabeledSnapshot> snapshots;
  snapshots.push_back({"", reg.Snapshot()});

  std::ostringstream first;
  obs::WritePrometheusText(snapshots, first);
  EXPECT_NE(first.str().find("massbft_commit_txns 42\n"), std::string::npos);

  std::ostringstream again;
  obs::WritePrometheusText(snapshots, again);
  EXPECT_EQ(first.str(), again.str());

  std::ostringstream two_nodes_a;
  obs::WritePrometheusText(TwoNodeSnapshots(), two_nodes_a);
  std::ostringstream two_nodes_b;
  obs::WritePrometheusText(TwoNodeSnapshots(), two_nodes_b);
  EXPECT_EQ(two_nodes_a.str(), two_nodes_b.str());
}

// ------------------------------------------------------- ClusterTraceMerger

/// Two synthetic nodes: the origin (packed 0) encodes an entry; the
/// receiver (packed 65536 = g1/n0) records the wire/recv instant whose
/// trace-context args pin the flow arrow. Timestamps are hand-picked so
/// every merged value is exact in the output.
void BuildTwoNodeMerge(obs::ClusterTraceMerger& merger) {
  obs::TraceRecorder origin;
  origin.set_enabled(true);
  origin.RegisterTrack(0, "consensus");
  origin.RecordSpan(0, "phase", "local_consensus", 1000000, 2000000,
                    obs::TraceArgs{{{"gid", 3.0}, {"seq", 9.0}}});

  obs::TraceRecorder receiver;
  receiver.set_enabled(true);
  receiver.RegisterTrack(65536, "consensus");
  // Node-relative 500us; the node started 1ms after the process epoch, so
  // the shared-axis delivery time is 1.5ms. origin_ts (1.2ms) is already on
  // the shared axis — it was stamped with TraceClock::NowNs at encode time.
  receiver.RecordInstant(65536, "wire", "recv", 500000,
                         obs::TraceArgs{{{"gid", 3.0},
                                         {"seq", 9.0},
                                         {"origin", 0.0},
                                         {"origin_ts", 1200000.0}}});

  merger.set_unix_anchor_ns(1700000000000000000ull);
  merger.AddNode(0, "node g0/n0", 0, origin);
  merger.AddNode(65536, "node g1/n0", 1000000, receiver);
}

TEST(ClusterTraceMergerTest, MergesNodesOntoSharedAxisWithFlowArrows) {
  obs::ClusterTraceMerger merger;
  BuildTwoNodeMerge(merger);
  EXPECT_EQ(merger.node_count(), 2u);

  std::ostringstream out;
  merger.WriteChromeTrace(out);
  const std::string doc = out.str();
  EXPECT_TRUE(IsValidJson(doc));

  // The injected anchor and node count land in otherData.
  EXPECT_NE(doc.find("\"trace_unix_anchor_ns\":1700000000000000000"),
            std::string::npos);
  EXPECT_NE(doc.find("\"node_count\":2"), std::string::npos);

  // One Chrome process per node: pid = packed id + 1, named and sorted.
  EXPECT_NE(doc.find("\"name\":\"node g0/n0\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"node g1/n0\""), std::string::npos);
  EXPECT_EQ(CountOccurrences(doc, "\"name\":\"process_name\""), 2u);

  // Origin span keeps its own timebase (offset 0): ts 1000us, dur 1000us.
  EXPECT_NE(doc.find("\"name\":\"local_consensus\",\"cat\":\"phase\","
                     "\"ph\":\"X\",\"ts\":1000,\"dur\":1000,"
                     "\"pid\":1,\"tid\":0"),
            std::string::npos);
  // Receiver instant is shifted by its 1ms epoch offset: 500us -> 1500us.
  EXPECT_NE(doc.find("\"ph\":\"i\",\"s\":\"t\",\"ts\":1500,\"pid\":65537"),
            std::string::npos);

  // The recv instant pins one flow arrow: start on the origin's track at
  // origin_ts, finish on the receiving track at delivery.
  EXPECT_NE(doc.find("\"name\":\"entry\",\"cat\":\"wire\",\"ph\":\"s\","
                     "\"id\":1,\"pid\":1,\"tid\":0,\"ts\":1200,"
                     "\"args\":{\"gid\":3,\"seq\":9}"),
            std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"entry\",\"cat\":\"wire\",\"ph\":\"f\","
                     "\"bp\":\"e\",\"id\":1,\"pid\":65537,\"tid\":65536,"
                     "\"ts\":1500"),
            std::string::npos);
}

TEST(ClusterTraceMergerTest, OutputIsByteStableAcrossRenders) {
  obs::ClusterTraceMerger merger;
  BuildTwoNodeMerge(merger);
  std::ostringstream first;
  merger.WriteChromeTrace(first);
  std::ostringstream again;
  merger.WriteChromeTrace(again);
  EXPECT_EQ(first.str(), again.str());
  EXPECT_FALSE(first.str().empty());
}

TEST(ClusterTraceMergerTest, SkipsFlowsWhoseOriginTraceIsMissing) {
  obs::TraceRecorder receiver;
  receiver.set_enabled(true);
  receiver.RegisterTrack(1, "consensus");
  // origin 327680 (g5/n0) was never merged in; the arrow has no start
  // track, so no flow events may be emitted.
  receiver.RecordInstant(1, "wire", "recv", 1000,
                         obs::TraceArgs{{{"gid", 0.0},
                                         {"seq", 1.0},
                                         {"origin", 327680.0},
                                         {"origin_ts", 500.0}}});
  obs::ClusterTraceMerger merger;
  merger.AddNode(1, "node g0/n1", 0, receiver);

  std::ostringstream out;
  merger.WriteChromeTrace(out);
  EXPECT_TRUE(IsValidJson(out.str()));
  EXPECT_NE(out.str().find("\"ph\":\"i\""), std::string::npos);
  EXPECT_EQ(out.str().find("\"ph\":\"s\""), std::string::npos);
  EXPECT_EQ(out.str().find("\"ph\":\"f\""), std::string::npos);
}

TEST(ClusterTraceMergerTest, ClampsArrowsThatWouldPointBackwards) {
  // Delivery lands on the shared axis *before* the stamped send time (the
  // send stamp is taken before the frame hits the socket, so a fast local
  // loop can deliver "early"). The finish must clamp to the send time.
  obs::TraceRecorder origin;
  origin.set_enabled(true);
  origin.RegisterTrack(0, "consensus");
  obs::TraceRecorder receiver;
  receiver.set_enabled(true);
  receiver.RegisterTrack(65536, "consensus");
  receiver.RecordInstant(65536, "wire", "recv", 1500000,
                         obs::TraceArgs{{{"gid", 0.0},
                                         {"seq", 1.0},
                                         {"origin", 0.0},
                                         {"origin_ts", 2000000.0}}});
  obs::ClusterTraceMerger merger;
  merger.AddNode(0, "node g0/n0", 0, origin);
  merger.AddNode(65536, "node g1/n0", 0, receiver);

  std::ostringstream out;
  merger.WriteChromeTrace(out);
  const std::string doc = out.str();
  EXPECT_NE(doc.find("\"ph\":\"s\",\"id\":1,\"pid\":1,\"tid\":0,\"ts\":2000"),
            std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"f\",\"bp\":\"e\",\"id\":1,\"pid\":65537,"
                     "\"tid\":65536,\"ts\":2000"),
            std::string::npos);
}

// -------------------------------------------------------------- StatsServer

/// Minimal blocking HTTP GET against 127.0.0.1:`port`; returns the whole
/// response (head + body) or "" on connect failure.
std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[1024];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    response.append(buf, static_cast<size_t>(n));
  ::close(fd);
  return response;
}

TEST(StatsServerTest, ServesHandlersOnEphemeralPort) {
  obs::StatsServer server;
  server.RegisterHandler("/metrics", [] {
    obs::StatsServer::Response response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = "# TYPE massbft_up gauge\nmassbft_up 1\n";
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  const std::string ok = HttpGet(server.port(), "/metrics");
  EXPECT_NE(ok.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(ok.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(ok.find("massbft_up 1\n"), std::string::npos);

  // Query strings are stripped before handler lookup.
  const std::string with_query = HttpGet(server.port(), "/metrics?x=1");
  EXPECT_NE(with_query.find("HTTP/1.0 200 OK"), std::string::npos);

  const std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.0 404 Not Found"), std::string::npos);

  // A second Start while running must refuse rather than rebind.
  EXPECT_FALSE(server.Start(0).ok());

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // Idempotent.
  EXPECT_EQ(server.port(), 0);
}

TEST(StatsServerTest, ConcurrentScrapesSeeConsistentResponses) {
  obs::StatsServer server;
  server.RegisterHandler("/health", [] {
    obs::StatsServer::Response response;
    response.content_type = "application/json";
    response.body = "{\"ok\":true}";
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  // Sequential scrapes through the single-threaded accept loop: each must
  // get a complete, framed response.
  for (int i = 0; i < 5; ++i) {
    const std::string response = HttpGet(server.port(), "/health");
    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(response.find("Content-Length: 11"), std::string::npos);
    EXPECT_NE(response.find("{\"ok\":true}"), std::string::npos);
  }
  server.Stop();
}

}  // namespace
}  // namespace massbft
