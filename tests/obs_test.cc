#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/experiment.h"
#include "obs/json_writer.h"
#include "obs/metrics_registry.h"
#include "obs/telemetry.h"
#include "obs/trace_recorder.h"
#include "sim/time.h"

namespace massbft {
namespace {

// ------------------------------------------------------------------------
// Minimal recursive-descent JSON validator. The exporters promise
// syntactically valid JSON; this checks that promise without pulling in a
// parser dependency.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    if (!ParseValue()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't') return ParseLiteral("true");
    if (c == 'f') return ParseLiteral("false");
    if (c == 'n') return ParseLiteral("null");
    return ParseNumber();
  }
  bool ParseObject() {
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      if (!ParseString()) return false;
      if (!Consume(':')) return false;
      if (!ParseValue()) return false;
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }
  bool ParseArray() {
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      if (!ParseValue()) return false;
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }
  bool ParseString() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_])))
              return false;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // Unescaped control character.
      }
      ++pos_;
    }
    return false;
  }
  bool ParseLiteral(const char* lit) {
    size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return false;
    char* end = nullptr;
    std::string num = text_.substr(start, pos_ - start);
    std::strtod(num.c_str(), &end);
    return end != nullptr && *end == '\0';
  }

  const std::string& text_;
  size_t pos_ = 0;
};

bool IsValidJson(const std::string& text) {
  return JsonValidator(text).Valid();
}

// --------------------------------------------------------------- JsonWriter

TEST(JsonWriterTest, ObjectsArraysAndCommas) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.BeginObject();
  w.Member("a", 1);
  w.Member("b", "two");
  w.Key("c");
  w.BeginArray();
  w.Value(1.5);
  w.Value(true);
  w.Null();
  w.BeginObject();
  w.Member("nested", uint64_t{18446744073709551615ull});
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(out.str(),
            "{\"a\":1,\"b\":\"two\",\"c\":[1.5,true,null,"
            "{\"nested\":18446744073709551615}]}");
  EXPECT_TRUE(IsValidJson(out.str()));
}

TEST(JsonWriterTest, EscapesStrings) {
  EXPECT_EQ(obs::JsonWriter::Escape("plain"), "plain");
  EXPECT_EQ(obs::JsonWriter::Escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::JsonWriter::Escape("tab\there\n"), "tab\\there\\n");
  std::string ctrl(1, '\x01');
  EXPECT_EQ(obs::JsonWriter::Escape(ctrl), "\\u0001");

  std::ostringstream out;
  obs::JsonWriter w(out);
  w.BeginObject();
  w.Member("k\"ey", std::string("v\\1\n"));
  w.EndObject();
  EXPECT_TRUE(IsValidJson(out.str()));
}

TEST(JsonWriterTest, NumbersRoundTrip) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.BeginArray();
  w.Value(0.125);
  w.Value(int64_t{-7});
  w.Value(3.0);
  w.EndArray();
  EXPECT_TRUE(IsValidJson(out.str()));
  EXPECT_NE(out.str().find("0.125"), std::string::npos);
  EXPECT_NE(out.str().find("-7"), std::string::npos);
}

// --------------------------------------------------------- MetricsRegistry

TEST(MetricsRegistryTest, HandlesAreStableAndShared) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("net/wan_bytes_sent");
  obs::Counter* b = registry.GetCounter("net/wan_bytes_sent");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.counter_count(), 1u);

  a->Add(5);
  b->Add();
  EXPECT_EQ(a->value(), 6u);

  obs::Gauge* g = registry.GetGauge("net/util");
  EXPECT_EQ(g, registry.GetGauge("net/util"));
  g->Set(0.75);
  EXPECT_DOUBLE_EQ(g->value(), 0.75);

  obs::Histogram* h = registry.GetHistogram("pbft/prepare_ms");
  EXPECT_EQ(h, registry.GetHistogram("pbft/prepare_ms"));
  EXPECT_EQ(registry.gauge_count(), 1u);
  EXPECT_EQ(registry.histogram_count(), 1u);
}

TEST(MetricsRegistryTest, DisabledRegistryIgnoresWrites) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("c");
  obs::Histogram* h = registry.GetHistogram("h");
  registry.set_enabled(false);
  c->Add(10);
  h->Record(1.0);
  // New instruments created while disabled are disabled too.
  obs::Gauge* g = registry.GetGauge("g");
  g->Set(4.0);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);

  registry.set_enabled(true);
  c->Add(10);
  g->Set(4.0);
  EXPECT_EQ(c->value(), 10u);
  EXPECT_DOUBLE_EQ(g->value(), 4.0);
}

TEST(MetricsRegistryTest, ResetAllKeepsHandlesValid) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("c");
  obs::Histogram* h = registry.GetHistogram("h");
  c->Add(3);
  h->Record(2.0);
  registry.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  c->Add(1);
  EXPECT_EQ(c->value(), 1u);
  EXPECT_EQ(registry.GetCounter("c"), c);
}

TEST(HistogramTest, ExactStatsAndApproxPercentiles) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("h");
  EXPECT_DOUBLE_EQ(h->min(), 0.0);
  EXPECT_DOUBLE_EQ(h->max(), 0.0);
  EXPECT_DOUBLE_EQ(h->mean(), 0.0);
  EXPECT_DOUBLE_EQ(h->Percentile(0.5), 0.0);

  for (int i = 1; i <= 100; ++i) h->Record(static_cast<double>(i));
  EXPECT_EQ(h->count(), 100u);
  EXPECT_DOUBLE_EQ(h->sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h->min(), 1.0);
  EXPECT_DOUBLE_EQ(h->max(), 100.0);
  EXPECT_DOUBLE_EQ(h->mean(), 50.5);
  // Geometric buckets: percentile exact to within a factor of 2.
  double p50 = h->Percentile(0.5);
  EXPECT_GE(p50, 25.0);
  EXPECT_LE(p50, 128.0);
  double p99 = h->Percentile(0.99);
  EXPECT_GE(p99, 64.0);
  EXPECT_LE(p99, 256.0);
  EXPECT_LE(p50, p99);
}

TEST(MetricsRegistryTest, WriteJsonIsValidAndDeterministic) {
  obs::MetricsRegistry registry;
  registry.GetCounter("z/last")->Add(2);
  registry.GetCounter("a/first")->Add(1);
  registry.GetGauge("util")->Set(0.5);
  registry.GetHistogram("lat_ms")->Record(3.25);

  auto dump = [&registry]() {
    std::ostringstream out;
    obs::JsonWriter w(out);
    registry.WriteJson(w);
    return out.str();
  };
  std::string first = dump();
  EXPECT_TRUE(IsValidJson(first));
  EXPECT_NE(first.find("\"a/first\""), std::string::npos);
  EXPECT_NE(first.find("\"z/last\""), std::string::npos);
  EXPECT_NE(first.find("\"lat_ms\""), std::string::npos);
  // Sorted output: a/first serialized before z/last.
  EXPECT_LT(first.find("\"a/first\""), first.find("\"z/last\""));
  EXPECT_EQ(first, dump());
}

// ------------------------------------------------------------ TraceRecorder

TEST(TraceRecorderTest, DisabledByDefaultRecordsNothing) {
  obs::TraceRecorder trace;
  EXPECT_FALSE(trace.enabled());
  trace.RecordSpan(1, "cat", "name", 0, kMillisecond);
  trace.RecordInstant(1, "cat", "tick", kMillisecond);
  trace.RecordCounter(1, "depth", kMillisecond, 3.0);
  EXPECT_EQ(trace.event_count(), 0u);
}

TEST(TraceRecorderTest, RecordsAndClears) {
  obs::TraceRecorder trace;
  trace.set_enabled(true);
  trace.RecordSpan(7, "entry", "batching", kMillisecond, 3 * kMillisecond,
                   obs::TraceArgs{{{"gid", 1.0}, {"seq", 9.0}}});
  trace.RecordInstant(7, "client", "submit", 2 * kMillisecond);
  trace.RecordCounter(7, "queue", 2 * kMillisecond, 4.0);
  EXPECT_EQ(trace.event_count(), 3u);
  trace.Clear();
  EXPECT_EQ(trace.event_count(), 0u);
}

TEST(TraceRecorderTest, ChromeTraceExportIsValidJson) {
  obs::TraceRecorder trace;
  trace.set_enabled(true);
  trace.RegisterTrack(7, "g0/n3");
  trace.RegisterTrack(0x80000000u, "clients/g0");
  trace.RecordSpan(7, "entry", "local_consensus", kMillisecond,
                   5 * kMillisecond,
                   obs::TraceArgs{{{"gid", 0.0}, {"seq", 1.0}}});
  trace.RecordInstant(0x80000000u, "client", "submit", kMillisecond / 2);
  trace.RecordCounter(7, "inflight", 2 * kMillisecond, 2.0);

  std::ostringstream out;
  trace.WriteChromeTrace(out);
  std::string doc = out.str();
  EXPECT_TRUE(IsValidJson(doc));
  EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  // Track metadata precedes the span events.
  size_t meta = doc.find("thread_name");
  size_t span = doc.find("\"ph\":\"X\"");
  ASSERT_NE(meta, std::string::npos);
  ASSERT_NE(span, std::string::npos);
  EXPECT_LT(meta, span);
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(doc.find("local_consensus"), std::string::npos);
  EXPECT_NE(doc.find("g0/n3"), std::string::npos);
}

TEST(TraceRecorderTest, WriteChromeTraceFileRoundTrips) {
  obs::TraceRecorder trace;
  trace.set_enabled(true);
  trace.RecordSpan(1, "cat", "span", 0, kMillisecond);

  std::string path = testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(trace.WriteChromeTraceFile(path).ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_TRUE(IsValidJson(buf.str()));

  EXPECT_FALSE(
      trace.WriteChromeTraceFile("/no/such/dir/obs_test_trace.json").ok());
}

// ---------------------------------------------------------------- Telemetry

TEST(TelemetryTest, PhaseSpansFeedHistogramAndTrace) {
  obs::Telemetry tel;
  EXPECT_FALSE(tel.tracing());
  tel.RecordPhaseSpan(obs::Phase::kLocalConsensus, 7, kMillisecond,
                      5 * kMillisecond, 0, 1);
  const obs::Histogram& local = tel.phase(obs::Phase::kLocalConsensus);
  EXPECT_EQ(local.count(), 1u);
  EXPECT_DOUBLE_EQ(local.sum(), 4.0);  // Milliseconds.
  EXPECT_EQ(tel.trace().event_count(), 0u);  // Tracing off: no span.

  tel.set_tracing(true);
  tel.RecordPhaseSpan(obs::Phase::kLocalConsensus, 7, 0, 2 * kMillisecond, 0,
                      2);
  EXPECT_EQ(local.count(), 2u);
  EXPECT_DOUBLE_EQ(local.sum(), 6.0);
  EXPECT_EQ(tel.trace().event_count(), 1u);
}

TEST(TelemetryTest, PhaseNamesAndTracks) {
  EXPECT_STREQ(obs::PhaseName(obs::Phase::kBatching), "batching");
  EXPECT_STREQ(obs::PhaseName(obs::Phase::kGlobalReplication),
               "global_replication");
  // Phase histograms live in the registry under phase/<name>_ms.
  obs::Telemetry tel;
  EXPECT_EQ(tel.phase_histogram(obs::Phase::kEncode),
            tel.registry().GetHistogram("phase/encode_ms"));
  // Client tracks never collide with node tracks (high bit set).
  EXPECT_NE(obs::Telemetry::ClientTrack(0), obs::Telemetry::NodeTrack(0));
  EXPECT_NE(obs::Telemetry::ClientTrack(1), obs::Telemetry::ClientTrack(2));
}

// ------------------------------------------- End-to-end export determinism

ExperimentConfig SmallTracedConfig(uint64_t seed) {
  ExperimentConfig config;
  config.topology = TopologyConfig::Nationwide(2, 4);
  config.protocol = ProtocolConfig::MassBft();
  config.workload = WorkloadKind::kYcsbA;
  config.workload_scale = 0.01;
  config.clients_per_group = 20;
  config.duration = kSecond / 2;
  config.warmup = kSecond / 10;
  config.seed = seed;
  config.enable_tracing = true;
  return config;
}

struct TracedRun {
  std::string trace_json;
  std::string metrics_json;
  std::string result_json;
  size_t event_count = 0;
};

TracedRun RunTraced(uint64_t seed) {
  Experiment experiment(SmallTracedConfig(seed));
  EXPECT_TRUE(experiment.Setup().ok());
  ExperimentResult result = experiment.Run();
  // Host-timing fields are the one legitimately nondeterministic part of a
  // fixed-seed run; zero them so the JSON comparison pins everything else.
  result.wall_ms = 0;
  result.events_per_sec = 0;
  result.sim_time_ratio = 0;
  TracedRun run;
  std::ostringstream trace_out;
  experiment.telemetry().trace().WriteChromeTrace(trace_out);
  run.trace_json = trace_out.str();
  std::ostringstream metrics_out;
  obs::JsonWriter w(metrics_out);
  experiment.telemetry().registry().WriteJson(w);
  run.metrics_json = metrics_out.str();
  run.result_json = result.ToJson();
  run.event_count = experiment.telemetry().trace().event_count();
  return run;
}

TEST(ObsEndToEndTest, TraceIsDeterministicForFixedSeed) {
  TracedRun a = RunTraced(7);
  TracedRun b = RunTraced(7);
  EXPECT_GT(a.event_count, 0u);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.result_json, b.result_json);
}

TEST(ObsEndToEndTest, ExportsParseAndCoverCommitPath) {
  TracedRun run = RunTraced(11);
  EXPECT_TRUE(IsValidJson(run.trace_json));
  EXPECT_TRUE(IsValidJson(run.metrics_json));
  EXPECT_TRUE(IsValidJson(run.result_json));
  // The entry lifecycle appears in the trace...
  EXPECT_NE(run.trace_json.find("\"batching\""), std::string::npos);
  EXPECT_NE(run.trace_json.find("\"local_consensus\""), std::string::npos);
  EXPECT_NE(run.trace_json.find("\"global_replication\""), std::string::npos);
  EXPECT_NE(run.trace_json.find("\"execution\""), std::string::npos);
  EXPECT_NE(run.trace_json.find("\"submit\""), std::string::npos);
  EXPECT_NE(run.trace_json.find("wan_transfer"), std::string::npos);
  // ...and the registry holds the matching series.
  EXPECT_NE(run.metrics_json.find("\"phase/local_consensus_ms\""),
            std::string::npos);
  EXPECT_NE(run.metrics_json.find("\"net/wan_bytes_sent\""),
            std::string::npos);
  EXPECT_NE(run.metrics_json.find("\"pbft/prepare_ms\""), std::string::npos);
  // The result dump carries the Fig 11 phase sums and abort accounting.
  EXPECT_NE(run.result_json.find("\"phases\""), std::string::npos);
  EXPECT_NE(run.result_json.find("\"aborted_txns\""), std::string::npos);
  EXPECT_NE(run.result_json.find("\"timeline\""), std::string::npos);
}

}  // namespace
}  // namespace massbft
