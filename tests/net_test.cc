#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "net/crc32.h"
#include "net/fault_transport.h"
#include "net/inproc_transport.h"
#include "net/tcp_transport.h"
#include "net/wire.h"
#include "proto/messages.h"

namespace massbft {
namespace {

// ------------------------------------------------------------ Crc32

TEST(Crc32Test, KnownVectors) {
  // The standard CRC-32 check value.
  const uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32::Compute(check, sizeof(check)), 0xCBF43926u);
  EXPECT_EQ(Crc32::Compute(nullptr, 0), 0x00000000u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  Bytes data(1000);
  Rng rng(7);
  for (auto& b : data) b = static_cast<uint8_t>(rng.NextU64());
  Crc32 crc;
  crc.Update(data.data(), 100);
  crc.Update(data.data() + 100, 1);
  crc.Update(data.data() + 101, data.size() - 101);
  EXPECT_EQ(crc.Finish(), Crc32::Compute(data.data(), data.size()));
}

// ---------------------------------------------------- Message factory

Signature RandSig(Rng& rng) {
  Signature sig;
  for (auto& b : sig) b = static_cast<uint8_t>(rng.NextU64());
  return sig;
}

Digest RandDigest(Rng& rng) {
  Digest d;
  for (auto& b : d) b = static_cast<uint8_t>(rng.NextU64());
  return d;
}

Transaction RandTxn(Rng& rng) {
  Transaction txn;
  txn.id = rng.NextU64();
  txn.client = static_cast<uint32_t>(rng.NextU64());
  txn.submit_time = static_cast<SimTime>(rng.NextBelow(1u << 30));
  txn.payload.resize(rng.NextBelow(200));
  for (auto& b : txn.payload) b = static_cast<uint8_t>(rng.NextU64());
  return txn;
}

EntryPtr RandEntry(Rng& rng) {
  std::vector<Transaction> txns;
  size_t n = rng.NextBelow(4);
  for (size_t i = 0; i < n; ++i) txns.push_back(RandTxn(rng));
  return std::make_shared<const Entry>(
      static_cast<uint16_t>(rng.NextBelow(8)), rng.NextU64(),
      std::move(txns));
}

Certificate RandCert(Rng& rng) {
  Certificate cert;
  cert.gid = static_cast<uint16_t>(rng.NextBelow(8));
  cert.digest = RandDigest(rng);
  size_t n = 1 + rng.NextBelow(3);
  for (size_t i = 0; i < n; ++i)
    cert.sigs.emplace_back(
        NodeId{cert.gid, static_cast<uint16_t>(i)}, RandSig(rng));
  return cert;
}

DecisionId RandDecision(Rng& rng) {
  DecisionId d;
  d.kind = static_cast<uint8_t>(rng.NextBelow(4));
  d.voter_gid = static_cast<uint16_t>(rng.NextBelow(8));
  d.target_gid = static_cast<uint16_t>(rng.NextBelow(8));
  d.target_seq = rng.NextU64();
  d.ts = rng.NextU64();
  return d;
}

std::vector<TimestampElement> RandElements(Rng& rng) {
  std::vector<TimestampElement> elements;
  size_t n = 1 + rng.NextBelow(5);
  for (size_t i = 0; i < n; ++i)
    elements.push_back(TimestampElement{
        static_cast<uint16_t>(rng.NextBelow(8)),
        static_cast<uint16_t>(rng.NextBelow(8)), rng.NextU64(),
        rng.NextU64()});
  return elements;
}

std::vector<Chunk> RandChunks(Rng& rng) {
  std::vector<Chunk> chunks;
  size_t n = 1 + rng.NextBelow(3);
  for (size_t i = 0; i < n; ++i) {
    Chunk c;
    c.chunk_id = static_cast<uint32_t>(rng.NextU64());
    c.data.resize(1 + rng.NextBelow(64));
    for (auto& b : c.data) b = static_cast<uint8_t>(rng.NextU64());
    c.proof.index = static_cast<uint32_t>(i);
    c.proof.leaf_count = static_cast<uint32_t>(n);
    c.proof.path = {RandDigest(rng), RandDigest(rng)};
    chunks.push_back(std::move(c));
  }
  return chunks;
}

/// A randomized instance of every wire message kind.
std::unique_ptr<ProtocolMessage> MakeMessage(MessageType type, Rng& rng) {
  using T = MessageType;
  switch (type) {
    case T::kClientRequest:
      return std::make_unique<ClientRequestMsg>(RandTxn(rng));
    case T::kClientReply:
      return std::make_unique<ClientReplyMsg>(rng.NextU64(),
                                              rng.NextBelow(2) == 0);
    case T::kPrePrepare:
      return std::make_unique<PrePrepareMsg>(rng.NextU64(), rng.NextU64(),
                                             RandEntry(rng), RandSig(rng));
    case T::kPrepare:
    case T::kCommit:
      return std::make_unique<PbftVoteMsg>(type, rng.NextU64(), rng.NextU64(),
                                           RandDigest(rng), RandSig(rng));
    case T::kViewChange:
    case T::kNewView:
      return std::make_unique<ViewChangeMsg>(type, rng.NextU64(),
                                             rng.NextU64(),
                                             rng.NextBelow(300));
    case T::kCertifyRequest:
      return std::make_unique<CertifyRequestMsg>(RandDecision(rng),
                                                 RandSig(rng));
    case T::kCertifyVote:
      return std::make_unique<CertifyVoteMsg>(RandDecision(rng),
                                              RandSig(rng));
    case T::kEntryTransfer:
      return std::make_unique<EntryTransferMsg>(RandEntry(rng),
                                                RandCert(rng));
    case T::kChunkBatch:
      return std::make_unique<ChunkBatchMsg>(
          static_cast<uint16_t>(rng.NextBelow(8)), rng.NextU64(),
          RandDigest(rng), RandCert(rng), RandChunks(rng),
          rng.NextBelow(1u << 20));
    case T::kRaftPropose:
      return std::make_unique<RaftProposeMsg>(
          static_cast<uint16_t>(rng.NextBelow(8)), rng.NextU64(),
          RandDigest(rng), RandCert(rng), RandElements(rng),
          static_cast<uint16_t>(rng.NextBelow(8)), rng.NextU64());
    case T::kRaftAccept:
      return std::make_unique<RaftAcceptMsg>(
          static_cast<uint16_t>(rng.NextBelow(8)), rng.NextU64(),
          static_cast<uint16_t>(rng.NextBelow(8)), RandCert(rng),
          rng.NextU64());
    case T::kRaftCommit:
      return std::make_unique<RaftCommitMsg>(
          static_cast<uint16_t>(rng.NextBelow(8)), rng.NextU64(),
          RandCert(rng));
    case T::kTimestampAssign:
      return std::make_unique<TimestampAssignMsg>(RandElements(rng),
                                                  rng.NextBelow(2) == 0);
    case T::kGroupHeartbeat:
      return std::make_unique<GroupHeartbeatMsg>(
          static_cast<uint16_t>(rng.NextBelow(8)), rng.NextU64());
    case T::kGroupRelay: {
      std::vector<RelayEvent> events;
      size_t n = 1 + rng.NextBelow(4);
      for (size_t i = 0; i < n; ++i)
        events.push_back(RelayEvent{
            static_cast<uint8_t>(1 + rng.NextBelow(2)),
            static_cast<uint16_t>(rng.NextBelow(8)), rng.NextU64(),
            static_cast<uint16_t>(rng.NextBelow(8)), rng.NextU64()});
      return std::make_unique<GroupRelayMsg>(std::move(events),
                                             rng.NextBelow(2) == 0);
    }
    case T::kEpochMarker:
      return std::make_unique<EpochMarkerMsg>(
          static_cast<uint16_t>(rng.NextBelow(8)), rng.NextU64(),
          rng.NextU64());
    case T::kLeaderForward:
      return std::make_unique<LeaderForwardMsg>(RandEntry(rng),
                                                RandCert(rng));
    case T::kCatchUpRequest: {
      std::vector<std::pair<uint16_t, uint64_t>> next;
      size_t n = 1 + rng.NextBelow(4);
      for (size_t i = 0; i < n; ++i)
        next.emplace_back(static_cast<uint16_t>(i), rng.NextU64());
      return std::make_unique<CatchUpRequestMsg>(std::move(next));
    }
    case T::kFreezeQuery:
    case T::kFreezeReport:
      return std::make_unique<FreezeMsg>(
          type, static_cast<uint16_t>(rng.NextBelow(8)), rng.NextU64());
    case T::kCatchUpDone:
      return std::make_unique<CatchUpDoneMsg>();
  }
  return nullptr;
}

constexpr MessageType kAllTypes[] = {
    MessageType::kClientRequest, MessageType::kClientReply,
    MessageType::kPrePrepare,    MessageType::kPrepare,
    MessageType::kCommit,        MessageType::kViewChange,
    MessageType::kNewView,       MessageType::kCertifyRequest,
    MessageType::kCertifyVote,   MessageType::kEntryTransfer,
    MessageType::kChunkBatch,    MessageType::kRaftPropose,
    MessageType::kRaftAccept,    MessageType::kRaftCommit,
    MessageType::kTimestampAssign, MessageType::kGroupHeartbeat,
    MessageType::kGroupRelay,    MessageType::kEpochMarker,
    MessageType::kLeaderForward, MessageType::kCatchUpRequest,
    MessageType::kFreezeQuery,   MessageType::kFreezeReport,
    MessageType::kCatchUpDone,
};

// ------------------------------------------------------------ Roundtrip

/// Every message kind survives encode -> decode -> re-encode with
/// byte-identical frames (which proves field-level equality without
/// per-field comparison), and ByteSize() equals the real frame size.
TEST(WireRoundTripTest, EveryMessageTypeRoundTrips) {
  Rng rng(42);
  const NodeId src{3, 7};
  for (MessageType type : kAllTypes) {
    for (int iteration = 0; iteration < 8; ++iteration) {
      auto msg = MakeMessage(type, rng);
      ASSERT_NE(msg, nullptr) << "no factory for type "
                              << static_cast<int>(type);
      // Fixed origin timestamp so the re-encode comparison below is
      // byte-exact (the default overload stamps TraceClock::NowNs()).
      Bytes wire = EncodeFrame(*msg, src, 777);
      EXPECT_EQ(wire.size(), msg->ByteSize())
          << "type " << static_cast<int>(type);

      auto peeked = PeekFrameLength(wire.data(), wire.size());
      ASSERT_TRUE(peeked.ok());
      EXPECT_EQ(*peeked, wire.size());

      auto frame = DecodeFrame(wire);
      ASSERT_TRUE(frame.ok()) << "type " << static_cast<int>(type) << ": "
                              << frame.status().ToString();
      EXPECT_EQ(frame->src, src);
      ASSERT_NE(frame->msg, nullptr);
      EXPECT_EQ(frame->msg->message_type(), type);

      EXPECT_EQ(frame->has_trace, CarriesTraceContext(type));

      Bytes rewire = EncodeFrame(*frame->msg, src, 777);
      EXPECT_EQ(rewire, wire) << "re-encode divergence for type "
                              << static_cast<int>(type);
    }
  }
}

TEST(WireRoundTripTest, FieldLevelSpotChecks) {
  Rng rng(1);
  const NodeId src{1, 2};
  {
    auto entry = RandEntry(rng);
    auto cert = RandCert(rng);
    EntryTransferMsg msg(entry, cert);
    auto frame = DecodeFrame(EncodeFrame(msg, src));
    ASSERT_TRUE(frame.ok());
    auto& decoded = static_cast<const EntryTransferMsg&>(*frame->msg);
    EXPECT_EQ(decoded.entry()->digest(), entry->digest());
    EXPECT_EQ(decoded.entry()->txns(), entry->txns());
    EXPECT_EQ(decoded.cert().sigs, cert.sigs);
  }
  {
    auto elements = RandElements(rng);
    RaftProposeMsg msg(4, 99, RandDigest(rng), RandCert(rng), elements, 2, 55);
    auto frame = DecodeFrame(EncodeFrame(msg, src));
    ASSERT_TRUE(frame.ok());
    auto& decoded = static_cast<const RaftProposeMsg&>(*frame->msg);
    EXPECT_EQ(decoded.gid(), 4);
    EXPECT_EQ(decoded.seq(), 99u);
    EXPECT_EQ(decoded.piggyback(), elements);
    EXPECT_EQ(decoded.origin_gid(), 2);
    EXPECT_EQ(decoded.origin_seq(), 55u);
  }
  {
    auto chunks = RandChunks(rng);
    ChunkBatchMsg msg(1, 7, RandDigest(rng), RandCert(rng), chunks, 4096);
    auto frame = DecodeFrame(EncodeFrame(msg, src));
    ASSERT_TRUE(frame.ok());
    auto& decoded = static_cast<const ChunkBatchMsg&>(*frame->msg);
    ASSERT_EQ(decoded.chunks().size(), chunks.size());
    EXPECT_EQ(decoded.chunks()[0].data, chunks[0].data);
    EXPECT_EQ(decoded.chunks()[0].proof.path, chunks[0].proof.path);
    EXPECT_EQ(decoded.entry_size(), 4096u);
  }
}

// ------------------------------------------------------------ Malformed

Bytes SampleFrame() {
  ClientReplyMsg msg(12345, true);
  return EncodeFrame(msg, NodeId{0, 1});
}

/// Recomputes the CRC after tampering with header/body bytes so tests hit
/// the check they target instead of tripping the CRC first.
void FixCrc(Bytes& wire) {
  Crc32 crc;
  crc.Update(wire.data() + 4, kFrameHeaderBytes - 8);  // version..body_len
  crc.Update(wire.data() + kFrameHeaderBytes,
             wire.size() - kFrameHeaderBytes);
  uint32_t value = crc.Finish();
  for (int i = 0; i < 4; ++i)
    wire[kFrameHeaderBytes - 4 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(value >> (8 * i));
}

// ------------------------------------------------------- Trace context

TEST(WireTraceContextTest, EntryCarryingFrameRoundTripsContext) {
  auto entry = std::make_shared<const Entry>(3, 42, std::vector<Transaction>{});
  Certificate cert;
  EntryTransferMsg msg(entry, cert);
  const NodeId src{3, 5};
  auto frame = DecodeFrame(EncodeFrame(msg, src, 123456789));
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame->has_trace);
  EXPECT_EQ(frame->trace.gid, 3);
  EXPECT_EQ(frame->trace.seq, 42u);
  EXPECT_EQ(frame->trace.origin, src.Packed());
  EXPECT_EQ(frame->trace.origin_ts_ns, 123456789u);
}

TEST(WireTraceContextTest, NonCarryingFrameHasNoContext) {
  ClientReplyMsg msg(7, true);
  auto frame = DecodeFrame(EncodeFrame(msg, NodeId{0, 1}));
  ASSERT_TRUE(frame.ok());
  EXPECT_FALSE(frame->has_trace);
}

TEST(WireTraceContextTest, DefaultEncodeStampsTraceClock) {
  // The convenience overload stamps TraceClock::NowNs(): two encodes of
  // the same message must carry non-decreasing origin timestamps.
  auto entry = std::make_shared<const Entry>(1, 9, std::vector<Transaction>{});
  EntryTransferMsg msg(entry, Certificate{});
  auto first = DecodeFrame(EncodeFrame(msg, NodeId{1, 0}));
  auto second = DecodeFrame(EncodeFrame(msg, NodeId{1, 0}));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_LE(first->trace.origin_ts_ns, second->trace.origin_ts_ns);
}

TEST(WireTraceContextTest, FlagMismatchingTypeIsRejected) {
  // Strip the flag from an entry-carrying frame: decode must refuse, or
  // sim/real byte accounting could silently diverge.
  auto entry = std::make_shared<const Entry>(0, 1, std::vector<Transaction>{});
  EntryTransferMsg msg(entry, Certificate{});
  Bytes wire = EncodeFrame(msg, NodeId{0, 0}, 1);
  wire[6] = 0;  // flags byte
  // Splice out the 22-byte context so the frame is self-consistent again.
  wire.erase(wire.begin() + static_cast<ptrdiff_t>(kFrameHeaderBytes),
             wire.begin() +
                 static_cast<ptrdiff_t>(kFrameHeaderBytes + kTraceContextBytes));
  FixCrc(wire);
  auto frame = DecodeFrame(wire);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsCorruption());
}

TEST(WireMalformedTest, TruncatedAtEveryLengthIsRejected) {
  Bytes wire = SampleFrame();
  for (size_t len = 0; len < wire.size(); ++len) {
    auto frame = DecodeFrame(wire.data(), len);
    EXPECT_FALSE(frame.ok()) << "accepted a " << len << "-byte prefix";
  }
}

TEST(WireMalformedTest, TrailingBytesAreRejected) {
  Bytes wire = SampleFrame();
  wire.push_back(0);
  EXPECT_FALSE(DecodeFrame(wire).ok());
}

TEST(WireMalformedTest, BadMagicIsRejected) {
  Bytes wire = SampleFrame();
  wire[0] ^= 0xFF;
  EXPECT_FALSE(DecodeFrame(wire).ok());
  EXPECT_FALSE(PeekFrameLength(wire.data(), wire.size()).ok());
}

TEST(WireMalformedTest, BadVersionIsRejected) {
  Bytes wire = SampleFrame();
  wire[4] = kWireVersion + 1;
  FixCrc(wire);
  EXPECT_FALSE(DecodeFrame(wire).ok());
  EXPECT_FALSE(PeekFrameLength(wire.data(), wire.size()).ok());
}

TEST(WireMalformedTest, WrongCrcIsRejected) {
  Bytes wire = SampleFrame();
  wire[kFrameHeaderBytes - 4] ^= 0x01;  // CRC field itself.
  EXPECT_FALSE(DecodeFrame(wire).ok());
  wire = SampleFrame();
  wire.back() ^= 0x01;  // Body byte.
  auto frame = DecodeFrame(wire);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsCorruption());
}

TEST(WireMalformedTest, UnknownTypeIsRejectedNotCrashed) {
  Bytes wire = SampleFrame();
  wire[5] = 99;  // No such MessageType.
  FixCrc(wire);
  auto frame = DecodeFrame(wire);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsCorruption());
}

TEST(WireMalformedTest, OversizedBodyLengthIsRejected) {
  Bytes wire = SampleFrame();
  uint32_t huge = kMaxBodyBytes + 1;
  for (int i = 0; i < 4; ++i)
    wire[11 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(huge >> (8 * i));
  EXPECT_FALSE(PeekFrameLength(wire.data(), wire.size()).ok());
  EXPECT_FALSE(DecodeFrame(wire).ok());
}

TEST(WireMalformedTest, ImplausibleElementCountIsRejected) {
  // A GroupRelay body claiming 2^28 events in a 12-byte frame must fail
  // the plausibility check, not attempt a giant allocation.
  BinaryWriter body;
  body.PutVarint(1u << 28);
  GroupRelayMsg sample({}, false);
  Bytes wire = EncodeFrame(sample, NodeId{0, 0});
  wire.resize(kFrameHeaderBytes);
  wire.insert(wire.end(), body.buffer().begin(), body.buffer().end());
  uint32_t body_len = static_cast<uint32_t>(body.size());
  for (int i = 0; i < 4; ++i)
    wire[11 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(body_len >> (8 * i));
  FixCrc(wire);
  auto frame = DecodeFrame(wire);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsCorruption());
}

/// Fuzz-ish: random corruption of one byte anywhere in the frame must
/// yield an error or a well-formed decode — never a crash.
TEST(WireMalformedTest, SingleByteCorruptionNeverCrashes) {
  Rng rng(9);
  for (MessageType type : kAllTypes) {
    auto msg = MakeMessage(type, rng);
    Bytes wire = EncodeFrame(*msg, NodeId{1, 1});
    for (int trial = 0; trial < 32; ++trial) {
      Bytes corrupt = wire;
      corrupt[rng.NextBelow(corrupt.size())] ^=
          static_cast<uint8_t>(1 + rng.NextBelow(255));
      auto frame = DecodeFrame(corrupt);  // Must not crash.
      if (frame.ok()) {
        EXPECT_NE(frame->msg, nullptr);
      }
    }
  }
}

// ------------------------------------------------------------ Transports

/// Collects delivered frames with a latch the test can wait on.
struct Sink {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Frame> frames;

  Transport::DeliverFn fn() {
    return [this](Frame f) {
      std::lock_guard<std::mutex> lock(mu);
      frames.push_back(std::move(f));
      cv.notify_all();
    };
  }
  bool WaitForCount(size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::seconds(5),
                       [&] { return frames.size() >= n; });
  }
};

TEST(InProcTransportTest, DeliversThroughFullCodec) {
  InProcHub hub;
  auto a = hub.CreateTransport(NodeId{0, 0});
  auto b = hub.CreateTransport(NodeId{0, 1});
  Sink sink_a, sink_b;
  ASSERT_TRUE(a->Start(sink_a.fn()).ok());
  ASSERT_TRUE(b->Start(sink_b.fn()).ok());

  GroupHeartbeatMsg msg(2, 77);
  ASSERT_TRUE(a->Send(NodeId{0, 1}, msg).ok());
  ASSERT_TRUE(sink_b.WaitForCount(1));
  EXPECT_EQ(sink_b.frames[0].src, (NodeId{0, 0}));
  auto& decoded =
      static_cast<const GroupHeartbeatMsg&>(*sink_b.frames[0].msg);
  EXPECT_EQ(decoded.gid(), 2);
  EXPECT_EQ(decoded.last_seq(), 77u);

  EXPECT_EQ(a->stats().frames_sent, 1u);
  EXPECT_EQ(a->stats().bytes_sent, msg.ByteSize());
  EXPECT_EQ(b->stats().frames_received, 1u);

  // Unknown destination is a local error, counted, not a crash.
  EXPECT_FALSE(a->Send(NodeId{9, 9}, msg).ok());
  EXPECT_EQ(a->stats().send_errors, 1u);

  b->Stop();
  EXPECT_FALSE(a->Send(NodeId{0, 1}, msg).ok());  // Deregistered.
  a->Stop();
  a->Stop();  // Idempotent.
}

TcpPortMap MustMakePortMap(const std::vector<int>& group_sizes,
                           uint16_t base) {
  auto ports = MakeLocalPortMap(group_sizes, base);
  EXPECT_TRUE(ports.ok()) << ports.status().ToString();
  return *ports;
}

TEST(TcpTransportTest, LoopbackRoundTrip) {
  TcpPortMap ports = MustMakePortMap({2}, /*base=*/19321);
  TcpTransport a(NodeId{0, 0}, ports);
  TcpTransport b(NodeId{0, 1}, ports);
  Sink sink_a, sink_b;
  ASSERT_TRUE(a.Start(sink_a.fn()).ok());
  ASSERT_TRUE(b.Start(sink_b.fn()).ok());

  // Both directions, including a large frame spanning multiple reads.
  Rng rng(3);
  auto big = MakeMessage(MessageType::kEntryTransfer, rng);
  GroupHeartbeatMsg small(1, 5);
  ASSERT_TRUE(a.Send(NodeId{0, 1}, *big).ok());
  ASSERT_TRUE(a.Send(NodeId{0, 1}, small).ok());
  ASSERT_TRUE(b.Send(NodeId{0, 0}, small).ok());

  ASSERT_TRUE(sink_b.WaitForCount(2));
  ASSERT_TRUE(sink_a.WaitForCount(1));
  EXPECT_EQ(sink_b.frames[0].msg->message_type(),
            MessageType::kEntryTransfer);
  EXPECT_EQ(sink_b.frames[1].msg->message_type(),
            MessageType::kGroupHeartbeat);
  EXPECT_EQ(sink_a.frames[0].src, (NodeId{0, 1}));

  EXPECT_EQ(a.stats().frames_sent, 2u);
  EXPECT_EQ(b.stats().frames_received, 2u);
  a.Stop();
  b.Stop();
}

TEST(TcpTransportTest, SendToUnmappedNodeFails) {
  TcpPortMap ports = MustMakePortMap({1}, /*base=*/19331);
  TcpTransport a(NodeId{0, 0}, ports);
  Sink sink;
  ASSERT_TRUE(a.Start(sink.fn()).ok());
  GroupHeartbeatMsg msg(0, 0);
  EXPECT_FALSE(a.Send(NodeId{5, 5}, msg).ok());
  EXPECT_EQ(a.stats().send_errors, 1u);
  a.Stop();
}

TEST(TcpTransportTest, PortMapRejectsOverflowPast65535) {
  // 65534 + 2 nodes = ports {65534, 65535}: the last legal assignment.
  EXPECT_TRUE(MakeLocalPortMap({2}, 65534).ok());
  // One node more would need port 65536.
  auto overflow = MakeLocalPortMap({3}, 65534);
  ASSERT_FALSE(overflow.ok());
  EXPECT_TRUE(overflow.status().IsInvalidArgument());
  // The old uint16_t arithmetic silently wrapped a large cluster onto
  // low ports; now it is refused outright.
  EXPECT_FALSE(MakeLocalPortMap({200, 200}, 65400).ok());
  EXPECT_FALSE(MakeLocalPortMap({-1}, 1000).ok());
  // Empty map is fine.
  EXPECT_TRUE(MakeLocalPortMap({}, 65535).ok());
}

TEST(TcpTransportTest, SendToDeadPeerNeverBlocks) {
  // Node {0,1} is mapped but never started: every send must enqueue (or
  // drop) and return immediately — the old transport dialed synchronously
  // with retries and blocked the caller for ~2 seconds.
  TcpPortMap ports = MustMakePortMap({2}, /*base=*/19441);
  TcpTransport a(NodeId{0, 0}, ports);
  Sink sink;
  ASSERT_TRUE(a.Start(sink.fn()).ok());

  GroupHeartbeatMsg msg(1, 1);
  for (int i = 0; i < 50; ++i) {
    auto start = std::chrono::steady_clock::now();
    ASSERT_TRUE(a.Send(NodeId{0, 1}, msg).ok());
    auto elapsed = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    // The 10ms liveness budget, with CI scheduling headroom.
    EXPECT_LT(elapsed, 100.0) << "send " << i << " blocked";
  }
  EXPECT_EQ(a.stats().frames_sent, 0u);  // Nothing reached a wire.
  a.Stop();
}

TEST(TcpTransportTest, BackpressureDropsWhenQueueFull) {
  TcpTransport::Options options;
  options.max_queue_frames = 4;
  TcpPortMap ports = MustMakePortMap({2}, /*base=*/19451);
  TcpTransport a(NodeId{0, 0}, ports, options);
  Sink sink;
  ASSERT_TRUE(a.Start(sink.fn()).ok());

  GroupHeartbeatMsg msg(1, 1);
  int dropped = 0;
  for (int i = 0; i < 20; ++i)
    if (!a.Send(NodeId{0, 1}, msg).ok()) ++dropped;
  EXPECT_GT(dropped, 0);
  EXPECT_EQ(a.stats().dropped_backpressure, static_cast<uint64_t>(dropped));
  // Backpressure is not a send error; the counters are distinct.
  EXPECT_EQ(a.stats().send_errors, 0u);
  a.Stop();
}

TEST(TcpTransportTest, ReconnectsAfterPeerRestart) {
  TcpPortMap ports = MustMakePortMap({2}, /*base=*/19461);
  TcpTransport a(NodeId{0, 0}, ports);
  auto b = std::make_unique<TcpTransport>(NodeId{0, 1}, ports);
  Sink sink_a, sink_b1;
  ASSERT_TRUE(a.Start(sink_a.fn()).ok());
  ASSERT_TRUE(b->Start(sink_b1.fn()).ok());

  GroupHeartbeatMsg msg(7, 1);
  ASSERT_TRUE(a.Send(NodeId{0, 1}, msg).ok());
  ASSERT_TRUE(sink_b1.WaitForCount(1));

  // Kill the peer. Sends during the outage enqueue (or die with the
  // connection — TCP loss semantics) but never block the caller.
  b->Stop();
  b.reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(a.Send(NodeId{0, 1}, msg).ok());

  // Restart on the same port. Fresh sends force the writer to discover
  // the dead connection, redial with backoff, and flow frames again —
  // that is the liveness contract (loss of in-flight frames is allowed;
  // the BFT layer owns retries).
  b = std::make_unique<TcpTransport>(NodeId{0, 1}, ports);
  Sink sink_b2;
  ASSERT_TRUE(b->Start(sink_b2.fn()).ok());
  bool delivered = false;
  for (int i = 0; i < 200 && !delivered; ++i) {
    ASSERT_TRUE(a.Send(NodeId{0, 1}, msg).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::lock_guard<std::mutex> lock(sink_b2.mu);
    delivered = !sink_b2.frames.empty();
  }
  EXPECT_TRUE(delivered) << "no frame flowed after peer restart";
  EXPECT_GE(a.stats().reconnects, 1u);
  a.Stop();
  b->Stop();
}

// ------------------------------------------------------- Fault injection

std::unique_ptr<FaultInjectingTransport> Inject(InProcHub& hub, NodeId self,
                                                FaultSpec spec) {
  return std::make_unique<FaultInjectingTransport>(hub.CreateTransport(self),
                                                   spec);
}

TEST(FaultTransportTest, DropRateOneDropsEverything) {
  InProcHub hub;
  FaultSpec spec;
  spec.drop_rate = 1.0;
  auto a = Inject(hub, NodeId{0, 0}, spec);
  auto b = hub.CreateTransport(NodeId{0, 1});
  Sink sink_a, sink_b;
  ASSERT_TRUE(a->Start(sink_a.fn()).ok());
  ASSERT_TRUE(b->Start(sink_b.fn()).ok());

  GroupHeartbeatMsg msg(1, 1);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(a->Send(NodeId{0, 1}, msg).ok());
  EXPECT_EQ(a->fault_stats().dropped, 10u);
  EXPECT_EQ(b->stats().frames_received, 0u);
  EXPECT_EQ(a->stats().frames_sent, 0u);  // Dropped before the inner send.
  a->Stop();
  b->Stop();
}

TEST(FaultTransportTest, DuplicateRateOneDeliversTwice) {
  InProcHub hub;
  FaultSpec spec;
  spec.duplicate_rate = 1.0;
  auto a = Inject(hub, NodeId{0, 0}, spec);
  auto b = hub.CreateTransport(NodeId{0, 1});
  Sink sink_a, sink_b;
  ASSERT_TRUE(a->Start(sink_a.fn()).ok());
  ASSERT_TRUE(b->Start(sink_b.fn()).ok());

  GroupHeartbeatMsg msg(1, 1);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(a->Send(NodeId{0, 1}, msg).ok());
  EXPECT_EQ(a->fault_stats().duplicated, 5u);
  EXPECT_EQ(b->stats().frames_received, 10u);
  a->Stop();
  b->Stop();
}

TEST(FaultTransportTest, CorruptionIsCaughtByReceiverCrc) {
  InProcHub hub;
  FaultSpec spec;
  spec.corrupt_rate = 1.0;
  auto a = Inject(hub, NodeId{0, 0}, spec);
  auto b = hub.CreateTransport(NodeId{0, 1});
  Sink sink_a, sink_b;
  ASSERT_TRUE(a->Start(sink_a.fn()).ok());
  ASSERT_TRUE(b->Start(sink_b.fn()).ok());

  GroupHeartbeatMsg msg(1, 1);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(a->Send(NodeId{0, 1}, msg).ok());
  // Real mangled bytes went on the wire; the receiver's codec rejected
  // every frame (one flipped byte always breaks the CRC or the header).
  EXPECT_EQ(a->fault_stats().corrupted, 10u);
  EXPECT_EQ(b->stats().decode_errors, 10u);
  EXPECT_EQ(b->stats().frames_received, 0u);
  EXPECT_TRUE(sink_b.frames.empty());
  a->Stop();
  b->Stop();
}

TEST(FaultTransportTest, DelayedFramesArriveLater) {
  InProcHub hub;
  FaultSpec spec;
  spec.delay_rate = 1.0;
  spec.delay_min_ms = 5.0;
  spec.delay_max_ms = 15.0;
  auto a = Inject(hub, NodeId{0, 0}, spec);
  auto b = hub.CreateTransport(NodeId{0, 1});
  Sink sink_a, sink_b;
  ASSERT_TRUE(a->Start(sink_a.fn()).ok());
  ASSERT_TRUE(b->Start(sink_b.fn()).ok());

  GroupHeartbeatMsg msg(1, 1);
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(a->Send(NodeId{0, 1}, msg).ok());
  // Sends return before delivery (they only scheduled the frames).
  EXPECT_EQ(a->fault_stats().delayed, 4u);
  ASSERT_TRUE(sink_b.WaitForCount(4));
  auto elapsed = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_GE(elapsed, 5.0);  // At least the minimum delay.
  a->Stop();
  b->Stop();
}

TEST(FaultTransportTest, DelayStallsTheLinkButNeverReordersIt) {
  // The VTS ordering engine infers lower bounds from the assumption that
  // each channel delivers stamps in non-decreasing order — real TCP's
  // per-connection FIFO. The injector must honor it: a delayed frame
  // stalls later frames on the same link instead of being overtaken.
  InProcHub hub;
  FaultSpec spec;
  spec.seed = 1234;
  spec.delay_rate = 0.5;
  spec.delay_min_ms = 1.0;
  spec.delay_max_ms = 20.0;
  auto a = Inject(hub, NodeId{0, 0}, spec);
  auto b = hub.CreateTransport(NodeId{0, 1});
  Sink sink_a, sink_b;
  ASSERT_TRUE(a->Start(sink_a.fn()).ok());
  ASSERT_TRUE(b->Start(sink_b.fn()).ok());

  constexpr uint64_t kFrames = 50;
  for (uint64_t i = 0; i < kFrames; ++i) {
    GroupHeartbeatMsg msg(0, /*last_seq=*/i);
    EXPECT_TRUE(a->Send(NodeId{0, 1}, msg).ok());
  }
  ASSERT_TRUE(sink_b.WaitForCount(kFrames));
  EXPECT_GT(a->fault_stats().delayed, 0u);
  std::lock_guard<std::mutex> lock(sink_b.mu);
  for (uint64_t i = 0; i < kFrames; ++i) {
    auto* hb = static_cast<GroupHeartbeatMsg*>(sink_b.frames[i].msg.get());
    EXPECT_EQ(hb->last_seq(), i) << "frame overtook a delayed predecessor";
  }
  a->Stop();
  b->Stop();
}

TEST(FaultTransportTest, PartitionWindowCutsBothDirectionsThenHeals) {
  InProcHub hub;
  FaultSpec spec;
  FaultSpec::Partition partition;
  partition.start_s = 0;
  partition.end_s = 0.25;
  partition.side_a = {0};  // Group 0 vs everyone else.
  spec.partitions.push_back(partition);

  auto a = Inject(hub, NodeId{0, 0}, spec);  // Group 0.
  auto b = Inject(hub, NodeId{1, 0}, spec);  // Group 1.
  Sink sink_a, sink_b;
  ASSERT_TRUE(a->Start(sink_a.fn()).ok());
  ASSERT_TRUE(b->Start(sink_b.fn()).ok());

  GroupHeartbeatMsg msg(1, 1);
  EXPECT_TRUE(a->Send(NodeId{1, 0}, msg).ok());
  EXPECT_TRUE(b->Send(NodeId{0, 0}, msg).ok());
  EXPECT_EQ(a->fault_stats().partition_dropped +
                b->fault_stats().partition_dropped,
            2u);
  EXPECT_TRUE(sink_a.frames.empty());
  EXPECT_TRUE(sink_b.frames.empty());

  // After the window the same sends go through (the partition healed).
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_TRUE(a->Send(NodeId{1, 0}, msg).ok());
  EXPECT_TRUE(b->Send(NodeId{0, 0}, msg).ok());
  ASSERT_TRUE(sink_a.WaitForCount(1));
  ASSERT_TRUE(sink_b.WaitForCount(1));
  a->Stop();
  b->Stop();
}

TEST(FaultTransportTest, SameSeedSameMessageSequenceSameFaults) {
  FaultSpec spec;
  spec.seed = 12345;
  spec.drop_rate = 0.3;
  spec.duplicate_rate = 0.2;
  spec.corrupt_rate = 0.2;
  GroupHeartbeatMsg msg(1, 1);

  auto run = [&] {
    InProcHub hub;
    auto a = Inject(hub, NodeId{0, 0}, spec);
    auto b = hub.CreateTransport(NodeId{0, 1});
    Sink sink_a, sink_b;
    EXPECT_TRUE(a->Start(sink_a.fn()).ok());
    EXPECT_TRUE(b->Start(sink_b.fn()).ok());
    for (int i = 0; i < 200; ++i) (void)a->Send(NodeId{0, 1}, msg);
    FaultStats stats = a->fault_stats();
    a->Stop();
    b->Stop();
    return stats;
  };

  FaultStats first = run();
  FaultStats second = run();
  EXPECT_GT(first.total(), 0u);
  EXPECT_EQ(first.dropped, second.dropped);
  EXPECT_EQ(first.duplicated, second.duplicated);
  EXPECT_EQ(first.corrupted, second.corrupted);
  EXPECT_EQ(first.delayed, second.delayed);
}

}  // namespace
}  // namespace massbft
