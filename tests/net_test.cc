#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <iterator>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cpu.h"
#include "common/rng.h"
#include "net/buffer_pool.h"
#include "net/crc32.h"
#include "net/rx_ring.h"
#include "net/fault_transport.h"
#include "net/inproc_transport.h"
#include "net/tcp_transport.h"
#include "net/wire.h"
#include "proto/messages.h"

namespace massbft {
namespace {

// ------------------------------------------------------------ Crc32

TEST(Crc32Test, KnownVectors) {
  // The standard CRC-32 check value.
  const uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32::Compute(check, sizeof(check)), 0xCBF43926u);
  EXPECT_EQ(Crc32::Compute(nullptr, 0), 0x00000000u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  Bytes data(1000);
  Rng rng(7);
  for (auto& b : data) b = static_cast<uint8_t>(rng.NextU64());
  Crc32 crc;
  crc.Update(data.data(), 100);
  crc.Update(data.data() + 100, 1);
  crc.Update(data.data() + 101, data.size() - 101);
  EXPECT_EQ(crc.Finish(), Crc32::Compute(data.data(), data.size()));
}

// ---------------------------------------------------- Message factory

Signature RandSig(Rng& rng) {
  Signature sig;
  for (auto& b : sig) b = static_cast<uint8_t>(rng.NextU64());
  return sig;
}

Digest RandDigest(Rng& rng) {
  Digest d;
  for (auto& b : d) b = static_cast<uint8_t>(rng.NextU64());
  return d;
}

Transaction RandTxn(Rng& rng) {
  Transaction txn;
  txn.id = rng.NextU64();
  txn.client = static_cast<uint32_t>(rng.NextU64());
  txn.submit_time = static_cast<SimTime>(rng.NextBelow(1u << 30));
  txn.payload.resize(rng.NextBelow(200));
  for (auto& b : txn.payload) b = static_cast<uint8_t>(rng.NextU64());
  return txn;
}

EntryPtr RandEntry(Rng& rng) {
  std::vector<Transaction> txns;
  size_t n = rng.NextBelow(4);
  for (size_t i = 0; i < n; ++i) txns.push_back(RandTxn(rng));
  return std::make_shared<const Entry>(
      static_cast<uint16_t>(rng.NextBelow(8)), rng.NextU64(),
      std::move(txns));
}

Certificate RandCert(Rng& rng) {
  Certificate cert;
  cert.gid = static_cast<uint16_t>(rng.NextBelow(8));
  cert.digest = RandDigest(rng);
  size_t n = 1 + rng.NextBelow(3);
  for (size_t i = 0; i < n; ++i)
    cert.AddSignature(static_cast<uint16_t>(i), RandSig(rng));
  return cert;
}

DecisionId RandDecision(Rng& rng) {
  DecisionId d;
  d.kind = static_cast<uint8_t>(rng.NextBelow(4));
  d.voter_gid = static_cast<uint16_t>(rng.NextBelow(8));
  d.target_gid = static_cast<uint16_t>(rng.NextBelow(8));
  d.target_seq = rng.NextU64();
  d.ts = rng.NextU64();
  return d;
}

std::vector<TimestampElement> RandElements(Rng& rng) {
  std::vector<TimestampElement> elements;
  size_t n = 1 + rng.NextBelow(5);
  for (size_t i = 0; i < n; ++i)
    elements.push_back(TimestampElement{
        static_cast<uint16_t>(rng.NextBelow(8)),
        static_cast<uint16_t>(rng.NextBelow(8)), rng.NextU64(),
        rng.NextU64()});
  return elements;
}

std::vector<Chunk> RandChunks(Rng& rng) {
  std::vector<Chunk> chunks;
  size_t n = 1 + rng.NextBelow(3);
  for (size_t i = 0; i < n; ++i) {
    Chunk c;
    c.chunk_id = static_cast<uint32_t>(rng.NextU64());
    c.data.resize(1 + rng.NextBelow(64));
    for (auto& b : c.data) b = static_cast<uint8_t>(rng.NextU64());
    c.proof.index = static_cast<uint32_t>(i);
    c.proof.leaf_count = static_cast<uint32_t>(n);
    c.proof.path = {RandDigest(rng), RandDigest(rng)};
    chunks.push_back(std::move(c));
  }
  return chunks;
}

/// A randomized instance of every wire message kind.
std::unique_ptr<ProtocolMessage> MakeMessage(MessageType type, Rng& rng) {
  using T = MessageType;
  switch (type) {
    case T::kClientRequest:
      return std::make_unique<ClientRequestMsg>(RandTxn(rng));
    case T::kClientReply:
      return std::make_unique<ClientReplyMsg>(rng.NextU64(),
                                              rng.NextBelow(2) == 0);
    case T::kPrePrepare:
      return std::make_unique<PrePrepareMsg>(rng.NextU64(), rng.NextU64(),
                                             RandEntry(rng), RandSig(rng));
    case T::kPrepare:
    case T::kCommit:
      return std::make_unique<PbftVoteMsg>(type, rng.NextU64(), rng.NextU64(),
                                           RandDigest(rng), RandSig(rng));
    case T::kViewChange:
    case T::kNewView:
      return std::make_unique<ViewChangeMsg>(type, rng.NextU64(),
                                             rng.NextU64(),
                                             rng.NextBelow(300));
    case T::kCertifyRequest:
      return std::make_unique<CertifyRequestMsg>(RandDecision(rng),
                                                 RandSig(rng));
    case T::kCertifyVote:
      return std::make_unique<CertifyVoteMsg>(RandDecision(rng),
                                              RandSig(rng));
    case T::kEntryTransfer:
      return std::make_unique<EntryTransferMsg>(RandEntry(rng),
                                                RandCert(rng));
    case T::kChunkBatch:
      return std::make_unique<ChunkBatchMsg>(
          static_cast<uint16_t>(rng.NextBelow(8)), rng.NextU64(),
          RandDigest(rng), RandCert(rng), RandChunks(rng),
          rng.NextBelow(1u << 20));
    case T::kRaftPropose:
      return std::make_unique<RaftProposeMsg>(
          static_cast<uint16_t>(rng.NextBelow(8)), rng.NextU64(),
          RandDigest(rng), RandCert(rng), RandElements(rng),
          static_cast<uint16_t>(rng.NextBelow(8)), rng.NextU64());
    case T::kRaftAccept:
      return std::make_unique<RaftAcceptMsg>(
          static_cast<uint16_t>(rng.NextBelow(8)), rng.NextU64(),
          static_cast<uint16_t>(rng.NextBelow(8)), RandCert(rng),
          rng.NextU64());
    case T::kRaftCommit:
      return std::make_unique<RaftCommitMsg>(
          static_cast<uint16_t>(rng.NextBelow(8)), rng.NextU64(),
          RandCert(rng));
    case T::kTimestampAssign:
      return std::make_unique<TimestampAssignMsg>(RandElements(rng),
                                                  rng.NextBelow(2) == 0);
    case T::kGroupHeartbeat:
      return std::make_unique<GroupHeartbeatMsg>(
          static_cast<uint16_t>(rng.NextBelow(8)), rng.NextU64());
    case T::kGroupRelay: {
      std::vector<RelayEvent> events;
      size_t n = 1 + rng.NextBelow(4);
      for (size_t i = 0; i < n; ++i)
        events.push_back(RelayEvent{
            static_cast<uint8_t>(1 + rng.NextBelow(2)),
            static_cast<uint16_t>(rng.NextBelow(8)), rng.NextU64(),
            static_cast<uint16_t>(rng.NextBelow(8)), rng.NextU64()});
      return std::make_unique<GroupRelayMsg>(std::move(events),
                                             rng.NextBelow(2) == 0);
    }
    case T::kEpochMarker:
      return std::make_unique<EpochMarkerMsg>(
          static_cast<uint16_t>(rng.NextBelow(8)), rng.NextU64(),
          rng.NextU64());
    case T::kLeaderForward:
      return std::make_unique<LeaderForwardMsg>(RandEntry(rng),
                                                RandCert(rng));
    case T::kCatchUpRequest: {
      std::vector<std::pair<uint16_t, uint64_t>> next;
      size_t n = 1 + rng.NextBelow(4);
      for (size_t i = 0; i < n; ++i)
        next.emplace_back(static_cast<uint16_t>(i), rng.NextU64());
      return std::make_unique<CatchUpRequestMsg>(std::move(next));
    }
    case T::kFreezeQuery:
    case T::kFreezeReport:
      return std::make_unique<FreezeMsg>(
          type, static_cast<uint16_t>(rng.NextBelow(8)), rng.NextU64());
    case T::kCatchUpDone:
      return std::make_unique<CatchUpDoneMsg>();
  }
  return nullptr;
}

constexpr MessageType kAllTypes[] = {
    MessageType::kClientRequest, MessageType::kClientReply,
    MessageType::kPrePrepare,    MessageType::kPrepare,
    MessageType::kCommit,        MessageType::kViewChange,
    MessageType::kNewView,       MessageType::kCertifyRequest,
    MessageType::kCertifyVote,   MessageType::kEntryTransfer,
    MessageType::kChunkBatch,    MessageType::kRaftPropose,
    MessageType::kRaftAccept,    MessageType::kRaftCommit,
    MessageType::kTimestampAssign, MessageType::kGroupHeartbeat,
    MessageType::kGroupRelay,    MessageType::kEpochMarker,
    MessageType::kLeaderForward, MessageType::kCatchUpRequest,
    MessageType::kFreezeQuery,   MessageType::kFreezeReport,
    MessageType::kCatchUpDone,
};

// ------------------------------------------------------------ Roundtrip

/// Every message kind survives encode -> decode -> re-encode with
/// byte-identical frames (which proves field-level equality without
/// per-field comparison), and ByteSize() equals the real frame size.
TEST(WireRoundTripTest, EveryMessageTypeRoundTrips) {
  Rng rng(42);
  const NodeId src{3, 7};
  for (MessageType type : kAllTypes) {
    for (int iteration = 0; iteration < 8; ++iteration) {
      auto msg = MakeMessage(type, rng);
      ASSERT_NE(msg, nullptr) << "no factory for type "
                              << static_cast<int>(type);
      // Fixed origin timestamp so the re-encode comparison below is
      // byte-exact (the default overload stamps TraceClock::NowNs()).
      Bytes wire = EncodeFrame(*msg, src, 777);
      EXPECT_EQ(wire.size(), msg->ByteSize())
          << "type " << static_cast<int>(type);

      auto peeked = PeekFrameLength(wire.data(), wire.size());
      ASSERT_TRUE(peeked.ok());
      EXPECT_EQ(*peeked, wire.size());

      auto frame = DecodeFrame(wire);
      ASSERT_TRUE(frame.ok()) << "type " << static_cast<int>(type) << ": "
                              << frame.status().ToString();
      EXPECT_EQ(frame->src, src);
      ASSERT_NE(frame->msg, nullptr);
      EXPECT_EQ(frame->msg->message_type(), type);

      EXPECT_EQ(frame->has_trace, CarriesTraceContext(type));

      Bytes rewire = EncodeFrame(*frame->msg, src, 777);
      EXPECT_EQ(rewire, wire) << "re-encode divergence for type "
                              << static_cast<int>(type);
    }
  }
}

TEST(WireRoundTripTest, FieldLevelSpotChecks) {
  Rng rng(1);
  const NodeId src{1, 2};
  {
    auto entry = RandEntry(rng);
    auto cert = RandCert(rng);
    EntryTransferMsg msg(entry, cert);
    auto frame = DecodeFrame(EncodeFrame(msg, src));
    ASSERT_TRUE(frame.ok());
    auto& decoded = static_cast<const EntryTransferMsg&>(*frame->msg);
    EXPECT_EQ(decoded.entry()->digest(), entry->digest());
    EXPECT_EQ(decoded.entry()->txns(), entry->txns());
    EXPECT_EQ(decoded.cert(), cert);
  }
  {
    auto elements = RandElements(rng);
    RaftProposeMsg msg(4, 99, RandDigest(rng), RandCert(rng), elements, 2, 55);
    auto frame = DecodeFrame(EncodeFrame(msg, src));
    ASSERT_TRUE(frame.ok());
    auto& decoded = static_cast<const RaftProposeMsg&>(*frame->msg);
    EXPECT_EQ(decoded.gid(), 4);
    EXPECT_EQ(decoded.seq(), 99u);
    EXPECT_EQ(decoded.piggyback(), elements);
    EXPECT_EQ(decoded.origin_gid(), 2);
    EXPECT_EQ(decoded.origin_seq(), 55u);
  }
  {
    auto chunks = RandChunks(rng);
    ChunkBatchMsg msg(1, 7, RandDigest(rng), RandCert(rng), chunks, 4096);
    auto frame = DecodeFrame(EncodeFrame(msg, src));
    ASSERT_TRUE(frame.ok());
    auto& decoded = static_cast<const ChunkBatchMsg&>(*frame->msg);
    ASSERT_EQ(decoded.chunks().size(), chunks.size());
    EXPECT_EQ(decoded.chunks()[0].data, chunks[0].data);
    EXPECT_EQ(decoded.chunks()[0].proof.path, chunks[0].proof.path);
    EXPECT_EQ(decoded.entry_size(), 4096u);
  }
}

// ------------------------------------------------------------ Malformed

Bytes SampleFrame() {
  ClientReplyMsg msg(12345, true);
  return EncodeFrame(msg, NodeId{0, 1});
}

/// Recomputes the CRC after tampering with header/body bytes so tests hit
/// the check they target instead of tripping the CRC first.
void FixCrc(Bytes& wire) {
  Crc32 crc;
  crc.Update(wire.data() + 4, kFrameHeaderBytes - 8);  // version..body_len
  crc.Update(wire.data() + kFrameHeaderBytes,
             wire.size() - kFrameHeaderBytes);
  uint32_t value = crc.Finish();
  for (int i = 0; i < 4; ++i)
    wire[kFrameHeaderBytes - 4 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(value >> (8 * i));
}

// ------------------------------------------------------- Trace context

TEST(WireTraceContextTest, EntryCarryingFrameRoundTripsContext) {
  auto entry = std::make_shared<const Entry>(3, 42, std::vector<Transaction>{});
  Certificate cert;
  EntryTransferMsg msg(entry, cert);
  const NodeId src{3, 5};
  auto frame = DecodeFrame(EncodeFrame(msg, src, 123456789));
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame->has_trace);
  EXPECT_EQ(frame->trace.gid, 3);
  EXPECT_EQ(frame->trace.seq, 42u);
  EXPECT_EQ(frame->trace.origin, src.Packed());
  EXPECT_EQ(frame->trace.origin_ts_ns, 123456789u);
}

TEST(WireTraceContextTest, NonCarryingFrameHasNoContext) {
  ClientReplyMsg msg(7, true);
  auto frame = DecodeFrame(EncodeFrame(msg, NodeId{0, 1}));
  ASSERT_TRUE(frame.ok());
  EXPECT_FALSE(frame->has_trace);
}

TEST(WireTraceContextTest, DefaultEncodeStampsTraceClock) {
  // The convenience overload stamps TraceClock::NowNs(): two encodes of
  // the same message must carry non-decreasing origin timestamps.
  auto entry = std::make_shared<const Entry>(1, 9, std::vector<Transaction>{});
  EntryTransferMsg msg(entry, Certificate{});
  auto first = DecodeFrame(EncodeFrame(msg, NodeId{1, 0}));
  auto second = DecodeFrame(EncodeFrame(msg, NodeId{1, 0}));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_LE(first->trace.origin_ts_ns, second->trace.origin_ts_ns);
}

TEST(WireTraceContextTest, FlagMismatchingTypeIsRejected) {
  // Strip the flag from an entry-carrying frame: decode must refuse, or
  // sim/real byte accounting could silently diverge.
  auto entry = std::make_shared<const Entry>(0, 1, std::vector<Transaction>{});
  EntryTransferMsg msg(entry, Certificate{});
  Bytes wire = EncodeFrame(msg, NodeId{0, 0}, 1);
  wire[6] = 0;  // flags byte
  // Splice out the 22-byte context so the frame is self-consistent again.
  wire.erase(wire.begin() + static_cast<ptrdiff_t>(kFrameHeaderBytes),
             wire.begin() +
                 static_cast<ptrdiff_t>(kFrameHeaderBytes + kTraceContextBytes));
  FixCrc(wire);
  auto frame = DecodeFrame(wire);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsCorruption());
}

TEST(WireMalformedTest, TruncatedAtEveryLengthIsRejected) {
  Bytes wire = SampleFrame();
  for (size_t len = 0; len < wire.size(); ++len) {
    auto frame = DecodeFrame(wire.data(), len);
    EXPECT_FALSE(frame.ok()) << "accepted a " << len << "-byte prefix";
  }
}

TEST(WireMalformedTest, TrailingBytesAreRejected) {
  Bytes wire = SampleFrame();
  wire.push_back(0);
  EXPECT_FALSE(DecodeFrame(wire).ok());
}

TEST(WireMalformedTest, BadMagicIsRejected) {
  Bytes wire = SampleFrame();
  wire[0] ^= 0xFF;
  EXPECT_FALSE(DecodeFrame(wire).ok());
  EXPECT_FALSE(PeekFrameLength(wire.data(), wire.size()).ok());
}

TEST(WireMalformedTest, BadVersionIsRejected) {
  Bytes wire = SampleFrame();
  wire[4] = kWireVersion + 1;
  FixCrc(wire);
  EXPECT_FALSE(DecodeFrame(wire).ok());
  EXPECT_FALSE(PeekFrameLength(wire.data(), wire.size()).ok());
}

TEST(WireMalformedTest, WrongCrcIsRejected) {
  Bytes wire = SampleFrame();
  wire[kFrameHeaderBytes - 4] ^= 0x01;  // CRC field itself.
  EXPECT_FALSE(DecodeFrame(wire).ok());
  wire = SampleFrame();
  wire.back() ^= 0x01;  // Body byte.
  auto frame = DecodeFrame(wire);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsCorruption());
}

TEST(WireMalformedTest, UnknownTypeIsRejectedNotCrashed) {
  Bytes wire = SampleFrame();
  wire[5] = 99;  // No such MessageType.
  FixCrc(wire);
  auto frame = DecodeFrame(wire);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsCorruption());
}

TEST(WireMalformedTest, OversizedBodyLengthIsRejected) {
  Bytes wire = SampleFrame();
  uint32_t huge = kMaxBodyBytes + 1;
  for (int i = 0; i < 4; ++i)
    wire[11 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(huge >> (8 * i));
  EXPECT_FALSE(PeekFrameLength(wire.data(), wire.size()).ok());
  EXPECT_FALSE(DecodeFrame(wire).ok());
}

TEST(WireMalformedTest, ImplausibleElementCountIsRejected) {
  // A GroupRelay body claiming 2^28 events in a 12-byte frame must fail
  // the plausibility check, not attempt a giant allocation.
  BinaryWriter body;
  body.PutVarint(1u << 28);
  GroupRelayMsg sample({}, false);
  Bytes wire = EncodeFrame(sample, NodeId{0, 0});
  wire.resize(kFrameHeaderBytes);
  wire.insert(wire.end(), body.buffer().begin(), body.buffer().end());
  uint32_t body_len = static_cast<uint32_t>(body.size());
  for (int i = 0; i < 4; ++i)
    wire[11 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(body_len >> (8 * i));
  FixCrc(wire);
  auto frame = DecodeFrame(wire);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsCorruption());
}

/// Fuzz-ish: random corruption of one byte anywhere in the frame must
/// yield an error or a well-formed decode — never a crash.
TEST(WireMalformedTest, SingleByteCorruptionNeverCrashes) {
  Rng rng(9);
  for (MessageType type : kAllTypes) {
    auto msg = MakeMessage(type, rng);
    Bytes wire = EncodeFrame(*msg, NodeId{1, 1});
    for (int trial = 0; trial < 32; ++trial) {
      Bytes corrupt = wire;
      corrupt[rng.NextBelow(corrupt.size())] ^=
          static_cast<uint8_t>(1 + rng.NextBelow(255));
      auto frame = DecodeFrame(corrupt);  // Must not crash.
      if (frame.ok()) {
        EXPECT_NE(frame->msg, nullptr);
      }
    }
  }
}

// ------------------------------------------------------------ Transports

/// Collects delivered frames with a latch the test can wait on.
struct Sink {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Frame> frames;

  Transport::DeliverFn fn() {
    return [this](Frame f) {
      std::lock_guard<std::mutex> lock(mu);
      frames.push_back(std::move(f));
      cv.notify_all();
    };
  }
  bool WaitForCount(size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::seconds(5),
                       [&] { return frames.size() >= n; });
  }
};

TEST(InProcTransportTest, DeliversThroughFullCodec) {
  InProcHub hub;
  auto a = hub.CreateTransport(NodeId{0, 0});
  auto b = hub.CreateTransport(NodeId{0, 1});
  Sink sink_a, sink_b;
  ASSERT_TRUE(a->Start(sink_a.fn()).ok());
  ASSERT_TRUE(b->Start(sink_b.fn()).ok());

  GroupHeartbeatMsg msg(2, 77);
  ASSERT_TRUE(a->Send(NodeId{0, 1}, msg).ok());
  ASSERT_TRUE(sink_b.WaitForCount(1));
  EXPECT_EQ(sink_b.frames[0].src, (NodeId{0, 0}));
  auto& decoded =
      static_cast<const GroupHeartbeatMsg&>(*sink_b.frames[0].msg);
  EXPECT_EQ(decoded.gid(), 2);
  EXPECT_EQ(decoded.last_seq(), 77u);

  EXPECT_EQ(a->stats().frames_sent, 1u);
  EXPECT_EQ(a->stats().bytes_sent, msg.ByteSize());
  EXPECT_EQ(b->stats().frames_received, 1u);

  // Unknown destination is a local error, counted, not a crash.
  EXPECT_FALSE(a->Send(NodeId{9, 9}, msg).ok());
  EXPECT_EQ(a->stats().send_errors, 1u);

  b->Stop();
  EXPECT_FALSE(a->Send(NodeId{0, 1}, msg).ok());  // Deregistered.
  a->Stop();
  a->Stop();  // Idempotent.
}

TcpPortMap MustMakePortMap(const std::vector<int>& group_sizes,
                           uint16_t base) {
  auto ports = MakeLocalPortMap(group_sizes, base);
  EXPECT_TRUE(ports.ok()) << ports.status().ToString();
  return *ports;
}

TEST(TcpTransportTest, LoopbackRoundTrip) {
  TcpPortMap ports = MustMakePortMap({2}, /*base=*/19321);
  TcpTransport a(NodeId{0, 0}, ports);
  TcpTransport b(NodeId{0, 1}, ports);
  Sink sink_a, sink_b;
  ASSERT_TRUE(a.Start(sink_a.fn()).ok());
  ASSERT_TRUE(b.Start(sink_b.fn()).ok());

  // Both directions, including a large frame spanning multiple reads.
  Rng rng(3);
  auto big = MakeMessage(MessageType::kEntryTransfer, rng);
  GroupHeartbeatMsg small(1, 5);
  ASSERT_TRUE(a.Send(NodeId{0, 1}, *big).ok());
  ASSERT_TRUE(a.Send(NodeId{0, 1}, small).ok());
  ASSERT_TRUE(b.Send(NodeId{0, 0}, small).ok());

  ASSERT_TRUE(sink_b.WaitForCount(2));
  ASSERT_TRUE(sink_a.WaitForCount(1));
  EXPECT_EQ(sink_b.frames[0].msg->message_type(),
            MessageType::kEntryTransfer);
  EXPECT_EQ(sink_b.frames[1].msg->message_type(),
            MessageType::kGroupHeartbeat);
  EXPECT_EQ(sink_a.frames[0].src, (NodeId{0, 1}));

  EXPECT_EQ(a.stats().frames_sent, 2u);
  EXPECT_EQ(b.stats().frames_received, 2u);
  a.Stop();
  b.Stop();
}

TEST(TcpTransportTest, SendToUnmappedNodeFails) {
  TcpPortMap ports = MustMakePortMap({1}, /*base=*/19331);
  TcpTransport a(NodeId{0, 0}, ports);
  Sink sink;
  ASSERT_TRUE(a.Start(sink.fn()).ok());
  GroupHeartbeatMsg msg(0, 0);
  EXPECT_FALSE(a.Send(NodeId{5, 5}, msg).ok());
  EXPECT_EQ(a.stats().send_errors, 1u);
  a.Stop();
}

TEST(TcpTransportTest, PortMapRejectsOverflowPast65535) {
  // 65534 + 2 nodes = ports {65534, 65535}: the last legal assignment.
  EXPECT_TRUE(MakeLocalPortMap({2}, 65534).ok());
  // One node more would need port 65536.
  auto overflow = MakeLocalPortMap({3}, 65534);
  ASSERT_FALSE(overflow.ok());
  EXPECT_TRUE(overflow.status().IsInvalidArgument());
  // The old uint16_t arithmetic silently wrapped a large cluster onto
  // low ports; now it is refused outright.
  EXPECT_FALSE(MakeLocalPortMap({200, 200}, 65400).ok());
  EXPECT_FALSE(MakeLocalPortMap({-1}, 1000).ok());
  // Empty map is fine.
  EXPECT_TRUE(MakeLocalPortMap({}, 65535).ok());
}

TEST(TcpTransportTest, SendToDeadPeerNeverBlocks) {
  // Node {0,1} is mapped but never started: every send must enqueue (or
  // drop) and return immediately — the old transport dialed synchronously
  // with retries and blocked the caller for ~2 seconds.
  TcpPortMap ports = MustMakePortMap({2}, /*base=*/19441);
  TcpTransport a(NodeId{0, 0}, ports);
  Sink sink;
  ASSERT_TRUE(a.Start(sink.fn()).ok());

  GroupHeartbeatMsg msg(1, 1);
  for (int i = 0; i < 50; ++i) {
    auto start = std::chrono::steady_clock::now();
    ASSERT_TRUE(a.Send(NodeId{0, 1}, msg).ok());
    auto elapsed = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    // The 10ms liveness budget, with CI scheduling headroom.
    EXPECT_LT(elapsed, 100.0) << "send " << i << " blocked";
  }
  EXPECT_EQ(a.stats().frames_sent, 0u);  // Nothing reached a wire.
  a.Stop();
}

TEST(TcpTransportTest, BackpressureDropsWhenQueueFull) {
  TcpTransport::Options options;
  options.max_queue_frames = 4;
  TcpPortMap ports = MustMakePortMap({2}, /*base=*/19451);
  TcpTransport a(NodeId{0, 0}, ports, options);
  Sink sink;
  ASSERT_TRUE(a.Start(sink.fn()).ok());

  GroupHeartbeatMsg msg(1, 1);
  int dropped = 0;
  for (int i = 0; i < 20; ++i)
    if (!a.Send(NodeId{0, 1}, msg).ok()) ++dropped;
  EXPECT_GT(dropped, 0);
  EXPECT_EQ(a.stats().dropped_backpressure, static_cast<uint64_t>(dropped));
  // Backpressure is not a send error; the counters are distinct.
  EXPECT_EQ(a.stats().send_errors, 0u);
  a.Stop();
}

TEST(TcpTransportTest, ReconnectsAfterPeerRestart) {
  TcpPortMap ports = MustMakePortMap({2}, /*base=*/19461);
  TcpTransport a(NodeId{0, 0}, ports);
  auto b = std::make_unique<TcpTransport>(NodeId{0, 1}, ports);
  Sink sink_a, sink_b1;
  ASSERT_TRUE(a.Start(sink_a.fn()).ok());
  ASSERT_TRUE(b->Start(sink_b1.fn()).ok());

  GroupHeartbeatMsg msg(7, 1);
  ASSERT_TRUE(a.Send(NodeId{0, 1}, msg).ok());
  ASSERT_TRUE(sink_b1.WaitForCount(1));

  // Kill the peer. Sends during the outage enqueue (or die with the
  // connection — TCP loss semantics) but never block the caller.
  b->Stop();
  b.reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(a.Send(NodeId{0, 1}, msg).ok());

  // Restart on the same port. Fresh sends force the writer to discover
  // the dead connection, redial with backoff, and flow frames again —
  // that is the liveness contract (loss of in-flight frames is allowed;
  // the BFT layer owns retries).
  b = std::make_unique<TcpTransport>(NodeId{0, 1}, ports);
  Sink sink_b2;
  ASSERT_TRUE(b->Start(sink_b2.fn()).ok());
  bool delivered = false;
  for (int i = 0; i < 200 && !delivered; ++i) {
    ASSERT_TRUE(a.Send(NodeId{0, 1}, msg).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::lock_guard<std::mutex> lock(sink_b2.mu);
    delivered = !sink_b2.frames.empty();
  }
  EXPECT_TRUE(delivered) << "no frame flowed after peer restart";
  EXPECT_GE(a.stats().reconnects, 1u);
  a.Stop();
  b->Stop();
}

// ------------------------------------------------------- Fault injection

std::unique_ptr<FaultInjectingTransport> Inject(InProcHub& hub, NodeId self,
                                                FaultSpec spec) {
  return std::make_unique<FaultInjectingTransport>(hub.CreateTransport(self),
                                                   spec);
}

TEST(FaultTransportTest, DropRateOneDropsEverything) {
  InProcHub hub;
  FaultSpec spec;
  spec.drop_rate = 1.0;
  auto a = Inject(hub, NodeId{0, 0}, spec);
  auto b = hub.CreateTransport(NodeId{0, 1});
  Sink sink_a, sink_b;
  ASSERT_TRUE(a->Start(sink_a.fn()).ok());
  ASSERT_TRUE(b->Start(sink_b.fn()).ok());

  GroupHeartbeatMsg msg(1, 1);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(a->Send(NodeId{0, 1}, msg).ok());
  EXPECT_EQ(a->fault_stats().dropped, 10u);
  EXPECT_EQ(b->stats().frames_received, 0u);
  EXPECT_EQ(a->stats().frames_sent, 0u);  // Dropped before the inner send.
  a->Stop();
  b->Stop();
}

TEST(FaultTransportTest, DuplicateRateOneDeliversTwice) {
  InProcHub hub;
  FaultSpec spec;
  spec.duplicate_rate = 1.0;
  auto a = Inject(hub, NodeId{0, 0}, spec);
  auto b = hub.CreateTransport(NodeId{0, 1});
  Sink sink_a, sink_b;
  ASSERT_TRUE(a->Start(sink_a.fn()).ok());
  ASSERT_TRUE(b->Start(sink_b.fn()).ok());

  GroupHeartbeatMsg msg(1, 1);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(a->Send(NodeId{0, 1}, msg).ok());
  EXPECT_EQ(a->fault_stats().duplicated, 5u);
  EXPECT_EQ(b->stats().frames_received, 10u);
  a->Stop();
  b->Stop();
}

TEST(FaultTransportTest, CorruptionIsCaughtByReceiverCrc) {
  InProcHub hub;
  FaultSpec spec;
  spec.corrupt_rate = 1.0;
  auto a = Inject(hub, NodeId{0, 0}, spec);
  auto b = hub.CreateTransport(NodeId{0, 1});
  Sink sink_a, sink_b;
  ASSERT_TRUE(a->Start(sink_a.fn()).ok());
  ASSERT_TRUE(b->Start(sink_b.fn()).ok());

  GroupHeartbeatMsg msg(1, 1);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(a->Send(NodeId{0, 1}, msg).ok());
  // Real mangled bytes went on the wire; the receiver's codec rejected
  // every frame (one flipped byte always breaks the CRC or the header).
  EXPECT_EQ(a->fault_stats().corrupted, 10u);
  EXPECT_EQ(b->stats().decode_errors, 10u);
  EXPECT_EQ(b->stats().frames_received, 0u);
  EXPECT_TRUE(sink_b.frames.empty());
  a->Stop();
  b->Stop();
}

TEST(FaultTransportTest, DelayedFramesArriveLater) {
  InProcHub hub;
  FaultSpec spec;
  spec.delay_rate = 1.0;
  spec.delay_min_ms = 5.0;
  spec.delay_max_ms = 15.0;
  auto a = Inject(hub, NodeId{0, 0}, spec);
  auto b = hub.CreateTransport(NodeId{0, 1});
  Sink sink_a, sink_b;
  ASSERT_TRUE(a->Start(sink_a.fn()).ok());
  ASSERT_TRUE(b->Start(sink_b.fn()).ok());

  GroupHeartbeatMsg msg(1, 1);
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(a->Send(NodeId{0, 1}, msg).ok());
  // Sends return before delivery (they only scheduled the frames).
  EXPECT_EQ(a->fault_stats().delayed, 4u);
  ASSERT_TRUE(sink_b.WaitForCount(4));
  auto elapsed = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_GE(elapsed, 5.0);  // At least the minimum delay.
  a->Stop();
  b->Stop();
}

TEST(FaultTransportTest, DelayStallsTheLinkButNeverReordersIt) {
  // The VTS ordering engine infers lower bounds from the assumption that
  // each channel delivers stamps in non-decreasing order — real TCP's
  // per-connection FIFO. The injector must honor it: a delayed frame
  // stalls later frames on the same link instead of being overtaken.
  InProcHub hub;
  FaultSpec spec;
  spec.seed = 1234;
  spec.delay_rate = 0.5;
  spec.delay_min_ms = 1.0;
  spec.delay_max_ms = 20.0;
  auto a = Inject(hub, NodeId{0, 0}, spec);
  auto b = hub.CreateTransport(NodeId{0, 1});
  Sink sink_a, sink_b;
  ASSERT_TRUE(a->Start(sink_a.fn()).ok());
  ASSERT_TRUE(b->Start(sink_b.fn()).ok());

  constexpr uint64_t kFrames = 50;
  for (uint64_t i = 0; i < kFrames; ++i) {
    GroupHeartbeatMsg msg(0, /*last_seq=*/i);
    EXPECT_TRUE(a->Send(NodeId{0, 1}, msg).ok());
  }
  ASSERT_TRUE(sink_b.WaitForCount(kFrames));
  EXPECT_GT(a->fault_stats().delayed, 0u);
  std::lock_guard<std::mutex> lock(sink_b.mu);
  for (uint64_t i = 0; i < kFrames; ++i) {
    auto* hb = static_cast<GroupHeartbeatMsg*>(sink_b.frames[i].msg.get());
    EXPECT_EQ(hb->last_seq(), i) << "frame overtook a delayed predecessor";
  }
  a->Stop();
  b->Stop();
}

TEST(FaultTransportTest, PartitionWindowCutsBothDirectionsThenHeals) {
  InProcHub hub;
  FaultSpec spec;
  FaultSpec::Partition partition;
  partition.start_s = 0;
  partition.end_s = 0.25;
  partition.side_a = {0};  // Group 0 vs everyone else.
  spec.partitions.push_back(partition);

  auto a = Inject(hub, NodeId{0, 0}, spec);  // Group 0.
  auto b = Inject(hub, NodeId{1, 0}, spec);  // Group 1.
  Sink sink_a, sink_b;
  ASSERT_TRUE(a->Start(sink_a.fn()).ok());
  ASSERT_TRUE(b->Start(sink_b.fn()).ok());

  GroupHeartbeatMsg msg(1, 1);
  EXPECT_TRUE(a->Send(NodeId{1, 0}, msg).ok());
  EXPECT_TRUE(b->Send(NodeId{0, 0}, msg).ok());
  EXPECT_EQ(a->fault_stats().partition_dropped +
                b->fault_stats().partition_dropped,
            2u);
  EXPECT_TRUE(sink_a.frames.empty());
  EXPECT_TRUE(sink_b.frames.empty());

  // After the window the same sends go through (the partition healed).
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_TRUE(a->Send(NodeId{1, 0}, msg).ok());
  EXPECT_TRUE(b->Send(NodeId{0, 0}, msg).ok());
  ASSERT_TRUE(sink_a.WaitForCount(1));
  ASSERT_TRUE(sink_b.WaitForCount(1));
  a->Stop();
  b->Stop();
}

TEST(FaultTransportTest, SameSeedSameMessageSequenceSameFaults) {
  FaultSpec spec;
  spec.seed = 12345;
  spec.drop_rate = 0.3;
  spec.duplicate_rate = 0.2;
  spec.corrupt_rate = 0.2;
  GroupHeartbeatMsg msg(1, 1);

  auto run = [&] {
    InProcHub hub;
    auto a = Inject(hub, NodeId{0, 0}, spec);
    auto b = hub.CreateTransport(NodeId{0, 1});
    Sink sink_a, sink_b;
    EXPECT_TRUE(a->Start(sink_a.fn()).ok());
    EXPECT_TRUE(b->Start(sink_b.fn()).ok());
    for (int i = 0; i < 200; ++i) (void)a->Send(NodeId{0, 1}, msg);
    FaultStats stats = a->fault_stats();
    a->Stop();
    b->Stop();
    return stats;
  };

  FaultStats first = run();
  FaultStats second = run();
  EXPECT_GT(first.total(), 0u);
  EXPECT_EQ(first.dropped, second.dropped);
  EXPECT_EQ(first.duplicated, second.duplicated);
  EXPECT_EQ(first.corrupted, second.corrupted);
  EXPECT_EQ(first.delayed, second.delayed);
}

// ----------------------------------------------------- crc32 kernels

/// Property test for the crc32 kernel family (DESIGN.md §10): every fast
/// path — slice-by-8, PCLMULQDQ folding, ARMv8 CRC — must agree with the
/// byte-at-a-time scalar oracle on random buffers, lengths and running
/// states, including the sub-block sizes the hardware kernels delegate.
TEST(Crc32KernelTest, FastKernelsMatchScalarOracle) {
  Rng rng(0xC4C32);
  for (int trial = 0; trial < 500; ++trial) {
    // Cover the interesting length regimes: empty, sub-8-byte tails, the
    // 16/64-byte fold thresholds, and multi-block bulk.
    const size_t len = trial < 80 ? trial : rng.NextBelow(4096);
    Bytes buf(len);
    for (auto& b : buf) b = static_cast<uint8_t>(rng.NextU64());
    const uint32_t state = static_cast<uint32_t>(rng.NextU64());

    const uint32_t oracle =
        internal_crc32::UpdateScalarTable(state, buf.data(), len);
    EXPECT_EQ(internal_crc32::UpdateSlice8(state, buf.data(), len), oracle)
        << "slice8 diverged from scalar oracle at len " << len;
#if defined(__x86_64__)
    if (GetCpuFeatures().pclmul) {
      EXPECT_EQ(internal_crc32::UpdatePclmul(state, buf.data(), len), oracle)
          << "pclmul diverged from scalar oracle at len " << len;
    }
#endif
#if defined(__aarch64__)
    if (GetCpuFeatures().arm_crc32) {
      EXPECT_EQ(internal_crc32::UpdateArmv8(state, buf.data(), len), oracle)
          << "armv8 diverged from scalar oracle at len " << len;
    }
#endif
  }
}

/// The dispatched Update must be split-invariant: chopping one buffer
/// into arbitrary incremental Update calls lands on the same digest as
/// the scalar oracle one-shot, whatever kernel is active.
TEST(Crc32KernelTest, DispatchedIncrementalMatchesScalarOracle) {
  Rng rng(0xD15);
  for (int trial = 0; trial < 100; ++trial) {
    Bytes buf(1 + rng.NextBelow(2048));
    for (auto& b : buf) b = static_cast<uint8_t>(rng.NextU64());
    Crc32 crc;
    size_t pos = 0;
    while (pos < buf.size()) {
      const size_t take =
          std::min(buf.size() - pos, 1 + rng.NextBelow(130));
      crc.Update(buf.data() + pos, take);
      pos += take;
    }
    const uint32_t expected = ~internal_crc32::UpdateScalarTable(
        0xFFFFFFFFu, buf.data(), buf.size());
    EXPECT_EQ(crc.Finish(), expected);
  }
}

// ------------------------------------------------- EncodeFrameInto

/// The single-pass pooled encoder must produce byte-identical frames to
/// the classic EncodeFrame for every message type, and must fully reset a
/// recycled buffer (stale capacity, stale contents) before encoding.
TEST(WireEncodeIntoTest, MatchesEncodeFrameForEveryType) {
  Rng rng(11);
  Bytes reused;  // Deliberately reused across types, like a pooled buffer.
  reused.assign(333, 0xEE);
  for (MessageType type : kAllTypes) {
    auto msg = MakeMessage(type, rng);
    const Bytes classic = EncodeFrame(*msg, NodeId{2, 4}, 1234567);
    EncodeFrameInto(*msg, NodeId{2, 4}, 1234567, &reused);
    EXPECT_EQ(reused, classic) << "type " << static_cast<int>(type);
  }
}

// ---------------------------------------------------- FrameReassembler

/// Splitting a frame stream at every possible boundary — one byte per
/// recv — must reassemble the exact frame sequence. This is the
/// adversarial-fragmentation contract of the rx ring (DESIGN.md §15).
TEST(FrameReassemblerTest, OneByteTrickleReassemblesEveryType) {
  Rng rng(21);
  Bytes stream;
  std::vector<MessageType> order;
  for (MessageType type : kAllTypes) {
    auto msg = MakeMessage(type, rng);
    const Bytes wire = EncodeFrame(*msg, NodeId{1, 2});
    stream.insert(stream.end(), wire.begin(), wire.end());
    order.push_back(type);
  }

  FrameReassembler rx(/*initial_capacity=*/7);  // Force regrowth too.
  std::vector<Frame> frames;
  for (uint8_t byte : stream) {
    *rx.WritableData(1) = byte;
    rx.CommitWrite(1);
    ASSERT_TRUE(rx.Drain(&frames).ok());
  }
  ASSERT_EQ(frames.size(), order.size());
  for (size_t i = 0; i < order.size(); ++i)
    EXPECT_EQ(frames[i].msg->message_type(), order[i]) << "frame " << i;
  EXPECT_EQ(rx.PendingBytes(), 0u);
}

TEST(FrameReassemblerTest, RandomFragmentationFuzz) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    Bytes stream;
    size_t expected = 0;
    for (int i = 0; i < 40; ++i) {
      auto msg = MakeMessage(
          kAllTypes[rng.NextBelow(std::size(kAllTypes))], rng);
      const Bytes wire = EncodeFrame(*msg, NodeId{0, 1});
      stream.insert(stream.end(), wire.begin(), wire.end());
      ++expected;
    }
    FrameReassembler rx;
    std::vector<Frame> frames;
    size_t pos = 0;
    while (pos < stream.size()) {
      const size_t take =
          std::min(stream.size() - pos, 1 + rng.NextBelow(977));
      std::memcpy(rx.WritableData(take), stream.data() + pos, take);
      rx.CommitWrite(take);
      pos += take;
      ASSERT_TRUE(rx.Drain(&frames).ok());
    }
    EXPECT_EQ(frames.size(), expected);
    EXPECT_EQ(rx.PendingBytes(), 0u);
  }
}

/// A corrupt frame mid-stream surfaces as Corruption, but the good frames
/// decoded before it are still handed out — the transport delivers them
/// before tearing the connection down.
TEST(FrameReassemblerTest, CorruptionAfterGoodFramesKeepsThePrefix) {
  Rng rng(41);
  GroupHeartbeatMsg msg(3, 9);
  Bytes stream;
  for (int i = 0; i < 2; ++i) {
    const Bytes wire = EncodeFrame(msg, NodeId{0, 0});
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  Bytes bad = EncodeFrame(msg, NodeId{0, 0});
  bad[0] ^= 0xFF;  // Break the magic: framing is unrecoverable.
  stream.insert(stream.end(), bad.begin(), bad.end());

  FrameReassembler rx;
  std::memcpy(rx.WritableData(stream.size()), stream.data(), stream.size());
  rx.CommitWrite(stream.size());
  std::vector<Frame> frames;
  const Status drained = rx.Drain(&frames);
  EXPECT_TRUE(drained.IsCorruption());
  EXPECT_EQ(frames.size(), 2u);
}

// -------------------------------------------------------- BufferPool

TEST(BufferPoolTest, ReuseAccountingAndPoisonOnRecycle) {
  BufferPool::Options options;
  options.poison = true;
  BufferPool pool(options);

  Bytes first = pool.Acquire();
  first.assign(64, 0x5A);
  EXPECT_EQ(pool.stats().allocations, 1u);
  EXPECT_EQ(pool.stats().outstanding, 1u);
  // Vector moves preserve the data pointer, so this stays valid while the
  // buffer sits in the free list — letting us observe that Release
  // overwrote every stale frame byte. A use-after-release thus reads 0xDB
  // garbage instead of a silently recycled frame.
  const uint8_t* mem = first.data();
  pool.Release(std::move(first));
  EXPECT_EQ(pool.stats().outstanding, 0u);
  for (size_t i = 0; i < 64; ++i)
    ASSERT_EQ(mem[i], BufferPool::kPoisonByte) << "unpoisoned byte " << i;

  // The recycled buffer comes back empty but with its old capacity.
  Bytes second = pool.Acquire();
  EXPECT_EQ(pool.stats().reuses, 1u);
  EXPECT_EQ(pool.stats().allocations, 1u);
  EXPECT_TRUE(second.empty());
  EXPECT_GE(second.capacity(), 64u);
  pool.Release(std::move(second));

  // Batch release keeps the same accounting as singles.
  std::vector<Bytes> batch;
  for (int i = 0; i < 4; ++i) batch.push_back(pool.Acquire());
  EXPECT_EQ(pool.stats().outstanding, 4u);
  pool.ReleaseAll(&batch);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(BufferPoolTest, OversizeBuffersAreNotRetained) {
  BufferPool::Options options;
  options.max_retained_capacity = 1024;
  BufferPool pool(options);
  Bytes big = pool.Acquire();
  big.reserve(4096);
  pool.Release(std::move(big));
  EXPECT_EQ(pool.stats().discarded, 1u);
  // The next acquire cannot be served by the discarded slab.
  Bytes next = pool.Acquire();
  EXPECT_EQ(pool.stats().allocations, 2u);
  pool.Release(std::move(next));
}

/// The zero-alloc-per-frame contract of the pooled send path: once the
/// pool is warm, a burst of sends must not allocate at all. The in-proc
/// transport makes this deterministic (encode -> route -> release is
/// synchronous on the caller's thread).
TEST(InProcTransportTest, SteadyStateSendsMakeZeroPoolAllocations) {
  InProcHub hub;
  auto a = hub.CreateTransport(NodeId{0, 0});
  auto b = hub.CreateTransport(NodeId{0, 1});
  Sink sink_a, sink_b;
  ASSERT_TRUE(a->Start(sink_a.fn()).ok());
  ASSERT_TRUE(b->Start(sink_b.fn()).ok());

  GroupHeartbeatMsg msg(1, 42);
  for (int i = 0; i < 16; ++i)  // Warm the pool.
    ASSERT_TRUE(a->Send(NodeId{0, 1}, msg).ok());

  const BufferPool::Stats warm = WireBufferPool().stats();
  for (int i = 0; i < 500; ++i)
    ASSERT_TRUE(a->Send(NodeId{0, 1}, msg).ok());
  const BufferPool::Stats after = WireBufferPool().stats();

  EXPECT_EQ(after.allocations - warm.allocations, 0u)
      << "steady-state sends allocated";
  EXPECT_EQ(after.reuses - warm.reuses, 500u);
  ASSERT_TRUE(sink_b.WaitForCount(516));
  a->Stop();
  b->Stop();
}

// ------------------------------------------- Batched TCP wire path

/// Floods of small frames exercise the scatter-gather writer's full-batch
/// and partial-batch resume paths; per-peer delivery order must survive
/// batching. Sequence numbers ride in last_seq.
TEST(TcpTransportTest, BatchedDeliveryPreservesPerPeerOrder) {
  TcpTransport::Options options;
  options.max_queue_frames = 8192;
  TcpPortMap ports = MustMakePortMap({2}, /*base=*/19471);
  TcpTransport a(NodeId{0, 0}, ports, options);
  TcpTransport b(NodeId{0, 1}, ports, options);
  Sink sink_a, sink_b;
  ASSERT_TRUE(a.Start(sink_a.fn()).ok());
  ASSERT_TRUE(b.Start(sink_b.fn()).ok());

  constexpr uint64_t kCount = 3000;
  for (uint64_t i = 0; i < kCount; ++i) {
    GroupHeartbeatMsg msg(1, i);
    while (!a.Send(NodeId{0, 1}, msg).ok())  // Ride out backpressure.
      std::this_thread::yield();
  }
  ASSERT_TRUE(sink_b.WaitForCount(kCount));

  std::lock_guard<std::mutex> lock(sink_b.mu);
  for (uint64_t i = 0; i < kCount; ++i) {
    const auto& beat =
        static_cast<const GroupHeartbeatMsg&>(*sink_b.frames[i].msg);
    ASSERT_EQ(beat.last_seq(), i) << "reordered or lost at " << i;
  }
  // The whole flood must have moved in far fewer syscalls than frames on
  // both sides — the point of batching.
  EXPECT_LT(a.stats().send_syscalls, kCount / 2);
  EXPECT_LT(b.stats().recv_syscalls, kCount / 2);
  a.Stop();
  b.Stop();
}

/// Interleaves frames far larger than the socket buffer with small ones,
/// forcing sendmsg to accept partial batches that end mid-frame; the
/// write-offset resume must keep the stream byte-exact (every frame CRC
/// checks on the far side) and in order.
TEST(TcpTransportTest, PartialWriteResumeAcrossBatchBoundaries) {
  TcpTransport::Options options;
  options.max_queue_frames = 256;
  options.max_queue_bytes = 256 * 1024 * 1024;
  TcpPortMap ports = MustMakePortMap({2}, /*base=*/19481);
  TcpTransport a(NodeId{0, 0}, ports, options);
  TcpTransport b(NodeId{0, 1}, ports, options);
  Sink sink_a, sink_b;
  ASSERT_TRUE(a.Start(sink_a.fn()).ok());
  ASSERT_TRUE(b.Start(sink_b.fn()).ok());

  // ~1MB chunk batches dwarf the loopback socket buffer.
  Rng rng(51);
  std::vector<Chunk> chunks(2);
  for (Chunk& c : chunks) {
    c.chunk_id = static_cast<uint32_t>(rng.NextU64());
    c.data.resize(512 * 1024);
    for (auto& byte : c.data) byte = static_cast<uint8_t>(rng.NextU64());
    c.proof.index = 0;
    c.proof.leaf_count = 2;
  }
  constexpr int kRounds = 8;
  for (int i = 0; i < kRounds; ++i) {
    ChunkBatchMsg big(1, static_cast<uint64_t>(i), RandDigest(rng),
                      RandCert(rng), chunks, 0);
    GroupHeartbeatMsg small(1, static_cast<uint64_t>(i));
    while (!a.Send(NodeId{0, 1}, big).ok()) std::this_thread::yield();
    while (!a.Send(NodeId{0, 1}, small).ok()) std::this_thread::yield();
  }
  ASSERT_TRUE(sink_b.WaitForCount(2 * kRounds));

  std::lock_guard<std::mutex> lock(sink_b.mu);
  for (int i = 0; i < kRounds; ++i) {
    ASSERT_EQ(sink_b.frames[2 * static_cast<size_t>(i)].msg->message_type(),
              MessageType::kChunkBatch);
    ASSERT_EQ(
        sink_b.frames[2 * static_cast<size_t>(i) + 1].msg->message_type(),
        MessageType::kGroupHeartbeat);
  }
  EXPECT_EQ(b.stats().decode_errors, 0u);
  a.Stop();
  b.Stop();
}

}  // namespace
}  // namespace massbft
