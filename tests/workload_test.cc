#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "db/aria.h"
#include "db/kv_store.h"
#include "workload/smallbank.h"
#include "workload/tpcc.h"
#include "workload/workload.h"
#include "workload/ycsb.h"

namespace massbft {
namespace {

class WorkloadFixture : public ::testing::TestWithParam<WorkloadKind> {
 protected:
  void SetUp() override {
    // TPC-C needs enough warehouses to avoid total hotspot serialization
    // in one Aria batch; the key-value workloads shrink further.
    double scale = GetParam() == WorkloadKind::kTpcc ? 0.5 : 0.01;
    workload_ = MakeWorkload(GetParam(), scale);
    ASSERT_NE(workload_, nullptr);
    workload_->InstallInitialState(&store_);
    executor_ = std::make_unique<AriaExecutor>(&store_,
                                               workload_->MakeFactory());
  }

  Transaction NextTxn(Rng& rng, uint64_t id) {
    Transaction txn;
    txn.id = id;
    txn.payload = workload_->NextPayload(rng);
    return txn;
  }

  std::unique_ptr<Workload> workload_;
  KvStore store_;
  std::unique_ptr<AriaExecutor> executor_;
};

TEST_P(WorkloadFixture, PayloadsParseAndExecute) {
  Rng rng(1);
  std::vector<Transaction> batch;
  for (int i = 0; i < 200; ++i) batch.push_back(NextTxn(rng, i));
  AriaBatchResult r = executor_->ExecuteBatch(batch);
  // Every transaction either commits, conflict-aborts, or business-aborts;
  // none may fail to parse (parse failure also lands in logic_aborts, so
  // bound it instead: parses must succeed for generated payloads).
  for (const Transaction& txn : batch)
    EXPECT_TRUE(workload_->Parse(txn.payload).ok());
  EXPECT_EQ(r.committed + static_cast<int>(r.conflict_aborts.size()) +
                r.logic_aborts,
            200);
  EXPECT_GT(r.committed, 100);
}

TEST_P(WorkloadFixture, PayloadSizesMatchPaper) {
  static const std::map<WorkloadKind, size_t> kExpected = {
      {WorkloadKind::kYcsbA, 201},
      {WorkloadKind::kYcsbB, 150},
      {WorkloadKind::kSmallBank, 108},
      {WorkloadKind::kTpcc, 232},
  };
  Rng rng(2);
  size_t expected = kExpected.at(GetParam());
  for (int i = 0; i < 100; ++i)
    EXPECT_GE(workload_->NextPayload(rng).size(), expected);
  // Average close to target: payloads are padded up to the paper's mean.
  double sum = 0;
  for (int i = 0; i < 500; ++i) sum += workload_->NextPayload(rng).size();
  EXPECT_LT(sum / 500.0, expected * 1.2);
}

TEST_P(WorkloadFixture, TruncatedPayloadRejected) {
  Rng rng(3);
  Bytes payload = workload_->NextPayload(rng);
  Bytes truncated(payload.begin(), payload.begin() + 3);
  EXPECT_FALSE(workload_->Parse(truncated).ok());
}

TEST_P(WorkloadFixture, DeterministicGeneration) {
  Rng a(7), b(7);
  double scale = GetParam() == WorkloadKind::kTpcc ? 0.5 : 0.01;
  auto w2 = MakeWorkload(GetParam(), scale);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(workload_->NextPayload(a), w2->NextPayload(b));
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadFixture,
                         ::testing::Values(WorkloadKind::kYcsbA,
                                           WorkloadKind::kYcsbB,
                                           WorkloadKind::kSmallBank,
                                           WorkloadKind::kTpcc));

// ----------------------------------------------------------- SmallBank

TEST(SmallBankTest, MoneyConservedAcrossBatches) {
  auto workload = MakeWorkload(WorkloadKind::kSmallBank, 0.0001);  // 100.
  KvStore store;
  workload->InstallInitialState(&store);
  AriaExecutor executor(&store, workload->MakeFactory());

  auto total = [&store]() {
    int64_t sum = 0;
    for (uint64_t a = 0; a < 100; ++a) {
      for (const std::string& key : {SmallBankWorkload::SavingsKey(a),
                                     SmallBankWorkload::CheckingKey(a)}) {
        auto v = store.Get(key);
        int64_t balance = 0;
        for (int i = 0; i < 8; ++i)
          balance |= static_cast<int64_t>((*v)[i]) << (8 * i);
        sum += balance;
      }
    }
    return sum;
  };

  // Only money-conserving ops: SendPayment (op 6) and Amalgamate (op 4)
  // move funds; Deposit/TransactSavings/WriteCheck mint or burn. Run the
  // full mix and check conservation violations only come from the minting
  // ops by replaying a transfer-only workload: craft payloads directly.
  int64_t before = total();
  Rng rng(11);
  std::vector<Transaction> batch;
  for (int i = 0; i < 100; ++i) {
    BinaryWriter w;
    w.PutU8(rng.NextBool(0.5) ? 6 : 4);  // SendPayment or Amalgamate.
    w.PutU64(rng.NextBelow(100));
    w.PutU64(rng.NextBelow(100));
    w.PutI64(static_cast<int64_t>(rng.NextBelow(1000)));
    Transaction txn;
    txn.id = static_cast<uint64_t>(i);
    txn.payload = w.Release();
    txn.payload.resize(108, 0);
    batch.push_back(std::move(txn));
  }
  executor.ExecuteBatch(batch);
  EXPECT_EQ(total(), before);
}

TEST(SmallBankTest, SendPaymentInsufficientFundsAborts) {
  SmallBankWorkload workload(100);
  KvStore store;
  workload.InstallInitialState(&store);
  AriaExecutor executor(&store, workload.MakeFactory());

  BinaryWriter w;
  w.PutU8(6);  // SendPayment.
  w.PutU64(1);
  w.PutU64(2);
  w.PutI64(1'000'000'000);  // Far above any initial balance.
  Transaction txn;
  txn.payload = w.Release();
  txn.payload.resize(108, 0);
  AriaBatchResult r = executor.ExecuteBatch({txn});
  EXPECT_EQ(r.committed, 0);
  EXPECT_EQ(r.logic_aborts, 1);
}

TEST(SmallBankTest, InitialBalancesDeterministic) {
  EXPECT_EQ(SmallBankWorkload::InitialBalance(42),
            SmallBankWorkload::InitialBalance(42));
  EXPECT_GE(SmallBankWorkload::InitialBalance(7), 10000);
}

// ----------------------------------------------------------------- TPC-C

TEST(TpccTest, NewOrderAdvancesDistrictOrderId) {
  TpccWorkload workload(4);
  KvStore store;
  workload.InstallInitialState(&store);
  AriaExecutor executor(&store, workload.MakeFactory());

  BinaryWriter w;
  w.PutU8(1);  // NewOrder.
  w.PutU32(0);
  w.PutU32(0);
  w.PutU32(5);
  w.PutU8(2);  // Two order lines.
  w.PutU32(10);
  w.PutU32(0);
  w.PutU8(3);
  w.PutU32(20);
  w.PutU32(0);
  w.PutU8(1);
  Transaction txn;
  txn.payload = w.Release();
  txn.payload.resize(232, 0);
  AriaBatchResult r = executor.ExecuteBatch({txn});
  EXPECT_EQ(r.committed, 1);

  auto district = store.Get(TpccWorkload::DistrictKey(0, 0));
  ASSERT_TRUE(district.has_value());
  int64_t next_o_id = 0;
  for (int i = 0; i < 8; ++i)
    next_o_id |= static_cast<int64_t>((*district)[i]) << (8 * i);
  EXPECT_EQ(next_o_id, TpccWorkload::kInitialNextOrderId + 1);
  // The order row was inserted under the pre-increment id.
  EXPECT_TRUE(store
                  .Get(TpccWorkload::OrderKey(
                      0, 0, TpccWorkload::kInitialNextOrderId))
                  .has_value());
  EXPECT_TRUE(store.Get(TpccWorkload::OrderLineKey(
                            0, 0, TpccWorkload::kInitialNextOrderId, 1))
                  .has_value());
}

TEST(TpccTest, PaymentUpdatesWarehouseDistrictCustomer) {
  TpccWorkload workload(4);
  KvStore store;
  workload.InstallInitialState(&store);
  AriaExecutor executor(&store, workload.MakeFactory());

  BinaryWriter w;
  w.PutU8(2);  // Payment.
  w.PutU32(1);
  w.PutU32(2);
  w.PutU32(3);
  w.PutI64(5000);
  Transaction txn;
  txn.payload = w.Release();
  txn.payload.resize(232, 0);
  AriaBatchResult r = executor.ExecuteBatch({txn});
  EXPECT_EQ(r.committed, 1);

  auto warehouse = store.Get(TpccWorkload::WarehouseKey(1));
  int64_t ytd = 0;
  for (int i = 0; i < 8; ++i)
    ytd |= static_cast<int64_t>((*warehouse)[i]) << (8 * i);
  EXPECT_EQ(ytd, 5000);

  auto customer = store.Get(TpccWorkload::CustomerKey(1, 2, 3));
  int64_t balance = 0;
  for (int i = 0; i < 8; ++i)
    balance |= static_cast<int64_t>((*customer)[i]) << (8 * i);
  EXPECT_EQ(balance, -1000 - 5000);
}

TEST(TpccTest, PaymentsOnSameWarehouseConflictInBatch) {
  // The paper's abort-rate mechanism (Section VI-A): two Payments to the
  // same warehouse in one Aria batch collide (RAW ∧ WAR), one aborts.
  TpccWorkload workload(4);
  KvStore store;
  workload.InstallInitialState(&store);
  AriaExecutor executor(&store, workload.MakeFactory());

  auto payment = [](uint64_t id, uint32_t warehouse) {
    BinaryWriter w;
    w.PutU8(2);
    w.PutU32(warehouse);
    w.PutU32(0);
    w.PutU32(0);
    w.PutI64(100);
    Transaction txn;
    txn.id = id;
    txn.payload = w.Release();
    txn.payload.resize(232, 0);
    return txn;
  };
  AriaBatchResult r =
      executor.ExecuteBatch({payment(1, 2), payment(2, 2), payment(3, 3)});
  EXPECT_EQ(r.committed, 2);
  EXPECT_EQ(r.conflict_aborts.size(), 1u);
}

TEST(TpccTest, ItemPricesDeterministicAndBounded) {
  for (uint32_t item : {0u, 1u, 999u, 99999u}) {
    int64_t price = TpccWorkload::ItemPrice(item);
    EXPECT_GE(price, 100);
    EXPECT_LE(price, 10000);
    EXPECT_EQ(price, TpccWorkload::ItemPrice(item));
  }
}

// ------------------------------------------------------------------ YCSB

TEST(YcsbTest, VariantBIsReadHeavy) {
  YcsbWorkload workload(/*variant_a=*/false, 1000);
  Rng rng(5);
  int updates = 0;
  for (int i = 0; i < 2000; ++i) {
    Bytes payload = workload.NextPayload(rng);
    if (payload[0] == 2) ++updates;
  }
  // 5% +- noise.
  EXPECT_GT(updates, 40);
  EXPECT_LT(updates, 220);
}

TEST(YcsbTest, UpdateRoundTripsThroughStore) {
  YcsbWorkload workload(/*variant_a=*/true, 1000);
  KvStore store;
  workload.InstallInitialState(&store);
  AriaExecutor executor(&store, workload.MakeFactory());

  BinaryWriter w;
  w.PutU8(2);  // Update.
  w.PutU64(5);
  w.PutU8(3);
  Bytes value(100, 0x77);
  w.PutBytes(value);
  Transaction txn;
  txn.payload = w.Release();
  txn.payload.resize(201, 0);
  AriaBatchResult r = executor.ExecuteBatch({txn});
  EXPECT_EQ(r.committed, 1);
  EXPECT_EQ(*store.Get(YcsbWorkload::RowColKey(5, 3)), value);
}

TEST(YcsbTest, OutOfRangeKeysRejected) {
  YcsbWorkload workload(/*variant_a=*/true, 1000);
  BinaryWriter w;
  w.PutU8(1);
  w.PutU64(5000);  // Beyond the 1000-row table.
  w.PutU8(0);
  Bytes payload = w.Release();
  payload.resize(201, 0);
  EXPECT_FALSE(workload.Parse(payload).ok());
}

}  // namespace
}  // namespace massbft
