#!/usr/bin/env python3
"""Tests for tools/obs/compare_bench.py: direction-aware tolerance,
missing-key handling, and regression detection — the logic that gates the
perf trajectory (CI perf-smoke leg, DESIGN.md §15).

Runs the tool in-process (imported by path) against temp-file baselines so
exit codes and stdout are exercised exactly as CI sees them.
"""

import contextlib
import importlib.util
import io
import json
import os
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOOL = os.path.join(REPO_ROOT, "tools", "obs", "compare_bench.py")

spec = importlib.util.spec_from_file_location("compare_bench", TOOL)
compare_bench = importlib.util.module_from_spec(spec)
spec.loader.exec_module(compare_bench)


def doc(result, bench="wire"):
    return {"schema": 1, "bench": bench, "result": result}


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)

    def write(self, name, payload):
        path = os.path.join(self._tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(payload, f)
        return path

    def run_tool(self, base, cur, *flags):
        argv = ["compare_bench.py", base, cur] + list(flags)
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            rc = compare_bench.main(argv)
        return rc, out.getvalue()

    # ---------------------------------------------------- direction logic

    def test_throughput_drop_is_a_regression(self):
        base = self.write("b.json", doc({"frames_per_sec": 1000.0}))
        cur = self.write("c.json", doc({"frames_per_sec": 500.0}))
        rc, out = self.run_tool(base, cur, "--strict")
        self.assertEqual(rc, 1)
        self.assertIn("REGRESSION", out)

    def test_throughput_rise_is_not_a_regression(self):
        base = self.write("b.json", doc({"frames_per_sec": 1000.0}))
        cur = self.write("c.json", doc({"frames_per_sec": 5000.0}))
        rc, out = self.run_tool(base, cur, "--strict")
        self.assertEqual(rc, 0)
        self.assertIn("no regressions", out)

    def test_cost_metric_rise_is_a_regression(self):
        # syscalls_per_frame is lower-is-better: the same +100% delta that
        # is fine for throughput must flag here.
        base = self.write("b.json", doc({"send_syscalls_per_frame": 0.01}))
        cur = self.write("c.json", doc({"send_syscalls_per_frame": 0.02}))
        rc, out = self.run_tool(base, cur, "--strict")
        self.assertEqual(rc, 1)
        self.assertIn("REGRESSION", out)

    def test_cost_metric_drop_is_an_improvement(self):
        base = self.write("b.json", doc({"send_syscalls_per_frame": 0.02}))
        cur = self.write("c.json", doc({"send_syscalls_per_frame": 0.01}))
        rc, _ = self.run_tool(base, cur, "--strict")
        self.assertEqual(rc, 0)

    def test_undirected_metric_never_flags(self):
        base = self.write("b.json", doc({"threads": 2.0}))
        cur = self.write("c.json", doc({"threads": 64.0}))
        rc, out = self.run_tool(base, cur, "--strict")
        self.assertEqual(rc, 0)
        self.assertNotIn("REGRESSION", out)

    # ---------------------------------------------------------- tolerance

    def test_drift_within_tolerance_passes(self):
        base = self.write("b.json", doc({"frames_per_sec": 1000.0}))
        cur = self.write("c.json", doc({"frames_per_sec": 850.0}))
        rc, _ = self.run_tool(base, cur, "--strict")  # -15% < 20% default
        self.assertEqual(rc, 0)

    def test_tolerance_flag_tightens_the_gate(self):
        base = self.write("b.json", doc({"frames_per_sec": 1000.0}))
        cur = self.write("c.json", doc({"frames_per_sec": 850.0}))
        rc, _ = self.run_tool(base, cur, "--strict", "--tolerance=0.10")
        self.assertEqual(rc, 1)

    def test_non_strict_reports_but_exits_zero(self):
        base = self.write("b.json", doc({"frames_per_sec": 1000.0}))
        cur = self.write("c.json", doc({"frames_per_sec": 1.0}))
        rc, out = self.run_tool(base, cur)  # warn-only, like perf-smoke
        self.assertEqual(rc, 0)
        self.assertIn("REGRESSION", out)

    # ------------------------------------------------------- missing keys

    def test_metric_gone_warns_without_failing(self):
        base = self.write("b.json", doc({"frames_per_sec": 1000.0,
                                         "mb_per_sec": 80.0}))
        cur = self.write("c.json", doc({"frames_per_sec": 1000.0}))
        rc, out = self.run_tool(base, cur, "--strict")
        self.assertEqual(rc, 0)
        self.assertIn("metric gone: mb_per_sec", out)

    def test_new_metric_in_current_is_ignored(self):
        base = self.write("b.json", doc({"frames_per_sec": 1000.0}))
        cur = self.write("c.json", doc({"frames_per_sec": 1000.0,
                                        "brand_new": 5.0}))
        rc, out = self.run_tool(base, cur, "--strict")
        self.assertEqual(rc, 0)
        self.assertNotIn("brand_new", out)

    def test_nested_result_leaves_are_compared(self):
        base = self.write("b.json", doc({"batch": {"frames_per_sec": 100.0}}))
        cur = self.write("c.json", doc({"batch": {"frames_per_sec": 10.0}}))
        rc, out = self.run_tool(base, cur, "--strict")
        self.assertEqual(rc, 1)
        self.assertIn("batch.frames_per_sec", out)

    # ------------------------------------------------------- input errors

    def test_missing_result_object_is_a_usage_error(self):
        base = self.write("b.json", {"schema": 1, "bench": "wire"})
        cur = self.write("c.json", doc({"frames_per_sec": 1.0}))
        rc, out = self.run_tool(base, cur)
        self.assertEqual(rc, 2)
        self.assertIn("FAIL", out)

    def test_missing_file_is_a_usage_error(self):
        cur = self.write("c.json", doc({"frames_per_sec": 1.0}))
        rc, _ = self.run_tool(os.path.join(self._tmp.name, "nope.json"), cur)
        self.assertEqual(rc, 2)

    def test_wrong_arg_count_is_a_usage_error(self):
        rc = compare_bench.main(["compare_bench.py", "only_one.json"])
        self.assertEqual(rc, 2)

    def test_bench_name_mismatch_warns(self):
        base = self.write("b.json", doc({"frames_per_sec": 1.0}, bench="a"))
        cur = self.write("c.json", doc({"frames_per_sec": 1.0}, bench="b"))
        rc, out = self.run_tool(base, cur, "--strict")
        self.assertEqual(rc, 0)
        self.assertIn("WARN: comparing bench", out)


if __name__ == "__main__":
    unittest.main(argv=[sys.argv[0]])
