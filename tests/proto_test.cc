#include <gtest/gtest.h>

#include "crypto/signature.h"
#include "proto/entry.h"
#include "proto/messages.h"

namespace massbft {
namespace {

Transaction MakeTxn(uint64_t id, size_t payload_size = 100) {
  Transaction txn;
  txn.id = id;
  txn.client = static_cast<uint32_t>(id * 7);
  txn.submit_time = static_cast<SimTime>(id * 1000);
  txn.payload.assign(payload_size, static_cast<uint8_t>(id));
  return txn;
}

TEST(TransactionTest, EncodeDecodeRoundTrip) {
  Transaction txn = MakeTxn(42, 201);
  BinaryWriter w;
  txn.EncodeTo(&w);
  BinaryReader r(w.buffer());
  auto decoded = Transaction::DecodeFrom(&r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, txn);
}

TEST(EntryTest, EncodeDecodeRoundTrip) {
  std::vector<Transaction> txns = {MakeTxn(1), MakeTxn(2), MakeTxn(3)};
  Entry entry(2, 17, txns);
  auto decoded = Entry::Decode(entry.Encoded());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)->gid(), 2);
  EXPECT_EQ((*decoded)->seq(), 17u);
  EXPECT_EQ((*decoded)->txns(), txns);
  EXPECT_EQ((*decoded)->digest(), entry.digest());
}

TEST(EntryTest, EmptyEntryRoundTrips) {
  Entry entry(0, 0, {});
  auto decoded = Entry::Decode(entry.Encoded());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)->num_txns(), 0);
}

TEST(EntryTest, DigestBindsContent) {
  Entry a(0, 1, {MakeTxn(1)});
  Entry b(0, 1, {MakeTxn(2)});
  Entry c(0, 2, {MakeTxn(1)});
  Entry d(1, 1, {MakeTxn(1)});
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
  EXPECT_NE(a.digest(), d.digest());
}

TEST(EntryTest, TamperedBytesRejectedOrDifferentDigest) {
  Entry entry(1, 5, {MakeTxn(9)});
  Bytes tampered = entry.Encoded();
  tampered[tampered.size() / 2] ^= 0xFF;
  auto decoded = Entry::Decode(tampered);
  // Either structurally invalid, or decodes to a different digest — never
  // silently equal.
  if (decoded.ok()) {
    EXPECT_NE((*decoded)->digest(), entry.digest());
  }
}

TEST(EntryTest, TruncatedBytesRejected) {
  Entry entry(1, 5, {MakeTxn(9), MakeTxn(10)});
  Bytes truncated(entry.Encoded().begin(), entry.Encoded().end() - 5);
  EXPECT_FALSE(Entry::Decode(truncated).ok());
}

TEST(EntryTest, ByteSizeIsEncodedSize) {
  Entry entry(0, 3, {MakeTxn(1, 201), MakeTxn(2, 201)});
  EXPECT_EQ(entry.ByteSize(), entry.Encoded().size());
  // Two 201-byte payloads plus per-txn headers plus the entry header.
  EXPECT_GT(entry.ByteSize(), 2 * 201u);
  EXPECT_LT(entry.ByteSize(), 2 * 201u + 100u);
}

// ---------------------------------------------------------- Certificate

class CertificateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 7; ++i)
      registry_.RegisterNode(NodeId{1, static_cast<uint16_t>(i)});
  }

  Certificate MakeCert(const Digest& digest, int num_sigs) {
    Certificate cert;
    cert.gid = 1;
    cert.digest = digest;
    Bytes payload(digest.begin(), digest.end());
    for (int i = 0; i < num_sigs; ++i) {
      NodeId node{1, static_cast<uint16_t>(i)};
      cert.AddSignature(node.index, registry_.Sign(node, payload));
    }
    return cert;
  }

  KeyRegistry registry_;
  Digest digest_ = Sha256::Hash("entry payload");
};

TEST_F(CertificateTest, QuorumVerifies) {
  Certificate cert = MakeCert(digest_, 5);
  EXPECT_TRUE(cert.Verify(registry_, 5));
  EXPECT_TRUE(cert.Verify(registry_, 3));
}

TEST_F(CertificateTest, InsufficientSignaturesFail) {
  Certificate cert = MakeCert(digest_, 4);
  EXPECT_FALSE(cert.Verify(registry_, 5));
}

TEST_F(CertificateTest, DuplicateSignersNotDoubleCounted) {
  // The bitmap makes duplicate signers unrepresentable: re-adding an
  // index is a no-op, so a 3-signer cert can never inflate to a 5-quorum.
  Certificate cert = MakeCert(digest_, 3);
  Bytes payload(digest_.begin(), digest_.end());
  cert.AddSignature(0, registry_.Sign(NodeId{1, 0}, payload));
  cert.AddSignature(0, registry_.Sign(NodeId{1, 0}, payload));
  EXPECT_EQ(cert.NumSignatures(), 3u);
  EXPECT_FALSE(cert.Verify(registry_, 5));
}

TEST_F(CertificateTest, UnregisteredSignerDoesNotCount) {
  // Index 200 exists in no registry; its "signature" must not count
  // toward the quorum (and the batch path must fall back, not crash).
  Certificate cert = MakeCert(digest_, 4);
  cert.AddSignature(200, Signature{});
  EXPECT_EQ(cert.NumSignatures(), 5u);
  EXPECT_FALSE(cert.Verify(registry_, 5));
  EXPECT_TRUE(cert.Verify(registry_, 4));  // The 4 real ones still count.
}

TEST_F(CertificateTest, ForgedSignatureIsNamed) {
  Certificate cert = MakeCert(digest_, 5);
  Bytes payload(digest_.begin(), digest_.end());
  // Replace node 2's signature with node 6's (valid key, wrong signer).
  Certificate forged;
  forged.gid = cert.gid;
  forged.digest = cert.digest;
  for (uint16_t i = 0; i < 5; ++i) {
    NodeId signer{1, i == 2 ? static_cast<uint16_t>(6) : i};
    forged.AddSignature(i, registry_.Sign(signer, payload));
  }
  std::vector<uint16_t> forgers;
  EXPECT_TRUE(forged.Verify(registry_, 4, &forgers));
  EXPECT_EQ(forgers, std::vector<uint16_t>{2});
}

TEST_F(CertificateTest, WrongDigestSignaturesFail) {
  Certificate cert = MakeCert(digest_, 5);
  cert.digest = Sha256::Hash("different payload");
  EXPECT_FALSE(cert.Verify(registry_, 5));
}

TEST_F(CertificateTest, EncodeDecodeRoundTrip) {
  Certificate cert = MakeCert(digest_, 5);
  BinaryWriter w;
  cert.EncodeTo(&w);
  EXPECT_EQ(w.size(), cert.ByteSize());
  BinaryReader r(w.buffer());
  auto decoded = Certificate::DecodeFrom(&r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->gid, cert.gid);
  EXPECT_EQ(decoded->digest, cert.digest);
  ASSERT_EQ(decoded->NumSignatures(), cert.NumSignatures());
  EXPECT_EQ(*decoded, cert);
  EXPECT_TRUE(decoded->Verify(registry_, 5));
}

TEST_F(CertificateTest, CompactEncodingShrinksWireSize) {
  // 5 signers over a 7-node group: one bitmap byte + 5 * 64 sig bytes
  // versus the old 5 * (4 + 64) explicit pair list.
  Certificate cert = MakeCert(digest_, 5);
  EXPECT_EQ(cert.ByteSize(), 2u + 32u + 2u + 1u + 5u * sizeof(Signature));
  EXPECT_LT(cert.ByteSize(), 2u + 32u + 2u + 5u * (4u + 64u));
}

TEST_F(CertificateTest, NonCanonicalBitmapRejected) {
  Certificate cert = MakeCert(digest_, 2);
  BinaryWriter w;
  cert.EncodeTo(&w);
  // Splice a trailing zero bitmap byte in: same signer set, longer
  // encoding. Layout: gid(2) digest(32) bitmap_len(2) bitmap sigs.
  Bytes bytes = w.buffer();
  ASSERT_EQ(bytes[34], 1);  // bitmap_len lo byte
  bytes[34] = 2;
  bytes.insert(bytes.begin() + 37, 0);  // after the original bitmap byte
  BinaryReader r(bytes);
  EXPECT_FALSE(Certificate::DecodeFrom(&r).ok());
}

// ---------------------------------------------------------- Message sizes

// ByteSize() must equal frame overhead plus the real encoded body (plus
// the wire trace context for entry-carrying types) — the encoder is the
// single source of truth for link accounting.
size_t EncodedSize(const ProtocolMessage& msg) {
  BinaryWriter w;
  msg.EncodeBodyTo(&w);
  return kFrameOverheadBytes +
         (CarriesTraceContext(msg.message_type()) ? kTraceContextBytes : 0) +
         w.size();
}

TEST(MessageSizeTest, EnvelopeAddedToEveryMessage) {
  ClientReplyMsg reply(1, true);
  EXPECT_EQ(reply.ByteSize(), kFrameOverheadBytes + 9);
  EXPECT_EQ(reply.ByteSize(), EncodedSize(reply));
  GroupHeartbeatMsg hb(1, 100);
  EXPECT_EQ(hb.ByteSize(), kFrameOverheadBytes + 10);
  EXPECT_EQ(hb.ByteSize(), EncodedSize(hb));
}

TEST(MessageSizeTest, EntryTransferCarriesEntryAndCert) {
  auto entry = std::make_shared<const Entry>(
      0, 1, std::vector<Transaction>{MakeTxn(1, 201)});
  Certificate cert;
  for (uint16_t i = 0; i < 5; ++i) cert.AddSignature(i, Signature{});
  EntryTransferMsg msg(entry, cert);
  // The entry rides as a length-prefixed blob of its canonical encoding;
  // entry-carrying frames also attach the wire trace context.
  EXPECT_EQ(msg.ByteSize(), kFrameOverheadBytes + kTraceContextBytes +
                                VarintSize(entry->ByteSize()) +
                                entry->ByteSize() + cert.ByteSize());
  EXPECT_EQ(msg.ByteSize(), EncodedSize(msg));
}

TEST(MessageSizeTest, ChunkBatchAccountsChunksProofsAndCert) {
  Chunk chunk;
  chunk.chunk_id = 3;
  chunk.data.assign(1000, 7);
  chunk.proof.index = 3;
  chunk.proof.leaf_count = 28;
  chunk.proof.path.resize(5);
  Certificate cert;
  for (uint16_t i = 0; i < 5; ++i) cert.AddSignature(i, Signature{});
  ChunkBatchMsg msg(0, 1, Digest{}, cert, {chunk}, 13000);
  size_t expected = kFrameOverheadBytes + kTraceContextBytes + 2 + 8 + 32 + 8 +
                    cert.ByteSize() + /*chunk count varint*/ 1 +
                    chunk.ByteSize();
  EXPECT_EQ(chunk.ByteSize(), 4 + 2 + 1000 + chunk.proof.ByteSize());
  EXPECT_EQ(msg.ByteSize(), expected);
  EXPECT_EQ(msg.ByteSize(), EncodedSize(msg));
}

TEST(MessageSizeTest, SignatureWireSizeMatchesEd25519) {
  // The substituted scheme must not change message sizes (DESIGN.md §2).
  PbftVoteMsg vote(MessageType::kPrepare, 0, 0, Digest{}, Signature{});
  EXPECT_EQ(vote.ByteSize(), kFrameOverheadBytes + 8 + 8 + 32 + 64);
  EXPECT_EQ(vote.ByteSize(), EncodedSize(vote));
}

TEST(MessageSizeTest, TimestampPiggybackCounted) {
  Certificate cert;
  RaftProposeMsg bare(0, 1, Digest{}, cert, {});
  RaftProposeMsg with_ts(0, 1, Digest{}, cert,
                         {TimestampElement{0, 1, 2, 3},
                          TimestampElement{1, 1, 2, 4}});
  EXPECT_EQ(with_ts.ByteSize(),
            bare.ByteSize() + 2 * TimestampElement::kByteSize);
}

}  // namespace
}  // namespace massbft
