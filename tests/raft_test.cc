#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <set>
#include <vector>

#include "consensus/pbft/certifier.h"
#include "consensus/raft/raft.h"
#include "crypto/signature.h"

namespace massbft {
namespace {

/// Standalone RaftCoordinator harness: one coordinator per group leader,
/// wired through an instantly-delivering bus with self-certifying mock
/// certification (the real certifier is tested in pbft_test.cc).
class RaftHarness {
 public:
  explicit RaftHarness(int num_groups) : num_groups_(num_groups) {
    for (int g = 0; g < num_groups; ++g)
      registry_.RegisterNode(NodeId{static_cast<uint16_t>(g), 0});
    for (int g = 0; g < num_groups; ++g) {
      RaftCoordinator::Callbacks cb;
      cb.send_to_group = [this, g](int to, MessagePtr m) {
        if (delivering_) {
          queue_.push_back({g, to, std::move(m)});
          return;
        }
        queue_.push_back({g, to, std::move(m)});
      };
      cb.certify = [this, g](const DecisionId& decision,
                             std::function<void(Certificate)> done) {
        // Mock local consensus: immediately produce a 1-sig certificate.
        Certificate cert;
        cert.gid = static_cast<uint16_t>(g);
        cert.digest = DigestCertifier::DecisionDigest(decision);
        NodeId node{static_cast<uint16_t>(g), 0};
        Bytes payload(cert.digest.begin(), cert.digest.end());
        cert.AddSignature(node.index, registry_.Sign(node, payload));
        done(std::move(cert));
      };
      cb.verify_group_cert = [this](const Certificate& cert,
                                    const Digest& digest) {
        if (cert.digest != digest) return false;
        return cert.Verify(registry_, 1);
      };
      cb.has_entry = [this, g](uint16_t gid, uint64_t seq) {
        return available_[g].count({gid, seq}) > 0;
      };
      cb.assign_ts = [this, g](uint16_t, uint64_t) { return clocks_[g]; };
      cb.on_committed = [this, g](uint16_t gid, uint64_t seq) {
        committed_[g].push_back({gid, seq});
      };
      cb.on_accept_observed = [this, g](uint16_t gid, uint64_t seq,
                                        uint16_t from, uint64_t ts) {
        accepts_[g].push_back({gid, seq, from, ts});
      };
      coordinators_.push_back(
          std::make_unique<RaftCoordinator>(num_groups, g, std::move(cb)));
      clocks_.push_back(0);
    }
    available_.resize(num_groups);
    committed_.resize(num_groups);
    accepts_.resize(num_groups);
  }

  /// Entry payload became available at group `g`'s leader.
  void MakeAvailable(int g, uint16_t gid, uint64_t seq) {
    available_[g].insert({gid, seq});
    coordinators_[g]->NotifyEntryAvailable(gid, seq);
    Deliver();
  }

  /// When false, only the proposer holds the payload; other groups need
  /// MakeAvailable before they accept (models in-flight replication).
  void set_auto_available(bool v) { auto_available_ = v; }

  void Propose(int g, uint64_t seq, const Digest& digest) {
    Certificate cert;
    cert.gid = static_cast<uint16_t>(g);
    cert.digest = digest;
    NodeId node{static_cast<uint16_t>(g), 0};
    Bytes payload(digest.begin(), digest.end());
    cert.AddSignature(node.index, registry_.Sign(node, payload));
    if (auto_available_) {
      for (int j = 0; j < num_groups_; ++j)
        available_[j].insert({static_cast<uint16_t>(g), seq});
    } else {
      available_[g].insert({static_cast<uint16_t>(g), seq});
    }
    coordinators_[g]->Propose(static_cast<uint16_t>(g), seq, digest, cert);
    Deliver();
  }

  void Deliver() {
    if (delivering_) return;
    delivering_ = true;
    while (!queue_.empty()) {
      auto [from, to, msg] = std::move(queue_.front());
      queue_.pop_front();
      if (crashed_.count(to) > 0 || crashed_.count(from) > 0) continue;
      RaftCoordinator* c = coordinators_[to].get();
      switch (static_cast<MessageType>(msg->type())) {
        case MessageType::kRaftPropose:
          c->OnProposeControl(static_cast<const RaftProposeMsg&>(*msg));
          break;
        case MessageType::kRaftAccept:
          c->OnAccept(static_cast<const RaftAcceptMsg&>(*msg));
          break;
        case MessageType::kRaftCommit:
          c->OnCommit(static_cast<const RaftCommitMsg&>(*msg));
          break;
        default:
          break;
      }
    }
    delivering_ = false;
  }

  void Crash(int g) { crashed_.insert(g); }

  RaftCoordinator& coordinator(int g) { return *coordinators_[g]; }
  const std::vector<std::pair<uint16_t, uint64_t>>& committed(int g) const {
    return committed_[g];
  }
  struct AcceptObs {
    uint16_t gid;
    uint64_t seq;
    uint16_t from;
    uint64_t ts;
  };
  const std::vector<AcceptObs>& accepts(int g) const { return accepts_[g]; }
  void set_clock(int g, uint64_t v) { clocks_[g] = v; }

 private:
  struct Queued {
    int from;
    int to;
    MessagePtr msg;
  };
  int num_groups_;
  KeyRegistry registry_;
  std::vector<std::unique_ptr<RaftCoordinator>> coordinators_;
  std::vector<std::set<std::pair<uint16_t, uint64_t>>> available_;
  std::vector<std::vector<std::pair<uint16_t, uint64_t>>> committed_;
  std::vector<std::vector<AcceptObs>> accepts_;
  std::vector<uint64_t> clocks_;
  std::deque<Queued> queue_;
  std::set<int> crashed_;
  bool delivering_ = false;
  bool auto_available_ = true;
};

Digest DigestOf(int v) { return Sha256::Hash(std::to_string(v)); }

TEST(RaftTest, ProposeAcceptCommitAcrossThreeGroups) {
  RaftHarness h(3);
  h.Propose(0, 0, DigestOf(1));
  // Quorum 2 (self + 1): commits everywhere.
  for (int g = 0; g < 3; ++g) {
    ASSERT_EQ(h.committed(g).size(), 1u) << "group " << g;
    EXPECT_EQ(h.committed(g)[0], (std::pair<uint16_t, uint64_t>{0, 0}));
  }
}

TEST(RaftTest, CommitWaitsForEntryAvailability) {
  RaftHarness h(3);
  h.set_auto_available(false);
  // Remote groups do not have the payload yet: the propose control alone
  // must not produce accepts (Lemma V.1's gate), so no commit quorum.
  h.Propose(0, 0, DigestOf(1));
  EXPECT_TRUE(h.committed(1).empty());
  h.MakeAvailable(1, 0, 0);
  EXPECT_EQ(h.committed(0).size(), 1u);
  EXPECT_EQ(h.committed(1).size(), 1u);
}

TEST(RaftTest, InOrderCommitDeliveryPerInstance) {
  RaftHarness h(3);
  // Propose seq 0 and 1; make payloads available out of order at group 1.
  h.Propose(0, 0, DigestOf(10));
  h.Propose(0, 1, DigestOf(11));
  EXPECT_EQ(h.committed(1).size(), 2u);
  EXPECT_EQ(h.committed(1)[0].second, 0u);
  EXPECT_EQ(h.committed(1)[1].second, 1u);
  EXPECT_EQ(h.coordinator(1).CommittedThrough(0), 1);
}

TEST(RaftTest, AcceptCarriesAssignerClock) {
  RaftHarness h(3);
  h.set_clock(1, 7);
  h.set_clock(2, 3);
  h.Propose(0, 0, DigestOf(5));
  // Every leader observed accepts from groups 1 and 2 with their clocks.
  std::map<uint16_t, uint64_t> seen;
  for (const auto& obs : h.accepts(0)) seen[obs.from] = obs.ts;
  EXPECT_EQ(seen[1], 7u);
  EXPECT_EQ(seen[2], 3u);
}

TEST(RaftTest, AcceptBroadcastReachesNonProposerGroups) {
  // Slow-receiver handling (Section V-C): group 2 learns that group 1
  // accepted even though group 2 is not the proposer.
  RaftHarness h(3);
  h.Propose(0, 0, DigestOf(5));
  bool saw_g1_accept = false;
  for (const auto& obs : h.accepts(2))
    if (obs.from == 1 && obs.gid == 0) saw_g1_accept = true;
  EXPECT_TRUE(saw_g1_accept);
}

TEST(RaftTest, MultiMasterInstancesIndependent) {
  RaftHarness h(3);
  h.Propose(0, 0, DigestOf(1));
  h.Propose(1, 0, DigestOf(2));
  h.Propose(2, 0, DigestOf(3));
  for (int g = 0; g < 3; ++g) {
    ASSERT_EQ(h.committed(g).size(), 3u);
    std::set<uint16_t> gids;
    for (auto& [gid, seq] : h.committed(g)) gids.insert(gid);
    EXPECT_EQ(gids.size(), 3u);
  }
}

TEST(RaftTest, FiveGroupsNeedThreeAccepts) {
  RaftHarness h(5);
  h.set_auto_available(false);
  EXPECT_EQ(h.coordinator(0).GroupQuorum(), 3);
  // Only the proposer has the payload; no commit.
  h.Propose(0, 0, DigestOf(9));
  EXPECT_TRUE(h.committed(0).empty());
  h.MakeAvailable(1, 0, 0);  // 2 accepts (self + g1): still no quorum.
  EXPECT_TRUE(h.committed(0).empty());
  h.MakeAvailable(2, 0, 0);  // 3rd: quorum.
  EXPECT_EQ(h.committed(0).size(), 1u);
}

TEST(RaftTest, CrashedProposerToleratedByQuorum) {
  RaftHarness h(3);
  h.Propose(0, 0, DigestOf(1));
  h.Crash(0);
  // Other groups already committed entry (0,0); new proposals from group 1
  // still commit with group 2's accept.
  h.Propose(1, 0, DigestOf(2));
  EXPECT_EQ(h.committed(1).size(), 2u);
  EXPECT_EQ(h.committed(2).size(), 2u);
}

TEST(RaftTest, TakeoverFlagTracksInstance) {
  RaftHarness h(3);
  EXPECT_FALSE(h.coordinator(1).HasTakenOver(0));
  h.coordinator(1).TakeOverInstance(0);
  EXPECT_TRUE(h.coordinator(1).HasTakenOver(0));
}

TEST(RaftTest, InvalidProposeCertificateRejected) {
  RaftHarness h(3);
  // Hand-craft a propose with a bogus certificate and inject it.
  Certificate bogus;
  bogus.gid = 0;
  bogus.digest = DigestOf(1);
  RaftProposeMsg msg(0, 0, DigestOf(1), bogus, {});
  h.coordinator(1).OnProposeControl(msg);
  h.MakeAvailable(1, 0, 0);
  EXPECT_TRUE(h.accepts(1).empty());
}

}  // namespace
}  // namespace massbft
