#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "core/config.h"
#include "runtime/cluster.h"

namespace massbft {
namespace {

RealClusterConfig SmallConfig() {
  RealClusterConfig config;
  config.topology = TopologyConfig::Nationwide(/*num_groups=*/2,
                                               /*nodes_per_group=*/4);
  config.protocol = ProtocolConfig::MassBft();
  config.workload = WorkloadKind::kYcsbA;
  config.workload_scale = 0.02;
  config.clients_per_group = 8;
  config.duration_seconds = 1.0;
  config.seed = 7;
  return config;
}

TEST(NodeRuntimeTest, CallRunsInlineBeforeStartAndPostDropsWhenStopped) {
  RealCluster cluster(SmallConfig());
  ASSERT_TRUE(cluster.Setup().ok());
  NodeRuntime& rt = *cluster.runtimes()[0];

  // Before Start() there is no event loop: Call() degrades to an inline
  // call on this thread and Post() reports the drop.
  EXPECT_EQ(rt.Call([](GroupNode&) { return 41 + 1; }), 42);
  EXPECT_FALSE(rt.Post([] {}));
  EXPECT_EQ(rt.id(), (NodeId{0, 0}));
}

TEST(RealClusterTest, InProcClusterCommitsAndAgrees) {
  RealCluster cluster(SmallConfig());
  ASSERT_TRUE(cluster.Setup().ok());
  auto result = cluster.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->mode, "real");
  EXPECT_GT(result->committed_txns, 0u);
  EXPECT_GT(result->throughput_tps, 0.0);
  // Real encoded bytes crossed the transport in both tiers.
  EXPECT_GT(result->total_wan_bytes, 0u);
  EXPECT_GT(result->total_lan_bytes, 0u);
}

TEST(RealClusterTest, TcpClusterCommitsAndAgrees) {
  RealClusterConfig config = SmallConfig();
  config.use_tcp = true;
  config.base_port = 19350;
  config.duration_seconds = 0.5;
  RealCluster cluster(config);
  ASSERT_TRUE(cluster.Setup().ok());
  auto result = cluster.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->committed_txns, 0u);
  EXPECT_GT(result->total_wan_bytes, 0u);
}

TEST(RealClusterTest, SetupRejectsInvalidTopology) {
  RealClusterConfig config = SmallConfig();
  config.topology.group_sizes.clear();
  RealCluster cluster(config);
  EXPECT_FALSE(cluster.Setup().ok());
}

TEST(RealClusterTest, KillAndRestartValidatePreconditions) {
  RealCluster cluster(SmallConfig());
  ASSERT_TRUE(cluster.Setup().ok());
  // Unknown node.
  EXPECT_TRUE(cluster.KillNode(NodeId{9, 9}).IsNotFound());
  // Known node, but nothing is running before Run().
  EXPECT_FALSE(cluster.KillNode(NodeId{0, 1}).ok());
  // RestartNode on a node that was never killed-while-running still just
  // starts it; put it back down so the destructor's Stop() is a no-op.
  EXPECT_TRUE(cluster.RestartNode(NodeId{0, 1}).ok());
  EXPECT_TRUE(cluster.KillNode(NodeId{0, 1}).ok());
}

TEST(RealClusterTest, AgreesWithCrashedFollowersPerGroup) {
  // f = 1 for 4-node groups: crash one follower in every group mid-run.
  // The survivors must keep committing and end in agreement; the paper's
  // Section VI-E failure experiment, shrunk to test size.
  RealClusterConfig config = SmallConfig();
  config.duration_seconds = 1.2;
  config.crash_nodes_per_group = 1;
  config.crash_at_s = 0.4;
  RealCluster cluster(config);
  ASSERT_TRUE(cluster.Setup().ok());
  auto result = cluster.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->committed_txns, 0u);
  EXPECT_EQ(result->nodes_killed, 2);
}

TEST(RealClusterTest, CrashedFollowersRejoinOverTcp) {
  // Crash one follower per group, then restart it: the runtime restarts
  // the event loop without rewinding its virtual clock, the TCP writers
  // redial with backoff, and the node rejoins via Recover(). Agreement is
  // checked over the continuously-correct survivors.
  RealClusterConfig config = SmallConfig();
  config.use_tcp = true;
  config.base_port = 19380;
  config.duration_seconds = 1.5;
  config.crash_nodes_per_group = 1;
  config.crash_at_s = 0.3;
  config.restart_at_s = 0.8;
  RealCluster cluster(config);
  ASSERT_TRUE(cluster.Setup().ok());
  auto result = cluster.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->committed_txns, 0u);
  EXPECT_EQ(result->nodes_killed, 2);
  // Peers kept (non-blockingly) redialing the dead node; once it came
  // back, at least one connection was re-established.
  EXPECT_GT(result->net_reconnects, 0u);
}

TEST(RealClusterTest, AgreesAcrossHealedPartition) {
  // Cut group 0 from group 1 for 0.4s mid-run, then heal. Cross-group
  // ordering stalls during the window; after it heals the VTS tick moves
  // again and the drain must converge to one fingerprint.
  RealClusterConfig config = SmallConfig();
  config.duration_seconds = 1.5;
  FaultSpec::Partition partition;
  partition.start_s = 0.3;
  partition.end_s = 0.7;
  partition.side_a = {0};
  config.net_faults.seed = config.seed;
  config.net_faults.partitions.push_back(partition);
  RealCluster cluster(config);
  ASSERT_TRUE(cluster.Setup().ok());
  auto result = cluster.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->committed_txns, 0u);
  // The window really cut traffic (counted by the injectors) and the
  // counters surfaced into the result.
  EXPECT_GT(result->faults_injected, 0u);
}

TEST(RealClusterTest, AgreesUnderDuplicationAndDelay) {
  // Duplicate and delay frames on every link. Quorum collection and the
  // entry store must deduplicate, and delayed links stall progress
  // without breaking it. (The injector keeps each link FIFO — delay adds
  // latency, never reorderings — because the VTS engine's lower-bound
  // inference assumes per-channel monotone stamps, which real TCP
  // provides. Silent loss is likewise NOT injected: with
  // execute-on-all-nodes there is no per-frame retransmission — a
  // follower that misses an entry only recovers via the crash path's
  // catch-up — so loss-tolerance is exercised by the partition and
  // crash tests, whose windows end.)
  RealClusterConfig config = SmallConfig();
  config.duration_seconds = 1.2;
  config.net_faults.seed = 99;
  config.net_faults.duplicate_rate = 0.05;
  config.net_faults.delay_rate = 0.05;
  config.net_faults.delay_min_ms = 1.0;
  config.net_faults.delay_max_ms = 10.0;
  RealCluster cluster(config);
  ASSERT_TRUE(cluster.Setup().ok());
  auto result = cluster.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->committed_txns, 0u);
  EXPECT_GT(result->faults_injected, 0u);
}

/// Minimal blocking HTTP GET against the cluster's localhost stats server.
std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[1024];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    response.append(buf, static_cast<size_t>(n));
  ::close(fd);
  return response;
}

TEST(RealClusterTest, ObservabilityEndToEnd) {
  // The full DESIGN.md §14 surface in one faulty run: merged cluster trace
  // with cross-node flow arrows, mid-run Prometheus + health scrapes, and
  // a populated real-mode timeline.
  RealClusterConfig config = SmallConfig();
  config.duration_seconds = 1.5;
  config.sample_interval_s = 0.25;
  config.stats_port = 0;  // Ephemeral.
  config.trace_path = testing::TempDir() + "/runtime_obs_trace.json";
  config.net_faults.seed = config.seed;
  config.net_faults.duplicate_rate = 0.05;
  config.net_faults.delay_rate = 0.05;
  config.net_faults.delay_min_ms = 1.0;
  config.net_faults.delay_max_ms = 5.0;

  RealCluster cluster(config);
  ASSERT_TRUE(cluster.Setup().ok());
  ASSERT_GT(cluster.stats_port(), 0);

  // Scrape while the cluster is actually running: Run() on a worker
  // thread, the scrapes from here mid-window.
  Result<ExperimentResult> result = Status::Internal("never ran");
  std::thread runner([&] { result = cluster.Run(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(600));

  const std::string metrics = HttpGet(cluster.stats_port(), "/metrics");
  const std::string health = HttpGet(cluster.stats_port(), "/health");
  runner.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Prometheus exposition: every node's registry behind one endpoint,
  // grouped under shared # TYPE headers with per-node labels.
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE massbft_"), std::string::npos);
  EXPECT_NE(metrics.find("{node=\"0/0\"}"), std::string::npos);
  EXPECT_NE(metrics.find("{node=\"1/3\"}"), std::string::npos);

  // Health view: JSON with per-node liveness and transport counters.
  EXPECT_NE(health.find("application/json"), std::string::npos);
  EXPECT_NE(health.find("\"mode\":\"real\""), std::string::npos);
  EXPECT_NE(health.find("\"running\":true"), std::string::npos);
  EXPECT_NE(health.find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(health.find("\"reconnects\""), std::string::npos);

  // The periodic sampler filled the real-mode timeline, and some bucket
  // saw commits.
  ASSERT_FALSE(result->timeline.empty());
  double peak_tps = 0;
  for (const auto& point : result->timeline)
    peak_tps = std::max(peak_tps, point.tps);
  EXPECT_GT(peak_tps, 0.0);

  // The merged trace exists, is one document for the whole cluster, and
  // carries cross-node flow arrows synthesized from wire trace contexts.
  std::ifstream in(config.trace_path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string trace = buf.str();
  EXPECT_NE(trace.find("\"trace_unix_anchor_ns\""), std::string::npos);
  EXPECT_NE(trace.find("\"node_count\":8"), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"node 0/0\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"f\""), std::string::npos);
  // Chaos-injector fault instants ride the owning node's track.
  EXPECT_NE(trace.find("\"cat\":\"fault\""), std::string::npos);
}

}  // namespace
}  // namespace massbft
