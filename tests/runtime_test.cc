#include <gtest/gtest.h>

#include "core/config.h"
#include "runtime/cluster.h"

namespace massbft {
namespace {

RealClusterConfig SmallConfig() {
  RealClusterConfig config;
  config.topology = TopologyConfig::Nationwide(/*num_groups=*/2,
                                               /*nodes_per_group=*/4);
  config.protocol = ProtocolConfig::MassBft();
  config.workload = WorkloadKind::kYcsbA;
  config.workload_scale = 0.02;
  config.clients_per_group = 8;
  config.duration_seconds = 1.0;
  config.seed = 7;
  return config;
}

TEST(NodeRuntimeTest, CallRunsInlineBeforeStartAndPostDropsWhenStopped) {
  RealCluster cluster(SmallConfig());
  ASSERT_TRUE(cluster.Setup().ok());
  NodeRuntime& rt = *cluster.runtimes()[0];

  // Before Start() there is no event loop: Call() degrades to an inline
  // call on this thread and Post() reports the drop.
  EXPECT_EQ(rt.Call([](GroupNode&) { return 41 + 1; }), 42);
  EXPECT_FALSE(rt.Post([] {}));
  EXPECT_EQ(rt.id(), (NodeId{0, 0}));
}

TEST(RealClusterTest, InProcClusterCommitsAndAgrees) {
  RealCluster cluster(SmallConfig());
  ASSERT_TRUE(cluster.Setup().ok());
  auto result = cluster.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->mode, "real");
  EXPECT_GT(result->committed_txns, 0u);
  EXPECT_GT(result->throughput_tps, 0.0);
  // Real encoded bytes crossed the transport in both tiers.
  EXPECT_GT(result->total_wan_bytes, 0u);
  EXPECT_GT(result->total_lan_bytes, 0u);
}

TEST(RealClusterTest, TcpClusterCommitsAndAgrees) {
  RealClusterConfig config = SmallConfig();
  config.use_tcp = true;
  config.base_port = 19350;
  config.duration_seconds = 0.5;
  RealCluster cluster(config);
  ASSERT_TRUE(cluster.Setup().ok());
  auto result = cluster.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->committed_txns, 0u);
  EXPECT_GT(result->total_wan_bytes, 0u);
}

TEST(RealClusterTest, SetupRejectsInvalidTopology) {
  RealClusterConfig config = SmallConfig();
  config.topology.group_sizes.clear();
  RealCluster cluster(config);
  EXPECT_FALSE(cluster.Setup().ok());
}

TEST(RealClusterTest, KillAndRestartValidatePreconditions) {
  RealCluster cluster(SmallConfig());
  ASSERT_TRUE(cluster.Setup().ok());
  // Unknown node.
  EXPECT_TRUE(cluster.KillNode(NodeId{9, 9}).IsNotFound());
  // Known node, but nothing is running before Run().
  EXPECT_FALSE(cluster.KillNode(NodeId{0, 1}).ok());
  // RestartNode on a node that was never killed-while-running still just
  // starts it; put it back down so the destructor's Stop() is a no-op.
  EXPECT_TRUE(cluster.RestartNode(NodeId{0, 1}).ok());
  EXPECT_TRUE(cluster.KillNode(NodeId{0, 1}).ok());
}

TEST(RealClusterTest, AgreesWithCrashedFollowersPerGroup) {
  // f = 1 for 4-node groups: crash one follower in every group mid-run.
  // The survivors must keep committing and end in agreement; the paper's
  // Section VI-E failure experiment, shrunk to test size.
  RealClusterConfig config = SmallConfig();
  config.duration_seconds = 1.2;
  config.crash_nodes_per_group = 1;
  config.crash_at_s = 0.4;
  RealCluster cluster(config);
  ASSERT_TRUE(cluster.Setup().ok());
  auto result = cluster.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->committed_txns, 0u);
  EXPECT_EQ(result->nodes_killed, 2);
}

TEST(RealClusterTest, CrashedFollowersRejoinOverTcp) {
  // Crash one follower per group, then restart it: the runtime restarts
  // the event loop without rewinding its virtual clock, the TCP writers
  // redial with backoff, and the node rejoins via Recover(). Agreement is
  // checked over the continuously-correct survivors.
  RealClusterConfig config = SmallConfig();
  config.use_tcp = true;
  config.base_port = 19380;
  config.duration_seconds = 1.5;
  config.crash_nodes_per_group = 1;
  config.crash_at_s = 0.3;
  config.restart_at_s = 0.8;
  RealCluster cluster(config);
  ASSERT_TRUE(cluster.Setup().ok());
  auto result = cluster.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->committed_txns, 0u);
  EXPECT_EQ(result->nodes_killed, 2);
  // Peers kept (non-blockingly) redialing the dead node; once it came
  // back, at least one connection was re-established.
  EXPECT_GT(result->net_reconnects, 0u);
}

TEST(RealClusterTest, AgreesAcrossHealedPartition) {
  // Cut group 0 from group 1 for 0.4s mid-run, then heal. Cross-group
  // ordering stalls during the window; after it heals the VTS tick moves
  // again and the drain must converge to one fingerprint.
  RealClusterConfig config = SmallConfig();
  config.duration_seconds = 1.5;
  FaultSpec::Partition partition;
  partition.start_s = 0.3;
  partition.end_s = 0.7;
  partition.side_a = {0};
  config.net_faults.seed = config.seed;
  config.net_faults.partitions.push_back(partition);
  RealCluster cluster(config);
  ASSERT_TRUE(cluster.Setup().ok());
  auto result = cluster.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->committed_txns, 0u);
  // The window really cut traffic (counted by the injectors) and the
  // counters surfaced into the result.
  EXPECT_GT(result->faults_injected, 0u);
}

TEST(RealClusterTest, AgreesUnderDuplicationAndDelay) {
  // Duplicate and delay frames on every link. Quorum collection and the
  // entry store must deduplicate, and delayed links stall progress
  // without breaking it. (The injector keeps each link FIFO — delay adds
  // latency, never reorderings — because the VTS engine's lower-bound
  // inference assumes per-channel monotone stamps, which real TCP
  // provides. Silent loss is likewise NOT injected: with
  // execute-on-all-nodes there is no per-frame retransmission — a
  // follower that misses an entry only recovers via the crash path's
  // catch-up — so loss-tolerance is exercised by the partition and
  // crash tests, whose windows end.)
  RealClusterConfig config = SmallConfig();
  config.duration_seconds = 1.2;
  config.net_faults.seed = 99;
  config.net_faults.duplicate_rate = 0.05;
  config.net_faults.delay_rate = 0.05;
  config.net_faults.delay_min_ms = 1.0;
  config.net_faults.delay_max_ms = 10.0;
  RealCluster cluster(config);
  ASSERT_TRUE(cluster.Setup().ok());
  auto result = cluster.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->committed_txns, 0u);
  EXPECT_GT(result->faults_injected, 0u);
}

}  // namespace
}  // namespace massbft
