#include <gtest/gtest.h>

#include "core/config.h"
#include "runtime/cluster.h"

namespace massbft {
namespace {

RealClusterConfig SmallConfig() {
  RealClusterConfig config;
  config.topology = TopologyConfig::Nationwide(/*num_groups=*/2,
                                               /*nodes_per_group=*/4);
  config.protocol = ProtocolConfig::MassBft();
  config.workload = WorkloadKind::kYcsbA;
  config.workload_scale = 0.02;
  config.clients_per_group = 8;
  config.duration_seconds = 1.0;
  config.seed = 7;
  return config;
}

TEST(NodeRuntimeTest, CallRunsInlineBeforeStartAndPostDropsWhenStopped) {
  RealCluster cluster(SmallConfig());
  ASSERT_TRUE(cluster.Setup().ok());
  NodeRuntime& rt = *cluster.runtimes()[0];

  // Before Start() there is no event loop: Call() degrades to an inline
  // call on this thread and Post() reports the drop.
  EXPECT_EQ(rt.Call([](GroupNode&) { return 41 + 1; }), 42);
  EXPECT_FALSE(rt.Post([] {}));
  EXPECT_EQ(rt.id(), (NodeId{0, 0}));
}

TEST(RealClusterTest, InProcClusterCommitsAndAgrees) {
  RealCluster cluster(SmallConfig());
  ASSERT_TRUE(cluster.Setup().ok());
  auto result = cluster.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->mode, "real");
  EXPECT_GT(result->committed_txns, 0u);
  EXPECT_GT(result->throughput_tps, 0.0);
  // Real encoded bytes crossed the transport in both tiers.
  EXPECT_GT(result->total_wan_bytes, 0u);
  EXPECT_GT(result->total_lan_bytes, 0u);
}

TEST(RealClusterTest, TcpClusterCommitsAndAgrees) {
  RealClusterConfig config = SmallConfig();
  config.use_tcp = true;
  config.base_port = 19350;
  config.duration_seconds = 0.5;
  RealCluster cluster(config);
  ASSERT_TRUE(cluster.Setup().ok());
  auto result = cluster.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->committed_txns, 0u);
  EXPECT_GT(result->total_wan_bytes, 0u);
}

TEST(RealClusterTest, SetupRejectsInvalidTopology) {
  RealClusterConfig config = SmallConfig();
  config.topology.group_sizes.clear();
  RealCluster cluster(config);
  EXPECT_FALSE(cluster.Setup().ok());
}

}  // namespace
}  // namespace massbft
