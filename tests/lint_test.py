#!/usr/bin/env python3
"""Tests for tools/lint/massbft_lint.py (registered in ctest as
lint_fixtures; the companion lint_tree test runs the linter over the real
tree). Each fixture under tools/lint/testdata/fake_repo seeds exactly the
violations asserted here, plus a clean file that must stay silent — so a
rule that stops firing, fires twice, or fires on clean code fails tier-1
locally, not just in CI.
"""

import os
import re
import subprocess
import sys
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINTER = os.path.join(REPO_ROOT, "tools", "lint", "massbft_lint.py")
FAKE_REPO = os.path.join(REPO_ROOT, "tools", "lint", "testdata", "fake_repo")

FINDING_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): "
                        r"\[(?P<rid>D\d)/(?P<rule>[a-z-]+)\] ")


def run_linter(*args):
    proc = subprocess.run(
        [sys.executable, LINTER] + list(args),
        capture_output=True, text=True, check=False)
    findings = []
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.append((m.group("path"), int(m.group("line")),
                             m.group("rid"), m.group("rule")))
    return proc.returncode, findings


class FixtureTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.rc, cls.findings = run_linter("--root", FAKE_REPO)

    def findings_for(self, path):
        return [f for f in self.findings if f[0] == path]

    def test_exit_code_signals_findings(self):
        self.assertEqual(self.rc, 1)

    def test_d1_wallclock_fires_on_each_banned_source(self):
        rules = [(f[2], f[3]) for f in
                 self.findings_for("src/sim/bad_wallclock.cc")]
        self.assertEqual(rules, [("D1", "wallclock")] * 4,
                         "system_clock, time(), srand(), rand()")

    def test_d2_unordered_iter_fires_on_range_for_and_iterator_walk(self):
        rules = [(f[2], f[3]) for f in
                 self.findings_for("src/sim/bad_unordered.cc")]
        self.assertEqual(rules, [("D2", "unordered-iter")] * 2)

    def test_d3_kernel_oracle_fires_without_scalar_twin(self):
        rules = [(f[2], f[3]) for f in
                 self.findings_for("src/ec/bad_kernel.cc")]
        self.assertEqual(rules, [("D3", "kernel-oracle")])

    def test_d3_kernel_oracle_fires_without_property_test(self):
        rules = [(f[2], f[3]) for f in
                 self.findings_for("src/crypto/untested_kernel.cc")]
        self.assertEqual(rules, [("D3", "kernel-oracle")])

    def test_d4_nodiscard_fires_on_unannotated_status_class(self):
        rules = [(f[2], f[3]) for f in
                 self.findings_for("src/common/status.h")]
        self.assertEqual(rules, [("D4", "nodiscard")])

    def test_d4_nodiscard_fires_on_unannotated_factories(self):
        rules = [(f[2], f[3]) for f in
                 self.findings_for("src/proto/bad_factory.h")]
        self.assertEqual(rules, [("D4", "nodiscard")] * 2,
                         "DecodeThing and VerifyThing")

    def test_d6_mutex_guard_fires_on_each_unchecked_member(self):
        rules = [(f[2], f[3]) for f in
                 self.findings_for("src/net/bad_mutex_members.h")]
        self.assertEqual(rules, [("D6", "mutex-guard")] * 3,
                         "bare std::mutex, annotation-free RankedMutex, "
                         "undocumented condition_variable")

    def test_d7_bare_lock_fires_outside_raii_guards(self):
        rules = [(f[2], f[3]) for f in
                 self.findings_for("src/net/bad_bare_lock.cc")]
        self.assertEqual(rules, [("D7", "bare-lock")] * 2,
                         ".lock() and .unlock(); the suppressed handoff "
                         "call must stay silent")

    def test_annotated_concurrency_state_is_silent(self):
        self.assertEqual(self.findings_for("src/net/annotated_ok.h"), [],
                         "GUARDED_BY-covered RankedMutex, a documented "
                         "condvar, a MutexLock guard and a reasoned "
                         "std::mutex suppression must not fire D5/D6/D7")

    def test_d5_flags_stale_suppressions(self):
        rules = [(f[2], f[3]) for f in
                 self.findings_for("src/sim/unused_suppression.cc")]
        self.assertEqual(rules, [("D5", "unused-suppression")])

    def test_clean_file_is_silent(self):
        self.assertEqual(self.findings_for("src/sim/clean.cc"), [],
                         "legal constructs and a used suppression must not "
                         "fire any rule, including unused-suppression")

    def test_realtime_dirs_are_wallclock_exempt_by_policy(self):
        self.assertEqual(self.findings_for("src/net/realtime_ok.cc"), [],
                         "src/net is a real-time dir in DIR_POLICY: wall "
                         "clock and unordered iteration are its job and "
                         "must not fire D1/D2")

    def test_file_stem_policy_exempts_obs_wallclock_bridges(self):
        self.assertEqual(self.findings_for("src/obs/stats_server.cc"), [],
                         "src/obs/stats_server has a file-stem DIR_POLICY "
                         "entry: the stats server is a real-time bridge and "
                         "its wall-clock use is exempt by policy, without "
                         "per-line suppressions")

    def test_file_stem_policy_does_not_leak_to_siblings(self):
        rules = [(f[2], f[3]) for f in
                 self.findings_for("src/obs/bad_obs_wallclock.cc")]
        self.assertEqual(rules, [("D1", "wallclock")],
                         "the stem exemption covers only stats_server.* — "
                         "the src/obs directory entry must still bind D1 "
                         "for every other obs file")

    def test_suppression_in_exempt_dir_is_flagged_stale(self):
        rules = [(f[2], f[3]) for f in
                 self.findings_for("src/runtime/stale_suppression.cc")]
        self.assertEqual(rules, [("D5", "unused-suppression")],
                         "a wallclock suppression in a D1-exempt dir covers "
                         "nothing and must be reported stale")

    def test_no_unexpected_findings(self):
        expected_files = {
            "src/sim/bad_wallclock.cc", "src/sim/bad_unordered.cc",
            "src/ec/bad_kernel.cc", "src/crypto/untested_kernel.cc",
            "src/common/status.h", "src/proto/bad_factory.h",
            "src/sim/unused_suppression.cc",
            "src/runtime/stale_suppression.cc",
            "src/obs/bad_obs_wallclock.cc",
            "src/net/bad_mutex_members.h", "src/net/bad_bare_lock.cc",
        }
        self.assertEqual({f[0] for f in self.findings}, expected_files)


class RealTreeTest(unittest.TestCase):
    """The real tree must lint clean — the same check the `lint_tree` ctest
    entry and the CI lint leg run, kept here too so `python3
    tests/lint_test.py` alone gives the full verdict."""

    def test_real_tree_is_clean(self):
        rc, findings = run_linter("--root", REPO_ROOT)
        self.assertEqual(
            (rc, findings), (0, []),
            "massbft_lint must pass on the repository itself; fix the "
            "violation or add a reasoned suppression (DESIGN.md §11)")


if __name__ == "__main__":
    unittest.main()
