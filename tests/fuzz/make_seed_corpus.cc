/// Regenerates the checked-in fuzz seed corpus (tests/fuzz/corpus/).
/// Deterministic: a fixed Rng seed and fixed origin timestamps produce
/// byte-identical seeds on every run, so regeneration never churns git.
///
///   ./make_seed_corpus <repo>/tests/fuzz/corpus
///
/// decode_frame/ gets one well-formed frame per interesting message type
/// plus truncated / bit-flipped / bad-magic variants (the rejection paths
/// deserve coverage too). reassembler/ gets multi-frame streams and a
/// stream ending mid-frame.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/wire.h"
#include "proto/messages.h"

namespace massbft {
namespace {

Signature RandSig(Rng& rng) {
  Signature sig;
  for (auto& b : sig) b = static_cast<uint8_t>(rng.NextU64());
  return sig;
}

Digest RandDigest(Rng& rng) {
  Digest d;
  for (auto& b : d) b = static_cast<uint8_t>(rng.NextU64());
  return d;
}

Transaction RandTxn(Rng& rng) {
  Transaction txn;
  txn.id = rng.NextU64();
  txn.client = static_cast<uint32_t>(rng.NextU64());
  txn.submit_time = static_cast<SimTime>(rng.NextBelow(1u << 30));
  txn.payload.resize(rng.NextBelow(64));
  for (auto& b : txn.payload) b = static_cast<uint8_t>(rng.NextU64());
  return txn;
}

EntryPtr RandEntry(Rng& rng) {
  std::vector<Transaction> txns;
  for (size_t i = 0; i < 2; ++i) txns.push_back(RandTxn(rng));
  return std::make_shared<const Entry>(1, rng.NextU64(), std::move(txns));
}

Certificate RandCert(Rng& rng) {
  Certificate cert;
  cert.gid = 1;
  cert.digest = RandDigest(rng);
  for (size_t i = 0; i < 2; ++i)
    cert.AddSignature(static_cast<uint16_t>(i), RandSig(rng));
  return cert;
}

std::vector<Chunk> RandChunks(Rng& rng) {
  std::vector<Chunk> chunks;
  for (size_t i = 0; i < 2; ++i) {
    Chunk c;
    c.chunk_id = static_cast<uint32_t>(i);
    c.data.resize(1 + rng.NextBelow(32));
    for (auto& b : c.data) b = static_cast<uint8_t>(rng.NextU64());
    c.proof.index = static_cast<uint32_t>(i);
    c.proof.leaf_count = 2;
    c.proof.path = {RandDigest(rng), RandDigest(rng)};
    chunks.push_back(std::move(c));
  }
  return chunks;
}

/// One representative frame per wire shape the decoder branches on: the
/// trace-carrying types, the small control types, and the variable-length
/// containers.
std::vector<std::pair<std::string, Bytes>> SeedFrames() {
  Rng rng(20250808);
  const NodeId src{1, 2};
  const uint64_t ts = 777;  // Fixed: regeneration must be byte-stable.
  std::vector<std::pair<std::string, Bytes>> seeds;
  auto add = [&](const char* name, const ProtocolMessage& msg) {
    seeds.emplace_back(name, EncodeFrame(msg, src, ts));
  };

  add("client_request", ClientRequestMsg(RandTxn(rng)));
  add("client_reply", ClientReplyMsg(42, true));
  add("pre_prepare", PrePrepareMsg(1, 9, RandEntry(rng), RandSig(rng)));
  add("prepare", PbftVoteMsg(MessageType::kPrepare, 1, 9, RandDigest(rng),
                             RandSig(rng)));
  add("entry_transfer", EntryTransferMsg(RandEntry(rng), RandCert(rng)));
  add("chunk_batch", ChunkBatchMsg(1, 7, RandDigest(rng), RandCert(rng),
                                   RandChunks(rng), 4096));
  add("raft_propose",
      RaftProposeMsg(1, 99, RandDigest(rng), RandCert(rng),
                     {TimestampElement{1, 2, 3, 4}}, 2, 55));
  add("heartbeat", GroupHeartbeatMsg(3, 12));
  add("catch_up_done", CatchUpDoneMsg());
  // v3 compact-cert stress: a sparse participation bitmap (high signer
  // index) exercises the multi-byte bitmap decode path.
  Certificate wide;
  wide.gid = 1;
  wide.digest = RandDigest(rng);
  wide.AddSignature(0, RandSig(rng));
  wide.AddSignature(77, RandSig(rng));
  add("entry_transfer_wide_cert",
      EntryTransferMsg(RandEntry(rng), wide));
  return seeds;
}

void WriteSeed(const std::filesystem::path& dir, const std::string& name,
               const uint8_t* data, size_t size) {
  std::ofstream out(dir / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data), static_cast<long>(size));
}

}  // namespace
}  // namespace massbft

int main(int argc, char** argv) {
  using namespace massbft;  // NOLINT: corpus generator, single TU
  namespace fs = std::filesystem;
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_seed_corpus <corpus-dir>\n");
    return 2;
  }
  const fs::path root = argv[1];
  const fs::path decode_dir = root / "decode_frame";
  const fs::path reasm_dir = root / "reassembler";
  fs::create_directories(decode_dir);
  fs::create_directories(reasm_dir);

  auto seeds = SeedFrames();
  for (const auto& [name, wire] : seeds) {
    WriteSeed(decode_dir, name, wire.data(), wire.size());
  }

  // Rejection-path seeds: truncation, a CRC-breaking bit flip, bad magic,
  // and a header-only prefix.
  {
    const Bytes& wire = seeds[0].second;
    WriteSeed(decode_dir, "truncated", wire.data(), wire.size() / 2);
    Bytes flipped = wire;
    flipped[flipped.size() - 1] ^= 0x01;
    WriteSeed(decode_dir, "crc_flip", flipped.data(), flipped.size());
    Bytes bad_magic = wire;
    bad_magic[0] ^= 0xFF;
    WriteSeed(decode_dir, "bad_magic", bad_magic.data(), bad_magic.size());
    WriteSeed(decode_dir, "header_only", wire.data(), kFrameHeaderBytes);
  }

  // Streams for the reassembler: all seed frames back to back, and the
  // same stream cut mid-frame.
  {
    Bytes stream;
    for (const auto& [name, wire] : seeds) {
      stream.insert(stream.end(), wire.begin(), wire.end());
    }
    WriteSeed(reasm_dir, "all_frames_stream", stream.data(), stream.size());
    WriteSeed(reasm_dir, "cut_mid_frame", stream.data(),
              stream.size() - seeds.back().second.size() / 2);
    Bytes corrupt = stream;
    corrupt[seeds[0].second.size() + 5] ^= 0x10;  // Second frame's header.
    WriteSeed(reasm_dir, "corrupt_second_frame", corrupt.data(),
              corrupt.size());
  }

  std::printf("make_seed_corpus: wrote %s\n", root.string().c_str());
  return 0;
}
