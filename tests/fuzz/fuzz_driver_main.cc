/// Standalone replay driver for the fuzz targets when the toolchain has no
/// libFuzzer (the default GCC build): runs LLVMFuzzerTestOneInput over
/// every file in the directories/files given on the command line, so the
/// checked-in seed corpus doubles as a ctest regression suite in every
/// build. Exits nonzero when no input was processed — a missing corpus is
/// a failure, not a silent pass (mirrors the CI lint-job corpus check).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool RunFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz_driver: cannot read %s\n", path.c_str());
    return false;
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  int processed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-", 0) == 0) continue;  // Ignore libFuzzer-style flags.
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      // Sorted for a deterministic replay order.
      std::vector<std::string> files;
      for (const auto& entry : fs::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        if (!RunFile(file)) return 1;
        ++processed;
      }
    } else if (fs::exists(arg, ec)) {
      if (!RunFile(arg)) return 1;
      ++processed;
    } else {
      std::fprintf(stderr, "fuzz_driver: no such input: %s\n", arg.c_str());
      return 1;
    }
  }
  if (processed == 0) {
    std::fprintf(stderr,
                 "fuzz_driver: no corpus inputs found (is tests/fuzz/corpus "
                 "checked out?)\n");
    return 1;
  }
  std::printf("fuzz_driver: %d input(s) replayed without findings\n",
              processed);
  return 0;
}
