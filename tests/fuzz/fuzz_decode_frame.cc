/// Fuzz target for the frame codec entry points a hostile peer reaches
/// first: DecodeFrame and PeekFrameLength over arbitrary bytes. Invariants
/// checked beyond "never crashes":
///  * an accepted frame always carries a message, and its trace flag
///    matches the message type's contract;
///  * accepted frames are canonical — re-encoding the decoded message with
///    the same origin timestamp reproduces the input byte-for-byte (the
///    decode->encode->decode loop cannot launder bytes).
///
/// Build: cmake -DMASSBFT_FUZZ=ON; with clang this links libFuzzer, with
/// other compilers it becomes a corpus-replay regression test (see
/// tests/fuzz/fuzz_driver_main.cc and DESIGN.md §16).

#include <cstddef>
#include <cstdint>
#include <cstdlib>

#include "net/wire.h"
#include "proto/messages.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace massbft;  // NOLINT: fuzz entry point, single TU

  if (size >= kFrameHeaderBytes) {
    // Streaming boundary probe: must never crash, and an accepted length
    // is bounded by the header contract.
    auto peeked = PeekFrameLength(data, size);
    if (peeked.ok() &&
        *peeked > kFrameHeaderBytes + kTraceContextBytes + kMaxBodyBytes) {
      std::abort();
    }
  }

  auto frame = DecodeFrame(data, size);
  if (!frame.ok()) return 0;  // Rejected input: the common, boring case.

  if (frame->msg == nullptr) std::abort();
  if (frame->has_trace != CarriesTraceContext(frame->msg->message_type())) {
    std::abort();
  }

  // Canonical round-trip: accepted bytes re-encode to themselves.
  const uint64_t ts = frame->has_trace ? frame->trace.origin_ts_ns : 0;
  Bytes rewire = EncodeFrame(*frame->msg, frame->src, ts);
  if (rewire.size() != size) std::abort();
  for (size_t i = 0; i < size; ++i) {
    if (rewire[i] != data[i]) std::abort();
  }
  return 0;
}
