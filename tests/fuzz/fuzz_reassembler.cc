/// Fuzz target for FrameReassembler: the per-connection streaming path
/// that turns raw recv() bytes back into frames. The input is split into
/// write chunks whose sizes are themselves fuzzer-controlled (first byte
/// of each chunk seeds the next chunk length), so frame boundaries land on
/// every possible split — including one byte at a time. Invariants:
///  * WritableData/CommitWrite/Drain never crash on any byte stream;
///  * after a successful Drain fewer than one full frame's bytes remain
///    pending (everything complete was decoded);
///  * a Drain error is sticky-fatal for the stream, matching the
///    transport's close-on-corrupt contract — we just stop feeding.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "net/rx_ring.h"
#include "net/wire.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace massbft;  // NOLINT: fuzz entry point, single TU

  // Small initial capacity forces the grow/compact paths early.
  FrameReassembler rx(64);
  std::vector<Frame> frames;
  size_t consumed = 0;
  while (consumed < size) {
    // Chunk length 1..64, derived from the stream so the fuzzer can steer
    // where the splits fall.
    size_t chunk = 1 + (data[consumed] & 63);
    if (chunk > size - consumed) chunk = size - consumed;

    uint8_t* dst = rx.WritableData(chunk);
    if (dst == nullptr) std::abort();
    if (rx.WritableBytes() < chunk) std::abort();
    std::memcpy(dst, data + consumed, chunk);
    rx.CommitWrite(chunk);
    consumed += chunk;

    const size_t before = rx.PendingBytes();
    if (before == 0) std::abort();  // We just committed bytes.
    Status status = rx.Drain(&frames);
    if (!status.ok()) return 0;  // Corrupt stream: connection would close.
    if (rx.PendingBytes() > before) std::abort();  // Drain never adds bytes.
  }

  // Whatever drained must be real frames.
  for (const Frame& frame : frames) {
    if (frame.msg == nullptr) std::abort();
  }
  return 0;
}
