#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "sim/actor.h"
#include "sim/metrics.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "sim/topology.h"

namespace massbft {
namespace {

// ---------------------------------------------------------------- Simulator

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(SimulatorTest, TiesFireInFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.Schedule(100, [&order, i] { order.push_back(i); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, NestedSchedulingDuringRun) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] {
    ++fired;
    sim.Schedule(5, [&] { ++fired; });
  });
  sim.RunAll();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 15);
}

TEST(SimulatorTest, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(100, [&] { ++fired; });
  sim.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 50);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunAll();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.Schedule(10, [&] {
    sim.Schedule(-5, [&] { EXPECT_EQ(sim.Now(), 10); });
  });
  sim.RunAll();
}

TEST(SimulatorTest, MoveOnlyAndOversizedCapturesRun) {
  // Callbacks are InlineFunction, not std::function: move-only captures
  // are allowed, and captures larger than the inline buffer transparently
  // fall back to the heap.
  Simulator sim;
  sim.Reserve(4);
  auto token = std::make_unique<int>(7);
  int observed = 0;
  sim.Schedule(1, [token = std::move(token), &observed] { observed = *token; });
  std::array<uint64_t, 16> big{};
  big[15] = 42;
  uint64_t big_sum = 0;
  sim.Schedule(2, [big, &big_sum] { big_sum = big[15]; });
  sim.RunAll();
  EXPECT_EQ(observed, 7);
  EXPECT_EQ(big_sum, 42u);
}

// ---------------------------------------------------------------- Topology

TEST(TopologyTest, NationwidePresetShape) {
  TopologyConfig cfg = TopologyConfig::Nationwide(3, 7);
  ASSERT_TRUE(cfg.Validate().ok());
  auto topo = Topology::Create(cfg);
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo->num_groups(), 3);
  EXPECT_EQ(topo->total_nodes(), 21);
  EXPECT_EQ(topo->max_faulty(0), 2);  // (7-1)/3
  EXPECT_EQ(topo->max_faulty_groups(), 1);
  // RTT band from the paper: 26.7 - 43.4 ms one-way is rtt/2.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i == j) continue;
      SimTime prop = topo->WanPropagation(NodeId{uint16_t(i), 0},
                                          NodeId{uint16_t(j), 0});
      EXPECT_GE(prop, MillisToSim(26.7 / 2));
      EXPECT_LE(prop, MillisToSim(43.4 / 2));
    }
  }
}

TEST(TopologyTest, WorldwideRttBand) {
  auto topo = Topology::Create(TopologyConfig::Worldwide(3, 7));
  ASSERT_TRUE(topo.ok());
  SimTime prop = topo->WanPropagation(NodeId{0, 0}, NodeId{2, 3});
  EXPECT_GE(prop, MillisToSim(156.0 / 2));
  EXPECT_LE(prop, MillisToSim(206.0 / 2));
}

TEST(TopologyTest, WanOverrides) {
  TopologyConfig cfg = TopologyConfig::Nationwide(2, 4);
  cfg.wan_bps = 40e6;
  cfg.wan_overrides.push_back({NodeId{1, 2}, 20e6});
  auto topo = Topology::Create(cfg);
  ASSERT_TRUE(topo.ok());
  EXPECT_DOUBLE_EQ(topo->wan_bps(NodeId{0, 0}), 40e6);
  EXPECT_DOUBLE_EQ(topo->wan_bps(NodeId{1, 2}), 20e6);
}

TEST(TopologyTest, ValidationRejectsBadConfigs) {
  TopologyConfig empty;
  EXPECT_FALSE(empty.Validate().ok());

  TopologyConfig bad_rtt = TopologyConfig::Nationwide(3, 4);
  bad_rtt.rtt_ms.pop_back();
  EXPECT_FALSE(bad_rtt.Validate().ok());

  TopologyConfig bad_override = TopologyConfig::Nationwide(2, 4);
  bad_override.wan_overrides.push_back({NodeId{5, 0}, 1e6});
  EXPECT_FALSE(bad_override.Validate().ok());
}

TEST(TopologyTest, GroupNodesEnumerates) {
  auto topo = Topology::Create(TopologyConfig::Nationwide(2, 3));
  ASSERT_TRUE(topo.ok());
  auto nodes = topo->GroupNodes(1);
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[2], (NodeId{1, 2}));
  EXPECT_EQ(topo->AllNodes().size(), 6u);
}

// ---------------------------------------------------------------- Network

/// Fixed-size test message.
class TestMessage : public SimMessage {
 public:
  explicit TestMessage(size_t bytes, int tag = 0) : bytes_(bytes), tag_(tag) {}
  size_t ByteSize() const override { return bytes_; }
  int type() const override { return tag_; }

 private:
  size_t bytes_;
  int tag_;
};

struct Delivery {
  NodeId dst;
  NodeId src;
  SimTime time;
  int tag;
};

class NetworkFixture : public ::testing::Test {
 protected:
  void Init(TopologyConfig cfg) {
    auto topo = Topology::Create(std::move(cfg));
    ASSERT_TRUE(topo.ok());
    topology_ = std::make_unique<Topology>(std::move(*topo));
    network_ = std::make_unique<Network>(
        &sim_, topology_.get(),
        [this](NodeId dst, NodeId src, MessagePtr m) {
          deliveries_.push_back({dst, src, sim_.Now(), m->type()});
        });
  }

  Simulator sim_;
  std::unique_ptr<Topology> topology_;
  std::unique_ptr<Network> network_;
  std::vector<Delivery> deliveries_;
};

TEST_F(NetworkFixture, WanDeliveryIncludesSerializationAndPropagation) {
  TopologyConfig cfg = TopologyConfig::Nationwide(2, 2);
  cfg.wan_bps = 20e6;
  Init(cfg);
  // 25_000 bytes at 20 Mbps = 10 ms serialization.
  network_->SendWan(NodeId{0, 0}, NodeId{1, 0},
                    std::make_shared<TestMessage>(25000));
  sim_.RunAll();
  ASSERT_EQ(deliveries_.size(), 1u);
  SimTime prop = topology_->WanPropagation(NodeId{0, 0}, NodeId{1, 0});
  EXPECT_EQ(deliveries_[0].time, MillisToSim(10.0) + prop);
}

TEST_F(NetworkFixture, UplinkQueuesSequentialSends) {
  TopologyConfig cfg = TopologyConfig::Nationwide(2, 2);
  cfg.wan_bps = 20e6;
  Init(cfg);
  // Two messages from the same source to different receivers must
  // serialize one after the other on the shared uplink.
  network_->SendWan(NodeId{0, 0}, NodeId{1, 0},
                    std::make_shared<TestMessage>(25000, 1));
  network_->SendWan(NodeId{0, 0}, NodeId{1, 1},
                    std::make_shared<TestMessage>(25000, 2));
  sim_.RunAll();
  ASSERT_EQ(deliveries_.size(), 2u);
  SimTime prop = topology_->WanPropagation(NodeId{0, 0}, NodeId{1, 0});
  EXPECT_EQ(deliveries_[0].time, MillisToSim(10.0) + prop);
  EXPECT_EQ(deliveries_[1].time, MillisToSim(20.0) + prop);
}

TEST_F(NetworkFixture, DistinctUplinksSendInParallel) {
  TopologyConfig cfg = TopologyConfig::Nationwide(2, 2);
  cfg.wan_bps = 20e6;
  Init(cfg);
  network_->SendWan(NodeId{0, 0}, NodeId{1, 0},
                    std::make_shared<TestMessage>(25000, 1));
  network_->SendWan(NodeId{0, 1}, NodeId{1, 1},
                    std::make_shared<TestMessage>(25000, 2));
  sim_.RunAll();
  ASSERT_EQ(deliveries_.size(), 2u);
  // Both should arrive at the same time: independent uplinks/downlinks.
  EXPECT_EQ(deliveries_[0].time, deliveries_[1].time);
}

TEST_F(NetworkFixture, DownlinkConvergenceQueues) {
  TopologyConfig cfg = TopologyConfig::Nationwide(2, 3);
  cfg.wan_bps = 20e6;
  Init(cfg);
  // Two senders converge on one receiver; the second delivery waits for the
  // receiver's downlink to drain.
  network_->SendWan(NodeId{0, 0}, NodeId{1, 0},
                    std::make_shared<TestMessage>(25000, 1));
  network_->SendWan(NodeId{0, 1}, NodeId{1, 0},
                    std::make_shared<TestMessage>(25000, 2));
  sim_.RunAll();
  ASSERT_EQ(deliveries_.size(), 2u);
  EXPECT_GT(deliveries_[1].time, deliveries_[0].time);
  EXPECT_EQ(deliveries_[1].time - deliveries_[0].time, MillisToSim(10.0));
}

TEST_F(NetworkFixture, LanIsFasterThanWan) {
  Init(TopologyConfig::Nationwide(1, 3));
  network_->SendLan(NodeId{0, 0}, NodeId{0, 1},
                    std::make_shared<TestMessage>(25000));
  sim_.RunAll();
  ASSERT_EQ(deliveries_.size(), 1u);
  // 25 kB at 2.5 Gbps is 80 us plus 250 us latency: well under 1 ms.
  EXPECT_LT(deliveries_[0].time, kMillisecond);
}

TEST_F(NetworkFixture, CrashedNodesDropTraffic) {
  Init(TopologyConfig::Nationwide(2, 2));
  network_->CrashNode(NodeId{1, 0});
  network_->SendWan(NodeId{0, 0}, NodeId{1, 0},
                    std::make_shared<TestMessage>(100));
  network_->SendWan(NodeId{1, 0}, NodeId{0, 0},
                    std::make_shared<TestMessage>(100));
  sim_.RunAll();
  EXPECT_TRUE(deliveries_.empty());
  network_->RecoverNode(NodeId{1, 0});
  network_->SendWan(NodeId{0, 0}, NodeId{1, 0},
                    std::make_shared<TestMessage>(100));
  sim_.RunAll();
  EXPECT_EQ(deliveries_.size(), 1u);
}

TEST_F(NetworkFixture, InFlightMessageToNodeCrashedBeforeArrivalIsDropped) {
  Init(TopologyConfig::Nationwide(2, 2));
  network_->SendWan(NodeId{0, 0}, NodeId{1, 0},
                    std::make_shared<TestMessage>(100));
  // Crash after send but before delivery.
  sim_.Schedule(kMicrosecond, [&] { network_->CrashNode(NodeId{1, 0}); });
  sim_.RunAll();
  EXPECT_TRUE(deliveries_.empty());
}

TEST_F(NetworkFixture, TrafficStatsAccumulate) {
  Init(TopologyConfig::Nationwide(2, 2));
  network_->SendWan(NodeId{0, 0}, NodeId{1, 0},
                    std::make_shared<TestMessage>(1000));
  network_->SendLan(NodeId{0, 0}, NodeId{0, 1},
                    std::make_shared<TestMessage>(500));
  sim_.RunAll();
  const TrafficStats& s = network_->StatsFor(NodeId{0, 0});
  EXPECT_EQ(s.wan_bytes_sent, 1000u);
  EXPECT_EQ(s.lan_bytes_sent, 500u);
  EXPECT_EQ(s.wan_messages_sent, 1u);
  EXPECT_EQ(network_->TotalWanBytesSent(), 1000u);
  EXPECT_EQ(network_->StatsFor(NodeId{1, 0}).wan_bytes_received, 1000u);
  network_->ResetStats();
  EXPECT_EQ(network_->TotalWanBytesSent(), 0u);
}

TEST_F(NetworkFixture, LoopbackDeliversImmediately) {
  Init(TopologyConfig::Nationwide(1, 2));
  network_->SendWan(NodeId{0, 0}, NodeId{0, 0},
                    std::make_shared<TestMessage>(1 << 20));
  sim_.RunAll();
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].time, 0);
}

// ---------------------------------------------------------------- CPU

TEST(CpuAccountTest, SerialChargesAccumulate) {
  Simulator sim;
  CpuModel model;
  model.cores = 1;
  model.verify_cost = 100 * kMicrosecond;
  CpuAccount cpu(&sim, model);
  EXPECT_EQ(cpu.ChargeVerify(), 100 * kMicrosecond);
  EXPECT_EQ(cpu.ChargeVerify(), 200 * kMicrosecond);
  EXPECT_EQ(cpu.total_charged(), 200 * kMicrosecond);
}

TEST(CpuAccountTest, CoresDivideCost) {
  Simulator sim;
  CpuModel model;
  model.cores = 8;
  CpuAccount cpu(&sim, model);
  SimTime done = cpu.Charge(800 * kMicrosecond);
  EXPECT_EQ(done, 100 * kMicrosecond);
}

TEST(CpuAccountTest, IdleGapsDoNotAccumulate) {
  Simulator sim;
  CpuModel model;
  model.cores = 1;
  CpuAccount cpu(&sim, model);
  cpu.Charge(10 * kMicrosecond);
  // Advance sim time past the busy period.
  sim.Schedule(kMillisecond, [] {});
  sim.RunAll();
  SimTime done = cpu.Charge(10 * kMicrosecond);
  EXPECT_EQ(done, kMillisecond + 10 * kMicrosecond);
}

TEST(CpuAccountTest, ChargeThenSchedulesAtCompletion) {
  Simulator sim;
  CpuModel model;
  model.cores = 1;
  CpuAccount cpu(&sim, model);
  SimTime fired_at = -1;
  cpu.ChargeThen(50 * kMicrosecond, [&] { fired_at = sim.Now(); });
  sim.RunAll();
  EXPECT_EQ(fired_at, 50 * kMicrosecond);
}

// ---------------------------------------------------------------- Metrics

TEST(MetricsTest, ThroughputWindowExcludesWarmup) {
  MetricsCollector metrics(kSecond, 3 * kSecond);
  // 100 txns in warmup (excluded), 200 in window.
  for (int i = 0; i < 100; ++i)
    metrics.RecordCommit(0, kSecond / 2);
  for (int i = 0; i < 200; ++i)
    metrics.RecordCommit(2 * kSecond - 10 * kMillisecond, 2 * kSecond);
  EXPECT_EQ(metrics.committed(), 200u);
  EXPECT_DOUBLE_EQ(metrics.ThroughputTps(), 100.0);  // 200 over 2 s.
  EXPECT_DOUBLE_EQ(metrics.MeanLatencyMs(), 10.0);
}

TEST(MetricsTest, PercentilesSorted) {
  MetricsCollector metrics(0, 100 * kSecond);
  for (int i = 1; i <= 100; ++i)
    metrics.RecordCommit(0, i * kMillisecond);
  EXPECT_NEAR(metrics.P50LatencyMs(), 50.5, 1.0);
  EXPECT_NEAR(metrics.P99LatencyMs(), 99.0, 1.1);
}

TEST(MetricsTest, TimelineBucketsByCommitTime) {
  MetricsCollector metrics(0, 10 * kSecond, kSecond);
  metrics.RecordCommit(0, kSecond / 2, 10);
  metrics.RecordCommit(0, 2 * kSecond + 1, 20);
  auto timeline = metrics.Timeline();
  ASSERT_GE(timeline.size(), 3u);
  EXPECT_DOUBLE_EQ(timeline[0].tps, 10.0);
  EXPECT_DOUBLE_EQ(timeline[1].tps, 0.0);
  EXPECT_DOUBLE_EQ(timeline[2].tps, 20.0);
}

TEST(MetricsTest, AbortsCounted) {
  MetricsCollector metrics(0, kSecond);
  metrics.RecordAbort(3);
  EXPECT_EQ(metrics.aborted(), 3u);
}

// Regression: Record() after a percentile read must invalidate the sorted
// cache, or later percentiles are computed over a stale ordering.
TEST(MetricsTest, PercentilesCorrectAfterInterleavedRecords) {
  LatencyStats stats;
  stats.Record(30 * kMillisecond);
  stats.Record(10 * kMillisecond);
  EXPECT_DOUBLE_EQ(stats.PercentileMs(1.0), 30.0);  // Triggers the sort.
  stats.Record(20 * kMillisecond);  // Appended after the sort.
  stats.Record(5 * kMillisecond);
  EXPECT_DOUBLE_EQ(stats.PercentileMs(0.0), 5.0);
  EXPECT_DOUBLE_EQ(stats.PercentileMs(1.0), 30.0);
  EXPECT_DOUBLE_EQ(stats.PercentileMs(0.5), 15.0);  // (10+20)/2.
  stats.Clear();
  EXPECT_DOUBLE_EQ(stats.PercentileMs(0.5), 0.0);
  stats.Record(40 * kMillisecond);
  EXPECT_DOUBLE_EQ(stats.PercentileMs(1.0), 40.0);
}

TEST(MetricsTest, WindowBoundariesAreInclusive) {
  MetricsCollector metrics(kSecond, 3 * kSecond);
  metrics.RecordCommit(kSecond / 2, kSecond);      // Exactly at warmup_.
  metrics.RecordCommit(kSecond, 3 * kSecond);      // Exactly at horizon_.
  metrics.RecordCommit(0, kSecond - 1);            // Just before warmup_.
  metrics.RecordCommit(0, 3 * kSecond + 1);        // Just after horizon_.
  EXPECT_EQ(metrics.committed(), 2u);
  EXPECT_DOUBLE_EQ(metrics.ThroughputTps(), 1.0);  // 2 txns over 2 s.
}

TEST(MetricsTest, TimelineEmptyBucketsAndBatches) {
  MetricsCollector metrics(0, 10 * kSecond, kSecond);
  EXPECT_TRUE(metrics.Timeline().empty());

  // A multi-txn batch counts each transaction at the batch latency.
  metrics.RecordCommit(0, kSecond / 2, 4);
  // A commit three buckets later leaves two empty buckets in between.
  metrics.RecordCommit(3 * kSecond, 3 * kSecond + 500 * kMillisecond, 2);
  auto timeline = metrics.Timeline();
  ASSERT_EQ(timeline.size(), 4u);
  EXPECT_DOUBLE_EQ(timeline[0].time_s, 0.0);
  EXPECT_DOUBLE_EQ(timeline[0].tps, 4.0);
  EXPECT_DOUBLE_EQ(timeline[0].mean_latency_ms, 500.0);
  for (size_t i = 1; i <= 2; ++i) {
    EXPECT_DOUBLE_EQ(timeline[i].tps, 0.0);
    EXPECT_DOUBLE_EQ(timeline[i].mean_latency_ms, 0.0);
  }
  EXPECT_DOUBLE_EQ(timeline[3].tps, 2.0);
  EXPECT_DOUBLE_EQ(timeline[3].mean_latency_ms, 500.0);
}

TEST(MetricsTest, TimelineBucketBoundaryCommit) {
  MetricsCollector metrics(0, 10 * kSecond, kSecond);
  // A commit exactly on a bucket boundary lands in the later bucket.
  metrics.RecordCommit(0, kSecond, 1);
  auto timeline = metrics.Timeline();
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_DOUBLE_EQ(timeline[0].tps, 0.0);
  EXPECT_DOUBLE_EQ(timeline[1].tps, 1.0);
}

}  // namespace
}  // namespace massbft
