// Regression tests for DESIGN.md §11 rule D2: no hash-map iteration order
// may leak into observable results. The KvStore hash-seed hook emulates a
// different std::hash implementation (libstdc++ vs libc++ vs a future
// hardened seed): every observable — store snapshots, registry dumps,
// experiment JSON — must be byte-identical under any seed.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/experiment.h"
#include "crypto/signature.h"
#include "db/kv_store.h"

namespace massbft {
namespace {

Bytes Val(const std::string& s) { return Bytes(s.begin(), s.end()); }

class HashSeedGuard {
 public:
  explicit HashSeedGuard(uint64_t seed) { KvStore::SetHashSeedForTest(seed); }
  ~HashSeedGuard() { KvStore::SetHashSeedForTest(0); }
};

TEST(KvStoreDeterminismTest, SnapshotIsSortedRegardlessOfInsertionOrder) {
  std::vector<std::string> keys = {"w:7", "a:1", "m:3", "z:9", "b:2", "k:4"};
  KvStore forward;
  for (const auto& k : keys) forward.Put(k, Val("v-" + k));
  KvStore backward;
  for (auto it = keys.rbegin(); it != keys.rend(); ++it)
    backward.Put(*it, Val("v-" + *it));

  auto snap_fwd = forward.Snapshot();
  auto snap_bwd = backward.Snapshot();
  ASSERT_EQ(snap_fwd.size(), keys.size());
  EXPECT_EQ(snap_fwd, snap_bwd);
  EXPECT_TRUE(std::is_sorted(
      snap_fwd.begin(), snap_fwd.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

TEST(KvStoreDeterminismTest, SnapshotAndFingerprintAreHashSeedInvariant) {
  auto fill = [](KvStore& store) {
    for (int i = 0; i < 200; ++i) {
      std::string k = "key-" + std::to_string(i * 37 % 101);
      store.Put(k, Val("value-" + std::to_string(i)));
    }
  };
  KvStore baseline;
  fill(baseline);
  auto baseline_snap = baseline.Snapshot();
  uint64_t baseline_fp = baseline.StateFingerprint();

  for (uint64_t seed : {0x9e3779b97f4a7c15ULL, 0x123456789abcdefULL}) {
    HashSeedGuard guard(seed);
    KvStore reseeded;
    fill(reseeded);
    EXPECT_EQ(reseeded.Snapshot(), baseline_snap) << "seed " << seed;
    EXPECT_EQ(reseeded.StateFingerprint(), baseline_fp) << "seed " << seed;
  }
}

TEST(KeyRegistryDeterminismTest, RegisteredNodesDumpIsSorted) {
  KeyRegistry registry;
  // Register in a scrambled order across groups.
  for (uint16_t g : {2, 0, 1})
    for (uint16_t i : {3, 0, 2, 1})
      registry.RegisterNode(NodeId{g, i});

  std::vector<NodeId> nodes = registry.RegisteredNodes();
  ASSERT_EQ(nodes.size(), 12u);
  EXPECT_TRUE(std::is_sorted(nodes.begin(), nodes.end()));
}

/// The satellite check from ISSUE 3: two differently-seeded-hash runs of a
/// full fixed-seed experiment produce identical experiment JSON (after
/// zeroing the three documented host-time fields, DESIGN.md §10).
TEST(ExperimentDeterminismTest, JsonIsIdenticalAcrossHashSeeds) {
  auto run_json = [](uint64_t hash_seed) {
    HashSeedGuard guard(hash_seed);
    ExperimentConfig config;
    config.topology = TopologyConfig::Nationwide(3, 4);
    config.protocol = ProtocolConfig::ForKind(ProtocolKind::kMassBft);
    config.workload = WorkloadKind::kYcsbA;
    config.workload_scale = 0.01;
    config.clients_per_group = 40;
    config.duration = 2 * kSecond;
    config.warmup = kSecond / 2;
    config.seed = 7;
    Experiment experiment(std::move(config));
    Status s = experiment.Setup();
    EXPECT_TRUE(s.ok()) << s.ToString();
    ExperimentResult result = experiment.Run();
    result.wall_ms = 0;
    result.events_per_sec = 0;
    result.sim_time_ratio = 0;
    return result.ToJson();
  };

  std::string baseline = run_json(0);
  std::string reseeded = run_json(0xdeadbeefcafef00dULL);
  EXPECT_FALSE(baseline.empty());
  EXPECT_EQ(baseline, reseeded)
      << "hash-seed-dependent iteration order leaked into experiment JSON";
}

}  // namespace
}  // namespace massbft
