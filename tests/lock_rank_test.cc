#include "common/lock_rank.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <thread>

namespace massbft {
namespace {

using lock_rank_internal::HeldCount;
using lock_rank_internal::OnAcquire;
using lock_rank_internal::OnRelease;

// The tracker itself is compiled into every build (only RankedMutex's
// calls into it are gated on MASSBFT_LOCK_RANK_CHECKS), so the abort
// contract is provable regardless of build type.

TEST(LockRankDeathTest, AbortsOnInversionWithBothNames) {
  EXPECT_DEATH(
      {
        OnAcquire(40, "tcp.mu");
        OnAcquire(10, "cluster.introspection_mu");
      },
      "lock-rank violation: acquiring 'cluster.introspection_mu' "
      "\\(rank 10\\).*'tcp.mu' \\(rank 40\\)");
}

TEST(LockRankDeathTest, AbortsOnEqualRankNesting) {
  // Equal ranks never nest (two kTransport endpoint locks held together
  // would be the classic AB/BA deadlock).
  EXPECT_DEATH(
      {
        OnAcquire(40, "inproc.hub.mu");
        OnAcquire(40, "inproc.endpoint.mu");
      },
      "lock-rank violation: acquiring 'inproc.endpoint.mu'");
}

TEST(LockRankDeathTest, AbortsOnReleasingUnheldLock) {
  EXPECT_DEATH(OnRelease(40, "tcp.mu"), "releasing un-held");
}

TEST(LockRankTrackerTest, OrderedAcquisitionIsClean) {
  ASSERT_EQ(HeldCount(), 0);
  OnAcquire(10, "outer");
  OnAcquire(20, "middle");
  OnAcquire(60, "inner");
  EXPECT_EQ(HeldCount(), 3);
  // Non-LIFO release is legal: a condvar wait releases mid-stack.
  OnRelease(20, "middle");
  OnRelease(60, "inner");
  OnRelease(10, "outer");
  EXPECT_EQ(HeldCount(), 0);
}

TEST(LockRankTrackerTest, ReacquireAfterFullReleaseIsClean) {
  OnAcquire(40, "tcp.mu");
  OnRelease(40, "tcp.mu");
  OnAcquire(10, "cluster.introspection_mu");  // Lower rank: fine when empty.
  OnRelease(10, "cluster.introspection_mu");
  EXPECT_EQ(HeldCount(), 0);
}

TEST(RankedMutexTest, GuardsDataAcrossThreads) {
  RankedMutex mu("test.mu", LockRank::kLeafCache);
  int counter = 0;
  std::thread worker([&] {
    for (int i = 0; i < 1000; ++i) {
      MutexLock lock(&mu);
      ++counter;
    }
  });
  for (int i = 0; i < 1000; ++i) {
    MutexLock lock(&mu);
    ++counter;
  }
  worker.join();
  MutexLock lock(&mu);
  EXPECT_EQ(counter, 2000);
}

TEST(RankedMutexTest, OrderedNestingSucceeds) {
  RankedMutex outer("test.outer", LockRank::kRuntimeQueue);
  RankedMutex inner("test.inner", LockRank::kObsRecorder);
  MutexLock hold_outer(&outer);
  MutexLock hold_inner(&inner);
#if MASSBFT_LOCK_RANK_CHECKS
  EXPECT_EQ(HeldCount(), 2);
#else
  EXPECT_EQ(HeldCount(), 0);  // Release builds skip the bookkeeping.
#endif
}

#if MASSBFT_LOCK_RANK_CHECKS
TEST(RankedMutexDeathTest, AbortsOnRankedMutexInversion) {
  // The end-to-end wiring: a deliberate out-of-order acquisition through
  // the real RankedMutex/MutexLock path must abort, naming both locks.
  EXPECT_DEATH(
      {
        RankedMutex inner("test.pool", LockRank::kBufferPool);
        RankedMutex outer("test.cluster", LockRank::kClusterIntrospection);
        MutexLock hold_inner(&inner);
        MutexLock hold_outer(&outer);
      },
      "acquiring 'test.cluster' \\(rank 10\\).*'test.pool' \\(rank 50\\)");
}
#endif

TEST(RankedMutexTest, TryLockAcquiresAndReleases) {
  RankedMutex mu("test.trylock", LockRank::kLeafCache);
  ASSERT_TRUE(mu.try_lock());
#if MASSBFT_LOCK_RANK_CHECKS
  EXPECT_EQ(HeldCount(), 1);
#endif
  mu.unlock();  // Raw call on purpose: D7 binds under src/, not tests/.
  EXPECT_EQ(HeldCount(), 0);
}

TEST(RankedMutexTest, ConditionVariableAnyWaitsOnRankedMutex) {
  RankedMutex mu("test.cv.mu", LockRank::kRuntimeQueue);
  std::condition_variable_any cv;
  bool ready = false;
  std::thread signaler([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.notify_one();
  });
  {
    MutexLock lock(&mu);
    while (!ready) cv.wait(mu);
    // The wait reacquired the lock and the rank bookkeeping survived the
    // unlock/lock cycle inside it.
#if MASSBFT_LOCK_RANK_CHECKS
    EXPECT_EQ(HeldCount(), 1);
#endif
  }
  signaler.join();
  EXPECT_EQ(HeldCount(), 0);
}

}  // namespace
}  // namespace massbft
