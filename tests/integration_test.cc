#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "core/config.h"
#include "core/experiment.h"

namespace massbft {
namespace {

/// Small, fast cluster defaults for integration tests.
ExperimentConfig SmallCluster(ProtocolConfig protocol,
                              int num_groups = 3, int nodes = 4) {
  ExperimentConfig config;
  config.topology = TopologyConfig::Nationwide(num_groups, nodes);
  config.protocol = std::move(protocol);
  config.protocol.pipeline_depth = 8;
  config.workload = WorkloadKind::kYcsbA;
  config.workload_scale = 0.01;  // 10k rows.
  config.clients_per_group = 60;
  config.duration = 3 * kSecond;
  config.warmup = 1 * kSecond;
  config.seed = 7;
  return config;
}

struct RunOutcome {
  ExperimentResult result;
  int64_t agreement;
  std::unique_ptr<Experiment> experiment;
};

RunOutcome RunCluster(ExperimentConfig config) {
  RunOutcome out;
  out.experiment = std::make_unique<Experiment>(std::move(config));
  Status s = out.experiment->Setup();
  EXPECT_TRUE(s.ok()) << s.ToString();
  out.result = out.experiment->Run();
  out.agreement = out.experiment->CheckAgreement();
  return out;
}

/// Liveness + agreement for every protocol variant on identical clusters.
class ProtocolLivenessTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ProtocolLivenessTest, CommitsTransactionsAndAgrees) {
  ExperimentConfig config =
      SmallCluster(ProtocolConfig::ForKind(GetParam()));
  config.execute_on_all_nodes = true;  // Strongest agreement check.
  RunOutcome out = RunCluster(std::move(config));
  EXPECT_GT(out.result.committed_txns, 500u)
      << ProtocolKindName(GetParam());
  EXPECT_GE(out.agreement, 1) << "execution logs diverged";
  EXPECT_GT(out.result.throughput_tps, 100.0);
  EXPECT_GT(out.result.mean_latency_ms, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolLivenessTest,
    ::testing::Values(ProtocolKind::kMassBft, ProtocolKind::kBaseline,
                      ProtocolKind::kGeoBft, ProtocolKind::kSteward,
                      ProtocolKind::kIss, ProtocolKind::kBr,
                      ProtocolKind::kEbr),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      return ProtocolKindName(info.param);
    });

/// All-node state convergence: every executing replica ends with identical
/// database state for the common executed prefix.
TEST(IntegrationTest, ReplicaStoresConverge) {
  ExperimentConfig config = SmallCluster(ProtocolConfig::MassBft());
  config.execute_on_all_nodes = true;
  RunOutcome out = RunCluster(std::move(config));
  ASSERT_GE(out.agreement, 1);

  // Compare executed-transaction counts on nodes with equal log lengths.
  std::map<size_t, std::set<uint64_t>> txns_by_len;
  for (const auto& n : out.experiment->nodes()) {
    txns_by_len[n->execution_log().size()].insert(n->executed_txns());
  }
  for (const auto& [len, counts] : txns_by_len)
    EXPECT_EQ(counts.size(), 1u) << "logs of length " << len
                                 << " executed different txn counts";
}

TEST(IntegrationTest, MassBftOutperformsBaseline) {
  // The headline claim, on a small cluster: MassBFT's throughput exceeds
  // Baseline's by a clear factor (paper: 5.49x-29.96x on the testbed).
  ExperimentConfig mass = SmallCluster(ProtocolConfig::MassBft(), 3, 7);
  mass.clients_per_group = 400;
  ExperimentConfig base = SmallCluster(ProtocolConfig::Baseline(), 3, 7);
  base.clients_per_group = 400;
  RunOutcome mass_out = RunCluster(std::move(mass));
  RunOutcome base_out = RunCluster(std::move(base));
  EXPECT_GT(mass_out.result.throughput_tps,
            2.0 * base_out.result.throughput_tps);
}

TEST(IntegrationTest, ByzantineChunkTamperingTolerated) {
  // Fig 15 first half: f Byzantine nodes per group tamper chunks from 1 s;
  // throughput must not collapse and logs must agree.
  ExperimentConfig config = SmallCluster(ProtocolConfig::MassBft(), 3, 4);
  config.faults.byzantine_per_group = 1;  // f = 1 for n = 4.
  config.faults.byzantine_from = 1 * kSecond;
  config.duration = 4 * kSecond;
  config.warmup = 1 * kSecond;
  RunOutcome out = RunCluster(std::move(config));
  EXPECT_GE(out.agreement, 1);
  EXPECT_GT(out.result.committed_txns, 500u);

  // Throughput after the attack stays within noise of before.
  double before = 0, after = 0;
  int nb = 0, na = 0;
  for (const auto& p : out.result.timeline) {
    if (p.time_s < 1.0 || p.tps <= 0) continue;
    if (p.time_s < 1.0 + 0.5) continue;  // Skip the transition bucket.
    if (p.time_s < 1.0) {
      before += p.tps;
      ++nb;
    } else {
      after += p.tps;
      ++na;
    }
  }
  ASSERT_GT(na, 0);
  (void)nb;
  (void)before;
  EXPECT_GT(after / na, 100.0);
}

TEST(IntegrationTest, ByzantineBeyondFBreaksNothingSilently) {
  // With f Byzantine nodes the cluster still agrees; this guards the
  // bucket/ban machinery under sustained attack from t=0.
  ExperimentConfig config = SmallCluster(ProtocolConfig::MassBft(), 2, 4);
  config.faults.byzantine_per_group = 1;
  config.faults.byzantine_from = 0;
  config.execute_on_all_nodes = true;
  RunOutcome out = RunCluster(std::move(config));
  EXPECT_GE(out.agreement, 1);
  EXPECT_GT(out.result.committed_txns, 200u);
}

TEST(IntegrationTest, GroupCrashRecoversViaTakeover) {
  // Fig 15 second half: a whole group crashes mid-run; after the takeover
  // timeout, surviving groups' entries keep executing.
  ExperimentConfig config = SmallCluster(ProtocolConfig::MassBft(), 3, 4);
  config.duration = 8 * kSecond;
  config.warmup = 1 * kSecond;
  config.protocol.group_crash_timeout = 1 * kSecond;
  config.faults.crash_group = 2;
  config.faults.crash_at = 3 * kSecond;
  RunOutcome out = RunCluster(std::move(config));
  EXPECT_GE(out.agreement, 1);

  // Throughput in the final two seconds (well past crash + takeover) is
  // nonzero: surviving groups kept proposing and executing.
  double tail_tps = 0;
  int buckets = 0;
  for (const auto& p : out.result.timeline) {
    if (p.time_s >= 6.0 && p.time_s < 8.0) {
      tail_tps += p.tps;
      ++buckets;
    }
  }
  ASSERT_GT(buckets, 0);
  EXPECT_GT(tail_tps / buckets, 100.0)
      << "throughput did not recover after group crash";
}

TEST(IntegrationTest, GroupCrashStallsWithoutTakeoverTimeout) {
  // Control for the takeover test: with an effectively infinite crash
  // timeout, VTS ordering blocks on the dead group's timestamps and
  // execution stops (the paper's Fig 15 dip).
  ExperimentConfig config = SmallCluster(ProtocolConfig::MassBft(), 3, 4);
  config.duration = 6 * kSecond;
  config.warmup = 1 * kSecond;
  config.protocol.group_crash_timeout = 60 * kSecond;
  config.faults.crash_group = 2;
  config.faults.crash_at = 2 * kSecond;
  RunOutcome out = RunCluster(std::move(config));
  double tail_tps = 0;
  for (const auto& p : out.result.timeline)
    if (p.time_s >= 4.0 && p.time_s < 6.0) tail_tps += p.tps;
  EXPECT_LT(tail_tps, 200.0) << "execution should stall without takeover";
}

TEST(IntegrationTest, CrashedGroupRejoinsAndResumes) {
  // Section V-C full cycle: group 2 crashes at 2 s, recovers at 5 s,
  // catches up from a peer, gets its Raft instance back and serves its
  // clients again — total throughput returns toward the pre-crash level.
  ExperimentConfig config = SmallCluster(ProtocolConfig::MassBft(), 3, 4);
  config.duration = 10 * kSecond;
  config.warmup = 1 * kSecond;
  config.protocol.group_crash_timeout = 1 * kSecond;
  config.faults.crash_group = 2;
  config.faults.crash_at = 2 * kSecond;
  config.faults.recover_at = 5 * kSecond;
  RunOutcome out = RunCluster(std::move(config));
  EXPECT_GE(out.agreement, 1);

  double before = 0, during = 0, after = 0;
  int nb = 0, nd = 0, na = 0;
  for (const auto& p : out.result.timeline) {
    if (p.time_s < 2.0) {
      before += p.tps;
      ++nb;
    } else if (p.time_s >= 4.0 && p.time_s < 5.0) {
      during += p.tps;
      ++nd;
    } else if (p.time_s >= 8.0) {
      after += p.tps;
      ++na;
    }
  }
  ASSERT_GT(nb, 0);
  ASSERT_GT(na, 0);
  // After recovery throughput beats the degraded (one-group-down) level
  // and approaches the pre-crash level.
  EXPECT_GT(after / na, 0.8 * before / nb)
      << "before=" << before / nb << " during=" << (nd ? during / nd : 0)
      << " after=" << after / na;

  // The recovered group's own clients are being served again: its leader
  // proposes and commits fresh entries.
  const GroupNode* recovered_leader =
      out.experiment->node(NodeId{2, 0});
  EXPECT_FALSE(recovered_leader->crashed());
  EXPECT_GT(recovered_leader->own_clock(), 0u);
}

TEST(IntegrationTest, HeterogeneousGroupSizes) {
  // Fig 12 setup: G1 has 4 nodes, G2/G3 have 7. MassBFT must stay live
  // with unequal transfer plans (LCM 28 chunks).
  ExperimentConfig config = SmallCluster(ProtocolConfig::MassBft());
  config.topology = TopologyConfig::Nationwide(3, 7);
  config.topology.group_sizes = {4, 7, 7};
  RunOutcome out = RunCluster(std::move(config));
  EXPECT_GE(out.agreement, 1);
  EXPECT_GT(out.result.committed_txns, 500u);
}

TEST(IntegrationTest, AsyncOrderingBeatsRoundsUnderHeterogeneousGroups) {
  // The EBR vs EBR+A ablation (paper Fig 12): when one group's uplinks
  // are slow, round ordering chains every commit to that group's entry
  // replication while VTS ordering lets the fast groups commit at their
  // own pace (the slow group contributes only small timestamp messages).
  // The bandwidth gap makes the effect structural: byte-level phase
  // alignment between batch timeout and RTT moves either number a few
  // percent, which a same-bandwidth comparison cannot survive.
  auto run = [](ProtocolConfig protocol) {
    ExperimentConfig config = SmallCluster(std::move(protocol));
    config.topology = TopologyConfig::Nationwide(3, 7);
    config.topology.group_sizes = {4, 7, 7};
    for (int i = 0; i < 4; ++i)  // Group 0 uplinks at 1/8 bandwidth.
      config.topology.wan_overrides.emplace_back(
          NodeId{0, static_cast<uint16_t>(i)}, 2.5e6);
    config.clients_per_group = 1000;
    config.duration = 4 * kSecond;
    return RunCluster(std::move(config)).result.throughput_tps;
  };
  double ebr_async = run(ProtocolConfig::MassBft());
  double ebr_rounds = run(ProtocolConfig::Ebr());
  EXPECT_GT(ebr_async, ebr_rounds * 1.05)
      << "async=" << ebr_async << " rounds=" << ebr_rounds;
}

TEST(IntegrationTest, WorldwideLatencyHigherThanNationwide) {
  auto run = [](TopologyConfig topo) {
    ExperimentConfig config = SmallCluster(ProtocolConfig::MassBft());
    config.topology = std::move(topo);
    config.clients_per_group = 30;  // Light load: measure base latency.
    return RunCluster(std::move(config)).result.mean_latency_ms;
  };
  double nationwide = run(TopologyConfig::Nationwide(3, 4));
  double worldwide = run(TopologyConfig::Worldwide(3, 4));
  EXPECT_GT(worldwide, nationwide + 50.0);
}

TEST(IntegrationTest, GeoBftLowestLatencyAtLightLoad) {
  // Paper Fig 8a: GeoBFT commits in 0.5 RTT (no global consensus), so at
  // light load its latency undercuts MassBFT's (which pays Raft + VTS).
  auto run = [](ProtocolConfig protocol) {
    ExperimentConfig config = SmallCluster(std::move(protocol));
    config.clients_per_group = 10;
    return RunCluster(std::move(config)).result.mean_latency_ms;
  };
  double geobft = run(ProtocolConfig::GeoBft());
  double massbft = run(ProtocolConfig::MassBft());
  EXPECT_LT(geobft, massbft);
}

TEST(IntegrationTest, EncodedReplicationUsesLessWanThanFullCopies) {
  // Fig 10's mechanism: WAN bytes per committed transaction for encoded
  // bijective replication undercut one-way f+1 full copies (the entry
  // travels as ~n_total/n_data copies instead of (f+1) * n_g-1).
  auto run = [](ProtocolConfig protocol) {
    ExperimentConfig config = SmallCluster(std::move(protocol), 3, 7);
    config.clients_per_group = 100;
    RunOutcome out = RunCluster(std::move(config));
    return static_cast<double>(out.result.total_wan_bytes) /
           static_cast<double>(out.result.committed_txns);
  };
  double encoded = run(ProtocolConfig::MassBft());
  double oneway = run(ProtocolConfig::Baseline());
  EXPECT_LT(encoded, oneway);
}

TEST(IntegrationTest, AllWorkloadsRunOnMassBft) {
  for (WorkloadKind workload :
       {WorkloadKind::kYcsbA, WorkloadKind::kYcsbB, WorkloadKind::kSmallBank,
        WorkloadKind::kTpcc}) {
    ExperimentConfig config = SmallCluster(ProtocolConfig::MassBft());
    config.workload = workload;
    // TPC-C hotspots serialize with too few warehouses (Payment RAW∧WAR).
    if (workload == WorkloadKind::kTpcc) config.workload_scale = 0.5;
    RunOutcome out = RunCluster(std::move(config));
    EXPECT_GT(out.result.committed_txns, 300u)
        << WorkloadKindName(workload);
    EXPECT_GE(out.agreement, 1) << WorkloadKindName(workload);
  }
}

TEST(IntegrationTest, TpccHasHigherAbortRateWithBiggerBatches) {
  auto run = [](int clients) {
    ExperimentConfig config = SmallCluster(ProtocolConfig::MassBft());
    config.workload = WorkloadKind::kTpcc;
    config.workload_scale = 0.25;  // 32 warehouses.
    config.clients_per_group = clients;
    RunOutcome out = RunCluster(std::move(config));
    double txns = static_cast<double>(out.result.committed_txns);
    return txns == 0 ? 0.0
                     : static_cast<double>(out.result.conflict_aborts) / txns;
  };
  double small_batches = run(40);
  double big_batches = run(400);
  EXPECT_GT(big_batches, small_batches);
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  auto run = [] {
    ExperimentConfig config = SmallCluster(ProtocolConfig::MassBft());
    config.seed = 99;
    return RunCluster(std::move(config));
  };
  RunOutcome a = run();
  RunOutcome b = run();
  EXPECT_EQ(a.result.committed_txns, b.result.committed_txns);
  EXPECT_EQ(a.result.sim_events, b.result.sim_events);
  EXPECT_DOUBLE_EQ(a.result.mean_latency_ms, b.result.mean_latency_ms);
}

TEST(IntegrationTest, TwoGroupsMinimalCluster) {
  ExperimentConfig config = SmallCluster(ProtocolConfig::MassBft(), 2, 4);
  RunOutcome out = RunCluster(std::move(config));
  EXPECT_GE(out.agreement, 1);
  EXPECT_GT(out.result.committed_txns, 300u);
}

TEST(IntegrationTest, SingleNodeGroupsDegenerate) {
  // n = 1 per group: f = 0, PBFT trivially commits, plans are 1-chunk.
  ExperimentConfig config = SmallCluster(ProtocolConfig::MassBft(), 3, 1);
  RunOutcome out = RunCluster(std::move(config));
  EXPECT_GE(out.agreement, 1);
  EXPECT_GT(out.result.committed_txns, 100u);
}

TEST(IntegrationTest, SlowNodesToleratedUpToThreshold) {
  // Fig 14 mechanism: with <= n - n_data slow senders, rebuilds use fast
  // chunks; beyond that, throughput drops to the slow pace.
  auto run = [](int slow_nodes) {
    ExperimentConfig config = SmallCluster(ProtocolConfig::MassBft(), 3, 7);
    config.topology.wan_bps = 40e6;
    for (int g = 0; g < 3; ++g)
      for (int i = 0; i < slow_nodes; ++i)
        config.topology.wan_overrides.push_back(
            {NodeId{static_cast<uint16_t>(g), static_cast<uint16_t>(6 - i)},
             5e6});
    config.clients_per_group = 300;
    return RunCluster(std::move(config)).result.throughput_tps;
  };
  double none_slow = run(0);
  double many_slow = run(6);  // Only 1 fast node < n_data=3: gated by slow.
  EXPECT_GT(none_slow, many_slow * 1.2);
}

}  // namespace
}  // namespace massbft
