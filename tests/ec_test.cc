#include <gtest/gtest.h>

#include <optional>
#include <tuple>
#include <vector>

#include "common/bytes.h"
#include "common/cpu.h"
#include "common/rng.h"
#include "ec/gf256.h"
#include "ec/matrix.h"
#include "ec/reed_solomon.h"

namespace massbft {
namespace {

// ---------------------------------------------------------------- GF(256)

TEST(Gf256Test, AdditionIsXor) {
  EXPECT_EQ(Gf256::Add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(Gf256::Sub(0x53, 0xCA), 0x53 ^ 0xCA);
}

TEST(Gf256Test, MultiplicationIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(Gf256::Mul(static_cast<uint8_t>(a), 1), a);
    EXPECT_EQ(Gf256::Mul(1, static_cast<uint8_t>(a)), a);
    EXPECT_EQ(Gf256::Mul(static_cast<uint8_t>(a), 0), 0);
  }
}

TEST(Gf256Test, KnownProduct) {
  // In GF(2^8) with polynomial 0x11D: 2 * 0x80 = 0x1D (wraps the modulus).
  EXPECT_EQ(Gf256::Mul(2, 0x80), 0x1D);
}

TEST(Gf256Test, MultiplicationCommutativeAssociative) {
  Rng rng(1);
  for (int trial = 0; trial < 2000; ++trial) {
    uint8_t a = static_cast<uint8_t>(rng.NextBelow(256));
    uint8_t b = static_cast<uint8_t>(rng.NextBelow(256));
    uint8_t c = static_cast<uint8_t>(rng.NextBelow(256));
    EXPECT_EQ(Gf256::Mul(a, b), Gf256::Mul(b, a));
    EXPECT_EQ(Gf256::Mul(Gf256::Mul(a, b), c), Gf256::Mul(a, Gf256::Mul(b, c)));
    // Distributivity over XOR.
    EXPECT_EQ(Gf256::Mul(a, Gf256::Add(b, c)),
              Gf256::Add(Gf256::Mul(a, b), Gf256::Mul(a, c)));
  }
}

TEST(Gf256Test, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    uint8_t inv = Gf256::Inv(static_cast<uint8_t>(a));
    EXPECT_EQ(Gf256::Mul(static_cast<uint8_t>(a), inv), 1) << "a=" << a;
    EXPECT_EQ(Gf256::Div(1, static_cast<uint8_t>(a)), inv);
  }
}

TEST(Gf256Test, DivisionInvertsMultiplication) {
  Rng rng(2);
  for (int trial = 0; trial < 2000; ++trial) {
    uint8_t a = static_cast<uint8_t>(rng.NextBelow(256));
    uint8_t b = static_cast<uint8_t>(1 + rng.NextBelow(255));
    EXPECT_EQ(Gf256::Div(Gf256::Mul(a, b), b), a);
  }
}

TEST(Gf256Test, PowMatchesRepeatedMul) {
  for (uint8_t base : {uint8_t{2}, uint8_t{3}, uint8_t{0x53}}) {
    uint8_t acc = 1;
    for (unsigned n = 0; n < 300; ++n) {
      EXPECT_EQ(Gf256::Pow(base, n), acc) << "base=" << int(base) << " n=" << n;
      acc = Gf256::Mul(acc, base);
    }
  }
}

TEST(Gf256Test, GeneratorHasFullOrder) {
  // 2 generates the multiplicative group: 2^255 = 1, 2^k != 1 for 0<k<255.
  for (unsigned k = 1; k < 255; ++k) EXPECT_NE(Gf256::Pow(2, k), 1);
  EXPECT_EQ(Gf256::Pow(2, 255), 1);
}

TEST(Gf256Test, MulAddRowMatchesScalarLoop) {
  Rng rng(3);
  for (uint8_t c : {uint8_t{0}, uint8_t{1}, uint8_t{0x35}, uint8_t{0xFF}}) {
    Bytes in(257), out(257), expected(257);
    for (size_t i = 0; i < in.size(); ++i) {
      in[i] = static_cast<uint8_t>(rng.NextBelow(256));
      out[i] = static_cast<uint8_t>(rng.NextBelow(256));
      expected[i] = Gf256::Add(out[i], Gf256::Mul(c, in[i]));
    }
    Gf256::MulAddRow(c, in.data(), out.data(), in.size());
    EXPECT_EQ(out, expected) << "c=" << int(c);
  }
}

// ---------------------------------------------------------------- Matrix

TEST(GfMatrixTest, IdentityMultiplication) {
  GfMatrix m(3, 3);
  uint8_t vals[3][3] = {{1, 2, 3}, {4, 5, 6}, {7, 8, 10}};
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c) m.Set(r, c, vals[r][c]);
  GfMatrix id = GfMatrix::Identity(3);
  EXPECT_EQ(m.Multiply(id), m);
  EXPECT_EQ(id.Multiply(m), m);
}

TEST(GfMatrixTest, InverseTimesSelfIsIdentity) {
  Rng rng(4);
  for (int n : {1, 2, 3, 5, 8, 13}) {
    // Random matrices over GF(256) are almost surely invertible; retry on
    // the rare singular draw.
    for (int attempt = 0; attempt < 10; ++attempt) {
      GfMatrix m(n, n);
      for (int r = 0; r < n; ++r)
        for (int c = 0; c < n; ++c)
          m.Set(r, c, static_cast<uint8_t>(rng.NextBelow(256)));
      auto inv = m.Invert();
      if (!inv.ok()) continue;
      EXPECT_EQ(m.Multiply(*inv), GfMatrix::Identity(n)) << "n=" << n;
      EXPECT_EQ(inv->Multiply(m), GfMatrix::Identity(n)) << "n=" << n;
      break;
    }
  }
}

TEST(GfMatrixTest, SingularMatrixRejected) {
  GfMatrix m(2, 2);  // Two identical rows.
  m.Set(0, 0, 3);
  m.Set(0, 1, 5);
  m.Set(1, 0, 3);
  m.Set(1, 1, 5);
  EXPECT_TRUE(m.Invert().status().IsCorruption());
}

TEST(GfMatrixTest, NonSquareInvertRejected) {
  GfMatrix m(2, 3);
  EXPECT_FALSE(m.Invert().ok());
}

TEST(GfMatrixTest, SubRowsSelects) {
  GfMatrix m(4, 2);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 2; ++c) m.Set(r, c, static_cast<uint8_t>(10 * r + c));
  GfMatrix sub = m.SubRows({3, 1});
  EXPECT_EQ(sub.rows(), 2);
  EXPECT_EQ(sub.At(0, 0), 30);
  EXPECT_EQ(sub.At(1, 1), 11);
}

// ---------------------------------------------------------------- Reed-Solomon

Bytes RandomMessage(Rng& rng, size_t len) {
  Bytes msg(len);
  for (auto& b : msg) b = static_cast<uint8_t>(rng.NextBelow(256));
  return msg;
}

TEST(ReedSolomonTest, CreateValidation) {
  EXPECT_FALSE(ReedSolomon::Create(0, 2).ok());
  EXPECT_FALSE(ReedSolomon::Create(3, -1).ok());
  EXPECT_FALSE(ReedSolomon::Create(200, 100).ok());
  EXPECT_TRUE(ReedSolomon::Create(200, 55).ok());
  EXPECT_TRUE(ReedSolomon::Create(1, 0).ok());
}

TEST(ReedSolomonTest, EncodeDecodeNoLoss) {
  Rng rng(5);
  auto rs = ReedSolomon::Create(4, 2);
  ASSERT_TRUE(rs.ok());
  Bytes msg = RandomMessage(rng, 1000);
  auto shards = rs->EncodeMessage(msg);
  ASSERT_TRUE(shards.ok());
  ASSERT_EQ(shards->size(), 6u);
  std::vector<std::optional<Bytes>> present(shards->begin(), shards->end());
  auto decoded = rs->DecodeMessage(present);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, msg);
}

TEST(ReedSolomonTest, RecoversFromAnyParityCountErasures) {
  Rng rng(6);
  auto rs = ReedSolomon::Create(5, 3);
  ASSERT_TRUE(rs.ok());
  Bytes msg = RandomMessage(rng, 333);
  auto shards = rs->EncodeMessage(msg);
  ASSERT_TRUE(shards.ok());

  // Erase every possible set of 3 shards out of 8.
  int n = rs->n_total();
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      for (int c = b + 1; c < n; ++c) {
        std::vector<std::optional<Bytes>> present(shards->begin(),
                                                  shards->end());
        present[a].reset();
        present[b].reset();
        present[c].reset();
        auto decoded = rs->DecodeMessage(present);
        ASSERT_TRUE(decoded.ok()) << a << "," << b << "," << c;
        EXPECT_EQ(*decoded, msg);
      }
    }
  }
}

TEST(ReedSolomonTest, TooFewShardsIsUnavailable) {
  Rng rng(7);
  auto rs = ReedSolomon::Create(4, 2);
  ASSERT_TRUE(rs.ok());
  auto shards = rs->EncodeMessage(RandomMessage(rng, 100));
  ASSERT_TRUE(shards.ok());
  std::vector<std::optional<Bytes>> present(shards->begin(), shards->end());
  present[0].reset();
  present[2].reset();
  present[4].reset();
  EXPECT_TRUE(rs->DecodeMessage(present).status().IsUnavailable());
}

TEST(ReedSolomonTest, CorruptedShardYieldsWrongMessage) {
  // The paper's Section IV-C premise: RS itself cannot detect corruption —
  // rebuilding from a tampered chunk silently yields a different entry
  // (caught upstream by the PBFT certificate check).
  Rng rng(8);
  auto rs = ReedSolomon::Create(4, 3);
  ASSERT_TRUE(rs.ok());
  Bytes msg = RandomMessage(rng, 256);
  auto shards = rs->EncodeMessage(msg);
  ASSERT_TRUE(shards.ok());
  std::vector<std::optional<Bytes>> present(shards->begin(), shards->end());
  (*present[1])[7] ^= 0x01;
  // Drop three parity shards so the corrupted data shard must be used.
  present[4].reset();
  present[5].reset();
  present[6].reset();
  auto decoded = rs->DecodeMessage(present);
  if (decoded.ok()) {
    EXPECT_NE(*decoded, msg);
  }
}

TEST(ReedSolomonTest, EmptyMessageRoundTrips) {
  auto rs = ReedSolomon::Create(3, 2);
  ASSERT_TRUE(rs.ok());
  auto shards = rs->EncodeMessage({});
  ASSERT_TRUE(shards.ok());
  std::vector<std::optional<Bytes>> present(shards->begin(), shards->end());
  present[0].reset();
  present[1].reset();
  auto decoded = rs->DecodeMessage(present);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(ReedSolomonTest, ShardSizeForMatchesEncode) {
  auto rs = ReedSolomon::Create(13, 15);  // The paper's 4x7 case study split.
  ASSERT_TRUE(rs.ok());
  Bytes msg(54321, 0xAB);
  auto shards = rs->EncodeMessage(msg);
  ASSERT_TRUE(shards.ok());
  EXPECT_EQ((*shards)[0].size(), rs->ShardSizeFor(msg.size()));
}

TEST(ReedSolomonTest, ParityOnlyConfigZeroParity) {
  Rng rng(9);
  auto rs = ReedSolomon::Create(4, 0);
  ASSERT_TRUE(rs.ok());
  Bytes msg = RandomMessage(rng, 64);
  auto shards = rs->EncodeMessage(msg);
  ASSERT_TRUE(shards.ok());
  EXPECT_EQ(shards->size(), 4u);
  std::vector<std::optional<Bytes>> present(shards->begin(), shards->end());
  auto decoded = rs->DecodeMessage(present);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, msg);
}

TEST(ReedSolomonTest, MismatchedShardSizesRejected) {
  auto rs = ReedSolomon::Create(2, 1);
  ASSERT_TRUE(rs.ok());
  std::vector<Bytes> data = {Bytes(10, 1), Bytes(11, 2)};
  EXPECT_FALSE(rs->EncodeParity(data).ok());
}

/// Property sweep: random (n_data, n_parity, message size, erasure set)
/// combinations always reconstruct, including the paper's 28-chunk plan.
class RsPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RsPropertyTest, RandomErasuresAlwaysRecoverable) {
  auto [n_data, n_parity, msg_len] = GetParam();
  Rng rng(static_cast<uint64_t>(n_data * 1000 + n_parity * 10 + msg_len));
  auto rs = ReedSolomon::Create(n_data, n_parity);
  ASSERT_TRUE(rs.ok());
  Bytes msg = RandomMessage(rng, static_cast<size_t>(msg_len));
  auto shards = rs->EncodeMessage(msg);
  ASSERT_TRUE(shards.ok());

  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::optional<Bytes>> present(shards->begin(), shards->end());
    // Erase exactly n_parity random shards.
    int erased = 0;
    while (erased < n_parity) {
      size_t victim = rng.NextBelow(present.size());
      if (present[victim].has_value()) {
        present[victim].reset();
        ++erased;
      }
    }
    auto decoded = rs->DecodeMessage(present);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, msg);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RsPropertyTest,
    ::testing::Values(std::make_tuple(1, 1, 100), std::make_tuple(2, 2, 57),
                      std::make_tuple(13, 15, 5000),  // paper 4x7 case study
                      std::make_tuple(7, 3, 1),       // tiny message
                      std::make_tuple(10, 30, 4096),
                      std::make_tuple(40, 20, 2048),  // Fig 13a largest group
                      std::make_tuple(100, 55, 999)));

// ------------------------------------------------- SIMD kernel properties

using RowKernel = void (*)(uint8_t, const uint8_t*, uint8_t*, size_t);

/// Cross-checks a (mul_add, mul) kernel pair against the scalar oracle on
/// every coefficient, a spread of lengths from 0 to 4096 (exercising the
/// vector main loops and their scalar tails), and unaligned base pointers.
/// Sentinel bytes around the target range verify the kernels never write
/// outside [offset, offset + len).
void ExpectMatchesScalarOracle(RowKernel mul_add, RowKernel mul) {
  Rng rng(0xEC);
  std::vector<size_t> lengths = {0,  1,  15, 16, 17, 31, 32,
                                 33, 63, 64, 65, 255, 4096};
  for (int i = 0; i < 8; ++i)
    lengths.push_back(static_cast<size_t>(rng.NextBelow(4097)));
  constexpr uint8_t kSentinel = 0xA5;
  for (size_t len : lengths) {
    for (size_t offset : {size_t{0}, size_t{1}, size_t{3}, size_t{13}}) {
      Bytes in(offset + len);
      for (auto& b : in) b = static_cast<uint8_t>(rng.NextBelow(256));
      Bytes seed(offset + len + 8, kSentinel);
      for (size_t i = offset; i < offset + len; ++i)
        seed[i] = static_cast<uint8_t>(rng.NextBelow(256));
      for (int c = 0; c < 256; ++c) {
        Bytes expected = seed;
        Bytes actual = seed;
        internal_gf256::MulAddRowScalar(static_cast<uint8_t>(c),
                                        in.data() + offset,
                                        expected.data() + offset, len);
        mul_add(static_cast<uint8_t>(c), in.data() + offset,
                actual.data() + offset, len);
        ASSERT_EQ(actual, expected)
            << "mul_add c=" << c << " len=" << len << " offset=" << offset;

        expected = seed;
        actual = seed;
        internal_gf256::MulRowScalar(static_cast<uint8_t>(c),
                                     in.data() + offset,
                                     expected.data() + offset, len);
        mul(static_cast<uint8_t>(c), in.data() + offset,
            actual.data() + offset, len);
        ASSERT_EQ(actual, expected)
            << "mul c=" << c << " len=" << len << " offset=" << offset;
      }
    }
  }
}

TEST(Gf256KernelTest, Ssse3MatchesScalarOracle) {
#if defined(__x86_64__) || defined(__i386__)
  if (!GetCpuFeatures().ssse3) GTEST_SKIP() << "CPU lacks SSSE3";
  ExpectMatchesScalarOracle(&internal_gf256::MulAddRowSsse3,
                            &internal_gf256::MulRowSsse3);
#else
  GTEST_SKIP() << "non-x86 build";
#endif
}

TEST(Gf256KernelTest, Avx2MatchesScalarOracle) {
#if defined(__x86_64__) || defined(__i386__)
  if (!GetCpuFeatures().avx2) GTEST_SKIP() << "CPU lacks AVX2";
  ExpectMatchesScalarOracle(&internal_gf256::MulAddRowAvx2,
                            &internal_gf256::MulRowAvx2);
#else
  GTEST_SKIP() << "non-x86 build";
#endif
}

TEST(Gf256KernelTest, ForcedScalarDispatchMatchesActiveKernel) {
  // Whatever tier auto-detection picked, pinning the dispatcher to scalar
  // must not change a single output byte (the MASSBFT_SIMD=scalar
  // fallback contract).
  Rng rng(0x5C);
  Bytes in(1029), simd_out(1029), scalar_out(1029);
  for (size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<uint8_t>(rng.NextBelow(256));
    simd_out[i] = scalar_out[i] = static_cast<uint8_t>(rng.NextBelow(256));
  }
  Gf256::MulAddRow(0x8E, in.data(), simd_out.data(), in.size());
  Gf256::ForceKernelForTest(Gf256::Kernel::kScalar);
  EXPECT_EQ(Gf256::ActiveKernel(), Gf256::Kernel::kScalar);
  Gf256::MulAddRow(0x8E, in.data(), scalar_out.data(), in.size());
  Gf256::RestoreKernelDispatch();
  EXPECT_EQ(simd_out, scalar_out);
}

TEST(ReedSolomonTest, ForcedScalarEncodeMatchesDispatched) {
  Rng rng(0x51);
  auto rs = ReedSolomon::Create(13, 15);
  ASSERT_TRUE(rs.ok());
  Bytes msg = RandomMessage(rng, 56000);
  auto dispatched = rs->EncodeMessage(msg);
  ASSERT_TRUE(dispatched.ok());
  Gf256::ForceKernelForTest(Gf256::Kernel::kScalar);
  auto scalar = rs->EncodeMessage(msg);
  Gf256::RestoreKernelDispatch();
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ(*dispatched, *scalar);
}

TEST(ReedSolomonTest, TinyShardsRejectedUniformly) {
  // Regression: the length-header guard must fire for every n_data, not
  // just n_data == 1 — six one-byte shards frame only 4 bytes, too small
  // for the 8-byte header.
  auto rs = ReedSolomon::Create(4, 2);
  ASSERT_TRUE(rs.ok());
  std::vector<std::optional<Bytes>> shards(6);
  for (auto& s : shards) s = Bytes{0xFF};
  EXPECT_TRUE(rs->DecodeMessage(shards).status().IsCorruption());

  auto rs1 = ReedSolomon::Create(1, 1);
  ASSERT_TRUE(rs1.ok());
  std::vector<std::optional<Bytes>> small(2);
  small[0] = Bytes{1, 2, 3};
  EXPECT_TRUE(rs1->DecodeMessage(small).status().IsCorruption());
}

}  // namespace
}  // namespace massbft
