#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bytes.h"
#include "crypto/merkle.h"

namespace massbft {
namespace {

std::vector<Bytes> MakeBlocks(int n) {
  std::vector<Bytes> blocks;
  for (int i = 0; i < n; ++i)
    blocks.push_back(ToBytes("chunk-" + std::to_string(i)));
  return blocks;
}

TEST(MerkleTest, EmptyInputRejected) {
  EXPECT_FALSE(MerkleTree::Build({}).ok());
}

TEST(MerkleTest, SingleLeafRootIsLeafHash) {
  auto tree = MerkleTree::Build(MakeBlocks(1));
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->leaf_count(), 1u);
  EXPECT_EQ(tree->root(), tree->leaf(0));
  auto proof = tree->Prove(0);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(proof->path.empty());
  EXPECT_TRUE(MerkleTree::VerifyProof(tree->root(), tree->leaf(0), *proof));
}

TEST(MerkleTest, ProofOutOfRange) {
  auto tree = MerkleTree::Build(MakeBlocks(4));
  ASSERT_TRUE(tree.ok());
  EXPECT_FALSE(tree->Prove(4).ok());
}

TEST(MerkleTest, DifferentBlocksDifferentRoots) {
  auto a = MerkleTree::Build(MakeBlocks(4));
  auto blocks = MakeBlocks(4);
  blocks[2][0] ^= 1;
  auto b = MerkleTree::Build(blocks);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->root(), b->root());
}

TEST(MerkleTest, WrongLeafHashFailsVerification) {
  auto tree = MerkleTree::Build(MakeBlocks(8));
  ASSERT_TRUE(tree.ok());
  auto proof = tree->Prove(3);
  ASSERT_TRUE(proof.ok());
  Digest wrong = tree->leaf(4);
  EXPECT_FALSE(MerkleTree::VerifyProof(tree->root(), wrong, *proof));
}

TEST(MerkleTest, ProofForWrongIndexFails) {
  auto tree = MerkleTree::Build(MakeBlocks(8));
  ASSERT_TRUE(tree.ok());
  auto proof = tree->Prove(3);
  ASSERT_TRUE(proof.ok());
  MerkleProof shifted = *proof;
  shifted.index = 5;
  EXPECT_FALSE(MerkleTree::VerifyProof(tree->root(), tree->leaf(3), shifted));
}

TEST(MerkleTest, TamperedPathFails) {
  auto tree = MerkleTree::Build(MakeBlocks(16));
  ASSERT_TRUE(tree.ok());
  auto proof = tree->Prove(9);
  ASSERT_TRUE(proof.ok());
  MerkleProof bad = *proof;
  bad.path[1][0] ^= 0xFF;
  EXPECT_FALSE(MerkleTree::VerifyProof(tree->root(), tree->leaf(9), bad));
}

TEST(MerkleTest, TruncatedOrPaddedPathFails) {
  auto tree = MerkleTree::Build(MakeBlocks(16));
  ASSERT_TRUE(tree.ok());
  auto proof = tree->Prove(2);
  ASSERT_TRUE(proof.ok());
  MerkleProof truncated = *proof;
  truncated.path.pop_back();
  EXPECT_FALSE(
      MerkleTree::VerifyProof(tree->root(), tree->leaf(2), truncated));
  MerkleProof padded = *proof;
  padded.path.push_back(tree->leaf(0));
  EXPECT_FALSE(MerkleTree::VerifyProof(tree->root(), tree->leaf(2), padded));
}

TEST(MerkleTest, BuildFromLeavesMatchesBuild) {
  std::vector<Bytes> blocks = MakeBlocks(7);
  auto full = MerkleTree::Build(blocks);
  ASSERT_TRUE(full.ok());
  std::vector<Digest> leaves;
  for (uint32_t i = 0; i < full->leaf_count(); ++i)
    leaves.push_back(full->leaf(i));
  auto from_leaves = MerkleTree::BuildFromLeaves(leaves);
  ASSERT_TRUE(from_leaves.ok());
  EXPECT_EQ(from_leaves->root(), full->root());
}

// All leaves of trees of many sizes verify — covers odd/even levels and the
// promoted-node path.
class MerkleAllSizesTest : public ::testing::TestWithParam<int> {};

TEST_P(MerkleAllSizesTest, EveryLeafProvesAndVerifies) {
  int n = GetParam();
  auto tree = MerkleTree::Build(MakeBlocks(n));
  ASSERT_TRUE(tree.ok());
  for (int i = 0; i < n; ++i) {
    auto proof = tree->Prove(static_cast<uint32_t>(i));
    ASSERT_TRUE(proof.ok()) << "leaf " << i;
    EXPECT_TRUE(MerkleTree::VerifyProof(
        tree->root(), tree->leaf(static_cast<uint32_t>(i)), *proof))
        << "leaf " << i << " of " << n;
    // Cross-leaf proofs must not verify.
    if (n > 1) {
      int other = (i + 1) % n;
      EXPECT_FALSE(MerkleTree::VerifyProof(
          tree->root(), tree->leaf(static_cast<uint32_t>(other)), *proof))
          << "leaf " << other << " verified with proof for " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleAllSizesTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 13, 16,
                                           17, 28, 31, 32, 33, 64, 100));

TEST(MerkleTest, ProofByteSizeTracksPathLength) {
  auto tree = MerkleTree::Build(MakeBlocks(28));
  ASSERT_TRUE(tree.ok());
  auto proof = tree->Prove(0);
  ASSERT_TRUE(proof.ok());
  // ByteSize() must match the wire encoding exactly.
  BinaryWriter w;
  proof->EncodeTo(&w);
  EXPECT_EQ(proof->ByteSize(), w.size());
  EXPECT_EQ(proof->ByteSize(), 4 + 4 + 2 + proof->path.size() * 32);
}

TEST(MerkleTest, ProofEncodeDecodeRoundTrip) {
  auto tree = MerkleTree::Build(MakeBlocks(28));
  ASSERT_TRUE(tree.ok());
  auto proof = tree->Prove(13);
  ASSERT_TRUE(proof.ok());
  BinaryWriter w;
  proof->EncodeTo(&w);
  BinaryReader r(w.buffer());
  auto decoded = MerkleProof::DecodeFrom(&r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->index, proof->index);
  EXPECT_EQ(decoded->leaf_count, proof->leaf_count);
  EXPECT_EQ(decoded->path, proof->path);
  EXPECT_TRUE(r.AtEnd());
}

}  // namespace
}  // namespace massbft
