#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "crypto/signature.h"
#include "proto/entry.h"
#include "replication/encoder.h"
#include "replication/rebuilder.h"
#include "replication/transfer_plan.h"

namespace massbft {
namespace {

// ------------------------------------------------------- Transfer plan

TEST(TransferPlanTest, PaperCaseStudy4x7) {
  // Section IV-B case study: LCM(4,7)=28 chunks, each G1 node sends 7,
  // each G2 node receives 4, parity = 1*7 + 2*4 = 15, data = 13,
  // ~2.15 entry copies on the WAN.
  auto plan = TransferPlan::Create(4, 7);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->n_total(), 28);
  EXPECT_EQ(plan->chunks_per_sender(), 7);
  EXPECT_EQ(plan->chunks_per_receiver(), 4);
  EXPECT_EQ(plan->n_parity(), 15);
  EXPECT_EQ(plan->n_data(), 13);
  EXPECT_NEAR(plan->EntryCopiesSent(), 28.0 / 13.0, 1e-9);
}

TEST(TransferPlanTest, EqualSizedGroups) {
  auto plan = TransferPlan::Create(7, 7);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->n_total(), 7);
  EXPECT_EQ(plan->chunks_per_sender(), 1);
  EXPECT_EQ(plan->n_parity(), 2 + 2);  // f=2 on both sides, nc=1.
  EXPECT_EQ(plan->n_data(), 3);
}

TEST(TransferPlanTest, InvalidInputs) {
  EXPECT_FALSE(TransferPlan::Create(0, 7).ok());
  EXPECT_FALSE(TransferPlan::Create(7, -1).ok());
  // LCM(16, 17) = 272 > 255: beyond the GF(2^8) shard budget.
  EXPECT_FALSE(TransferPlan::Create(16, 17).ok());
}

TEST(TransferPlanTest, AlgorithmLineMapping) {
  // Chunk c is sent by floor(c/nc1) and received by floor(c/nc2)
  // (Algorithm 1 lines 9 and 13).
  auto plan = TransferPlan::Create(4, 7);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->SenderOf(0), 0);
  EXPECT_EQ(plan->SenderOf(6), 0);
  EXPECT_EQ(plan->SenderOf(7), 1);
  EXPECT_EQ(plan->ReceiverOf(0), 0);
  EXPECT_EQ(plan->ReceiverOf(3), 0);
  EXPECT_EQ(plan->ReceiverOf(4), 1);
  EXPECT_EQ(plan->ReceiverOf(27), 6);
}

/// Property sweep over group-size pairs: every chunk is sent exactly once,
/// received exactly once, load is perfectly balanced, and the worst-case
/// loss bound leaves n_data chunks intact.
class TransferPlanPropertyTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(TransferPlanPropertyTest, EveryChunkSentAndReceivedExactlyOnce) {
  auto [n1, n2] = GetParam();
  auto plan = TransferPlan::Create(n1, n2);
  ASSERT_TRUE(plan.ok());

  std::set<int> all_chunks;
  std::map<int, int> per_sender, per_receiver;
  for (const TransferTuple& t : plan->AllTuples()) {
    EXPECT_TRUE(all_chunks.insert(t.chunk).second) << "duplicate chunk";
    EXPECT_GE(t.sender, 0);
    EXPECT_LT(t.sender, n1);
    EXPECT_GE(t.receiver, 0);
    EXPECT_LT(t.receiver, n2);
    per_sender[t.sender]++;
    per_receiver[t.receiver]++;
  }
  EXPECT_EQ(static_cast<int>(all_chunks.size()), plan->n_total());
  for (auto& [s, count] : per_sender)
    EXPECT_EQ(count, plan->chunks_per_sender());
  for (auto& [r, count] : per_receiver)
    EXPECT_EQ(count, plan->chunks_per_receiver());
  EXPECT_EQ(static_cast<int>(per_sender.size()), n1);
  EXPECT_EQ(static_cast<int>(per_receiver.size()), n2);
}

TEST_P(TransferPlanPropertyTest, WorstCaseLossLeavesDataChunks) {
  auto [n1, n2] = GetParam();
  auto plan = TransferPlan::Create(n1, n2);
  ASSERT_TRUE(plan.ok());
  int f1 = (n1 - 1) / 3, f2 = (n2 - 1) / 3;
  // Kill the f1 *disjointly worst* senders and f2 receivers: the set of
  // surviving chunks must be >= n_data (the Section IV-B worst case).
  std::set<int> lost;
  for (int s = 0; s < f1; ++s)
    for (const TransferTuple& t : plan->TuplesForSender(s))
      lost.insert(t.chunk);
  for (int r = 0; r < n2 && static_cast<int>(lost.size()) <
                                plan->n_parity();
       ++r) {
    // Pick receivers whose chunks are disjoint from the lost senders'.
    auto tuples = plan->TuplesForReceiver(r);
    bool disjoint = true;
    for (const TransferTuple& t : tuples)
      if (lost.count(t.chunk) > 0) disjoint = false;
    if (!disjoint) continue;
    if (f2 == 0) break;
    for (const TransferTuple& t : tuples) lost.insert(t.chunk);
    --f2;
  }
  EXPECT_LE(static_cast<int>(lost.size()), plan->n_parity());
  EXPECT_GE(plan->n_total() - static_cast<int>(lost.size()), plan->n_data());
}

TEST_P(TransferPlanPropertyTest, SenderReceiverViewsAgree) {
  auto [n1, n2] = GetParam();
  auto plan = TransferPlan::Create(n1, n2);
  ASSERT_TRUE(plan.ok());
  std::map<int, TransferTuple> by_chunk;
  for (int s = 0; s < n1; ++s)
    for (const TransferTuple& t : plan->TuplesForSender(s))
      by_chunk[t.chunk] = t;
  for (int r = 0; r < n2; ++r)
    for (const TransferTuple& t : plan->TuplesForReceiver(r))
      EXPECT_EQ(by_chunk[t.chunk], t);
}

INSTANTIATE_TEST_SUITE_P(
    GroupSizes, TransferPlanPropertyTest,
    ::testing::Values(std::make_pair(4, 7), std::make_pair(7, 4),
                      std::make_pair(7, 7), std::make_pair(4, 4),
                      std::make_pair(1, 1), std::make_pair(1, 7),
                      std::make_pair(13, 13), std::make_pair(40, 40),
                      std::make_pair(10, 15), std::make_pair(19, 19),
                      std::make_pair(12, 8)));

// ------------------------------------------------------------- Encoder

TEST(EncoderTest, EncodesAllChunksWithValidProofs) {
  Entry entry(0, 1,
              {Transaction{1, 1, 0, Bytes(500, 0xAA)},
               Transaction{2, 2, 0, Bytes(500, 0xBB)}});
  auto plan = TransferPlan::Create(4, 7);
  ASSERT_TRUE(plan.ok());
  auto encoded = EncodeEntryForPlan(entry, *plan);
  ASSERT_TRUE(encoded.ok());
  ASSERT_EQ(static_cast<int>(encoded->chunks.size()), plan->n_total());
  for (const Chunk& c : encoded->chunks) {
    EXPECT_TRUE(MerkleTree::VerifyProof(encoded->merkle_root,
                                        MerkleTree::HashLeaf(c.data),
                                        c.proof))
        << "chunk " << c.chunk_id;
    EXPECT_EQ(c.proof.index, c.chunk_id);
    EXPECT_EQ(c.proof.leaf_count, static_cast<uint32_t>(plan->n_total()));
  }
}

TEST(EncoderTest, DeterministicAcrossSenders) {
  Entry entry(1, 9, {Transaction{5, 5, 0, Bytes(123, 0x55)}});
  auto plan = TransferPlan::Create(7, 7);
  ASSERT_TRUE(plan.ok());
  auto a = EncodeEntryForPlan(entry, *plan);
  auto b = EncodeEntryForPlan(entry, *plan);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->merkle_root, b->merkle_root);
}

TEST(EncoderTest, TamperedPayloadChangesRoot) {
  Entry entry(1, 9, {Transaction{5, 5, 0, Bytes(123, 0x55)}});
  auto plan = TransferPlan::Create(7, 7);
  ASSERT_TRUE(plan.ok());
  auto correct = EncodeEntryForPlan(entry, *plan);
  Bytes tampered = entry.Encoded();
  tampered[tampered.size() / 2] ^= 0xFF;
  auto bad = EncodeBytesForPlan(tampered, *plan);
  ASSERT_TRUE(correct.ok());
  ASSERT_TRUE(bad.ok());
  EXPECT_NE(correct->merkle_root, bad->merkle_root);
}

// ----------------------------------------------------------- Rebuilder

class RebuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; ++i)
      registry_.RegisterNode(NodeId{0, static_cast<uint16_t>(i)});
    entry_ = std::make_shared<const Entry>(
        0, 3,
        std::vector<Transaction>{Transaction{1, 1, 0, Bytes(2000, 0x42)}});
    plan_ = std::make_unique<TransferPlan>(*TransferPlan::Create(4, 7));
    encoded_ = std::make_unique<EncodedEntry>(
        *EncodeEntryForPlan(*entry_, *plan_));
    cert_.gid = 0;
    cert_.digest = entry_->digest();
    Bytes payload(cert_.digest.begin(), cert_.digest.end());
    for (int i = 0; i < 3; ++i) {  // 2f+1 = 3 for n=4.
      NodeId node{0, static_cast<uint16_t>(i)};
      cert_.AddSignature(node.index, registry_.Sign(node, payload));
    }
  }

  EntryRebuilder MakeRebuilder() {
    EntryRebuilder::Config cfg;
    cfg.n_total = plan_->n_total();
    cfg.n_data = plan_->n_data();
    cfg.validate = [this](const Certificate& cert, const Digest& digest) {
      return cert.digest == digest && cert.Verify(registry_, 3);
    };
    return EntryRebuilder(std::move(cfg));
  }

  KeyRegistry registry_;
  EntryPtr entry_;
  std::unique_ptr<TransferPlan> plan_;
  std::unique_ptr<EncodedEntry> encoded_;
  Certificate cert_;
};

TEST_F(RebuilderTest, RebuildsFromFirstNDataChunks) {
  EntryRebuilder rebuilder = MakeRebuilder();
  for (int c = 0; c < plan_->n_data() - 1; ++c) {
    EXPECT_EQ(rebuilder.AddChunk(encoded_->merkle_root, c,
                                 encoded_->chunks[c].data,
                                 encoded_->chunks[c].proof, cert_),
              EntryRebuilder::AddResult::kPending);
  }
  int last = plan_->n_data() - 1;
  EXPECT_EQ(rebuilder.AddChunk(encoded_->merkle_root, last,
                               encoded_->chunks[last].data,
                               encoded_->chunks[last].proof, cert_),
            EntryRebuilder::AddResult::kRebuilt);
  ASSERT_TRUE(rebuilder.complete());
  EXPECT_EQ(rebuilder.entry()->digest(), entry_->digest());
}

TEST_F(RebuilderTest, RebuildsFromParityOnlySubset) {
  EntryRebuilder rebuilder = MakeRebuilder();
  // Feed the LAST n_data chunks (mostly parity).
  for (int c = plan_->n_total() - plan_->n_data(); c < plan_->n_total();
       ++c) {
    auto result = rebuilder.AddChunk(encoded_->merkle_root, c,
                                     encoded_->chunks[c].data,
                                     encoded_->chunks[c].proof, cert_);
    if (c == plan_->n_total() - 1) {
      EXPECT_EQ(result, EntryRebuilder::AddResult::kRebuilt);
    }
  }
  ASSERT_TRUE(rebuilder.complete());
  EXPECT_EQ(rebuilder.entry()->digest(), entry_->digest());
}

TEST_F(RebuilderTest, DuplicateChunksIgnored) {
  EntryRebuilder rebuilder = MakeRebuilder();
  EXPECT_EQ(rebuilder.AddChunk(encoded_->merkle_root, 0,
                               encoded_->chunks[0].data,
                               encoded_->chunks[0].proof, cert_),
            EntryRebuilder::AddResult::kPending);
  EXPECT_EQ(rebuilder.AddChunk(encoded_->merkle_root, 0,
                               encoded_->chunks[0].data,
                               encoded_->chunks[0].proof, cert_),
            EntryRebuilder::AddResult::kDuplicate);
}

TEST_F(RebuilderTest, BadProofRejected) {
  EntryRebuilder rebuilder = MakeRebuilder();
  // Wrong index binding.
  EXPECT_EQ(rebuilder.AddChunk(encoded_->merkle_root, 1,
                               encoded_->chunks[0].data,
                               encoded_->chunks[0].proof, cert_),
            EntryRebuilder::AddResult::kRejected);
  // Tampered data with a valid-for-original proof.
  Bytes tampered = encoded_->chunks[0].data;
  tampered[0] ^= 1;
  EXPECT_EQ(rebuilder.AddChunk(encoded_->merkle_root, 0, tampered,
                               encoded_->chunks[0].proof, cert_),
            EntryRebuilder::AddResult::kRejected);
  // Out-of-range chunk id.
  MerkleProof proof = encoded_->chunks[0].proof;
  EXPECT_EQ(rebuilder.AddChunk(encoded_->merkle_root, 999,
                               encoded_->chunks[0].data, proof, cert_),
            EntryRebuilder::AddResult::kRejected);
}

TEST_F(RebuilderTest, TamperedBucketBannedThenCorrectBucketWins) {
  // Byzantine senders encode a consistently tampered entry: its chunks have
  // valid proofs under the *tampered* root and fill a bucket, but the
  // rebuilt entry fails certificate validation -> that root is banned
  // (IV-C). The ban is per-root, never per-chunk-id: the genuine entry's
  // chunks reuse the very same ids and must still rebuild, else a
  // Byzantine bucket covering ids 0..n_data-1 would be a liveness attack.
  Bytes tampered_payload = entry_->Encoded();
  tampered_payload[4] ^= 0xFF;
  auto tampered = EncodeBytesForPlan(tampered_payload, *plan_);
  ASSERT_TRUE(tampered.ok());

  EntryRebuilder rebuilder = MakeRebuilder();
  // Fill the tampered bucket to the rebuild threshold.
  for (int c = 0; c < plan_->n_data(); ++c) {
    auto result = rebuilder.AddChunk(tampered->merkle_root, c,
                                     tampered->chunks[c].data,
                                     tampered->chunks[c].proof, cert_);
    if (c < plan_->n_data() - 1)
      EXPECT_EQ(result, EntryRebuilder::AddResult::kPending);
    else
      EXPECT_EQ(result, EntryRebuilder::AddResult::kBucketFake);
  }
  EXPECT_EQ(rebuilder.banned_count(), plan_->n_data());

  // Refills of the proven-fake root are refused in O(1) (DoS defense)...
  EXPECT_EQ(rebuilder.AddChunk(tampered->merkle_root, 0,
                               tampered->chunks[0].data,
                               tampered->chunks[0].proof, cert_),
            EntryRebuilder::AddResult::kDuplicate);
  // ...and so is a never-seen chunk id under that root: the ban needs no
  // proof verification or rebuild attempt.
  int parity = plan_->n_data();
  EXPECT_EQ(rebuilder.AddChunk(tampered->merkle_root, parity,
                               tampered->chunks[parity].data,
                               tampered->chunks[parity].proof, cert_),
            EntryRebuilder::AddResult::kDuplicate);

  // The genuine chunks with the SAME ids 0..n_data-1 are a different root
  // — a different candidate entry — and rebuild normally. (The pre-fix
  // global chunk-id ban returned kDuplicate here and lost the entry.)
  for (int c = 0; c < plan_->n_data(); ++c) {
    auto result = rebuilder.AddChunk(encoded_->merkle_root, c,
                                     encoded_->chunks[c].data,
                                     encoded_->chunks[c].proof, cert_);
    if (c < plan_->n_data() - 1)
      EXPECT_EQ(result, EntryRebuilder::AddResult::kPending);
    else
      EXPECT_EQ(result, EntryRebuilder::AddResult::kRebuilt);
  }
  ASSERT_TRUE(rebuilder.complete());
  EXPECT_EQ(rebuilder.entry()->digest(), entry_->digest());
}

TEST_F(RebuilderTest, RepeatedFakeRootsEachCostOneRebuildOnly) {
  // An attacker can force at most one failed rebuild per fresh fake root
  // (each needs n_data valid proofs under a new root); refills of an
  // already-banned root never reach verification.
  EntryRebuilder rebuilder = MakeRebuilder();
  for (int variant = 0; variant < 3; ++variant) {
    Bytes tampered_payload = entry_->Encoded();
    tampered_payload[8] ^= static_cast<uint8_t>(variant + 1);
    auto tampered = EncodeBytesForPlan(tampered_payload, *plan_);
    ASSERT_TRUE(tampered.ok());
    for (int c = 0; c < plan_->n_data(); ++c) {
      auto result = rebuilder.AddChunk(tampered->merkle_root, c,
                                       tampered->chunks[c].data,
                                       tampered->chunks[c].proof, cert_);
      if (c == plan_->n_data() - 1) {
        EXPECT_EQ(result, EntryRebuilder::AddResult::kBucketFake);
      }
    }
    // Every later touch of the banned root is O(1) kDuplicate.
    EXPECT_EQ(rebuilder.AddChunk(tampered->merkle_root, 0,
                                 tampered->chunks[0].data,
                                 tampered->chunks[0].proof, cert_),
              EntryRebuilder::AddResult::kDuplicate);
  }
  EXPECT_EQ(rebuilder.banned_count(), 3 * plan_->n_data());

  // The genuine entry still goes through after all that noise.
  for (int c = 0; c < plan_->n_data(); ++c)
    (void)rebuilder.AddChunk(encoded_->merkle_root, c,
                             encoded_->chunks[c].data,
                             encoded_->chunks[c].proof, cert_);
  ASSERT_TRUE(rebuilder.complete());
  EXPECT_EQ(rebuilder.entry()->digest(), entry_->digest());
}

TEST_F(RebuilderTest, HeldChunksOnlyFromHealthyBuckets) {
  Bytes tampered_payload = entry_->Encoded();
  tampered_payload[4] ^= 0xFF;
  auto tampered = EncodeBytesForPlan(tampered_payload, *plan_);
  ASSERT_TRUE(tampered.ok());

  EntryRebuilder rebuilder = MakeRebuilder();
  rebuilder.AddChunk(encoded_->merkle_root, 5, encoded_->chunks[5].data,
                     encoded_->chunks[5].proof, cert_);
  for (int c = 0; c < plan_->n_data(); ++c)
    rebuilder.AddChunk(tampered->merkle_root, c, tampered->chunks[c].data,
                       tampered->chunks[c].proof, cert_);
  auto held = rebuilder.HeldChunks();
  ASSERT_EQ(held.size(), 1u);  // Only the healthy chunk is re-shared.
  EXPECT_EQ(held[0].chunk_id, 5u);
  EXPECT_EQ(held[0].root, encoded_->merkle_root);
}

TEST_F(RebuilderTest, ChunksAfterCompletionIgnored) {
  EntryRebuilder rebuilder = MakeRebuilder();
  for (int c = 0; c < plan_->n_data(); ++c)
    rebuilder.AddChunk(encoded_->merkle_root, c, encoded_->chunks[c].data,
                       encoded_->chunks[c].proof, cert_);
  ASSERT_TRUE(rebuilder.complete());
  EXPECT_EQ(rebuilder.AddChunk(encoded_->merkle_root, 20,
                               encoded_->chunks[20].data,
                               encoded_->chunks[20].proof, cert_),
            EntryRebuilder::AddResult::kDuplicate);
}

}  // namespace
}  // namespace massbft
