#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "common/bytes.h"
#include "common/codec.h"
#include "common/inline_function.h"
#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/zipf.h"

namespace massbft {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing entry");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing entry");
  EXPECT_EQ(s.ToString(), "NotFound: missing entry");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
}

Status FailsThrough() {
  MASSBFT_RETURN_IF_ERROR(Status::Aborted("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailsThrough().IsAborted());
}

// ---------------------------------------------------------------- Result

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

Result<int> Doubled(int v) {
  MASSBFT_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  ASSERT_TRUE(Doubled(21).ok());
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// ---------------------------------------------------------------- Codec

TEST(CodecTest, RoundTripsFixedWidths) {
  BinaryWriter w;
  w.PutU8(0xAB);
  w.PutU16(0x1234);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x1122334455667788ULL);
  w.PutI64(-42);

  BinaryReader r(w.buffer());
  uint8_t u8 = 0;
  uint16_t u16 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU16(&u16).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetI64(&i64).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xDEADBEEF);
  EXPECT_EQ(u64, 0x1122334455667788ULL);
  EXPECT_EQ(i64, -42);
  EXPECT_TRUE(r.AtEnd());
}

TEST(CodecTest, VarintRoundTripBoundaries) {
  const uint64_t values[] = {0,    1,        127,        128,
                             300,  16383,    16384,      (1ULL << 32),
                             ~0ULL};
  BinaryWriter w;
  for (uint64_t v : values) w.PutVarint(v);
  BinaryReader r(w.buffer());
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(r.GetVarint(&got).ok());
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(CodecTest, BytesAndStrings) {
  BinaryWriter w;
  w.PutBytes(ToBytes("hello"));
  w.PutString("world");
  w.PutBytes({});

  BinaryReader r(w.buffer());
  Bytes b;
  std::string s;
  Bytes empty;
  ASSERT_TRUE(r.GetBytes(&b).ok());
  ASSERT_TRUE(r.GetString(&s).ok());
  ASSERT_TRUE(r.GetBytes(&empty).ok());
  EXPECT_EQ(b, ToBytes("hello"));
  EXPECT_EQ(s, "world");
  EXPECT_TRUE(empty.empty());
}

TEST(CodecTest, TruncatedReadsReportCorruption) {
  BinaryWriter w;
  w.PutU32(5);
  BinaryReader r(w.buffer());
  uint64_t v;
  EXPECT_TRUE(r.GetU64(&v).IsCorruption());

  // Blob claiming more bytes than remain.
  BinaryWriter w2;
  w2.PutVarint(100);
  w2.PutU8(1);
  BinaryReader r2(w2.buffer());
  Bytes b;
  EXPECT_TRUE(r2.GetBytes(&b).IsCorruption());
}

TEST(CodecTest, MalformedVarintIsCorruption) {
  Bytes evil(11, 0xFF);  // 11 continuation bytes: > 64 bits.
  BinaryReader r(evil);
  uint64_t v;
  EXPECT_TRUE(r.GetVarint(&v).IsCorruption());
}

// ---------------------------------------------------------------- Hex

TEST(BytesTest, ToHex) {
  Bytes b = {0x00, 0x0F, 0xA5, 0xFF};
  EXPECT_EQ(ToHex(b), "000fa5ff");
  EXPECT_EQ(ToHex(Bytes{}), "");
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.NextU64() == b.NextU64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBelow(10), 10u);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(11);
  Rng child = parent.Fork();
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

// ---------------------------------------------------------------- Zipf

TEST(ZipfTest, ValuesInSupport) {
  ZipfGenerator zipf(1000, 0.99);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(rng), 1000u);
}

TEST(ZipfTest, SkewConcentratesOnLowRanks) {
  ZipfGenerator zipf(1'000'000, 0.99);
  Rng rng(5);
  int in_top_100 = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i)
    if (zipf.Next(rng) < 100) ++in_top_100;
  // With theta=0.99 over 1M keys, the top-100 ranks receive a large
  // fraction of accesses (far beyond the uniform 0.01%).
  EXPECT_GT(in_top_100, kDraws / 5);
}

TEST(ZipfTest, ZeroThetaIsNearUniform) {
  ZipfGenerator zipf(100, 0.0001);
  Rng rng(13);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) counts[zipf.Next(rng)]++;
  // Every key should appear; max/min ratio bounded.
  EXPECT_EQ(counts.size(), 100u);
  int min_count = 1 << 30, max_count = 0;
  for (auto& [k, c] : counts) {
    min_count = std::min(min_count, c);
    max_count = std::max(max_count, c);
  }
  EXPECT_LT(max_count, min_count * 3);
}

// ---------------------------------------------------------------- Logging

/// Restores the process-wide log level on scope exit so these tests cannot
/// leak a lowered threshold into the rest of the suite.
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level) : saved_(GetLogLevel()) {
    SetLogLevel(level);
  }
  ~ScopedLogLevel() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, BelowThresholdIsSuppressed) {
  ScopedLogLevel scoped(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  MASSBFT_LOG(kDebug) << "invisible debug";
  MASSBFT_LOG(kInfo) << "invisible info";
  std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured, "");
}

TEST(LoggingTest, AtAndAboveThresholdIsEmitted) {
  ScopedLogLevel scoped(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  MASSBFT_LOG(kWarn) << "warn " << 42;
  MASSBFT_LOG(kError) << "error msg";
  std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("[WARN]"), std::string::npos);
  EXPECT_NE(captured.find("warn 42"), std::string::npos);
  EXPECT_NE(captured.find("[ERROR]"), std::string::npos);
  EXPECT_NE(captured.find("error msg"), std::string::npos);
}

TEST(LoggingTest, SetLogLevelReGatesAtRuntime) {
  ScopedLogLevel scoped(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  MASSBFT_LOG(kDebug) << "now visible";
  SetLogLevel(LogLevel::kOff);
  MASSBFT_LOG(kError) << "silenced error";
  std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("now visible"), std::string::npos);
  EXPECT_EQ(captured.find("silenced error"), std::string::npos);
}

TEST(LoggingTest, MacroBindsCorrectlyInUnbracedIf) {
  // MASSBFT_LOG expands to an if/else; it must swallow the dangling-else
  // so this idiom logs only when the condition holds. The unbraced if is
  // the construct under test, hence the silenced compiler warning.
  ScopedLogLevel scoped(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  bool flag = false;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdangling-else"
  if (flag) MASSBFT_LOG(kError) << "must not appear";
#pragma GCC diagnostic pop
  std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured.find("must not appear"), std::string::npos);
}

// ------------------------------------------------------- InlineFunction

TEST(InlineFunctionTest, InvokesAndReturnsValues) {
  InlineFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_TRUE(static_cast<bool>(add));
  EXPECT_EQ(add(2, 3), 5);
}

TEST(InlineFunctionTest, DefaultConstructedIsEmpty) {
  InlineFunction<void()> fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFunctionTest, SmallCapturesStayInline) {
  int a = 1, b = 2, c = 3, d = 4;  // 4 ints + padding, well under 48 bytes.
  InlineFunction<int()> fn = [a, b, c, d] { return a + b + c + d; };
  EXPECT_TRUE(fn.is_inline());
  EXPECT_EQ(fn(), 10);
}

TEST(InlineFunctionTest, LargeCapturesFallBackToHeapAndStillWork) {
  std::array<uint64_t, 16> big{};  // 128 bytes, over the 48-byte buffer.
  big[0] = 7;
  big[15] = 35;
  InlineFunction<uint64_t()> fn = [big] { return big[0] + big[15]; };
  EXPECT_FALSE(fn.is_inline());
  EXPECT_EQ(fn(), 42u);
}

TEST(InlineFunctionTest, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  InlineFunction<void()> fn = [counter] { ++*counter; };
  EXPECT_TRUE(fn.is_inline());
  InlineFunction<void()> moved = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
  moved();
  EXPECT_EQ(*counter, 1);
  InlineFunction<void()> assigned;
  assigned = std::move(moved);
  assigned();
  EXPECT_EQ(*counter, 2);
}

TEST(InlineFunctionTest, DestroysCaptureExactlyOnce) {
  auto tracker = std::make_shared<int>(0);
  EXPECT_EQ(tracker.use_count(), 1);
  {
    InlineFunction<void()> fn = [tracker] {};
    EXPECT_EQ(tracker.use_count(), 2);
    InlineFunction<void()> moved = std::move(fn);
    EXPECT_EQ(tracker.use_count(), 2);  // Moved, not copied.
  }
  EXPECT_EQ(tracker.use_count(), 1);  // Destroyed with the wrapper.
}

TEST(InlineFunctionTest, MoveOnlyCapturesSupported) {
  auto owned = std::make_unique<int>(99);
  InlineFunction<int()> fn = [owned = std::move(owned)] { return *owned; };
  EXPECT_EQ(fn(), 99);
}

TEST(InlineFunctionTest, HeapFallbackMoveAndDestroy) {
  auto tracker = std::make_shared<int>(0);
  std::array<uint64_t, 16> pad{};
  {
    InlineFunction<void()> fn = [tracker, pad] { (void)pad; };
    EXPECT_FALSE(fn.is_inline());
    EXPECT_EQ(tracker.use_count(), 2);
    InlineFunction<void()> moved = std::move(fn);
    EXPECT_EQ(tracker.use_count(), 2);
    moved();
  }
  EXPECT_EQ(tracker.use_count(), 1);
}

}  // namespace
}  // namespace massbft
