#include <gtest/gtest.h>

#include <string>

#include "common/bytes.h"
#include "common/cpu.h"
#include "common/rng.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/signature.h"

namespace massbft {
namespace {

// ---------------------------------------------------------------- SHA-256
// NIST FIPS 180-4 known-answer vectors.

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestToHex(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(DigestToHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      DigestToHex(Sha256::Hash(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(DigestToHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalEqualsOneShot) {
  std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly, to cross "
      "SHA-256 block boundaries in interesting ways. 0123456789";
  Digest one_shot = Sha256::Hash(msg);
  // Feed in irregular pieces.
  for (size_t piece : {1u, 3u, 7u, 13u, 31u, 64u, 65u}) {
    Sha256 h;
    for (size_t i = 0; i < msg.size(); i += piece)
      h.Update(std::string_view(msg).substr(i, piece));
    EXPECT_EQ(h.Finish(), one_shot) << "piece size " << piece;
  }
}

TEST(Sha256Test, ExactBlockBoundaries) {
  // 55/56/63/64/65 bytes straddle the padding edge cases.
  for (size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string msg(len, 'x');
    Digest incremental = [&] {
      Sha256 h;
      for (char c : msg) h.Update(std::string_view(&c, 1));
      return h.Finish();
    }();
    EXPECT_EQ(Sha256::Hash(msg), incremental) << "len " << len;
  }
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 h;
  h.Update("garbage");
  (void)h.Finish();
  h.Reset();
  h.Update("abc");
  EXPECT_EQ(DigestToHex(h.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// --------------------------------------------- Compression-kernel parity

TEST(Sha256Test, ForcedScalarReproducesKnownAnswers) {
  // The NIST vectors above run under whatever implementation the
  // dispatcher picked; re-check them with the portable compression
  // function pinned (the MASSBFT_SIMD=scalar fallback contract).
  Sha256::ForceImplForTest(Sha256::Impl::kScalar);
  EXPECT_EQ(Sha256::ActiveImpl(), Sha256::Impl::kScalar);
  EXPECT_EQ(DigestToHex(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(DigestToHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      DigestToHex(Sha256::Hash(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  Sha256::RestoreImplDispatch();
}

TEST(Sha256Test, ShaNiMatchesScalarOnKnownAnswersAndRandomInputs) {
#if defined(__x86_64__) || defined(__i386__)
  if (!GetCpuFeatures().sha_ni) GTEST_SKIP() << "CPU lacks SHA-NI";
  // Drive both kernels directly through the block interface: random
  // multi-block inputs (1..9 blocks) from random starting states must
  // produce bit-identical chaining values.
  Rng rng(0x54A);
  for (int round = 0; round < 50; ++round) {
    size_t n_blocks = 1 + rng.NextBelow(9);
    Bytes blocks(64 * n_blocks);
    for (auto& b : blocks) b = static_cast<uint8_t>(rng.NextBelow(256));
    uint32_t scalar_state[8], shani_state[8];
    for (int i = 0; i < 8; ++i) {
      scalar_state[i] = static_cast<uint32_t>(rng.NextBelow(1ull << 32));
      shani_state[i] = scalar_state[i];
    }
    internal_sha256::ProcessBlocksScalar(scalar_state, blocks.data(),
                                         n_blocks);
    internal_sha256::ProcessBlocksShaNi(shani_state, blocks.data(), n_blocks);
    for (int i = 0; i < 8; ++i)
      ASSERT_EQ(shani_state[i], scalar_state[i])
          << "word " << i << " round " << round;
  }
  // And end to end: one-shot digests of random lengths agree between the
  // pinned implementations (padding/buffering paths included).
  for (size_t len : {0u, 1u, 55u, 56u, 64u, 65u, 127u, 128u, 1000u, 4096u}) {
    Bytes data(len);
    for (auto& b : data) b = static_cast<uint8_t>(rng.NextBelow(256));
    Sha256::ForceImplForTest(Sha256::Impl::kScalar);
    Digest scalar = Sha256::Hash(data);
    Sha256::ForceImplForTest(Sha256::Impl::kShaNi);
    Digest shani = Sha256::Hash(data);
    Sha256::RestoreImplDispatch();
    EXPECT_EQ(scalar, shani) << "len " << len;
  }
#else
  GTEST_SKIP() << "non-x86 build";
#endif
}

// ---------------------------------------------------------------- HMAC
// RFC 4231 test vectors.

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Digest mac = HmacSha256(key, ToBytes("Hi There"));
  EXPECT_EQ(DigestToHex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  Bytes key = ToBytes("Jefe");
  Digest mac = HmacSha256(key, ToBytes("what do ya want for nothing?"));
  EXPECT_EQ(DigestToHex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  Digest mac = HmacSha256(key, data);
  EXPECT_EQ(DigestToHex(mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  Bytes key(131, 0xaa);  // RFC 4231 case 6.
  Digest mac = HmacSha256(
      key, ToBytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(DigestToHex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// ---------------------------------------------------------------- Signatures

TEST(SignatureTest, SignVerifyRoundTrip) {
  KeyRegistry registry;
  NodeId node{1, 3};
  registry.RegisterNode(node);
  Bytes msg = ToBytes("entry digest payload");
  Signature sig = registry.Sign(node, msg);
  EXPECT_TRUE(registry.Verify(node, msg, sig));
}

TEST(SignatureTest, TamperedMessageFails) {
  KeyRegistry registry;
  NodeId node{0, 0};
  registry.RegisterNode(node);
  Bytes msg = ToBytes("original");
  Signature sig = registry.Sign(node, msg);
  Bytes tampered = ToBytes("originaX");
  EXPECT_FALSE(registry.Verify(node, tampered, sig));
}

TEST(SignatureTest, WrongSignerFails) {
  KeyRegistry registry;
  NodeId a{0, 1}, b{0, 2};
  registry.RegisterNode(a);
  registry.RegisterNode(b);
  Bytes msg = ToBytes("payload");
  Signature sig = registry.Sign(a, msg);
  EXPECT_FALSE(registry.Verify(b, msg, sig));
}

TEST(SignatureTest, UnregisteredVerifierFails) {
  KeyRegistry registry;
  NodeId a{0, 1};
  registry.RegisterNode(a);
  Signature sig = registry.Sign(a, ToBytes("m"));
  EXPECT_FALSE(registry.Verify(NodeId{5, 5}, ToBytes("m"), sig));
}

TEST(SignatureTest, RegistrationIsIdempotentAndDeterministic) {
  KeyRegistry r1, r2;
  NodeId node{2, 4};
  r1.RegisterNode(node);
  r1.RegisterNode(node);
  r2.RegisterNode(node);
  EXPECT_EQ(r1.num_nodes(), 1u);
  // Two registries derive the same key (reproducible clusters).
  Bytes msg = ToBytes("cross-registry");
  EXPECT_EQ(r1.Sign(node, msg), r2.Sign(node, msg));
}

TEST(SignatureTest, SignatureIs64Bytes) {
  // Wire-size fidelity with ED25519.
  EXPECT_EQ(sizeof(Signature), 64u);
}

TEST(NodeIdTest, PackUnpackRoundTrip) {
  NodeId id{513, 42};
  EXPECT_EQ(NodeId::FromPacked(id.Packed()), id);
  EXPECT_LT(NodeId({0, 5}), NodeId({1, 0}));
}

}  // namespace
}  // namespace massbft
