#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/cpu.h"
#include "common/rng.h"
#include "crypto/ed25519.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"
#include "crypto/signature.h"

namespace massbft {
namespace {

// ---------------------------------------------------------------- SHA-256
// NIST FIPS 180-4 known-answer vectors.

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestToHex(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(DigestToHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      DigestToHex(Sha256::Hash(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(DigestToHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalEqualsOneShot) {
  std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly, to cross "
      "SHA-256 block boundaries in interesting ways. 0123456789";
  Digest one_shot = Sha256::Hash(msg);
  // Feed in irregular pieces.
  for (size_t piece : {1u, 3u, 7u, 13u, 31u, 64u, 65u}) {
    Sha256 h;
    for (size_t i = 0; i < msg.size(); i += piece)
      h.Update(std::string_view(msg).substr(i, piece));
    EXPECT_EQ(h.Finish(), one_shot) << "piece size " << piece;
  }
}

TEST(Sha256Test, ExactBlockBoundaries) {
  // 55/56/63/64/65 bytes straddle the padding edge cases.
  for (size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string msg(len, 'x');
    Digest incremental = [&] {
      Sha256 h;
      for (char c : msg) h.Update(std::string_view(&c, 1));
      return h.Finish();
    }();
    EXPECT_EQ(Sha256::Hash(msg), incremental) << "len " << len;
  }
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 h;
  h.Update("garbage");
  (void)h.Finish();
  h.Reset();
  h.Update("abc");
  EXPECT_EQ(DigestToHex(h.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// --------------------------------------------- Compression-kernel parity

TEST(Sha256Test, ForcedScalarReproducesKnownAnswers) {
  // The NIST vectors above run under whatever implementation the
  // dispatcher picked; re-check them with the portable compression
  // function pinned (the MASSBFT_SIMD=scalar fallback contract).
  Sha256::ForceImplForTest(Sha256::Impl::kScalar);
  EXPECT_EQ(Sha256::ActiveImpl(), Sha256::Impl::kScalar);
  EXPECT_EQ(DigestToHex(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(DigestToHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      DigestToHex(Sha256::Hash(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  Sha256::RestoreImplDispatch();
}

TEST(Sha256Test, ShaNiMatchesScalarOnKnownAnswersAndRandomInputs) {
#if defined(__x86_64__) || defined(__i386__)
  if (!GetCpuFeatures().sha_ni) GTEST_SKIP() << "CPU lacks SHA-NI";
  // Drive both kernels directly through the block interface: random
  // multi-block inputs (1..9 blocks) from random starting states must
  // produce bit-identical chaining values.
  Rng rng(0x54A);
  for (int round = 0; round < 50; ++round) {
    size_t n_blocks = 1 + rng.NextBelow(9);
    Bytes blocks(64 * n_blocks);
    for (auto& b : blocks) b = static_cast<uint8_t>(rng.NextBelow(256));
    uint32_t scalar_state[8], shani_state[8];
    for (int i = 0; i < 8; ++i) {
      scalar_state[i] = static_cast<uint32_t>(rng.NextBelow(1ull << 32));
      shani_state[i] = scalar_state[i];
    }
    internal_sha256::ProcessBlocksScalar(scalar_state, blocks.data(),
                                         n_blocks);
    internal_sha256::ProcessBlocksShaNi(shani_state, blocks.data(), n_blocks);
    for (int i = 0; i < 8; ++i)
      ASSERT_EQ(shani_state[i], scalar_state[i])
          << "word " << i << " round " << round;
  }
  // And end to end: one-shot digests of random lengths agree between the
  // pinned implementations (padding/buffering paths included).
  for (size_t len : {0u, 1u, 55u, 56u, 64u, 65u, 127u, 128u, 1000u, 4096u}) {
    Bytes data(len);
    for (auto& b : data) b = static_cast<uint8_t>(rng.NextBelow(256));
    Sha256::ForceImplForTest(Sha256::Impl::kScalar);
    Digest scalar = Sha256::Hash(data);
    Sha256::ForceImplForTest(Sha256::Impl::kShaNi);
    Digest shani = Sha256::Hash(data);
    Sha256::RestoreImplDispatch();
    EXPECT_EQ(scalar, shani) << "len " << len;
  }
#else
  GTEST_SKIP() << "non-x86 build";
#endif
}

// ---------------------------------------------------------------- HMAC
// RFC 4231 test vectors.

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Digest mac = HmacSha256(key, ToBytes("Hi There"));
  EXPECT_EQ(DigestToHex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  Bytes key = ToBytes("Jefe");
  Digest mac = HmacSha256(key, ToBytes("what do ya want for nothing?"));
  EXPECT_EQ(DigestToHex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  Digest mac = HmacSha256(key, data);
  EXPECT_EQ(DigestToHex(mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  Bytes key(131, 0xaa);  // RFC 4231 case 6.
  Digest mac = HmacSha256(
      key, ToBytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(DigestToHex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// ---------------------------------------------------------------- Signatures

TEST(SignatureTest, SignVerifyRoundTrip) {
  KeyRegistry registry;
  NodeId node{1, 3};
  registry.RegisterNode(node);
  Bytes msg = ToBytes("entry digest payload");
  Signature sig = registry.Sign(node, msg);
  EXPECT_TRUE(registry.Verify(node, msg, sig));
}

TEST(SignatureTest, TamperedMessageFails) {
  KeyRegistry registry;
  NodeId node{0, 0};
  registry.RegisterNode(node);
  Bytes msg = ToBytes("original");
  Signature sig = registry.Sign(node, msg);
  Bytes tampered = ToBytes("originaX");
  EXPECT_FALSE(registry.Verify(node, tampered, sig));
}

TEST(SignatureTest, WrongSignerFails) {
  KeyRegistry registry;
  NodeId a{0, 1}, b{0, 2};
  registry.RegisterNode(a);
  registry.RegisterNode(b);
  Bytes msg = ToBytes("payload");
  Signature sig = registry.Sign(a, msg);
  EXPECT_FALSE(registry.Verify(b, msg, sig));
}

TEST(SignatureTest, UnregisteredVerifierFails) {
  KeyRegistry registry;
  NodeId a{0, 1};
  registry.RegisterNode(a);
  Signature sig = registry.Sign(a, ToBytes("m"));
  EXPECT_FALSE(registry.Verify(NodeId{5, 5}, ToBytes("m"), sig));
}

TEST(SignatureTest, RegistrationIsIdempotentAndDeterministic) {
  KeyRegistry r1, r2;
  NodeId node{2, 4};
  r1.RegisterNode(node);
  r1.RegisterNode(node);
  r2.RegisterNode(node);
  EXPECT_EQ(r1.num_nodes(), 1u);
  // Two registries derive the same key (reproducible clusters).
  Bytes msg = ToBytes("cross-registry");
  EXPECT_EQ(r1.Sign(node, msg), r2.Sign(node, msg));
}

TEST(SignatureTest, SignatureIs64Bytes) {
  // Wire-size fidelity with ED25519.
  EXPECT_EQ(sizeof(Signature), 64u);
}

TEST(NodeIdTest, PackUnpackRoundTrip) {
  NodeId id{513, 42};
  EXPECT_EQ(NodeId::FromPacked(id.Packed()), id);
  EXPECT_LT(NodeId({0, 5}), NodeId({1, 0}));
}

// ---------------------------------------------------------------- SHA-512
// NIST FIPS 180-4 known-answer vectors.

std::string Hex512(const Digest512& d) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(128);
  for (uint8_t b : d) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

TEST(Sha512Test, EmptyString) {
  EXPECT_EQ(Hex512(Sha512::Hash("")),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512Test, Abc) {
  EXPECT_EQ(Hex512(Sha512::Hash("abc")),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512Test, TwoBlockMessage) {
  EXPECT_EQ(Hex512(Sha512::Hash(
                "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
            "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512Test, MillionAIncremental) {
  // Exercises block buffering across many Update() calls.
  Sha512 h;
  std::string chunk(999, 'a');  // Prime length: never block-aligned.
  for (int i = 0; i < 1001; ++i) h.Update(chunk);
  h.Update(std::string(1, 'a'));  // 999 * 1001 + 1 = 1,000,000.
  EXPECT_EQ(Hex512(h.Finish()),
            "e718483d0ce769644e2e42c7bc15b4638e1f98b13b2044285632a803afa973eb"
            "de0ff244877ea60a4cb0432ce577c31beb009c5c2c49aa2e4eadb217ad8cc09b");
}

// ---------------------------------------------------------------- ed25519
// RFC 8032 §7.1 test vectors: public-key derivation, signing, verifying.

struct Rfc8032Vector {
  const char* secret;
  const char* public_key;
  const char* message;
  const char* sig;
};

constexpr Rfc8032Vector kRfc8032Vectors[] = {
    // TEST 1 (empty message)
    {"9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
     "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a", "",
     "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
     "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"},
    // TEST 2 (one byte)
    {"4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
     "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c", "72",
     "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
     "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"},
    // TEST 3 (two bytes)
    {"c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
     "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
     "af82",
     "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
     "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"},
    // TEST SHA(abc): message = SHA-512("abc")
    {"833fe62409237b9d62ec77587520911e9a759cec1d19755b7da901b96dca3d42",
     "ec172b93ad5e563bf4932c70e1245034c35467ef2efd4d64ebf819683467e2bf",
     "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
     "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f",
     "dc2a4459e7369633a52b1bf277839a00201009a3efbf3ecb69bea2186c26b589"
     "09351fc9ac90b3ecfdfbc7c66431e0303dca179c138ac17ad9bef1177331a704"},
};

Bytes FromHex(const std::string& hex) {
  Bytes out(hex.size() / 2);
  for (size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<uint8_t>(
        std::stoi(hex.substr(2 * i, 2), nullptr, 16));
  return out;
}

TEST(Ed25519Test, Rfc8032Vectors) {
  for (const Rfc8032Vector& vec : kRfc8032Vectors) {
    Bytes secret_bytes = FromHex(vec.secret);
    Bytes pk_bytes = FromHex(vec.public_key);
    Bytes msg = FromHex(vec.message);
    Bytes sig_bytes = FromHex(vec.sig);

    ed25519::SecretKey secret;
    std::memcpy(secret.data(), secret_bytes.data(), secret.size());
    ed25519::PublicKey pk = ed25519::DerivePublicKey(secret);
    EXPECT_EQ(Bytes(pk.begin(), pk.end()), pk_bytes);

    ed25519::Sig sig = ed25519::Sign(secret, pk, msg.data(), msg.size());
    EXPECT_EQ(Bytes(sig.begin(), sig.end()), sig_bytes);
    EXPECT_TRUE(ed25519::Verify(pk, msg.data(), msg.size(), sig));
  }
}

TEST(Ed25519Test, TamperedInputsFail) {
  ed25519::SecretKey secret{};
  secret[0] = 42;
  ed25519::PublicKey pk = ed25519::DerivePublicKey(secret);
  Bytes msg = ToBytes("payload");
  ed25519::Sig sig = ed25519::Sign(secret, pk, msg.data(), msg.size());
  ASSERT_TRUE(ed25519::Verify(pk, msg.data(), msg.size(), sig));

  for (size_t bit : {size_t{0}, size_t{250}, size_t{260}, size_t{511}}) {
    ed25519::Sig bad = sig;
    bad[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(ed25519::Verify(pk, msg.data(), msg.size(), bad));
  }
  Bytes other = ToBytes("payloaX");
  EXPECT_FALSE(ed25519::Verify(pk, other.data(), other.size(), sig));
}

TEST(Ed25519Test, MalleableScalarRejected) {
  // RFC 8032 MUST: reject s >= L. Adding the group order to s yields a
  // second encoding of the "same" signature; strict verifiers refuse it.
  ed25519::SecretKey secret{};
  secret[0] = 7;
  ed25519::PublicKey pk = ed25519::DerivePublicKey(secret);
  Bytes msg = ToBytes("malleability");
  ed25519::Sig sig = ed25519::Sign(secret, pk, msg.data(), msg.size());
  ASSERT_TRUE(ed25519::Verify(pk, msg.data(), msg.size(), sig));

  static constexpr uint8_t kL[32] = {
      0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7,
      0xa2, 0xde, 0xf9, 0xde, 0x14, 0,    0,    0,    0,    0,    0,
      0,    0,    0,    0,    0,    0,    0,    0,    0,    0x10};
  unsigned carry = 0;
  for (int i = 0; i < 32; ++i) {
    unsigned v = sig[32 + i] + kL[i] + carry;
    sig[32 + i] = static_cast<uint8_t>(v);
    carry = v >> 8;
  }
  EXPECT_FALSE(ed25519::Verify(pk, msg.data(), msg.size(), sig));
}

TEST(Ed25519Test, NonCanonicalPointRejected) {
  // A public key whose y coordinate is >= p (here: p + 1, i.e. the
  // encoding of 1 with all the high bytes of p added back) must not parse.
  ed25519::SecretKey secret{};
  secret[0] = 9;
  ed25519::PublicKey pk = ed25519::DerivePublicKey(secret);
  Bytes msg = ToBytes("canonical");
  ed25519::Sig sig = ed25519::Sign(secret, pk, msg.data(), msg.size());

  ed25519::PublicKey non_canonical;
  non_canonical.fill(0xFF);
  non_canonical[0] = 0xEE;   // p + 1: 2^255 - 19 + 1, little-endian.
  non_canonical[31] = 0x7F;  // Sign bit clear.
  EXPECT_FALSE(
      ed25519::Verify(non_canonical, msg.data(), msg.size(), sig));
}

TEST(Ed25519Test, BatchVerifiesAndPinpointsForgery) {
  Bytes digest = ToBytes("one shared certificate digest............");
  constexpr int kN = 7;
  std::vector<ed25519::PublicKey> pks(kN);
  std::vector<ed25519::Sig> sigs(kN);
  for (int i = 0; i < kN; ++i) {
    ed25519::SecretKey secret{};
    secret[0] = static_cast<uint8_t>(i + 1);
    pks[i] = ed25519::DerivePublicKey(secret);
    sigs[i] = ed25519::Sign(secret, pks[i], digest.data(), digest.size());
  }
  std::vector<ed25519::BatchItem> items;
  for (int i = 0; i < kN; ++i) items.push_back({&pks[i], &sigs[i]});
  EXPECT_TRUE(ed25519::VerifyBatch(items, digest.data(), digest.size()));

  // One forgery poisons the whole batch; scalar Verify pinpoints it.
  sigs[4][17] ^= 0x20;
  EXPECT_FALSE(ed25519::VerifyBatch(items, digest.data(), digest.size()));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(ed25519::Verify(pks[i], digest.data(), digest.size(), sigs[i]),
              i != 4);
  }

  // Empty and single-item batches degrade gracefully.
  EXPECT_TRUE(ed25519::VerifyBatch({}, digest.data(), digest.size()));
  std::vector<ed25519::BatchItem> one = {{&pks[0], &sigs[0]}};
  EXPECT_TRUE(ed25519::VerifyBatch(one, digest.data(), digest.size()));
}

// ----------------------------------------------------- SignatureScheme seam

TEST(SignatureSchemeTest, Ed25519RegistryRoundTrip) {
  KeyRegistry registry(CryptoScheme::kEd25519);
  EXPECT_STREQ(registry.scheme_name(), "ed25519");
  NodeId node{1, 3};
  registry.RegisterNode(node);
  Bytes msg = ToBytes("entry digest payload");
  Signature sig = registry.Sign(node, msg);
  EXPECT_TRUE(registry.Verify(node, msg, sig));
  Bytes tampered = ToBytes("entry digest payloaX");
  EXPECT_FALSE(registry.Verify(node, tampered, sig));
  EXPECT_FALSE(registry.Verify(NodeId{1, 4}, msg, sig));  // Unregistered.
}

TEST(SignatureSchemeTest, SchemesProduceDistinctSignatures) {
  KeyRegistry hmac(CryptoScheme::kSimulatedHmac);
  KeyRegistry ed(CryptoScheme::kEd25519);
  NodeId node{0, 0};
  hmac.RegisterNode(node);
  ed.RegisterNode(node);
  Bytes msg = ToBytes("same payload");
  EXPECT_NE(hmac.Sign(node, msg), ed.Sign(node, msg));
  // Cross-scheme verification must fail, not crash.
  EXPECT_FALSE(hmac.Verify(node, msg, ed.Sign(node, msg)));
  EXPECT_FALSE(ed.Verify(node, msg, hmac.Sign(node, msg)));
}

TEST(SignatureSchemeTest, RegistryBatchVerifyCountsStats) {
  KeyRegistry registry(CryptoScheme::kEd25519);
  Bytes digest = ToBytes("certificate digest 32 bytes long");
  std::vector<NodeId> nodes;
  std::vector<Signature> sigs;
  for (uint16_t i = 0; i < 5; ++i) {
    NodeId node{2, i};
    registry.RegisterNode(node);
    nodes.push_back(node);
    sigs.push_back(registry.Sign(node, digest));
  }
  std::vector<const Signature*> sig_ptrs;
  for (const Signature& s : sigs) sig_ptrs.push_back(&s);
  EXPECT_TRUE(
      registry.VerifyBatch(nodes, digest.data(), digest.size(), sig_ptrs));
  VerifyStats stats = registry.verify_stats();
  EXPECT_EQ(stats.batch_calls, 1u);
  EXPECT_EQ(stats.batch_signatures, 5u);
  EXPECT_EQ(stats.batch_fallbacks, 0u);
  EXPECT_GT(registry.verify_batch_ratio(), 0.99);

  // A forged member fails the batch and records the fallback.
  sigs[1][0] ^= 1;
  EXPECT_FALSE(
      registry.VerifyBatch(nodes, digest.data(), digest.size(), sig_ptrs));
  stats = registry.verify_stats();
  EXPECT_EQ(stats.batch_fallbacks, 1u);
}

TEST(SignatureSchemeTest, HmacBatchLoopsScalar) {
  KeyRegistry registry(CryptoScheme::kSimulatedHmac);
  Bytes digest = ToBytes("hmac digest");
  std::vector<NodeId> nodes;
  std::vector<Signature> sigs;
  for (uint16_t i = 0; i < 3; ++i) {
    NodeId node{0, i};
    registry.RegisterNode(node);
    nodes.push_back(node);
    sigs.push_back(registry.Sign(node, digest));
  }
  std::vector<const Signature*> sig_ptrs;
  for (const Signature& s : sigs) sig_ptrs.push_back(&s);
  EXPECT_TRUE(
      registry.VerifyBatch(nodes, digest.data(), digest.size(), sig_ptrs));
  sigs[2][5] ^= 4;
  EXPECT_FALSE(
      registry.VerifyBatch(nodes, digest.data(), digest.size(), sig_ptrs));
}

TEST(SignatureSchemeTest, Ed25519DerivationIsDeterministic) {
  KeyRegistry r1(CryptoScheme::kEd25519), r2(CryptoScheme::kEd25519);
  NodeId node{3, 1};
  r1.RegisterNode(node);
  r2.RegisterNode(node);
  Bytes msg = ToBytes("cross-registry");
  // ed25519 signing is deterministic (RFC 8032), so identical derived
  // keys produce identical signatures.
  EXPECT_EQ(r1.Sign(node, msg), r2.Sign(node, msg));
}

}  // namespace
}  // namespace massbft
