#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/codec.h"
#include "common/rng.h"
#include "db/aria.h"
#include "db/kv_store.h"

namespace massbft {
namespace {

// ------------------------------------------------------------- KvStore

TEST(KvStoreTest, PutGetRoundTrip) {
  KvStore store;
  store.Put("k1", ToBytes("v1"));
  auto v = store.Get("k1");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, ToBytes("v1"));
  EXPECT_FALSE(store.Get("missing").has_value());
}

TEST(KvStoreTest, LazyDefaultSynthesizesPristineValues) {
  KvStore store;
  store.SetDefaultValueFn([](std::string_view key) -> std::optional<Bytes> {
    if (key.substr(0, 2) != "t:") return std::nullopt;
    return ToBytes("default");
  });
  EXPECT_EQ(*store.Get("t:5"), ToBytes("default"));
  EXPECT_FALSE(store.Get("other").has_value());
  EXPECT_EQ(store.materialized_size(), 0u);  // Nothing written.
  store.Put("t:5", ToBytes("written"));
  EXPECT_EQ(*store.Get("t:5"), ToBytes("written"));
  EXPECT_EQ(store.materialized_size(), 1u);
}

TEST(KvStoreTest, ResetRestoresPristine) {
  KvStore store;
  store.SetDefaultValueFn(
      [](std::string_view) -> std::optional<Bytes> { return ToBytes("d"); });
  store.Put("x", ToBytes("w"));
  store.Reset();
  EXPECT_EQ(*store.Get("x"), ToBytes("d"));
}

// --------------------------------------------------------------- Aria

/// Scripted test procedure: reads then writes fixed keys.
class ScriptProcedure final : public Procedure {
 public:
  ScriptProcedure(std::vector<std::string> reads,
                  std::vector<std::pair<std::string, std::string>> writes,
                  bool logic_abort = false)
      : reads_(std::move(reads)), writes_(std::move(writes)),
        logic_abort_(logic_abort) {}

  Status Execute(TxnContext* ctx) override {
    for (const auto& k : reads_) (void)ctx->Get(k);
    if (logic_abort_) {
      ctx->AbortLogic();
      return Status::OK();
    }
    for (const auto& [k, v] : writes_) ctx->Put(k, ToBytes(v));
    return Status::OK();
  }

 private:
  std::vector<std::string> reads_;
  std::vector<std::pair<std::string, std::string>> writes_;
  bool logic_abort_;
};

/// Payload codec for scripted procedures:
///   r-count, [keys], w-count, [key,value], abort-flag.
Bytes ScriptPayload(std::vector<std::string> reads,
                    std::vector<std::pair<std::string, std::string>> writes,
                    bool logic_abort = false) {
  BinaryWriter w;
  w.PutVarint(reads.size());
  for (auto& k : reads) w.PutString(k);
  w.PutVarint(writes.size());
  for (auto& [k, v] : writes) {
    w.PutString(k);
    w.PutString(v);
  }
  w.PutU8(logic_abort ? 1 : 0);
  return w.Release();
}

Result<std::unique_ptr<Procedure>> ParseScript(const Transaction& txn) {
  BinaryReader r(txn.payload);
  uint64_t nr = 0, nw = 0;
  std::vector<std::string> reads;
  std::vector<std::pair<std::string, std::string>> writes;
  MASSBFT_RETURN_IF_ERROR(r.GetVarint(&nr));
  for (uint64_t i = 0; i < nr; ++i) {
    std::string k;
    MASSBFT_RETURN_IF_ERROR(r.GetString(&k));
    reads.push_back(std::move(k));
  }
  MASSBFT_RETURN_IF_ERROR(r.GetVarint(&nw));
  for (uint64_t i = 0; i < nw; ++i) {
    std::string k, v;
    MASSBFT_RETURN_IF_ERROR(r.GetString(&k));
    MASSBFT_RETURN_IF_ERROR(r.GetString(&v));
    writes.emplace_back(std::move(k), std::move(v));
  }
  uint8_t abort_flag = 0;
  MASSBFT_RETURN_IF_ERROR(r.GetU8(&abort_flag));
  return std::unique_ptr<Procedure>(std::make_unique<ScriptProcedure>(
      std::move(reads), std::move(writes), abort_flag != 0));
}

Transaction ScriptTxn(uint64_t id, Bytes payload) {
  Transaction txn;
  txn.id = id;
  txn.payload = std::move(payload);
  return txn;
}

class AriaTest : public ::testing::Test {
 protected:
  KvStore store_;
  AriaExecutor executor_{&store_, ParseScript, /*reordering=*/true};
  AriaExecutor classic_{&store_, ParseScript, /*reordering=*/false};
};

TEST_F(AriaTest, IndependentTransactionsAllCommit) {
  std::vector<Transaction> batch = {
      ScriptTxn(1, ScriptPayload({}, {{"a", "1"}})),
      ScriptTxn(2, ScriptPayload({}, {{"b", "2"}})),
      ScriptTxn(3, ScriptPayload({"a"}, {{"c", "3"}})),
  };
  AriaBatchResult r = executor_.ExecuteBatch(batch);
  EXPECT_EQ(r.committed, 3);
  EXPECT_TRUE(r.conflict_aborts.empty());
  EXPECT_EQ(*store_.Get("a"), ToBytes("1"));
  EXPECT_EQ(*store_.Get("b"), ToBytes("2"));
  // Txn 3 read the snapshot (a absent) but its write still lands.
  EXPECT_EQ(*store_.Get("c"), ToBytes("3"));
}

TEST_F(AriaTest, WawAbortsHigherIndexedWriter) {
  std::vector<Transaction> batch = {
      ScriptTxn(1, ScriptPayload({}, {{"k", "first"}})),
      ScriptTxn(2, ScriptPayload({}, {{"k", "second"}})),
  };
  AriaBatchResult r = executor_.ExecuteBatch(batch);
  EXPECT_EQ(r.committed, 1);
  ASSERT_EQ(r.conflict_aborts.size(), 1u);
  EXPECT_EQ(r.conflict_aborts[0], 1u);  // The second writer aborts.
  EXPECT_EQ(*store_.Get("k"), ToBytes("first"));
}

TEST_F(AriaTest, BlindWritersAndReadersCoexistWithReordering) {
  // RAW-only (T2 reads T1's written key) commits under reordering: T2 is
  // logically ordered before T1 using the snapshot value.
  store_.Put("k", ToBytes("old"));
  std::vector<Transaction> batch = {
      ScriptTxn(1, ScriptPayload({}, {{"k", "new"}})),
      ScriptTxn(2, ScriptPayload({"k"}, {{"out", "x"}})),
  };
  AriaBatchResult r = executor_.ExecuteBatch(batch);
  EXPECT_EQ(r.committed, 2);
  EXPECT_EQ(*store_.Get("k"), ToBytes("new"));
}

TEST_F(AriaTest, ClassicModeAbortsOnRaw) {
  store_.Put("k", ToBytes("old"));
  std::vector<Transaction> batch = {
      ScriptTxn(1, ScriptPayload({}, {{"k", "new"}})),
      ScriptTxn(2, ScriptPayload({"k"}, {{"out", "x"}})),
  };
  AriaBatchResult r = classic_.ExecuteBatch(batch);
  EXPECT_EQ(r.committed, 1);
  ASSERT_EQ(r.conflict_aborts.size(), 1u);
  EXPECT_EQ(r.conflict_aborts[0], 1u);
}

TEST_F(AriaTest, RawAndWarTogetherAbortEvenWithReordering) {
  // T2 reads a key T1 writes (RAW) and writes a key T1 reads (WAR):
  // unreorderable -> abort (the TPC-C Payment hotspot pattern).
  store_.Put("w", ToBytes("0"));
  std::vector<Transaction> batch = {
      ScriptTxn(1, ScriptPayload({"w"}, {{"w", "1"}})),
      ScriptTxn(2, ScriptPayload({"w"}, {{"w", "2"}})),
  };
  AriaBatchResult r = executor_.ExecuteBatch(batch);
  EXPECT_EQ(r.committed, 1);
  ASSERT_EQ(r.conflict_aborts.size(), 1u);
  EXPECT_EQ(*store_.Get("w"), ToBytes("1"));
}

TEST_F(AriaTest, LogicAbortIsNotRetried) {
  std::vector<Transaction> batch = {
      ScriptTxn(1, ScriptPayload({}, {{"a", "1"}}, /*logic_abort=*/true)),
      ScriptTxn(2, ScriptPayload({}, {{"b", "2"}})),
  };
  AriaBatchResult r = executor_.ExecuteBatch(batch);
  EXPECT_EQ(r.committed, 1);
  EXPECT_EQ(r.logic_aborts, 1);
  EXPECT_TRUE(r.conflict_aborts.empty());
  EXPECT_FALSE(store_.Get("a").has_value());  // No effects.
}

TEST_F(AriaTest, MalformedPayloadCountsAsLogicAbort) {
  Transaction bad;
  bad.id = 1;
  bad.payload = {0xFF, 0xFF, 0xFF};
  AriaBatchResult r = executor_.ExecuteBatch({bad});
  EXPECT_EQ(r.committed, 0);
  EXPECT_EQ(r.logic_aborts, 1);
}

TEST_F(AriaTest, ReadYourOwnWritesWithinTransaction) {
  class RmwProcedure final : public Procedure {
   public:
    Status Execute(TxnContext* ctx) override {
      ctx->Put("x", ToBytes("mine"));
      auto v = ctx->Get("x");
      EXPECT_TRUE(v.has_value());
      EXPECT_EQ(*v, ToBytes("mine"));
      return Status::OK();
    }
  };
  KvStore store;
  AriaExecutor exec(
      &store,
      [](const Transaction&) -> Result<std::unique_ptr<Procedure>> {
        return std::unique_ptr<Procedure>(std::make_unique<RmwProcedure>());
      });
  Transaction txn;
  AriaBatchResult r = exec.ExecuteBatch({txn});
  EXPECT_EQ(r.committed, 1);
}

TEST_F(AriaTest, SnapshotIsolationWithinBatch) {
  // All transactions read the pre-batch snapshot, regardless of earlier
  // writers in the same batch.
  store_.Put("k", ToBytes("snapshot"));
  class SnapshotCheck final : public Procedure {
   public:
    Status Execute(TxnContext* ctx) override {
      auto v = ctx->Get("k");
      EXPECT_EQ(*v, ToBytes("snapshot"));
      return Status::OK();
    }
  };
  std::vector<Transaction> batch = {
      ScriptTxn(1, ScriptPayload({}, {{"k", "overwritten"}})),
      ScriptTxn(2, ScriptPayload({"k"}, {})),  // Read-only: sees snapshot.
  };
  AriaBatchResult r = executor_.ExecuteBatch(batch);
  EXPECT_EQ(r.committed, 2);
}

/// Determinism property: the same batch against the same initial state
/// yields identical results and final state (what lets every replica
/// execute independently).
class AriaDeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AriaDeterminismTest, IdenticalInputsIdenticalOutcome) {
  Rng rng(GetParam());
  std::vector<Transaction> batch;
  for (int i = 0; i < 200; ++i) {
    std::vector<std::string> reads;
    std::vector<std::pair<std::string, std::string>> writes;
    int nr = static_cast<int>(rng.NextBelow(3));
    int nw = static_cast<int>(rng.NextBelow(3));
    for (int k = 0; k < nr; ++k)
      reads.push_back("key" + std::to_string(rng.NextBelow(20)));
    for (int k = 0; k < nw; ++k)
      writes.push_back({"key" + std::to_string(rng.NextBelow(20)),
                        std::to_string(rng.NextU64())});
    batch.push_back(
        ScriptTxn(static_cast<uint64_t>(i), ScriptPayload(reads, writes)));
  }

  KvStore s1, s2;
  AriaExecutor e1(&s1, ParseScript), e2(&s2, ParseScript);
  AriaBatchResult r1 = e1.ExecuteBatch(batch);
  AriaBatchResult r2 = e2.ExecuteBatch(batch);
  EXPECT_EQ(r1.committed, r2.committed);
  EXPECT_EQ(r1.conflict_aborts, r2.conflict_aborts);
  for (int k = 0; k < 20; ++k) {
    std::string key = "key" + std::to_string(k);
    EXPECT_EQ(s1.Get(key), s2.Get(key)) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AriaDeterminismTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST_F(AriaTest, CommittedWritersHaveDisjointWriteSets) {
  // Three writers to one key: exactly one commits.
  std::vector<Transaction> batch = {
      ScriptTxn(1, ScriptPayload({}, {{"hot", "a"}})),
      ScriptTxn(2, ScriptPayload({}, {{"hot", "b"}})),
      ScriptTxn(3, ScriptPayload({}, {{"hot", "c"}})),
  };
  AriaBatchResult r = executor_.ExecuteBatch(batch);
  EXPECT_EQ(r.committed, 1);
  EXPECT_EQ(r.conflict_aborts.size(), 2u);
  EXPECT_EQ(*store_.Get("hot"), ToBytes("a"));
}

}  // namespace
}  // namespace massbft
