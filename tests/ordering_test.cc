#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "ordering/round_ordering.h"
#include "ordering/vts_ordering.h"

namespace massbft {
namespace {

using Executed = std::vector<std::pair<uint16_t, uint64_t>>;

/// Test double wiring an ordering engine to an availability set.
struct VtsHarness {
  explicit VtsHarness(int num_groups)
      : engine(num_groups,
               VtsOrderingEngine::Callbacks{
                   [this](uint16_t g, uint64_t s) {
                     return available.count({g, s}) > 0;
                   },
                   [this](uint16_t g, uint64_t s) {
                     executed.push_back({g, s});
                   }}) {}

  void MakeAvailable(uint16_t g, uint64_t s) {
    available.insert({g, s});
    engine.Poke();
  }

  std::set<std::pair<uint16_t, uint64_t>> available;
  Executed executed;
  VtsOrderingEngine engine;
};

TEST(VtsOrderingTest, SingleGroupExecutesInSequence) {
  VtsHarness h(1);
  h.MakeAvailable(0, 0);
  h.MakeAvailable(0, 1);
  h.MakeAvailable(0, 2);
  EXPECT_EQ(h.executed, (Executed{{0, 0}, {0, 1}, {0, 2}}));
}

TEST(VtsOrderingTest, WaitsForTimestampsBeforeExecuting) {
  VtsHarness h(2);
  h.MakeAvailable(0, 0);
  // Entry (0,0) has vts[0]=0 set; vts[1] unknown. Head (1,0) has vts[1]=0.
  // Prec((0,0),(1,0)) needs vts[0]... head(1,0).vts[0] inferred 0 == own 0,
  // undecidable until group 1 stamps.
  EXPECT_TRUE(h.executed.empty());
  // Group 1 stamps (0,0) with its clock value 0: now (0,0).vts = <0,0> all
  // set; head (1,0) virtual has vts <inf0, 0>: tie broken... (0,0) vs
  // virtual (1,0): equal VTS requires both set; (1,0).vts[0] inferred, so
  // comparison gives false both ways until group 0's clock advances —
  // except the identical-vts tie-break needs set bits. Stamp and check the
  // engine does NOT prematurely execute.
  h.engine.OnTimestamp(1, 0, 0, 0);
  // (0,0): vts = <0(set), 0(set)>. Virtual (1,0): vts = <0(inferred),
  // 0(set)>. Prec((0,0),(1,0)): j=0: e1 set, 0 == 0 but e2.set[0] false ->
  // return false. Correctly blocked.
  EXPECT_TRUE(h.executed.empty());
  // Group 0 stamps an entry of group 1 with ts=1 (its clock advanced past
  // 0): all heads' unset element-0 lower bounds rise to 1, so now
  // (0,0).vts[0]=0 < (1,0).vts[0]>=1 -> (0,0) precedes everything.
  h.engine.OnTimestamp(0, 1, 0, 1);
  EXPECT_EQ(h.executed, (Executed{{0, 0}}));
}

TEST(VtsOrderingTest, FastGroupNotBlockedBySlowGroup) {
  // The Fig 2 / Fig 6 scenario: group 0 proposes twice as fast; its
  // entries execute as soon as the slow group's clock assignments arrive,
  // without waiting for the slow group's own entries.
  VtsHarness h(2);
  for (uint64_t s = 0; s < 4; ++s) h.MakeAvailable(0, s);
  // Group 1 (slow) stamps group 0's entries with an advancing clock; group
  // 0 stamps nothing of group 1 (group 1 proposed nothing), but its own
  // clock advances via commits; group 1's head (1,0) element-0 bound rises
  // as group 0's entries are stamped by group 0 itself... Feed ts events:
  for (uint64_t s = 0; s < 4; ++s) {
    h.engine.OnTimestamp(1, 0, s, s);      // Slow group's assignments.
    h.engine.OnTimestamp(0, 0, s, s + 1);  // Own-group observation: raises
                                           // head(1,0).vts[0] bound.
  }
  // All four fast-group entries executed; none of the slow group's.
  EXPECT_EQ(h.executed.size(), 4u);
  for (auto& [g, s] : h.executed) EXPECT_EQ(g, 0);
}

TEST(VtsOrderingTest, ExecutionBlockedUntilPayloadAvailable) {
  VtsHarness h(2);
  // Make ordering decidable but payload unavailable.
  h.engine.OnTimestamp(1, 0, 0, 0);
  h.engine.OnTimestamp(0, 1, 0, 5);
  EXPECT_TRUE(h.executed.empty());
  h.MakeAvailable(0, 0);
  EXPECT_EQ(h.executed, (Executed{{0, 0}}));
}

TEST(VtsOrderingTest, TieBrokenBySeqThenGid) {
  // Two entries with identical fully-set VTS <1,1,1>: the smaller (seq,
  // gid) executes first (paper Lemma V.4 example e_{2,5} vs e_{3,4}).
  VtsHarness h(3);
  // Heads: (0,0),(1,0),(2,0) — all seq 0. Give all of them full VTS <0,0,0>
  // by cross-stamping with ts=0, then the tie-break (seq equal) uses gid.
  for (uint64_t seq : {0, 1})
    for (int assigner = 0; assigner < 3; ++assigner)
      for (int target = 0; target < 3; ++target)
        if (assigner != target)
          h.engine.OnTimestamp(assigner, target, seq, seq);
  for (uint64_t seq : {0, 1}) {
    h.MakeAvailable(0, seq);
    h.MakeAvailable(1, seq);
    h.MakeAvailable(2, seq);
  }
  // The tail entry may stay blocked pending future timestamps (inference
  // cannot decide against a virtual head), but the tie-broken prefix is
  // fixed: identical VTSs execute in (seq, gid) order.
  ASSERT_GE(h.executed.size(), 5u);
  EXPECT_EQ(h.executed[0], (std::pair<uint16_t, uint64_t>{0, 0}));
  EXPECT_EQ(h.executed[1], (std::pair<uint16_t, uint64_t>{1, 0}));
  EXPECT_EQ(h.executed[2], (std::pair<uint16_t, uint64_t>{2, 0}));
  EXPECT_EQ(h.executed[3], (std::pair<uint16_t, uint64_t>{0, 1}));
  EXPECT_EQ(h.executed[4], (std::pair<uint16_t, uint64_t>{1, 1}));
}

TEST(VtsOrderingTest, MonotonicPerGroup) {
  // Lemma V.5: entries of one group always execute in sequence order.
  VtsHarness h(2);
  Rng rng(7);
  for (uint64_t s = 0; s < 20; ++s) {
    h.MakeAvailable(0, s);
    h.MakeAvailable(1, s);
  }
  // Random but per-assigner-monotone stamping.
  uint64_t clk0 = 0, clk1 = 0;
  for (uint64_t s = 0; s < 20; ++s) {
    h.engine.OnTimestamp(0, 1, s, ++clk0);
    h.engine.OnTimestamp(1, 0, s, ++clk1);
  }
  std::map<uint16_t, uint64_t> next;
  for (auto& [g, s] : h.executed) {
    EXPECT_EQ(s, next[g]) << "group " << g;
    next[g] = s + 1;
  }
  EXPECT_GE(h.executed.size(), 30u);
}

/// Agreement property: two engines fed the same timestamp events in
/// different (valid) orders execute identical sequences.
class VtsAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VtsAgreementTest, PermutedDeliveryYieldsSameOrder) {
  const int kGroups = 3;
  const uint64_t kEntries = 12;

  // Build a ground-truth event set simulating per-group clocks:
  // group g's entry s gets stamped by every other group j with a clock
  // value that is non-decreasing in j's stamping order.
  struct Event {
    uint16_t assigner, target;
    uint64_t seq, ts;
  };
  std::vector<Event> events;
  Rng gen(GetParam());
  // Interleave proposals randomly, then stamp in that interleaved order.
  std::vector<std::pair<uint16_t, uint64_t>> proposals;
  for (int g = 0; g < kGroups; ++g)
    for (uint64_t s = 0; s < kEntries; ++s)
      proposals.push_back({static_cast<uint16_t>(g), s});
  // Random interleave preserving per-group order.
  std::vector<std::pair<uint16_t, uint64_t>> order;
  std::vector<uint64_t> next(kGroups, 0);
  while (order.size() < proposals.size()) {
    int g = static_cast<int>(gen.NextBelow(kGroups));
    if (next[g] < kEntries) order.push_back({static_cast<uint16_t>(g), next[g]++});
  }
  std::vector<uint64_t> clk(kGroups, 0);
  for (auto& [g, s] : order) {
    for (int j = 0; j < kGroups; ++j) {
      if (j == g) continue;
      events.push_back({static_cast<uint16_t>(j), g, s, clk[j]});
    }
    clk[g] = s + 1;  // Proposer's clock advances on its own commit.
  }

  // Deliver to two engines in different permutations that respect
  // per-assigner order (each group's raft instance delivers its
  // timestamps in order).
  auto run = [&](uint64_t seed) {
    VtsHarness h(kGroups);
    for (int g = 0; g < kGroups; ++g)
      for (uint64_t s = 0; s < kEntries; ++s)
        h.available.insert({static_cast<uint16_t>(g), s});
    std::vector<size_t> idx(kGroups, 0);
    // Per-assigner queues.
    std::vector<std::vector<Event>> queues(kGroups);
    for (const Event& e : events) queues[e.assigner].push_back(e);
    Rng perm(seed);
    size_t remaining = events.size();
    while (remaining > 0) {
      int a = static_cast<int>(perm.NextBelow(kGroups));
      if (idx[a] >= queues[a].size()) continue;
      const Event& e = queues[a][idx[a]++];
      h.engine.OnTimestamp(e.assigner, e.target, e.seq, e.ts);
      --remaining;
    }
    h.engine.Poke();
    return h.executed;
  };

  Executed a = run(1111);
  Executed b = run(9999);
  size_t common = std::min(a.size(), b.size());
  EXPECT_GT(common, 0u);
  for (size_t i = 0; i < common; ++i)
    EXPECT_EQ(a[i], b[i]) << "diverged at " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, VtsAgreementTest,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));

// --------------------------------------------------------- Round ordering

struct RoundHarness {
  explicit RoundHarness(int num_groups)
      : engine(num_groups,
               RoundOrderingEngine::Callbacks{
                   [this](uint16_t g, uint64_t s) {
                     return available.count({g, s}) > 0;
                   },
                   [this](uint16_t g, uint64_t s) {
                     executed.push_back({g, s});
                   }}) {}
  void MakeAvailable(uint16_t g, uint64_t s) {
    available.insert({g, s});
    engine.Poke();
  }
  std::set<std::pair<uint16_t, uint64_t>> available;
  Executed executed;
  RoundOrderingEngine engine;
};

TEST(RoundOrderingTest, RoundWaitsForAllGroups) {
  RoundHarness h(3);
  h.MakeAvailable(0, 0);
  h.MakeAvailable(2, 0);
  EXPECT_TRUE(h.executed.empty());  // Group 1 missing: the Fig 2 stall.
  h.MakeAvailable(1, 0);
  EXPECT_EQ(h.executed, (Executed{{0, 0}, {1, 0}, {2, 0}}));
}

TEST(RoundOrderingTest, FastGroupLimitedBySlowGroup) {
  RoundHarness h(2);
  // Group 0 completes rounds 0..4; group 1 only round 0.
  for (uint64_t s = 0; s < 5; ++s) h.MakeAvailable(0, s);
  h.MakeAvailable(1, 0);
  EXPECT_EQ(h.executed.size(), 2u);  // Only round 0 executed.
  EXPECT_EQ(h.engine.current_round(), 1u);
}

TEST(RoundOrderingTest, GidOrderWithinRound) {
  RoundHarness h(3);
  h.MakeAvailable(2, 0);
  h.MakeAvailable(1, 0);
  h.MakeAvailable(0, 0);
  EXPECT_EQ(h.executed, (Executed{{0, 0}, {1, 0}, {2, 0}}));
}

TEST(RoundOrderingTest, ExcludedGroupUnblocksRounds) {
  RoundHarness h(3);
  h.MakeAvailable(0, 0);
  h.MakeAvailable(2, 0);
  EXPECT_TRUE(h.executed.empty());
  h.engine.ExcludeGroup(1);
  EXPECT_EQ(h.executed, (Executed{{0, 0}, {2, 0}}));
}

TEST(RoundOrderingTest, MultipleRoundsExecuteInOrder) {
  RoundHarness h(2);
  for (uint64_t s = 0; s < 3; ++s) {
    h.MakeAvailable(0, s);
    h.MakeAvailable(1, s);
  }
  EXPECT_EQ(h.executed,
            (Executed{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0, 2}, {1, 2}}));
  EXPECT_EQ(h.engine.executed_count(), 6u);
}

// --------------------------------------------------------- Epoch ordering

struct EpochHarness {
  explicit EpochHarness(int num_groups)
      : engine(num_groups,
               EpochOrderingEngine::Callbacks{
                   [this](uint16_t g, uint64_t s) {
                     return available.count({g, s}) > 0;
                   },
                   [this](uint16_t g, uint64_t s) {
                     executed.push_back({g, s});
                   }}) {}
  void MakeAvailable(uint16_t g, uint64_t s) {
    available.insert({g, s});
    engine.Poke();
  }
  std::set<std::pair<uint16_t, uint64_t>> available;
  Executed executed;
  EpochOrderingEngine engine;
};

TEST(EpochOrderingTest, EpochWaitsForAllMarkers) {
  EpochHarness h(2);
  h.MakeAvailable(0, 0);
  h.MakeAvailable(0, 1);
  h.MakeAvailable(1, 0);
  h.engine.OnEpochSealed(0, 0, 0, 2);
  EXPECT_TRUE(h.executed.empty());  // Group 1's marker missing.
  h.engine.OnEpochSealed(1, 0, 0, 1);
  EXPECT_EQ(h.executed, (Executed{{0, 0}, {0, 1}, {1, 0}}));
  EXPECT_EQ(h.engine.current_epoch(), 1u);
}

TEST(EpochOrderingTest, EmptyEpochsAdvance) {
  EpochHarness h(2);
  h.engine.OnEpochSealed(0, 0, 0, 0);
  h.engine.OnEpochSealed(1, 0, 0, 0);
  EXPECT_EQ(h.engine.current_epoch(), 1u);
  EXPECT_TRUE(h.executed.empty());
}

TEST(EpochOrderingTest, EpochBlockedOnUnavailableEntry) {
  EpochHarness h(2);
  h.MakeAvailable(0, 0);
  h.engine.OnEpochSealed(0, 0, 0, 1);
  h.engine.OnEpochSealed(1, 0, 0, 1);
  EXPECT_TRUE(h.executed.empty());  // (1,0) not yet replicated.
  h.MakeAvailable(1, 0);
  EXPECT_EQ(h.executed.size(), 2u);
}

TEST(EpochOrderingTest, ConsecutiveEpochsCarrySequenceRanges) {
  EpochHarness h(1);
  for (uint64_t s = 0; s < 5; ++s) h.MakeAvailable(0, s);
  h.engine.OnEpochSealed(0, 0, 0, 2);
  EXPECT_EQ(h.executed.size(), 2u);
  h.engine.OnEpochSealed(0, 1, 2, 3);
  EXPECT_EQ(h.executed.size(), 5u);
  EXPECT_EQ(h.executed.back(), (std::pair<uint16_t, uint64_t>{0, 4}));
}

}  // namespace
}  // namespace massbft
