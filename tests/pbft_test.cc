#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "consensus/pbft/certifier.h"
#include "consensus/pbft/pbft.h"
#include "crypto/signature.h"
#include "proto/entry.h"

namespace massbft {
namespace {

/// In-memory LAN bus for one group: queued FIFO delivery, droppable nodes,
/// plus simple virtual timers.
class GroupBus {
 public:
  explicit GroupBus(int n) : n_(n) {
    for (int i = 0; i < n; ++i)
      registry.RegisterNode(NodeId{0, static_cast<uint16_t>(i)});
  }

  using Handler = std::function<void(NodeId from, const MessagePtr&)>;

  void Register(int index, Handler handler) {
    handlers_[index] = std::move(handler);
  }
  void Drop(int index) { dropped_.insert(index); }
  /// Drops one directed link (partial connectivity scenarios).
  void DropLink(int from, int to) { dropped_links_.insert({from, to}); }

  void Broadcast(int from, MessagePtr msg) {
    for (int i = 0; i < n_; ++i)
      if (i != from) Send(from, i, msg);
  }
  void Send(int from, int to, MessagePtr msg) {
    if (dropped_.count(from) > 0 || dropped_.count(to) > 0) return;
    if (dropped_links_.count({from, to}) > 0) return;
    queue_.push_back({from, to, std::move(msg)});
  }
  void ScheduleTimer(int64_t delay, std::function<void()> fn) {
    timers_.push_back({now_ + delay, std::move(fn)});
  }

  /// Drains the message queue (not timers).
  void Deliver() {
    while (!queue_.empty()) {
      auto [from, to, msg] = std::move(queue_.front());
      queue_.pop_front();
      if (dropped_.count(to) > 0) continue;
      handlers_[to](NodeId{0, static_cast<uint16_t>(from)}, msg);
    }
  }

  /// Advances virtual time, firing due timers, then drains messages.
  void AdvanceTime(int64_t delta) {
    now_ += delta;
    auto due = std::move(timers_);
    timers_.clear();
    for (auto& [at, fn] : due) {
      if (at <= now_) {
        fn();
      } else {
        timers_.push_back({at, std::move(fn)});
      }
    }
    Deliver();
  }

  KeyRegistry registry;

 private:
  struct Queued {
    int from;
    int to;
    MessagePtr msg;
  };
  int n_;
  std::map<int, Handler> handlers_;
  std::set<int> dropped_;
  std::set<std::pair<int, int>> dropped_links_;
  std::deque<Queued> queue_;
  std::vector<std::pair<int64_t, std::function<void()>>> timers_;
  int64_t now_ = 0;
};

struct PbftNode {
  PbftNode(GroupBus* bus, int index, int n, bool instant_validation = true) {
    NodeId self{0, static_cast<uint16_t>(index)};
    PbftEngine::Callbacks cb;
    cb.broadcast = [bus, index](MessagePtr m) {
      bus->Broadcast(index, std::move(m));
    };
    cb.send_to = [bus, index](NodeId dst, MessagePtr m) {
      bus->Send(index, dst.index, std::move(m));
    };
    cb.sign = [bus, self](const Bytes& payload) {
      return bus->registry.Sign(self, payload);
    };
    cb.verify = [bus](NodeId node, const Bytes& payload,
                      const Signature& sig) {
      return bus->registry.Verify(node, payload, sig);
    };
    cb.validate_entry = [this, instant_validation](
                            EntryPtr entry, std::function<void(bool)> done) {
      if (instant_validation) {
        done(true);
      } else {
        pending_validations.push_back(std::move(done));
      }
      (void)entry;
    };
    cb.after = [bus](SimTime delay, std::function<void()> fn) {
      bus->ScheduleTimer(delay, std::move(fn));
    };
    cb.on_committed = [this](EntryPtr entry, Certificate cert) {
      committed.push_back({entry, cert});
    };
    engine = std::make_unique<PbftEngine>(0, self, n, std::move(cb));
  }

  std::unique_ptr<PbftEngine> engine;
  std::vector<std::pair<EntryPtr, Certificate>> committed;
  std::vector<std::function<void(bool)>> pending_validations;
};

EntryPtr MakeEntry(uint64_t seq, int payload = 100) {
  return std::make_shared<const Entry>(
      0, seq,
      std::vector<Transaction>{
          Transaction{seq, 1, 0, Bytes(static_cast<size_t>(payload), 0x11)}});
}

class PbftFixture : public ::testing::Test {
 protected:
  void Init(int n) {
    bus_ = std::make_unique<GroupBus>(n);
    for (int i = 0; i < n; ++i) {
      nodes_.push_back(std::make_unique<PbftNode>(bus_.get(), i, n));
      PbftNode* node = nodes_.back().get();
      bus_->Register(i, [node](NodeId from, const MessagePtr& m) {
        node->engine->OnMessage(from, m);
      });
    }
  }

  std::unique_ptr<GroupBus> bus_;
  std::vector<std::unique_ptr<PbftNode>> nodes_;
};

TEST_F(PbftFixture, AllCorrectNodesCommit) {
  Init(4);
  EntryPtr entry = MakeEntry(0);
  nodes_[0]->engine->Propose(entry);
  bus_->Deliver();
  for (auto& node : nodes_) {
    ASSERT_EQ(node->committed.size(), 1u);
    EXPECT_EQ(node->committed[0].first->digest(), entry->digest());
  }
}

TEST_F(PbftFixture, CertificateHasQuorumAndVerifies) {
  Init(7);  // f = 2, quorum 5.
  EntryPtr entry = MakeEntry(0);
  nodes_[0]->engine->Propose(entry);
  bus_->Deliver();
  ASSERT_FALSE(nodes_[3]->committed.empty());
  const Certificate& cert = nodes_[3]->committed[0].second;
  EXPECT_EQ(static_cast<int>(cert.NumSignatures()), 5);
  EXPECT_TRUE(cert.Verify(bus_->registry, 5));
  EXPECT_EQ(cert.digest, entry->digest());
}

TEST_F(PbftFixture, PipelinedProposalsCommitAll) {
  Init(4);
  for (uint64_t s = 0; s < 10; ++s)
    nodes_[0]->engine->Propose(MakeEntry(s));
  bus_->Deliver();
  for (auto& node : nodes_) EXPECT_EQ(node->committed.size(), 10u);
  EXPECT_EQ(nodes_[0]->engine->committed_count(), 10u);
}

TEST_F(PbftFixture, CommitsDespiteFSilentFollowers) {
  Init(4);  // f = 1.
  bus_->Drop(3);
  nodes_[0]->engine->Propose(MakeEntry(0));
  bus_->Deliver();
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(nodes_[i]->committed.size(), 1u) << "node " << i;
}

TEST_F(PbftFixture, StallsWithMoreThanFFailures) {
  Init(4);
  bus_->Drop(2);
  bus_->Drop(3);
  nodes_[0]->engine->Propose(MakeEntry(0));
  bus_->Deliver();
  for (auto& node : nodes_) EXPECT_TRUE(node->committed.empty());
}

TEST_F(PbftFixture, NonLeaderCannotPrePrepare) {
  Init(4);
  // A Byzantine follower forging a pre-prepare is ignored: votes never
  // form because correct nodes reject non-leader pre-prepares.
  EntryPtr entry = MakeEntry(0);
  Signature sig = bus_->registry.Sign(NodeId{0, 2}, Bytes{1, 2, 3});
  auto forged = std::make_shared<PrePrepareMsg>(0, 0, entry, sig);
  bus_->Broadcast(2, forged);
  bus_->Deliver();
  for (auto& node : nodes_) EXPECT_TRUE(node->committed.empty());
}

TEST_F(PbftFixture, BadSignatureVotesIgnored) {
  Init(4);
  EntryPtr entry = MakeEntry(0);
  // Garbage commit votes should not help reach quorum.
  for (int from = 1; from < 4; ++from) {
    auto vote = std::make_shared<PbftVoteMsg>(
        MessageType::kCommit, 0, 0, entry->digest(), Signature{});
    bus_->Send(from, 0, vote);
  }
  bus_->Deliver();
  EXPECT_TRUE(nodes_[0]->committed.empty());
}

TEST_F(PbftFixture, ViewChangeElectsNextLeaderAndReproposes) {
  Init(4);
  for (auto& node : nodes_)
    node->engine->set_view_change_timeout(100);
  // Partially-connected faulty leader: its pre-prepare reaches nodes 1 and
  // 2 but not 3, and the leader then contributes nothing further. Nodes
  // 1+2 reach the 2f+1 prepare quorum (pre-prepare counts as the leader's
  // vote) but the commit quorum stalls at 2 of 3 — the classic stuck
  // instance that view change must resolve.
  bus_->DropLink(0, 3);
  nodes_[0]->engine->Propose(MakeEntry(0));
  bus_->Drop(0);  // Leader contributes nothing beyond the pre-prepare.
  bus_->Deliver();
  EXPECT_TRUE(nodes_[1]->committed.empty());

  bus_->AdvanceTime(150);  // Followers' timers fire; view-change votes flow.
  bus_->AdvanceTime(150);  // Echo amplification + NEW-VIEW + re-propose.
  bus_->AdvanceTime(150);
  EXPECT_GE(nodes_[1]->engine->view(), 1u);
  EXPECT_EQ(nodes_[1]->engine->leader_index(),
            static_cast<int>(nodes_[1]->engine->view() % 4));
  // The new leader re-proposed the unfinished entry; correct nodes commit.
  EXPECT_GE(nodes_[1]->committed.size(), 1u);
  EXPECT_GE(nodes_[2]->committed.size(), 1u);
  EXPECT_GE(nodes_[3]->committed.size(), 1u);
}

TEST_F(PbftFixture, ValidationGateBlocksPrepare) {
  // Followers only vote after entry validation completes (per-transaction
  // signature checks in the real node).
  bus_ = std::make_unique<GroupBus>(4);
  for (int i = 0; i < 4; ++i) {
    nodes_.push_back(std::make_unique<PbftNode>(
        bus_.get(), i, 4, /*instant_validation=*/i == 0));
    PbftNode* node = nodes_.back().get();
    bus_->Register(i, [node](NodeId from, const MessagePtr& m) {
      node->engine->OnMessage(from, m);
    });
  }
  nodes_[0]->engine->Propose(MakeEntry(0));
  bus_->Deliver();
  EXPECT_TRUE(nodes_[1]->committed.empty());
  // Release validations.
  for (int i = 1; i < 4; ++i) {
    for (auto& done : nodes_[i]->pending_validations) done(true);
    nodes_[i]->pending_validations.clear();
  }
  bus_->Deliver();
  for (auto& node : nodes_) EXPECT_EQ(node->committed.size(), 1u);
}

// -------------------------------------------------------- DigestCertifier

struct CertifierNode {
  CertifierNode(GroupBus* bus, int index, int n) {
    NodeId self{0, static_cast<uint16_t>(index)};
    DigestCertifier::Callbacks cb;
    cb.broadcast = [bus, index](MessagePtr m) {
      bus->Broadcast(index, std::move(m));
    };
    cb.send_to = [bus, index](NodeId dst, MessagePtr m) {
      bus->Send(index, dst.index, std::move(m));
    };
    cb.sign = [bus, self](const Bytes& payload) {
      return bus->registry.Sign(self, payload);
    };
    cb.verify = [bus](NodeId node, const Bytes& payload,
                      const Signature& sig) {
      return bus->registry.Verify(node, payload, sig);
    };
    cb.can_sign = [this](const DecisionId&) { return can_sign; };
    cb.on_certified = [this](const DecisionId& decision, Certificate cert) {
      certified.push_back({decision, std::move(cert)});
    };
    certifier = std::make_unique<DigestCertifier>(0, self, n, std::move(cb));
  }

  std::unique_ptr<DigestCertifier> certifier;
  bool can_sign = true;
  std::vector<std::pair<DecisionId, Certificate>> certified;
};

class CertifierFixture : public ::testing::Test {
 protected:
  void Init(int n) {
    bus_ = std::make_unique<GroupBus>(n);
    for (int i = 0; i < n; ++i) {
      nodes_.push_back(std::make_unique<CertifierNode>(bus_.get(), i, n));
      CertifierNode* node = nodes_.back().get();
      bus_->Register(i, [node](NodeId from, const MessagePtr& m) {
        node->certifier->OnMessage(from, m);
      });
    }
  }

  DecisionId Decision() {
    return DecisionId{DigestCertifier::kAccept, 0, 1, 7, 42};
  }

  std::unique_ptr<GroupBus> bus_;
  std::vector<std::unique_ptr<CertifierNode>> nodes_;
};

TEST_F(CertifierFixture, CertifiesWithQuorum) {
  Init(4);
  nodes_[0]->certifier->Start(Decision());
  bus_->Deliver();
  ASSERT_EQ(nodes_[0]->certified.size(), 1u);
  const Certificate& cert = nodes_[0]->certified[0].second;
  EXPECT_EQ(static_cast<int>(cert.NumSignatures()), 3);
  Digest digest = DigestCertifier::DecisionDigest(Decision());
  EXPECT_EQ(cert.digest, digest);
  EXPECT_TRUE(cert.Verify(bus_->registry, 3));
}

TEST_F(CertifierFixture, DeferredVotesFlowAfterRecheck) {
  Init(4);
  // Followers refuse (entry payload missing, Lemma V.1 gate).
  for (int i = 1; i < 4; ++i) nodes_[i]->can_sign = false;
  nodes_[0]->certifier->Start(Decision());
  bus_->Deliver();
  EXPECT_TRUE(nodes_[0]->certified.empty());
  // Payload arrives on followers.
  for (int i = 1; i < 4; ++i) {
    nodes_[i]->can_sign = true;
    nodes_[i]->certifier->RecheckPending();
  }
  bus_->Deliver();
  EXPECT_EQ(nodes_[0]->certified.size(), 1u);
}

TEST_F(CertifierFixture, DistinctDecisionsDistinctDigests) {
  DecisionId a{DigestCertifier::kAccept, 0, 1, 7, 42};
  DecisionId b{DigestCertifier::kAccept, 0, 1, 7, 43};
  DecisionId c{DigestCertifier::kCommitDecision, 0, 1, 7, 42};
  EXPECT_NE(DigestCertifier::DecisionDigest(a),
            DigestCertifier::DecisionDigest(b));
  EXPECT_NE(DigestCertifier::DecisionDigest(a),
            DigestCertifier::DecisionDigest(c));
}

TEST_F(CertifierFixture, ToleratesFSilentNodes) {
  Init(7);  // f=2, quorum 5.
  bus_->Drop(5);
  bus_->Drop(6);
  nodes_[0]->certifier->Start(Decision());
  bus_->Deliver();
  EXPECT_EQ(nodes_[0]->certified.size(), 1u);
}

TEST_F(CertifierFixture, DuplicateStartIdempotent) {
  Init(4);
  nodes_[0]->certifier->Start(Decision());
  nodes_[0]->certifier->Start(Decision());
  bus_->Deliver();
  EXPECT_EQ(nodes_[0]->certified.size(), 1u);
}

}  // namespace
}  // namespace massbft
