#!/usr/bin/env python3
"""massbft_lint: project-specific determinism & status-discipline checks.

The reproduction's experimental claim (Figures 8-15 regenerated from
fixed-seed runs) rests on two properties nothing else enforces:

  * bit-identical simulation across machines and standard-library
    implementations (no wall clock, no hash-order dependence), and
  * no silently dropped error Status on protocol paths.

This linter machine-checks the cheap 80% of that (DESIGN.md §11). Rules:

  D1 wallclock        No wall-clock / ambient nondeterminism in protocol &
                      sim code: time(), std::chrono::system_clock /
                      steady_clock, rand(), srand(), std::random_device.
  D2 unordered-iter   No iteration over unordered containers in
                      src/{consensus,ordering,replication,proto,sim,
                      crypto,db}: iteration order is hash-seed dependent
                      and leaks
                      into observable results. Iterate a sorted view, use
                      std::map, or suppress with a reason.
  D3 kernel-oracle    Every SIMD dispatch site (a file calling
                      GetCpuFeatures()) must keep a scalar-oracle twin in
                      the same kernel family and a tests/ property test
                      referencing family + scalar oracle (DESIGN.md §10).
  D4 nodiscard        Status and Result<T> must be declared
                      [[nodiscard]], and factory/decoder/verifier APIs
                      (Decode*/Verify*/Make*/Create*/Build*/Parse*)
                      declared in src/ headers must carry [[nodiscard]].
  D6 mutex-guard      Concurrency state in src/ must be visible to clang
                      thread-safety analysis (DESIGN.md §16): no bare
                      std::mutex members (declare RankedMutex with a
                      LockRank instead), every RankedMutex must be named
                      by at least one MASSBFT_* annotation in its file,
                      and every condition_variable member needs a nearby
                      comment naming the mutex it is signaled under.
  D7 bare-lock        No bare .lock()/.unlock()/.try_lock() calls in
                      src/: locking goes through the MutexLock RAII guard
                      (common/lock_rank.h), so every acquisition is
                      annotation-checked and rank-checked and no error
                      path can leak a held lock.

Suppressions (must carry a non-empty reason; unused suppressions are
themselves findings so stale ones cannot accumulate):

  ... flagged code ...   // lint: <rule>-ok(<reason>)      same line
  // lint: <rule>-ok(<reason>)                              line above
  // lint-file: <rule>-ok(<reason>)                         whole file

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import os
import re
import sys

RULES = {
    "wallclock": "D1",
    "unordered-iter": "D2",
    "kernel-oracle": "D3",
    "nodiscard": "D4",
    "unused-suppression": "D5",
    "mutex-guard": "D6",
    "bare-lock": "D7",
}

# Directory policy table (prefix match, relative to the repo root): which
# determinism rules bind in which part of the tree. The codebase is split
# at an explicit determinism boundary (DESIGN.md §12):
#
#   * Deterministic dirs must replay bit-identically under the discrete-
#     event simulator: D1 (no wall clock / ambient nondeterminism) binds,
#     and — where iteration order could leak into observable results
#     (protocol dirs, the signature store, kv snapshots/scans) — D2 too.
#   * Real-time dirs exist to touch the OS: the socket transport and the
#     threaded node runtime (src/net, src/runtime) schedule with the wall
#     clock, condition variables and poll() by design. D1/D2 are exempt
#     there *by policy, not by omission*; status discipline (D4) still
#     binds everywhere under src/.
#
# Every src/ directory must appear here so a new subsystem makes its
# determinism contract explicit. Entries are matched first-wins and may
# also name a single file stem (path without extension, covering the .h/.cc
# pair): src/obs is deterministic as a whole, but its two wall-clock
# bridges — the process trace clock and the stats server — exist to touch
# the OS and are exempted *here*, by policy, instead of accreting per-line
# suppressions.
DIR_POLICY = [
    # (dir prefix or file stem, D1 wallclock binds, D2 unordered-iter binds)
    ("src/common",      True,  False),
    # Real-time bridges inside the otherwise-deterministic obs layer: the
    # wall-clock anchor every real-mode trace hangs off, and the localhost
    # introspection server (sockets + poll timeouts).
    ("src/obs/trace_clock",   False, False),
    ("src/obs/stats_server",  False, False),
    ("src/obs",         True,  False),
    ("src/consensus",   True,  True),
    ("src/ordering",    True,  True),
    ("src/replication", True,  True),
    ("src/proto",       True,  True),
    ("src/sim",         True,  True),
    ("src/core",        True,  False),
    ("src/crypto",      True,  True),
    ("src/ec",          True,  False),
    ("src/db",          True,  True),
    ("src/workload",    True,  False),
    # Real-time boundary: wall clock is these dirs' job.
    ("src/net",         False, False),
    ("src/runtime",     False, False),
]


def dir_policy(relpath):
    """(d1_binds, d2_binds) for a path; rules off outside listed dirs.
    First matching entry wins: a file-stem entry (matching the path with
    its extension stripped) must precede its directory's entry."""
    stem = os.path.splitext(relpath)[0]
    for prefix, d1, d2 in DIR_POLICY:
        if relpath == prefix or stem == prefix or \
           relpath.startswith(prefix + "/"):
            return d1, d2
    return False, False
SCAN_DIRS = ("src", "bench", "tests")
CXX_EXTENSIONS = (".h", ".cc", ".cpp", ".hpp")

# D1: each pattern bans one source of ambient nondeterminism.
D1_PATTERNS = [
    (re.compile(r"(?<![A-Za-z0-9_:.>])time\s*\("), "wall-clock time()"),
    (re.compile(r"std::chrono::system_clock"), "std::chrono::system_clock"),
    (re.compile(r"std::chrono::steady_clock"), "std::chrono::steady_clock"),
    (re.compile(r"(?<![A-Za-z0-9_:.>])rand\s*\(\s*\)"), "rand()"),
    (re.compile(r"(?<![A-Za-z0-9_:.>])srand\s*\("), "srand()"),
    (re.compile(r"std::random_device"), "std::random_device"),
]

UNORDERED_DECL_RE = re.compile(
    r"\b(?:std::)?(unordered_map|unordered_set|unordered_multimap|"
    r"unordered_multiset)\s*<")
# `Type name_;` or `Type name;` tail of a member/variable declaration.
DECL_NAME_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)\s*(?:=[^;]*)?;")
RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*(?:const\s+)?[^;:)]*?:\s*(?:\*?\s*)?"
    r"(?:this->)?([A-Za-z_][A-Za-z0-9_]*)\s*\)")
# Only begin() starts a walk; a bare `it != m.end()` after find() is an
# order-independent membership check and stays legal.
BEGIN_ITER_RE = re.compile(
    r"\b(?:this->)?([A-Za-z_][A-Za-z0-9_]*)\s*\.\s*c?r?begin\s*\(")

SUPPRESS_RE = re.compile(r"//\s*lint:\s*([a-z-]+)-ok\(([^)]*)\)")
FILE_SUPPRESS_RE = re.compile(r"//\s*lint-file:\s*([a-z-]+)-ok\(([^)]*)\)")

# D4: a declaration line in a header introducing Decode*/Verify*/... with a
# return type before the name. Statement-ish lines are filtered separately.
FACTORY_DECL_RE = re.compile(
    r"^(?:\[\[nodiscard\]\]\s+)?"
    r"(?:(?:static|virtual|constexpr|inline|friend|explicit)\s+)*"
    r"(?:\[\[nodiscard\]\]\s+)?"
    r"[A-Za-z_][A-Za-z0-9_:<>,&*\s]*?[\s&*]"
    r"((?:Decode|Verify|Make|Create|Build|Parse)[A-Za-z0-9_]*)\s*\(")
NODISCARD_CLASS_RE = re.compile(
    r"\bclass\s+\[\[nodiscard\]\]\s+(Status|Result)\b")
PLAIN_CLASS_RE = re.compile(r"\bclass\s+(Status|Result)\b")

# D6: mutex-ish declarations. `std::mutex name;` (any std mutex flavour)
# is flagged outright — libstdc++ mutexes carry no capability attributes,
# so clang's analysis cannot see data they guard. RankedMutex declarations
# are collected and required to appear in >= 1 MASSBFT_* annotation.
PLAIN_MUTEX_DECL_RE = re.compile(
    r"\b(?:std::)?((?:recursive_|timed_|shared_)?mutex)\s+"
    r"([A-Za-z_][A-Za-z0-9_]*)\s*[;{=]")
RANKED_MUTEX_DECL_RE = re.compile(
    r"\bRankedMutex\s+([A-Za-z_][A-Za-z0-9_]*)\s*[;{(=]")
CONDVAR_DECL_RE = re.compile(
    r"\b(?:std::)?condition_variable(?:_any)?\s+"
    r"([A-Za-z_][A-Za-z0-9_]*)\s*[;{=]")
# D7: member access followed by a raw lock-protocol call. The identifier
# set is exact (lock/unlock/try_lock), so `.Clock()` / `.block()` cannot
# match.
BARE_LOCK_RE = re.compile(r"(?:\.|->)\s*(try_lock|unlock|lock)\s*\(\s*\)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s/%s] %s" % (
            self.path, self.line, RULES[self.rule], self.rule, self.message)


class FileContext:
    """One parsed source file: lines, comment-stripped lines, suppressions."""

    def __init__(self, root, relpath):
        self.relpath = relpath
        with open(os.path.join(root, relpath), encoding="utf-8",
                  errors="replace") as f:
            self.lines = f.read().splitlines()
        self.code = [strip_comments_and_strings(l) for l in self.lines]
        # rule -> set of 1-based line numbers the suppression covers.
        self.suppressions = {}
        # (line, rule) -> used flag, for the unused-suppression rule.
        self.suppression_sites = {}
        self.file_suppressions = set()
        self.bad_suppressions = []
        for i, line in enumerate(self.lines, start=1):
            for m in FILE_SUPPRESS_RE.finditer(line):
                rule, reason = m.group(1), m.group(2).strip()
                if rule not in RULES:
                    self.bad_suppressions.append(
                        (i, "unknown rule '%s' in lint-file suppression" % rule))
                elif not reason:
                    self.bad_suppressions.append(
                        (i, "lint-file suppression for '%s' needs a reason"
                         % rule))
                else:
                    self.file_suppressions.add(rule)
            for m in SUPPRESS_RE.finditer(line):
                rule, reason = m.group(1), m.group(2).strip()
                if rule not in RULES:
                    self.bad_suppressions.append(
                        (i, "unknown rule '%s' in lint suppression" % rule))
                    continue
                if not reason:
                    self.bad_suppressions.append(
                        (i, "lint suppression for '%s' needs a reason" % rule))
                    continue
                # A suppression comment covers its own line and the next
                # line carrying code (so it can sit above the flagged code,
                # even as part of a multi-line explanatory comment).
                j = i + 1
                while j <= len(self.code) and not self.code[j - 1].strip():
                    j += 1
                covered = self.suppressions.setdefault(rule, {})
                covered[i] = i
                covered[j] = i
                self.suppression_sites[(i, rule)] = False

    def suppressed(self, rule, line):
        if rule in self.file_suppressions:
            return True
        covered = self.suppressions.get(rule, {})
        if line in covered:
            self.suppression_sites[(covered[line], rule)] = True
            return True
        return False


def strip_comments_and_strings(line):
    """Removes // comments and the contents of string/char literals so rule
    regexes cannot match inside them. Block comments are rare in this
    codebase (doc comments use ///); a line-local approximation suffices and
    keeps the linter trivially fast."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def check_d1_wallclock(ctx, findings):
    if not dir_policy(ctx.relpath)[0]:
        return
    for i, code in enumerate(ctx.code, start=1):
        for pattern, what in D1_PATTERNS:
            if pattern.search(code) and not ctx.suppressed("wallclock", i):
                findings.append(Finding(
                    ctx.relpath, i, "wallclock",
                    "%s is wall-clock/ambient nondeterminism; use SimTime / "
                    "the seeded Rng (suppress: // lint: wallclock-ok(why))"
                    % what))


def collect_unordered_names(contexts):
    """Names of variables/members declared with an unordered container
    anywhere in the tree. Iteration sites are then flagged by name in the
    D2-scoped directories — cross-file, so a member declared in network.h
    is caught when iterated in network.cc."""
    names = set()
    for ctx in contexts.values():
        for code in ctx.code:
            if not UNORDERED_DECL_RE.search(code):
                continue
            # The declared name is the identifier right before the final ';'
            # (handles `std::unordered_map<K, V> states_;` incl. defaults).
            tail = code[code.rindex(">") + 1:] if ">" in code else code
            m = DECL_NAME_RE.search(tail)
            if m:
                names.add(m.group(1))
    return names


def check_d2_unordered_iter(ctx, unordered_names, findings):
    if not dir_policy(ctx.relpath)[1]:
        return
    for i, code in enumerate(ctx.code, start=1):
        hits = []
        m = RANGE_FOR_RE.search(code)
        if m and m.group(1) in unordered_names:
            hits.append(("range-for over", m.group(1)))
        for m in BEGIN_ITER_RE.finditer(code):
            if m.group(1) in unordered_names:
                hits.append(("iterator walk of", m.group(1)))
        for verb, name in hits:
            if ctx.suppressed("unordered-iter", i):
                continue
            findings.append(Finding(
                ctx.relpath, i, "unordered-iter",
                "%s unordered container '%s': iteration order is hash-"
                "dependent and can leak into results; iterate a sorted "
                "view or use std::map (suppress: // lint: "
                "unordered-iter-ok(why))" % (verb, name)))
            break  # one finding per line is enough


def kernel_family(relpath):
    return os.path.splitext(os.path.basename(relpath))[0]


def check_d3_kernel_oracle(contexts, findings):
    """Dispatch sites call GetCpuFeatures(). For each dispatching family
    (file basename), require a scalar twin in the family sources and a
    tests/ file exercising <family> together with the scalar oracle."""
    dispatch_sites = {}  # family -> (relpath, line)
    for relpath, ctx in contexts.items():
        if not relpath.startswith("src/"):
            continue
        for i, code in enumerate(ctx.code, start=1):
            if "GetCpuFeatures" in code and "const CpuFeatures&" not in code:
                dispatch_sites.setdefault(kernel_family(relpath), (relpath, i))
    # cpu.cc defines the detector itself, not a kernel family.
    dispatch_sites.pop("cpu", None)

    scalar_re = re.compile(r"[Ss]calar")
    for family, (relpath, line) in sorted(dispatch_sites.items()):
        ctx = contexts[relpath]
        if ctx.suppressed("kernel-oracle", line) or \
           "kernel-oracle" in ctx.file_suppressions:
            continue
        family_files = [c for p, c in contexts.items()
                        if p.startswith("src/") and kernel_family(p) == family]
        has_oracle = any(scalar_re.search(l)
                         for c in family_files for l in c.code)
        if not has_oracle:
            findings.append(Finding(
                relpath, line, "kernel-oracle",
                "SIMD dispatch in family '%s' has no scalar-oracle twin "
                "(no [Ss]calar symbol in %s.*); every fast path needs a "
                "portable cross-check kernel (DESIGN.md §10)"
                % (family, family)))
            continue
        family_re = re.compile(r"\b%s\b" % re.escape(family), re.IGNORECASE)
        tested = any(
            any(family_re.search(l) for l in c.code) and
            any(scalar_re.search(l) for l in c.code)
            for p, c in contexts.items() if p.startswith("tests/"))
        if not tested:
            findings.append(Finding(
                relpath, line, "kernel-oracle",
                "SIMD dispatch in family '%s' has no tests/ property test "
                "referencing both the family and its scalar oracle "
                "(DESIGN.md §10 contract)" % family))


def check_d4_nodiscard(ctx, findings):
    if not ctx.relpath.startswith("src/") or \
       not ctx.relpath.endswith((".h", ".hpp")):
        return
    base = os.path.basename(ctx.relpath)
    if base in ("status.h", "result.h"):
        for i, code in enumerate(ctx.code, start=1):
            m = PLAIN_CLASS_RE.search(code)
            if m and not NODISCARD_CLASS_RE.search(code) and \
               not ctx.suppressed("nodiscard", i):
                findings.append(Finding(
                    ctx.relpath, i, "nodiscard",
                    "class %s must be declared `class [[nodiscard]] %s`: "
                    "dropping it drops an error (rule D4)"
                    % (m.group(1), m.group(1))))
    for i, code in enumerate(ctx.code, start=1):
        stripped = code.strip()
        # Filter statements/expressions: calls, assignments, control flow.
        if not stripped or stripped.startswith(("return", "if", "for",
                                                "while", "switch", "case",
                                                "#", "}", "using")):
            continue
        if "=" in stripped.split("(")[0]:
            continue
        m = FACTORY_DECL_RE.match(stripped)
        if not m:
            continue
        if "[[nodiscard]]" in stripped:
            continue
        # Declarations returning void (EncodeTo-style sinks) are exempt.
        if re.match(r"^(?:(?:static|virtual|inline)\s+)*void[\s&*]", stripped):
            continue
        if ctx.suppressed("nodiscard", i):
            continue
        findings.append(Finding(
            ctx.relpath, i, "nodiscard",
            "factory/decoder/verifier '%s' must be [[nodiscard]]: ignoring "
            "its result swallows an error or a verification verdict "
            "(suppress: // lint: nodiscard-ok(why))" % m.group(1)))


def check_d6_mutex_guard(ctx, findings):
    """Annotation coverage for concurrency state (src/ only; tests and
    benches may use raw std primitives for their own scaffolding)."""
    if not ctx.relpath.startswith("src/"):
        return
    plain, ranked, condvars = [], [], []
    for i, code in enumerate(ctx.code, start=1):
        m = PLAIN_MUTEX_DECL_RE.search(code)
        if m:
            plain.append((i, m.group(1), m.group(2)))
        m = RANKED_MUTEX_DECL_RE.search(code)
        if m:
            ranked.append((i, m.group(1)))
        m = CONDVAR_DECL_RE.search(code)
        if m:
            condvars.append((i, m.group(1)))
    mutex_names = {n for _, n in ranked} | {n for _, _, n in plain}

    for i, flavour, name in plain:
        if ctx.suppressed("mutex-guard", i):
            continue
        findings.append(Finding(
            ctx.relpath, i, "mutex-guard",
            "std::%s '%s' is invisible to thread-safety analysis; declare "
            "it RankedMutex with a LockRank (common/lock_rank.h) so "
            "MASSBFT_GUARDED_BY members are compiler-checked (suppress: "
            "// lint: mutex-guard-ok(why))" % (flavour, name)))
    for i, name in ranked:
        covered = re.compile(r"MASSBFT_[A-Z_]+\([^)]*\b%s\b"
                             % re.escape(name))
        if any(covered.search(code) for code in ctx.code):
            continue
        if ctx.suppressed("mutex-guard", i):
            continue
        findings.append(Finding(
            ctx.relpath, i, "mutex-guard",
            "RankedMutex '%s' guards nothing: annotate the state it "
            "protects MASSBFT_GUARDED_BY(%s) or a method "
            "MASSBFT_REQUIRES(%s) in this file (suppress: // lint: "
            "mutex-guard-ok(why))" % (name, name, name)))
    for i, name in condvars:
        # The decl line or the two raw lines above must name a declared
        # mutex member — the wait-protocol contract a reader needs.
        window = ctx.lines[max(0, i - 3):i]
        documented = any(
            re.search(r"\b%s\b" % re.escape(mx), line)
            for mx in mutex_names for line in window)
        if documented or ctx.suppressed("mutex-guard", i):
            continue
        findings.append(Finding(
            ctx.relpath, i, "mutex-guard",
            "condition_variable '%s' has no comment naming the mutex it "
            "is signaled under; document the wait protocol next to the "
            "declaration (suppress: // lint: mutex-guard-ok(why))" % name))


def check_d7_bare_lock(ctx, findings):
    if not ctx.relpath.startswith("src/"):
        return
    for i, code in enumerate(ctx.code, start=1):
        m = BARE_LOCK_RE.search(code)
        if m and not ctx.suppressed("bare-lock", i):
            findings.append(Finding(
                ctx.relpath, i, "bare-lock",
                "bare .%s() call: scope a MutexLock guard "
                "(common/lock_rank.h) instead — RAII keeps every "
                "acquisition rank-checked and exception-safe (suppress: "
                "// lint: bare-lock-ok(why))" % m.group(1)))


def check_unused_suppressions(ctx, findings):
    for (line, rule), used in sorted(ctx.suppression_sites.items()):
        if not used and rule != "unused-suppression":
            findings.append(Finding(
                ctx.relpath, line, "unused-suppression",
                "suppression for '%s' matches no finding; remove it so "
                "suppressions stay load-bearing" % rule))
    for line, msg in ctx.bad_suppressions:
        findings.append(Finding(ctx.relpath, line, "unused-suppression", msg))


def gather_files(root, explicit_paths):
    rels = []
    if explicit_paths:
        for p in explicit_paths:
            ap = os.path.abspath(p)
            rels.append(os.path.relpath(ap, root))
        return rels
    for d in SCAN_DIRS:
        top = os.path.join(root, d)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    rels.append(os.path.relpath(
                        os.path.join(dirpath, name), root))
    return rels


def run(root, explicit_paths):
    contexts = {}
    for rel in gather_files(root, explicit_paths):
        rel = rel.replace(os.sep, "/")
        contexts[rel] = FileContext(root, rel)

    findings = []
    unordered_names = collect_unordered_names(contexts)
    for ctx in contexts.values():
        check_d1_wallclock(ctx, findings)
        check_d2_unordered_iter(ctx, unordered_names, findings)
        check_d4_nodiscard(ctx, findings)
        check_d6_mutex_guard(ctx, findings)
        check_d7_bare_lock(ctx, findings)
    check_d3_kernel_oracle(contexts, findings)
    for ctx in contexts.values():
        check_unused_suppressions(ctx, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def main(argv):
    parser = argparse.ArgumentParser(
        description="MassBFT determinism, status- and lock-discipline "
                    "linter (rules D1-D7, DESIGN.md §11/§16)")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("paths", nargs="*",
                        help="specific files to lint (default: src/, "
                             "bench/, tests/ under --root)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, rid in sorted(RULES.items(), key=lambda kv: kv[1]):
            print("%s  %s" % (rid, rule))
        return 0

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print("massbft_lint: no such root: %s" % root, file=sys.stderr)
        return 2

    findings = run(root, args.paths)
    for f in findings:
        print(f)
    if findings:
        print("massbft_lint: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
