// Fixture: D4 seeded violation — Status without the class-level
// [[nodiscard]] annotation.
#ifndef FAKE_STATUS_H_
#define FAKE_STATUS_H_

namespace massbft {

class Status {
 public:
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  bool ok_ = true;
};

}  // namespace massbft

#endif  // FAKE_STATUS_H_
