// Fixture: D4 seeded violation — decoder/verifier APIs declared without
// [[nodiscard]].
#ifndef FAKE_BAD_FACTORY_H_
#define FAKE_BAD_FACTORY_H_

namespace massbft {

class Thing {
 public:
  static Thing DecodeThing(const char* data, int len);  // D4: not nodiscard
  bool VerifyThing() const;                             // D4: not nodiscard
};

}  // namespace massbft

#endif  // FAKE_BAD_FACTORY_H_
