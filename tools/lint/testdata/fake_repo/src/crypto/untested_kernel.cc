// Fixture: D3 seeded violation — the family has a scalar oracle but no
// tests/ property test references family + oracle together.
namespace massbft {

struct CpuFeatures { bool avx2 = false; };
const CpuFeatures& GetCpuFeatures();

void KernelScalar();
void KernelAvx2();

void Dispatch() {
  if (GetCpuFeatures().avx2) {  // D3: scalar twin exists, but untested
    KernelAvx2();
  } else {
    KernelScalar();
  }
}

}  // namespace massbft
