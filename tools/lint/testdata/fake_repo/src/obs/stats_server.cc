// Fixture: file-stem DIR_POLICY entry. src/obs is D1-enforced, but the
// stats server is a real-time bridge exempted by the src/obs/stats_server
// stem entry — its wall-clock use must NOT fire, with no suppression.
#include <chrono>

namespace massbft {
namespace obs {

long UptimeMs() {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

long WallNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace obs
}  // namespace massbft
