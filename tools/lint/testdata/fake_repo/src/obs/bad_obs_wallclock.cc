// Fixture: the src/obs directory entry still binds D1 for files without a
// stem exemption — this neighbor of stats_server.cc must fire.
#include <chrono>

namespace massbft {
namespace obs {

long ObsNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace obs
}  // namespace massbft
