// Fixture: src/runtime is D1-exempt by policy, so a wallclock suppression
// here covers nothing — D5 must flag it as stale instead of letting dead
// suppressions accumulate across the determinism boundary.
#include <chrono>

namespace fake {

long Elapsed() {
  // lint: wallclock-ok(runtime is already exempt; this comment is stale)
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fake
