// Fixture: D1 seeded violations — every banned ambient-nondeterminism
// source in protocol/sim scope.
#include <chrono>
#include <cstdlib>
#include <ctime>

namespace massbft {

double WallSeconds() {
  auto t = std::chrono::system_clock::now();   // D1: system_clock
  (void)t;
  return static_cast<double>(time(nullptr));   // D1: time()
}

int AmbientRandom() {
  srand(42);                                   // D1: srand()
  return rand();                               // D1: rand()
}

}  // namespace massbft
