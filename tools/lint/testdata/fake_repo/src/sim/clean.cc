// Fixture: clean file — legal constructs near every rule's boundary, plus
// one load-bearing suppression. Must produce zero findings.
#include <cstdint>
#include <ctime>
#include <map>
#include <unordered_map>

namespace massbft {

using SimTime = uint64_t;

struct Stats {
  // Ordered map: iteration is deterministic, D2 does not apply.
  std::map<uint32_t, int> per_node_;
  // Unordered map is fine to own and point-query; only iteration is banned.
  std::unordered_map<uint32_t, int> index_;

  int Sum() const {
    int total = 0;
    for (const auto& [id, n] : per_node_) total += n;
    return total;
  }

  int Lookup(uint32_t id) const {
    auto it = index_.find(id);
    return it == index_.end() ? 0 : it->second;  // end() alone: not a walk
  }

  int SumIndex() const {
    int total = 0;
    // lint: unordered-iter-ok(commutative integer sum, order-independent)
    for (const auto& [id, n] : index_) total += n;
    return total;
  }
};

// Identifiers merely containing banned substrings must not fire D1.
SimTime submit_time(SimTime base) { return base + 1; }
int brand(int x) { return x * 2; }

}  // namespace massbft
