// Fixture: D2 seeded violations — iteration over an unordered container in
// protocol/sim scope, both range-for and explicit iterator walk.
#include <cstdint>
#include <unordered_map>

namespace massbft {

struct PendingQueue {
  std::unordered_map<uint32_t, int> pending_;

  int SumRangeFor() const {
    int total = 0;
    for (const auto& [id, n] : pending_) total += n;  // D2: range-for
    return total;
  }

  int SumIterators() const {
    int total = 0;
    for (auto it = pending_.begin(); it != pending_.end(); ++it)  // D2
      total += it->second;
    return total;
  }
};

}  // namespace massbft
