// Fixture: D5 seeded violation — a suppression that matches no finding.
namespace massbft {

// lint: wallclock-ok(left over after the violation was fixed)
int FormerlyUsedWallClock() { return 7; }

}  // namespace massbft
