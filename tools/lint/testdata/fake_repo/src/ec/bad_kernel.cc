// Fixture: D3 seeded violation — a SIMD dispatch site with no scalar-oracle
// twin anywhere in its family.
namespace massbft {

struct CpuFeatures { bool avx2 = false; };
const CpuFeatures& GetCpuFeatures();

int PickKernel() {
  return GetCpuFeatures().avx2 ? 2 : 0;  // D3: no [Ss]calar twin in family
}

}  // namespace massbft
