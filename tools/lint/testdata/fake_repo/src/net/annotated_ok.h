// Fixture: fully annotated concurrency state — D6/D7 must stay silent,
// and the reasoned std::mutex suppression must count as used (no D5).
#ifndef FAKE_ANNOTATED_OK_H_
#define FAKE_ANNOTATED_OK_H_

#include <condition_variable>
#include <mutex>

class AnnotatedOk {
 public:
  void Push(int v) {
    MutexLock lock(&mu_);
    depth_ += v;
    cv_.notify_one();
  }

 private:
  RankedMutex mu_{"fake.queue", LockRank::kRuntimeQueue};
  int depth_ MASSBFT_GUARDED_BY(mu_) = 0;
  /// Signaled under mu_ whenever depth_ grows.
  std::condition_variable_any cv_;
  // lint: mutex-guard-ok(handle passed to a C library expecting pthread)
  std::mutex legacy_mu_;
};

#endif  // FAKE_ANNOTATED_OK_H_
