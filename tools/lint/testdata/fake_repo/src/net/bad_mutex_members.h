// Fixture: every D6 mutex-guard failure mode, one per member.
#ifndef FAKE_BAD_MUTEX_MEMBERS_H_
#define FAKE_BAD_MUTEX_MEMBERS_H_

#include <condition_variable>
#include <mutex>

class BadMutexMembers {
 private:
  // Finding 1: a bare std::mutex member is invisible to thread-safety
  // analysis.
  std::mutex plain_mu_;
  // Finding 2: a RankedMutex that no MASSBFT_* annotation in this file
  // ever names — it guards nothing the compiler can check.
  RankedMutex orphan_mu_{"fake.orphan", LockRank::kTransport};
  // Finding 3: a condition_variable with no comment naming the mutex it
  // is signaled under.
  std::condition_variable_any cv_;
};

#endif  // FAKE_BAD_MUTEX_MEMBERS_H_
