// Fixture: D7 bare-lock — raw lock-protocol calls outside the RAII
// guard, plus one sanctioned (suppressed) call that must stay silent.

void BadBareLock() {
  mu_.lock();
  counter_++;
  mu_.unlock();
}

void SanctionedHandoff() {
  mu_.unlock();  // lint: bare-lock-ok(ownership handed to a C callback)
}
