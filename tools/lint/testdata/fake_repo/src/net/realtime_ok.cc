// Fixture: src/net is a real-time directory in the DIR_POLICY table — the
// transport's job is to touch the OS clock and sockets. Wall-clock use and
// unordered-container iteration here must stay silent (D1/D2 exempt by
// policy, not by omission).
#include <chrono>
#include <unordered_map>

namespace fake {

std::unordered_map<int, int> conns_;

long PollDeadline() {
  auto now = std::chrono::steady_clock::now();
  return now.time_since_epoch().count();
}

int CloseAll() {
  int closed = 0;
  for (const auto& [fd, state] : conns_) closed += fd + state;
  return closed;
}

}  // namespace fake
