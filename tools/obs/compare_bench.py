#!/usr/bin/env python3
"""Diffs a fresh perf-baseline document against a checked-in one and
reports every metric drift, flagging regressions past a relative
tolerance. Stdlib only; the CI perf-smoke leg runs it warn-only (shared
runners are too noisy to gate on), and locally it answers "did my change
move the needle" in one line per metric:

    python3 tools/obs/compare_bench.py BENCH_wire.json bench_wire_new.json
    python3 tools/obs/compare_bench.py old.json new.json --tolerance=0.25
    python3 tools/obs/compare_bench.py old.json new.json --strict

Walks every numeric leaf under "result" present in both documents.
Direction matters: throughput-like metrics (frames_per_sec, *_tps,
mb_per_sec, reuses) regress when they DROP; cost-like metrics (latency,
syscalls-per-frame, allocations, backpressure) regress when they RISE.
Metrics matching neither family are reported but never flagged.

Exit code: always 0 unless --strict, then 1 when any regression exceeds
the tolerance (default 0.20 = 20% relative).
"""

import json
import sys

HIGHER_IS_BETTER = (
    "per_sec", "throughput_tps", "committed_txns", "reuses",
)
LOWER_IS_BETTER = (
    "latency_ms", "syscalls_per_frame", "allocations", "aborted",
    "backpressure", "wan_bytes_per_entry",
)


def numeric_leaves(node, prefix=""):
    """Yields (dotted-path, value) for every numeric leaf under node."""
    if isinstance(node, dict):
        for key in sorted(node):
            yield from numeric_leaves(node[key], prefix + key + ".")
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        yield prefix[:-1] if prefix.endswith(".") else prefix, float(node)


def direction(path):
    leaf = path.rsplit(".", 1)[-1]
    if any(leaf.endswith(s) or s in leaf for s in HIGHER_IS_BETTER):
        return +1
    if any(leaf.endswith(s) or s in leaf for s in LOWER_IS_BETTER):
        return -1
    return 0


def load_result(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    result = doc.get("result")
    if not isinstance(result, dict):
        raise ValueError("%s: no result object (run check_bench_schema.py)"
                         % path)
    return doc.get("bench", "?"), result


def main(argv):
    tolerance = 0.20
    strict = False
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        elif arg == "--strict":
            strict = True
        else:
            paths.append(arg)
    if len(paths) != 2:
        print("usage: compare_bench.py BASELINE.json CURRENT.json "
              "[--tolerance=0.20] [--strict]")
        return 2

    try:
        base_name, base = load_result(paths[0])
        cur_name, cur = load_result(paths[1])
    except (OSError, ValueError) as e:
        print("compare_bench: FAIL: %s" % e)
        return 2
    if base_name != cur_name:
        print("compare_bench: WARN: comparing bench %r against %r"
              % (cur_name, base_name))

    base_leaves = dict(numeric_leaves(base))
    cur_leaves = dict(numeric_leaves(cur))
    regressions = 0
    for path in sorted(base_leaves.keys() & cur_leaves.keys()):
        old, new = base_leaves[path], cur_leaves[path]
        if old == new == 0:
            continue
        # Relative change; a zero baseline with a nonzero current reads
        # as +/-inf, which only matters if the metric is directional.
        delta = (new - old) / abs(old) if old else float("inf")
        sign = direction(path)
        regressed = sign != 0 and sign * delta < -tolerance
        marker = "REGRESSION" if regressed else "ok"
        if regressed or sign != 0:
            print("compare_bench: %-10s %-45s %14.3f -> %14.3f  (%+.1f%%)"
                  % (marker, path, old, new, 100.0 * delta))
        regressions += regressed
    for path in sorted(base_leaves.keys() - cur_leaves.keys()):
        print("compare_bench: WARN: metric gone: %s" % path)

    if regressions:
        print("compare_bench: %d metric(s) regressed beyond %.0f%% vs %s"
              % (regressions, 100.0 * tolerance, paths[0]))
        return 1 if strict else 0
    print("compare_bench: no regressions beyond %.0f%% vs %s"
          % (100.0 * tolerance, paths[0]))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
