#!/usr/bin/env python3
"""Validates a merged cluster trace produced by ClusterTraceMerger
(DESIGN.md §14): structure, per-node Chrome processes, and — the point of
the whole exercise — cross-node flow arrows proving one entry's spans land
on multiple node tracks. Stdlib only; used by the CI observability leg and
runnable by hand:

    python3 tools/obs/check_trace.py trace.json [--min-cross-node-flows N]

Exit code 0 iff every check passes; findings go to stdout.
"""

import argparse
import json
import sys


def fail(msg):
    print("check_trace: FAIL: %s" % msg)
    return 1


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("trace", help="merged Chrome trace JSON")
    parser.add_argument("--min-cross-node-flows", type=int, default=1,
                        help="minimum flow arrows whose start and finish "
                             "sit on different node processes (default 1)")
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return fail("cannot load %s: %s" % (args.trace, e))

    # --- Document envelope -------------------------------------------------
    if not isinstance(doc, dict):
        return fail("top level must be an object")
    for key in ("displayTimeUnit", "otherData", "traceEvents"):
        if key not in doc:
            return fail("missing top-level key %r" % key)
    other = doc["otherData"]
    if not isinstance(other.get("trace_unix_anchor_ns"), int) or \
            other["trace_unix_anchor_ns"] <= 0:
        return fail("otherData.trace_unix_anchor_ns must be a positive int")
    node_count = other.get("node_count")
    if not isinstance(node_count, int) or node_count < 1:
        return fail("otherData.node_count must be a positive int")

    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        return fail("traceEvents must be a non-empty array")

    # --- Processes: one named Chrome process per node ----------------------
    process_names = {}
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "process_name":
            process_names[e["pid"]] = e["args"]["name"]
    if len(process_names) != node_count:
        return fail("found %d process_name records, node_count says %d" %
                    (len(process_names), node_count))
    if 0 in process_names:
        return fail("pid 0 used (merger promises pid = packed id + 1)")

    # --- Events reference declared processes, timestamps are sane ----------
    phase_counts = {}
    for e in events:
        ph = e.get("ph")
        if ph is None:
            return fail("event without ph: %r" % (e,))
        phase_counts[ph] = phase_counts.get(ph, 0) + 1
        if ph in ("X", "i", "C", "s", "f") and e.get("pid") \
                not in process_names:
            return fail("event on undeclared pid %r: %r" % (e.get("pid"), e))
        if ph == "X" and e.get("dur", 0) < 0:
            return fail("span with negative duration: %r" % (e,))

    # --- Flow arrows: every start has a finish, none point backwards ------
    starts, finishes = {}, {}
    for e in events:
        if e.get("ph") == "s":
            if e["id"] in starts:
                return fail("duplicate flow start id %r" % e["id"])
            starts[e["id"]] = e
        elif e.get("ph") == "f":
            if e["id"] in finishes:
                return fail("duplicate flow finish id %r" % e["id"])
            finishes[e["id"]] = e
    if set(starts) != set(finishes):
        return fail("unpaired flow events: %d starts vs %d finishes" %
                    (len(starts), len(finishes)))
    cross_node = 0
    for fid, s in starts.items():
        fin = finishes[fid]
        if fin["ts"] < s["ts"]:
            return fail("flow %r points backwards in time "
                        "(start ts %r > finish ts %r)" %
                        (fid, s["ts"], fin["ts"]))
        if s["pid"] != fin["pid"]:
            cross_node += 1
    if cross_node < args.min_cross_node_flows:
        return fail("only %d cross-node flow arrows (need >= %d): the "
                    "merged trace does not show entries crossing nodes" %
                    (cross_node, args.min_cross_node_flows))

    print("check_trace: OK: %d nodes, %s events (%s), %d flows "
          "(%d cross-node)" %
          (node_count, len(events),
           ", ".join("%s=%d" % kv for kv in sorted(phase_counts.items())),
           len(starts), cross_node))
    return 0


if __name__ == "__main__":
    sys.exit(main())
