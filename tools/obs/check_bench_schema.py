#!/usr/bin/env python3
"""Validates a perf-baseline document written by WriteBenchBaselineFile
(core/bench_baseline.h): the schema the checked-in BENCH_real_cluster.json
trajectory and every --bench-out / --baseline export must follow. Stdlib
only; used by the CI observability leg and runnable by hand:

    python3 tools/obs/check_bench_schema.py BENCH_real_cluster.json [more...]

Exit code 0 iff every file passes; findings go to stdout.
"""

import json
import sys

SCHEMA_VERSION = 1

HOST_FIELDS = {
    "sysname": str,
    "release": str,
    "machine": str,
    "hardware_concurrency": int,
}

# The ExperimentResult::ToJson() surface a baseline must carry. Numbers may
# render as int or float; bool is excluded explicitly (bool is an int
# subclass in Python).
RESULT_NUMBER_FIELDS = (
    "throughput_tps", "mean_latency_ms", "p50_latency_ms", "p99_latency_ms",
    "committed_txns", "aborted_txns", "total_wan_bytes", "total_lan_bytes",
    "wan_bytes_per_entry", "wall_ms",
)


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return "cannot load: %s" % e

    if not isinstance(doc, dict):
        return "top level must be an object"
    if doc.get("schema_version") != SCHEMA_VERSION:
        return "schema_version must be %d, got %r" % (
            SCHEMA_VERSION, doc.get("schema_version"))
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        return "bench must be a non-empty string"

    host = doc.get("host")
    if not isinstance(host, dict):
        return "host must be an object"
    for field, kind in HOST_FIELDS.items():
        if not isinstance(host.get(field), kind):
            return "host.%s must be %s, got %r" % (
                field, kind.__name__, host.get(field))

    result = doc.get("result")
    if not isinstance(result, dict):
        return "result must be an object"
    if not isinstance(result.get("mode"), str):
        return "result.mode must be a string"
    for field in RESULT_NUMBER_FIELDS:
        if not is_number(result.get(field)):
            return "result.%s must be a number, got %r" % (
                field, result.get(field))
    if result["committed_txns"] < 0 or result["throughput_tps"] < 0:
        return "negative throughput/commit count"
    if not isinstance(result.get("phases"), dict):
        return "result.phases must be an object (Fig 11 phase sums)"
    if not isinstance(result.get("timeline"), list):
        return "result.timeline must be an array"
    return None


def main(argv):
    if len(argv) < 2:
        print("usage: check_bench_schema.py BENCH.json [more...]")
        return 2
    bad = 0
    for path in argv[1:]:
        err = check(path)
        if err:
            print("check_bench_schema: FAIL: %s: %s" % (path, err))
            bad += 1
        else:
            print("check_bench_schema: OK: %s" % path)
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
