#ifndef MASSBFT_SIM_ACTOR_H_
#define MASSBFT_SIM_ACTOR_H_

#include <algorithm>
#include <functional>
#include <memory>

#include "crypto/signature.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace massbft {

/// Simulated CPU cost parameters (charged in SimTime). Defaults approximate
/// the paper's ecs.c6.2xlarge nodes (8 cores): ED25519-class signature
/// operations dominate; execution and hashing are comparatively cheap.
struct CpuModel {
  int cores = 8;
  SimTime sign_cost = 50 * kMicrosecond;
  SimTime verify_cost = 100 * kMicrosecond;
  /// Hash throughput charge per byte (SHA-256 ~1 GB/s per core).
  double hash_ns_per_byte = 1.0;
  /// Reed-Solomon encode/decode charge per byte (vectorized RS ~1 GB/s).
  double ec_ns_per_byte = 1.0;
  /// Executing one transaction against the in-memory store.
  SimTime exec_cost = 5 * kMicrosecond;
};

/// Serial-resource approximation of a multi-core CPU: operations queue
/// FIFO, each charged cost/cores (a saturated k-core machine processes k
/// times faster than one core; latency of an individual op is under-charged
/// but throughput — the quantity the paper's bottleneck arguments rest on —
/// is exact).
class CpuAccount {
 public:
  CpuAccount(Simulator* sim, CpuModel model) : sim_(sim), model_(model) {}

  const CpuModel& model() const { return model_; }

  /// Charges `cost` of single-core work; returns the completion time.
  SimTime Charge(SimTime cost) {
    SimTime start = std::max(sim_->Now(), busy_until_);
    busy_until_ = start + cost / model_.cores;
    total_charged_ += cost;
    return busy_until_;
  }

  /// Charges and schedules `fn` at completion. Templated so the callable
  /// reaches the event heap directly (one InlineFunction construction, no
  /// intermediate std::function allocation).
  template <typename F>
  void ChargeThen(SimTime cost, F fn) {
    sim_->ScheduleAt(Charge(cost), std::move(fn));
  }

  SimTime ChargeVerify(int count = 1) {
    return Charge(model_.verify_cost * count);
  }
  SimTime ChargeSign(int count = 1) { return Charge(model_.sign_cost * count); }
  SimTime ChargeHash(size_t bytes) {
    return Charge(static_cast<SimTime>(model_.hash_ns_per_byte *
                                       static_cast<double>(bytes)));
  }
  SimTime ChargeEc(size_t bytes) {
    return Charge(static_cast<SimTime>(model_.ec_ns_per_byte *
                                       static_cast<double>(bytes)));
  }
  SimTime ChargeExec(int txns) { return Charge(model_.exec_cost * txns); }

  SimTime busy_until() const { return busy_until_; }
  /// Total single-core-equivalent nanoseconds charged (utilization probe).
  SimTime total_charged() const { return total_charged_; }

 private:
  Simulator* sim_;
  CpuModel model_;
  SimTime busy_until_ = 0;
  SimTime total_charged_ = 0;
};

/// Base class for protocol node implementations. Owns the node's CPU
/// account and wraps network access; subclasses implement HandleMessage.
class Actor {
 public:
  Actor(Simulator* sim, Network* network, NodeId id, CpuModel cpu_model)
      : sim_(sim), network_(network), id_(id), cpu_(sim, cpu_model) {}
  virtual ~Actor() = default;

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  NodeId id() const { return id_; }
  bool crashed() const { return crashed_; }

  /// Delivery entry point: messages whose network transit completed.
  /// `from` is the sending node.
  virtual void HandleMessage(NodeId from, MessagePtr message) = 0;

  /// Crash/recover hooks (Fig 15 group-failure experiment).
  virtual void Crash() {
    crashed_ = true;
    network_->CrashNode(id_);
  }
  virtual void Recover() {
    crashed_ = false;
    network_->RecoverNode(id_);
  }

  /// Read-only CPU accounting (utilization probes in tests/benches).
  const CpuAccount& cpu_account() const { return cpu_; }

 protected:
  Simulator* sim() { return sim_; }
  Network* network() { return network_; }
  CpuAccount& cpu() { return cpu_; }
  SimTime Now() const { return sim_->Now(); }

  void SendWan(NodeId dst, MessagePtr message) {
    network_->SendWan(id_, dst, std::move(message));
  }
  void SendLan(NodeId dst, MessagePtr message) {
    network_->SendLan(id_, dst, std::move(message));
  }
  /// Schedules a local timer; the callback is dropped if the node has
  /// crashed by the time it fires. Templated so the crash-guard wrapper
  /// captures the concrete callable: captures up to 40 bytes keep the
  /// whole event inside the heap record (see InlineFunction).
  template <typename F>
  void After(SimTime delay, F fn) {
    sim_->Schedule(delay, [this, fn = std::move(fn)]() mutable {
      if (!crashed_) fn();
    });
  }

 private:
  Simulator* sim_;
  Network* network_;
  NodeId id_;
  CpuAccount cpu_;
  bool crashed_ = false;
};

}  // namespace massbft

#endif  // MASSBFT_SIM_ACTOR_H_
