#ifndef MASSBFT_SIM_SIMULATOR_H_
#define MASSBFT_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace massbft {

/// Discrete-event simulator: a monotonic clock plus a min-heap of callbacks.
/// Events at equal timestamps fire in scheduling order (FIFO), which keeps
/// whole-cluster runs deterministic for a fixed seed.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` after the current time (delay >= 0;
  /// negative delays are clamped to 0).
  void Schedule(SimTime delay, Callback fn) {
    ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Schedules `fn` at absolute time `t` (clamped to Now()).
  void ScheduleAt(SimTime t, Callback fn) {
    if (t < now_) t = now_;
    heap_.push(Event{t, next_seq_++, std::move(fn)});
  }

  /// Runs one event; returns false if the queue is empty.
  bool Step();

  /// Runs events until the queue empties or the clock passes `until`.
  /// Events scheduled beyond `until` stay queued; Now() is advanced to
  /// `until` when the horizon is hit.
  void RunUntil(SimTime until);

  /// Drains the queue completely.
  void RunAll();

  uint64_t events_processed() const { return events_processed_; }
  size_t pending_events() const { return heap_.size(); }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    mutable Callback fn;  // Moved out when popped.

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap_;
};

}  // namespace massbft

#endif  // MASSBFT_SIM_SIMULATOR_H_
