#ifndef MASSBFT_SIM_SIMULATOR_H_
#define MASSBFT_SIM_SIMULATOR_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/inline_function.h"
#include "sim/time.h"

namespace massbft {

/// Discrete-event simulator: a monotonic clock plus a min-heap of callbacks.
/// Events at equal timestamps fire in scheduling order (FIFO), which keeps
/// whole-cluster runs deterministic for a fixed seed.
///
/// The hot loop is allocation-free: callbacks are InlineFunction (captures
/// up to 48 bytes stay in the event record itself — every scheduling lambda
/// in the protocol stack fits), and the heap is an explicit
/// push_heap/pop_heap vector that is reserved up front and only grows at
/// power-of-two reallocation points.
class Simulator {
 public:
  using Callback = InlineFunction<void()>;

  Simulator() { heap_.reserve(kInitialHeapCapacity); }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  /// Pre-sizes the event heap (e.g. to the expected in-flight event count
  /// of a large experiment).
  void Reserve(size_t events) { heap_.reserve(events); }

  /// Schedules `fn` to run `delay` after the current time (delay >= 0;
  /// negative delays are clamped to 0).
  void Schedule(SimTime delay, Callback fn) {
    ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Schedules `fn` at absolute time `t` (clamped to Now()).
  void ScheduleAt(SimTime t, Callback fn) {
    if (t < now_) t = now_;
    heap_.push_back(Event{t, next_seq_++, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
  }

  /// Runs one event; returns false if the queue is empty.
  bool Step();

  /// Earliest pending event time, or kNoEvent when the queue is empty.
  /// The threaded runtime uses this to sleep exactly until the next timer.
  static constexpr SimTime kNoEvent = INT64_MAX;
  SimTime NextEventTime() const {
    return heap_.empty() ? kNoEvent : heap_.front().time;
  }

  /// Runs events until the queue empties or the clock passes `until`.
  /// Events scheduled beyond `until` stay queued; Now() is advanced to
  /// `until` when the horizon is hit.
  void RunUntil(SimTime until);

  /// Drains the queue completely.
  void RunAll();

  uint64_t events_processed() const { return events_processed_; }
  size_t pending_events() const { return heap_.size(); }

 private:
  static constexpr size_t kInitialHeapCapacity = 1024;

  struct Event {
    SimTime time;
    uint64_t seq;
    Callback fn;
  };

  /// Heap comparator: true if `a` fires after `b` (min-heap on time, FIFO
  /// on the scheduling sequence number for ties).
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::vector<Event> heap_;
};

}  // namespace massbft

#endif  // MASSBFT_SIM_SIMULATOR_H_
