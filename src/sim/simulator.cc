#include "sim/simulator.h"

#include <utility>

namespace massbft {

bool Simulator::Step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
  Event event = std::move(heap_.back());
  heap_.pop_back();
  now_ = event.time;
  ++events_processed_;
  event.fn();
  return true;
}

void Simulator::RunUntil(SimTime until) {
  while (!heap_.empty() && heap_.front().time <= until) Step();
  if (now_ < until) now_ = until;
}

void Simulator::RunAll() {
  while (Step()) {
  }
}

}  // namespace massbft
