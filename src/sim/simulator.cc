#include "sim/simulator.h"

#include <utility>

namespace massbft {

bool Simulator::Step() {
  if (heap_.empty()) return false;
  Callback fn = std::move(heap_.top().fn);
  now_ = heap_.top().time;
  heap_.pop();
  ++events_processed_;
  fn();
  return true;
}

void Simulator::RunUntil(SimTime until) {
  while (!heap_.empty() && heap_.top().time <= until) Step();
  if (now_ < until) now_ = until;
}

void Simulator::RunAll() {
  while (Step()) {
  }
}

}  // namespace massbft
