#include "sim/topology.h"

#include <algorithm>

namespace massbft {

namespace {

/// Fills a symmetric RTT matrix from a per-pair table. Pairs beyond the
/// table reuse the band's [lo, hi] range deterministically.
std::vector<std::vector<double>> MakeRttMatrix(int n, double lo, double hi) {
  std::vector<std::vector<double>> rtt(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      // Deterministic spread across the band so different pairs differ,
      // like real data-center meshes.
      double frac = static_cast<double>((i * 7 + j * 13) % 17) / 16.0;
      rtt[i][j] = rtt[j][i] = lo + frac * (hi - lo);
    }
  }
  return rtt;
}

}  // namespace

TopologyConfig TopologyConfig::Nationwide(int num_groups,
                                          int nodes_per_group) {
  TopologyConfig cfg;
  cfg.group_sizes.assign(num_groups, nodes_per_group);
  cfg.rtt_ms = MakeRttMatrix(num_groups, 26.7, 43.4);
  return cfg;
}

TopologyConfig TopologyConfig::Worldwide(int num_groups, int nodes_per_group) {
  TopologyConfig cfg;
  cfg.group_sizes.assign(num_groups, nodes_per_group);
  cfg.rtt_ms = MakeRttMatrix(num_groups, 156.0, 206.0);
  return cfg;
}

int TopologyConfig::total_nodes() const {
  int total = 0;
  for (int n : group_sizes) total += n;
  return total;
}

Status TopologyConfig::Validate() const {
  if (group_sizes.empty())
    return Status::InvalidArgument("topology needs at least one group");
  for (int n : group_sizes)
    if (n < 1) return Status::InvalidArgument("groups must be nonempty");
  if (wan_bps <= 0 || lan_bps <= 0)
    return Status::InvalidArgument("bandwidths must be positive");
  int ng = num_groups();
  if (static_cast<int>(rtt_ms.size()) != ng)
    return Status::InvalidArgument("rtt matrix must be num_groups x num_groups");
  for (const auto& row : rtt_ms)
    if (static_cast<int>(row.size()) != ng)
      return Status::InvalidArgument(
          "rtt matrix must be num_groups x num_groups");
  for (const auto& [node, bps] : wan_overrides) {
    if (node.group >= ng ||
        node.index >= group_sizes[node.group])
      return Status::InvalidArgument("wan override for unknown node");
    if (bps <= 0) return Status::InvalidArgument("override bandwidth <= 0");
  }
  return Status::OK();
}

Topology::Topology(TopologyConfig config) : config_(std::move(config)) {
  node_wan_bps_.resize(config_.group_sizes.size());
  for (size_t g = 0; g < config_.group_sizes.size(); ++g)
    node_wan_bps_[g].assign(config_.group_sizes[g], config_.wan_bps);
  for (const auto& [node, bps] : config_.wan_overrides)
    node_wan_bps_[node.group][node.index] = bps;
}

Result<Topology> Topology::Create(TopologyConfig config) {
  MASSBFT_RETURN_IF_ERROR(config.Validate());
  return Topology(std::move(config));
}

double Topology::wan_bps(NodeId node) const {
  return node_wan_bps_[node.group][node.index];
}

SimTime Topology::WanPropagation(NodeId a, NodeId b) const {
  if (a.group == b.group) return config_.lan_latency;
  return MillisToSim(config_.rtt_ms[a.group][b.group] / 2.0);
}

std::vector<NodeId> Topology::AllNodes() const {
  std::vector<NodeId> nodes;
  for (int g = 0; g < num_groups(); ++g)
    for (int i = 0; i < group_size(g); ++i)
      nodes.push_back(NodeId{static_cast<uint16_t>(g),
                             static_cast<uint16_t>(i)});
  return nodes;
}

std::vector<NodeId> Topology::GroupNodes(int group) const {
  std::vector<NodeId> nodes;
  for (int i = 0; i < group_size(group); ++i)
    nodes.push_back(
        NodeId{static_cast<uint16_t>(group), static_cast<uint16_t>(i)});
  return nodes;
}

}  // namespace massbft
