#ifndef MASSBFT_SIM_TIME_H_
#define MASSBFT_SIM_TIME_H_

#include <cstdint>

namespace massbft {

/// Simulated time in nanoseconds. All protocol latencies, bandwidth
/// serialization delays and CPU cost charges are expressed in SimTime.
using SimTime = int64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

/// Converts a floating-point second count to SimTime (rounds down).
constexpr SimTime SecondsToSim(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}
constexpr double SimToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}
constexpr SimTime MillisToSim(double ms) {
  return static_cast<SimTime>(ms * static_cast<double>(kMillisecond));
}

/// Time to push `bytes` through a link of `bits_per_second` capacity.
constexpr SimTime SerializationDelay(size_t bytes, double bits_per_second) {
  return static_cast<SimTime>(static_cast<double>(bytes) * 8.0 /
                              bits_per_second * static_cast<double>(kSecond));
}

}  // namespace massbft

#endif  // MASSBFT_SIM_TIME_H_
