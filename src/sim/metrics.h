#ifndef MASSBFT_SIM_METRICS_H_
#define MASSBFT_SIM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace massbft {

/// Linear-interpolated percentile over an ascending-sorted sample vector
/// (p in [0, 1]); the single implementation shared by the sim-side
/// LatencyStats and the threaded runtime's wall-clock samples. A
/// floor-truncated nearest-rank underreports upper percentiles on small
/// samples (p99 of 100 samples would return sorted[98]); interpolating
/// between the neighboring ranks does not. Returns 0 when empty.
template <typename T>
double InterpolatedPercentile(const std::vector<T>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = lo + 1 < sorted.size() ? lo + 1 : lo;
  const double frac = rank - static_cast<double>(lo);
  return static_cast<double>(sorted[lo]) * (1.0 - frac) +
         static_cast<double>(sorted[hi]) * frac;
}

/// Latency sample accumulator with average/percentile reporting.
class LatencyStats {
 public:
  void Record(SimTime latency) {
    samples_.push_back(latency);
    // A percentile query may have sorted the vector already; appending
    // invalidates that order.
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  double MeanMs() const;
  /// p in [0, 1], e.g. 0.5 / 0.99. Returns 0 when empty.
  double PercentileMs(double p) const;

  void Clear() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  mutable std::vector<SimTime> samples_;
  mutable bool sorted_ = false;
  void EnsureSorted() const;
};

/// Per-experiment throughput/latency collector. Protocol nodes report each
/// committed transaction with its submit time; the collector provides
///   * overall throughput over a measurement window (warmup excluded),
///   * mean/percentile commit latency,
///   * a per-interval timeline for the fault-injection figure (Fig 15).
class MetricsCollector {
 public:
  /// Transactions committed before `warmup` or after `horizon` are excluded
  /// from throughput/latency aggregates (they still land in the timeline).
  MetricsCollector(SimTime warmup, SimTime horizon,
                   SimTime timeline_bucket = kSecond)
      : warmup_(warmup), horizon_(horizon), bucket_(timeline_bucket) {}

  void RecordCommit(SimTime submit_time, SimTime commit_time, int txns = 1);
  /// Records a transaction aborted permanently (after retry budget).
  void RecordAbort(int txns = 1) { aborted_ += txns; }

  uint64_t committed() const { return committed_; }
  uint64_t aborted() const { return aborted_; }

  /// Committed transactions per second within [warmup, horizon].
  double ThroughputTps() const;
  double MeanLatencyMs() const { return latency_.MeanMs(); }
  double P50LatencyMs() const { return latency_.PercentileMs(0.5); }
  double P99LatencyMs() const { return latency_.PercentileMs(0.99); }

  struct TimelinePoint {
    double time_s;
    double tps;
    double mean_latency_ms;
  };
  /// Per-bucket throughput/latency over the whole run.
  std::vector<TimelinePoint> Timeline() const;

 private:
  SimTime warmup_;
  SimTime horizon_;
  SimTime bucket_;
  uint64_t committed_ = 0;
  uint64_t aborted_ = 0;
  LatencyStats latency_;
  struct Bucket {
    uint64_t txns = 0;
    SimTime latency_sum = 0;
  };
  std::vector<Bucket> timeline_;
};

}  // namespace massbft

#endif  // MASSBFT_SIM_METRICS_H_
