#ifndef MASSBFT_SIM_NETWORK_H_
#define MASSBFT_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "crypto/signature.h"  // NodeId
#include "obs/telemetry.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "sim/topology.h"

namespace massbft {

/// Base class for anything carried over simulated links. Implementations
/// report their real encoded byte size; the network charges exactly that
/// against link bandwidth. Messages are immutable after sending and shared
/// by pointer between hops (what a zero-copy transport would do); the byte
/// accounting is still honest because ByteSize() is the serialized size.
class SimMessage {
 public:
  virtual ~SimMessage() = default;
  virtual size_t ByteSize() const = 0;
  /// Small integer used by receivers to dispatch (see proto/messages.h).
  virtual int type() const = 0;
};

using MessagePtr = std::shared_ptr<const SimMessage>;

/// Per-direction traffic counters, by node.
struct TrafficStats {
  uint64_t wan_bytes_sent = 0;
  uint64_t wan_bytes_received = 0;
  uint64_t lan_bytes_sent = 0;
  uint64_t wan_messages_sent = 0;
  uint64_t lan_messages_sent = 0;
};

/// Flow-level network model. Every node has
///   * a WAN uplink and downlink of its configured bandwidth,
///   * a LAN uplink/downlink (shared data-center fabric, per-node port),
/// each modeled as a FIFO serialization queue (`busy-until` per direction).
/// Delivery time of a message =
///   departure  = max(now, uplink_busy);  uplink_busy = departure + ser_up
///   arrival    = uplink_busy + propagation(src, dst)
///   completion = max(arrival, downlink_busy + ser_down);
///                downlink_busy = completion
/// which reproduces the two effects the paper's evaluation rests on: a
/// leader's uplink saturating when it must push f+1 copies per group, and
/// converging flows queueing at a receiver's downlink.
///
/// Messages to/from crashed nodes are silently dropped (crash = the data
/// center went dark, Section VI-E).
class Network {
 public:
  /// Called when a message completes delivery at `dst`.
  using DeliverFn =
      std::function<void(NodeId dst, NodeId src, MessagePtr message)>;

  Network(Simulator* sim, const Topology* topology, DeliverFn deliver);
  virtual ~Network() = default;

  /// Attaches an observability context: aggregate traffic counters land in
  /// its registry, and — when tracing is enabled — every message yields a
  /// queue span (sender uplink contention) plus a transfer span
  /// (serialization + propagation) on the sender's track, annotated with
  /// byte size and message type. Pass nullptr to detach.
  void set_telemetry(obs::Telemetry* telemetry);

  /// Sends over WAN (inter-data-center). Also usable intra-group, but
  /// protocol code should use SendLan for that. Virtual so the threaded
  /// runtime can substitute a real transport (runtime/TransportNetwork)
  /// underneath unmodified protocol code.
  virtual void SendWan(NodeId src, NodeId dst, MessagePtr message);

  /// Sends over the data-center LAN. src and dst must be in one group.
  virtual void SendLan(NodeId src, NodeId dst, MessagePtr message);

  /// Marks a node crashed: all of its queued/future traffic is dropped.
  virtual void CrashNode(NodeId node);
  virtual void RecoverNode(NodeId node);
  bool IsCrashed(NodeId node) const { return crashed_.contains(node.Packed()); }

  const TrafficStats& StatsFor(NodeId node) const;
  TrafficStats TotalStats() const;
  /// Sum of WAN bytes sent by all nodes (the paper's Fig 10 metric).
  uint64_t TotalWanBytesSent() const;
  /// Sum of LAN bytes sent by all nodes.
  uint64_t TotalLanBytesSent() const;
  void ResetStats();

 private:
  struct Port {
    SimTime up_busy = 0;
    SimTime down_busy = 0;
  };
  struct NodeState {
    Port wan;
    Port lan;
    TrafficStats stats;
  };

  NodeState& State(NodeId node) { return states_[node.Packed()]; }

  void Send(NodeId src, NodeId dst, MessagePtr message, bool wan);

  Simulator* sim_;
  const Topology* topology_;
  DeliverFn deliver_;
  std::unordered_map<uint32_t, NodeState> states_;
  std::unordered_map<uint32_t, bool> crashed_;

  // Observability (optional; see set_telemetry).
  obs::Telemetry* telemetry_ = nullptr;
  obs::Counter* wan_bytes_counter_ = nullptr;
  obs::Counter* wan_msgs_counter_ = nullptr;
  obs::Counter* lan_bytes_counter_ = nullptr;
  obs::Counter* lan_msgs_counter_ = nullptr;
  obs::Histogram* wan_queue_hist_ = nullptr;
};

}  // namespace massbft

#endif  // MASSBFT_SIM_NETWORK_H_
