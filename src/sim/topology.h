#ifndef MASSBFT_SIM_TOPOLOGY_H_
#define MASSBFT_SIM_TOPOLOGY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "crypto/signature.h"  // NodeId
#include "sim/time.h"

namespace massbft {

/// Cluster shape and link parameters. Mirrors the paper's testbeds:
/// each group is one data center; every node has an exclusive WAN uplink
/// (20 Mbps default) and shares a fast LAN (2.5 Gbps default); groups are
/// separated by an RTT matrix (nationwide 26.7–43.4 ms, worldwide
/// 156–206 ms).
struct TopologyConfig {
  /// Nodes per group; group count = group_sizes.size().
  std::vector<int> group_sizes;

  /// Per-node WAN bandwidth (bits/s), applied to both directions.
  double wan_bps = 20e6;
  /// Per-node LAN bandwidth (bits/s).
  double lan_bps = 2.5e9;
  /// One-way LAN latency within a data center.
  SimTime lan_latency = 250 * kMicrosecond;
  /// rtt_ms[i][j]: round-trip time between groups i and j in milliseconds.
  std::vector<std::vector<double>> rtt_ms;

  /// Per-node WAN bandwidth overrides: (node, bits/s). Used by the Fig 14
  /// mixed-bandwidth experiment.
  std::vector<std::pair<NodeId, double>> wan_overrides;

  /// The paper's nationwide cluster (Zhangjiakou / Chengdu / Hangzhou):
  /// `num_groups` groups of `nodes_per_group` nodes, RTTs in 26.7–43.4 ms.
  /// Scaling past 3 groups adds the four extra Chinese data centers of
  /// Fig 13b with RTTs in the same band.
  static TopologyConfig Nationwide(int num_groups, int nodes_per_group);

  /// The paper's worldwide cluster (Hong Kong / London / Silicon Valley),
  /// RTTs 156–206 ms.
  static TopologyConfig Worldwide(int num_groups, int nodes_per_group);

  int num_groups() const { return static_cast<int>(group_sizes.size()); }
  int total_nodes() const;

  /// Validates sizes and matrix shape.
  Status Validate() const;
};

/// Resolved per-node link parameters + helpers for quorum math.
class Topology {
 public:
  [[nodiscard]] static Result<Topology> Create(TopologyConfig config);

  const TopologyConfig& config() const { return config_; }
  int num_groups() const { return config_.num_groups(); }
  int group_size(int group) const { return config_.group_sizes[group]; }
  int total_nodes() const { return config_.total_nodes(); }

  /// Byzantine fault bound within a group: f = floor((n-1)/3).
  int max_faulty(int group) const { return (group_size(group) - 1) / 3; }
  /// Group-crash bound: f_g = floor((n_g-1)/2) (CFT across groups).
  int max_faulty_groups() const { return (num_groups() - 1) / 2; }

  double wan_bps(NodeId node) const;
  double lan_bps() const { return config_.lan_bps; }
  SimTime lan_latency() const { return config_.lan_latency; }

  /// One-way WAN propagation delay between the data centers of two nodes.
  SimTime WanPropagation(NodeId a, NodeId b) const;

  /// All node ids, group-major.
  std::vector<NodeId> AllNodes() const;
  std::vector<NodeId> GroupNodes(int group) const;

 private:
  explicit Topology(TopologyConfig config);

  TopologyConfig config_;
  std::vector<std::vector<double>> node_wan_bps_;  // [group][index]
};

}  // namespace massbft

#endif  // MASSBFT_SIM_TOPOLOGY_H_
