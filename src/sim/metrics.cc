#include "sim/metrics.h"

#include <algorithm>
#include <cmath>

namespace massbft {

void LatencyStats::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double LatencyStats::MeanMs() const {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (SimTime s : samples_) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples_.size()) /
         static_cast<double>(kMillisecond);
}

double LatencyStats::PercentileMs(double p) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return InterpolatedPercentile(samples_, p) /
         static_cast<double>(kMillisecond);
}

void MetricsCollector::RecordCommit(SimTime submit_time, SimTime commit_time,
                                    int txns) {
  SimTime latency = commit_time - submit_time;
  size_t bucket_index = static_cast<size_t>(commit_time / bucket_);
  if (bucket_index >= timeline_.size()) timeline_.resize(bucket_index + 1);
  timeline_[bucket_index].txns += txns;
  timeline_[bucket_index].latency_sum += latency * txns;

  if (commit_time < warmup_ || commit_time > horizon_) return;
  committed_ += txns;
  for (int i = 0; i < txns; ++i) latency_.Record(latency);
}

double MetricsCollector::ThroughputTps() const {
  double window_s = SimToSeconds(horizon_ - warmup_);
  if (window_s <= 0) return 0.0;
  return static_cast<double>(committed_) / window_s;
}

std::vector<MetricsCollector::TimelinePoint> MetricsCollector::Timeline()
    const {
  std::vector<TimelinePoint> points;
  points.reserve(timeline_.size());
  double bucket_s = SimToSeconds(bucket_);
  for (size_t i = 0; i < timeline_.size(); ++i) {
    const Bucket& b = timeline_[i];
    TimelinePoint p;
    p.time_s = static_cast<double>(i) * bucket_s;
    p.tps = static_cast<double>(b.txns) / bucket_s;
    p.mean_latency_ms =
        b.txns == 0 ? 0.0
                    : static_cast<double>(b.latency_sum) /
                          static_cast<double>(b.txns) /
                          static_cast<double>(kMillisecond);
    points.push_back(p);
  }
  return points;
}

}  // namespace massbft
