#include "sim/network.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace massbft {

Network::Network(Simulator* sim, const Topology* topology, DeliverFn deliver)
    : sim_(sim), topology_(topology), deliver_(std::move(deliver)) {
  for (NodeId node : topology_->AllNodes()) states_[node.Packed()] = {};
}

void Network::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) {
    wan_bytes_counter_ = nullptr;
    wan_msgs_counter_ = nullptr;
    lan_bytes_counter_ = nullptr;
    lan_msgs_counter_ = nullptr;
    wan_queue_hist_ = nullptr;
    return;
  }
  obs::MetricsRegistry& registry = telemetry_->registry();
  wan_bytes_counter_ = registry.GetCounter("net/wan_bytes_sent");
  wan_msgs_counter_ = registry.GetCounter("net/wan_messages_sent");
  lan_bytes_counter_ = registry.GetCounter("net/lan_bytes_sent");
  lan_msgs_counter_ = registry.GetCounter("net/lan_messages_sent");
  wan_queue_hist_ = registry.GetHistogram("net/wan_uplink_queue_ms");
}

void Network::SendWan(NodeId src, NodeId dst, MessagePtr message) {
  Send(src, dst, std::move(message), /*wan=*/true);
}

void Network::SendLan(NodeId src, NodeId dst, MessagePtr message) {
  MASSBFT_CHECK(src.group == dst.group);
  Send(src, dst, std::move(message), /*wan=*/false);
}

void Network::Send(NodeId src, NodeId dst, MessagePtr message, bool wan) {
  if (IsCrashed(src) || IsCrashed(dst)) return;
  if (src == dst) {
    // Loopback: deliver immediately (no link traversal).
    sim_->Schedule(0, [this, dst, src, m = std::move(message)]() {
      if (!IsCrashed(dst)) deliver_(dst, src, m);
    });
    return;
  }

  NodeState& s_src = State(src);
  NodeState& s_dst = State(dst);
  size_t bytes = message->ByteSize();
  double up_bps = wan ? topology_->wan_bps(src) : topology_->lan_bps();
  double down_bps = wan ? topology_->wan_bps(dst) : topology_->lan_bps();
  Port& up = wan ? s_src.wan : s_src.lan;
  Port& down = wan ? s_dst.wan : s_dst.lan;

  SimTime now = sim_->Now();
  SimTime departure = std::max(now, up.up_busy);
  up.up_busy = departure + SerializationDelay(bytes, up_bps);
  SimTime arrival = up.up_busy + topology_->WanPropagation(src, dst);
  SimTime completion =
      std::max(arrival, down.down_busy + SerializationDelay(bytes, down_bps));
  down.down_busy = completion;

  if (wan) {
    s_src.stats.wan_bytes_sent += bytes;
    s_src.stats.wan_messages_sent += 1;
    s_dst.stats.wan_bytes_received += bytes;
  } else {
    s_src.stats.lan_bytes_sent += bytes;
    s_src.stats.lan_messages_sent += 1;
  }

  if (telemetry_ != nullptr) {
    if (wan) {
      wan_bytes_counter_->Add(bytes);
      wan_msgs_counter_->Add();
      wan_queue_hist_->Record(SimToSeconds(departure - now) * 1e3);
    } else {
      lan_bytes_counter_->Add(bytes);
      lan_msgs_counter_->Add();
    }
    obs::TraceRecorder& trace = telemetry_->trace();
    if (trace.enabled()) {
      uint32_t track = obs::Telemetry::NodeTrack(src.Packed());
      obs::TraceArgs args{
          {{"bytes", static_cast<double>(bytes)},
           {"type", static_cast<double>(message->type())},
           {"dst", static_cast<double>(dst.Packed())}}};
      if (departure > now)
        trace.RecordSpan(track, "net", wan ? "wan_queue" : "lan_queue", now,
                         departure, args);
      trace.RecordSpan(track, "net", wan ? "wan_transfer" : "lan_transfer",
                       departure, completion, args);
    }
  }

  sim_->ScheduleAt(completion, [this, dst, src, m = std::move(message)]() {
    if (!IsCrashed(dst)) deliver_(dst, src, m);
  });
}

void Network::CrashNode(NodeId node) { crashed_[node.Packed()] = true; }

void Network::RecoverNode(NodeId node) { crashed_.erase(node.Packed()); }

const TrafficStats& Network::StatsFor(NodeId node) const {
  auto it = states_.find(node.Packed());
  MASSBFT_CHECK(it != states_.end());
  return it->second.stats;
}

TrafficStats Network::TotalStats() const {
  // Walk nodes in topology order, not states_ order: the aggregate is a
  // commutative sum today, but iterating the hash map here would make any
  // future non-commutative use (per-node dumps, first-k reporting) silently
  // hash-seed-dependent. Topology order is fixed at construction.
  TrafficStats total;
  for (NodeId node : topology_->AllNodes()) {
    auto it = states_.find(node.Packed());
    if (it == states_.end()) continue;
    const TrafficStats& s = it->second.stats;
    total.wan_bytes_sent += s.wan_bytes_sent;
    total.wan_bytes_received += s.wan_bytes_received;
    total.lan_bytes_sent += s.lan_bytes_sent;
    total.wan_messages_sent += s.wan_messages_sent;
    total.lan_messages_sent += s.lan_messages_sent;
  }
  return total;
}

uint64_t Network::TotalWanBytesSent() const {
  return TotalStats().wan_bytes_sent;
}

uint64_t Network::TotalLanBytesSent() const {
  return TotalStats().lan_bytes_sent;
}

void Network::ResetStats() {
  for (NodeId node : topology_->AllNodes()) {
    auto it = states_.find(node.Packed());
    if (it != states_.end()) it->second.stats = TrafficStats{};
  }
}

}  // namespace massbft
