#ifndef MASSBFT_COMMON_STATUS_H_
#define MASSBFT_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace massbft {

/// Error category returned by fallible operations. Mirrors the usual
/// database-engine convention (RocksDB/Arrow style): no exceptions cross
/// public API boundaries; every fallible call returns a Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kAlreadyExists,
  kCorruption,
  kOutOfRange,
  kUnavailable,
  kAborted,
  kInternal,
};

/// Returns a stable human-readable name for a StatusCode ("Ok",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Value-type error carrier. Cheap to copy in the OK case (empty message).
///
/// The class itself is [[nodiscard]]: any call that returns a Status by
/// value and ignores it fails the -Werror build (see DESIGN.md §11, rule
/// D4). Intentional discards must be explicit and justified at the call
/// site, e.g. `(void)store.Flush();  // best-effort`.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }

  /// "Ok" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace massbft

/// Propagates a non-OK Status to the caller. Usable only in functions
/// returning Status.
#define MASSBFT_RETURN_IF_ERROR(expr)                 \
  do {                                                \
    ::massbft::Status _status = (expr);               \
    if (!_status.ok()) return _status;                \
  } while (0)

#endif  // MASSBFT_COMMON_STATUS_H_
