#include "common/logging.h"

#include <atomic>

namespace massbft {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace internal_logging {

void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  static const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR", "OFF"};
  std::fprintf(stderr, "[%s] %s:%d: %s\n", kNames[static_cast<int>(level)],
               file, line, msg.c_str());
}

}  // namespace internal_logging
}  // namespace massbft
