#ifndef MASSBFT_COMMON_THREAD_ANNOTATIONS_H_
#define MASSBFT_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis annotations (abseil-style macro spellings).
/// Under clang the CI `-Wthread-safety` leg statically proves that every
/// access to a MASSBFT_GUARDED_BY(mu) member happens with `mu` held; under
/// GCC the macros expand to nothing. The simulation core is single-threaded
/// by design, so the only real mutexes are process-wide memo caches (e.g.
/// the Reed-Solomon factory cache) — exactly the places where an unguarded
/// access would be a silent data race in a future multi-threaded driver.

#if defined(__clang__) && (!defined(SWIG))
#define MASSBFT_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MASSBFT_THREAD_ANNOTATION_(x)
#endif

/// Data member readable/writable only with the given capability held.
#define MASSBFT_GUARDED_BY(x) MASSBFT_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose pointee is protected by the given capability.
#define MASSBFT_PT_GUARDED_BY(x) MASSBFT_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function that must be called with the capability held.
#define MASSBFT_REQUIRES(...) \
  MASSBFT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function that acquires/releases the capability internally.
#define MASSBFT_ACQUIRE(...) \
  MASSBFT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define MASSBFT_RELEASE(...) \
  MASSBFT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function whose caller must NOT hold the capability (deadlock guard).
#define MASSBFT_EXCLUDES(...) \
  MASSBFT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Type acting as a capability (mutex wrappers).
#define MASSBFT_CAPABILITY(x) MASSBFT_THREAD_ANNOTATION_(capability(x))

/// RAII type that holds a capability for its lifetime.
#define MASSBFT_SCOPED_CAPABILITY MASSBFT_THREAD_ANNOTATION_(scoped_lockable)

/// Function that acquires the capability only when it returns true.
#define MASSBFT_TRY_ACQUIRE(...) \
  MASSBFT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Runtime assertion that the calling thread already holds the capability
/// (for callbacks that are documented to run under a caller's lock).
#define MASSBFT_ASSERT_CAPABILITY(x) \
  MASSBFT_THREAD_ANNOTATION_(assert_capability(x))

/// Function returning a reference to the given capability.
#define MASSBFT_RETURN_CAPABILITY(x) \
  MASSBFT_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: function deliberately exempt from analysis.
#define MASSBFT_NO_THREAD_SAFETY_ANALYSIS \
  MASSBFT_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // MASSBFT_COMMON_THREAD_ANNOTATIONS_H_
