#include "common/status.h"

namespace massbft {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace massbft
