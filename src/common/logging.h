#ifndef MASSBFT_COMMON_LOGGING_H_
#define MASSBFT_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace massbft {

/// Minimal leveled logger. Protocol nodes log through this; the default
/// threshold (kWarn) keeps simulation runs quiet, tests can lower it to
/// trace message flow.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level that is actually emitted.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

void Emit(LogLevel level, const char* file, int line, const std::string& msg);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Emit(level_, file_, line_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace massbft

#define MASSBFT_LOG(level)                                                 \
  if (::massbft::LogLevel::level < ::massbft::GetLogLevel()) {             \
  } else                                                                   \
    ::massbft::internal_logging::LogMessage(::massbft::LogLevel::level,    \
                                            __FILE__, __LINE__)            \
        .stream()

/// Fatal invariant check: always on, aborts with a message. Used for
/// conditions that indicate a bug in this codebase, never for input errors
/// (those return Status).
#define MASSBFT_CHECK(cond)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#endif  // MASSBFT_COMMON_LOGGING_H_
