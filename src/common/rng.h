#ifndef MASSBFT_COMMON_RNG_H_
#define MASSBFT_COMMON_RNG_H_

#include <cassert>
#include <cstdint>

namespace massbft {

/// Deterministic, fast PRNG (SplitMix64 core). Every stochastic component
/// in the simulator draws from an explicitly seeded Rng so that whole
/// cluster runs are reproducible bit-for-bit from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {}

  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) {
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias on small bounds.
    uint64_t threshold = -bound % bound;
    while (true) {
      uint64_t r = NextU64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

  /// Derives an independent child generator (for per-node streams).
  Rng Fork() { return Rng(NextU64() ^ 0xD1B54A32D192ED03ULL); }

 private:
  uint64_t state_;
};

}  // namespace massbft

#endif  // MASSBFT_COMMON_RNG_H_
