#ifndef MASSBFT_COMMON_RESULT_H_
#define MASSBFT_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace massbft {

/// Status-or-value, in the spirit of absl::StatusOr / arrow::Result.
/// A Result holds either a value of T (status().ok() == true) or a non-OK
/// Status. Accessing the value of an errored Result is a programming error
/// (asserted in debug builds).
/// Like Status, the class carries [[nodiscard]]: dropping a Result drops
/// both the value and any error it may hold, so the -Werror build rejects
/// it (DESIGN.md §11, rule D4).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value or from an error Status keeps call
  /// sites terse: `return value;` / `return Status::NotFound(...)`.
  Result(T value) : data_(std::move(value)) {}            // NOLINT
  Result(Status status) : data_(std::move(status)) {      // NOLINT
    assert(!std::get<Status>(data_).ok() &&
           "Result constructed from OK status without a value");
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace massbft

/// Evaluates a Result expression; on error propagates the Status, otherwise
/// moves the value into `lhs`. Usable in functions returning Status or
/// Result<U>.
#define MASSBFT_ASSIGN_OR_RETURN(lhs, expr)                 \
  auto MASSBFT_CONCAT_(_result_, __LINE__) = (expr);        \
  if (!MASSBFT_CONCAT_(_result_, __LINE__).ok())            \
    return MASSBFT_CONCAT_(_result_, __LINE__).status();    \
  lhs = std::move(MASSBFT_CONCAT_(_result_, __LINE__)).value()
#define MASSBFT_CONCAT_(a, b) MASSBFT_CONCAT_IMPL_(a, b)
#define MASSBFT_CONCAT_IMPL_(a, b) a##b

#endif  // MASSBFT_COMMON_RESULT_H_
