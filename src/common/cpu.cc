#include "common/cpu.h"

#include <cctype>
#include <cstdlib>

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif

namespace massbft {

const CpuFeatures& GetCpuFeatures() {
  static const CpuFeatures features = [] {
    CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
    __builtin_cpu_init();
    f.ssse3 = __builtin_cpu_supports("ssse3") != 0;
    f.avx2 = __builtin_cpu_supports("avx2") != 0;
    f.sha_ni = __builtin_cpu_supports("sha") != 0;
    f.pclmul = __builtin_cpu_supports("pclmul") != 0;
#elif defined(__aarch64__) && defined(__linux__)
    f.arm_crc32 = (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
#endif
    return f;
  }();
  return features;
}

const std::string& SimdOverride() {
  static const std::string value = [] {
    const char* env = std::getenv("MASSBFT_SIMD");
    std::string v = env == nullptr ? "" : env;
    for (char& c : v) c = static_cast<char>(std::tolower(c));
    return v;
  }();
  return value;
}

}  // namespace massbft
