#include "common/zipf.h"

#include <cassert>
#include <cmath>

namespace massbft {

double ZipfGenerator::ZetaStatic(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  assert(n > 0);
  zetan_ = ZetaStatic(n, theta);
  zeta2theta_ = ZetaStatic(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (v >= n_) v = n_ - 1;
  return v;
}

}  // namespace massbft
