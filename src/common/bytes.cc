#include "common/bytes.h"

namespace massbft {

std::string ToHex(const uint8_t* data, size_t len) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xF]);
  }
  return out;
}

}  // namespace massbft
