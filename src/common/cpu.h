#ifndef MASSBFT_COMMON_CPU_H_
#define MASSBFT_COMMON_CPU_H_

#include <string>

namespace massbft {

/// Runtime CPU capabilities relevant to the hot kernels (GF(2^8) coding,
/// SHA-256 and the CRC-32 frame checksum). The x86 flags are false on
/// other architectures and vice versa; portable scalar paths exist
/// everywhere.
struct CpuFeatures {
  bool ssse3 = false;
  bool avx2 = false;
  bool sha_ni = false;
  /// x86 carry-less multiply (PCLMULQDQ) — CRC-32 folding.
  bool pclmul = false;
  /// ARMv8 CRC32 extension (__crc32b/h/w/d).
  bool arm_crc32 = false;
};

/// Detected features of the running CPU (detection runs once).
const CpuFeatures& GetCpuFeatures();

/// Lowercased value of the MASSBFT_SIMD environment variable ("" if unset).
/// Recognized values: "scalar" (force portable kernels everywhere),
/// "ssse3", "avx2" (cap the GF(2^8) kernel tier), "auto"/"" (use the best
/// supported). Each kernel family reads this once at first dispatch and
/// logs its decision.
const std::string& SimdOverride();

}  // namespace massbft

#endif  // MASSBFT_COMMON_CPU_H_
