#ifndef MASSBFT_COMMON_ZIPF_H_
#define MASSBFT_COMMON_ZIPF_H_

#include <cstdint>

#include "common/rng.h"

namespace massbft {

/// Zipfian key-popularity generator following the YCSB reference
/// implementation (Gray et al.'s algorithm), used for the YCSB-A/B
/// workloads with the paper's skew factor theta = 0.99.
///
/// Draws values in [0, n). The mapping from rank to item is the identity
/// (callers that want scattered hot keys can hash the result).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  /// Number of items in the distribution's support.
  uint64_t n() const { return n_; }

  uint64_t Next(Rng& rng);

 private:
  static double ZetaStatic(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace massbft

#endif  // MASSBFT_COMMON_ZIPF_H_
