#ifndef MASSBFT_COMMON_INLINE_FUNCTION_H_
#define MASSBFT_COMMON_INLINE_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace massbft {

/// Move-only callable wrapper with small-buffer optimization, built for the
/// simulator's event loop: scheduling an event must not allocate.
///
/// Callables up to `InlineBytes` (with max_align_t-compatible alignment and
/// a non-throwing move constructor) are stored inline; anything larger
/// falls back to the heap, so correctness never depends on capture size —
/// only speed does. Unlike std::function there is no copy, no target(),
/// no allocator support: just construct, move, and invoke.
template <typename Signature, size_t InlineBytes = 48>
class InlineFunction;

template <typename R, typename... Args, size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  InlineFunction() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      vtable_ = &kInlineVTable<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      vtable_ = &kHeapVTable<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  explicit operator bool() const { return vtable_ != nullptr; }

  R operator()(Args... args) {
    return vtable_->invoke(storage_, std::forward<Args>(args)...);
  }

  /// True if the held callable lives in the inline buffer (test probe).
  bool is_inline() const { return vtable_ != nullptr && vtable_->is_inline; }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    /// Move-constructs the callable from `src` storage into `dst` storage
    /// and destroys the source.
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void*);
    bool is_inline;
  };

  template <typename D>
  static constexpr bool kFitsInline =
      sizeof(D) <= InlineBytes && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static D* InlineTarget(void* s) {
    return std::launder(static_cast<D*>(s));
  }
  template <typename D>
  static D** HeapSlot(void* s) {
    return std::launder(static_cast<D**>(s));
  }

  template <typename D>
  static constexpr VTable kInlineVTable = {
      [](void* s, Args&&... args) -> R {
        return (*InlineTarget<D>(s))(std::forward<Args>(args)...);
      },
      [](void* src, void* dst) {
        D* from = InlineTarget<D>(src);
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) { InlineTarget<D>(s)->~D(); },
      /*is_inline=*/true,
  };

  template <typename D>
  static constexpr VTable kHeapVTable = {
      [](void* s, Args&&... args) -> R {
        return (**HeapSlot<D>(s))(std::forward<Args>(args)...);
      },
      [](void* src, void* dst) { ::new (dst) D*(*HeapSlot<D>(src)); },
      [](void* s) { delete *HeapSlot<D>(s); },
      /*is_inline=*/false,
  };

  void MoveFrom(InlineFunction& other) noexcept {
    if (other.vtable_ == nullptr) return;
    other.vtable_->relocate(other.storage_, storage_);
    vtable_ = other.vtable_;
    other.vtable_ = nullptr;
  }

  void Reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
  const VTable* vtable_ = nullptr;
};

}  // namespace massbft

#endif  // MASSBFT_COMMON_INLINE_FUNCTION_H_
