#ifndef MASSBFT_COMMON_CODEC_H_
#define MASSBFT_COMMON_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace massbft {

/// Encoded size of `v` as an unsigned LEB128 varint (1-10 bytes). Lets
/// ByteSize() helpers stay exact without running an encoder.
constexpr size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Append-only little-endian binary encoder. All wire messages in proto/
/// serialize through this so that the byte counts charged to simulated
/// links are the real encoded sizes.
class BinaryWriter {
 public:
  BinaryWriter() = default;
  explicit BinaryWriter(size_t reserve) { buf_.reserve(reserve); }
  /// Adopts an existing buffer, clearing its contents but keeping its
  /// capacity — the allocation-free encode path: a pooled buffer goes in,
  /// Release() hands it back grown at most once, and after a few frames of
  /// warm-up the capacity fits every recurring message size.
  explicit BinaryWriter(Bytes&& adopt) : buf_(std::move(adopt)) {
    buf_.clear();
  }

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutLE(v, 2); }
  void PutU32(uint32_t v) { PutLE(v, 4); }
  void PutU64(uint64_t v) { PutLE(v, 8); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  /// Unsigned LEB128; compact for the many small ids/counters on the wire.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }

  /// Length-prefixed (varint) byte blob.
  void PutBytes(const Bytes& b) {
    PutVarint(b.size());
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  void PutString(const std::string& s) {
    PutVarint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  /// Raw bytes, no length prefix (fixed-size fields like digests).
  void PutRaw(const uint8_t* data, size_t len) {
    buf_.insert(buf_.end(), data, data + len);
  }

  /// Overwrites 4 already-written bytes at `offset` (little-endian).
  /// For frame fields whose value is only known after the payload is
  /// appended (body length, CRC) — the single-pass encoder writes a
  /// placeholder, appends, then patches.
  void PatchU32(size_t offset, uint32_t v) {
    for (int i = 0; i < 4; ++i)
      buf_[offset + static_cast<size_t>(i)] =
          static_cast<uint8_t>(v >> (8 * i));
  }

  size_t size() const { return buf_.size(); }
  const Bytes& buffer() const { return buf_; }
  Bytes Release() { return std::move(buf_); }

 private:
  void PutLE(uint64_t v, int n) {
    for (int i = 0; i < n; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  Bytes buf_;
};

/// Bounds-checked little-endian decoder over a borrowed buffer. Every getter
/// reports Corruption instead of reading past the end, so malformed (e.g.
/// tampered) messages are rejected rather than crashing the node.
class BinaryReader {
 public:
  BinaryReader(const uint8_t* data, size_t len)
      : data_(data), len_(len), pos_(0) {}
  explicit BinaryReader(const Bytes& b) : BinaryReader(b.data(), b.size()) {}

  Status GetU8(uint8_t* out) { return GetLE(out, 1); }
  Status GetU16(uint16_t* out) { return GetLE(out, 2); }
  Status GetU32(uint32_t* out) { return GetLE(out, 4); }
  Status GetU64(uint64_t* out) { return GetLE(out, 8); }
  Status GetI64(int64_t* out) {
    uint64_t u = 0;
    MASSBFT_RETURN_IF_ERROR(GetU64(&u));
    *out = static_cast<int64_t>(u);
    return Status::OK();
  }

  Status GetVarint(uint64_t* out) {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= len_) return Status::Corruption("truncated varint");
      if (shift >= 64) return Status::Corruption("varint too long");
      uint8_t byte = data_[pos_++];
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    *out = v;
    return Status::OK();
  }

  Status GetBytes(Bytes* out) {
    uint64_t n = 0;
    MASSBFT_RETURN_IF_ERROR(GetVarint(&n));
    if (n > Remaining()) return Status::Corruption("truncated blob");
    out->assign(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return Status::OK();
  }

  Status GetString(std::string* out) {
    uint64_t n = 0;
    MASSBFT_RETURN_IF_ERROR(GetVarint(&n));
    if (n > Remaining()) return Status::Corruption("truncated string");
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return Status::OK();
  }

  Status GetRaw(uint8_t* out, size_t len) {
    if (len > Remaining()) return Status::Corruption("truncated raw field");
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  size_t Remaining() const { return len_ - pos_; }
  bool AtEnd() const { return pos_ == len_; }

 private:
  template <typename T>
  Status GetLE(T* out, int n) {
    if (static_cast<size_t>(n) > Remaining())
      return Status::Corruption("truncated integer");
    uint64_t v = 0;
    for (int i = 0; i < n; ++i)
      v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += n;
    *out = static_cast<T>(v);
    return Status::OK();
  }

  const uint8_t* data_;
  size_t len_;
  size_t pos_;
};

}  // namespace massbft

#endif  // MASSBFT_COMMON_CODEC_H_
