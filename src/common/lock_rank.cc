#include "common/lock_rank.h"

#include <cstdio>
#include <cstdlib>

namespace massbft {
namespace lock_rank_internal {
namespace {

// Per-thread stack of held ranked locks. Fixed depth: the deepest legal
// chain today is introspection -> runtime -> fault -> transport -> pool,
// so 16 leaves generous headroom; overflow is itself a bug worth a crash.
constexpr int kMaxHeldLocks = 16;

struct HeldLock {
  int rank;
  const char* name;
};

thread_local HeldLock g_held[kMaxHeldLocks];
thread_local int g_held_count = 0;

[[noreturn]] void Die(const char* what, int rank, const char* name) {
  std::fprintf(stderr,
               "massbft: lock-rank violation: %s '%s' (rank %d)\n"
               "massbft: locks held by this thread (acquisition order):\n",
               what, name, rank);
  for (int i = 0; i < g_held_count; ++i) {
    std::fprintf(stderr, "massbft:   [%d] '%s' (rank %d)\n", i,
                 g_held[i].name, g_held[i].rank);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void OnAcquire(int rank, const char* name) {
  for (int i = 0; i < g_held_count; ++i) {
    if (g_held[i].rank >= rank) {
      Die("acquiring", rank, name);
    }
  }
  if (g_held_count >= kMaxHeldLocks) {
    Die("lock stack overflow acquiring", rank, name);
  }
  g_held[g_held_count++] = HeldLock{rank, name};
}

void OnRelease(int rank, const char* name) {
  // Search newest-first: releases are usually LIFO, but a condvar wait
  // legitimately releases a lock that is not on top of the stack.
  for (int i = g_held_count - 1; i >= 0; --i) {
    if (g_held[i].rank == rank && g_held[i].name == name) {
      for (int j = i; j + 1 < g_held_count; ++j) g_held[j] = g_held[j + 1];
      --g_held_count;
      return;
    }
  }
  Die("releasing un-held", rank, name);
}

int HeldCount() { return g_held_count; }

}  // namespace lock_rank_internal
}  // namespace massbft
