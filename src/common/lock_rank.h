#ifndef MASSBFT_COMMON_LOCK_RANK_H_
#define MASSBFT_COMMON_LOCK_RANK_H_

/// Ranked mutexes: the concurrency backbone of the threaded runtime
/// (DESIGN.md §16). Every mutex in src/ is a RankedMutex, which buys two
/// machine checks at once:
///
///  1. RankedMutex is a clang thread-safety *capability*
///     (MASSBFT_CAPABILITY), so `-Werror=thread-safety` statically proves
///     that every MASSBFT_GUARDED_BY(mu_) member is only touched with mu_
///     held. libstdc++'s std::mutex carries no capability annotations, so
///     the analysis is vacuous without this wrapper.
///
///  2. In debug builds (and whenever MASSBFT_LOCK_RANK_CHECKS is forced on,
///     e.g. the TSan CI leg) each acquisition is checked against a
///     per-thread stack of held ranks. Acquiring a mutex whose rank is not
///     strictly greater than every rank already held aborts immediately,
///     printing both lock names and the full held stack — turning a latent
///     lock-order-inversion deadlock into a deterministic crash at the
///     first wrong nesting, even if the deadlock itself never fires.
///
/// The global rank order (outermost first) lives in LockRank below; the
/// rationale for each edge is tabulated in DESIGN.md §16.

#include <mutex>

#include "common/thread_annotations.h"

// Rank checking defaults to debug builds only; release builds pay nothing
// beyond the name/rank fields. CMake's MASSBFT_LOCK_RANK_CHECKS=ON forces
// it on in optimized sanitizer legs (which define NDEBUG).
#if !defined(MASSBFT_LOCK_RANK_CHECKS)
#if !defined(NDEBUG)
#define MASSBFT_LOCK_RANK_CHECKS 1
#else
#define MASSBFT_LOCK_RANK_CHECKS 0
#endif
#endif

namespace massbft {

/// Global lock order, outermost first. A thread may only acquire a mutex
/// whose rank is STRICTLY greater than every rank it already holds; equal
/// ranks never nest (e.g. the two in-process endpoint mutexes share
/// kTransport because routing always releases one before taking the next).
/// Gaps leave room to slot new layers in without renumbering.
enum class LockRank : int {
  kClusterIntrospection = 10,  // RealCluster: kill/restart/stats vs lifecycle
  kRuntimeQueue = 20,          // NodeRuntime: post queue + running flag
  kFaultInjector = 30,         // FaultInjectingTransport: fault state + timers
  kTransport = 40,             // TcpTransport / InProc hub + endpoints
  kBufferPool = 50,            // WireBufferPool free list (under kTransport)
  kObsRecorder = 60,           // Trace/Flight recorders (under kTransport)
  kCryptoKeys = 65,            // KeyRegistry key material; leaf-like
  kLeafCache = 70,             // process-wide memo caches (RS factory); leaf
};

namespace lock_rank_internal {

/// Always compiled (even when MASSBFT_LOCK_RANK_CHECKS is 0) so the death
/// test proving abort-on-inversion runs in every build type. Aborts with
/// both lock names when `rank` is not strictly above the held stack.
void OnAcquire(int rank, const char* name);

/// Removes the most recent matching entry; aborts if the thread does not
/// hold it. Non-LIFO release is legal (condvar waits release mid-stack).
void OnRelease(int rank, const char* name);

/// Number of ranked locks the calling thread currently holds (test seam).
int HeldCount();

}  // namespace lock_rank_internal

/// Drop-in std::mutex replacement carrying a human-readable name, a
/// LockRank, and clang capability annotations. Lowercase lock()/unlock()
/// keep it BasicLockable so std::condition_variable_any can wait on it
/// directly while a MutexLock guard is live.
class MASSBFT_CAPABILITY("mutex") RankedMutex {
 public:
  constexpr RankedMutex(const char* name, LockRank rank)
      : name_(name), rank_(rank) {}
  RankedMutex(const RankedMutex&) = delete;
  RankedMutex& operator=(const RankedMutex&) = delete;

  void lock() MASSBFT_ACQUIRE() {
#if MASSBFT_LOCK_RANK_CHECKS
    lock_rank_internal::OnAcquire(static_cast<int>(rank_), name_);
#endif
    mu_.lock();
  }

  void unlock() MASSBFT_RELEASE() {
    mu_.unlock();
#if MASSBFT_LOCK_RANK_CHECKS
    lock_rank_internal::OnRelease(static_cast<int>(rank_), name_);
#endif
  }

  [[nodiscard]] bool try_lock() MASSBFT_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if MASSBFT_LOCK_RANK_CHECKS
    lock_rank_internal::OnAcquire(static_cast<int>(rank_), name_);
#endif
    return true;
  }

  [[nodiscard]] const char* name() const { return name_; }
  [[nodiscard]] LockRank rank() const { return rank_; }

 private:
  // RankedMutex IS the capability; the wrapped std::mutex guards nothing.
  // lint: mutex-guard-ok(the raw mutex inside RankedMutex itself)
  std::mutex mu_;
  const char* name_;
  LockRank rank_;
};

/// Abseil-style scoped guard over RankedMutex; the only sanctioned way to
/// lock one outside this header (lint rule D7 bans bare .lock()/.unlock()).
// lint-file: bare-lock-ok(the RAII seam itself: the bare calls live here)
class MASSBFT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(RankedMutex* mu) MASSBFT_ACQUIRE(mu) : mu_(mu) {
    mu_->lock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() MASSBFT_RELEASE() { mu_->unlock(); }

 private:
  RankedMutex* mu_;
};

}  // namespace massbft

#endif  // MASSBFT_COMMON_LOCK_RANK_H_
