#ifndef MASSBFT_COMMON_BYTES_H_
#define MASSBFT_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace massbft {

/// The project-wide raw byte buffer. Entries, chunks and wire messages are
/// all carried as Bytes; sizes of these buffers are what the network
/// simulator charges against link bandwidth.
using Bytes = std::vector<uint8_t>;

/// Converts a string literal / std::string payload into Bytes.
inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Renders a byte buffer as lowercase hex (for logs and test diagnostics).
std::string ToHex(const uint8_t* data, size_t len);
inline std::string ToHex(const Bytes& b) { return ToHex(b.data(), b.size()); }

}  // namespace massbft

#endif  // MASSBFT_COMMON_BYTES_H_
