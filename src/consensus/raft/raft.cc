#include "consensus/raft/raft.h"

#include <utility>

#include "common/logging.h"
#include "consensus/pbft/certifier.h"

namespace massbft {

RaftCoordinator::RaftCoordinator(int num_groups, int my_group,
                                 Callbacks callbacks)
    : num_groups_(num_groups), my_group_(my_group), cb_(std::move(callbacks)) {
  if (cb_.telemetry != nullptr) {
    commit_hist_ = cb_.telemetry->registry().GetHistogram(
        "raft/global_commit_ms");
    commit_counter_ = cb_.telemetry->registry().GetCounter("raft/commits");
  }
}

void RaftCoordinator::Propose(uint16_t gid, uint64_t seq, const Digest& digest,
                              const Certificate& cert, uint16_t origin_gid,
                              uint64_t origin_seq) {
  Instance& inst = instances_[gid];
  InstanceEntry& e = inst.log[seq];
  e.digest = digest;
  e.proposed = true;
  if (cb_.now && e.proposed_at < 0) e.proposed_at = cb_.now();
  e.accept_groups.insert(static_cast<uint16_t>(my_group_));

  auto msg = std::make_shared<RaftProposeMsg>(
      gid, seq, digest, cert, std::vector<TimestampElement>{}, origin_gid,
      origin_seq);
  for (int g = 0; g < num_groups_; ++g) {
    if (g == my_group_) continue;
    cb_.send_to_group(g, msg);
  }
  // A single group (n_g == 1) commits immediately.
  if (static_cast<int>(e.accept_groups.size()) >= GroupQuorum() &&
      !e.commit_started) {
    e.commit_started = true;
    DecisionId decision{DigestCertifier::kCommitDecision,
                        static_cast<uint16_t>(my_group_), gid, seq, 0};
    cb_.certify(decision, [this, gid, seq](Certificate commit_cert) {
      auto commit = std::make_shared<RaftCommitMsg>(gid, seq,
                                                    std::move(commit_cert));
      for (int g = 0; g < num_groups_; ++g)
        if (g != my_group_) cb_.send_to_group(g, commit);
      MarkCommitted(gid, seq);
    });
  }
}

void RaftCoordinator::OnProposeControl(const RaftProposeMsg& msg) {
  if (static_cast<int>(msg.gid()) == my_group_) return;  // Own instance.
  Instance& inst = instances_[msg.gid()];
  InstanceEntry& e = inst.log[msg.seq()];
  if (e.proposed) {
    // Duplicate — typically a recovered proposer filling a hole in its
    // instance. Resend our accept receipt so it can reach quorum.
    if (e.cached_accept != nullptr)
      cb_.send_to_group(msg.gid(), e.cached_accept);
    return;
  }
  if (!cb_.verify_group_cert(msg.cert(), msg.digest())) {
    MASSBFT_LOG(kWarn) << "raft: propose with invalid certificate from group "
                       << msg.gid();
    return;
  }
  e.digest = msg.digest();
  e.proposed = true;
  MaybeStartAccept(msg.gid(), msg.seq());
}

void RaftCoordinator::NotifyEntryAvailable(uint16_t gid, uint64_t seq) {
  if (static_cast<int>(gid) == my_group_) return;
  MaybeStartAccept(gid, seq);
}

void RaftCoordinator::MaybeStartAccept(uint16_t gid, uint64_t seq) {
  Instance& inst = instances_[gid];
  auto it = inst.log.find(seq);
  if (it == inst.log.end()) return;
  InstanceEntry& e = it->second;
  // Accept needs both the propose control (for the certified digest) and
  // the actual entry payload on this node.
  if (!e.proposed || e.accept_started) return;
  if (!cb_.has_entry(gid, seq)) return;
  e.accept_started = true;

  // Overlapped VTS assignment (Fig 7b): stamp our clock now, certify the
  // (accept, ts) decision locally, then ship the receipt.
  uint64_t ts = cb_.assign_ts(gid, seq);
  DecisionId decision{DigestCertifier::kAccept,
                      static_cast<uint16_t>(my_group_), gid, seq, ts};
  cb_.certify(decision, [this, gid, seq, ts](Certificate cert) {
    Instance& inst = instances_[gid];
    InstanceEntry& e = inst.log[seq];
    if (e.accept_sent) return;
    e.accept_sent = true;
    // Track our own accept so a later takeover of this instance can count
    // quorums without replaying history.
    e.accept_groups.insert(static_cast<uint16_t>(my_group_));
    auto accept = std::make_shared<RaftAcceptMsg>(
        gid, seq, static_cast<uint16_t>(my_group_), std::move(cert), ts);
    e.cached_accept = accept;
    // To the proposer, and broadcast to all other groups so slow receivers
    // learn replication progress without waiting for payloads (paper
    // Section V-C, "Slow Receiver Groups").
    for (int g = 0; g < num_groups_; ++g)
      if (g != my_group_) cb_.send_to_group(g, accept);
    // Record our own observation (feeds the local VTS table).
    cb_.on_accept_observed(gid, seq, static_cast<uint16_t>(my_group_), ts);
  });
}

void RaftCoordinator::OnAccept(const RaftAcceptMsg& msg) {
  DecisionId decision{DigestCertifier::kAccept, msg.from_group(), msg.gid(),
                      msg.seq(), msg.ts()};
  Digest digest = DigestCertifier::DecisionDigest(decision);
  if (!cb_.verify_group_cert(msg.cert(), digest)) {
    MASSBFT_LOG(kWarn) << "raft: accept with invalid certificate";
    return;
  }
  cb_.on_accept_observed(msg.gid(), msg.seq(), msg.from_group(), msg.ts());

  // Record the accept for the instance regardless of role: takeover
  // leaders need the quorum history (Section V-C, "Crashed Groups").
  Instance& inst = instances_[msg.gid()];
  InstanceEntry& e = inst.log[msg.seq()];
  e.accept_groups.insert(msg.from_group());

  if (static_cast<int>(msg.gid()) == my_group_ || HasTakenOver(msg.gid()))
    MaybeStartCommit(msg.gid(), msg.seq());
}

void RaftCoordinator::MaybeStartCommit(uint16_t gid, uint64_t seq) {
  Instance& inst = instances_[gid];
  auto it = inst.log.find(seq);
  if (it == inst.log.end()) return;
  InstanceEntry& e = it->second;
  if (static_cast<int>(e.accept_groups.size()) < GroupQuorum() ||
      e.commit_started || e.committed)
    return;
  e.commit_started = true;

  DecisionId commit_decision{DigestCertifier::kCommitDecision,
                             static_cast<uint16_t>(my_group_), gid, seq, 0};
  cb_.certify(commit_decision, [this, gid, seq](Certificate commit_cert) {
    auto commit = std::make_shared<RaftCommitMsg>(gid, seq,
                                                  std::move(commit_cert));
    for (int g = 0; g < num_groups_; ++g)
      if (g != my_group_) cb_.send_to_group(g, commit);
    MarkCommitted(gid, seq);
  });
}

void RaftCoordinator::OnCommit(const RaftCommitMsg& msg) {
  // The commit certificate is issued by the proposer group (or its
  // takeover group); the decision binds (gid, seq).
  bool valid = false;
  for (int voter = 0; voter < num_groups_ && !valid; ++voter) {
    DecisionId decision{DigestCertifier::kCommitDecision,
                        static_cast<uint16_t>(voter), msg.gid(), msg.seq(), 0};
    if (msg.cert().gid == voter &&
        cb_.verify_group_cert(msg.cert(),
                              DigestCertifier::DecisionDigest(decision)))
      valid = true;
  }
  if (!valid) {
    MASSBFT_LOG(kWarn) << "raft: commit with invalid certificate";
    return;
  }
  MarkCommitted(msg.gid(), msg.seq());
}

void RaftCoordinator::MarkCommitted(uint16_t gid, uint64_t seq) {
  Instance& inst = instances_[gid];
  InstanceEntry& e = inst.log[seq];
  if (e.committed) return;
  e.committed = true;
  if (commit_counter_ != nullptr) {
    commit_counter_->Add();
    // Proposer side only: followers never set proposed_at.
    if (cb_.now && e.proposed_at >= 0) {
      SimTime now = cb_.now();
      commit_hist_->Record(SimToSeconds(now - e.proposed_at) * 1e3);
      obs::TraceRecorder& trace = cb_.telemetry->trace();
      if (trace.enabled()) {
        trace.RecordSpan(cb_.trace_track, "raft", "global_commit",
                         e.proposed_at, now,
                         obs::TraceArgs{{{"gid", static_cast<double>(gid)},
                                         {"seq", static_cast<double>(seq)}}});
      }
    }
  }
  MaybeDeliverCommits(gid);
}

void RaftCoordinator::MaybeDeliverCommits(uint16_t gid) {
  Instance& inst = instances_[gid];
  // Deliver contiguously: raft logs commit in order per instance.
  while (true) {
    uint64_t next = static_cast<uint64_t>(inst.committed_through + 1);
    auto it = inst.log.find(next);
    if (it == inst.log.end() || !it->second.committed) break;
    if (!it->second.commit_delivered) {
      it->second.commit_delivered = true;
      cb_.on_committed(gid, next);
    }
    inst.committed_through = static_cast<int64_t>(next);
  }
}

void RaftCoordinator::TakeOverInstance(uint16_t gid) {
  taken_over_.insert(gid);
  // Complete whatever the crashed leader left in flight.
  Instance& inst = instances_[gid];
  std::vector<uint64_t> pending;
  for (const auto& [seq, e] : inst.log)
    if (!e.committed && !e.commit_started) pending.push_back(seq);
  for (uint64_t seq : pending) MaybeStartCommit(gid, seq);
}

int64_t RaftCoordinator::CommittedThrough(uint16_t gid) const {
  auto it = instances_.find(gid);
  if (it == instances_.end()) return -1;
  return it->second.committed_through;
}

}  // namespace massbft
