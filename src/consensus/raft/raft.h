#ifndef MASSBFT_CONSENSUS_RAFT_RAFT_H_
#define MASSBFT_CONSENSUS_RAFT_RAFT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "crypto/sha256.h"
#include "obs/telemetry.h"
#include "proto/entry.h"
#include "proto/messages.h"
#include "sim/time.h"

namespace massbft {

/// Group-level global Raft control plane (paper Section II-A "Baseline" and
/// Section V-A): every group is a logical Raft replica; group G_i leads the
/// i-th instance; entries flow propose -> accept -> commit. The entry
/// *payload* travels separately via the protocol's replication strategy
/// (one-way leader copies, bijective, or encoded bijective); this class
/// only drives the small control messages and quorum logic.
///
/// One RaftCoordinator runs on each group's *leader node*. Followers learn
/// outcomes via GroupRelayMsg over LAN (handled by the owning node).
///
/// Accept receipts are protected by skip-prepare local certification
/// (DigestCertifier) before leaving the group, so Byzantine leaders cannot
/// fabricate them. Accepts also carry the accepting group's clock value
/// `ts` — MassBFT's overlapped vector-timestamp assignment (Fig 7b);
/// protocols without VTS pass ts = 0.
class RaftCoordinator {
 public:
  struct Callbacks {
    /// Sends a control message to the leader node of `group` over WAN.
    std::function<void(int group, MessagePtr)> send_to_group;
    /// Starts local skip-prepare certification of `decision`; `done(cert)`
    /// fires on this (leader) node when 2f+1 shares are aggregated.
    std::function<void(const DecisionId&, std::function<void(Certificate)>)>
        certify;
    /// Verifies a remote group's certificate over `digest` (charges CPU).
    std::function<bool(const Certificate&, const Digest&)> verify_group_cert;
    /// True when this node holds the validated payload of e_{gid,seq}.
    std::function<bool(uint16_t gid, uint64_t seq)> has_entry;
    /// Clock value this group stamps on e_{gid,seq} when accepting
    /// (MassBFT VTS; return 0 when unused).
    std::function<uint64_t(uint16_t gid, uint64_t seq)> assign_ts;
    /// Fired in per-instance sequence order once e_{gid,seq} is globally
    /// committed (on the leader node; the owner relays to the group).
    std::function<void(uint16_t gid, uint64_t seq)> on_committed;
    /// Fired for every accept this leader observes (own or broadcast) —
    /// MassBFT harvests VTS elements from these.
    std::function<void(uint16_t target_gid, uint64_t target_seq,
                       uint16_t from_group, uint64_t ts)>
        on_accept_observed;
    /// Current sim time (optional; enables the observability below).
    std::function<SimTime()> now;
    /// Observability sink (optional). With `now` set, proposer-side
    /// entries report propose -> global-commit durations into
    /// "raft/global_commit_ms" and — when tracing — spans on
    /// `trace_track`.
    obs::Telemetry* telemetry = nullptr;
    uint32_t trace_track = 0;
  };

  RaftCoordinator(int num_groups, int my_group, Callbacks callbacks);

  /// Majority of groups, counting the proposer itself: floor(n_g/2)+1.
  int GroupQuorum() const { return num_groups_ / 2 + 1; }

  /// Proposer (leader of my_group): starts consensus on a locally-certified
  /// entry. The caller has already launched payload replication.
  /// `origin_gid`/`origin_seq` annotate funneled entries in single-master
  /// (Steward) mode so receivers can map the global sequence back to the
  /// origin entry.
  void Propose(uint16_t gid, uint64_t seq, const Digest& digest,
               const Certificate& cert, uint16_t origin_gid = 0,
               uint64_t origin_seq = 0);

  /// Follower-group leader: a propose control message arrived.
  void OnProposeControl(const RaftProposeMsg& msg);

  /// The payload of e_{gid,seq} became available on this node (rebuilt or
  /// received); accept certification may proceed.
  void NotifyEntryAvailable(uint16_t gid, uint64_t seq);

  /// An accept receipt arrived (addressed to us as proposer, or broadcast).
  void OnAccept(const RaftAcceptMsg& msg);

  /// A commit announcement arrived from a proposer group.
  void OnCommit(const RaftCommitMsg& msg);

  /// Externally-learned commit (catch-up replay after recovery): marks the
  /// entry committed and advances the contiguous-delivery cursor without
  /// requiring the (long gone) commit message.
  void NoteCommitted(uint16_t gid, uint64_t seq) { MarkCommitted(gid, seq); }

  /// Crash takeover (paper Section V-C): this group's leader becomes the
  /// new leader of crashed group `gid`'s Raft instance. In-flight
  /// proposals that already gathered a quorum of accepts are driven to
  /// commit so execution can resume; the VTS element of `gid` is frozen by
  /// the owner node.
  void TakeOverInstance(uint16_t gid);
  bool HasTakenOver(uint16_t gid) const { return taken_over_.contains(gid); }
  /// Returns the instance to its original (recovered) group.
  void ReleaseInstance(uint16_t gid) { taken_over_.erase(gid); }

  /// Highest contiguous committed sequence per instance (-1 if none).
  int64_t CommittedThrough(uint16_t gid) const;

 private:
  struct InstanceEntry {
    Digest digest{};
    bool proposed = false;            // Propose control seen.
    bool accept_started = false;      // Accept certification launched.
    bool accept_sent = false;
    bool committed = false;
    bool commit_delivered = false;
    std::set<uint16_t> accept_groups;  // Proposer side: who accepted.
    bool commit_started = false;       // Proposer side.
    /// Our accept receipt, cached so a re-propose after the proposer
    /// recovers from a crash can be answered again.
    MessagePtr cached_accept;
    SimTime proposed_at = -1;  // Proposer side, for observability.
  };
  struct Instance {
    std::map<uint64_t, InstanceEntry> log;
    int64_t committed_through = -1;  // Contiguously delivered.
  };

  void MaybeStartAccept(uint16_t gid, uint64_t seq);
  void MaybeStartCommit(uint16_t gid, uint64_t seq);
  void MaybeDeliverCommits(uint16_t gid);
  void MarkCommitted(uint16_t gid, uint64_t seq);

  int num_groups_;
  int my_group_;
  Callbacks cb_;
  std::map<uint16_t, Instance> instances_;
  std::set<uint16_t> taken_over_;
  // Pre-resolved observability handles (null when not wired).
  obs::Histogram* commit_hist_ = nullptr;
  obs::Counter* commit_counter_ = nullptr;
};

}  // namespace massbft

#endif  // MASSBFT_CONSENSUS_RAFT_RAFT_H_
