#ifndef MASSBFT_CONSENSUS_PBFT_PBFT_H_
#define MASSBFT_CONSENSUS_PBFT_PBFT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/bytes.h"
#include "crypto/sha256.h"
#include "crypto/signature.h"
#include "obs/telemetry.h"
#include "proto/entry.h"
#include "proto/messages.h"
#include "sim/network.h"
#include "sim/time.h"

namespace massbft {

/// Three-phase PBFT (pre-prepare / prepare / commit) over a single group,
/// as the paper's local consensus layer (Section II-A). One engine instance
/// runs per node; instances are keyed by (view, seq) and pipelined — the
/// leader may have many outstanding proposals.
///
/// The engine is transport- and clock-agnostic: the owning node injects
/// send/sign/verify/timer callbacks (which also charge simulated CPU).
/// A committed instance yields the entry plus a Certificate of 2f+1 commit
/// signatures — the artifact that protects the entry during global
/// replication.
///
/// View changes: followers arm a timer per in-flight proposal; if the
/// leader stalls, 2f+1 VIEW-CHANGE votes move the group to view v+1 with
/// leader node (v+1) mod n, which re-proposes all uncommitted entries it
/// has seen.
class PbftEngine {
 public:
  struct Callbacks {
    /// LAN broadcast to every other node of the group.
    std::function<void(MessagePtr)> broadcast;
    /// LAN unicast within the group.
    std::function<void(NodeId, MessagePtr)> send_to;
    /// Sign `data` with this node's key, charging CPU.
    std::function<Signature(const Bytes&)> sign;
    /// Verify a group member's signature, charging CPU.
    std::function<bool(NodeId, const Bytes&, const Signature&)> verify;
    /// Validate a proposed entry's transactions (charges per-transaction
    /// signature verification — the paper's dominant local-consensus cost)
    /// and invoke `done(valid)` when the simulated work completes.
    std::function<void(EntryPtr, std::function<void(bool)>)> validate_entry;
    /// One-shot timer.
    std::function<void(SimTime, std::function<void()>)> after;
    /// Fired exactly once per committed entry, on every correct node.
    std::function<void(EntryPtr, Certificate)> on_committed;
    /// Fired when this node enters a new view (after NEW-VIEW).
    std::function<void(uint64_t new_view, NodeId new_leader)> on_view_change;
    /// Current sim time (optional; enables the per-instance phase
    /// observability below).
    std::function<SimTime()> now;
    /// Observability sink (optional). With `now` set, each instance
    /// reports prepare/commit phase durations into the registry
    /// ("pbft/prepare_ms", "pbft/commit_ms") and — when tracing — emits
    /// spans on `trace_track`.
    obs::Telemetry* telemetry = nullptr;
    uint32_t trace_track = 0;
  };

  PbftEngine(uint16_t gid, NodeId self, int group_size, Callbacks callbacks);

  /// Disables the follower view-change timers (benchmarks with a correct
  /// leader avoid pointless timer events).
  void set_view_change_timeout(SimTime t) { view_change_timeout_ = t; }

  uint64_t view() const { return view_; }
  int leader_index() const { return static_cast<int>(view_ % n_); }
  bool IsLeader() const { return self_.index == leader_index(); }
  NodeId leader() const {
    return NodeId{gid_, static_cast<uint16_t>(leader_index())};
  }
  int quorum() const { return 2 * f_ + 1; }
  int f() const { return f_; }

  /// Leader: proposes `entry` in the next free sequence slot.
  /// Returns the assigned sequence number.
  uint64_t Propose(EntryPtr entry);

  /// Delivery entry point for kPrePrepare/kPrepare/kCommit/kViewChange/
  /// kNewView messages.
  void OnMessage(NodeId from, const MessagePtr& message);

  /// Number of instances that have committed on this node.
  uint64_t committed_count() const { return committed_count_; }

 private:
  struct Instance {
    EntryPtr entry;
    Digest digest{};
    bool digest_known = false;
    bool validated = false;
    bool prepared = false;
    bool committed = false;
    bool commit_broadcast = false;
    // Votes keyed by node index.
    std::map<uint16_t, Signature> prepares;
    std::map<uint16_t, Signature> commits;
    bool timer_armed = false;
    // Observability timestamps (set only when Callbacks::now is wired).
    SimTime started_at = -1;
    SimTime prepared_at = -1;
  };

  Bytes VotePayload(uint64_t view, uint64_t seq, const Digest& digest,
                    MessageType phase) const;
  Instance& GetInstance(uint64_t seq) { return instances_[seq]; }

  void OnPrePrepare(NodeId from, const PrePrepareMsg& msg);
  void OnVote(NodeId from, const PbftVoteMsg& msg);
  void MaybePrepare(uint64_t seq);
  void MaybeCommit(uint64_t seq);
  void BroadcastVote(MessageType phase, uint64_t seq, const Digest& digest);
  void ArmViewChangeTimer(uint64_t seq);
  void OnViewChangeVote(NodeId from, const ViewChangeMsg& msg);
  void EnterView(uint64_t new_view);
  /// Records one PBFT sub-phase into the registry histogram and (when
  /// tracing) the trace. No-op unless observability is wired.
  void ObservePhase(const char* name, obs::Histogram* hist, SimTime start,
                    SimTime end, uint64_t seq);

  uint16_t gid_;
  NodeId self_;
  int n_;
  int f_;
  Callbacks cb_;

  uint64_t view_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t committed_count_ = 0;
  SimTime view_change_timeout_ = 0;  // 0 = disabled.
  std::map<uint64_t, Instance> instances_;
  // View-change votes for each proposed new view.
  std::map<uint64_t, std::set<uint16_t>> view_change_votes_;

  // Pre-resolved observability handles (null when not wired).
  obs::Histogram* prepare_hist_ = nullptr;
  obs::Histogram* commit_hist_ = nullptr;
  obs::Counter* view_change_counter_ = nullptr;
};

}  // namespace massbft

#endif  // MASSBFT_CONSENSUS_PBFT_PBFT_H_
