#include "consensus/pbft/pbft.h"

#include <utility>

#include "common/codec.h"
#include "common/logging.h"

namespace massbft {

PbftEngine::PbftEngine(uint16_t gid, NodeId self, int group_size,
                       Callbacks callbacks)
    : gid_(gid), self_(self), n_(group_size), f_((group_size - 1) / 3),
      cb_(std::move(callbacks)) {
  MASSBFT_CHECK(self.group == gid);
  if (cb_.telemetry != nullptr) {
    obs::MetricsRegistry& registry = cb_.telemetry->registry();
    prepare_hist_ = registry.GetHistogram("pbft/prepare_ms");
    commit_hist_ = registry.GetHistogram("pbft/commit_ms");
    view_change_counter_ = registry.GetCounter("pbft/view_changes");
  }
}

void PbftEngine::ObservePhase(const char* name, obs::Histogram* hist,
                              SimTime start, SimTime end, uint64_t seq) {
  if (hist == nullptr || start < 0) return;
  hist->Record(SimToSeconds(end - start) * 1e3);
  obs::TraceRecorder& trace = cb_.telemetry->trace();
  if (trace.enabled()) {
    trace.RecordSpan(cb_.trace_track, "pbft", name, start, end,
                     obs::TraceArgs{{{"gid", static_cast<double>(gid_)},
                                     {"seq", static_cast<double>(seq)}}});
  }
}

Bytes PbftEngine::VotePayload(uint64_t view, uint64_t seq,
                              const Digest& digest, MessageType phase) const {
  // Commit votes sign the bare entry digest: the 2f+1 commit signatures
  // ARE the certificate that travels with the entry, and remote groups
  // verify it against the digest alone (Certificate::Verify). The digest
  // already binds the entry identity (gid, seq, transactions).
  if (phase == MessageType::kCommit)
    return Bytes(digest.begin(), digest.end());
  BinaryWriter w(64);
  w.PutU8(static_cast<uint8_t>(phase));
  w.PutU16(gid_);
  w.PutU64(view);
  w.PutU64(seq);
  w.PutRaw(digest.data(), digest.size());
  return w.Release();
}

uint64_t PbftEngine::Propose(EntryPtr entry) {
  MASSBFT_CHECK(IsLeader());
  uint64_t seq = next_seq_++;
  Instance& inst = GetInstance(seq);
  inst.entry = entry;
  inst.digest = entry->digest();
  inst.digest_known = true;
  if (cb_.now) inst.started_at = cb_.now();
  inst.validated = true;  // The leader built the batch; it has verified
                          // client signatures on ingest.
  Signature sig =
      cb_.sign(VotePayload(view_, seq, inst.digest, MessageType::kPrePrepare));
  auto msg = std::make_shared<PrePrepareMsg>(view_, seq, entry, sig);
  cb_.broadcast(msg);
  // The leader's pre-prepare stands in for its prepare vote; record it so
  // quorum counting is uniform.
  inst.prepares[self_.index] =
      cb_.sign(VotePayload(view_, seq, inst.digest, MessageType::kPrepare));
  MaybePrepare(seq);
  return seq;
}

void PbftEngine::OnMessage(NodeId from, const MessagePtr& message) {
  if (from.group != gid_) return;  // Local consensus is intra-group only.
  switch (static_cast<MessageType>(message->type())) {
    case MessageType::kPrePrepare:
      OnPrePrepare(from, static_cast<const PrePrepareMsg&>(*message));
      break;
    case MessageType::kPrepare:
    case MessageType::kCommit:
      OnVote(from, static_cast<const PbftVoteMsg&>(*message));
      break;
    case MessageType::kViewChange:
      OnViewChangeVote(from, static_cast<const ViewChangeMsg&>(*message));
      break;
    case MessageType::kNewView: {
      const auto& nv = static_cast<const ViewChangeMsg&>(*message);
      if (nv.new_view() > view_) EnterView(nv.new_view());
      break;
    }
    default:
      MASSBFT_LOG(kWarn) << "pbft: unexpected message type "
                         << message->type();
  }
}

void PbftEngine::OnPrePrepare(NodeId from, const PrePrepareMsg& msg) {
  if (msg.view() != view_) return;
  if (from.index != leader_index()) return;  // Only the leader proposes.
  Instance& inst = GetInstance(msg.seq());
  if (inst.digest_known) return;  // Duplicate (or equivocation; first wins —
                                  // equivocation cannot gather two quorums).
  const Digest& digest = msg.entry()->digest();
  if (!cb_.verify(from,
                  VotePayload(msg.view(), msg.seq(), digest,
                              MessageType::kPrePrepare),
                  msg.sig()))
    return;

  inst.entry = msg.entry();
  inst.digest = digest;
  inst.digest_known = true;
  if (cb_.now) inst.started_at = cb_.now();
  // The pre-prepare stands in for the leader's prepare vote (classic PBFT
  // counts it toward the 2f+1 prepare quorum).
  inst.prepares.emplace(from.index, msg.sig());
  ArmViewChangeTimer(msg.seq());

  // Validate the batch (per-transaction signature verification — the
  // dominant CPU cost of local consensus per the paper's Fig 11), then
  // vote prepare.
  uint64_t seq = msg.seq();
  cb_.validate_entry(msg.entry(), [this, seq](bool valid) {
    if (!valid) return;  // Faulty leader; the view-change timer handles it.
    Instance& inst = GetInstance(seq);
    inst.validated = true;
    Signature own =
        cb_.sign(VotePayload(view_, seq, inst.digest, MessageType::kPrepare));
    inst.prepares[self_.index] = own;
    cb_.broadcast(std::make_shared<PbftVoteMsg>(MessageType::kPrepare, view_,
                                                seq, inst.digest, own));
    MaybePrepare(seq);
    MaybeCommit(seq);
  });
}

void PbftEngine::OnVote(NodeId from, const PbftVoteMsg& msg) {
  if (msg.view() != view_) return;
  Instance& inst = GetInstance(msg.seq());
  bool is_prepare = msg.message_type() == MessageType::kPrepare;
  if (!cb_.verify(from,
                  VotePayload(msg.view(), msg.seq(), msg.digest(),
                              msg.message_type()),
                  msg.sig()))
    return;
  if (inst.digest_known && msg.digest() != inst.digest) return;

  auto& votes = is_prepare ? inst.prepares : inst.commits;
  votes.emplace(from.index, msg.sig());
  MaybePrepare(msg.seq());
  MaybeCommit(msg.seq());
}

void PbftEngine::MaybePrepare(uint64_t seq) {
  Instance& inst = GetInstance(seq);
  // Prepared: the node has the pre-prepare (digest + validated entry) and
  // 2f+1 prepare votes (its own included).
  if (inst.prepared || !inst.validated ||
      static_cast<int>(inst.prepares.size()) < quorum())
    return;
  inst.prepared = true;
  if (cb_.now) {
    inst.prepared_at = cb_.now();
    ObservePhase("prepare", prepare_hist_, inst.started_at, inst.prepared_at,
                 seq);
  }
  Signature own =
      cb_.sign(VotePayload(view_, seq, inst.digest, MessageType::kCommit));
  inst.commits[self_.index] = own;
  cb_.broadcast(std::make_shared<PbftVoteMsg>(MessageType::kCommit, view_, seq,
                                              inst.digest, own));
  MaybeCommit(seq);
}

void PbftEngine::MaybeCommit(uint64_t seq) {
  Instance& inst = GetInstance(seq);
  if (inst.committed || !inst.prepared ||
      static_cast<int>(inst.commits.size()) < quorum())
    return;
  inst.committed = true;
  ++committed_count_;
  if (cb_.now)
    ObservePhase("commit", commit_hist_, inst.prepared_at, cb_.now(), seq);

  Certificate cert;
  cert.gid = gid_;
  cert.digest = inst.digest;
  for (const auto& [index, sig] : inst.commits) {
    cert.AddSignature(index, sig);
    if (static_cast<int>(cert.NumSignatures()) == quorum()) break;
  }
  cb_.on_committed(inst.entry, std::move(cert));
}

void PbftEngine::BroadcastVote(MessageType phase, uint64_t seq,
                               const Digest& digest) {
  Signature sig = cb_.sign(VotePayload(view_, seq, digest, phase));
  cb_.broadcast(std::make_shared<PbftVoteMsg>(phase, view_, seq, digest, sig));
}

void PbftEngine::ArmViewChangeTimer(uint64_t seq) {
  if (view_change_timeout_ <= 0) return;
  Instance& inst = GetInstance(seq);
  if (inst.timer_armed) return;
  inst.timer_armed = true;
  uint64_t armed_view = view_;
  cb_.after(view_change_timeout_, [this, seq, armed_view]() {
    const Instance& inst = GetInstance(seq);
    if (inst.committed || view_ != armed_view) return;
    // Leader stalled: vote to move to the next view.
    uint64_t proposed = view_ + 1;
    view_change_votes_[proposed].insert(self_.index);
    cb_.broadcast(std::make_shared<ViewChangeMsg>(MessageType::kViewChange,
                                                  proposed, next_seq_,
                                                  /*proof_bytes=*/
                                                  64 * (2 * f_ + 1)));
    if (static_cast<int>(view_change_votes_[proposed].size()) >= quorum())
      EnterView(proposed);
  });
}

void PbftEngine::OnViewChangeVote(NodeId from, const ViewChangeMsg& msg) {
  if (msg.new_view() <= view_) return;
  auto& votes = view_change_votes_[msg.new_view()];
  votes.insert(from.index);
  // Echo once so votes accumulate even at nodes whose timers have not
  // fired (standard view-change amplification at f+1).
  if (!votes.contains(self_.index) &&
      static_cast<int>(votes.size()) >= f_ + 1) {
    votes.insert(self_.index);
    cb_.broadcast(std::make_shared<ViewChangeMsg>(
        MessageType::kViewChange, msg.new_view(), next_seq_,
        64 * (2 * f_ + 1)));
  }
  if (static_cast<int>(votes.size()) >= quorum()) EnterView(msg.new_view());
}

void PbftEngine::EnterView(uint64_t new_view) {
  if (new_view <= view_) return;
  view_ = new_view;
  view_change_votes_.clear();
  if (view_change_counter_ != nullptr) view_change_counter_->Add();

  // Collect uncommitted proposals; the new leader re-proposes them.
  std::vector<EntryPtr> unfinished;
  for (auto& [seq, inst] : instances_) {
    if (!inst.committed && inst.entry != nullptr)
      unfinished.push_back(inst.entry);
    if (!inst.committed) inst = Instance{};  // Reset in-flight state.
  }

  if (IsLeader()) {
    cb_.broadcast(std::make_shared<ViewChangeMsg>(
        MessageType::kNewView, view_, next_seq_, 64 * (2 * f_ + 1)));
    for (const EntryPtr& entry : unfinished) Propose(entry);
  }
  if (cb_.on_view_change) cb_.on_view_change(view_, leader());
}

}  // namespace massbft
