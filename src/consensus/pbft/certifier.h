#ifndef MASSBFT_CONSENSUS_PBFT_CERTIFIER_H_
#define MASSBFT_CONSENSUS_PBFT_CERTIFIER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/bytes.h"
#include "crypto/sha256.h"
#include "crypto/signature.h"
#include "proto/entry.h"
#include "proto/messages.h"
#include "sim/network.h"

namespace massbft {

/// Skip-prepare local consensus on group decisions (paper Section II-A,
/// after Ziziphus): the group leader broadcasts a decision; followers sign
/// it once their local admission predicate holds; the leader aggregates
/// 2f+1 signatures into a Certificate. Used for the Raft `accept` receipt
/// (a follower only signs once it has the actual entry — this is what makes
/// Lemma V.1's atomicity argument go through) and for the Raft `commit`
/// decision.
class DigestCertifier {
 public:
  /// Decision kinds (DecisionId::kind).
  enum Kind : uint8_t {
    kAccept = 1,
    kCommitDecision = 2,
  };

  struct Callbacks {
    std::function<void(MessagePtr)> broadcast;
    std::function<void(NodeId, MessagePtr)> send_to;
    std::function<Signature(const Bytes&)> sign;
    std::function<bool(NodeId, const Bytes&, const Signature&)> verify;
    /// Follower admission predicate. Returning false defers the vote; the
    /// owner must call RecheckPending() when its state advances (e.g. an
    /// entry finishes rebuilding).
    std::function<bool(const DecisionId&)> can_sign;
    /// Leader-side completion with the aggregated certificate.
    std::function<void(const DecisionId&, Certificate)> on_certified;
  };

  DigestCertifier(uint16_t gid, NodeId self, int group_size,
                  Callbacks callbacks);

  /// The digest all parties sign for a decision (also what remote groups
  /// verify a resulting Certificate against).
  static Digest DecisionDigest(const DecisionId& decision);

  /// Leader: starts certification of `decision`.
  void Start(const DecisionId& decision);

  /// Dispatch for kCertifyRequest / kCertifyVote.
  void OnMessage(NodeId from, const MessagePtr& message);

  /// Re-evaluates deferred follower votes (call when local state advances).
  void RecheckPending();

  int quorum() const { return 2 * f_ + 1; }

 private:
  struct Pending {
    DecisionId decision;
    NodeId initiator;  // Where follower votes are sent.
    bool voted = false;
    bool certified = false;
    std::map<uint16_t, Signature> votes;  // Leader-side shares.
  };

  void TryVote(Pending& p);

  uint16_t gid_;
  NodeId self_;
  int n_;
  int f_;
  Callbacks cb_;
  std::map<DecisionId, Pending> pending_;
};

}  // namespace massbft

#endif  // MASSBFT_CONSENSUS_PBFT_CERTIFIER_H_
