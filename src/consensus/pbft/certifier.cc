#include "consensus/pbft/certifier.h"

#include <utility>

#include "common/codec.h"
#include "common/logging.h"

namespace massbft {

DigestCertifier::DigestCertifier(uint16_t gid, NodeId self, int group_size,
                                 Callbacks callbacks)
    : gid_(gid), self_(self), n_(group_size), f_((group_size - 1) / 3),
      cb_(std::move(callbacks)) {
  MASSBFT_CHECK(self.group == gid);
  (void)n_;
}

Digest DigestCertifier::DecisionDigest(const DecisionId& decision) {
  BinaryWriter w(32);
  w.PutU8(decision.kind);
  w.PutU16(decision.voter_gid);
  w.PutU16(decision.target_gid);
  w.PutU64(decision.target_seq);
  w.PutU64(decision.ts);
  return Sha256::Hash(w.buffer());
}

void DigestCertifier::Start(const DecisionId& decision) {
  Pending& p = pending_[decision];
  if (p.votes.contains(self_.index)) return;  // Already started.
  p.decision = decision;
  p.initiator = self_;

  Digest digest = DecisionDigest(decision);
  Bytes payload(digest.begin(), digest.end());
  Signature own = cb_.sign(payload);
  p.votes[self_.index] = own;
  p.voted = true;
  cb_.broadcast(std::make_shared<CertifyRequestMsg>(decision, own));

  // Degenerate single-node group: the leader's own share is the quorum.
  if (!p.certified && static_cast<int>(p.votes.size()) >= quorum()) {
    p.certified = true;
    Certificate cert;
    cert.gid = gid_;
    cert.digest = digest;
    cert.AddSignature(self_.index, own);
    cb_.on_certified(p.decision, std::move(cert));
  }
}

void DigestCertifier::OnMessage(NodeId from, const MessagePtr& message) {
  if (from.group != gid_) return;
  switch (static_cast<MessageType>(message->type())) {
    case MessageType::kCertifyRequest: {
      const auto& req = static_cast<const CertifyRequestMsg&>(*message);
      Digest digest = DecisionDigest(req.decision());
      Bytes payload(digest.begin(), digest.end());
      if (!cb_.verify(from, payload, req.sig())) return;
      Pending& p = pending_[req.decision()];
      p.decision = req.decision();
      p.initiator = from;
      TryVote(p);
      break;
    }
    case MessageType::kCertifyVote: {
      const auto& vote = static_cast<const CertifyVoteMsg&>(*message);
      auto it = pending_.find(vote.decision());
      if (it == pending_.end()) return;  // We never started this decision.
      Pending& p = it->second;
      if (p.certified) return;
      Digest digest = DecisionDigest(vote.decision());
      Bytes payload(digest.begin(), digest.end());
      if (!cb_.verify(from, payload, vote.sig())) return;
      p.votes.emplace(from.index, vote.sig());
      if (static_cast<int>(p.votes.size()) >= quorum()) {
        p.certified = true;
        Certificate cert;
        cert.gid = gid_;
        cert.digest = digest;
        for (const auto& [index, sig] : p.votes) {
          cert.AddSignature(index, sig);
          if (static_cast<int>(cert.NumSignatures()) == quorum()) break;
        }
        cb_.on_certified(p.decision, std::move(cert));
      }
      break;
    }
    default:
      MASSBFT_LOG(kWarn) << "certifier: unexpected message type "
                         << message->type();
  }
}

void DigestCertifier::TryVote(Pending& p) {
  if (p.voted) return;
  if (!cb_.can_sign(p.decision)) return;  // Deferred until state advances.
  p.voted = true;
  Digest digest = DecisionDigest(p.decision);
  Bytes payload(digest.begin(), digest.end());
  Signature sig = cb_.sign(payload);
  if (p.initiator == self_) return;  // Leader's own share already recorded.
  cb_.send_to(p.initiator, std::make_shared<CertifyVoteMsg>(p.decision, sig));
}

void DigestCertifier::RecheckPending() {
  for (auto& [decision, p] : pending_) TryVote(p);
}

}  // namespace massbft
