#include "ec/gf256.h"

#include <cstddef>
#include <cstring>

#include "common/cpu.h"
#include "common/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace massbft {

namespace internal_gf256 {

namespace {

/// Precomputed products, built once on first use:
///  - full[c][v] = c * v, the 64 KiB table the scalar row kernel indexes
///    (hoisted out of the old per-call 256-entry rebuild);
///  - nib_lo[c][v] = c * v and nib_hi[c][v] = c * (v << 4) for v in 0..15,
///    the 16-byte split-nibble tables PSHUFB kernels combine as
///    c*x = nib_lo[c][x & 0xF] ^ nib_hi[c][x >> 4].
struct MulTables {
  alignas(32) uint8_t full[256][256];
  alignas(16) uint8_t nib_lo[256][16];
  alignas(16) uint8_t nib_hi[256][16];

  MulTables() {
    for (int c = 0; c < 256; ++c) {
      for (int v = 0; v < 256; ++v)
        full[c][v] = Gf256::Mul(static_cast<uint8_t>(c),
                                static_cast<uint8_t>(v));
      for (int v = 0; v < 16; ++v) {
        nib_lo[c][v] = full[c][v];
        nib_hi[c][v] = full[c][v << 4];
      }
    }
  }
};

const MulTables& GetMulTables() {
  static const MulTables tables;
  return tables;
}

}  // namespace

void MulAddRowScalar(uint8_t c, const uint8_t* in, uint8_t* out, size_t len) {
  if (c == 0) return;
  if (c == 1) {
    for (size_t i = 0; i < len; ++i) out[i] ^= in[i];
    return;
  }
  const uint8_t* row = GetMulTables().full[c];
  for (size_t i = 0; i < len; ++i) out[i] ^= row[in[i]];
}

void MulRowScalar(uint8_t c, const uint8_t* in, uint8_t* out, size_t len) {
  if (c == 0) {
    std::memset(out, 0, len);
    return;
  }
  if (c == 1) {
    std::memmove(out, in, len);
    return;
  }
  const uint8_t* row = GetMulTables().full[c];
  for (size_t i = 0; i < len; ++i) out[i] = row[in[i]];
}

#if defined(__x86_64__) || defined(__i386__)

__attribute__((target("ssse3"))) void MulAddRowSsse3(uint8_t c,
                                                     const uint8_t* in,
                                                     uint8_t* out,
                                                     size_t len) {
  const MulTables& t = GetMulTables();
  const __m128i lo =
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_lo[c]));
  const __m128i hi =
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    __m128i xl = _mm_and_si128(x, mask);
    __m128i xh = _mm_and_si128(_mm_srli_epi64(x, 4), mask);
    __m128i prod =
        _mm_xor_si128(_mm_shuffle_epi8(lo, xl), _mm_shuffle_epi8(hi, xh));
    __m128i o = _mm_loadu_si128(reinterpret_cast<const __m128i*>(out + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_xor_si128(o, prod));
  }
  MulAddRowScalar(c, in + i, out + i, len - i);
}

__attribute__((target("ssse3"))) void MulRowSsse3(uint8_t c, const uint8_t* in,
                                                  uint8_t* out, size_t len) {
  const MulTables& t = GetMulTables();
  const __m128i lo =
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_lo[c]));
  const __m128i hi =
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    __m128i xl = _mm_and_si128(x, mask);
    __m128i xh = _mm_and_si128(_mm_srli_epi64(x, 4), mask);
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(out + i),
        _mm_xor_si128(_mm_shuffle_epi8(lo, xl), _mm_shuffle_epi8(hi, xh)));
  }
  MulRowScalar(c, in + i, out + i, len - i);
}

__attribute__((target("avx2"))) void MulAddRowAvx2(uint8_t c,
                                                   const uint8_t* in,
                                                   uint8_t* out, size_t len) {
  const MulTables& t = GetMulTables();
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_lo[c])));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_hi[c])));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    __m256i xl = _mm256_and_si256(x, mask);
    __m256i xh = _mm256_and_si256(_mm256_srli_epi64(x, 4), mask);
    __m256i prod = _mm256_xor_si256(_mm256_shuffle_epi8(lo, xl),
                                    _mm256_shuffle_epi8(hi, xh));
    __m256i o = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_xor_si256(o, prod));
  }
  MulAddRowSsse3(c, in + i, out + i, len - i);
}

__attribute__((target("avx2"))) void MulRowAvx2(uint8_t c, const uint8_t* in,
                                                uint8_t* out, size_t len) {
  const MulTables& t = GetMulTables();
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_lo[c])));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_hi[c])));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    __m256i xl = _mm256_and_si256(x, mask);
    __m256i xh = _mm256_and_si256(_mm256_srli_epi64(x, 4), mask);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_xor_si256(_mm256_shuffle_epi8(lo, xl),
                                         _mm256_shuffle_epi8(hi, xh)));
  }
  MulRowSsse3(c, in + i, out + i, len - i);
}

#endif  // x86

namespace {

using RowFn = void (*)(uint8_t, const uint8_t*, uint8_t*, size_t);

struct Dispatch {
  Gf256::Kernel kernel = Gf256::Kernel::kScalar;
  RowFn mul_add_row = &MulAddRowScalar;
  RowFn mul_row = &MulRowScalar;
};

Dispatch DispatchFor(Gf256::Kernel kernel) {
  Dispatch d;
  d.kernel = kernel;
  switch (kernel) {
    case Gf256::Kernel::kScalar:
      break;
#if defined(__x86_64__) || defined(__i386__)
    case Gf256::Kernel::kSsse3:
      d.mul_add_row = &MulAddRowSsse3;
      d.mul_row = &MulRowSsse3;
      break;
    case Gf256::Kernel::kAvx2:
      d.mul_add_row = &MulAddRowAvx2;
      d.mul_row = &MulRowAvx2;
      break;
#else
    default:
      break;
#endif
  }
  return d;
}

Gf256::Kernel ResolveKernel(const std::string& override_mode,
                            const CpuFeatures& cpu) {
  Gf256::Kernel best = Gf256::Kernel::kScalar;
  if (cpu.ssse3) best = Gf256::Kernel::kSsse3;
  if (cpu.avx2) best = Gf256::Kernel::kAvx2;
  if (override_mode == "scalar") return Gf256::Kernel::kScalar;
  if (override_mode == "ssse3" && cpu.ssse3) return Gf256::Kernel::kSsse3;
  if (override_mode == "avx2" && cpu.avx2) return Gf256::Kernel::kAvx2;
  return best;  // "", "auto", or an unsatisfiable request.
}

Dispatch& MutableDispatch() {
  static Dispatch dispatch = [] {
    Gf256::Kernel kernel = ResolveKernel(SimdOverride(), GetCpuFeatures());
    MASSBFT_LOG(kInfo) << "gf256: dispatching row kernels to "
                       << Gf256::KernelName(kernel)
                       << (SimdOverride().empty()
                               ? ""
                               : " (MASSBFT_SIMD=" + SimdOverride() + ")");
    return DispatchFor(kernel);
  }();
  return dispatch;
}

}  // namespace

}  // namespace internal_gf256

uint8_t Gf256::Pow(uint8_t a, unsigned n) {
  uint8_t result = 1;
  uint8_t base = a;
  while (n > 0) {
    if (n & 1) result = Mul(result, base);
    base = Mul(base, base);
    n >>= 1;
  }
  return result;
}

void Gf256::MulAddRow(uint8_t c, const uint8_t* in, uint8_t* out, size_t len) {
  if (c == 0 || len == 0) return;
  internal_gf256::MutableDispatch().mul_add_row(c, in, out, len);
}

void Gf256::MulRow(uint8_t c, const uint8_t* in, uint8_t* out, size_t len) {
  if (len == 0) return;
  if (c == 0) {
    std::memset(out, 0, len);
    return;
  }
  internal_gf256::MutableDispatch().mul_row(c, in, out, len);
}

Gf256::Kernel Gf256::ActiveKernel() {
  return internal_gf256::MutableDispatch().kernel;
}

const char* Gf256::KernelName(Kernel k) {
  switch (k) {
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kSsse3:
      return "ssse3";
    case Kernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

void Gf256::ForceKernelForTest(Kernel k) {
  internal_gf256::MutableDispatch() = internal_gf256::DispatchFor(k);
}

void Gf256::RestoreKernelDispatch() {
  internal_gf256::MutableDispatch() = internal_gf256::DispatchFor(
      internal_gf256::ResolveKernel(SimdOverride(), GetCpuFeatures()));
}

}  // namespace massbft
