#include "ec/gf256.h"

#include <cstddef>

namespace massbft {

uint8_t Gf256::Pow(uint8_t a, unsigned n) {
  uint8_t result = 1;
  uint8_t base = a;
  while (n > 0) {
    if (n & 1) result = Mul(result, base);
    base = Mul(base, base);
    n >>= 1;
  }
  return result;
}

void Gf256::MulAddRow(uint8_t c, const uint8_t* in, uint8_t* out, size_t len) {
  if (c == 0) return;
  if (c == 1) {
    for (size_t i = 0; i < len; ++i) out[i] ^= in[i];
    return;
  }
  // Per-coefficient 256-entry product table amortizes the log/exp lookups.
  uint8_t table[256];
  for (int v = 0; v < 256; ++v) table[v] = Mul(c, static_cast<uint8_t>(v));
  for (size_t i = 0; i < len; ++i) out[i] ^= table[in[i]];
}

}  // namespace massbft
