#ifndef MASSBFT_EC_MATRIX_H_
#define MASSBFT_EC_MATRIX_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace massbft {

/// Dense matrix over GF(2^8), sized for erasure-coding work (dimensions up
/// to 255). Row-major storage.
class GfMatrix {
 public:
  GfMatrix() : rows_(0), cols_(0) {}
  GfMatrix(int rows, int cols)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, 0) {}

  static GfMatrix Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  uint8_t At(int r, int c) const { return data_[static_cast<size_t>(r) * cols_ + c]; }
  void Set(int r, int c, uint8_t v) { data_[static_cast<size_t>(r) * cols_ + c] = v; }
  const uint8_t* Row(int r) const { return &data_[static_cast<size_t>(r) * cols_]; }
  uint8_t* MutableRow(int r) { return &data_[static_cast<size_t>(r) * cols_]; }

  GfMatrix Multiply(const GfMatrix& other) const;

  /// Returns the matrix formed by the given subset of rows.
  GfMatrix SubRows(const std::vector<int>& row_indices) const;

  /// Gauss-Jordan inverse. Fails with Corruption if singular.
  Result<GfMatrix> Invert() const;

  friend bool operator==(const GfMatrix&, const GfMatrix&) = default;

 private:
  int rows_;
  int cols_;
  std::vector<uint8_t> data_;
};

}  // namespace massbft

#endif  // MASSBFT_EC_MATRIX_H_
