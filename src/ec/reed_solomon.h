#ifndef MASSBFT_EC_REED_SOLOMON_H_
#define MASSBFT_EC_REED_SOLOMON_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"
#include "ec/matrix.h"

namespace massbft {

/// Systematic Reed–Solomon erasure coder over GF(2^8).
///
/// This is the coding core of MassBFT's encoded bijective log replication
/// (paper Section IV-B): an entry split into `n_data` data shards plus
/// `n_parity` parity shards can be rebuilt from ANY `n_data` of the
/// `n_total = n_data + n_parity` shards, provided all inputs are correct and
/// correctly indexed (tampered inputs yield garbage — which is why the
/// protocol layers Merkle-proof bucketing on top, Section IV-C).
///
/// The encoding matrix is the klauspost-style systematic Vandermonde
/// construction: V (n_total x n_data, V[r][c] = r^c) right-multiplied by the
/// inverse of its top square, making the first n_data rows the identity
/// while preserving the MDS property. Limited to n_total <= 255 (GF(2^8));
/// the paper's experiments need at most LCM(40, 40) = 40 chunks.
class ReedSolomon {
 public:
  /// Creates a coder. Requires 1 <= n_data, 0 <= n_parity,
  /// n_data + n_parity <= 255.
  [[nodiscard]] static Result<ReedSolomon> Create(int n_data, int n_parity);

  /// Memoized Create: returns a process-wide shared coder for
  /// (n_data, n_parity). Construction inverts a Vandermonde sub-matrix, so
  /// per-entry callers (encode on every proposal, rebuild on every receipt)
  /// go through this cache instead of re-deriving the coding matrix.
  /// Thread-safe; the returned coder is immutable.
  static Result<std::shared_ptr<const ReedSolomon>> Shared(int n_data,
                                                           int n_parity);

  int n_data() const { return n_data_; }
  int n_parity() const { return n_parity_; }
  int n_total() const { return n_data_ + n_parity_; }

  /// Computes parity shards for `data_shards` (all must be the same,
  /// nonzero size). Output vector has n_parity() shards of the same size.
  Result<std::vector<Bytes>> EncodeParity(
      const std::vector<Bytes>& data_shards) const;

  /// Splits `message` into data shards (8-byte length header + zero pad)
  /// and appends parity shards; returns all n_total() shards.
  Result<std::vector<Bytes>> EncodeMessage(const Bytes& message) const;

  /// Rebuilds all data shards from any subset of >= n_data() present
  /// shards. `shards[i]` holds shard i, or nullopt if missing; size must be
  /// n_total().
  Result<std::vector<Bytes>> ReconstructData(
      const std::vector<std::optional<Bytes>>& shards) const;

  /// Inverse of EncodeMessage: reconstructs and strips the length framing.
  [[nodiscard]] Result<Bytes> DecodeMessage(
      const std::vector<std::optional<Bytes>>& shards) const;

  /// Shard size EncodeMessage will use for a message of `message_len` bytes.
  size_t ShardSizeFor(size_t message_len) const {
    size_t framed = message_len + 8;
    return (framed + n_data_ - 1) / n_data_;
  }

 private:
  ReedSolomon(int n_data, int n_parity, GfMatrix parity_rows)
      : n_data_(n_data),
        n_parity_(n_parity),
        parity_rows_(std::move(parity_rows)) {}

  /// Full systematic encoding matrix row r (identity row for r < n_data).
  void EncodingRow(int r, uint8_t* out) const;

  int n_data_;
  int n_parity_;
  GfMatrix parity_rows_;  // n_parity x n_data.
};

}  // namespace massbft

#endif  // MASSBFT_EC_REED_SOLOMON_H_
