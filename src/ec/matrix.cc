#include "ec/matrix.h"

#include "ec/gf256.h"

namespace massbft {

GfMatrix GfMatrix::Identity(int n) {
  GfMatrix m(n, n);
  for (int i = 0; i < n; ++i) m.Set(i, i, 1);
  return m;
}

GfMatrix GfMatrix::Multiply(const GfMatrix& other) const {
  GfMatrix out(rows_, other.cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int k = 0; k < cols_; ++k) {
      uint8_t a = At(r, k);
      if (a == 0) continue;
      const uint8_t* src = other.Row(k);
      uint8_t* dst = out.MutableRow(r);
      for (int c = 0; c < other.cols_; ++c)
        dst[c] = Gf256::Add(dst[c], Gf256::Mul(a, src[c]));
    }
  }
  return out;
}

GfMatrix GfMatrix::SubRows(const std::vector<int>& row_indices) const {
  GfMatrix out(static_cast<int>(row_indices.size()), cols_);
  for (size_t i = 0; i < row_indices.size(); ++i) {
    const uint8_t* src = Row(row_indices[i]);
    uint8_t* dst = out.MutableRow(static_cast<int>(i));
    for (int c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  return out;
}

Result<GfMatrix> GfMatrix::Invert() const {
  if (rows_ != cols_)
    return Status::InvalidArgument("only square matrices can be inverted");
  int n = rows_;
  // Augment [A | I] and reduce to [I | A^-1].
  GfMatrix work(n, 2 * n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) work.Set(r, c, At(r, c));
    work.Set(r, n + r, 1);
  }

  for (int col = 0; col < n; ++col) {
    // Find pivot.
    int pivot = -1;
    for (int r = col; r < n; ++r) {
      if (work.At(r, col) != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) return Status::Corruption("singular matrix");
    if (pivot != col) {
      for (int c = 0; c < 2 * n; ++c) {
        uint8_t tmp = work.At(col, c);
        work.Set(col, c, work.At(pivot, c));
        work.Set(pivot, c, tmp);
      }
    }
    // Scale pivot row to 1.
    uint8_t inv = Gf256::Inv(work.At(col, col));
    for (int c = 0; c < 2 * n; ++c)
      work.Set(col, c, Gf256::Mul(work.At(col, c), inv));
    // Eliminate the column everywhere else.
    for (int r = 0; r < n; ++r) {
      if (r == col) continue;
      uint8_t factor = work.At(r, col);
      if (factor == 0) continue;
      for (int c = 0; c < 2 * n; ++c)
        work.Set(r, c,
                 Gf256::Add(work.At(r, c), Gf256::Mul(factor, work.At(col, c))));
    }
  }

  GfMatrix out(n, n);
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c) out.Set(r, c, work.At(r, n + c));
  return out;
}

}  // namespace massbft
