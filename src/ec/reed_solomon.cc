#include "ec/reed_solomon.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <utility>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"
#include "ec/gf256.h"

namespace massbft {

namespace {

/// Bytes of each input shard processed per blocking step of the coding
/// loops. One input stripe plus the corresponding output stripes stay
/// resident in L1/L2 while every output row consumes the stripe, instead of
/// re-streaming whole shards from memory once per output row.
constexpr size_t kCodingStripe = 4096;

/// Process-wide memo cache behind ReedSolomon::Shared. A named struct (vs
/// function-local statics) so the clang -Wthread-safety leg can prove the
/// MASSBFT_GUARDED_BY contract: `by_params` is only touched under `mutex`.
struct RsFactoryCache {
  // kLeafCache: taken from protocol code with no other ranked lock held.
  RankedMutex mutex{"rs.factory.mu", LockRank::kLeafCache};
  std::map<std::pair<int, int>, std::shared_ptr<const ReedSolomon>> by_params
      MASSBFT_GUARDED_BY(mutex);
};

RsFactoryCache& FactoryCache() {
  static RsFactoryCache* cache = new RsFactoryCache();
  return *cache;
}

}  // namespace

Result<ReedSolomon> ReedSolomon::Create(int n_data, int n_parity) {
  if (n_data < 1) return Status::InvalidArgument("n_data must be >= 1");
  if (n_parity < 0) return Status::InvalidArgument("n_parity must be >= 0");
  if (n_data + n_parity > 255)
    return Status::InvalidArgument(
        "GF(2^8) Reed-Solomon supports at most 255 total shards");

  int n_total = n_data + n_parity;
  // Vandermonde: V[r][c] = r^c over GF(2^8).
  GfMatrix vandermonde(n_total, n_data);
  for (int r = 0; r < n_total; ++r)
    for (int c = 0; c < n_data; ++c)
      vandermonde.Set(r, c, Gf256::Pow(static_cast<uint8_t>(r),
                                       static_cast<unsigned>(c)));

  // Systematize: E = V * inv(top square of V). Top n_data rows become I.
  std::vector<int> top(n_data);
  for (int i = 0; i < n_data; ++i) top[i] = i;
  MASSBFT_ASSIGN_OR_RETURN(GfMatrix top_inv,
                           vandermonde.SubRows(top).Invert());
  GfMatrix systematic = vandermonde.Multiply(top_inv);

  std::vector<int> parity_idx(n_parity);
  for (int i = 0; i < n_parity; ++i) parity_idx[i] = n_data + i;
  return ReedSolomon(n_data, n_parity, systematic.SubRows(parity_idx));
}

Result<std::shared_ptr<const ReedSolomon>> ReedSolomon::Shared(int n_data,
                                                               int n_parity) {
  RsFactoryCache& cache = FactoryCache();
  MutexLock lock(&cache.mutex);
  auto key = std::make_pair(n_data, n_parity);
  auto it = cache.by_params.find(key);
  if (it != cache.by_params.end()) return it->second;
  MASSBFT_ASSIGN_OR_RETURN(ReedSolomon rs, Create(n_data, n_parity));
  auto shared = std::make_shared<const ReedSolomon>(std::move(rs));
  cache.by_params.emplace(key, shared);
  return shared;
}

void ReedSolomon::EncodingRow(int r, uint8_t* out) const {
  std::memset(out, 0, n_data_);
  if (r < n_data_) {
    out[r] = 1;
  } else {
    std::memcpy(out, parity_rows_.Row(r - n_data_), n_data_);
  }
}

Result<std::vector<Bytes>> ReedSolomon::EncodeParity(
    const std::vector<Bytes>& data_shards) const {
  if (static_cast<int>(data_shards.size()) != n_data_)
    return Status::InvalidArgument("wrong number of data shards");
  if (data_shards[0].empty())
    return Status::InvalidArgument("shards must be nonempty");
  size_t shard_size = data_shards[0].size();
  for (const Bytes& s : data_shards)
    if (s.size() != shard_size)
      return Status::InvalidArgument("shards must be equally sized");

  // Stripe-blocked: each input stripe is consumed by every parity row
  // while it is cache-hot (d == 0 uses the initializing MulRow form, so the
  // zero-filled allocation is never read back).
  std::vector<Bytes> parity(n_parity_, Bytes(shard_size, 0));
  for (size_t off = 0; off < shard_size; off += kCodingStripe) {
    size_t n = std::min(kCodingStripe, shard_size - off);
    for (int d = 0; d < n_data_; ++d) {
      const uint8_t* in = data_shards[d].data() + off;
      for (int p = 0; p < n_parity_; ++p) {
        uint8_t c = parity_rows_.Row(p)[d];
        uint8_t* out = parity[p].data() + off;
        if (d == 0) {
          Gf256::MulRow(c, in, out, n);
        } else {
          Gf256::MulAddRow(c, in, out, n);
        }
      }
    }
  }
  return parity;
}

Result<std::vector<Bytes>> ReedSolomon::EncodeMessage(
    const Bytes& message) const {
  size_t shard_size = ShardSizeFor(message.size());
  // Frame: u64 little-endian length, then payload, then zero padding. Each
  // data shard is carved directly out of this virtual stream — no staging
  // copy of the whole framed buffer.
  uint8_t header[8];
  uint64_t len = message.size();
  for (int i = 0; i < 8; ++i) header[i] = static_cast<uint8_t>(len >> (8 * i));

  std::vector<Bytes> shards;
  shards.reserve(n_total());
  for (int d = 0; d < n_data_; ++d) {
    size_t off = static_cast<size_t>(d) * shard_size;  // Into the stream.
    size_t end = off + shard_size;
    if (off >= 8 && end <= 8 + message.size()) {
      // Interior shard: a single slice of the message, no zero-fill pass.
      auto first = message.begin() + static_cast<long>(off - 8);
      shards.emplace_back(first, first + static_cast<long>(shard_size));
      continue;
    }
    Bytes shard;
    shard.reserve(shard_size);
    if (off < 8)
      shard.insert(shard.end(), header + off,
                   header + std::min<size_t>(8, end));
    size_t mbegin = off > 8 ? off - 8 : 0;  // Into the message.
    if (mbegin < message.size()) {
      size_t n = std::min(message.size() - mbegin, shard_size - shard.size());
      auto first = message.begin() + static_cast<long>(mbegin);
      shard.insert(shard.end(), first, first + static_cast<long>(n));
    }
    shard.resize(shard_size, 0);  // Zero padding tail only.
    shards.push_back(std::move(shard));
  }
  MASSBFT_ASSIGN_OR_RETURN(std::vector<Bytes> parity, EncodeParity(shards));
  for (Bytes& p : parity) shards.push_back(std::move(p));
  return shards;
}

Result<std::vector<Bytes>> ReedSolomon::ReconstructData(
    const std::vector<std::optional<Bytes>>& shards) const {
  if (static_cast<int>(shards.size()) != n_total())
    return Status::InvalidArgument("shards vector must have n_total entries");

  // Pick the first n_data present shards (preferring data shards, which are
  // first by index, minimizes matrix work).
  std::vector<int> present;
  size_t shard_size = 0;
  for (int i = 0; i < n_total() && static_cast<int>(present.size()) < n_data_;
       ++i) {
    if (!shards[i].has_value()) continue;
    if (shard_size == 0) {
      shard_size = shards[i]->size();
      if (shard_size == 0)
        return Status::InvalidArgument("shards must be nonempty");
    } else if (shards[i]->size() != shard_size) {
      return Status::InvalidArgument("shards must be equally sized");
    }
    present.push_back(i);
  }
  if (static_cast<int>(present.size()) < n_data_)
    return Status::Unavailable("not enough shards to reconstruct");

  // Fast path: all data shards present.
  bool all_data = true;
  for (int i = 0; i < n_data_; ++i)
    if (present[i] != i) {
      all_data = false;
      break;
    }
  std::vector<Bytes> data(n_data_);
  if (all_data) {
    for (int i = 0; i < n_data_; ++i) data[i] = *shards[i];
    return data;
  }

  // General path: invert the sub-encoding-matrix of the present rows, then
  // data = inv * present_shards.
  GfMatrix sub(n_data_, n_data_);
  for (int r = 0; r < n_data_; ++r) EncodingRow(present[r], sub.MutableRow(r));
  MASSBFT_ASSIGN_OR_RETURN(GfMatrix inv, sub.Invert());

  for (int d = 0; d < n_data_; ++d) data[d].assign(shard_size, 0);
  // Same stripe blocking as EncodeParity: every output row consumes each
  // present-shard stripe while it is cache-hot.
  for (size_t off = 0; off < shard_size; off += kCodingStripe) {
    size_t n = std::min(kCodingStripe, shard_size - off);
    for (int k = 0; k < n_data_; ++k) {
      const uint8_t* in = shards[present[k]]->data() + off;
      for (int d = 0; d < n_data_; ++d) {
        uint8_t c = inv.Row(d)[k];
        uint8_t* out = data[d].data() + off;
        if (k == 0) {
          Gf256::MulRow(c, in, out, n);
        } else {
          Gf256::MulAddRow(c, in, out, n);
        }
      }
    }
  }
  return data;
}

Result<Bytes> ReedSolomon::DecodeMessage(
    const std::vector<std::optional<Bytes>>& shards) const {
  MASSBFT_ASSIGN_OR_RETURN(std::vector<Bytes> data, ReconstructData(shards));
  size_t shard_size = data[0].size();
  // Uniform guard: the reconstructed framing (shard_size * n_data bytes)
  // must hold the 8-byte length header regardless of the shard count.
  if (shard_size * data.size() < 8)
    return Status::Corruption("shards too small for length header");

  // Reassemble the framed buffer and strip the header.
  Bytes framed;
  framed.reserve(shard_size * data.size());
  for (const Bytes& d : data) framed.insert(framed.end(), d.begin(), d.end());
  uint64_t len = 0;
  for (int i = 0; i < 8; ++i)
    len |= static_cast<uint64_t>(framed[i]) << (8 * i);
  if (len > framed.size() - 8)
    return Status::Corruption("length header exceeds reconstructed payload");
  return Bytes(framed.begin() + 8, framed.begin() + 8 + static_cast<long>(len));
}

}  // namespace massbft
