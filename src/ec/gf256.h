#ifndef MASSBFT_EC_GF256_H_
#define MASSBFT_EC_GF256_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace massbft {

namespace internal_gf256 {

struct Tables {
  std::array<uint8_t, 512> exp;
  std::array<uint8_t, 256> log;
};

constexpr Tables MakeTables() {
  Tables t{};
  uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[i] = static_cast<uint8_t>(x);
    t.log[x] = static_cast<uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= 0x11D;
  }
  for (int i = 255; i < 512; ++i) t.exp[i] = t.exp[i - 255];
  t.log[0] = 0;  // Unused sentinel; Mul/Div guard zero operands.
  return t;
}

inline constexpr Tables kTables = MakeTables();

}  // namespace internal_gf256

/// Arithmetic in GF(2^8) with the AES/Reed-Solomon polynomial
/// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), generator 2 — the same field used by
/// klauspost/reedsolomon, which the paper's implementation relies on.
/// Multiplication/division go through compile-time log/exp tables.
class Gf256 {
 public:
  static constexpr int kFieldSize = 256;

  static uint8_t Add(uint8_t a, uint8_t b) { return a ^ b; }
  static uint8_t Sub(uint8_t a, uint8_t b) { return a ^ b; }

  static uint8_t Mul(uint8_t a, uint8_t b) {
    if (a == 0 || b == 0) return 0;
    return Exp()[Log()[a] + Log()[b]];
  }

  /// a / b. b must be nonzero (returns 0 for b == 0 to keep the function
  /// total; callers validate).
  static uint8_t Div(uint8_t a, uint8_t b) {
    if (a == 0 || b == 0) return 0;
    return Exp()[Log()[a] + 255 - Log()[b]];
  }

  /// Multiplicative inverse; a must be nonzero.
  static uint8_t Inv(uint8_t a) {
    if (a == 0) return 0;
    return Exp()[255 - Log()[a]];
  }

  /// a^n for n >= 0.
  static uint8_t Pow(uint8_t a, unsigned n);

  /// out[i] ^= c * in[i] for i in [0, len) — the inner loop of RS coding.
  static void MulAddRow(uint8_t c, const uint8_t* in, uint8_t* out,
                        size_t len);

 private:
  static constexpr const std::array<uint8_t, 512>& Exp() {
    return internal_gf256::kTables.exp;
  }
  static constexpr const std::array<uint8_t, 256>& Log() {
    return internal_gf256::kTables.log;
  }
};

}  // namespace massbft

#endif  // MASSBFT_EC_GF256_H_
