#ifndef MASSBFT_EC_GF256_H_
#define MASSBFT_EC_GF256_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace massbft {

namespace internal_gf256 {

struct Tables {
  std::array<uint8_t, 512> exp;
  std::array<uint8_t, 256> log;
};

[[nodiscard]] constexpr Tables MakeTables() {
  Tables t{};
  uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[i] = static_cast<uint8_t>(x);
    t.log[x] = static_cast<uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= 0x11D;
  }
  for (int i = 255; i < 512; ++i) t.exp[i] = t.exp[i - 255];
  t.log[0] = 0;  // Unused sentinel; Mul/Div guard zero operands.
  return t;
}

inline constexpr Tables kTables = MakeTables();

// Row-kernel implementations, exposed so the property tests can cross-check
// every tier against the scalar oracle regardless of what the dispatcher
// picked. The SSSE3/AVX2 variants must only be called when the matching
// CpuFeatures bit is set (they are compiled with target attributes and
// execute illegal instructions otherwise).
void MulAddRowScalar(uint8_t c, const uint8_t* in, uint8_t* out, size_t len);
void MulRowScalar(uint8_t c, const uint8_t* in, uint8_t* out, size_t len);
#if defined(__x86_64__) || defined(__i386__)
void MulAddRowSsse3(uint8_t c, const uint8_t* in, uint8_t* out, size_t len);
void MulRowSsse3(uint8_t c, const uint8_t* in, uint8_t* out, size_t len);
void MulAddRowAvx2(uint8_t c, const uint8_t* in, uint8_t* out, size_t len);
void MulRowAvx2(uint8_t c, const uint8_t* in, uint8_t* out, size_t len);
#endif

}  // namespace internal_gf256

/// Arithmetic in GF(2^8) with the AES/Reed-Solomon polynomial
/// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), generator 2 — the same field used by
/// klauspost/reedsolomon, which the paper's implementation relies on.
/// Single-element multiplication/division go through compile-time log/exp
/// tables; the row kernels (the RS coding inner loop) use a precomputed
/// 64 KiB product table and, on x86, SSSE3/AVX2 PSHUFB split-nibble
/// implementations selected once at startup by runtime CPU detection
/// (override with MASSBFT_SIMD=scalar|ssse3|avx2).
class Gf256 {
 public:
  static constexpr int kFieldSize = 256;

  /// Which row-kernel tier the dispatcher selected.
  enum class Kernel { kScalar, kSsse3, kAvx2 };

  static uint8_t Add(uint8_t a, uint8_t b) { return a ^ b; }
  static uint8_t Sub(uint8_t a, uint8_t b) { return a ^ b; }

  static uint8_t Mul(uint8_t a, uint8_t b) {
    if (a == 0 || b == 0) return 0;
    return Exp()[Log()[a] + Log()[b]];
  }

  /// a / b. b must be nonzero (returns 0 for b == 0 to keep the function
  /// total; callers validate).
  static uint8_t Div(uint8_t a, uint8_t b) {
    if (a == 0 || b == 0) return 0;
    return Exp()[Log()[a] + 255 - Log()[b]];
  }

  /// Multiplicative inverse; a must be nonzero.
  static uint8_t Inv(uint8_t a) {
    if (a == 0) return 0;
    return Exp()[255 - Log()[a]];
  }

  /// a^n for n >= 0.
  static uint8_t Pow(uint8_t a, unsigned n);

  /// out[i] ^= c * in[i] for i in [0, len) — the inner loop of RS coding.
  static void MulAddRow(uint8_t c, const uint8_t* in, uint8_t* out,
                        size_t len);

  /// out[i] = c * in[i] for i in [0, len) (initializing form; lets encoders
  /// skip a separate zero-fill + xor pass on the first input row).
  static void MulRow(uint8_t c, const uint8_t* in, uint8_t* out, size_t len);

  /// The kernel tier MulAddRow/MulRow currently dispatch to.
  static Kernel ActiveKernel();
  static const char* KernelName(Kernel k);

  /// Test/bench hook: pins the dispatcher to `k` (must be supported by the
  /// CPU). Call RestoreKernelDispatch() to return to auto-detection.
  static void ForceKernelForTest(Kernel k);
  static void RestoreKernelDispatch();

 private:
  static constexpr const std::array<uint8_t, 512>& Exp() {
    return internal_gf256::kTables.exp;
  }
  static constexpr const std::array<uint8_t, 256>& Log() {
    return internal_gf256::kTables.log;
  }
};

}  // namespace massbft

#endif  // MASSBFT_EC_GF256_H_
