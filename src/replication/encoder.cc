#include "replication/encoder.h"

#include <utility>

#include "ec/reed_solomon.h"

namespace massbft {

Result<EncodedEntry> EncodeBytesForPlan(const Bytes& payload,
                                        const TransferPlan& plan) {
  // Shared(): the coding matrix for a (n_data, n_parity) pair is derived
  // once per process, not once per entry.
  MASSBFT_ASSIGN_OR_RETURN(
      std::shared_ptr<const ReedSolomon> rs,
      ReedSolomon::Shared(plan.n_data(), plan.n_parity()));
  MASSBFT_ASSIGN_OR_RETURN(std::vector<Bytes> shards,
                           rs->EncodeMessage(payload));
  MASSBFT_ASSIGN_OR_RETURN(MerkleTree tree, MerkleTree::Build(shards));

  EncodedEntry encoded;
  encoded.merkle_root = tree.root();
  encoded.chunks.reserve(shards.size());
  for (uint32_t id = 0; id < shards.size(); ++id) {
    MASSBFT_ASSIGN_OR_RETURN(MerkleProof proof, tree.Prove(id));
    encoded.chunks.push_back(
        Chunk{id, std::move(shards[id]), std::move(proof)});
  }
  return encoded;
}

Result<EncodedEntry> EncodeEntryForPlan(const Entry& entry,
                                        const TransferPlan& plan) {
  return EncodeBytesForPlan(entry.Encoded(), plan);
}

}  // namespace massbft
