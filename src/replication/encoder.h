#ifndef MASSBFT_REPLICATION_ENCODER_H_
#define MASSBFT_REPLICATION_ENCODER_H_

#include <vector>

#include "common/result.h"
#include "crypto/merkle.h"
#include "proto/entry.h"
#include "proto/messages.h"
#include "replication/transfer_plan.h"

namespace massbft {

/// Sender-side product of encoding one entry for one receiver group: the
/// erasure-coded chunks with their Merkle tree. Every correct node of the
/// sender group computes this identically (deterministic split), then sends
/// only its own chunks per the transfer plan.
struct EncodedEntry {
  Digest merkle_root{};
  /// chunk_id -> Chunk (data + proof), covering all n_total chunks.
  std::vector<Chunk> chunks;
};

/// Encodes `entry` into `plan.n_total()` chunks (`plan.n_data()` data +
/// parity) and builds the Merkle tree over them.
Result<EncodedEntry> EncodeEntryForPlan(const Entry& entry,
                                        const TransferPlan& plan);

/// Same, but encodes arbitrary bytes (used by Byzantine senders to encode
/// a *tampered* entry in the Fig 15 fault-injection experiment).
Result<EncodedEntry> EncodeBytesForPlan(const Bytes& payload,
                                        const TransferPlan& plan);

}  // namespace massbft

#endif  // MASSBFT_REPLICATION_ENCODER_H_
