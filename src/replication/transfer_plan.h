#ifndef MASSBFT_REPLICATION_TRANSFER_PLAN_H_
#define MASSBFT_REPLICATION_TRANSFER_PLAN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace massbft {

/// One chunk assignment: chunk `chunk` travels from node `sender` in the
/// sender group to node `receiver` in the receiver group. (Paper Algorithm 1
/// tuple <c, i, j>.)
struct TransferTuple {
  int chunk = 0;
  int sender = 0;
  int receiver = 0;

  friend bool operator==(const TransferTuple&, const TransferTuple&) = default;
};

/// Transfer plan for one sender-group -> receiver-group pair, exactly as
/// the paper's Algorithm 1:
///   n_total  = LCM(n1, n2)            total chunks
///   nc1      = n_total / n1           chunks each sender node sends
///   nc2      = n_total / n2           chunks each receiver node receives
///   f1, f2   = floor((n-1)/3)         Byzantine bounds
///   n_parity = nc1*f1 + nc2*f2        worst-case chunk loss
///   n_data   = n_total - n_parity     chunks guaranteed delivered
/// Chunk c is sent by node floor(c/nc1) and received by node floor(c/nc2),
/// so every chunk crosses the WAN exactly once.
class TransferPlan {
 public:
  /// Builds the plan for groups of size n1 (sender) and n2 (receiver).
  /// Fails if LCM(n1, n2) > 255 (GF(2^8) shard limit, documented in
  /// DESIGN.md) or if the fault bounds leave no data chunks.
  [[nodiscard]] static Result<TransferPlan> Create(int n1, int n2);

  int n1() const { return n1_; }
  int n2() const { return n2_; }
  int n_total() const { return n_total_; }
  int n_data() const { return n_data_; }
  int n_parity() const { return n_parity_; }
  int chunks_per_sender() const { return nc1_; }
  int chunks_per_receiver() const { return nc2_; }

  /// The sender node for chunk c.
  int SenderOf(int chunk) const { return chunk / nc1_; }
  /// The receiver node for chunk c.
  int ReceiverOf(int chunk) const { return chunk / nc2_; }

  /// All tuples, ascending by chunk id.
  std::vector<TransferTuple> AllTuples() const;
  /// Tuples for one sender node (paper Algorithm 1 lines 7-10).
  std::vector<TransferTuple> TuplesForSender(int sender) const;
  /// Tuples for one receiver node (lines 11-14).
  std::vector<TransferTuple> TuplesForReceiver(int receiver) const;

  /// WAN copies of the entry this plan transmits: n_total / n_data
  /// (e.g. 28/13 ~ 2.15 for the paper's 4x7 case study).
  double EntryCopiesSent() const {
    return static_cast<double>(n_total_) / static_cast<double>(n_data_);
  }

 private:
  TransferPlan(int n1, int n2, int n_total, int n_data, int n_parity, int nc1,
               int nc2)
      : n1_(n1), n2_(n2), n_total_(n_total), n_data_(n_data),
        n_parity_(n_parity), nc1_(nc1), nc2_(nc2) {}

  int n1_;
  int n2_;
  int n_total_;
  int n_data_;
  int n_parity_;
  int nc1_;
  int nc2_;
};

}  // namespace massbft

#endif  // MASSBFT_REPLICATION_TRANSFER_PLAN_H_
