#include "replication/transfer_plan.h"

#include <numeric>

namespace massbft {

Result<TransferPlan> TransferPlan::Create(int n1, int n2) {
  if (n1 < 1 || n2 < 1)
    return Status::InvalidArgument("group sizes must be positive");
  long lcm = std::lcm(static_cast<long>(n1), static_cast<long>(n2));
  if (lcm > 255)
    return Status::InvalidArgument(
        "LCM(n1, n2) exceeds the 255-shard GF(2^8) limit");
  int n_total = static_cast<int>(lcm);
  int nc1 = n_total / n1;
  int nc2 = n_total / n2;
  int f1 = (n1 - 1) / 3;
  int f2 = (n2 - 1) / 3;
  int n_parity = nc1 * f1 + nc2 * f2;
  int n_data = n_total - n_parity;
  if (n_data < 1)
    return Status::InvalidArgument(
        "fault bounds leave no data chunks (groups too small/asymmetric)");
  return TransferPlan(n1, n2, n_total, n_data, n_parity, nc1, nc2);
}

std::vector<TransferTuple> TransferPlan::AllTuples() const {
  std::vector<TransferTuple> tuples;
  tuples.reserve(n_total_);
  for (int c = 0; c < n_total_; ++c)
    tuples.push_back({c, SenderOf(c), ReceiverOf(c)});
  return tuples;
}

std::vector<TransferTuple> TransferPlan::TuplesForSender(int sender) const {
  std::vector<TransferTuple> tuples;
  tuples.reserve(nc1_);
  for (int c = nc1_ * sender; c < nc1_ * (sender + 1); ++c)
    tuples.push_back({c, sender, ReceiverOf(c)});
  return tuples;
}

std::vector<TransferTuple> TransferPlan::TuplesForReceiver(
    int receiver) const {
  std::vector<TransferTuple> tuples;
  tuples.reserve(nc2_);
  for (int c = nc2_ * receiver; c < nc2_ * (receiver + 1); ++c)
    tuples.push_back({c, SenderOf(c), receiver});
  return tuples;
}

}  // namespace massbft
