#include "replication/rebuilder.h"

#include <utility>

#include "common/logging.h"
#include "ec/reed_solomon.h"

namespace massbft {

EntryRebuilder::EntryRebuilder(Config config) : config_(std::move(config)) {
  MASSBFT_CHECK(config_.n_total >= config_.n_data && config_.n_data >= 1);
}

EntryRebuilder::AddResult EntryRebuilder::AddChunk(const Digest& root,
                                                   uint32_t chunk_id,
                                                   const Bytes& data,
                                                   const MerkleProof& proof,
                                                   const Certificate& cert) {
  if (complete()) return AddResult::kDuplicate;
  if (chunk_id >= static_cast<uint32_t>(config_.n_total))
    return AddResult::kRejected;
  if (banned_ids_.count(chunk_id) > 0) return AddResult::kDuplicate;

  // The Merkle tree is built over all n_total chunks in id order, so the
  // proof's leaf index must equal the chunk id and its leaf count must
  // match the plan.
  if (proof.index != chunk_id ||
      proof.leaf_count != static_cast<uint32_t>(config_.n_total))
    return AddResult::kRejected;
  if (!MerkleTree::VerifyProof(root, MerkleTree::HashLeaf(data), proof))
    return AddResult::kRejected;

  Bucket& bucket = buckets_[root];
  if (bucket.proven_fake) return AddResult::kDuplicate;
  auto [it, inserted] = bucket.chunks.emplace(
      chunk_id, std::make_pair(data, proof));
  if (!inserted) return AddResult::kDuplicate;

  if (static_cast<int>(bucket.chunks.size()) >= config_.n_data)
    return TryRebuild(root, bucket, cert);
  return AddResult::kPending;
}

EntryRebuilder::AddResult EntryRebuilder::TryRebuild(const Digest& root,
                                                     Bucket& bucket,
                                                     const Certificate& cert) {
  auto rs = ReedSolomon::Create(config_.n_data,
                                config_.n_total - config_.n_data);
  MASSBFT_CHECK(rs.ok());

  std::vector<std::optional<Bytes>> shards(config_.n_total);
  for (const auto& [id, chunk] : bucket.chunks) shards[id] = chunk.first;
  auto decoded = rs->DecodeMessage(shards);

  bool valid = false;
  EntryPtr candidate;
  if (decoded.ok()) {
    auto entry = Entry::Decode(*decoded);
    if (entry.ok()) {
      candidate = *entry;
      valid = config_.validate(cert, candidate->digest());
    }
  }

  if (!valid) {
    // Every chunk in this bucket is provably fake (they share the root);
    // ban their ids so refills cannot force repeated rebuild attempts
    // (DoS defense, Section IV-C).
    bucket.proven_fake = true;
    for (const auto& [id, chunk] : bucket.chunks) banned_ids_.insert(id);
    return AddResult::kBucketFake;
  }

  entry_ = std::move(candidate);
  winning_root_ = root;
  return AddResult::kRebuilt;
}

std::vector<EntryRebuilder::HeldChunk> EntryRebuilder::HeldChunks() const {
  std::vector<HeldChunk> held;
  for (const auto& [root, bucket] : buckets_) {
    if (bucket.proven_fake) continue;
    // Once rebuilt, only re-share the winning bucket.
    if (complete() && root != winning_root_) continue;
    for (const auto& [id, chunk] : bucket.chunks)
      held.push_back({root, id, chunk.first, chunk.second});
  }
  return held;
}

}  // namespace massbft
