#include "replication/rebuilder.h"

#include <utility>

#include "common/logging.h"
#include "ec/reed_solomon.h"

namespace massbft {

EntryRebuilder::EntryRebuilder(Config config) : config_(std::move(config)) {
  MASSBFT_CHECK(config_.n_total >= config_.n_data && config_.n_data >= 1);
  if (config_.telemetry != nullptr) {
    obs::MetricsRegistry& registry = config_.telemetry->registry();
    accepted_counter_ = registry.GetCounter("rebuild/chunks_accepted");
    duplicate_counter_ = registry.GetCounter("rebuild/chunks_duplicate");
    rejected_counter_ = registry.GetCounter("rebuild/chunks_rejected");
    rebuilt_counter_ = registry.GetCounter("rebuild/entries_rebuilt");
    fake_bucket_counter_ = registry.GetCounter("rebuild/fake_buckets");
  }
}

EntryRebuilder::AddResult EntryRebuilder::Count(AddResult result) {
  if (accepted_counter_ == nullptr) return result;
  switch (result) {
    case AddResult::kPending:
      accepted_counter_->Add();
      break;
    case AddResult::kDuplicate:
      duplicate_counter_->Add();
      break;
    case AddResult::kRejected:
      rejected_counter_->Add();
      break;
    case AddResult::kRebuilt:
      accepted_counter_->Add();
      rebuilt_counter_->Add();
      break;
    case AddResult::kBucketFake:
      accepted_counter_->Add();
      fake_bucket_counter_->Add();
      break;
  }
  return result;
}

EntryRebuilder::AddResult EntryRebuilder::AddChunk(const Digest& root,
                                                   uint32_t chunk_id,
                                                   const Bytes& data,
                                                   const MerkleProof& proof,
                                                   const Certificate& cert) {
  if (complete()) return Count(AddResult::kDuplicate);
  if (chunk_id >= static_cast<uint32_t>(config_.n_total))
    return Count(AddResult::kRejected);
  // Refill-DoS defense (Section IV-C), scoped to the proven-fake *root*:
  // chunks for a root whose bucket failed validation are refused before
  // any proof verification, so refills of a fake bucket stay O(1). The
  // ban must not be global by chunk id — chunks of a different root are a
  // different candidate entry, and a Byzantine bucket covering ids
  // 0..n_data-1 must not block the genuine entry's chunks with the same
  // ids (that would trade a DoS defense for a liveness hole).
  if (auto it = buckets_.find(root);
      it != buckets_.end() && it->second.proven_fake)
    return Count(AddResult::kDuplicate);

  // The Merkle tree is built over all n_total chunks in id order, so the
  // proof's leaf index must equal the chunk id and its leaf count must
  // match the plan.
  if (proof.index != chunk_id ||
      proof.leaf_count != static_cast<uint32_t>(config_.n_total))
    return Count(AddResult::kRejected);
  if (!MerkleTree::VerifyProof(root, MerkleTree::HashLeaf(data), proof))
    return Count(AddResult::kRejected);

  Bucket& bucket = buckets_[root];
  auto [it, inserted] = bucket.chunks.emplace(
      chunk_id, std::make_pair(data, proof));
  if (!inserted) return Count(AddResult::kDuplicate);

  if (static_cast<int>(bucket.chunks.size()) >= config_.n_data)
    return Count(TryRebuild(root, bucket, cert));
  return Count(AddResult::kPending);
}

EntryRebuilder::AddResult EntryRebuilder::TryRebuild(const Digest& root,
                                                     Bucket& bucket,
                                                     const Certificate& cert) {
  auto rs = ReedSolomon::Shared(config_.n_data,
                                config_.n_total - config_.n_data);
  MASSBFT_CHECK(rs.ok());

  std::vector<std::optional<Bytes>> shards(config_.n_total);
  for (const auto& [id, chunk] : bucket.chunks) shards[id] = chunk.first;
  auto decoded = (*rs)->DecodeMessage(shards);

  bool valid = false;
  EntryPtr candidate;
  if (decoded.ok()) {
    auto entry = Entry::Decode(*decoded);
    if (entry.ok()) {
      candidate = *entry;
      valid = config_.validate(cert, candidate->digest());
    }
  }

  if (!valid) {
    // Every chunk in this bucket is provably fake (they share the root).
    // Mark the root so its refills are refused without another rebuild
    // attempt (DoS defense, Section IV-C) and free the chunk data — a
    // fake bucket must not pin memory either.
    bucket.proven_fake = true;
    banned_total_ += bucket.chunks.size();
    bucket.chunks.clear();
    return AddResult::kBucketFake;
  }

  entry_ = std::move(candidate);
  winning_root_ = root;
  return AddResult::kRebuilt;
}

std::vector<EntryRebuilder::HeldChunk> EntryRebuilder::HeldChunks() const {
  std::vector<HeldChunk> held;
  for (const auto& [root, bucket] : buckets_) {
    if (bucket.proven_fake) continue;
    // Once rebuilt, only re-share the winning bucket.
    if (complete() && root != winning_root_) continue;
    for (const auto& [id, chunk] : bucket.chunks)
      held.push_back({root, id, chunk.first, chunk.second});
  }
  return held;
}

}  // namespace massbft
