#ifndef MASSBFT_REPLICATION_REBUILDER_H_
#define MASSBFT_REPLICATION_REBUILDER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "obs/telemetry.h"
#include "proto/entry.h"
#include "proto/messages.h"

namespace massbft {

/// Optimistic entry rebuild (paper Section IV-C), one instance per
/// in-flight entry e_{gid,seq} on a receiver node.
///
/// Incoming chunks are verified against their Merkle proofs and grouped
/// into buckets by Merkle root: chunks sharing a root were provably encoded
/// from one candidate entry, so tampered chunks can never pollute a correct
/// bucket. Once a bucket holds n_data distinct chunk ids the entry is
/// rebuilt and validated against the PBFT certificate; a failed validation
/// proves every chunk in that bucket fake. The fake *root* is remembered
/// (and the bucket's memory freed) so refills of it are refused in O(1)
/// without re-verification or another rebuild — DoS-by-refill defense.
/// The ban is per-root, never global by chunk id: a Byzantine bucket
/// covering ids 0..n_data-1 must not block the genuine bucket's chunks
/// with the same ids. Filling a fresh fake bucket costs the attacker
/// n_data valid Merkle proofs under a new root per rebuild attempt — the
/// cost asymmetry favors the defender.
class EntryRebuilder {
 public:
  struct Config {
    int n_total = 0;
    int n_data = 0;
    /// Validates the certificate carried with the chunks and binds it to
    /// the rebuilt entry digest. Typically: cert.digest == digest &&
    /// cert.Verify(registry, 2f+1 of the sender group).
    std::function<bool(const Certificate& cert, const Digest& entry_digest)>
        validate;
    /// Observability sink (optional): chunk outcomes land in the registry
    /// counters "rebuild/chunks_{accepted,duplicate,rejected}",
    /// "rebuild/entries_rebuilt" and "rebuild/fake_buckets".
    obs::Telemetry* telemetry = nullptr;
  };

  /// Outcome of feeding one chunk.
  enum class AddResult {
    kPending,      // Stored; not enough chunks yet.
    kDuplicate,    // Already had this chunk (or its root is proven fake).
    kRejected,     // Bad Merkle proof / id out of range.
    kRebuilt,      // Entry reconstructed and validated; see entry().
    kBucketFake,   // Bucket filled but failed validation; root banned.
  };

  explicit EntryRebuilder(Config config);

  /// Feeds one chunk (already transported). `root` is the Merkle root the
  /// sender committed to; the proof must bind (chunk_id, data) to it.
  AddResult AddChunk(const Digest& root, uint32_t chunk_id, const Bytes& data,
                     const MerkleProof& proof, const Certificate& cert);

  bool complete() const { return entry_ != nullptr; }
  const EntryPtr& entry() const { return entry_; }

  /// Chunks this node verified and holds from the winning/any bucket —
  /// what it re-shares over LAN. Returns (root, chunk_id, data, proof).
  struct HeldChunk {
    Digest root;
    uint32_t chunk_id;
    Bytes data;
    MerkleProof proof;
  };
  std::vector<HeldChunk> HeldChunks() const;

  /// Total chunks discarded inside proven-fake buckets (per-root scope).
  int banned_count() const { return static_cast<int>(banned_total_); }
  int bucket_count() const { return static_cast<int>(buckets_.size()); }

 private:
  struct Bucket {
    std::map<uint32_t, std::pair<Bytes, MerkleProof>> chunks;
    bool proven_fake = false;
  };

  AddResult TryRebuild(const Digest& root, Bucket& bucket,
                       const Certificate& cert);
  /// Reports `result` into the registry counters (no-op when unwired).
  AddResult Count(AddResult result);

  Config config_;
  std::map<Digest, Bucket> buckets_;
  size_t banned_total_ = 0;
  EntryPtr entry_;
  Digest winning_root_{};
  // Pre-resolved observability handles (null when not wired).
  obs::Counter* accepted_counter_ = nullptr;
  obs::Counter* duplicate_counter_ = nullptr;
  obs::Counter* rejected_counter_ = nullptr;
  obs::Counter* rebuilt_counter_ = nullptr;
  obs::Counter* fake_bucket_counter_ = nullptr;
};

}  // namespace massbft

#endif  // MASSBFT_REPLICATION_REBUILDER_H_
