#ifndef MASSBFT_CORE_GROUP_NODE_H_
#define MASSBFT_CORE_GROUP_NODE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "consensus/pbft/certifier.h"
#include "consensus/pbft/pbft.h"
#include "consensus/raft/raft.h"
#include "core/config.h"
#include "crypto/signature.h"
#include "db/aria.h"
#include "db/kv_store.h"
#include "obs/telemetry.h"
#include "ordering/round_ordering.h"
#include "ordering/vts_ordering.h"
#include "proto/entry.h"
#include "proto/messages.h"
#include "replication/encoder.h"
#include "replication/rebuilder.h"
#include "replication/transfer_plan.h"
#include "sim/actor.h"
#include "sim/metrics.h"
#include "sim/topology.h"
#include "workload/workload.h"

namespace massbft {

/// Per-phase latency accumulators for the Fig 11 breakdown, summed over
/// entries at the proposing group's leader (plus encode/rebuild CPU spans
/// measured where they happen). Derived from the obs registry's phase
/// histograms and counters after a run (Experiment::Run()); nodes record
/// through ClusterContext::telemetry, not into this struct.
struct PhaseStats {
  double batching_ms = 0;     // Txn submit -> batch formed.
  double local_ms = 0;        // Batch formed -> local PBFT committed.
  double encode_ms = 0;       // RS encode + Merkle build CPU span.
  double global_ms = 0;       // Local commit -> global commit (+ VTS).
  double rebuild_ms = 0;      // Chunk arrival -> entry rebuilt (receivers).
  double exec_ms = 0;         // Global commit -> executed.
  uint64_t entries = 0;
  uint64_t rebuilds = 0;
  uint64_t txns = 0;
  uint64_t conflict_aborts = 0;
  double batch_size_sum = 0;
};

/// State shared by every node of one simulated cluster.
struct ClusterContext {
  KeyRegistry* registry = nullptr;
  const Topology* topology = nullptr;
  Workload* workload = nullptr;
  MetricsCollector* metrics = nullptr;
  /// Cluster-wide observability: metrics registry + trace recorder. The
  /// default storage keeps directly-constructed nodes (tests) working;
  /// Experiment points every layer at the same instance.
  obs::Telemetry telemetry_storage;
  obs::Telemetry* telemetry = &telemetry_storage;

  /// Client commit notification: fired once per transaction by the
  /// executing leader of the transaction's origin group.
  std::function<void(const Transaction&, SimTime commit_time)>
      on_txn_committed;

  /// Pure-optimization caches (results identical with or without; the
  /// simulated CPU cost is still charged per node). Keyed so Byzantine
  /// (tampered) encodings never collide with correct ones.
  std::map<std::pair<Digest, int>, std::shared_ptr<const EncodedEntry>>
      encode_cache;
  std::map<Digest, EntryPtr> rebuild_cache;  // Merkle root -> decoded entry.

  /// Collusion channel for the Fig 15 Byzantine experiment: tampered
  /// encodings shared among faulty nodes (out-of-band in a real attack).
  std::map<std::pair<Digest, int>, std::shared_ptr<const EncodedEntry>>
      tampered_cache;
};

/// One replica node. A single class implements every evaluated protocol
/// (MassBFT, Baseline, GeoBFT, Steward, ISS and the BR/EBR ablations),
/// selected by ProtocolConfig — the protocols share batching, local PBFT,
/// the entry store and execution, and differ only in the replication
/// strategy, global consensus usage and ordering mode (paper Table II).
class GroupNode : public Actor {
 public:
  struct FaultConfig {
    /// Byzantine chunk tampering from `byzantine_from` on (Fig 15).
    bool byzantine = false;
    SimTime byzantine_from = 0;
  };

  GroupNode(Simulator* sim, Network* network, NodeId id,
            const ProtocolConfig& config, ClusterContext* ctx,
            FaultConfig fault);
  GroupNode(Simulator* sim, Network* network, NodeId id,
            const ProtocolConfig& config, ClusterContext* ctx)
      : GroupNode(sim, network, id, config, ctx, FaultConfig{}) {}
  ~GroupNode() override;

  /// Arms batch/heartbeat/epoch timers. Call once after all nodes exist.
  void Start();

  /// Client transaction ingestion (group leader only). Charges client
  /// signature verification.
  void SubmitClientTxn(Transaction txn);

  void HandleMessage(NodeId from, MessagePtr message) override;
  void Crash() override;

  /// Rejoins a crashed node (paper Section V-C): timers restart; if this
  /// is the group leader it requests catch-up from a peer group leader and
  /// resumes proposing once missed state is replayed.
  void Recover() override;

  /// True once this node has rejoined after a crash. A rejoined replica is
  /// a catching-up learner: it proposes and accepts safely (certificates
  /// and quorums do not depend on its local order), but its locally
  /// re-derived execution interleaving is not authoritative — a production
  /// deployment installs a state snapshot instead of re-deriving history.
  bool rejoined() const { return rejoined_; }

  // ---- Introspection (tests / benches).
  bool IsGroupLeader() const;
  uint64_t executed_entries() const { return execution_log_.size(); }
  const std::vector<std::pair<uint16_t, uint64_t>>& execution_log() const {
    return execution_log_;
  }
  uint64_t executed_txns() const { return executed_txns_; }
  const KvStore& store() const { return store_; }
  uint64_t own_clock() const { return own_clock_; }
  size_t pending_txn_count() const { return pending_txns_.size(); }

  /// Force this node to execute entries even if it is not a group leader
  /// (agreement tests compare all nodes' execution logs).
  void set_always_execute(bool v) { always_execute_ = v; }

  /// Ordering-engine introspection (tests/diagnostics; null unless the
  /// protocol uses VTS ordering).
  const VtsOrderingEngine* vts_engine() const { return vts_ordering_.get(); }
  /// Entry-record introspection for diagnostics.
  struct RecordView {
    bool exists = false;
    bool payload_available = false;
    bool globally_committed = false;
    bool executed = false;
  };
  RecordView InspectRecord(uint16_t gid, uint64_t seq) const;

 private:
  using Key = std::pair<uint16_t, uint64_t>;

  struct EntryRecord {
    EntryPtr entry;
    Certificate cert;
    bool has_cert = false;
    bool payload_available = false;  // Entry bytes present and validated.
    bool globally_committed = false;
    bool executed = false;
    bool lan_forwarded = false;
    bool chunks_shared = false;
    std::unique_ptr<EntryRebuilder> rebuilder;
    SimTime first_chunk_at = -1;
    SimTime created_at = -1;
    SimTime local_committed_at = -1;
    SimTime global_committed_at = -1;
  };

  // ---- Role helpers.
  int my_group() const { return id().group; }
  int num_groups() const { return ctx_->topology->num_groups(); }
  int group_size(int g) const { return ctx_->topology->group_size(g); }
  int group_f(int g) const { return ctx_->topology->max_faulty(g); }
  NodeId LeaderOf(int g) const {
    return NodeId{static_cast<uint16_t>(g), 0};
  }
  bool IsGlobalMaster() const {
    return config_.single_master && my_group() == 0;
  }
  void BroadcastLan(const MessagePtr& msg);

  // ---- Crypto helpers (charge simulated CPU).
  Signature SignPayload(const Bytes& payload);
  [[nodiscard]] bool VerifyNodeSig(NodeId node, const Bytes& payload,
                                   const Signature& sig);
  [[nodiscard]] bool VerifyGroupCert(const Certificate& cert,
                                     const Digest& digest);

  // ---- Batching / proposing (leader). Timer chains carry an epoch so
  // chains from before a crash die instead of double-firing after
  // recovery.
  void OnBatchTimer(uint64_t epoch);
  void TryFormBatch(bool timer_fired);
  /// True when a committed entry has been blocked from execution for more
  /// than two batch intervals (triggers the VTS liveness tick).
  bool HasStaleUnexecuted() const;

  // ---- Local PBFT.
  void OnLocalCommitted(EntryPtr entry, Certificate cert);
  void ValidateEntryAsync(EntryPtr entry, std::function<void(bool)> done);

  // ---- Replication (send side).
  void ReplicateToGroups(const EntryPtr& entry, const Certificate& cert);
  void SendLeaderOneWay(const EntryPtr& entry, const Certificate& cert);
  void SendBijective(const EntryPtr& entry, const Certificate& cert);
  void SendEncoded(const EntryPtr& entry, const Certificate& cert);
  std::shared_ptr<const EncodedEntry> GetEncoded(const EntryPtr& entry,
                                                 const TransferPlan& plan,
                                                 bool tampered);

  // ---- Replication (receive side).
  void OnEntryTransfer(NodeId from, const EntryTransferMsg& msg);
  void OnChunkBatch(NodeId from, const ChunkBatchMsg& msg);
  void StorePayload(const Key& key, EntryPtr entry, const Certificate& cert);
  void MarkPayloadAvailable(const Key& key);
  EntryRecord& GetRecord(const Key& key) { return entries_[key]; }
  bool HasPayload(const Key& key) const;

  // ---- Global consensus (group leader).
  void SetupRaft();
  void RelayToGroup(RelayEvent event, bool replay = false);
  void ApplyRelayEvent(const RelayEvent& event);
  void FinishSync();
  void OnRaftCommitted(uint16_t gid, uint64_t seq);
  void OnAcceptObserved(uint16_t gid, uint64_t seq, uint16_t from_group,
                        uint64_t ts);
  uint64_t AssignTs(uint16_t gid, uint64_t seq);

  // ---- Steward single-master flow.
  void ForwardToGlobalMaster(const EntryPtr& entry, const Certificate& cert);
  void OnLeaderForward(const LeaderForwardMsg& msg);
  void MaybeTranslateGlobalCommits();

  // ---- ISS epochs.
  void OnEpochTimer(uint64_t epoch);
  void OnEpochMarker(NodeId from, const EpochMarkerMsg& msg);

  // ---- MassBFT fault handling.
  void OnHeartbeatTimer(uint64_t epoch);
  void CheckGroupLiveness();
  void StartTakeover(uint16_t dead_gid);
  void EmitTakeoverTimestamps(uint16_t dead_gid);
  void OnTimestampAssign(const TimestampAssignMsg& msg);
  void OnCatchUpRequest(NodeId from, const CatchUpRequestMsg& msg);
  void OnGroupRejoined(uint16_t gid);
  void FinishFreezeRound(uint16_t dead_gid);

  // ---- Ordering & execution.
  void SetupOrdering();
  bool CanExecute(uint16_t gid, uint64_t seq) const;
  void ExecuteEntry(uint16_t gid, uint64_t seq);
  void PokeOrdering();
  bool IsExecutor() const { return always_execute_ || IsGroupLeader(); }

  // ---- Members.
  ProtocolConfig config_;
  ClusterContext* ctx_;
  FaultConfig fault_;

  // Observability (pre-resolved at construction; tel_ is never null).
  obs::Telemetry* tel_;
  uint32_t trace_track_;
  obs::Counter* entries_counter_;
  obs::Counter* txns_exec_counter_;
  obs::Counter* conflict_abort_counter_;
  obs::Counter* logic_abort_counter_;
  obs::Counter* coded_bytes_counter_;

  std::unique_ptr<PbftEngine> pbft_;
  std::unique_ptr<DigestCertifier> certifier_;
  std::unique_ptr<RaftCoordinator> raft_;
  std::map<DecisionId, std::function<void(Certificate)>> pending_certs_;

  std::deque<Transaction> pending_txns_;
  uint64_t next_local_seq_ = 0;
  int outstanding_ = 0;
  bool started_ = false;

  std::map<Key, EntryRecord> entries_;
  std::set<Digest> executed_digests_;

  // Ordering engines (one active per config).
  std::unique_ptr<VtsOrderingEngine> vts_ordering_;
  std::unique_ptr<RoundOrderingEngine> round_ordering_;
  std::unique_ptr<EpochOrderingEngine> epoch_ordering_;
  // Steward FIFO: committed origin keys executed in arrival order, plus
  // the global-seq -> digest -> origin-key translation tables.
  std::deque<Key> fifo_queue_;
  std::deque<uint64_t> pending_global_commits_;
  std::map<uint64_t, Digest> global_seq_digest_;
  std::map<Digest, Key> digest_index_;
  uint64_t next_global_seq_ = 0;  // Global master only.

  // Execution.
  KvStore store_;
  std::unique_ptr<AriaExecutor> aria_;
  std::vector<std::pair<uint16_t, uint64_t>> execution_log_;
  uint64_t executed_txns_ = 0;
  bool always_execute_ = false;

  // MassBFT VTS state.
  uint64_t own_clock_ = 0;  // = number of own-group entries committed.
  std::map<uint16_t, uint64_t> max_ts_seen_;  // Per assigner group.
  std::set<uint16_t> dead_groups_;
  std::map<uint16_t, SimTime> last_heartbeat_;
  std::set<Key> unexecuted_committed_;  // For takeover stamping.
  /// Per-instance execution frontier (next sequence this node would
  /// execute) — drives catch-up after recovery.
  std::map<uint16_t, uint64_t> executed_next_;
  /// VTS elements retained per entry so peers can be caught up.
  std::map<Key, std::map<uint16_t, uint64_t>> recorded_vts_;
  /// Takeover freeze agreement (one round per dead group).
  struct FreezeRound {
    std::set<uint16_t> expected;
    uint64_t max_seen = 0;
  };
  std::map<uint16_t, FreezeRound> freeze_rounds_;
  std::map<uint16_t, uint64_t> frozen_clock_;
  /// Recovery sync window: live timestamp events buffered until the
  /// catch-up replay is fully applied.
  bool syncing_ = false;
  bool rejoined_ = false;
  std::vector<RelayEvent> sync_buffer_;

  // Timer-chain epoch (bumped on crash so stale chains die).
  uint64_t timer_epoch_ = 0;

  // ISS epoch bookkeeping.
  uint64_t current_epoch_ = 0;
  uint64_t epoch_first_seq_ = 0;
  std::map<uint16_t, uint64_t> epoch_next_first_;
};

}  // namespace massbft

#endif  // MASSBFT_CORE_GROUP_NODE_H_
