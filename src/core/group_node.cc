#include "core/group_node.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "common/logging.h"

namespace massbft {

namespace {

/// Deterministic tampering applied by colluding Byzantine nodes (Fig 15):
/// flip one payload byte, which changes the entry digest and thus every
/// chunk's Merkle root.
Bytes TamperedBytes(const Bytes& encoded) {
  Bytes tampered = encoded;
  if (!tampered.empty()) tampered[tampered.size() / 2] ^= 0xFF;
  return tampered;
}

}  // namespace

GroupNode::GroupNode(Simulator* sim, Network* network, NodeId id,
                     const ProtocolConfig& config, ClusterContext* ctx,
                     FaultConfig fault)
    : Actor(sim, network, id, config.cpu),
      config_(config),
      ctx_(ctx),
      fault_(fault),
      tel_(ctx->telemetry),
      trace_track_(obs::Telemetry::NodeTrack(id.Packed())) {
  ctx_->registry->RegisterNode(id);

  // ---- Observability handles (counters are cheap; the registry is
  // shared cluster-wide, so counts aggregate across nodes).
  obs::MetricsRegistry& metrics_registry = tel_->registry();
  entries_counter_ = metrics_registry.GetCounter("node/entries_batched");
  txns_exec_counter_ = metrics_registry.GetCounter("exec/txns_executed");
  conflict_abort_counter_ =
      metrics_registry.GetCounter("exec/conflict_aborts");
  logic_abort_counter_ = metrics_registry.GetCounter("exec/logic_aborts");
  coded_bytes_counter_ =
      metrics_registry.GetCounter("replication/coded_bytes_sent");

  // ---- Local PBFT engine.
  PbftEngine::Callbacks pbft_cb;
  pbft_cb.now = [this] { return Now(); };
  pbft_cb.telemetry = tel_;
  pbft_cb.trace_track = trace_track_;
  pbft_cb.broadcast = [this](MessagePtr m) { BroadcastLan(m); };
  pbft_cb.send_to = [this](NodeId dst, MessagePtr m) { SendLan(dst, m); };
  pbft_cb.sign = [this](const Bytes& payload) { return SignPayload(payload); };
  pbft_cb.verify = [this](NodeId node, const Bytes& payload,
                          const Signature& sig) {
    return VerifyNodeSig(node, payload, sig);
  };
  pbft_cb.validate_entry = [this](EntryPtr entry,
                                  std::function<void(bool)> done) {
    ValidateEntryAsync(std::move(entry), std::move(done));
  };
  pbft_cb.after = [this](SimTime delay, std::function<void()> fn) {
    After(delay, std::move(fn));
  };
  pbft_cb.on_committed = [this](EntryPtr entry, Certificate cert) {
    OnLocalCommitted(std::move(entry), std::move(cert));
  };
  pbft_ = std::make_unique<PbftEngine>(id.group, id, group_size(id.group),
                                       std::move(pbft_cb));

  // ---- Skip-prepare decision certifier.
  DigestCertifier::Callbacks cert_cb;
  cert_cb.broadcast = [this](MessagePtr m) { BroadcastLan(m); };
  cert_cb.send_to = [this](NodeId dst, MessagePtr m) { SendLan(dst, m); };
  cert_cb.sign = [this](const Bytes& payload) { return SignPayload(payload); };
  cert_cb.verify = [this](NodeId node, const Bytes& payload,
                          const Signature& sig) {
    return VerifyNodeSig(node, payload, sig);
  };
  cert_cb.can_sign = [this](const DecisionId& decision) {
    if (decision.kind == DigestCertifier::kCommitDecision) return true;
    // Accept: a follower signs only once it holds the entry payload —
    // this is what makes Lemma V.1's atomicity argument hold. (Steward's
    // funneled entries are keyed by global sequence; availability is then
    // enforced at the leader that initiates certification.)
    if (config_.single_master) return true;
    return HasPayload(Key{decision.target_gid, decision.target_seq});
  };
  cert_cb.on_certified = [this](const DecisionId& decision, Certificate cert) {
    auto it = pending_certs_.find(decision);
    if (it == pending_certs_.end()) return;
    auto done = std::move(it->second);
    pending_certs_.erase(it);
    done(std::move(cert));
  };
  certifier_ = std::make_unique<DigestCertifier>(
      id.group, id, group_size(id.group), std::move(cert_cb));

  if (config_.use_global_raft && IsGroupLeader()) SetupRaft();
  SetupOrdering();

  // ---- Execution.
  ctx_->workload->InstallInitialState(&store_);
  aria_ = std::make_unique<AriaExecutor>(&store_, ctx_->workload->MakeFactory());
}

GroupNode::~GroupNode() = default;

bool GroupNode::IsGroupLeader() const { return id().index == 0; }

void GroupNode::BroadcastLan(const MessagePtr& msg) {
  for (int i = 0; i < group_size(my_group()); ++i) {
    if (i == id().index) continue;
    SendLan(NodeId{static_cast<uint16_t>(my_group()),
                   static_cast<uint16_t>(i)},
            msg);
  }
}

Signature GroupNode::SignPayload(const Bytes& payload) {
  cpu().ChargeSign();
  return ctx_->registry->Sign(id(), payload);
}

bool GroupNode::VerifyNodeSig(NodeId node, const Bytes& payload,
                              const Signature& sig) {
  cpu().ChargeVerify();
  return ctx_->registry->Verify(node, payload, sig);
}

bool GroupNode::VerifyGroupCert(const Certificate& cert,
                                const Digest& digest) {
  if (cert.digest != digest) return false;
  if (cert.gid >= num_groups()) return false;
  int quorum = 2 * group_f(cert.gid) + 1;
  cpu().ChargeVerify(static_cast<int>(cert.NumSignatures()));
  return cert.Verify(*ctx_->registry, quorum);
}

void GroupNode::Start() {
  started_ = true;
  uint64_t epoch = timer_epoch_;
  if (IsGroupLeader()) {
    After(config_.batch_timeout, [this, epoch] { OnBatchTimer(epoch); });
    if (config_.ordering == OrderingMode::kEpoch) {
      epoch_first_seq_ = next_local_seq_;
      After(config_.epoch_length, [this, epoch] { OnEpochTimer(epoch); });
    }
    if (config_.kind == ProtocolKind::kMassBft) {
      for (int g = 0; g < num_groups(); ++g)
        last_heartbeat_[static_cast<uint16_t>(g)] = Now();
      After(config_.heartbeat_interval,
            [this, epoch] { OnHeartbeatTimer(epoch); });
    }
  }
}

// --------------------------------------------------------------- Batching

void GroupNode::SubmitClientTxn(Transaction txn) {
  MASSBFT_CHECK(IsGroupLeader());
  if (crashed()) return;
  // Verify the client's signature on ingest (per-transaction cost; the
  // paper's dominant local-consensus CPU term).
  cpu().ChargeVerify();
  pending_txns_.push_back(std::move(txn));
  TryFormBatch(/*timer_fired=*/false);
}

void GroupNode::OnBatchTimer(uint64_t epoch) {
  if (epoch != timer_epoch_) return;  // Stale chain from before a crash.
  TryFormBatch(/*timer_fired=*/true);
  After(config_.batch_timeout, [this, epoch] { OnBatchTimer(epoch); });
}

void GroupNode::TryFormBatch(bool timer_fired) {
  if (!started_ || !IsGroupLeader() || crashed()) return;
  while (outstanding_ < config_.pipeline_depth) {
    bool full = static_cast<int>(pending_txns_.size()) >= config_.max_batch_size;
    // VTS liveness tick: ordering can only advance while group clocks
    // advance, and clocks advance only with proposals (Theorem V.6's
    // "as long as at least one group proposes entries"). When committed
    // entries linger unexecuted — e.g. blocked on a crashed group's
    // timestamps — idle leaders propose empty entries to keep clocks (and
    // the Algorithm 2 inference bounds) moving.
    bool liveness_tick = timer_fired && pending_txns_.empty() &&
                         config_.ordering == OrderingMode::kAsyncVts &&
                         HasStaleUnexecuted();
    bool timeout_batch =
        timer_fired &&
        (!pending_txns_.empty() || config_.propose_empty || liveness_tick);
    if (!full && !timeout_batch) break;
    timer_fired = false;  // At most one timeout-triggered batch per tick.

    int take = std::min<int>(static_cast<int>(pending_txns_.size()),
                             config_.max_batch_size);
    std::vector<Transaction> batch;
    batch.reserve(take);
    SimTime now = Now();
    obs::Histogram* batching =
        tel_->phase_histogram(obs::Phase::kBatching);
    SimTime earliest_submit = now;
    for (int i = 0; i < take; ++i) {
      SimTime submit = pending_txns_.front().submit_time;
      earliest_submit = std::min(earliest_submit, submit);
      batching->Record(SimToSeconds(now - submit) * 1e3);
      batch.push_back(std::move(pending_txns_.front()));
      pending_txns_.pop_front();
    }
    entries_counter_->Add();

    uint64_t seq = next_local_seq_++;
    if (tel_->tracing()) {
      tel_->trace().RecordSpan(
          trace_track_, "entry", "batching", earliest_submit, now,
          obs::TraceArgs{{{"gid", static_cast<double>(my_group())},
                          {"seq", static_cast<double>(seq)},
                          {"txns", static_cast<double>(take)}}});
    }
    auto entry = std::make_shared<const Entry>(
        static_cast<uint16_t>(my_group()), seq, std::move(batch));
    cpu().ChargeHash(entry->ByteSize());  // Entry digest.
    EntryRecord& rec = GetRecord(Key{entry->gid(), seq});
    rec.created_at = Now();
    ++outstanding_;
    pbft_->Propose(entry);
  }
}

bool GroupNode::HasStaleUnexecuted() const {
  SimTime threshold = Now() - 2 * config_.batch_timeout;
  for (const Key& key : unexecuted_committed_) {
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.global_committed_at >= 0 &&
        it->second.global_committed_at < threshold)
      return true;
  }
  return false;
}

void GroupNode::ValidateEntryAsync(EntryPtr entry,
                                   std::function<void(bool)> done) {
  // Per-transaction signature verification plus hashing the batch.
  SimTime cost =
      cpu().model().verify_cost * std::max(1, entry->num_txns()) +
      static_cast<SimTime>(cpu().model().hash_ns_per_byte *
                           static_cast<double>(entry->ByteSize()));
  cpu().ChargeThen(cost, [done = std::move(done)] { done(true); });
}

// ------------------------------------------------------------ Local PBFT

void GroupNode::OnLocalCommitted(EntryPtr entry, Certificate cert) {
  Key key{entry->gid(), entry->seq()};
  EntryRecord& rec = GetRecord(key);
  if (rec.payload_available) return;  // View-change duplicate.
  rec.entry = entry;
  rec.cert = cert;
  rec.has_cert = true;
  rec.payload_available = true;
  rec.local_committed_at = Now();
  if (rec.created_at >= 0)
    tel_->RecordPhaseSpan(obs::Phase::kLocalConsensus, trace_track_,
                          rec.created_at, Now(), entry->gid(), entry->seq());

  // Every correct node participates in sending (bijective/encoded modes
  // use followers; one-way modes no-op on followers).
  if (config_.single_master && my_group() != 0) {
    if (IsGroupLeader()) ForwardToGlobalMaster(entry, cert);
  } else {
    ReplicateToGroups(entry, cert);
    if (IsGroupLeader() && config_.use_global_raft && raft_ != nullptr) {
      if (config_.single_master) {
        // Master funnels its own entries through the global instance too.
        uint64_t gseq = next_global_seq_++;
        global_seq_digest_[gseq] = entry->digest();
        digest_index_[entry->digest()] = key;
        raft_->Propose(0, gseq, entry->digest(), cert, entry->gid(),
                       entry->seq());
      } else {
        raft_->Propose(entry->gid(), entry->seq(), entry->digest(), cert);
      }
    }
  }

  certifier_->RecheckPending();
  MarkPayloadAvailable(key);
}

// ----------------------------------------------------- Replication: send

void GroupNode::ReplicateToGroups(const EntryPtr& entry,
                                  const Certificate& cert) {
  switch (config_.replication) {
    case ReplicationMode::kLeaderOneWay:
      if (IsGroupLeader()) SendLeaderOneWay(entry, cert);
      break;
    case ReplicationMode::kBijective:
      SendBijective(entry, cert);
      break;
    case ReplicationMode::kEncodedBijective:
      SendEncoded(entry, cert);
      break;
  }
}

void GroupNode::SendLeaderOneWay(const EntryPtr& entry,
                                 const Certificate& cert) {
  auto msg = std::make_shared<EntryTransferMsg>(entry, cert);
  for (int g = 0; g < num_groups(); ++g) {
    if (g == my_group()) continue;
    // GeoBFT's optimization, applied to all one-way protocols (paper
    // Section VI): send to f+1 nodes of each remote group so at least one
    // correct node receives and LAN-forwards the entry.
    int copies = group_f(g) + 1;
    for (int j = 0; j < copies && j < group_size(g); ++j)
      SendWan(NodeId{static_cast<uint16_t>(g), static_cast<uint16_t>(j)},
              msg);
  }
}

void GroupNode::SendBijective(const EntryPtr& entry, const Certificate& cert) {
  auto msg = std::make_shared<EntryTransferMsg>(entry, cert);
  int n1 = group_size(my_group());
  int f1 = group_f(my_group());
  for (int g = 0; g < num_groups(); ++g) {
    if (g == my_group()) continue;
    // f1 + f2 + 1 sender nodes each ship one full copy to a distinct
    // receiver (paper Section IV-A / Fig 5a).
    int senders = std::min(f1 + group_f(g) + 1, n1);
    if (id().index >= senders) continue;
    SendWan(NodeId{static_cast<uint16_t>(g),
                   static_cast<uint16_t>(id().index % group_size(g))},
            msg);
  }
}

std::shared_ptr<const EncodedEntry> GroupNode::GetEncoded(
    const EntryPtr& entry, const TransferPlan& plan, bool tampered) {
  if (tampered) {
    auto key = std::make_pair(entry->digest(), plan.n_total());
    auto it = ctx_->tampered_cache.find(key);
    if (it != ctx_->tampered_cache.end()) return it->second;
    auto encoded = EncodeBytesForPlan(TamperedBytes(entry->Encoded()), plan);
    MASSBFT_CHECK(encoded.ok());
    auto ptr = std::make_shared<const EncodedEntry>(std::move(*encoded));
    ctx_->tampered_cache[key] = ptr;
    return ptr;
  }
  auto key = std::make_pair(entry->digest(), plan.n_total());
  auto it = ctx_->encode_cache.find(key);
  if (it != ctx_->encode_cache.end()) return it->second;
  auto encoded = EncodeEntryForPlan(*entry, plan);
  MASSBFT_CHECK(encoded.ok());
  auto ptr = std::make_shared<const EncodedEntry>(std::move(*encoded));
  ctx_->encode_cache[key] = ptr;
  return ptr;
}

void GroupNode::SendEncoded(const EntryPtr& entry, const Certificate& cert) {
  bool tampered = fault_.byzantine && Now() >= fault_.byzantine_from;
  int n1 = group_size(my_group());
  for (int g = 0; g < num_groups(); ++g) {
    if (g == my_group()) continue;
    auto plan = TransferPlan::Create(n1, group_size(g));
    if (!plan.ok()) {
      MASSBFT_LOG(kError) << "no transfer plan for groups " << my_group()
                          << "->" << g << ": " << plan.status().ToString();
      continue;
    }
    // Charge the RS encode + Merkle build (every sender node performs it;
    // the byte result is shared via the deterministic-encoding cache).
    size_t coded_bytes = static_cast<size_t>(
        static_cast<double>(entry->ByteSize()) * plan->EntryCopiesSent());
    SimTime t0 = Now();
    cpu().ChargeEc(coded_bytes);
    SimTime done_at = cpu().ChargeHash(coded_bytes);
    coded_bytes_counter_->Add(coded_bytes);
    // One representative receiver group per entry keeps the Fig 11 encode
    // phase per-entry rather than per (entry, group) pair.
    if (IsGroupLeader() && g == (my_group() + 1) % num_groups())
      tel_->RecordPhaseSpan(obs::Phase::kEncode, trace_track_, t0, done_at,
                            entry->gid(), entry->seq());

    auto encoded = GetEncoded(entry, *plan, tampered);
    // Batch this node's chunks by receiver.
    std::map<int, std::vector<Chunk>> by_receiver;
    for (const TransferTuple& tuple : plan->TuplesForSender(id().index))
      by_receiver[tuple.receiver].push_back(encoded->chunks[tuple.chunk]);
    uint16_t gid = entry->gid();
    uint64_t seq = entry->seq();
    for (auto& [receiver, chunks] : by_receiver) {
      auto msg = std::make_shared<ChunkBatchMsg>(
          gid, seq, encoded->merkle_root, cert, std::move(chunks),
          entry->ByteSize());
      NodeId dst{static_cast<uint16_t>(g), static_cast<uint16_t>(receiver)};
      // Transmit once the encode CPU completes.
      sim()->ScheduleAt(done_at, [this, dst, msg] {
        if (!crashed()) SendWan(dst, msg);
      });
    }
  }
}

// -------------------------------------------------- Replication: receive

void GroupNode::OnEntryTransfer(NodeId from, const EntryTransferMsg& msg) {
  Key key{msg.entry()->gid(), msg.entry()->seq()};
  EntryRecord& rec = GetRecord(key);
  bool was_available = rec.payload_available;
  if (!was_available) {
    cpu().ChargeHash(msg.entry()->ByteSize());  // Recompute entry digest.
    if (!VerifyGroupCert(msg.cert(), msg.entry()->digest())) {
      MASSBFT_LOG(kWarn) << "entry transfer with bad certificate dropped";
      return;
    }
    StorePayload(key, msg.entry(), msg.cert());
  }
  // A WAN receiver forwards the entry to its whole group over LAN (paper
  // Section II-A "Global Replication").
  if (from.group != my_group() && !rec.lan_forwarded) {
    rec.lan_forwarded = true;
    BroadcastLan(std::make_shared<EntryTransferMsg>(msg.entry(), msg.cert()));
  }
}

void GroupNode::OnChunkBatch(NodeId from, const ChunkBatchMsg& msg) {
  Key key{msg.gid(), msg.seq()};
  EntryRecord& rec = GetRecord(key);
  bool from_wan = from.group != my_group();

  if (rec.rebuilder == nullptr && !rec.payload_available) {
    auto plan = TransferPlan::Create(group_size(msg.gid()),
                                     group_size(my_group()));
    if (!plan.ok()) return;
    EntryRebuilder::Config cfg;
    cfg.n_total = plan->n_total();
    cfg.n_data = plan->n_data();
    cfg.validate = [this](const Certificate& cert,
                          const Digest& entry_digest) {
      return VerifyGroupCert(cert, entry_digest);
    };
    cfg.telemetry = tel_;
    rec.rebuilder = std::make_unique<EntryRebuilder>(std::move(cfg));
    rec.first_chunk_at = Now();
  }

  // Feed chunks (Merkle proof verification cost per chunk).
  if (rec.rebuilder != nullptr && !rec.payload_available) {
    for (const Chunk& chunk : msg.chunks()) {
      cpu().ChargeHash(chunk.data.size() + 32 * chunk.proof.path.size());
      // Deterministic-decode cache: if some node already rebuilt and
      // validated this root, adopt the entry (CPU charged all the same).
      auto cached = ctx_->rebuild_cache.find(msg.merkle_root());
      if (cached != ctx_->rebuild_cache.end()) {
        cpu().ChargeEc(msg.entry_size());
        cpu().ChargeHash(msg.entry_size());
        if (IsGroupLeader())
          tel_->RecordPhaseSpan(obs::Phase::kRebuild, trace_track_,
                                rec.first_chunk_at, Now(), key.first,
                                key.second);
        StorePayload(key, cached->second, msg.cert());
        break;
      }
      auto result = rec.rebuilder->AddChunk(msg.merkle_root(), chunk.chunk_id,
                                            chunk.data, chunk.proof,
                                            msg.cert());
      if (result == EntryRebuilder::AddResult::kRebuilt) {
        cpu().ChargeEc(msg.entry_size());
        cpu().ChargeHash(msg.entry_size());
        ctx_->rebuild_cache[msg.merkle_root()] = rec.rebuilder->entry();
        if (IsGroupLeader())
          tel_->RecordPhaseSpan(obs::Phase::kRebuild, trace_track_,
                                rec.first_chunk_at, Now(), key.first,
                                key.second);
        StorePayload(key, rec.rebuilder->entry(), msg.cert());
        break;
      }
    }
  }

  // WAN receivers exchange their chunks within the group over LAN
  // (Section IV-B). Byzantine receivers substitute colluded tampered
  // chunks (Fig 15).
  if (from_wan && !rec.chunks_shared) {
    rec.chunks_shared = true;
    bool byz = fault_.byzantine && Now() >= fault_.byzantine_from;
    std::vector<Chunk> to_share = msg.chunks();
    Digest share_root = msg.merkle_root();
    if (byz) {
      // A Byzantine receiver substitutes the colluded tampered encoding's
      // chunks for its assigned chunk ids (Fig 15); the tampered chunks
      // carry the tampered Merkle root, so honest receivers bucket them
      // separately from the correct ones.
      auto plan = TransferPlan::Create(group_size(msg.gid()),
                                       group_size(my_group()));
      if (plan.ok()) {
        auto it = ctx_->tampered_cache.find(
            std::make_pair(msg.cert().digest, plan->n_total()));
        if (it != ctx_->tampered_cache.end()) {
          const auto& encoded = it->second;
          to_share.clear();
          for (const Chunk& c : msg.chunks())
            to_share.push_back(encoded->chunks[c.chunk_id]);
          share_root = encoded->merkle_root;
        }
      }
    }
    BroadcastLan(std::make_shared<ChunkBatchMsg>(
        msg.gid(), msg.seq(), share_root, msg.cert(), std::move(to_share),
        msg.entry_size()));
  }
}

void GroupNode::StorePayload(const Key& key, EntryPtr entry,
                             const Certificate& cert) {
  EntryRecord& rec = GetRecord(key);
  if (rec.payload_available) return;
  rec.entry = std::move(entry);
  rec.cert = cert;
  rec.has_cert = true;
  rec.payload_available = true;
  rec.rebuilder.reset();
  MarkPayloadAvailable(key);
}

void GroupNode::MarkPayloadAvailable(const Key& key) {
  EntryRecord& rec = GetRecord(key);
  if (!config_.use_global_raft && !rec.globally_committed) {
    rec.globally_committed = true;  // GeoBFT: receipt is final.
    rec.global_committed_at = Now();
    if (IsGroupLeader() && key.first == my_group()) {
      --outstanding_;
      TryFormBatch(false);
    }
  }
  if (config_.single_master && rec.entry != nullptr)
    digest_index_[rec.entry->digest()] = key;
  if (raft_ != nullptr) raft_->NotifyEntryAvailable(key.first, key.second);
  certifier_->RecheckPending();
  if (config_.single_master) MaybeTranslateGlobalCommits();
  PokeOrdering();
}

bool GroupNode::HasPayload(const Key& key) const {
  auto it = entries_.find(key);
  return it != entries_.end() && it->second.payload_available;
}

// ----------------------------------------------------------- Global Raft

void GroupNode::SetupRaft() {
  RaftCoordinator::Callbacks cb;
  cb.send_to_group = [this](int g, MessagePtr m) {
    SendWan(LeaderOf(g), std::move(m));
  };
  cb.certify = [this](const DecisionId& decision,
                      std::function<void(Certificate)> done) {
    pending_certs_[decision] = std::move(done);
    certifier_->Start(decision);
  };
  cb.verify_group_cert = [this](const Certificate& cert,
                                const Digest& digest) {
    return VerifyGroupCert(cert, digest);
  };
  cb.has_entry = [this](uint16_t gid, uint64_t seq) {
    if (config_.single_master && gid == 0) {
      auto it = global_seq_digest_.find(seq);
      if (it == global_seq_digest_.end()) return false;
      auto origin = digest_index_.find(it->second);
      return origin != digest_index_.end() && HasPayload(origin->second);
    }
    return HasPayload(Key{gid, seq});
  };
  cb.assign_ts = [this](uint16_t gid, uint64_t seq) {
    return AssignTs(gid, seq);
  };
  cb.on_committed = [this](uint16_t gid, uint64_t seq) {
    OnRaftCommitted(gid, seq);
  };
  cb.on_accept_observed = [this](uint16_t gid, uint64_t seq,
                                 uint16_t from_group, uint64_t ts) {
    OnAcceptObserved(gid, seq, from_group, ts);
  };
  cb.now = [this] { return Now(); };
  cb.telemetry = tel_;
  cb.trace_track = trace_track_;
  raft_ = std::make_unique<RaftCoordinator>(num_groups(), my_group(),
                                            std::move(cb));
}

uint64_t GroupNode::AssignTs(uint16_t gid, uint64_t seq) {
  (void)gid;
  (void)seq;
  return own_clock_;
}

void GroupNode::RelayToGroup(RelayEvent event, bool replay) {
  // While syncing after recovery, live timestamp events are buffered so
  // catch-up history applies first (the ordering engine's inference relies
  // on per-assigner non-decreasing delivery, paper Section V-D).
  if (syncing_ && !replay && event.type == RelayEvent::kTimestamp) {
    sync_buffer_.push_back(event);
    return;
  }
  ApplyRelayEvent(event);
  BroadcastLan(
      std::make_shared<GroupRelayMsg>(std::vector<RelayEvent>{event}));
}

void GroupNode::FinishSync() {
  if (!syncing_) return;
  syncing_ = false;
  std::vector<RelayEvent> buffered;
  buffered.swap(sync_buffer_);
  for (const RelayEvent& event : buffered) RelayToGroup(event);
  PokeOrdering();
}

void GroupNode::ApplyRelayEvent(const RelayEvent& event) {
  if (event.type == RelayEvent::kCommitted) {
    Key key{event.gid, event.seq};
    EntryRecord& rec = GetRecord(key);
    if (!rec.globally_committed) {
      rec.globally_committed = true;
      rec.global_committed_at = Now();
      unexecuted_committed_.insert(key);
      if (event.gid == my_group()) {
        own_clock_ = std::max(own_clock_, event.seq + 1);
        // Own-entry pipeline slot freed. This is the single decrement
        // point — the raft path, Steward translation and catch-up replay
        // all funnel through this state transition exactly once.
        if (IsGroupLeader()) {
          --outstanding_;
          TryFormBatch(false);
        }
      }
      if (config_.ordering == OrderingMode::kFifo)
        fifo_queue_.push_back(key);
      // Keep the raft coordinator's contiguous-delivery cursor in sync
      // when commits arrive via catch-up replay instead of raft messages.
      if (raft_ != nullptr && !config_.single_master)
        raft_->NoteCommitted(event.gid, event.seq);
    }
    PokeOrdering();
  } else if (event.type == RelayEvent::kTimestamp) {
    auto& seen = max_ts_seen_[event.assigner];
    seen = std::max(seen, event.ts);
    recorded_vts_[Key{event.gid, event.seq}][event.assigner] = event.ts;
    if (vts_ordering_ != nullptr)
      vts_ordering_->OnTimestamp(event.assigner, event.gid, event.seq,
                                 event.ts);
    PokeOrdering();
  }
}

void GroupNode::OnRaftCommitted(uint16_t gid, uint64_t seq) {
  // Leader-side commit delivery, in per-instance order.
  if (config_.single_master && gid == 0) {
    // Translate global sequences to origin entries strictly in order (the
    // payload for a committed global sequence may still be in flight).
    pending_global_commits_.push_back(seq);
    MaybeTranslateGlobalCommits();
    return;
  }
  Key key{gid, seq};

  EntryRecord& rec = GetRecord(key);
  if (rec.local_committed_at >= 0 && key.first == my_group() &&
      !rec.globally_committed)
    tel_->RecordPhaseSpan(obs::Phase::kGlobalReplication, trace_track_,
                          rec.local_committed_at, Now(), key.first,
                          key.second);
  RelayToGroup(RelayEvent{RelayEvent::kCommitted, key.first, key.second, 0, 0});

  // Crash takeover: stamp the dead groups' frozen clocks onto this entry
  // (only once the freeze round agreed on the value; earlier commits are
  // covered by EmitTakeoverTimestamps via unexecuted_committed_).
  for (uint16_t dead : dead_groups_) {
    if (raft_ != nullptr && raft_->HasTakenOver(dead) &&
        frozen_clock_.contains(dead)) {
      uint64_t frozen = frozen_clock_[dead];
      std::vector<TimestampElement> elements{
          TimestampElement{dead, key.first, key.second, frozen}};
      auto msg = std::make_shared<TimestampAssignMsg>(elements);
      for (int g = 0; g < num_groups(); ++g)
        if (g != my_group() && !dead_groups_.contains(static_cast<uint16_t>(g)))
          SendWan(LeaderOf(g), msg);
      RelayToGroup(RelayEvent{RelayEvent::kTimestamp, key.first, key.second,
                              dead, frozen});
    }
  }
}

void GroupNode::OnAcceptObserved(uint16_t gid, uint64_t seq,
                                 uint16_t from_group, uint64_t ts) {
  if (config_.ordering == OrderingMode::kAsyncVts)
    RelayToGroup(RelayEvent{RelayEvent::kTimestamp, gid, seq, from_group, ts});
}

// ---------------------------------------------------------------- Steward

void GroupNode::ForwardToGlobalMaster(const EntryPtr& entry,
                                      const Certificate& cert) {
  SendWan(LeaderOf(0), std::make_shared<LeaderForwardMsg>(entry, cert));
}

void GroupNode::OnLeaderForward(const LeaderForwardMsg& msg) {
  if (!IsGlobalMaster() || !IsGroupLeader()) return;
  Key key{msg.entry()->gid(), msg.entry()->seq()};
  if (HasPayload(key)) return;  // Duplicate.
  cpu().ChargeHash(msg.entry()->ByteSize());
  if (!VerifyGroupCert(msg.cert(), msg.entry()->digest())) return;
  StorePayload(key, msg.entry(), msg.cert());
  // Distribute the payload to every other group (one-way from the master)
  // and within the master's own group.
  SendLeaderOneWay(msg.entry(), msg.cert());
  BroadcastLan(std::make_shared<EntryTransferMsg>(msg.entry(), msg.cert()));

  uint64_t gseq = next_global_seq_++;
  global_seq_digest_[gseq] = msg.entry()->digest();
  digest_index_[msg.entry()->digest()] = key;
  if (raft_ != nullptr)
    raft_->Propose(0, gseq, msg.entry()->digest(), msg.cert());
}

void GroupNode::MaybeTranslateGlobalCommits() {
  while (!pending_global_commits_.empty()) {
    uint64_t gseq = pending_global_commits_.front();
    auto digest_it = global_seq_digest_.find(gseq);
    if (digest_it == global_seq_digest_.end()) break;
    auto origin_it = digest_index_.find(digest_it->second);
    if (origin_it == digest_index_.end()) break;
    pending_global_commits_.pop_front();
    Key key = origin_it->second;
    RelayToGroup(
        RelayEvent{RelayEvent::kCommitted, key.first, key.second, 0, 0});
  }
}

// ------------------------------------------------------------------- ISS

void GroupNode::OnEpochTimer(uint64_t epoch) {
  if (epoch != timer_epoch_) return;
  // Seal the finished epoch and announce its entry range.
  uint64_t count = next_local_seq_ - epoch_first_seq_;
  auto marker = std::make_shared<EpochMarkerMsg>(
      static_cast<uint16_t>(my_group()), current_epoch_, count);
  for (int g = 0; g < num_groups(); ++g)
    if (g != my_group()) SendWan(LeaderOf(g), marker);
  BroadcastLan(marker);
  if (epoch_ordering_ != nullptr) {
    epoch_ordering_->OnEpochSealed(static_cast<uint16_t>(my_group()),
                                   current_epoch_, epoch_first_seq_, count);
    PokeOrdering();
  }
  ++current_epoch_;
  epoch_first_seq_ = next_local_seq_;
  After(config_.epoch_length, [this, epoch] { OnEpochTimer(epoch); });
}

void GroupNode::OnEpochMarker(NodeId from, const EpochMarkerMsg& msg) {
  if (from.group != my_group() && IsGroupLeader())
    BroadcastLan(std::make_shared<EpochMarkerMsg>(msg.gid(), msg.epoch(),
                                                  msg.count()));
  if (epoch_ordering_ != nullptr) {
    uint64_t first = epoch_next_first_[msg.gid()];
    epoch_ordering_->OnEpochSealed(msg.gid(), msg.epoch(), first, msg.count());
    epoch_next_first_[msg.gid()] = first + msg.count();
    PokeOrdering();
  }
}

// -------------------------------------------------- MassBFT fault handling

void GroupNode::OnHeartbeatTimer(uint64_t epoch) {
  if (epoch != timer_epoch_) return;
  auto hb = std::make_shared<GroupHeartbeatMsg>(
      static_cast<uint16_t>(my_group()), next_local_seq_);
  for (int g = 0; g < num_groups(); ++g)
    if (g != my_group()) SendWan(LeaderOf(g), hb);
  CheckGroupLiveness();
  After(config_.heartbeat_interval,
        [this, epoch] { OnHeartbeatTimer(epoch); });
}

void GroupNode::CheckGroupLiveness() {
  for (int g = 0; g < num_groups(); ++g) {
    uint16_t gid = static_cast<uint16_t>(g);
    if (g == my_group() || dead_groups_.contains(gid)) continue;
    if (Now() - last_heartbeat_[gid] > config_.group_crash_timeout)
      StartTakeover(gid);
  }
}

void GroupNode::StartTakeover(uint16_t dead_gid) {
  dead_groups_.insert(dead_gid);
  // The lowest-id alive group's leader represents the crashed group's Raft
  // instance and freezes its clock (paper Section V-C, "Crashed Groups").
  int takeover = -1;
  for (int g = 0; g < num_groups(); ++g) {
    if (g == dead_gid || dead_groups_.contains(static_cast<uint16_t>(g)))
      continue;
    takeover = g;
    break;
  }
  if (takeover != my_group() || raft_ == nullptr) return;
  raft_->TakeOverInstance(dead_gid);

  // Freeze agreement round: a stamp the dying group issued may have
  // reached only some groups; assigning a lower frozen value would break
  // per-assigner monotonicity (and with it, deterministic ordering). Ask
  // every alive leader for its highest observed stamp first.
  FreezeRound& round = freeze_rounds_[dead_gid];
  round.expected.clear();
  for (int g = 0; g < num_groups(); ++g) {
    uint16_t gid = static_cast<uint16_t>(g);
    if (g == my_group() || dead_groups_.contains(gid)) continue;
    round.expected.insert(gid);
    SendWan(LeaderOf(g), std::make_shared<FreezeMsg>(MessageType::kFreezeQuery,
                                                     dead_gid, 0));
  }
  round.max_seen = max_ts_seen_[dead_gid];
  if (round.expected.empty()) FinishFreezeRound(dead_gid);
}

void GroupNode::FinishFreezeRound(uint16_t dead_gid) {
  FreezeRound& round = freeze_rounds_[dead_gid];
  frozen_clock_[dead_gid] =
      std::max(round.max_seen, max_ts_seen_[dead_gid]);
  max_ts_seen_[dead_gid] = frozen_clock_[dead_gid];
  EmitTakeoverTimestamps(dead_gid);
}

void GroupNode::EmitTakeoverTimestamps(uint16_t dead_gid) {
  uint64_t frozen = frozen_clock_[dead_gid];
  std::vector<TimestampElement> elements;
  for (const Key& key : unexecuted_committed_) {
    elements.push_back(
        TimestampElement{dead_gid, key.first, key.second, frozen});
  }
  if (elements.empty()) return;
  auto msg = std::make_shared<TimestampAssignMsg>(elements);
  for (int g = 0; g < num_groups(); ++g)
    if (g != my_group() && !dead_groups_.contains(static_cast<uint16_t>(g)))
      SendWan(LeaderOf(g), msg);
  for (const TimestampElement& e : elements)
    RelayToGroup(RelayEvent{RelayEvent::kTimestamp, e.target_gid,
                            e.target_seq, e.assigner_gid, e.ts});
}

void GroupNode::OnTimestampAssign(const TimestampAssignMsg& msg) {
  for (const TimestampElement& e : msg.elements())
    RelayToGroup(RelayEvent{RelayEvent::kTimestamp, e.target_gid,
                            e.target_seq, e.assigner_gid, e.ts},
                 msg.replay());
}

// -------------------------------------------------- Ordering & execution

void GroupNode::SetupOrdering() {
  auto can_execute = [this](uint16_t gid, uint64_t seq) {
    return CanExecute(gid, seq);
  };
  auto execute = [this](uint16_t gid, uint64_t seq) {
    ExecuteEntry(gid, seq);
  };
  switch (config_.ordering) {
    case OrderingMode::kAsyncVts:
      vts_ordering_ = std::make_unique<VtsOrderingEngine>(
          num_groups(), VtsOrderingEngine::Callbacks{can_execute, execute});
      // Leader-only: the engine runs on every node, but cluster-wide
      // counters should count each decision once per group.
      if (IsGroupLeader())
        vts_ordering_->set_telemetry(tel_, trace_track_,
                                     [this] { return Now(); });
      break;
    case OrderingMode::kRoundSync:
      round_ordering_ = std::make_unique<RoundOrderingEngine>(
          num_groups(), RoundOrderingEngine::Callbacks{can_execute, execute});
      break;
    case OrderingMode::kEpoch:
      epoch_ordering_ = std::make_unique<EpochOrderingEngine>(
          num_groups(), EpochOrderingEngine::Callbacks{can_execute, execute});
      break;
    case OrderingMode::kFifo:
      break;  // fifo_queue_ driven in PokeOrdering.
  }
}

bool GroupNode::CanExecute(uint16_t gid, uint64_t seq) const {
  auto it = entries_.find(Key{gid, seq});
  if (it == entries_.end()) return false;
  const EntryRecord& rec = it->second;
  return rec.payload_available && rec.globally_committed && !rec.executed;
}

void GroupNode::ExecuteEntry(uint16_t gid, uint64_t seq) {
  Key key{gid, seq};
  EntryRecord& rec = GetRecord(key);
  MASSBFT_CHECK(rec.payload_available && !rec.executed);
  rec.executed = true;
  unexecuted_committed_.erase(key);
  executed_next_[gid] = std::max(executed_next_[gid], seq + 1);
  execution_log_.emplace_back(gid, seq);
  if (!executed_digests_.insert(rec.entry->digest()).second) return;

  const EntryPtr& entry = rec.entry;
  int n = entry->num_txns();
  executed_txns_ += n;
  SimTime done_at = cpu().ChargeExec(n);
  if (n == 0) return;

  if (!IsExecutor()) return;  // CPU charged; state tracked by leaders.

  AriaBatchResult result = aria_->ExecuteBatch(entry->txns());
  bool owns_metrics =
      IsGroupLeader() && static_cast<int>(gid) == my_group() && !crashed();
  if (owns_metrics) {
    txns_exec_counter_->Add(n);
    conflict_abort_counter_->Add(result.conflict_aborts.size());
    if (result.logic_aborts > 0) {
      // Business aborts complete deterministically and are never retried
      // (Aria): they are the run's permanently-aborted transactions.
      logic_abort_counter_->Add(result.logic_aborts);
      if (ctx_->metrics != nullptr)
        ctx_->metrics->RecordAbort(result.logic_aborts);
    }
    if (rec.global_committed_at >= 0)
      tel_->RecordPhaseSpan(obs::Phase::kExecution, trace_track_,
                            rec.global_committed_at, done_at, gid, seq);

    // Conflict-aborted transactions re-enter the next batch
    // deterministically (Aria); committed ones notify their clients.
    std::set<size_t> aborted(result.conflict_aborts.begin(),
                             result.conflict_aborts.end());
    for (size_t i = 0; i < entry->txns().size(); ++i) {
      const Transaction& txn = entry->txns()[i];
      if (aborted.contains(i)) {
        pending_txns_.push_back(txn);
      } else if (ctx_->on_txn_committed) {
        ctx_->on_txn_committed(txn, done_at);
      }
    }
    if (!aborted.empty()) TryFormBatch(false);
  }
}

void GroupNode::PokeOrdering() {
  if (vts_ordering_ != nullptr) vts_ordering_->Poke();
  if (round_ordering_ != nullptr) round_ordering_->Poke();
  if (epoch_ordering_ != nullptr) epoch_ordering_->Poke();
  if (config_.ordering == OrderingMode::kFifo) {
    while (!fifo_queue_.empty()) {
      Key key = fifo_queue_.front();
      if (!CanExecute(key.first, key.second)) {
        // Skip already-executed duplicates; block on genuinely pending.
        auto it = entries_.find(key);
        if (it != entries_.end() && it->second.executed) {
          fifo_queue_.pop_front();
          continue;
        }
        break;
      }
      fifo_queue_.pop_front();
      ExecuteEntry(key.first, key.second);
    }
  }
}

// --------------------------------------------------------------- Dispatch

void GroupNode::HandleMessage(NodeId from, MessagePtr message) {
  if (crashed()) return;
  switch (static_cast<MessageType>(message->type())) {
    case MessageType::kPrePrepare:
    case MessageType::kPrepare:
    case MessageType::kCommit:
    case MessageType::kViewChange:
    case MessageType::kNewView:
      pbft_->OnMessage(from, message);
      break;
    case MessageType::kCertifyRequest:
    case MessageType::kCertifyVote:
      certifier_->OnMessage(from, message);
      break;
    case MessageType::kEntryTransfer:
      OnEntryTransfer(from, static_cast<const EntryTransferMsg&>(*message));
      break;
    case MessageType::kChunkBatch:
      OnChunkBatch(from, static_cast<const ChunkBatchMsg&>(*message));
      break;
    case MessageType::kRaftPropose: {
      const auto& propose = static_cast<const RaftProposeMsg&>(*message);
      if (config_.single_master && propose.gid() == 0) {
        global_seq_digest_[propose.seq()] = propose.digest();
      }
      if (raft_ != nullptr) raft_->OnProposeControl(propose);
      break;
    }
    case MessageType::kRaftAccept:
      if (raft_ != nullptr)
        raft_->OnAccept(static_cast<const RaftAcceptMsg&>(*message));
      break;
    case MessageType::kRaftCommit:
      if (raft_ != nullptr)
        raft_->OnCommit(static_cast<const RaftCommitMsg&>(*message));
      break;
    case MessageType::kTimestampAssign:
      OnTimestampAssign(static_cast<const TimestampAssignMsg&>(*message));
      break;
    case MessageType::kGroupHeartbeat: {
      const auto& hb = static_cast<const GroupHeartbeatMsg&>(*message);
      last_heartbeat_[hb.gid()] = Now();
      if (dead_groups_.contains(hb.gid())) OnGroupRejoined(hb.gid());
      break;
    }
    case MessageType::kGroupRelay: {
      const auto& relay = static_cast<const GroupRelayMsg&>(*message);
      if (from.group != my_group() && IsGroupLeader()) {
        // Catch-up replay from a peer group: forward to our own group.
        for (const RelayEvent& event : relay.events())
          RelayToGroup(event, relay.replay());
      } else {
        for (const RelayEvent& event : relay.events()) ApplyRelayEvent(event);
      }
      break;
    }
    case MessageType::kEpochMarker:
      OnEpochMarker(from, static_cast<const EpochMarkerMsg&>(*message));
      break;
    case MessageType::kLeaderForward:
      OnLeaderForward(static_cast<const LeaderForwardMsg&>(*message));
      break;
    case MessageType::kCatchUpRequest:
      OnCatchUpRequest(from, static_cast<const CatchUpRequestMsg&>(*message));
      break;
    case MessageType::kFreezeQuery: {
      const auto& query = static_cast<const FreezeMsg&>(*message);
      SendWan(from, std::make_shared<FreezeMsg>(
                        MessageType::kFreezeReport, query.dead_gid(),
                        max_ts_seen_[query.dead_gid()]));
      break;
    }
    case MessageType::kCatchUpDone:
      FinishSync();
      break;
    case MessageType::kFreezeReport: {
      const auto& report = static_cast<const FreezeMsg&>(*message);
      auto it = freeze_rounds_.find(report.dead_gid());
      if (it == freeze_rounds_.end()) break;
      FreezeRound& round = it->second;
      round.max_seen = std::max(round.max_seen, report.max_seen());
      round.expected.erase(from.group);
      if (round.expected.empty()) FinishFreezeRound(report.dead_gid());
      break;
    }
    default:
      MASSBFT_LOG(kWarn) << "unhandled message type " << message->type();
  }
}

void GroupNode::Crash() {
  ++timer_epoch_;  // Kill live timer chains.
  Actor::Crash();
}

void GroupNode::Recover() {
  Actor::Recover();
  ++timer_epoch_;
  rejoined_ = true;
  Start();  // Restart batch/heartbeat/epoch timer chains.
  if (!IsGroupLeader()) return;
  // Buffer live timestamps until the catch-up history is applied (with a
  // failsafe flush in case the helper never responds).
  syncing_ = true;
  After(4 * kSecond, [this] { FinishSync(); });
  // Ask every peer group's leader to replay what we missed; replies are
  // deduplicated by the entry store. (Paper Section V-C: the recovered
  // group resumes serving requests; the takeover group hands the Raft
  // instance back once our heartbeats reappear.)
  std::vector<std::pair<uint16_t, uint64_t>> frontier;
  for (int g = 0; g < num_groups(); ++g) {
    uint16_t gid = static_cast<uint16_t>(g);
    auto it = executed_next_.find(gid);
    frontier.push_back({gid, it != executed_next_.end() ? it->second : 0});
  }
  auto request = std::make_shared<CatchUpRequestMsg>(std::move(frontier));
  // One helper suffices (and keeps the replay off every uplink); pick the
  // lowest-id other group, which is also the takeover group by convention.
  for (int g = 0; g < num_groups(); ++g) {
    if (g == my_group()) continue;
    SendWan(LeaderOf(g), request);
    break;
  }

  // Fill holes in our own instance: re-propose entries that were in
  // flight when we crashed (receivers resend their cached accepts; any
  // entry whose chunk transfer died with us is re-shipped one-way).
  if (raft_ != nullptr) {
    for (const auto& [key, rec] : entries_) {
      if (key.first != my_group()) continue;
      if (!rec.payload_available || !rec.has_cert || rec.globally_committed)
        continue;
      SendLeaderOneWay(rec.entry, rec.cert);
      raft_->Propose(key.first, key.second, rec.entry->digest(), rec.cert);
    }
  }
}

void GroupNode::OnCatchUpRequest(NodeId from, const CatchUpRequestMsg& msg) {
  if (!IsGroupLeader()) return;
  // Requested frontiers, defaulting to 0.
  std::map<uint16_t, uint64_t> frontier;
  for (const auto& [gid, next] : msg.executed_next())
    frontier[gid] = std::max(frontier[gid], next);

  std::vector<RelayEvent> commits;
  std::vector<TimestampElement> elements;
  for (const auto& [key, rec] : entries_) {
    if (key.second < frontier[key.first]) continue;  // Already executed.
    // Ship every payload we hold past the frontier — entries whose chunks
    // were dropped while the requester was down may not be globally
    // committed yet at snapshot time.
    if (rec.payload_available && rec.has_cert)
      SendWan(from, std::make_shared<EntryTransferMsg>(rec.entry, rec.cert));
    if (!rec.globally_committed) continue;
    commits.push_back(
        RelayEvent{RelayEvent::kCommitted, key.first, key.second, 0, 0});
    auto vts = recorded_vts_.find(key);
    if (vts != recorded_vts_.end())
      for (const auto& [assigner, ts] : vts->second)
        elements.push_back(
            TimestampElement{assigner, key.first, key.second, ts});
  }
  // Replay must preserve per-assigner non-decreasing stamp order (the
  // invariant Algorithm 2's inference relies on); recorded_vts_ iterates
  // by entry, so sort by stamp value before shipping.
  std::stable_sort(elements.begin(), elements.end(),
                   [](const TimestampElement& a, const TimestampElement& b) {
                     return a.ts < b.ts;
                   });
  if (!commits.empty())
    SendWan(from, std::make_shared<GroupRelayMsg>(std::move(commits),
                                                  /*replay=*/true));
  if (!elements.empty())
    SendWan(from, std::make_shared<TimestampAssignMsg>(std::move(elements),
                                                       /*replay=*/true));
  SendWan(from, std::make_shared<CatchUpDoneMsg>());
}

void GroupNode::OnGroupRejoined(uint16_t gid) {
  dead_groups_.erase(gid);
  if (raft_ != nullptr && raft_->HasTakenOver(gid))
    raft_->ReleaseInstance(gid);  // Hand the instance back (Section V-C).
}

GroupNode::RecordView GroupNode::InspectRecord(uint16_t gid,
                                               uint64_t seq) const {
  RecordView view;
  auto it = entries_.find(Key{gid, seq});
  if (it == entries_.end()) return view;
  view.exists = true;
  view.payload_available = it->second.payload_available;
  view.globally_committed = it->second.globally_committed;
  view.executed = it->second.executed;
  return view;
}

}  // namespace massbft
