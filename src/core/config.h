#ifndef MASSBFT_CORE_CONFIG_H_
#define MASSBFT_CORE_CONFIG_H_

#include <cstdint>
#include <string>

#include "sim/actor.h"
#include "sim/time.h"

namespace massbft {

/// Evaluated systems (paper Table II) plus the Fig 12 ablations.
enum class ProtocolKind {
  kMassBft,   // EBR + Raft + async VTS ordering ("EBR+A").
  kBaseline,  // One-way leader + Raft + round ordering (Section II-A).
  kGeoBft,    // One-way leader broadcast, no global consensus, rounds.
  kSteward,   // Single-master: all entries funnel through group 0.
  kIss,       // Baseline + epoch-bucketed ordering.
  kBr,        // Ablation: bijective full-copy replication + rounds.
  kEbr,       // Ablation: encoded bijective replication + rounds.
};

const char* ProtocolKindName(ProtocolKind kind);

/// How entry payloads cross the WAN.
enum class ReplicationMode {
  kLeaderOneWay,       // Leader sends f+1 full copies per remote group.
  kBijective,          // f1+f2+1 nodes each send one full copy (Fig 5a).
  kEncodedBijective,   // Erasure-coded chunks per Algorithm 1 (Fig 5b).
};

/// How committed entries are globally ordered for execution.
enum class OrderingMode {
  kRoundSync,  // One entry per group per round, ordered by gid.
  kAsyncVts,   // MassBFT Algorithm 2.
  kFifo,       // Single global log (Steward).
  kEpoch,      // ISS epoch buckets.
};

/// Full protocol parameterization. The factory functions mirror the paper's
/// competitor configurations (Section VI, "Competitors").
struct ProtocolConfig {
  ProtocolKind kind = ProtocolKind::kMassBft;
  ReplicationMode replication = ReplicationMode::kEncodedBijective;
  OrderingMode ordering = OrderingMode::kAsyncVts;
  /// Global Raft accept/commit phases (off for GeoBFT).
  bool use_global_raft = true;
  /// All entries proposed through group 0's instance (Steward).
  bool single_master = false;

  /// Batching (paper: fixed 20 ms timeout for all competitors).
  SimTime batch_timeout = 20 * kMillisecond;
  int max_batch_size = 500;
  /// Outstanding (proposed, not globally committed) entries per group.
  int pipeline_depth = 32;
  /// Propose empty entries on timeout (required for round/epoch liveness).
  bool propose_empty = false;

  /// ISS epoch length (paper: 0.1 s nationwide, 0.5 s worldwide).
  SimTime epoch_length = 100 * kMillisecond;

  /// MassBFT fault detection.
  SimTime heartbeat_interval = 150 * kMillisecond;
  SimTime group_crash_timeout = 2 * kSecond;

  CpuModel cpu;

  static ProtocolConfig MassBft();
  static ProtocolConfig Baseline();
  static ProtocolConfig GeoBft();
  static ProtocolConfig Steward();
  static ProtocolConfig Iss();
  static ProtocolConfig Br();   // Bijective replication ablation.
  static ProtocolConfig Ebr();  // Encoded bijective ablation (no async).
  static ProtocolConfig ForKind(ProtocolKind kind);
};

}  // namespace massbft

#endif  // MASSBFT_CORE_CONFIG_H_
