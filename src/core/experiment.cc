#include "core/experiment.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "obs/json_writer.h"

namespace massbft {

std::string ExperimentResult::Summary() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "%.1f ktps, latency mean %.1f ms (p50 %.1f, p99 %.1f), "
                "batch %.0f, conflict aborts %llu, aborted txns %llu",
                throughput_tps / 1000.0, mean_latency_ms, p50_latency_ms,
                p99_latency_ms, avg_batch_size,
                static_cast<unsigned long long>(conflict_aborts),
                static_cast<unsigned long long>(aborted_txns));
  return buf;
}

std::string ExperimentResult::ToJson() const {
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.BeginObject();
  w.Member("mode", mode);
  w.Member("crypto_mode", crypto_mode);
  w.Member("verify_batch_ratio", verify_batch_ratio);
  w.Member("throughput_tps", throughput_tps);
  w.Member("mean_latency_ms", mean_latency_ms);
  w.Member("p50_latency_ms", p50_latency_ms);
  w.Member("p99_latency_ms", p99_latency_ms);
  w.Member("committed_txns", committed_txns);
  w.Member("aborted_txns", aborted_txns);
  w.Member("conflict_aborts", conflict_aborts);
  w.Member("avg_batch_size", avg_batch_size);
  w.Member("total_wan_bytes", total_wan_bytes);
  w.Member("total_lan_bytes", total_lan_bytes);
  w.Member("entries_proposed", entries_proposed);
  w.Member("wan_bytes_per_entry", wan_bytes_per_entry);
  w.Member("sim_events", sim_events);
  w.Member("wall_ms", wall_ms);
  w.Member("events_per_sec", events_per_sec);
  w.Member("sim_time_ratio", sim_time_ratio);
  w.Member("net_send_errors", net_send_errors);
  w.Member("net_decode_errors", net_decode_errors);
  w.Member("net_reconnects", net_reconnects);
  w.Member("net_dropped_backpressure", net_dropped_backpressure);
  w.Member("net_send_syscalls", net_send_syscalls);
  w.Member("net_recv_syscalls", net_recv_syscalls);
  w.Member("faults_injected", faults_injected);
  w.Member("nodes_killed", nodes_killed);
  w.Key("phases");
  w.BeginObject();
  w.Member("batching_ms", phases.batching_ms);
  w.Member("local_ms", phases.local_ms);
  w.Member("encode_ms", phases.encode_ms);
  w.Member("global_ms", phases.global_ms);
  w.Member("rebuild_ms", phases.rebuild_ms);
  w.Member("exec_ms", phases.exec_ms);
  w.Member("entries", phases.entries);
  w.Member("rebuilds", phases.rebuilds);
  w.Member("txns", phases.txns);
  w.Member("conflict_aborts", phases.conflict_aborts);
  w.Member("batch_size_sum", phases.batch_size_sum);
  w.EndObject();
  w.Key("timeline");
  w.BeginArray();
  for (const MetricsCollector::TimelinePoint& point : timeline) {
    w.BeginObject();
    w.Member("time_s", point.time_s);
    w.Member("tps", point.tps);
    w.Member("mean_latency_ms", point.mean_latency_ms);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return out.str();
}

Experiment::Experiment(ExperimentConfig config) : config_(std::move(config)) {}

Experiment::~Experiment() = default;

GroupNode* Experiment::node(NodeId id) {
  for (auto& n : nodes_)
    if (n->id() == id) return n.get();
  return nullptr;
}

Status Experiment::Setup() {
  if (setup_done_) return Status::FailedPrecondition("Setup called twice");
  setup_done_ = true;

  sim_ = std::make_unique<Simulator>();
  MASSBFT_ASSIGN_OR_RETURN(Topology topo,
                           Topology::Create(config_.topology));
  topology_ = std::make_unique<Topology>(std::move(topo));
  registry_ = std::make_unique<KeyRegistry>();
  workload_ = MakeWorkload(config_.workload, config_.workload_scale);
  if (workload_ == nullptr)
    return Status::InvalidArgument("unknown workload kind");
  metrics_ = std::make_unique<MetricsCollector>(config_.warmup,
                                                config_.duration);

  ctx_ = std::make_unique<ClusterContext>();
  ctx_->registry = registry_.get();
  ctx_->topology = topology_.get();
  ctx_->workload = workload_.get();
  ctx_->metrics = metrics_.get();
  ctx_->on_txn_committed = [this](const Transaction& txn, SimTime t) {
    OnTxnCommitted(txn, t);
  };
  ctx_->telemetry->set_tracing(config_.enable_tracing);
  for (NodeId id : topology_->AllNodes()) {
    char name[32];
    std::snprintf(name, sizeof(name), "g%u/n%u",
                  static_cast<unsigned>(id.group),
                  static_cast<unsigned>(id.index));
    ctx_->telemetry->trace().RegisterTrack(obs::Telemetry::NodeTrack(
                                               id.Packed()),
                                           name);
  }
  for (int g = 0; g < topology_->num_groups(); ++g) {
    char name[32];
    std::snprintf(name, sizeof(name), "clients/g%d", g);
    ctx_->telemetry->trace().RegisterTrack(obs::Telemetry::ClientTrack(g),
                                           name);
  }

  network_ = std::make_unique<Network>(
      sim_.get(), topology_.get(),
      [this](NodeId dst, NodeId src, MessagePtr m) {
        GroupNode* target = node(dst);
        if (target != nullptr) target->HandleMessage(src, std::move(m));
      });
  network_->set_telemetry(ctx_->telemetry);

  // Build nodes; the highest-indexed nodes of each group are the Byzantine
  // ones when fault injection is configured (leaders stay correct, as in
  // the paper's Fig 15 setup where faulty nodes follow local consensus).
  for (NodeId id : topology_->AllNodes()) {
    GroupNode::FaultConfig fault;
    if (config_.faults.byzantine_per_group > 0 &&
        id.index >= topology_->group_size(id.group) -
                        config_.faults.byzantine_per_group) {
      fault.byzantine = true;
      fault.byzantine_from = config_.faults.byzantine_from;
    }
    auto n = std::make_unique<GroupNode>(sim_.get(), network_.get(), id,
                                         config_.protocol, ctx_.get(), fault);
    if (config_.execute_on_all_nodes) n->set_always_execute(true);
    nodes_.push_back(std::move(n));
  }
  for (auto& n : nodes_) n->Start();

  // Closed-loop clients, staggered over the first batch interval.
  Rng seed_rng(config_.seed);
  for (int g = 0; g < topology_->num_groups(); ++g) {
    for (int c = 0; c < config_.clients_per_group; ++c) {
      Client client;
      client.id = static_cast<uint32_t>((g << 20) | c);
      client.group = g;
      client.rng = seed_rng.Fork();
      clients_.push_back(std::move(client));
    }
  }
  for (size_t i = 0; i < clients_.size(); ++i) {
    SimTime stagger = static_cast<SimTime>(
        seed_rng.NextBelow(static_cast<uint64_t>(config_.protocol
                                                     .batch_timeout)));
    sim_->Schedule(stagger, [this, i] { SubmitNext(i); });
  }

  // Fault schedule.
  if (config_.faults.crash_group >= 0) {
    int g = config_.faults.crash_group;
    sim_->Schedule(config_.faults.crash_at, [this, g] {
      for (auto& n : nodes_)
        if (n->id().group == g) n->Crash();
    });
    if (config_.faults.recover_at > config_.faults.crash_at) {
      sim_->Schedule(config_.faults.recover_at, [this, g] {
        for (auto& n : nodes_)
          if (n->id().group == g) n->Recover();
        // The region's clients reconnect and resume their closed loops.
        for (size_t i = 0; i < clients_.size(); ++i)
          if (clients_[i].group == g) SubmitNext(i);
      });
    }
  }
  return Status::OK();
}

void Experiment::SubmitNext(size_t client_index) {
  Client& client = clients_[client_index];
  GroupNode* leader = node(NodeId{static_cast<uint16_t>(client.group), 0});
  if (leader == nullptr || leader->crashed()) return;  // Group down.

  SimTime submit_time = sim_->Now();
  if (ctx_->telemetry->tracing()) {
    ctx_->telemetry->trace().RecordInstant(
        obs::Telemetry::ClientTrack(client.group), "client", "submit",
        submit_time,
        obs::TraceArgs{{{"client", static_cast<double>(client.id)}}});
  }
  // Client -> leader half round trip. The transaction is materialized at
  // delivery: the capture stays a 24-byte POD (inline in the event heap),
  // and since each closed-loop client draws from its own forked rng, the
  // payload bytes are identical either way.
  sim_->Schedule(config_.client_rtt / 2, [this, client_index, submit_time] {
    Client& c = clients_[client_index];
    GroupNode* l = node(NodeId{static_cast<uint16_t>(c.group), 0});
    if (l == nullptr || l->crashed()) return;
    Transaction txn;
    txn.client = c.id;
    txn.id = (static_cast<uint64_t>(c.id) << 32) | c.next_txn++;
    txn.submit_time = submit_time;
    txn.payload = workload_->NextPayload(c.rng);
    l->SubmitClientTxn(txn);
  });
}

void Experiment::OnTxnCommitted(const Transaction& txn, SimTime commit_time) {
  metrics_->RecordCommit(txn.submit_time, commit_time + config_.client_rtt / 2);
  size_t client_index = 0;
  uint32_t group = txn.client >> 20;
  uint32_t index = txn.client & 0xFFFFF;
  client_index = static_cast<size_t>(group) *
                     static_cast<size_t>(config_.clients_per_group) +
                 index;
  if (client_index >= clients_.size()) return;
  sim_->ScheduleAt(commit_time + config_.client_rtt, [this, client_index] {
    SubmitNext(client_index);
  });
}

ExperimentResult Experiment::Run() {
  MASSBFT_CHECK(setup_done_);
  uint64_t events_before = sim_->events_processed();
  // wall_ms measures the host, not the simulation; it is one of the three
  // documented nondeterministic result fields (DESIGN.md §10).
  // lint: wallclock-ok(host-side wall_ms field, DESIGN.md §10)
  auto wall_start = std::chrono::steady_clock::now();
  sim_->RunUntil(config_.duration);
  double wall_ms =
      std::chrono::duration<double, std::milli>(
          // lint: wallclock-ok(host-side wall_ms field, DESIGN.md §10)
          std::chrono::steady_clock::now() - wall_start)
          .count();

  // End-of-run per-link WAN uplink utilization (fraction of the link's
  // capacity the node's sends consumed over the whole run).
  obs::Telemetry& telemetry = *ctx_->telemetry;
  double run_seconds = SimToSeconds(config_.duration);
  for (NodeId id : topology_->AllNodes()) {
    double bps = topology_->wan_bps(id);
    if (bps <= 0 || run_seconds <= 0) continue;
    char name[48];
    std::snprintf(name, sizeof(name), "net/wan_uplink_util/g%u/n%u",
                  static_cast<unsigned>(id.group),
                  static_cast<unsigned>(id.index));
    double sent_bits =
        8.0 * static_cast<double>(network_->StatsFor(id).wan_bytes_sent);
    telemetry.registry().GetGauge(name)->Set(sent_bits /
                                             (bps * run_seconds));
  }

  // The Fig 11 phase breakdown, derived from the spans the nodes recorded
  // into the registry (batching per transaction; the others per entry).
  PhaseStats phases;
  phases.batching_ms = telemetry.phase(obs::Phase::kBatching).sum();
  phases.local_ms = telemetry.phase(obs::Phase::kLocalConsensus).sum();
  phases.encode_ms = telemetry.phase(obs::Phase::kEncode).sum();
  phases.global_ms = telemetry.phase(obs::Phase::kGlobalReplication).sum();
  phases.rebuild_ms = telemetry.phase(obs::Phase::kRebuild).sum();
  phases.exec_ms = telemetry.phase(obs::Phase::kExecution).sum();
  phases.rebuilds = telemetry.phase(obs::Phase::kRebuild).count();
  phases.batch_size_sum =
      static_cast<double>(telemetry.phase(obs::Phase::kBatching).count());
  obs::MetricsRegistry& registry = telemetry.registry();
  phases.entries = registry.GetCounter("node/entries_batched")->value();
  phases.txns = registry.GetCounter("exec/txns_executed")->value();
  phases.conflict_aborts =
      registry.GetCounter("exec/conflict_aborts")->value();

  ExperimentResult result;
  result.crypto_mode = registry_->scheme_name();
  result.verify_batch_ratio = registry_->verify_batch_ratio();
  result.throughput_tps = metrics_->ThroughputTps();
  result.mean_latency_ms = metrics_->MeanLatencyMs();
  result.p50_latency_ms = metrics_->P50LatencyMs();
  result.p99_latency_ms = metrics_->P99LatencyMs();
  result.committed_txns = metrics_->committed();
  result.aborted_txns = metrics_->aborted();
  result.phases = phases;
  result.conflict_aborts = phases.conflict_aborts;
  result.entries_proposed = phases.entries;
  result.avg_batch_size =
      result.entries_proposed == 0
          ? 0
          : phases.batch_size_sum /
                static_cast<double>(result.entries_proposed);
  result.total_wan_bytes = network_->TotalWanBytesSent();
  result.total_lan_bytes = network_->TotalLanBytesSent();
  result.wan_bytes_per_entry =
      result.entries_proposed == 0
          ? 0
          : static_cast<double>(result.total_wan_bytes) /
                static_cast<double>(result.entries_proposed);
  result.timeline = metrics_->Timeline();
  result.sim_events = sim_->events_processed();
  result.wall_ms = wall_ms;
  if (wall_ms > 0) {
    result.events_per_sec =
        static_cast<double>(sim_->events_processed() - events_before) *
        1000.0 / wall_ms;
    result.sim_time_ratio = SimToSeconds(config_.duration) * 1000.0 / wall_ms;
  }
  return result;
}

int64_t Experiment::CheckAgreement() const {
  // Compare the executed (gid, seq) sequences of all correct executing
  // nodes; they must be prefixes of one another (Theorem V.6 agreement).
  const std::vector<std::pair<uint16_t, uint64_t>>* longest = nullptr;
  for (const auto& n : nodes_) {
    if (n->crashed() || n->rejoined()) continue;
    if (!config_.execute_on_all_nodes && n->id().index != 0) continue;
    if (longest == nullptr ||
        n->execution_log().size() > longest->size())
      longest = &n->execution_log();
  }
  if (longest == nullptr) return 0;
  int64_t min_len = static_cast<int64_t>(longest->size());
  for (const auto& n : nodes_) {
    if (n->crashed() || n->rejoined()) continue;
    if (!config_.execute_on_all_nodes && n->id().index != 0) continue;
    const auto& log = n->execution_log();
    min_len = std::min<int64_t>(min_len, static_cast<int64_t>(log.size()));
    for (size_t i = 0; i < log.size(); ++i) {
      if (log[i] != (*longest)[i]) return -1;
    }
  }
  return min_len;
}

}  // namespace massbft
