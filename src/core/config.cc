#include "core/config.h"

namespace massbft {

const char* ProtocolKindName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kMassBft:
      return "MassBFT";
    case ProtocolKind::kBaseline:
      return "Baseline";
    case ProtocolKind::kGeoBft:
      return "GeoBFT";
    case ProtocolKind::kSteward:
      return "Steward";
    case ProtocolKind::kIss:
      return "ISS";
    case ProtocolKind::kBr:
      return "BR";
    case ProtocolKind::kEbr:
      return "EBR";
  }
  return "unknown";
}

ProtocolConfig ProtocolConfig::MassBft() {
  ProtocolConfig cfg;
  cfg.kind = ProtocolKind::kMassBft;
  cfg.replication = ReplicationMode::kEncodedBijective;
  cfg.ordering = OrderingMode::kAsyncVts;
  cfg.use_global_raft = true;
  return cfg;
}

ProtocolConfig ProtocolConfig::Baseline() {
  ProtocolConfig cfg;
  cfg.kind = ProtocolKind::kBaseline;
  cfg.replication = ReplicationMode::kLeaderOneWay;
  cfg.ordering = OrderingMode::kRoundSync;
  cfg.use_global_raft = true;
  cfg.propose_empty = true;
  return cfg;
}

ProtocolConfig ProtocolConfig::GeoBft() {
  ProtocolConfig cfg;
  cfg.kind = ProtocolKind::kGeoBft;
  cfg.replication = ReplicationMode::kLeaderOneWay;
  cfg.ordering = OrderingMode::kRoundSync;
  cfg.use_global_raft = false;
  cfg.propose_empty = true;
  return cfg;
}

ProtocolConfig ProtocolConfig::Steward() {
  ProtocolConfig cfg;
  cfg.kind = ProtocolKind::kSteward;
  cfg.replication = ReplicationMode::kLeaderOneWay;
  cfg.ordering = OrderingMode::kFifo;
  cfg.use_global_raft = true;
  cfg.single_master = true;
  return cfg;
}

ProtocolConfig ProtocolConfig::Iss() {
  ProtocolConfig cfg;
  cfg.kind = ProtocolKind::kIss;
  cfg.replication = ReplicationMode::kLeaderOneWay;
  cfg.ordering = OrderingMode::kEpoch;
  cfg.use_global_raft = true;
  cfg.propose_empty = true;
  return cfg;
}

ProtocolConfig ProtocolConfig::Br() {
  ProtocolConfig cfg;
  cfg.kind = ProtocolKind::kBr;
  cfg.replication = ReplicationMode::kBijective;
  cfg.ordering = OrderingMode::kRoundSync;
  cfg.use_global_raft = true;
  cfg.propose_empty = true;
  return cfg;
}

ProtocolConfig ProtocolConfig::Ebr() {
  ProtocolConfig cfg;
  cfg.kind = ProtocolKind::kEbr;
  cfg.replication = ReplicationMode::kEncodedBijective;
  cfg.ordering = OrderingMode::kRoundSync;
  cfg.use_global_raft = true;
  cfg.propose_empty = true;
  return cfg;
}

ProtocolConfig ProtocolConfig::ForKind(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kMassBft:
      return MassBft();
    case ProtocolKind::kBaseline:
      return Baseline();
    case ProtocolKind::kGeoBft:
      return GeoBft();
    case ProtocolKind::kSteward:
      return Steward();
    case ProtocolKind::kIss:
      return Iss();
    case ProtocolKind::kBr:
      return Br();
    case ProtocolKind::kEbr:
      return Ebr();
  }
  return MassBft();
}

}  // namespace massbft
