#ifndef MASSBFT_CORE_EXPERIMENT_H_
#define MASSBFT_CORE_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/config.h"
#include "core/group_node.h"
#include "obs/telemetry.h"
#include "crypto/signature.h"
#include "sim/metrics.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/topology.h"
#include "workload/workload.h"

namespace massbft {

/// Fault injection schedule (paper Section VI-E).
struct FaultPlan {
  /// Byzantine chunk-tampering nodes per group (the highest-indexed ones),
  /// active from `byzantine_from`.
  int byzantine_per_group = 0;
  SimTime byzantine_from = 0;
  /// Crash every node of this group at `crash_at` (-1 = none).
  int crash_group = -1;
  SimTime crash_at = 0;
  /// Recover the crashed group at this time (0 = stays down). The group
  /// rejoins, catches up from a peer and resumes serving its clients
  /// (paper Section V-C).
  SimTime recover_at = 0;
};

/// One simulated cluster run: topology + protocol + workload + faults.
struct ExperimentConfig {
  TopologyConfig topology;
  ProtocolConfig protocol;
  WorkloadKind workload = WorkloadKind::kYcsbA;
  /// Scales table cardinalities (1.0 = paper sizes). Tests use small
  /// scales for speed; benchmarks use 1.0.
  double workload_scale = 1.0;
  /// Closed-loop clients per group (each has one transaction outstanding).
  int clients_per_group = 400;
  SimTime duration = 12 * kSecond;
  SimTime warmup = 3 * kSecond;
  /// Client <-> group leader round trip (clients are near their group).
  SimTime client_rtt = 1 * kMillisecond;
  uint64_t seed = 42;
  FaultPlan faults;
  /// Execute on every node (agreement tests) instead of leaders only.
  bool execute_on_all_nodes = false;
  /// Record protocol trace spans (off by default; see Experiment::
  /// WriteTrace). Metrics counters/histograms are always collected.
  bool enable_tracing = false;
};

/// Aggregated outcome of a run.
struct ExperimentResult {
  /// "sim" for discrete-event runs, "real" when produced by the threaded
  /// runtime over an actual transport (runtime/RealCluster).
  std::string mode = "sim";
  /// Signature backend the run used (CryptoSchemeName: "hmac-sim" or
  /// "ed25519").
  std::string crypto_mode = "hmac-sim";
  /// Fraction of signature checks that rode the batched certificate path
  /// (KeyRegistry::verify_batch_ratio).
  double verify_batch_ratio = 0;
  double throughput_tps = 0;
  double mean_latency_ms = 0;
  double p50_latency_ms = 0;
  double p99_latency_ms = 0;
  uint64_t committed_txns = 0;
  /// Permanently-aborted (business-abort) transactions: they completed
  /// deterministically with no effects and were not retried.
  uint64_t aborted_txns = 0;
  uint64_t conflict_aborts = 0;
  double avg_batch_size = 0;
  /// Encoded bytes actually put on (simulated or real) links. In sim mode
  /// these are the same encoder-derived sizes the transport would send.
  uint64_t total_wan_bytes = 0;
  uint64_t total_lan_bytes = 0;
  uint64_t entries_proposed = 0;
  /// WAN bytes per proposed entry (replication efficiency, Fig 10).
  double wan_bytes_per_entry = 0;
  PhaseStats phases;
  std::vector<MetricsCollector::TimelinePoint> timeline;
  uint64_t sim_events = 0;
  /// Host wall-clock cost of the Run() event loop (not simulated time).
  double wall_ms = 0;
  /// Simulator events retired per wall-clock second (event-loop speed).
  double events_per_sec = 0;
  /// Simulated seconds per wall-clock second (>1 = faster than real time).
  double sim_time_ratio = 0;

  // ---- Transport health (real mode; all zero in sim mode). Aggregated
  // across every node's transport after the run.
  uint64_t net_send_errors = 0;
  uint64_t net_decode_errors = 0;
  uint64_t net_reconnects = 0;
  uint64_t net_dropped_backpressure = 0;
  /// Kernel round-trips the batched wire path actually paid (DESIGN.md
  /// §15): far below the frame count when sendmsg coalescing is working.
  uint64_t net_send_syscalls = 0;
  uint64_t net_recv_syscalls = 0;
  /// Frames dropped/duplicated/corrupted/delayed by the fault-injection
  /// layer (real mode with a FaultSpec; see net/fault_transport.h).
  uint64_t faults_injected = 0;
  /// Nodes crash-stopped by the run's fault schedule.
  int nodes_killed = 0;

  std::string Summary() const;
  /// Machine-readable dump of every field above (one JSON object).
  std::string ToJson() const;
};

/// Builds and drives one simulated cluster. Usage:
///   Experiment exp(config);
///   MASSBFT_RETURN_IF_ERROR(exp.Setup());
///   ExperimentResult r = exp.Run();
class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);
  ~Experiment();

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  Status Setup();
  ExperimentResult Run();

  // ---- Observability.
  /// Cluster-wide telemetry (valid after Setup()).
  obs::Telemetry& telemetry() { return *ctx_->telemetry; }
  /// Writes the recorded protocol trace as Chrome trace-event JSON
  /// (requires ExperimentConfig::enable_tracing).
  Status WriteTrace(const std::string& path) const {
    return ctx_->telemetry->trace().WriteChromeTraceFile(path);
  }

  // ---- Test hooks.
  Simulator& sim() { return *sim_; }
  Network& network() { return *network_; }
  GroupNode* node(NodeId id);
  const std::vector<std::unique_ptr<GroupNode>>& nodes() const {
    return nodes_;
  }
  /// Verifies all continuously-correct executing nodes executed identical
  /// prefixes. Returns the length of the common prefix; -1 on divergence.
  /// Crashed and rejoined nodes are excluded: a rejoining replica is a
  /// catching-up learner whose authoritative state would come from a
  /// snapshot in production (see GroupNode::rejoined()).
  int64_t CheckAgreement() const;

 private:
  struct Client {
    uint32_t id;
    int group;
    uint64_t next_txn = 0;
    Rng rng;
  };

  void SubmitNext(size_t client_index);
  void OnTxnCommitted(const Transaction& txn, SimTime commit_time);

  ExperimentConfig config_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Topology> topology_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<KeyRegistry> registry_;
  std::unique_ptr<Workload> workload_;
  std::unique_ptr<MetricsCollector> metrics_;
  std::unique_ptr<ClusterContext> ctx_;
  std::vector<std::unique_ptr<GroupNode>> nodes_;
  std::vector<Client> clients_;
  bool setup_done_ = false;
};

}  // namespace massbft

#endif  // MASSBFT_CORE_EXPERIMENT_H_
