#include "runtime/node_runtime.h"

#include <utility>

#include "obs/trace_clock.h"

namespace massbft {

TransportNetwork::TransportNetwork(Simulator* sim, const Topology* topology,
                                   Transport* transport)
    : Network(sim, topology, /*deliver=*/nullptr), transport_(transport) {}

void TransportNetwork::SendWan(NodeId, NodeId dst, MessagePtr message) {
  SendReal(dst, message, &wan_bytes_sent_);
}

void TransportNetwork::SendLan(NodeId, NodeId dst, MessagePtr message) {
  SendReal(dst, message, &lan_bytes_sent_);
}

void TransportNetwork::SendReal(NodeId dst, const MessagePtr& message,
                                uint64_t* counter) {
  // Every message in the protocol stack is a ProtocolMessage; SimMessage is
  // only the byte-accounting face the simulated network sees.
  const auto& msg = static_cast<const ProtocolMessage&>(*message);
  *counter += msg.ByteSize();
  if (telemetry_ != nullptr && telemetry_->tracing()) {
    uint16_t gid = 0;
    uint64_t seq = 0;
    if (msg.TraceKey(&gid, &seq)) {
      telemetry_->trace().RecordInstant(
          track_, "wire", "send", telemetry_->TraceNowNs(),
          obs::TraceArgs{{{"gid", static_cast<double>(gid)},
                          {"seq", static_cast<double>(seq)},
                          {"dst", static_cast<double>(dst.Packed())}}});
    }
  }
  // Best-effort, like a datagram over an unreliable link: the BFT layer
  // owns retries. The transport counts the failure in its stats.
  (void)transport_->Send(dst, msg);
}

NodeRuntime::NodeRuntime(NodeId id, const ProtocolConfig& protocol,
                         WorkloadKind workload, double workload_scale,
                         KeyRegistry* registry, const Topology* topology,
                         std::unique_ptr<Transport> transport)
    : id_(id),
      transport_(std::move(transport)),
      topology_(topology),
      network_(&sim_, topology, transport_.get()),
      workload_(MakeWorkload(workload, workload_scale)) {
  ctx_.registry = registry;
  ctx_.topology = topology;
  ctx_.workload = workload_.get();
  // Wire the transport's net/* series into this node's registry before any
  // thread exists (instrument handles must be resolved single-threaded).
  transport_->BindTelemetry(ctx_.telemetry);
  network_.BindTelemetry(ctx_.telemetry, obs::Telemetry::NodeTrack(id.Packed()));
  node_ = std::make_unique<GroupNode>(&sim_, &network_, id, protocol, &ctx_);
}

NodeRuntime::~NodeRuntime() { Stop(); }

Status NodeRuntime::Start() {
  bool first_start;
  {
    MutexLock lock(&mu_);
    if (running_) return Status::FailedPrecondition("runtime already running");
    running_ = true;
    first_start = !started_once_;
    // The virtual clock's epoch is set exactly once: a restarted node's
    // simulator must keep moving forward (its pending timers were armed
    // against the original epoch), so downtime appears as a clock jump,
    // never a clock rewind.
    if (first_start) {
      epoch_ = std::chrono::steady_clock::now();
      started_once_ = true;
      // Anchor this node's timebase (ns since epoch_) on the process trace
      // clock, read at the same moment the epoch is taken: the cluster
      // merger shifts every node's events by this offset onto one axis,
      // and transport threads stamp events via Telemetry::TraceNowNs().
      ctx_.telemetry->set_trace_anchor_ns(obs::TraceClock::NowNs());
    }
  }
  Status s = transport_->Start([this](Frame frame) { Deliver(std::move(frame)); });
  if (!s.ok()) {
    MutexLock lock(&mu_);
    running_ = false;
    return s;
  }
  thread_ = std::thread([this] { Loop(); });
  ctx_.telemetry->flight().Record(
      static_cast<uint64_t>(ctx_.telemetry->TraceNowNs()), "node",
      first_start ? "start" : "restart", static_cast<double>(id_.Packed()), 0);
  // First boot arms the node's timers. A restart does not: the caller
  // decides the rejoin protocol (RealCluster posts GroupNode::Recover(),
  // which bumps the timer epoch and re-arms).
  if (first_start) Post([this] { node_->Start(); });
  return Status::OK();
}

void NodeRuntime::Stop() {
  // Stop the transport first so no further deliveries are posted, then
  // wake and join the loop.
  if (transport_) transport_->Stop();
  {
    MutexLock lock(&mu_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_one();
  if (thread_.joinable()) thread_.join();
  ctx_.telemetry->flight().Record(
      static_cast<uint64_t>(ctx_.telemetry->TraceNowNs()), "node", "stop",
      static_cast<double>(id_.Packed()), 0);
  // Work posted but never run dies here; a restart must not replay a
  // stale batch from before the crash.
  MutexLock lock(&mu_);
  queue_.clear();
}

bool NodeRuntime::Post(std::function<void()> fn) {
  {
    MutexLock lock(&mu_);
    if (!running_) return false;
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
  return true;
}

SimTime NodeRuntime::Elapsed() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void NodeRuntime::Deliver(Frame frame) {
  // The receive side of cross-node trace stitching: every entry-carrying
  // frame leaves a "wire/recv" instant on this node's track, annotated
  // with the sender-stamped trace context. The merger synthesizes flow
  // arrows purely from these instants (origin_ts is already on the shared
  // process axis), so no send/recv pairing search is needed.
  if (frame.has_trace && ctx_.telemetry->tracing()) {
    ctx_.telemetry->trace().RecordInstant(
        obs::Telemetry::NodeTrack(id_.Packed()), "wire", "recv",
        ctx_.telemetry->TraceNowNs(),
        obs::TraceArgs{
            {{"gid", static_cast<double>(frame.trace.gid)},
             {"seq", static_cast<double>(frame.trace.seq)},
             {"origin", static_cast<double>(frame.trace.origin)},
             {"origin_ts", static_cast<double>(frame.trace.origin_ts_ns)}}});
  }
  // Re-wrap as the shared-pointer type HandleMessage expects. The lambda
  // must be copyable for std::function, hence shared_ptr.
  MessagePtr msg(std::move(frame.msg));
  NodeId src = frame.src;
  Post([this, src, msg] { node_->HandleMessage(src, msg); });
}

void NodeRuntime::Loop() {
  std::vector<std::function<void()>> batch;
  for (;;) {
    {
      MutexLock lock(&mu_);
      if (queue_.empty() && running_) {
        SimTime next = sim_.NextEventTime();
        if (next == Simulator::kNoEvent) {
          // No pending timers: sleep until a message or Stop() wakes us.
          // The bounded wait is belt-and-braces against a lost notify.
          cv_.wait_for(mu_, std::chrono::milliseconds(50));
        } else {
          cv_.wait_until(mu_, epoch_ + std::chrono::nanoseconds(next));
        }
      }
      if (!running_) break;
      batch.swap(queue_);
    }
    // Advance the virtual clock to "now", firing due timers, then handle
    // inbound messages at the advanced time. Zero-delay work scheduled by
    // the handlers is already due, so the next iteration runs it without
    // sleeping.
    sim_.RunUntil(Elapsed());
    for (auto& fn : batch) fn();
    batch.clear();
  }
}

}  // namespace massbft
