#ifndef MASSBFT_RUNTIME_CLUSTER_H_
#define MASSBFT_RUNTIME_CLUSTER_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/lock_rank.h"
#include "common/result.h"
#include "common/rng.h"
#include "core/experiment.h"
#include "net/fault_transport.h"
#include "net/inproc_transport.h"
#include "net/tcp_transport.h"
#include "obs/stats_server.h"
#include "runtime/node_runtime.h"

namespace massbft {

/// A threaded MassBFT cluster over a real transport.
struct RealClusterConfig {
  /// Latency/bandwidth parameters are ignored by the transport (the real
  /// network provides timing); group_sizes and the fault bounds matter.
  TopologyConfig topology;
  ProtocolConfig protocol;
  WorkloadKind workload = WorkloadKind::kYcsbA;
  double workload_scale = 0.1;
  /// Closed-loop clients per group (one outstanding transaction each).
  int clients_per_group = 16;
  /// Wall-clock transaction-issuing window.
  double duration_seconds = 3.0;
  /// Extra wall-clock budget for every node to execute everything that
  /// committed before issuing stopped.
  double drain_timeout_seconds = 20.0;
  uint64_t seed = 42;
  /// Signature backend. Real clusters default to real ed25519 (RFC 8032);
  /// kSimulatedHmac remains available for apples-to-apples comparison with
  /// the simulated figures. With ed25519 the simulated per-op CPU charges
  /// are zeroed — the curve arithmetic pays its cost in wall time.
  CryptoScheme crypto = CryptoScheme::kEd25519;
  /// false = in-process transport fabric; true = TCP over localhost.
  bool use_tcp = false;
  uint16_t base_port = 18200;

  /// Network fault injection: when any() is true every node's transport is
  /// wrapped in a FaultInjectingTransport (per-node seed derived from
  /// FaultSpec::seed, so runs are reproducible). Partition windows are
  /// offsets from Run()'s start.
  FaultSpec net_faults;
  /// Crash-stop the highest-indexed `crash_nodes_per_group` nodes of every
  /// group (never the leader) at `crash_at_s` seconds into the run. Keep it
  /// <= f per group for the survivors to stay live.
  int crash_nodes_per_group = 0;
  double crash_at_s = 0;
  /// Restart the crashed nodes at this offset (0 = they stay down). The
  /// restarted nodes rejoin via GroupNode::Recover() and are excluded from
  /// the final agreement check, mirroring Experiment::CheckAgreement.
  double restart_at_s = 0;

  // ---- Observability (DESIGN.md §14).
  /// Record per-node protocol traces and write the merged cluster-wide
  /// Chrome trace (one process per node, cross-node flow arrows) here
  /// after the run. Empty = no trace. Setting it implies enable_tracing.
  std::string trace_path;
  /// Record traces without necessarily exporting them (tests inspect the
  /// recorders directly; Run() only writes a file when trace_path is set).
  bool enable_tracing = false;
  /// Live introspection: -1 = no stats server; otherwise a localhost HTTP
  /// server on this port (0 = ephemeral, see stats_port()) serving
  /// /metrics (Prometheus text) and /health (cluster JSON) from Setup()
  /// until destruction.
  int stats_port = -1;
  /// Timeline bucket width for ExperimentResult::timeline in real mode.
  double sample_interval_s = 0.5;
};

/// Builds one NodeRuntime per node, drives closed-loop clients against the
/// group leaders for the configured duration, then drains until every node
/// has executed the same entries and checks that all state fingerprints
/// agree. Usage mirrors Experiment:
///   RealCluster cluster(config);
///   MASSBFT_RETURN_IF_ERROR(cluster.Setup());
///   auto result = cluster.Run();   // Result<ExperimentResult>, mode "real"
class RealCluster {
 public:
  explicit RealCluster(RealClusterConfig config);
  ~RealCluster();

  RealCluster(const RealCluster&) = delete;
  RealCluster& operator=(const RealCluster&) = delete;

  /// Builds registry, topology and every runtime (main thread; no threads
  /// are started yet).
  [[nodiscard]] Status Setup();

  /// Runs the cluster: start, issue (executing the crash/restart schedule),
  /// drain, verify agreement across continuously-correct nodes, stop.
  /// Fails with Internal if surviving nodes' states diverge.
  [[nodiscard]] Result<ExperimentResult> Run();

  /// Crash-stops one node: GroupNode::Crash() on its event loop, then the
  /// runtime (transport included) is stopped. Callable mid-run from the
  /// driving thread.
  [[nodiscard]] Status KillNode(NodeId id);

  /// Restarts a killed node and posts GroupNode::Recover() — the node
  /// rejoins, catches up from a peer, and resumes, but stays excluded from
  /// agreement checks (it is a catching-up learner; see
  /// GroupNode::rejoined()).
  [[nodiscard]] Status RestartNode(NodeId id);

  const std::vector<std::unique_ptr<NodeRuntime>>& runtimes() const {
    return runtimes_;
  }

  /// Merges every node's trace recorder into one Chrome trace file (see
  /// obs::ClusterTraceMerger). Requires tracing to have been enabled; most
  /// callers just set RealClusterConfig::trace_path and let Run() do it.
  [[nodiscard]] Status WriteMergedTrace(const std::string& path) const;

  /// Bound port of the stats server (valid after Setup() when
  /// config.stats_port >= 0; resolves an ephemeral request).
  uint16_t stats_port() const { return stats_server_.port(); }

 private:
  struct Client {
    uint32_t id = 0;
    int group = 0;
    uint64_t next_txn = 0;
    Rng rng;
    std::chrono::steady_clock::time_point submitted_at;
  };

  NodeRuntime* runtime(NodeId id);
  /// Posts the next transaction of client `client_index` to its group
  /// leader's event loop.
  void SubmitNext(size_t client_index);
  /// Fired on the origin-group leader's event-loop thread.
  void OnTxnCommitted(const Transaction& txn);
  /// True when `rt` should participate in agreement checks: running and
  /// never crashed (a rejoined learner's re-derived state is not
  /// authoritative).
  bool EligibleForAgreement(NodeRuntime& rt);
  /// Waits until every eligible node holds the same state fingerprint and
  /// commits have stopped (two stable readings in a row); false on drain
  /// timeout.
  bool DrainUntilStable();
  /// Executes the configured crash/restart schedule while sleeping out the
  /// transaction-issuing window.
  [[nodiscard]] Status IssueWindow();
  /// Starts the localhost stats server and registers /metrics + /health.
  [[nodiscard]] Status StartStatsServer();
  /// Prometheus text exposition of every node's metrics registry.
  std::string MetricsText();
  /// Cluster-health JSON: per-node liveness, progress, queue depth and
  /// transport health, plus cluster-wide commit/fault counters.
  std::string HealthJson();
  /// Dumps every node's flight recorder to stderr (called on agreement
  /// failure / drain timeout so the last events before the failure are in
  /// the log).
  void DumpFlightRecorders(const char* why);
  /// Periodic sampler body: fills timeline_ every sample_interval_s from
  /// the shared commit counters until sampling_ clears.
  void SamplerLoop(std::chrono::steady_clock::time_point start);

  RealClusterConfig config_;
  std::unique_ptr<Topology> topology_;
  std::unique_ptr<KeyRegistry> registry_;
  InProcHub hub_;
  std::vector<std::unique_ptr<NodeRuntime>> runtimes_;

  /// Per-group payload generators: group g's instance is only touched from
  /// g's leader event-loop thread (all of g's clients submit there).
  std::vector<std::unique_ptr<Workload>> client_workloads_;
  std::vector<Client> clients_;
  /// Per-group latency samples (ms), same single-writer discipline.
  std::vector<std::vector<double>> latencies_;

  /// All cross-thread counters below use relaxed ordering: they are
  /// independent monotone tallies read for progress probes and reporting,
  /// and every read that must be exact happens after a thread join that
  /// already provides the synchronizes-with edge.
  std::atomic<bool> issuing_{false};
  std::atomic<uint64_t> committed_{0};
  /// Sum of commit latencies in microseconds (with committed_, lets the
  /// sampler derive per-bucket mean latency without touching the
  /// single-writer latencies_ vectors).
  std::atomic<uint64_t> latency_sum_us_{0};
  bool setup_done_ = false;

  /// Serializes node lifecycle transitions (KillNode/RestartNode/final
  /// stop) against stats-server handlers: a handler's NodeRuntime::Call
  /// must never overlap a Stop() that would clear the queued call before
  /// it runs. Outermost rank: held across runtime/transport teardown,
  /// never taken on event loops.
  RankedMutex introspection_mu_{"cluster.introspection_mu",
                                LockRank::kClusterIntrospection};
  obs::StatsServer stats_server_;

  /// Timeline sampler (real-mode ExperimentResult::timeline). The sampler
  /// thread is the only writer; Run() reads after joining it.
  std::atomic<bool> sampling_{false};
  std::thread sampler_;
  std::vector<MetricsCollector::TimelinePoint> timeline_;

  /// Non-owning views of the per-node injectors (owned by the runtimes'
  /// transport chain); empty when net_faults.any() is false.
  std::vector<FaultInjectingTransport*> fault_transports_;
  /// Nodes crash-stopped by KillNode (in kill order).
  std::vector<NodeId> killed_ MASSBFT_GUARDED_BY(introspection_mu_);
  int nodes_killed_ MASSBFT_GUARDED_BY(introspection_mu_) = 0;
};

}  // namespace massbft

#endif  // MASSBFT_RUNTIME_CLUSTER_H_
