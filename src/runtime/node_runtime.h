#ifndef MASSBFT_RUNTIME_NODE_RUNTIME_H_
#define MASSBFT_RUNTIME_NODE_RUNTIME_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/lock_rank.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/config.h"
#include "core/group_node.h"
#include "net/transport.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/topology.h"
#include "workload/workload.h"

namespace massbft {

/// Network implementation that puts messages on a real Transport instead of
/// simulated links. Protocol code (GroupNode and the engines beneath it) is
/// unchanged: it still calls SendWan/SendLan, but each call encodes the
/// message into a wire frame and hands it to the transport. Timing comes
/// from the operating system, not the flow model, so the latency/bandwidth
/// parameters of the topology are ignored here.
///
/// Not thread-safe by itself: all sends come from the owning NodeRuntime's
/// event-loop thread.
class TransportNetwork : public Network {
 public:
  TransportNetwork(Simulator* sim, const Topology* topology,
                   Transport* transport);

  void SendWan(NodeId src, NodeId dst, MessagePtr message) override;
  void SendLan(NodeId src, NodeId dst, MessagePtr message) override;

  /// Crash/recover in the threaded runtime means stopping or restarting a
  /// whole NodeRuntime; the per-node drop bookkeeping of the simulated
  /// network does not apply.
  void CrashNode(NodeId) override {}
  void RecoverNode(NodeId) override {}

  /// Wires the owning node's telemetry so entry-carrying sends leave a
  /// "wire/send" instant on `track` (the owner's node track) when tracing.
  void BindTelemetry(obs::Telemetry* telemetry, uint32_t track) {
    telemetry_ = telemetry;
    track_ = track;
  }

  /// Encoded bytes actually handed to the transport, by link class.
  uint64_t wan_bytes_sent() const { return wan_bytes_sent_; }
  uint64_t lan_bytes_sent() const { return lan_bytes_sent_; }

 private:
  void SendReal(NodeId dst, const MessagePtr& message, uint64_t* counter);

  Transport* transport_;
  obs::Telemetry* telemetry_ = nullptr;
  uint32_t track_ = 0;
  uint64_t wan_bytes_sent_ = 0;
  uint64_t lan_bytes_sent_ = 0;
};

/// Hosts one GroupNode on a dedicated thread, with real messaging.
///
/// The protocol stack is callback-driven and schedules all its timers
/// through a Simulator, so the runtime gives each node a *private*
/// Simulator whose clock is mapped onto the wall clock: the event-loop
/// thread sleeps until the earliest pending timer (Simulator::
/// NextEventTime(), interpreted as nanoseconds since Start()) or until a
/// message arrives, then advances the virtual clock to the current wall
/// offset, firing due timers, and handles queued inbound messages. Protocol
/// code therefore runs exactly as in simulation — same engines, same timer
/// chains — but interleaved with real network delivery.
///
/// Threading rules:
///  * Construction happens on the main thread, for every node of the
///    cluster, before any runtime is started (KeyRegistry::RegisterNode is
///    not thread-safe).
///  * After Start(), the GroupNode must only be touched from the event
///    loop: use Post() (fire-and-forget) or Call() (run + wait for result).
///  * After Stop() returns, the loop thread has been joined and the node
///    may be inspected directly from the caller's thread.
class NodeRuntime {
 public:
  /// `registry` and `topology` are shared across the cluster's runtimes and
  /// must outlive them. The runtime takes ownership of `transport` and
  /// builds its own private ClusterContext and Workload instance (caches
  /// and telemetry are per-node — nothing protocol-visible is shared
  /// between node threads except the transport fabric).
  NodeRuntime(NodeId id, const ProtocolConfig& protocol, WorkloadKind workload,
              double workload_scale, KeyRegistry* registry,
              const Topology* topology, std::unique_ptr<Transport> transport);
  ~NodeRuntime();

  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  /// Installs the commit callback (fired on this runtime's event-loop
  /// thread). Must be called before Start().
  void set_on_txn_committed(
      std::function<void(const Transaction&, SimTime)> fn) {
    ctx_.on_txn_committed = std::move(fn);
  }

  /// Starts the transport and the event loop. The first call also arms the
  /// node's timers (GroupNode::Start()) on the loop thread; a restart after
  /// Stop() does not — the caller owns the rejoin protocol (RealCluster
  /// posts GroupNode::Recover()). The virtual-clock epoch is set on the
  /// first start only, so a restarted node sees its downtime as a forward
  /// clock jump rather than a rewind.
  [[nodiscard]] Status Start();

  /// Stops the transport (no further deliveries), then joins the loop
  /// thread. Queued-but-unprocessed work is dropped. Idempotent, and
  /// Start() may be called again afterwards (crash/restart experiments).
  void Stop();

  /// True between a successful Start() and the next Stop().
  bool running() const {
    MutexLock lock(&mu_);
    return running_;
  }

  /// Enqueues `fn` to run on the event-loop thread. Safe from any thread.
  /// Returns false (and drops `fn`) when the runtime is not running.
  bool Post(std::function<void()> fn);

  /// Runs `fn(node)` on the event-loop thread and returns its result; when
  /// the runtime is not running (before Start() / after Stop(), when no
  /// other thread can touch the node) it runs inline instead. Must not be
  /// called from the loop thread itself (it would deadlock).
  template <typename F>
  auto Call(F fn) -> decltype(fn(std::declval<GroupNode&>())) {
    using R = decltype(fn(std::declval<GroupNode&>()));
    std::promise<R> promise;
    std::future<R> future = promise.get_future();
    if (!Post([this, &fn, &promise] { promise.set_value(fn(*node_)); }))
      return fn(*node_);
    return future.get();
  }

  NodeId id() const { return id_; }
  GroupNode& node() { return *node_; }
  Transport& transport() { return *transport_; }
  const TransportNetwork& network() const { return network_; }

  /// This node's private observability context (registry + trace recorder
  /// + flight recorder). Valid for the runtime's whole lifetime.
  obs::Telemetry& telemetry() { return *ctx_.telemetry; }
  const obs::Telemetry& telemetry() const { return *ctx_.telemetry; }

  /// Work items queued for the event loop but not yet run (introspection;
  /// a sustained backlog means the loop cannot keep up with delivery).
  size_t queue_depth() const {
    MutexLock lock(&mu_);
    return queue_.size();
  }

  /// Nanoseconds of wall clock since Start() — the loop's virtual "now".
  SimTime Elapsed() const;

 private:
  void Loop();
  void Deliver(Frame frame);

  NodeId id_;
  Simulator sim_;
  std::unique_ptr<Transport> transport_;
  const Topology* topology_;
  TransportNetwork network_;
  std::unique_ptr<Workload> workload_;
  ClusterContext ctx_;
  std::unique_ptr<GroupNode> node_;

  // kRuntimeQueue: Post/Deliver grab it from transport reader threads with
  // no other ranked lock held; the loop never calls out while holding it.
  mutable RankedMutex mu_{"runtime.mu", LockRank::kRuntimeQueue};
  /// Signaled under mu_ (new queue_ item or Stop()).
  std::condition_variable_any cv_;
  std::vector<std::function<void()>> queue_ MASSBFT_GUARDED_BY(mu_);
  bool running_ MASSBFT_GUARDED_BY(mu_) = false;
  bool started_once_ MASSBFT_GUARDED_BY(mu_) = false;
  /// Written once under mu_ by the first Start() (before the loop thread
  /// exists) and immutable afterwards; Elapsed() reads it lock-free.
  std::chrono::steady_clock::time_point epoch_;
  std::thread thread_;
};

}  // namespace massbft

#endif  // MASSBFT_RUNTIME_NODE_RUNTIME_H_
