#include "runtime/cluster.h"

#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "obs/json_writer.h"
#include "obs/prometheus.h"
#include "obs/trace_clock.h"
#include "obs/trace_merge.h"
#include "sim/metrics.h"  // InterpolatedPercentile

namespace massbft {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string NodeName(NodeId id) {
  return std::to_string(id.group) + "/" + std::to_string(id.index);
}

}  // namespace

RealCluster::RealCluster(RealClusterConfig config)
    : config_(std::move(config)) {}

RealCluster::~RealCluster() {
  // Join the stats-server thread first: its handlers Call into runtimes,
  // so no handler may be in flight while the runtimes are torn down.
  stats_server_.Stop();
  // Relaxed: the join below is the ordering edge; the flag only asks the
  // sampler thread to wind down.
  sampling_.store(false, std::memory_order_relaxed);
  if (sampler_.joinable()) sampler_.join();
  MutexLock lock(&introspection_mu_);
  for (auto& rt : runtimes_) rt->Stop();
}

Status RealCluster::Setup() {
  if (setup_done_) return Status::FailedPrecondition("Setup() called twice");
  MASSBFT_ASSIGN_OR_RETURN(Topology topo,
                           Topology::Create(config_.topology));
  topology_ = std::make_unique<Topology>(std::move(topo));
  registry_ = std::make_unique<KeyRegistry>(config_.crypto);
  if (config_.crypto == CryptoScheme::kEd25519) {
    // Real crypto pays its cost in wall time; zero the simulated per-op
    // charges so the work is not double-counted.
    config_.protocol.cpu.sign_cost = 0;
    config_.protocol.cpu.verify_cost = 0;
  }

  TcpPortMap ports;
  if (config_.use_tcp) {
    Result<TcpPortMap> port_map =
        MakeLocalPortMap(config_.topology.group_sizes, config_.base_port);
    MASSBFT_RETURN_IF_ERROR(port_map.status());
    // swap, not move-assign: GCC 12's -Wfree-nonheap-object misfires on
    // the (guarded, unreachable) bucket deallocation a move-assignment of
    // an unordered_map inlines here.
    ports.swap(*port_map);
  }

  // All runtimes (and thus all GroupNodes) are built here on the calling
  // thread: KeyRegistry::RegisterNode is not thread-safe, and nodes verify
  // each other's signatures through the shared registry.
  for (NodeId id : topology_->AllNodes()) {
    std::unique_ptr<Transport> transport =
        config_.use_tcp
            ? std::unique_ptr<Transport>(new TcpTransport(id, ports))
            : hub_.CreateTransport(id);
    if (config_.net_faults.any()) {
      // Per-node injector with a seed derived from the cluster seed and
      // the node id: every node draws an independent but reproducible
      // fault sequence.
      FaultSpec spec = config_.net_faults;
      spec.seed = config_.net_faults.seed * 0x9E3779B97F4A7C15ULL +
                  static_cast<uint64_t>(id.Packed()) + 1;
      auto injector = std::make_unique<FaultInjectingTransport>(
          std::move(transport), spec);
      fault_transports_.push_back(injector.get());
      transport = std::move(injector);
    }
    auto rt = std::make_unique<NodeRuntime>(
        id, config_.protocol, config_.workload, config_.workload_scale,
        registry_.get(), topology_.get(), std::move(transport));
    // Every node executes so the agreement check can compare all replicas.
    rt->node().set_always_execute(true);
    rt->set_on_txn_committed(
        [this](const Transaction& txn, SimTime) { OnTxnCommitted(txn); });
    if (config_.enable_tracing || !config_.trace_path.empty()) {
      // Tracing must be switched on before any node thread exists (the
      // enabled flag is not flippable under concurrent recording).
      rt->telemetry().set_tracing(true);
      rt->telemetry().trace().RegisterTrack(
          obs::Telemetry::NodeTrack(id.Packed()), "node " + NodeName(id));
    }
    runtimes_.push_back(std::move(rt));
  }

  if (config_.stats_port >= 0) MASSBFT_RETURN_IF_ERROR(StartStatsServer());

  Rng seed_rng(config_.seed);
  client_workloads_.resize(config_.topology.group_sizes.size());
  latencies_.resize(config_.topology.group_sizes.size());
  for (int g = 0; g < topology_->num_groups(); ++g) {
    client_workloads_[g] =
        MakeWorkload(config_.workload, config_.workload_scale);
    for (int c = 0; c < config_.clients_per_group; ++c) {
      Client client;
      client.id = (static_cast<uint32_t>(g) << 20) | static_cast<uint32_t>(c);
      client.group = g;
      client.rng = seed_rng.Fork();
      clients_.push_back(std::move(client));
    }
  }

  setup_done_ = true;
  return Status::OK();
}

NodeRuntime* RealCluster::runtime(NodeId id) {
  for (auto& rt : runtimes_)
    if (rt->id() == id) return rt.get();
  return nullptr;
}

void RealCluster::SubmitNext(size_t client_index) {
  Client& client = clients_[client_index];
  NodeRuntime* leader =
      runtime(NodeId{static_cast<uint16_t>(client.group), 0});
  if (leader == nullptr) return;
  // The transaction is materialized on the leader's event-loop thread:
  // each group's payload generator and its clients' rngs are only ever
  // touched there (single-writer; see client_workloads_).
  leader->Post([this, leader, client_index] {
    Client& c = clients_[client_index];
    Transaction txn;
    txn.id = c.next_txn++;
    txn.client = c.id;
    txn.submit_time = leader->Elapsed();
    txn.payload = client_workloads_[c.group]->NextPayload(c.rng);
    c.submitted_at = Clock::now();
    leader->node().SubmitClientTxn(std::move(txn));
  });
}

void RealCluster::OnTxnCommitted(const Transaction& txn) {
  uint32_t group = txn.client >> 20;
  uint32_t index = txn.client & 0xFFFFF;
  size_t client_index =
      static_cast<size_t>(group) *
          static_cast<size_t>(config_.clients_per_group) +
      index;
  if (client_index >= clients_.size()) return;
  const double latency_ms = MsSince(clients_[client_index].submitted_at);
  committed_.fetch_add(1, std::memory_order_relaxed);
  latency_sum_us_.fetch_add(static_cast<uint64_t>(latency_ms * 1000.0),
                            std::memory_order_relaxed);
  latencies_[group].push_back(latency_ms);
  if (issuing_.load(std::memory_order_relaxed)) SubmitNext(client_index);
}

Status RealCluster::KillNode(NodeId id) {
  // Serialized against stats handlers: Stop() clears the node's queue, so
  // a concurrent handler Call posted-but-unprocessed would never resolve.
  MutexLock lock(&introspection_mu_);
  NodeRuntime* rt = runtime(id);
  if (rt == nullptr)
    return Status::NotFound("no such node " + NodeName(id));
  if (!rt->running())
    return Status::FailedPrecondition("node " + NodeName(id) +
                                      " already stopped");
  obs::Telemetry& telemetry = rt->telemetry();
  telemetry.flight().Record(static_cast<uint64_t>(telemetry.TraceNowNs()),
                            "node", "kill", static_cast<double>(id.Packed()),
                            0);
  if (telemetry.tracing()) {
    telemetry.trace().RecordInstant(obs::Telemetry::NodeTrack(id.Packed()),
                                    "node", "kill", telemetry.TraceNowNs());
  }
  // Crash on the event loop first (cancels protocol timers via the epoch
  // bump) so a later restart resumes a node that knows it crashed, then
  // tear the runtime — and its transport — down.
  rt->Call([](GroupNode& n) {
    n.Crash();
    return true;
  });
  rt->Stop();
  killed_.push_back(id);
  ++nodes_killed_;
  return Status::OK();
}

Status RealCluster::RestartNode(NodeId id) {
  MutexLock lock(&introspection_mu_);
  NodeRuntime* rt = runtime(id);
  if (rt == nullptr)
    return Status::NotFound("no such node " + NodeName(id));
  if (rt->running())
    return Status::FailedPrecondition("node " + NodeName(id) +
                                      " is running");
  MASSBFT_RETURN_IF_ERROR(rt->Start());
  obs::Telemetry& telemetry = rt->telemetry();
  if (telemetry.tracing()) {
    telemetry.trace().RecordInstant(obs::Telemetry::NodeTrack(id.Packed()),
                                    "node", "restart",
                                    telemetry.TraceNowNs());
  }
  // Rejoin on the fresh event loop: Recover() re-arms the timers and, for
  // a leader, requests catch-up from a peer group (paper Section V-C). The
  // runtime deliberately did not re-run GroupNode::Start().
  rt->Post([rt] { rt->node().Recover(); });
  return Status::OK();
}

bool RealCluster::EligibleForAgreement(NodeRuntime& rt) {
  // Killed nodes have no live state; rejoined nodes are catching-up
  // learners whose re-derived interleaving is not authoritative (the same
  // rule as Experiment::CheckAgreement).
  if (!rt.running()) return false;
  return !rt.Call([](GroupNode& n) { return n.rejoined(); });
}

Status RealCluster::IssueWindow() {
  const auto start = Clock::now();
  auto sleep_until_offset = [&](double offset_s) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(offset_s)));
  };
  const bool crashes =
      config_.crash_nodes_per_group > 0 && config_.crash_at_s > 0;
  if (crashes) {
    sleep_until_offset(std::min(config_.crash_at_s,
                                config_.duration_seconds));
    // Kill the highest-indexed followers of every group; index 0 (the
    // leader clients submit to) always survives.
    for (int g = 0; g < topology_->num_groups(); ++g) {
      const int size = config_.topology.group_sizes[static_cast<size_t>(g)];
      const int count = std::min(config_.crash_nodes_per_group, size - 1);
      for (int k = 0; k < count; ++k) {
        MASSBFT_RETURN_IF_ERROR(
            KillNode(NodeId{static_cast<uint16_t>(g),
                            static_cast<uint16_t>(size - 1 - k)}));
      }
    }
    if (config_.restart_at_s > config_.crash_at_s) {
      sleep_until_offset(std::min(config_.restart_at_s,
                                  config_.duration_seconds));
      // Copy under the lock: a stats handler could be inside KillNode
      // growing killed_ while we iterate (RestartNode re-acquires).
      std::vector<NodeId> to_restart;
      {
        MutexLock lock(&introspection_mu_);
        to_restart = killed_;
      }
      for (NodeId id : to_restart) MASSBFT_RETURN_IF_ERROR(RestartNode(id));
    }
  }
  sleep_until_offset(config_.duration_seconds);
  return Status::OK();
}

bool RealCluster::DrainUntilStable() {
  // A VTS cluster never fully quiesces: the tail entries of each group can
  // only execute once other groups' clocks pass them, so idle leaders keep
  // proposing *empty* entries (the liveness tick). Empty entries do not
  // touch the store, so convergence is judged on state fingerprints: once
  // every replica holds the same fingerprint and no new transactions are
  // committing, all client work has been executed everywhere.
  const auto deadline =
      Clock::now() +
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(config_.drain_timeout_seconds));
  uint64_t prev_committed = 0;
  bool had_stable_round = false;
  while (Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    bool all_equal = true;
    bool have_first = false;
    uint64_t first = 0;
    for (auto& rt : runtimes_) {
      if (!EligibleForAgreement(*rt)) continue;
      uint64_t fp = rt->Call(
          [](GroupNode& n) { return n.store().StateFingerprint(); });
      if (!have_first) {
        first = fp;
        have_first = true;
      } else {
        all_equal = all_equal && fp == first;
      }
    }
    // Relaxed: a monotone progress probe — a stale read only costs one
    // extra settle round.
    uint64_t committed = committed_.load(std::memory_order_relaxed);
    if (all_equal && committed == prev_committed) {
      if (had_stable_round) return true;
      had_stable_round = true;
    } else {
      had_stable_round = false;
    }
    prev_committed = committed;
  }
  return false;
}

Status RealCluster::StartStatsServer() {
  stats_server_.RegisterHandler("/metrics", [this] {
    obs::StatsServer::Response response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = MetricsText();
    return response;
  });
  stats_server_.RegisterHandler("/health", [this] {
    obs::StatsServer::Response response;
    response.content_type = "application/json";
    response.body = HealthJson();
    return response;
  });
  return stats_server_.Start(static_cast<uint16_t>(config_.stats_port));
}

std::string RealCluster::MetricsText() {
  std::vector<obs::LabeledSnapshot> snapshots;
  snapshots.reserve(runtimes_.size());
  {
    MutexLock lock(&introspection_mu_);
    for (auto& rt : runtimes_) {
      NodeRuntime* raw = rt.get();
      obs::LabeledSnapshot labeled;
      labeled.labels = "node=\"" + NodeName(raw->id()) + "\"";
      // Snapshot on the node's own event loop (or inline when stopped):
      // the registry maps are only ever touched single-threaded there.
      labeled.snapshot = raw->Call(
          [raw](GroupNode&) { return raw->telemetry().registry().Snapshot(); });
      snapshots.push_back(std::move(labeled));
    }
  }
  std::ostringstream out;
  obs::WritePrometheusText(snapshots, out);
  return out.str();
}

std::string RealCluster::HealthJson() {
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.BeginObject();
  w.Member("mode", "real");
  w.Member("committed_txns", committed_.load(std::memory_order_relaxed));
  {
    MutexLock lock(&introspection_mu_);
    w.Member("nodes_killed", nodes_killed_);
  }
  uint64_t faults = 0;
  for (const FaultInjectingTransport* injector : fault_transports_)
    faults += injector->fault_stats().total();
  w.Member("faults_injected", faults);
  w.Key("nodes");
  w.BeginArray();
  {
    MutexLock lock(&introspection_mu_);
    for (auto& rt : runtimes_) {
      NodeRuntime* raw = rt.get();
      const bool running = raw->running();
      w.BeginObject();
      w.Member("node", NodeName(raw->id()));
      w.Member("running", running);
      w.Member("queue_depth", static_cast<uint64_t>(raw->queue_depth()));
      struct Progress {
        uint64_t executed;
        bool rejoined;
      };
      // One inspection hop per node; a stopped runtime answers inline.
      const Progress progress = raw->Call([](GroupNode& n) {
        return Progress{n.executed_entries(), n.rejoined()};
      });
      w.Member("executed_entries", progress.executed);
      w.Member("rejoined", progress.rejoined);
      const Transport::Stats stats = raw->transport().stats();
      w.Member("reconnects", stats.reconnects);
      w.Member("send_errors", stats.send_errors);
      w.Member("decode_errors", stats.decode_errors);
      w.Member("backpressure_drops", stats.dropped_backpressure);
      w.Member("send_syscalls", stats.send_syscalls);
      w.Member("recv_syscalls", stats.recv_syscalls);
      w.EndObject();
    }
  }
  w.EndArray();
  w.EndObject();
  out << "\n";
  return out.str();
}

void RealCluster::DumpFlightRecorders(const char* why) {
  std::cerr << "=== flight recorder dump (" << why << ") ===\n";
  for (auto& rt : runtimes_)
    rt->telemetry().flight().Dump(std::cerr, "node " + NodeName(rt->id()));
}

void RealCluster::SamplerLoop(Clock::time_point start) {
  const double interval_s =
      config_.sample_interval_s > 0 ? config_.sample_interval_s : 0.5;
  uint64_t prev_committed = 0;
  uint64_t prev_latency_us = 0;
  for (int tick = 1; sampling_.load(std::memory_order_relaxed); ++tick) {
    const auto bucket_end =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(interval_s * tick));
    while (sampling_.load(std::memory_order_relaxed) &&
           Clock::now() < bucket_end) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (!sampling_.load(std::memory_order_relaxed)) return;
    const uint64_t committed = committed_.load(std::memory_order_relaxed);
    const uint64_t latency_us = latency_sum_us_.load(std::memory_order_relaxed);
    const uint64_t delta = committed - prev_committed;
    MetricsCollector::TimelinePoint point;
    point.time_s = interval_s * tick;
    point.tps = static_cast<double>(delta) / interval_s;
    point.mean_latency_ms =
        delta == 0 ? 0
                   : static_cast<double>(latency_us - prev_latency_us) /
                         1000.0 / static_cast<double>(delta);
    timeline_.push_back(point);
    prev_committed = committed;
    prev_latency_us = latency_us;
  }
}

Status RealCluster::WriteMergedTrace(const std::string& path) const {
  obs::ClusterTraceMerger merger;
  merger.set_unix_anchor_ns(obs::TraceClock::UnixAnchorNs());
  for (const auto& rt : runtimes_) {
    merger.AddNode(rt->id().Packed(), "node " + NodeName(rt->id()),
                   rt->telemetry().trace_anchor_ns(), rt->telemetry().trace());
  }
  return merger.WriteChromeTraceFile(path);
}

Result<ExperimentResult> RealCluster::Run() {
  if (!setup_done_) return Status::FailedPrecondition("Setup() not called");
  const auto wall_start = Clock::now();

  for (auto& rt : runtimes_) MASSBFT_RETURN_IF_ERROR(rt->Start());

  // Timeline sampler: one thread turning the shared commit counters into
  // per-bucket throughput/latency points (ExperimentResult::timeline).
  // Relaxed: std::thread creation below happens-before the sampler's
  // first load of the flag.
  sampling_.store(true, std::memory_order_relaxed);
  sampler_ = std::thread([this, wall_start] { SamplerLoop(wall_start); });
  // Stops the sampler and (on the failure paths) preserves the evidence:
  // flight recorders to stderr, merged trace to the configured path.
  auto finish_sampling = [this] {
    // Relaxed: the join provides the ordering edge (see ~RealCluster).
    sampling_.store(false, std::memory_order_relaxed);
    if (sampler_.joinable()) sampler_.join();
  };
  auto fail = [&](const char* why, Status status) -> Status {
    finish_sampling();
    DumpFlightRecorders(why);
    if (!config_.trace_path.empty()) (void)WriteMergedTrace(config_.trace_path);
    MutexLock lock(&introspection_mu_);
    for (auto& rt : runtimes_) rt->Stop();
    return status;
  };

  // Relaxed: commit callbacks only read issuing_ to decide whether to
  // resubmit; a stale true issues at most one extra transaction.
  issuing_.store(true, std::memory_order_relaxed);
  for (size_t i = 0; i < clients_.size(); ++i) SubmitNext(i);

  // Sleep out the issuing window, executing the crash/restart schedule at
  // its configured offsets.
  MASSBFT_RETURN_IF_ERROR(IssueWindow());
  issuing_.store(false, std::memory_order_relaxed);
  const double issue_window_s =
      std::chrono::duration<double>(Clock::now() - wall_start).count();

  // Let in-flight entries commit and execute everywhere. The VTS liveness
  // tick keeps advancing the global order even with no new client load.
  if (!DrainUntilStable()) {
    return fail("drain timeout",
                Status::Internal("cluster did not reach a stable agreed "
                                 "state within the drain timeout"));
  }
  finish_sampling();

  // Collect per-node state through each node's own event loop, then stop.
  // Killed and rejoined nodes sit out the agreement check (same rule as
  // Experiment::CheckAgreement).
  std::vector<NodeId> agreed;
  std::vector<uint64_t> fingerprints;
  std::vector<std::vector<std::pair<uint16_t, uint64_t>>> logs;
  for (auto& rt : runtimes_) {
    if (!EligibleForAgreement(*rt)) continue;
    agreed.push_back(rt->id());
    fingerprints.push_back(
        rt->Call([](GroupNode& n) { return n.store().StateFingerprint(); }));
    logs.push_back(rt->Call([](GroupNode& n) { return n.execution_log(); }));
  }
  {
    MutexLock lock(&introspection_mu_);
    for (auto& rt : runtimes_) rt->Stop();
  }

  if (fingerprints.empty())
    return fail("no surviving node",
                Status::Internal("no continuously-correct node survived to "
                                 "the agreement check"));

  // Agreement: identical fingerprints, and identical execution order over
  // the common prefix (lengths differ only by the still-moving empty-entry
  // tail; see DrainUntilStable).
  for (size_t i = 1; i < fingerprints.size(); ++i) {
    if (fingerprints[i] != fingerprints[0])
      return fail("fingerprint divergence",
                  Status::Internal("state fingerprint divergence at node " +
                                   NodeName(agreed[i])));
    size_t limit = std::min(logs[i].size(), logs[0].size());
    for (size_t k = 0; k < limit; ++k) {
      if (logs[i][k] != logs[0][k])
        return fail("execution order divergence",
                    Status::Internal("execution order divergence at node " +
                                     NodeName(agreed[i]) + " position " +
                                     std::to_string(k)));
    }
  }

  ExperimentResult result;
  result.mode = "real";
  result.crypto_mode = registry_->scheme_name();
  result.verify_batch_ratio = registry_->verify_batch_ratio();
  // Relaxed: every runtime has been stopped (threads joined), so all
  // commit increments already happened-before this read.
  result.committed_txns = committed_.load(std::memory_order_relaxed);
  result.throughput_tps =
      static_cast<double>(result.committed_txns) / issue_window_s;
  std::vector<double> all_latencies;
  for (const auto& group_samples : latencies_)
    all_latencies.insert(all_latencies.end(), group_samples.begin(),
                         group_samples.end());
  std::sort(all_latencies.begin(), all_latencies.end());
  if (!all_latencies.empty()) {
    double sum = 0;
    for (double v : all_latencies) sum += v;
    result.mean_latency_ms = sum / static_cast<double>(all_latencies.size());
    result.p50_latency_ms = InterpolatedPercentile(all_latencies, 0.5);
    result.p99_latency_ms = InterpolatedPercentile(all_latencies, 0.99);
  }
  for (auto& rt : runtimes_) {
    result.total_wan_bytes += rt->network().wan_bytes_sent();
    result.total_lan_bytes += rt->network().lan_bytes_sent();
    // Transport counters survive Stop(); aggregate cluster-wide.
    const Transport::Stats stats = rt->transport().stats();
    result.net_send_errors += stats.send_errors;
    result.net_decode_errors += stats.decode_errors;
    result.net_reconnects += stats.reconnects;
    result.net_dropped_backpressure += stats.dropped_backpressure;
    result.net_send_syscalls += stats.send_syscalls;
    result.net_recv_syscalls += stats.recv_syscalls;
  }
  for (const FaultInjectingTransport* injector : fault_transports_)
    result.faults_injected += injector->fault_stats().total();
  {
    MutexLock lock(&introspection_mu_);
    result.nodes_killed = nodes_killed_;
  }
  if (!logs.empty()) result.entries_proposed = logs[0].size();
  result.timeline = timeline_;
  result.wall_ms = MsSince(wall_start);
  if (result.entries_proposed > 0)
    result.wan_bytes_per_entry =
        static_cast<double>(result.total_wan_bytes) /
        static_cast<double>(result.entries_proposed);
  if (!config_.trace_path.empty())
    MASSBFT_RETURN_IF_ERROR(WriteMergedTrace(config_.trace_path));
  return result;
}

}  // namespace massbft
