#include "db/kv_store.h"

#include <algorithm>

namespace massbft {

namespace {
uint64_t g_hash_seed = 0;
}  // namespace

void KvStore::SetHashSeedForTest(uint64_t seed) { g_hash_seed = seed; }

uint64_t KvStore::hash_seed() { return g_hash_seed; }

std::vector<std::pair<std::string, Bytes>> KvStore::Snapshot() const {
  std::vector<std::pair<std::string, Bytes>> entries;
  entries.reserve(map_.size());
  // Hash-order walk is safe here because the result is sorted before it
  // escapes.
  // lint: unordered-iter-ok(sorted below before becoming observable)
  for (const auto& [key, value] : map_) entries.emplace_back(key, value);
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

uint64_t KvStore::StateFingerprint() const {
  uint64_t fp = 0;
  // lint: unordered-iter-ok(XOR fold is commutative, order-independent)
  for (const auto& [key, value] : map_) {
    uint64_t h = std::hash<std::string_view>{}(key);
    for (uint8_t b : value) h = h * 1099511628211ULL + b;
    fp ^= h;
  }
  return fp;
}

std::optional<Bytes> KvStore::Get(std::string_view key) const {
  auto it = map_.find(key);
  if (it != map_.end()) return it->second;
  if (default_fn_) return default_fn_(key);
  return std::nullopt;
}

void KvStore::Put(std::string key, Bytes value) {
  map_[std::move(key)] = std::move(value);
}

}  // namespace massbft
