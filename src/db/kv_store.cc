#include "db/kv_store.h"

namespace massbft {

std::optional<Bytes> KvStore::Get(std::string_view key) const {
  auto it = map_.find(key);
  if (it != map_.end()) return it->second;
  if (default_fn_) return default_fn_(key);
  return std::nullopt;
}

void KvStore::Put(std::string key, Bytes value) {
  map_[std::move(key)] = std::move(value);
}

}  // namespace massbft
