#ifndef MASSBFT_DB_KV_STORE_H_
#define MASSBFT_DB_KV_STORE_H_

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/bytes.h"

namespace massbft {

/// In-memory key-value table backing transaction execution (the paper uses
/// in-memory hash tables for database state, Section VI).
///
/// Initial state is *lazy*: a workload registers a default-value function
/// that synthesizes the pristine value of any never-written key (e.g. the
/// initial YCSB row or SmallBank balance). This keeps a simulated cluster's
/// memory proportional to the touched working set instead of the full
/// 1M-row loaded table, while remaining semantically identical to eager
/// loading — the function is deterministic in the key.
class KvStore {
 public:
  using DefaultValueFn =
      std::function<std::optional<Bytes>(std::string_view key)>;

  KvStore() = default;

  /// Registers the lazy initial-state synthesizer.
  void SetDefaultValueFn(DefaultValueFn fn) { default_fn_ = std::move(fn); }

  /// Returns the current value: a written value if present, otherwise the
  /// synthesized initial value, otherwise nullopt.
  std::optional<Bytes> Get(std::string_view key) const;

  void Put(std::string key, Bytes value);

  /// Number of materialized (written) keys.
  size_t materialized_size() const { return map_.size(); }

  /// Drops all written state (back to pristine initial state).
  void Reset() { map_.clear(); }

 private:
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, Bytes, StringHash, std::equal_to<>> map_;
  DefaultValueFn default_fn_;
};

}  // namespace massbft

#endif  // MASSBFT_DB_KV_STORE_H_
