#ifndef MASSBFT_DB_KV_STORE_H_
#define MASSBFT_DB_KV_STORE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bytes.h"

namespace massbft {

/// In-memory key-value table backing transaction execution (the paper uses
/// in-memory hash tables for database state, Section VI).
///
/// Initial state is *lazy*: a workload registers a default-value function
/// that synthesizes the pristine value of any never-written key (e.g. the
/// initial YCSB row or SmallBank balance). This keeps a simulated cluster's
/// memory proportional to the touched working set instead of the full
/// 1M-row loaded table, while remaining semantically identical to eager
/// loading — the function is deterministic in the key.
class KvStore {
 public:
  using DefaultValueFn =
      std::function<std::optional<Bytes>(std::string_view key)>;

  KvStore() = default;

  /// Registers the lazy initial-state synthesizer.
  void SetDefaultValueFn(DefaultValueFn fn) { default_fn_ = std::move(fn); }

  /// Returns the current value: a written value if present, otherwise the
  /// synthesized initial value, otherwise nullopt.
  std::optional<Bytes> Get(std::string_view key) const;

  void Put(std::string key, Bytes value);

  /// Number of materialized (written) keys.
  size_t materialized_size() const { return map_.size(); }

  /// Drops all written state (back to pristine initial state).
  void Reset() { map_.clear(); }

  /// All materialized (written) entries in ascending key order. Any
  /// result-observable dump of store state (agreement digests, experiment
  /// JSON, debugging snapshots) must go through this instead of walking the
  /// hash map, whose order depends on the hash seed (DESIGN.md §11, D2).
  [[nodiscard]] std::vector<std::pair<std::string, Bytes>> Snapshot() const;

  /// Order-independent digest input: XOR/sum-folds per-entry hashes, so it
  /// is identical for any iteration order. Used by tests to check that two
  /// stores hold the same state without materializing a snapshot.
  [[nodiscard]] uint64_t StateFingerprint() const;

  /// Test hook: perturbs the bucket hash for all KvStores constructed
  /// afterwards, emulating a different std::hash implementation/seed.
  /// Deterministic results must not change under any seed (regression test
  /// for hash-order leaking into experiment output).
  static void SetHashSeedForTest(uint64_t seed);
  static uint64_t hash_seed();

 private:
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      // SplitMix64-style avalanche of the seed keeps bucket assignment
      // well-distributed for any test seed.
      uint64_t h = std::hash<std::string_view>{}(s) + hash_seed();
      h ^= h >> 30;
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 27;
      return static_cast<size_t>(h);
    }
  };
  std::unordered_map<std::string, Bytes, StringHash, std::equal_to<>> map_;
  DefaultValueFn default_fn_;
};

}  // namespace massbft

#endif  // MASSBFT_DB_KV_STORE_H_
