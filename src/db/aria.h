#ifndef MASSBFT_DB_ARIA_H_
#define MASSBFT_DB_ARIA_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "db/kv_store.h"
#include "proto/entry.h"

namespace massbft {

/// Read/write-set recording execution context handed to stored procedures.
/// During the Aria execution phase all reads observe the batch-start
/// snapshot; writes are buffered and only installed for transactions that
/// survive conflict detection.
class TxnContext {
 public:
  explicit TxnContext(const KvStore* store) : store_(store) {}

  /// Snapshot read; records the key in the read set.
  std::optional<Bytes> Get(const std::string& key);

  /// Buffered write; records the key in the write set.
  void Put(const std::string& key, Bytes value);

  /// Business abort (e.g. invalid account): the transaction completes
  /// deterministically with no effects but is NOT retried.
  void AbortLogic() { logic_aborted_ = true; }
  bool logic_aborted() const { return logic_aborted_; }

  const std::set<std::string>& read_set() const { return read_set_; }
  const std::map<std::string, Bytes>& writes() const { return writes_; }

 private:
  const KvStore* store_;
  std::set<std::string> read_set_;
  std::map<std::string, Bytes> writes_;
  bool logic_aborted_ = false;
};

/// A deterministic stored procedure (the decoded form of a transaction
/// payload). Procedures must be pure functions of the context reads.
class Procedure {
 public:
  virtual ~Procedure() = default;
  virtual Status Execute(TxnContext* ctx) = 0;
};

/// Decodes a transaction payload into an executable procedure. Supplied by
/// the workload (YCSB / SmallBank / TPC-C).
using ProcedureFactory =
    std::function<Result<std::unique_ptr<Procedure>>(const Transaction&)>;

/// Outcome of one Aria batch.
struct AriaBatchResult {
  int committed = 0;
  /// Conflict-aborted transaction indices, to be re-queued into the next
  /// batch by the caller (deterministic retry).
  std::vector<size_t> conflict_aborts;
  /// Business aborts (completed, no effects, not retried).
  int logic_aborts = 0;
};

/// Aria-style deterministic batch execution (Lu et al., VLDB'20; the
/// paper's execution layer): every transaction in a batch executes against
/// the same snapshot, then reservation-based conflict detection decides
/// commits, and the survivors' writes are installed. Identical inputs
/// yield identical state on every node, which is what lets all replicas
/// execute independently.
///
/// With Aria's deterministic reordering (the default, as in the paper's
/// prototype), a transaction aborts iff
///     WAW  (it writes a key a lower-indexed transaction writes), or
///     RAW ∧ WAR  (it both read an earlier writer's key and wrote an
///                 earlier reader's key — unreorderable),
/// so blind writes and read-only transactions never conflict-abort.
/// Without reordering the classic rule RAW ∨ WAW applies.
class AriaExecutor {
 public:
  AriaExecutor(KvStore* store, ProcedureFactory factory,
               bool reordering = true);

  /// Executes `txns` as one batch. Malformed payloads count as logic
  /// aborts.
  AriaBatchResult ExecuteBatch(const std::vector<Transaction>& txns);

 private:
  KvStore* store_;
  ProcedureFactory factory_;
  bool reordering_;
};

}  // namespace massbft

#endif  // MASSBFT_DB_ARIA_H_
