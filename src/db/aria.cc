#include "db/aria.h"

#include <utility>

namespace massbft {

std::optional<Bytes> TxnContext::Get(const std::string& key) {
  read_set_.insert(key);
  // Read-your-own-writes within the transaction.
  auto it = writes_.find(key);
  if (it != writes_.end()) return it->second;
  return store_->Get(key);
}

void TxnContext::Put(const std::string& key, Bytes value) {
  writes_[key] = std::move(value);
}

AriaExecutor::AriaExecutor(KvStore* store, ProcedureFactory factory,
                           bool reordering)
    : store_(store), factory_(std::move(factory)), reordering_(reordering) {}

AriaBatchResult AriaExecutor::ExecuteBatch(
    const std::vector<Transaction>& txns) {
  AriaBatchResult result;
  const size_t n = txns.size();

  // Phase 1: execute everything against the batch-start snapshot.
  std::vector<TxnContext> contexts;
  contexts.reserve(n);
  std::vector<bool> ok(n, false);
  for (size_t i = 0; i < n; ++i) {
    contexts.emplace_back(store_);
    auto proc = factory_(txns[i]);
    if (!proc.ok()) {
      contexts.back().AbortLogic();
      continue;
    }
    Status s = (*proc)->Execute(&contexts.back());
    ok[i] = s.ok() && !contexts.back().logic_aborted();
  }

  // Phase 2: reservations — the lowest transaction index wins each key.
  std::map<std::string, size_t> write_reservation;
  std::map<std::string, size_t> read_reservation;
  for (size_t i = 0; i < n; ++i) {
    if (!ok[i]) continue;
    for (const auto& [key, value] : contexts[i].writes()) {
      auto it = write_reservation.find(key);
      if (it == write_reservation.end() || it->second > i)
        write_reservation[key] = i;
    }
    for (const auto& key : contexts[i].read_set()) {
      auto it = read_reservation.find(key);
      if (it == read_reservation.end() || it->second > i)
        read_reservation[key] = i;
    }
  }

  // Phase 3: commit decision.
  for (size_t i = 0; i < n; ++i) {
    if (!ok[i]) {
      ++result.logic_aborts;
      continue;
    }
    bool waw = false, raw = false, war = false;
    for (const auto& [key, value] : contexts[i].writes()) {
      auto w = write_reservation.find(key);
      if (w != write_reservation.end() && w->second < i) waw = true;
      auto r = read_reservation.find(key);
      if (r != read_reservation.end() && r->second < i) war = true;
      if (waw) break;
    }
    if (!waw) {
      for (const auto& key : contexts[i].read_set()) {
        auto w = write_reservation.find(key);
        if (w != write_reservation.end() && w->second < i) {
          raw = true;
          break;
        }
      }
    }
    bool conflict = reordering_ ? (waw || (raw && war)) : (waw || raw);
    if (conflict) {
      result.conflict_aborts.push_back(i);
      continue;
    }
    // Install writes. With reordering, a reorderable WAR-only writer is
    // logically ordered after the reader but may share a key with NO
    // earlier writer (WAW aborted those), so last-writer-wins within the
    // batch cannot occur: each committed key has exactly one writer.
    for (const auto& [key, value] : contexts[i].writes())
      store_->Put(key, value);
    ++result.committed;
  }
  return result;
}

}  // namespace massbft
