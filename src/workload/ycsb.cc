#include "workload/ycsb.h"

#include <utility>

#include "common/codec.h"

namespace massbft {

namespace {

constexpr uint8_t kOpRead = 1;
constexpr uint8_t kOpUpdate = 2;
constexpr size_t kPayloadBytesA = 201;  // Paper's average txn sizes.
constexpr size_t kPayloadBytesB = 150;

class YcsbProcedure final : public Procedure {
 public:
  YcsbProcedure(uint8_t op, uint64_t row, uint8_t col, Bytes value)
      : op_(op), row_(row), col_(col), value_(std::move(value)) {}

  Status Execute(TxnContext* ctx) override {
    std::string key = YcsbWorkload::RowColKey(row_, col_);
    if (op_ == kOpRead) {
      if (!ctx->Get(key).has_value()) ctx->AbortLogic();
    } else {
      ctx->Put(key, value_);
    }
    return Status::OK();
  }

 private:
  uint8_t op_;
  uint64_t row_;
  uint8_t col_;
  Bytes value_;
};

}  // namespace

YcsbWorkload::YcsbWorkload(bool variant_a, uint64_t num_rows)
    : variant_a_(variant_a), num_rows_(num_rows), zipf_(num_rows, 0.99) {}

std::string YcsbWorkload::RowColKey(uint64_t row, int col) {
  std::string key = "y:";
  key += std::to_string(row);
  key += ':';
  key += std::to_string(col);
  return key;
}

void YcsbWorkload::InstallInitialState(KvStore* store) const {
  uint64_t num_rows = num_rows_;
  store->SetDefaultValueFn(
      [num_rows](std::string_view key) -> std::optional<Bytes> {
        if (key.size() < 2 || key[0] != 'y') return std::nullopt;
        // Deterministic pristine 100-byte row-column value.
        Bytes value(kValueBytes, 0);
        for (size_t i = 0; i < value.size(); ++i)
          value[i] = static_cast<uint8_t>(key[i % key.size()] + i);
        return value;
      });
}

Bytes YcsbWorkload::NextPayload(Rng& rng) {
  uint64_t row = zipf_.Next(rng);
  uint8_t col = static_cast<uint8_t>(rng.NextBelow(kNumColumns));
  double write_fraction = variant_a_ ? 0.5 : 0.05;
  bool is_update = rng.NextBool(write_fraction);

  BinaryWriter w(256);
  w.PutU8(is_update ? kOpUpdate : kOpRead);
  w.PutU64(row);
  w.PutU8(col);
  if (is_update) {
    Bytes value(kValueBytes);
    for (auto& b : value) b = static_cast<uint8_t>(rng.NextBelow(256));
    w.PutBytes(value);
  }
  Bytes payload = w.Release();
  // Pad to the paper's average size so WAN accounting matches.
  payload.resize(std::max(payload.size(),
                          variant_a_ ? kPayloadBytesA : kPayloadBytesB),
                 0);
  return payload;
}

Result<std::unique_ptr<Procedure>> YcsbWorkload::Parse(
    const Bytes& payload) const {
  BinaryReader r(payload);
  uint8_t op = 0;
  uint64_t row = 0;
  uint8_t col = 0;
  MASSBFT_RETURN_IF_ERROR(r.GetU8(&op));
  MASSBFT_RETURN_IF_ERROR(r.GetU64(&row));
  MASSBFT_RETURN_IF_ERROR(r.GetU8(&col));
  if (op != kOpRead && op != kOpUpdate)
    return Status::Corruption("bad ycsb opcode");
  if (row >= num_rows_ || col >= kNumColumns)
    return Status::Corruption("ycsb key out of range");
  Bytes value;
  if (op == kOpUpdate) MASSBFT_RETURN_IF_ERROR(r.GetBytes(&value));
  return std::unique_ptr<Procedure>(
      std::make_unique<YcsbProcedure>(op, row, col, std::move(value)));
}

}  // namespace massbft
