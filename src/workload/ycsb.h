#ifndef MASSBFT_WORKLOAD_YCSB_H_
#define MASSBFT_WORKLOAD_YCSB_H_

#include <memory>

#include "common/zipf.h"
#include "workload/workload.h"

namespace massbft {

/// YCSB key-value workload (paper Section VI): one table of `num_rows`
/// rows x 10 columns x 100 B, Zipfian access with theta 0.99.
/// YCSB-A = 50% read / 50% update; YCSB-B = 95% read / 5% update.
class YcsbWorkload final : public Workload {
 public:
  static constexpr int kNumColumns = 10;
  static constexpr int kValueBytes = 100;

  YcsbWorkload(bool variant_a, uint64_t num_rows);

  WorkloadKind kind() const override {
    return variant_a_ ? WorkloadKind::kYcsbA : WorkloadKind::kYcsbB;
  }
  const char* name() const override { return variant_a_ ? "ycsb-a" : "ycsb-b"; }

  void InstallInitialState(KvStore* store) const override;
  Bytes NextPayload(Rng& rng) override;
  [[nodiscard]] Result<std::unique_ptr<Procedure>> Parse(
      const Bytes& payload) const override;

  /// Row/column key encoding (exposed for tests).
  static std::string RowColKey(uint64_t row, int col);

 private:
  bool variant_a_;
  uint64_t num_rows_;
  ZipfGenerator zipf_;
};

}  // namespace massbft

#endif  // MASSBFT_WORKLOAD_YCSB_H_
