#ifndef MASSBFT_WORKLOAD_SMALLBANK_H_
#define MASSBFT_WORKLOAD_SMALLBANK_H_

#include <memory>

#include "workload/workload.h"

namespace massbft {

/// SmallBank banking workload (paper Section VI): `num_accounts` accounts
/// with savings and checking balances, uniform access, six classic
/// procedures (Balance, DepositChecking, TransactSavings, Amalgamate,
/// WriteCheck, SendPayment) in equal proportions. Balances are integer
/// cents.
class SmallBankWorkload final : public Workload {
 public:
  explicit SmallBankWorkload(uint64_t num_accounts);

  WorkloadKind kind() const override { return WorkloadKind::kSmallBank; }
  const char* name() const override { return "smallbank"; }

  void InstallInitialState(KvStore* store) const override;
  Bytes NextPayload(Rng& rng) override;
  [[nodiscard]] Result<std::unique_ptr<Procedure>> Parse(
      const Bytes& payload) const override;

  static std::string SavingsKey(uint64_t account);
  static std::string CheckingKey(uint64_t account);
  /// Initial per-account balance in cents (deterministic).
  static int64_t InitialBalance(uint64_t account);

 private:
  uint64_t num_accounts_;
};

}  // namespace massbft

#endif  // MASSBFT_WORKLOAD_SMALLBANK_H_
