#include "workload/smallbank.h"

#include <utility>

#include "common/codec.h"

namespace massbft {

namespace {

constexpr size_t kPayloadBytes = 108;  // Paper's average SmallBank txn size.

enum SbOp : uint8_t {
  kBalance = 1,
  kDepositChecking = 2,
  kTransactSavings = 3,
  kAmalgamate = 4,
  kWriteCheck = 5,
  kSendPayment = 6,
};

int64_t ReadBalance(TxnContext* ctx, const std::string& key) {
  auto v = ctx->Get(key);
  if (!v.has_value() || v->size() != 8) return 0;
  int64_t balance = 0;
  for (int i = 0; i < 8; ++i)
    balance |= static_cast<int64_t>((*v)[i]) << (8 * i);
  return balance;
}

void WriteBalance(TxnContext* ctx, const std::string& key, int64_t balance) {
  Bytes v(8);
  for (int i = 0; i < 8; ++i)
    v[i] = static_cast<uint8_t>(static_cast<uint64_t>(balance) >> (8 * i));
  ctx->Put(key, std::move(v));
}

class SmallBankProcedure final : public Procedure {
 public:
  SmallBankProcedure(uint8_t op, uint64_t a1, uint64_t a2, int64_t amount)
      : op_(op), a1_(a1), a2_(a2), amount_(amount) {}

  Status Execute(TxnContext* ctx) override {
    std::string s1 = SmallBankWorkload::SavingsKey(a1_);
    std::string c1 = SmallBankWorkload::CheckingKey(a1_);
    switch (op_) {
      case kBalance: {
        (void)ReadBalance(ctx, s1);
        (void)ReadBalance(ctx, c1);
        break;
      }
      case kDepositChecking: {
        WriteBalance(ctx, c1, ReadBalance(ctx, c1) + amount_);
        break;
      }
      case kTransactSavings: {
        int64_t balance = ReadBalance(ctx, s1) + amount_;
        if (balance < 0) {
          ctx->AbortLogic();
          break;
        }
        WriteBalance(ctx, s1, balance);
        break;
      }
      case kAmalgamate: {
        std::string c2 = SmallBankWorkload::CheckingKey(a2_);
        int64_t total = ReadBalance(ctx, s1) + ReadBalance(ctx, c1);
        WriteBalance(ctx, s1, 0);
        WriteBalance(ctx, c1, 0);
        WriteBalance(ctx, c2, ReadBalance(ctx, c2) + total);
        break;
      }
      case kWriteCheck: {
        int64_t total = ReadBalance(ctx, s1) + ReadBalance(ctx, c1);
        // Overdraft penalty of $1 when the check exceeds the funds.
        int64_t deducted = amount_ + (total < amount_ ? 100 : 0);
        WriteBalance(ctx, c1, ReadBalance(ctx, c1) - deducted);
        break;
      }
      case kSendPayment: {
        std::string c2 = SmallBankWorkload::CheckingKey(a2_);
        int64_t from = ReadBalance(ctx, c1);
        if (from < amount_) {
          ctx->AbortLogic();
          break;
        }
        WriteBalance(ctx, c1, from - amount_);
        WriteBalance(ctx, c2, ReadBalance(ctx, c2) + amount_);
        break;
      }
      default:
        return Status::Corruption("bad smallbank opcode");
    }
    return Status::OK();
  }

 private:
  uint8_t op_;
  uint64_t a1_;
  uint64_t a2_;
  int64_t amount_;
};

}  // namespace

SmallBankWorkload::SmallBankWorkload(uint64_t num_accounts)
    : num_accounts_(num_accounts) {}

std::string SmallBankWorkload::SavingsKey(uint64_t account) {
  return "ss:" + std::to_string(account);
}
std::string SmallBankWorkload::CheckingKey(uint64_t account) {
  return "sc:" + std::to_string(account);
}

int64_t SmallBankWorkload::InitialBalance(uint64_t account) {
  // $100 .. $1123.50 deterministic in the account id, in cents.
  return 10000 + static_cast<int64_t>((account * 2654435761ULL) % 102351);
}

void SmallBankWorkload::InstallInitialState(KvStore* store) const {
  store->SetDefaultValueFn(
      [](std::string_view key) -> std::optional<Bytes> {
        if (key.size() < 3 || key[0] != 's' ||
            (key[1] != 's' && key[1] != 'c'))
          return std::nullopt;
        uint64_t account = 0;
        for (size_t i = 3; i < key.size(); ++i)
          account = account * 10 + static_cast<uint64_t>(key[i] - '0');
        int64_t balance = InitialBalance(account);
        Bytes v(8);
        for (int i = 0; i < 8; ++i)
          v[i] =
              static_cast<uint8_t>(static_cast<uint64_t>(balance) >> (8 * i));
        return v;
      });
}

Bytes SmallBankWorkload::NextPayload(Rng& rng) {
  uint8_t op = static_cast<uint8_t>(1 + rng.NextBelow(6));
  uint64_t a1 = rng.NextBelow(num_accounts_);
  uint64_t a2 = rng.NextBelow(num_accounts_);
  if (a2 == a1) a2 = (a1 + 1) % num_accounts_;
  int64_t amount = rng.NextInRange(1, 10000);  // Up to $100 in cents.

  BinaryWriter w(32);
  w.PutU8(op);
  w.PutU64(a1);
  w.PutU64(a2);
  w.PutI64(amount);
  Bytes payload = w.Release();
  payload.resize(std::max(payload.size(), kPayloadBytes), 0);
  return payload;
}

Result<std::unique_ptr<Procedure>> SmallBankWorkload::Parse(
    const Bytes& payload) const {
  BinaryReader r(payload);
  uint8_t op = 0;
  uint64_t a1 = 0, a2 = 0;
  int64_t amount = 0;
  MASSBFT_RETURN_IF_ERROR(r.GetU8(&op));
  MASSBFT_RETURN_IF_ERROR(r.GetU64(&a1));
  MASSBFT_RETURN_IF_ERROR(r.GetU64(&a2));
  MASSBFT_RETURN_IF_ERROR(r.GetI64(&amount));
  if (op < kBalance || op > kSendPayment)
    return Status::Corruption("bad smallbank opcode");
  if (a1 >= num_accounts_ || a2 >= num_accounts_)
    return Status::Corruption("smallbank account out of range");
  return std::unique_ptr<Procedure>(
      std::make_unique<SmallBankProcedure>(op, a1, a2, amount));
}

}  // namespace massbft
