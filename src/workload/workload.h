#ifndef MASSBFT_WORKLOAD_WORKLOAD_H_
#define MASSBFT_WORKLOAD_WORKLOAD_H_

#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "db/aria.h"
#include "db/kv_store.h"

namespace massbft {

/// The paper's three benchmark workloads (Section VI).
enum class WorkloadKind {
  kYcsbA,       // 50% read / 50% update, Zipf 0.99, 1M rows x 10 cols.
  kYcsbB,       // 95% read / 5% update.
  kSmallBank,   // 1M accounts, uniform, six classic procedures.
  kTpcc,        // 50% NewOrder + 50% Payment, 128 warehouses.
};

const char* WorkloadKindName(WorkloadKind kind);

/// A benchmark workload: generates transaction payloads on the client side
/// and decodes/executes them on the replica side. Payloads are padded to
/// the paper's reported average transaction sizes (YCSB-A 201 B, YCSB-B
/// 150 B, SmallBank 108 B, TPC-C 232 B) so network accounting matches.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual WorkloadKind kind() const = 0;
  virtual const char* name() const = 0;

  /// Registers the deterministic lazy initial state on `store` (DESIGN.md:
  /// values of never-written keys are synthesized on first read).
  virtual void InstallInitialState(KvStore* store) const = 0;

  /// Generates the next client transaction payload.
  virtual Bytes NextPayload(Rng& rng) = 0;

  /// Decodes a payload into an executable stored procedure.
  [[nodiscard]] virtual Result<std::unique_ptr<Procedure>> Parse(
      const Bytes& payload) const = 0;

  /// Adapts Parse to the Aria executor's factory signature.
  [[nodiscard]] ProcedureFactory MakeFactory() const;
};

/// Creates a workload instance. `config_scale` scales table cardinalities
/// (1.0 = the paper's sizes); tests use small scales.
[[nodiscard]] std::unique_ptr<Workload> MakeWorkload(WorkloadKind kind,
                                                     double config_scale = 1.0);

}  // namespace massbft

#endif  // MASSBFT_WORKLOAD_WORKLOAD_H_
