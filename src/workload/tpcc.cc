#include "workload/tpcc.h"

#include <utility>

#include "common/codec.h"

namespace massbft {

namespace {

constexpr size_t kPayloadBytes = 232;  // Paper's average TPC-C txn size.
constexpr uint8_t kOpNewOrder = 1;
constexpr uint8_t kOpPayment = 2;
constexpr int kMaxOrderLines = 15;

// ---- Row codecs (fixed-width binary structs). ----

int64_t GetI64At(const Bytes& v, size_t off) {
  int64_t x = 0;
  for (int i = 0; i < 8; ++i)
    x |= static_cast<int64_t>(v[off + i]) << (8 * i);
  return x;
}

void PutI64At(Bytes& v, size_t off, int64_t x) {
  for (int i = 0; i < 8; ++i)
    v[off + i] = static_cast<uint8_t>(static_cast<uint64_t>(x) >> (8 * i));
}

struct NewOrderItem {
  uint32_t item_id;
  uint32_t supply_w;
  uint8_t quantity;
};

class NewOrderProcedure final : public Procedure {
 public:
  NewOrderProcedure(uint32_t w, uint32_t d, uint32_t c,
                    std::vector<NewOrderItem> items)
      : w_(w), d_(d), c_(c), items_(std::move(items)) {}

  Status Execute(TxnContext* ctx) override {
    // District row: {next_o_id i64, ytd i64}. The next_o_id bump is the
    // per-district serialization point.
    std::string dkey = TpccWorkload::DistrictKey(w_, d_);
    auto district = ctx->Get(dkey);
    if (!district.has_value() || district->size() != 16) {
      ctx->AbortLogic();
      return Status::OK();
    }
    int64_t o_id = GetI64At(*district, 0);
    Bytes new_district = *district;
    PutI64At(new_district, 0, o_id + 1);
    ctx->Put(dkey, new_district);

    int64_t total = 0;
    int line = 0;
    for (const NewOrderItem& item : items_) {
      // Item row: {price i64} (read-only catalog).
      auto item_row = ctx->Get(TpccWorkload::ItemKey(item.item_id));
      if (!item_row.has_value() || item_row->size() != 8) {
        ctx->AbortLogic();  // TPC-C: 1% of NewOrders roll back on bad item.
        return Status::OK();
      }
      int64_t price = GetI64At(*item_row, 0);

      // Stock row: {quantity i64, ytd i64, order_cnt i64}.
      std::string skey = TpccWorkload::StockKey(item.supply_w, item.item_id);
      auto stock = ctx->Get(skey);
      if (!stock.has_value() || stock->size() != 24) {
        ctx->AbortLogic();
        return Status::OK();
      }
      Bytes new_stock = *stock;
      int64_t quantity = GetI64At(*stock, 0);
      quantity = quantity >= item.quantity + 10
                     ? quantity - item.quantity
                     : quantity - item.quantity + 91;
      PutI64At(new_stock, 0, quantity);
      PutI64At(new_stock, 8, GetI64At(*stock, 8) + item.quantity);
      PutI64At(new_stock, 16, GetI64At(*stock, 16) + 1);
      ctx->Put(skey, new_stock);

      int64_t amount = price * item.quantity;
      total += amount;
      // Order line insert: {item i64, qty i64, amount i64}.
      Bytes ol(24);
      PutI64At(ol, 0, item.item_id);
      PutI64At(ol, 8, item.quantity);
      PutI64At(ol, 16, amount);
      ctx->Put(TpccWorkload::OrderLineKey(w_, d_, static_cast<uint32_t>(o_id),
                                          line++),
               ol);
    }

    // Order insert: {customer i64, line count i64, total i64}.
    Bytes order(24);
    PutI64At(order, 0, c_);
    PutI64At(order, 8, static_cast<int64_t>(items_.size()));
    PutI64At(order, 16, total);
    ctx->Put(TpccWorkload::OrderKey(w_, d_, static_cast<uint32_t>(o_id)),
             order);
    return Status::OK();
  }

 private:
  uint32_t w_;
  uint32_t d_;
  uint32_t c_;
  std::vector<NewOrderItem> items_;
};

class PaymentProcedure final : public Procedure {
 public:
  PaymentProcedure(uint32_t w, uint32_t d, uint32_t c, int64_t amount)
      : w_(w), d_(d), c_(c), amount_(amount) {}

  Status Execute(TxnContext* ctx) override {
    // Warehouse row: {ytd i64} — the 128-row hotspot.
    std::string wkey = TpccWorkload::WarehouseKey(w_);
    auto warehouse = ctx->Get(wkey);
    if (!warehouse.has_value() || warehouse->size() != 8) {
      ctx->AbortLogic();
      return Status::OK();
    }
    Bytes new_warehouse = *warehouse;
    PutI64At(new_warehouse, 0, GetI64At(*warehouse, 0) + amount_);
    ctx->Put(wkey, new_warehouse);

    std::string dkey = TpccWorkload::DistrictKey(w_, d_);
    auto district = ctx->Get(dkey);
    if (!district.has_value() || district->size() != 16) {
      ctx->AbortLogic();
      return Status::OK();
    }
    Bytes new_district = *district;
    PutI64At(new_district, 8, GetI64At(*district, 8) + amount_);
    ctx->Put(dkey, new_district);

    // Customer row: {balance i64, ytd_payment i64, payment_cnt i64}.
    std::string ckey = TpccWorkload::CustomerKey(w_, d_, c_);
    auto customer = ctx->Get(ckey);
    if (!customer.has_value() || customer->size() != 24) {
      ctx->AbortLogic();
      return Status::OK();
    }
    Bytes new_customer = *customer;
    PutI64At(new_customer, 0, GetI64At(*customer, 0) - amount_);
    PutI64At(new_customer, 8, GetI64At(*customer, 8) + amount_);
    PutI64At(new_customer, 16, GetI64At(*customer, 16) + 1);
    ctx->Put(ckey, new_customer);
    return Status::OK();
  }

 private:
  uint32_t w_;
  uint32_t d_;
  uint32_t c_;
  int64_t amount_;
};

}  // namespace

TpccWorkload::TpccWorkload(int num_warehouses)
    : num_warehouses_(num_warehouses) {}

std::string TpccWorkload::WarehouseKey(uint32_t w) {
  return "tw:" + std::to_string(w);
}
std::string TpccWorkload::DistrictKey(uint32_t w, uint32_t d) {
  return "td:" + std::to_string(w) + ":" + std::to_string(d);
}
std::string TpccWorkload::CustomerKey(uint32_t w, uint32_t d, uint32_t c) {
  return "tc:" + std::to_string(w) + ":" + std::to_string(d) + ":" +
         std::to_string(c);
}
std::string TpccWorkload::StockKey(uint32_t w, uint32_t item) {
  return "ts:" + std::to_string(w) + ":" + std::to_string(item);
}
std::string TpccWorkload::ItemKey(uint32_t item) {
  return "ti:" + std::to_string(item);
}
std::string TpccWorkload::OrderKey(uint32_t w, uint32_t d, uint32_t o) {
  return "to:" + std::to_string(w) + ":" + std::to_string(d) + ":" +
         std::to_string(o);
}
std::string TpccWorkload::OrderLineKey(uint32_t w, uint32_t d, uint32_t o,
                                       int line) {
  return "tl:" + std::to_string(w) + ":" + std::to_string(d) + ":" +
         std::to_string(o) + ":" + std::to_string(line);
}

int64_t TpccWorkload::ItemPrice(uint32_t item) {
  return 100 + static_cast<int64_t>((item * 2654435761ULL) % 9901);
}

void TpccWorkload::InstallInitialState(KvStore* store) const {
  store->SetDefaultValueFn(
      [](std::string_view key) -> std::optional<Bytes> {
        if (key.size() < 3 || key[0] != 't') return std::nullopt;
        char table = key[1];
        switch (table) {
          case 'w': {  // Warehouse: ytd = 0.
            Bytes v(8, 0);
            return v;
          }
          case 'd': {  // District: next_o_id = 3001, ytd = 0.
            Bytes v(16, 0);
            PutI64At(v, 0, kInitialNextOrderId);
            return v;
          }
          case 'c': {  // Customer: balance = -10.00, ytd = 10.00, cnt = 1.
            Bytes v(24, 0);
            PutI64At(v, 0, -1000);
            PutI64At(v, 8, 1000);
            PutI64At(v, 16, 1);
            return v;
          }
          case 's': {  // Stock: quantity 10..100 deterministic, ytd 0, cnt 0.
            uint64_t h = 1469598103934665603ULL;
            for (char c : key) h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
            Bytes v(24, 0);
            PutI64At(v, 0, 10 + static_cast<int64_t>(h % 91));
            return v;
          }
          case 'i': {  // Item: deterministic price.
            uint32_t item = 0;
            for (size_t i = 3; i < key.size(); ++i)
              item = item * 10 + static_cast<uint32_t>(key[i] - '0');
            Bytes v(8, 0);
            PutI64At(v, 0, ItemPrice(item));
            return v;
          }
          default:
            return std::nullopt;  // Orders/lines do not exist until inserted.
        }
      });
}

Bytes TpccWorkload::NextPayload(Rng& rng) {
  bool new_order = rng.NextBool(0.5);
  uint32_t w = static_cast<uint32_t>(rng.NextBelow(num_warehouses_));
  uint32_t d = static_cast<uint32_t>(rng.NextBelow(kDistrictsPerWarehouse));
  uint32_t c = static_cast<uint32_t>(rng.NextBelow(kCustomersPerDistrict));

  BinaryWriter writer(256);
  if (new_order) {
    writer.PutU8(kOpNewOrder);
    writer.PutU32(w);
    writer.PutU32(d);
    writer.PutU32(c);
    int ol_cnt = static_cast<int>(5 + rng.NextBelow(11));  // 5..15 lines.
    writer.PutU8(static_cast<uint8_t>(ol_cnt));
    for (int i = 0; i < ol_cnt; ++i) {
      writer.PutU32(static_cast<uint32_t>(rng.NextBelow(kNumItems)));
      // 1% remote warehouse, per the TPC-C spec.
      uint32_t supply_w =
          rng.NextBool(0.01)
              ? static_cast<uint32_t>(rng.NextBelow(num_warehouses_))
              : w;
      writer.PutU32(supply_w);
      writer.PutU8(static_cast<uint8_t>(1 + rng.NextBelow(10)));
    }
  } else {
    writer.PutU8(kOpPayment);
    writer.PutU32(w);
    writer.PutU32(d);
    writer.PutU32(c);
    writer.PutI64(rng.NextInRange(100, 500000));  // $1 .. $5000 in cents.
  }
  Bytes payload = writer.Release();
  payload.resize(std::max(payload.size(), kPayloadBytes), 0);
  return payload;
}

Result<std::unique_ptr<Procedure>> TpccWorkload::Parse(
    const Bytes& payload) const {
  BinaryReader r(payload);
  uint8_t op = 0;
  uint32_t w = 0, d = 0, c = 0;
  MASSBFT_RETURN_IF_ERROR(r.GetU8(&op));
  MASSBFT_RETURN_IF_ERROR(r.GetU32(&w));
  MASSBFT_RETURN_IF_ERROR(r.GetU32(&d));
  MASSBFT_RETURN_IF_ERROR(r.GetU32(&c));
  if (w >= static_cast<uint32_t>(num_warehouses_) ||
      d >= kDistrictsPerWarehouse ||
      c >= kCustomersPerDistrict)
    return Status::Corruption("tpcc key out of range");

  if (op == kOpNewOrder) {
    uint8_t ol_cnt = 0;
    MASSBFT_RETURN_IF_ERROR(r.GetU8(&ol_cnt));
    if (ol_cnt == 0 || ol_cnt > kMaxOrderLines)
      return Status::Corruption("tpcc order line count out of range");
    std::vector<NewOrderItem> items;
    items.reserve(ol_cnt);
    for (int i = 0; i < ol_cnt; ++i) {
      NewOrderItem item{};
      MASSBFT_RETURN_IF_ERROR(r.GetU32(&item.item_id));
      MASSBFT_RETURN_IF_ERROR(r.GetU32(&item.supply_w));
      MASSBFT_RETURN_IF_ERROR(r.GetU8(&item.quantity));
      if (item.item_id >= kNumItems ||
          item.supply_w >= static_cast<uint32_t>(num_warehouses_))
        return Status::Corruption("tpcc item out of range");
      items.push_back(item);
    }
    return std::unique_ptr<Procedure>(
        std::make_unique<NewOrderProcedure>(w, d, c, std::move(items)));
  }
  if (op == kOpPayment) {
    int64_t amount = 0;
    MASSBFT_RETURN_IF_ERROR(r.GetI64(&amount));
    return std::unique_ptr<Procedure>(
        std::make_unique<PaymentProcedure>(w, d, c, amount));
  }
  return Status::Corruption("bad tpcc opcode");
}

}  // namespace massbft
