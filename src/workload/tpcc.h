#ifndef MASSBFT_WORKLOAD_TPCC_H_
#define MASSBFT_WORKLOAD_TPCC_H_

#include <memory>

#include "workload/workload.h"

namespace massbft {

/// TPC-C subset (paper Section VI): 50% NewOrder + 50% Payment over
/// `num_warehouses` warehouses (paper: 128). Monetary values are integer
/// cents; rows are binary-encoded structs in the KV store.
///
/// Payment updates the warehouse and district YTD totals — the hotspot rows
/// the paper blames for MassBFT's elevated abort rate when batches grow
/// (Section VI-A): a batch of B Payments over W warehouses collides with
/// probability ~B/W per transaction under Aria's deterministic conflict
/// detection.
class TpccWorkload final : public Workload {
 public:
  static constexpr int kDistrictsPerWarehouse = 10;
  static constexpr int kCustomersPerDistrict = 3000;
  static constexpr int kNumItems = 100000;
  static constexpr int kInitialNextOrderId = 3001;

  explicit TpccWorkload(int num_warehouses);

  WorkloadKind kind() const override { return WorkloadKind::kTpcc; }
  const char* name() const override { return "tpcc"; }

  void InstallInitialState(KvStore* store) const override;
  Bytes NextPayload(Rng& rng) override;
  [[nodiscard]] Result<std::unique_ptr<Procedure>> Parse(
      const Bytes& payload) const override;

  // Key encodings (exposed for tests).
  static std::string WarehouseKey(uint32_t w);
  static std::string DistrictKey(uint32_t w, uint32_t d);
  static std::string CustomerKey(uint32_t w, uint32_t d, uint32_t c);
  static std::string StockKey(uint32_t w, uint32_t item);
  static std::string ItemKey(uint32_t item);
  static std::string OrderKey(uint32_t w, uint32_t d, uint32_t o);
  static std::string OrderLineKey(uint32_t w, uint32_t d, uint32_t o, int line);

  /// Deterministic item price in cents (1.00 .. 100.00).
  static int64_t ItemPrice(uint32_t item);

 private:
  int num_warehouses_;
};

}  // namespace massbft

#endif  // MASSBFT_WORKLOAD_TPCC_H_
