#include "workload/workload.h"

#include "workload/smallbank.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace massbft {

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kYcsbA:
      return "YCSB-A";
    case WorkloadKind::kYcsbB:
      return "YCSB-B";
    case WorkloadKind::kSmallBank:
      return "SmallBank";
    case WorkloadKind::kTpcc:
      return "TPC-C";
  }
  return "unknown";
}

ProcedureFactory Workload::MakeFactory() const {
  return [this](const Transaction& txn) { return Parse(txn.payload); };
}

std::unique_ptr<Workload> MakeWorkload(WorkloadKind kind,
                                       double config_scale) {
  switch (kind) {
    case WorkloadKind::kYcsbA:
      return std::make_unique<YcsbWorkload>(
          /*variant_a=*/true,
          static_cast<uint64_t>(1'000'000 * config_scale));
    case WorkloadKind::kYcsbB:
      return std::make_unique<YcsbWorkload>(
          /*variant_a=*/false,
          static_cast<uint64_t>(1'000'000 * config_scale));
    case WorkloadKind::kSmallBank:
      return std::make_unique<SmallBankWorkload>(
          static_cast<uint64_t>(1'000'000 * config_scale));
    case WorkloadKind::kTpcc: {
      int warehouses = static_cast<int>(128 * config_scale);
      return std::make_unique<TpccWorkload>(warehouses < 1 ? 1 : warehouses);
    }
  }
  return nullptr;
}

}  // namespace massbft
