#ifndef MASSBFT_OBS_TELEMETRY_H_
#define MASSBFT_OBS_TELEMETRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "sim/time.h"

namespace massbft {
namespace obs {

/// The commit-path phases of one entry's lifecycle (paper Fig 11). Phase
/// spans are recorded where the paper measures them: batching per
/// transaction and local/global/execution per entry at the proposing
/// group's leader; encode per entry at the sending leader; rebuild per
/// entry at receiving-group leaders (it overlaps the global span).
enum class Phase : int {
  kBatching = 0,      // Txn submit -> batch formed.
  kLocalConsensus,    // Batch formed -> local PBFT committed.
  kEncode,            // RS encode + Merkle build CPU span.
  kGlobalReplication, // Local commit -> global commit (+ VTS).
  kRebuild,           // First chunk arrival -> entry rebuilt (receivers).
  kExecution,         // Global commit -> executed.
};
constexpr int kNumPhases = 6;

const char* PhaseName(Phase phase);

/// One observability context per simulated cluster: a metrics registry
/// (always on — instruments are branch-plus-add cheap) and a trace
/// recorder (off unless a trace export was requested). Protocol
/// components hold a `Telemetry*` plus whatever pre-resolved instrument
/// handles they need; the phase histograms of the Fig 11 breakdown are
/// pre-resolved here because every layer reports into them.
class Telemetry {
 public:
  Telemetry();
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }

  bool tracing() const { return trace_.enabled(); }
  void set_tracing(bool enabled) { trace_.set_enabled(enabled); }

  FlightRecorder& flight() { return flight_; }
  const FlightRecorder& flight() const { return flight_; }

  /// Offset of this telemetry's timebase from the process trace epoch
  /// (TraceClock), in nanoseconds. Zero in sim mode (one shared timebase);
  /// in real mode each NodeRuntime sets it at first Start so the
  /// ClusterTraceMerger can shift per-node events onto one axis.
  /// Relaxed on both sides: written once in NodeRuntime::Start before the
  /// loop/transport threads exist (thread creation is the ordering edge);
  /// a racing early reader only mis-shifts a trace timestamp, never
  /// corrupts state.
  uint64_t trace_anchor_ns() const {
    return trace_anchor_ns_.load(std::memory_order_relaxed);
  }
  void set_trace_anchor_ns(uint64_t ns) {
    trace_anchor_ns_.store(ns, std::memory_order_relaxed);
  }

  /// Current time on this telemetry's timebase: TraceClock::NowNs() minus
  /// the anchor. For real-mode threads (transport internals) that record
  /// events but have no access to the owning node's virtual clock.
  /// Deterministic sim code must use the simulator clock instead.
  SimTime TraceNowNs() const;

  /// Records one phase span: adds its duration to the phase histogram
  /// (milliseconds) and, when tracing, emits a trace span on `track`
  /// annotated with the entry key.
  void RecordPhaseSpan(Phase phase, uint32_t track, SimTime start,
                       SimTime end, uint16_t gid, uint64_t seq);

  /// Direct histogram access for callers with non-span samples (e.g. the
  /// per-transaction batching wait).
  Histogram* phase_histogram(Phase phase) {
    return phase_hist_[static_cast<size_t>(phase)];
  }
  const Histogram& phase(Phase phase) const {
    return *phase_hist_[static_cast<size_t>(phase)];
  }

  // ---- Track naming conventions (Chrome trace "threads").
  /// Track id for a node, given NodeId::Packed() (kept uint32-typed here
  /// so obs does not depend on the crypto layer).
  static uint32_t NodeTrack(uint32_t packed_node_id) {
    return packed_node_id;
  }
  /// Track for the client population of one group.
  static uint32_t ClientTrack(int group) {
    return 0x80000000u | static_cast<uint32_t>(group);
  }

 private:
  MetricsRegistry registry_;
  TraceRecorder trace_;
  FlightRecorder flight_;
  // Atomic: set by the node's loop at first Start, read by transport
  // threads stamping events on the node's timebase.
  std::atomic<uint64_t> trace_anchor_ns_{0};
  std::array<Histogram*, kNumPhases> phase_hist_{};
};

}  // namespace obs
}  // namespace massbft

#endif  // MASSBFT_OBS_TELEMETRY_H_
