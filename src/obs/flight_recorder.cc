#include "obs/flight_recorder.h"

#include <cstdio>

namespace massbft {
namespace obs {

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void FlightRecorder::Record(uint64_t t_ns, const char* category,
                            const char* name, double a, double b) {
  MutexLock lock(&mu_);
  FlightEvent event{t_ns, category, name, a, b};
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[static_cast<size_t>(count_ % capacity_)] = event;
  }
  ++count_;
}

uint64_t FlightRecorder::recorded() const {
  MutexLock lock(&mu_);
  return count_;
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  if (count_ <= capacity_) {
    out = ring_;
  } else {
    // The slot about to be overwritten next is the oldest retained event.
    const size_t start = static_cast<size_t>(count_ % capacity_);
    for (size_t i = 0; i < capacity_; ++i)
      out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

void FlightRecorder::Dump(std::ostream& out, const std::string& owner) const {
  const std::vector<FlightEvent> events = Snapshot();
  uint64_t total;
  {
    MutexLock lock(&mu_);
    total = count_;
  }
  out << "--- flight recorder " << owner << ": kept " << events.size()
      << " of " << total << " events ---\n";
  char line[160];
  for (const FlightEvent& event : events) {
    std::snprintf(line, sizeof(line), "  [%10.3f ms] %s/%s a=%g b=%g\n",
                  static_cast<double>(event.t_ns) / 1e6, event.category,
                  event.name, event.a, event.b);
    out << line;
  }
}

void FlightRecorder::Clear() {
  MutexLock lock(&mu_);
  ring_.clear();
  count_ = 0;
}

}  // namespace obs
}  // namespace massbft
