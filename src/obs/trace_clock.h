#ifndef MASSBFT_OBS_TRACE_CLOCK_H_
#define MASSBFT_OBS_TRACE_CLOCK_H_

#include <cstdint>

namespace massbft {
namespace obs {

/// Process-wide wall-clock anchor for real-mode traces (DESIGN.md §14).
///
/// The threaded runtime gives every node a private virtual clock (ns since
/// that node's own start), so two nodes' trace timestamps are not directly
/// comparable. TraceClock provides the common reference that makes them
/// comparable: a single monotonic epoch captured once per process, plus the
/// wall-clock (unix) time of that epoch for absolute labeling.
///
///  * NowNs() — monotonic nanoseconds since the process trace epoch. All
///    nodes of an in-process cluster share it, so cross-node send/receive
///    stamps in wire trace contexts order correctly without clock-sync
///    machinery.
///  * Each NodeRuntime records its own epoch as an offset from the process
///    epoch; the ClusterTraceMerger shifts that node's (node-relative)
///    trace events by the offset to land every event on the shared axis.
///
/// This is deliberately the only obs component that reads the wall clock
/// (with the socket-bound StatsServer); both are exempted from lint rule
/// D1 by DIR_POLICY entry, not by per-line suppression — see
/// tools/lint/massbft_lint.py.
class TraceClock {
 public:
  /// Nanoseconds since the process trace epoch. The first call anchors the
  /// epoch; thread-safe.
  static uint64_t NowNs();

  /// Wall-clock time of the process trace epoch, as nanoseconds since the
  /// unix epoch. Stable across the process lifetime; lets exporters turn a
  /// NowNs() offset into an absolute timestamp.
  static uint64_t UnixAnchorNs();
};

}  // namespace obs
}  // namespace massbft

#endif  // MASSBFT_OBS_TRACE_CLOCK_H_
