#ifndef MASSBFT_OBS_STATS_SERVER_H_
#define MASSBFT_OBS_STATS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "common/status.h"

namespace massbft {
namespace obs {

/// Minimal localhost-only HTTP/1.0 endpoint for live introspection
/// (DESIGN.md §14). One background thread accepts loopback connections,
/// serves a registered handler per exact path (e.g. "/metrics" in
/// Prometheus text exposition format, "/health" as JSON), and closes the
/// connection. Not a general web server: requests are GET-only, bodies
/// are ignored, one request per connection, one request at a time.
///
/// Handlers run on the server thread while the cluster is live, so they
/// must do their own cross-thread synchronization (RealCluster snapshots
/// node registries through each node's Call seam).
///
/// This is (with TraceClock) one of the two obs components allowed to
/// touch the wall clock / OS scheduling by lint DIR_POLICY: it blocks in
/// poll() with real timeouts by design.
class StatsServer {
 public:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  /// Called with the request path (no query string splitting; exact match
  /// routed before invocation).
  using Handler = std::function<Response()>;

  StatsServer() = default;
  ~StatsServer();
  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Registers the handler serving `path` (exact match, must start with
  /// '/'). All registrations must happen before Start().
  void RegisterHandler(const std::string& path, Handler handler);

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port, see port()) and
  /// starts the serving thread.
  [[nodiscard]] Status Start(uint16_t port);

  /// The bound port while running, 0 otherwise.
  uint16_t port() const { return port_; }
  /// Acquire pairs with the release store in Start(): a caller seeing
  /// true also sees the bound port_ and handler table.
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Stops the serving thread and closes the listening socket. Idempotent;
  /// also called by the destructor.
  void Stop();

 private:
  void Serve();
  void HandleConnection(int fd);

  std::map<std::string, Handler> handlers_;
  std::atomic<bool> running_{false};
  std::thread thread_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace obs
}  // namespace massbft

#endif  // MASSBFT_OBS_STATS_SERVER_H_
