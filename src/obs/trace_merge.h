#ifndef MASSBFT_OBS_TRACE_MERGE_H_
#define MASSBFT_OBS_TRACE_MERGE_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace_recorder.h"

namespace massbft {
namespace obs {

/// Merges the per-node TraceRecorder outputs of a real-mode cluster into
/// one Chrome/Perfetto trace (DESIGN.md §14): one Chrome *process* per
/// node (named, sorted by node id), each node's tracks as that process's
/// threads, and every event shifted from the node's private timebase onto
/// the shared process axis by the node's TraceClock epoch offset.
///
/// Cross-node flow arrows are synthesized from receiver-side `wire/recv`
/// instants: the wire trace context carries the send timestamp already on
/// the shared axis (TraceClock::NowNs at encode time), so each recv
/// instant pins both ends of one arrow — origin node track at origin_ts,
/// receiving node track at receive time — without any send/recv pairing
/// search. The result is the real-mode Fig 11 view: one entry's spans on
/// multiple node tracks, connected hop by hop.
class ClusterTraceMerger {
 public:
  ClusterTraceMerger() = default;
  ClusterTraceMerger(const ClusterTraceMerger&) = delete;
  ClusterTraceMerger& operator=(const ClusterTraceMerger&) = delete;

  /// Adds one node's trace. `packed_node_id` is NodeId::Packed() (used to
  /// resolve flow-arrow origins), `process_name` labels the Chrome
  /// process, `epoch_offset_ns` is the node's Telemetry::trace_anchor_ns()
  /// (offset of the node's timebase from the process trace epoch).
  /// Snapshots the recorder immediately.
  void AddNode(uint32_t packed_node_id, const std::string& process_name,
               uint64_t epoch_offset_ns, const TraceRecorder& recorder);

  /// Wall-clock (unix ns) meaning of the shared axis zero, recorded in the
  /// trace's otherData for absolute labeling. Kept injectable so golden
  /// tests stay deterministic (pass TraceClock::UnixAnchorNs() in real
  /// runs).
  void set_unix_anchor_ns(uint64_t ns) { unix_anchor_ns_ = ns; }

  size_t node_count() const { return nodes_.size(); }

  /// Writes the merged Chrome trace-event JSON. Deterministic for fixed
  /// input: nodes ordered by packed id, events in recording order, flow
  /// arrows in recv-instant order.
  void WriteChromeTrace(std::ostream& out) const;
  Status WriteChromeTraceFile(const std::string& path) const;

 private:
  struct NodeTrace {
    uint32_t packed_id = 0;
    std::string process_name;
    uint64_t epoch_offset_ns = 0;
    std::vector<TraceRecorder::Event> events;
    std::map<uint32_t, std::string> track_names;
  };

  // Keyed by packed node id: deterministic process order and O(log n)
  // origin lookup for flow arrows.
  std::map<uint32_t, NodeTrace> nodes_;
  uint64_t unix_anchor_ns_ = 0;
};

}  // namespace obs
}  // namespace massbft

#endif  // MASSBFT_OBS_TRACE_MERGE_H_
