#ifndef MASSBFT_OBS_TRACE_RECORDER_H_
#define MASSBFT_OBS_TRACE_RECORDER_H_

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/lock_rank.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/json_writer.h"
#include "sim/time.h"

namespace massbft {
namespace obs {

/// Up to this many numeric key/value annotations per event.
constexpr int kMaxTraceArgs = 5;

/// One key/value annotation on a trace event. Keys must be string
/// literals (they are stored unowned).
struct TraceArg {
  const char* key = nullptr;
  double value = 0;
};

using TraceArgs = std::array<TraceArg, kMaxTraceArgs>;

/// Records sim-time spans, instants and counter samples and exports them
/// as Chrome trace-event JSON (loadable in chrome://tracing or Perfetto).
///
/// Tracks are uint32 ids mapped to Chrome "threads" (one per simulated
/// node, by convention NodeId::Packed(); see RegisterTrack). Categories
/// and names must be string literals — the recorder keeps only the
/// pointer, which keeps recording allocation-free except for the event
/// vector growth itself.
///
/// Disabled (the default) every Record* call is a single branch; callers
/// may also check enabled() first to skip argument preparation. Recording
/// is thread-safe: in real mode a node's recorder is written by its event
/// loop and by transport-internal threads (writer/reader/fault-delay), and
/// read by the merger after the run.
class TraceRecorder {
 public:
  enum class EventKind : uint8_t { kSpan, kInstant, kCounter };

  struct Event {
    EventKind kind;
    uint32_t track;
    const char* category;
    const char* name;
    SimTime start;
    SimTime end;     // kSpan only.
    double value;    // kCounter only.
    TraceArgs args;  // kSpan / kInstant.
  };

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool enabled() const { return enabled_; }
  /// Must not be flipped while other threads may be recording (real mode
  /// enables tracing during setup, before node threads start).
  void set_enabled(bool enabled) { enabled_ = enabled; }

  /// Names a track for the exporter (Chrome thread_name metadata). Safe to
  /// call whether or not tracing is enabled; idempotent per track.
  void RegisterTrack(uint32_t track, const std::string& name);

  /// Complete span [start, end] on `track`. `category`/`name` must be
  /// string literals.
  void RecordSpan(uint32_t track, const char* category, const char* name,
                  SimTime start, SimTime end, TraceArgs args = {});

  /// Zero-duration instant event.
  void RecordInstant(uint32_t track, const char* category, const char* name,
                     SimTime at, TraceArgs args = {});

  /// Counter sample (rendered as a filled graph by the trace viewer).
  void RecordCounter(uint32_t track, const char* name, SimTime at,
                     double value);

  size_t event_count() const;
  void Clear();

  /// Copies of the recorded events / track names, for cross-recorder
  /// merging (ClusterTraceMerger). Events are in recording order.
  std::vector<Event> snapshot() const;
  std::map<uint32_t, std::string> track_names() const;

  /// Writes the full Chrome trace-event JSON document. Timestamps are
  /// microseconds with nanosecond fractions; output is deterministic for
  /// a fixed event sequence.
  void WriteChromeTrace(std::ostream& out) const;
  /// Same, to a file. Fails with kIoError if the file cannot be written.
  Status WriteChromeTraceFile(const std::string& path) const;

 private:
  /// Flipped only while no other thread records (set_enabled contract);
  /// reads on the hot path stay lock-free.
  bool enabled_ = false;
  // kObsRecorder: recorders are called from net/runtime code that may
  // already hold its own lock (e.g. TcpTransport::RecordNetEvent under
  // tcp.mu), so they rank below nothing and above every caller.
  mutable RankedMutex mu_{"trace_recorder.mu", LockRank::kObsRecorder};
  std::vector<Event> events_ MASSBFT_GUARDED_BY(mu_);
  std::map<uint32_t, std::string> track_names_ MASSBFT_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace massbft

#endif  // MASSBFT_OBS_TRACE_RECORDER_H_
