#include "obs/telemetry.h"

#include "obs/trace_clock.h"

namespace massbft {
namespace obs {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kBatching:
      return "batching";
    case Phase::kLocalConsensus:
      return "local_consensus";
    case Phase::kEncode:
      return "encode";
    case Phase::kGlobalReplication:
      return "global_replication";
    case Phase::kRebuild:
      return "rebuild";
    case Phase::kExecution:
      return "execution";
  }
  return "unknown";
}

Telemetry::Telemetry() {
  for (int i = 0; i < kNumPhases; ++i) {
    phase_hist_[static_cast<size_t>(i)] = registry_.GetHistogram(
        std::string("phase/") + PhaseName(static_cast<Phase>(i)) + "_ms");
  }
}

SimTime Telemetry::TraceNowNs() const {
  const uint64_t now = TraceClock::NowNs();
  const uint64_t anchor = trace_anchor_ns();
  return static_cast<SimTime>(now > anchor ? now - anchor : 0);
}

void Telemetry::RecordPhaseSpan(Phase phase, uint32_t track, SimTime start,
                                SimTime end, uint16_t gid, uint64_t seq) {
  phase_hist_[static_cast<size_t>(phase)]->Record(
      SimToSeconds(end - start) * 1e3);
  if (trace_.enabled()) {
    trace_.RecordSpan(track, "phase", PhaseName(phase), start, end,
                      TraceArgs{{{"gid", static_cast<double>(gid)},
                                 {"seq", static_cast<double>(seq)}}});
  }
}

}  // namespace obs
}  // namespace massbft
