#include "obs/trace_merge.h"

#include <cstring>
#include <fstream>

#include "obs/json_writer.h"

namespace massbft {
namespace obs {

namespace {

/// Chrome trace timestamps are microseconds; keep nanosecond precision as
/// a fraction.
double ToMicros(double ns) { return ns / 1e3; }

void WriteArgs(JsonWriter& writer, const TraceArgs& args) {
  bool any = false;
  for (const TraceArg& arg : args)
    if (arg.key != nullptr) any = true;
  if (!any) return;
  writer.Key("args");
  writer.BeginObject();
  for (const TraceArg& arg : args)
    if (arg.key != nullptr) writer.Member(arg.key, arg.value);
  writer.EndObject();
}

/// Looks up a numeric annotation by key; returns `fallback` when absent.
double ArgValue(const TraceArgs& args, const char* key, double fallback) {
  for (const TraceArg& arg : args)
    if (arg.key != nullptr && std::strcmp(arg.key, key) == 0) return arg.value;
  return fallback;
}

bool IsWireRecv(const TraceRecorder::Event& event) {
  return event.kind == TraceRecorder::EventKind::kInstant &&
         event.category != nullptr && event.name != nullptr &&
         std::strcmp(event.category, "wire") == 0 &&
         std::strcmp(event.name, "recv") == 0;
}

}  // namespace

void ClusterTraceMerger::AddNode(uint32_t packed_node_id,
                                 const std::string& process_name,
                                 uint64_t epoch_offset_ns,
                                 const TraceRecorder& recorder) {
  NodeTrace& node = nodes_[packed_node_id];
  node.packed_id = packed_node_id;
  node.process_name = process_name;
  node.epoch_offset_ns = epoch_offset_ns;
  node.events = recorder.snapshot();
  node.track_names = recorder.track_names();
}

void ClusterTraceMerger::WriteChromeTrace(std::ostream& out) const {
  JsonWriter writer(out);
  writer.BeginObject();
  writer.Member("displayTimeUnit", "ms");
  writer.Key("otherData");
  writer.BeginObject();
  writer.Member("trace_unix_anchor_ns", unix_anchor_ns_);
  writer.Member("node_count", static_cast<uint64_t>(nodes_.size()));
  writer.EndObject();
  writer.Key("traceEvents");
  writer.BeginArray();

  // Metadata pass: one Chrome process per node (pid = packed id + 1 so
  // pid 0 never appears), named and sorted; each node's tracks become the
  // process's threads.
  for (const auto& [packed, node] : nodes_) {
    const uint64_t pid = static_cast<uint64_t>(packed) + 1;
    writer.BeginObject();
    writer.Member("name", "process_name");
    writer.Member("ph", "M");
    writer.Member("pid", pid);
    writer.Key("args");
    writer.BeginObject();
    writer.Member("name", node.process_name);
    writer.EndObject();
    writer.EndObject();
    writer.BeginObject();
    writer.Member("name", "process_sort_index");
    writer.Member("ph", "M");
    writer.Member("pid", pid);
    writer.Key("args");
    writer.BeginObject();
    writer.Member("sort_index", pid);
    writer.EndObject();
    writer.EndObject();
    for (const auto& [track, name] : node.track_names) {
      writer.BeginObject();
      writer.Member("name", "thread_name");
      writer.Member("ph", "M");
      writer.Member("pid", pid);
      writer.Member("tid", static_cast<uint64_t>(track));
      writer.Key("args");
      writer.BeginObject();
      writer.Member("name", name);
      writer.EndObject();
      writer.EndObject();
    }
  }

  // Event pass: every node's events, shifted onto the shared axis.
  for (const auto& [packed, node] : nodes_) {
    const uint64_t pid = static_cast<uint64_t>(packed) + 1;
    const double offset_ns = static_cast<double>(node.epoch_offset_ns);
    for (const TraceRecorder::Event& event : node.events) {
      const double start_ns = offset_ns + static_cast<double>(event.start);
      writer.BeginObject();
      switch (event.kind) {
        case TraceRecorder::EventKind::kSpan:
          writer.Member("name", event.name);
          writer.Member("cat", event.category);
          writer.Member("ph", "X");
          writer.Member("ts", ToMicros(start_ns));
          writer.Member("dur",
                        ToMicros(static_cast<double>(event.end - event.start)));
          writer.Member("pid", pid);
          writer.Member("tid", static_cast<uint64_t>(event.track));
          WriteArgs(writer, event.args);
          break;
        case TraceRecorder::EventKind::kInstant:
          writer.Member("name", event.name);
          writer.Member("cat", event.category);
          writer.Member("ph", "i");
          writer.Member("s", "t");
          writer.Member("ts", ToMicros(start_ns));
          writer.Member("pid", pid);
          writer.Member("tid", static_cast<uint64_t>(event.track));
          WriteArgs(writer, event.args);
          break;
        case TraceRecorder::EventKind::kCounter:
          writer.Member("name", event.name);
          writer.Member("ph", "C");
          writer.Member("ts", ToMicros(start_ns));
          writer.Member("pid", pid);
          writer.Member("tid", static_cast<uint64_t>(event.track));
          writer.Key("args");
          writer.BeginObject();
          writer.Member("value", event.value);
          writer.EndObject();
          break;
      }
      writer.EndObject();
    }
  }

  // Flow pass: each wire/recv instant pins one arrow — start on the
  // origin node's track at the send timestamp (already on the shared
  // axis, carried in the wire trace context), finish on the receiving
  // track at delivery.
  uint64_t flow_id = 0;
  for (const auto& [packed, node] : nodes_) {
    const uint64_t pid = static_cast<uint64_t>(packed) + 1;
    const double offset_ns = static_cast<double>(node.epoch_offset_ns);
    for (const TraceRecorder::Event& event : node.events) {
      if (!IsWireRecv(event)) continue;
      const double origin = ArgValue(event.args, "origin", -1);
      if (origin < 0) continue;
      const uint32_t origin_packed = static_cast<uint32_t>(origin);
      auto it = nodes_.find(origin_packed);
      if (it == nodes_.end()) continue;  // Origin trace not merged in.
      const double send_ns = ArgValue(event.args, "origin_ts", 0);
      double recv_ns = offset_ns + static_cast<double>(event.start);
      if (recv_ns < send_ns) recv_ns = send_ns;  // Arrows must not go back.
      ++flow_id;

      writer.BeginObject();
      writer.Member("name", "entry");
      writer.Member("cat", "wire");
      writer.Member("ph", "s");
      writer.Member("id", flow_id);
      writer.Member("pid", static_cast<uint64_t>(origin_packed) + 1);
      writer.Member("tid", static_cast<uint64_t>(origin_packed));
      writer.Member("ts", ToMicros(send_ns));
      writer.Key("args");
      writer.BeginObject();
      writer.Member("gid", ArgValue(event.args, "gid", 0));
      writer.Member("seq", ArgValue(event.args, "seq", 0));
      writer.EndObject();
      writer.EndObject();

      writer.BeginObject();
      writer.Member("name", "entry");
      writer.Member("cat", "wire");
      writer.Member("ph", "f");
      writer.Member("bp", "e");
      writer.Member("id", flow_id);
      writer.Member("pid", pid);
      writer.Member("tid", static_cast<uint64_t>(event.track));
      writer.Member("ts", ToMicros(recv_ns));
      writer.EndObject();
    }
  }

  writer.EndArray();
  writer.EndObject();
  out << '\n';
}

Status ClusterTraceMerger::WriteChromeTraceFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open())
    return Status::Unavailable("cannot open trace file: " + path);
  WriteChromeTrace(out);
  out.flush();
  if (!out.good())
    return Status::Unavailable("failed writing trace file: " + path);
  return Status::OK();
}

}  // namespace obs
}  // namespace massbft
