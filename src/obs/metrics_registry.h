#ifndef MASSBFT_OBS_METRICS_REGISTRY_H_
#define MASSBFT_OBS_METRICS_REGISTRY_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/json_writer.h"

namespace massbft {
namespace obs {

/// Monotonic event count. Handles are plain pointers resolved once at
/// setup; the hot-path cost is one branch and one add.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    if (enabled_) value_ += delta;
  }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  friend class MetricsRegistry;
  uint64_t value_ = 0;
  bool enabled_ = true;
};

/// Last-write-wins sample (utilization ratios, queue depths).
class Gauge {
 public:
  void Set(double v) {
    if (enabled_) value_ = v;
  }
  double value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  friend class MetricsRegistry;
  double value_ = 0;
  bool enabled_ = true;
};

/// Value distribution: exact count/sum/min/max plus base-2 geometric
/// buckets for approximate percentiles. Unit-agnostic; protocol code
/// records milliseconds by convention (series named `*_ms`).
class Histogram {
 public:
  void Record(double v);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0 : min_; }
  double max() const { return count_ == 0 ? 0 : max_; }
  double mean() const { return count_ == 0 ? 0 : sum_ / static_cast<double>(count_); }
  /// Approximate percentile (p in [0,1]) from the geometric buckets:
  /// exact to within one bucket width (a factor of 2).
  double Percentile(double p) const;

  void Reset();

 private:
  friend class MetricsRegistry;
  // Bucket i counts values in [2^(i-kBucketBias), 2^(i-kBucketBias+1)),
  // bucket 0 additionally absorbs everything smaller (incl. <= 0).
  static constexpr int kNumBuckets = 64;
  static constexpr int kBucketBias = 20;  // Bucket 0 starts at 2^-20.
  static int BucketIndex(double v);
  static double BucketUpperBound(int index);

  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::array<uint64_t, kNumBuckets> buckets_{};
  bool enabled_ = true;
};

/// Summary statistics of one histogram at a point in time.
struct HistogramStats {
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double p50 = 0;
  double p99 = 0;
};

/// Point-in-time copy of a registry's series, sorted by name. Plain data:
/// safe to move across threads, which is how the StatsServer reads node
/// registries (each node snapshots its own registry on its loop thread
/// and hands the copy out by value).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramStats>> histograms;
};

/// Process-local registry of named series. Lookup happens once, at wiring
/// time (`GetCounter` etc. return stable pointers for the registry's
/// lifetime); the instruments themselves are branch-plus-add cheap.
/// Disabling the registry turns every write into a single predictable
/// branch, so instrumented code needs no `if (metrics)` guards.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the series named `name`, creating it on first use. Repeated
  /// calls with one name return the same pointer. Names use '/'-separated
  /// components, e.g. "net/wan_bytes_sent".
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Enables/disables every current and future instrument.
  void set_enabled(bool enabled);
  bool enabled() const { return enabled_; }

  /// Zeroes all series (handles stay valid).
  void ResetAll();

  size_t counter_count() const { return counters_.size(); }
  size_t gauge_count() const { return gauges_.size(); }
  size_t histogram_count() const { return histograms_.size(); }

  /// Writes {"counters":{...},"gauges":{...},"histograms":{...}} with
  /// per-histogram count/sum/min/max/mean/p50/p99. Deterministic order
  /// (sorted by name).
  void WriteJson(JsonWriter& writer) const;

  /// Point-in-time copy of every series, sorted by name. Must be called
  /// on the thread that owns the registry (in real mode: via the node's
  /// Call seam); the returned value is then free to cross threads.
  MetricsSnapshot Snapshot() const;

 private:
  bool enabled_ = true;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace massbft

#endif  // MASSBFT_OBS_METRICS_REGISTRY_H_
