#include "obs/trace_clock.h"

#include <chrono>

namespace massbft {
namespace obs {

namespace {

struct Anchor {
  std::chrono::steady_clock::time_point epoch;
  uint64_t unix_ns;
};

/// Captured once per process (thread-safe magic static): a steady-clock
/// epoch every node measures against, plus the wall-clock time it
/// corresponds to.
const Anchor& ProcessAnchor() {
  static const Anchor anchor = [] {
    Anchor a;
    a.epoch = std::chrono::steady_clock::now();
    a.unix_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    return a;
  }();
  return anchor;
}

}  // namespace

uint64_t TraceClock::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - ProcessAnchor().epoch)
          .count());
}

uint64_t TraceClock::UnixAnchorNs() { return ProcessAnchor().unix_ns; }

}  // namespace obs
}  // namespace massbft
