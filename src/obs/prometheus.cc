#include "obs/prometheus.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

namespace massbft {
namespace obs {

namespace {

/// Shortest decimal form that round-trips the double exactly (so scrapes
/// are both readable and lossless). Deterministic for fixed input.
std::string FormatValue(double v) {
  if (!std::isfinite(v)) return v > 0 ? "+Inf" : (v < 0 ? "-Inf" : "NaN");
  char buf[40];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void WriteSample(std::ostream& out, const std::string& metric,
                 const std::string& suffix, const std::string& labels,
                 const std::string& extra_label, const std::string& value) {
  out << metric << suffix;
  if (!labels.empty() || !extra_label.empty()) {
    out << '{' << labels;
    if (!labels.empty() && !extra_label.empty()) out << ',';
    out << extra_label << '}';
  }
  out << ' ' << value << '\n';
}

}  // namespace

std::string PrometheusName(const std::string& series) {
  std::string out = "massbft_";
  out.reserve(out.size() + series.size());
  for (char c : series) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void WritePrometheusText(const std::vector<LabeledSnapshot>& snapshots,
                         std::ostream& out) {
  // Group samples per metric so each # TYPE header is emitted once even
  // when many nodes expose the same series. std::map keeps the exposition
  // alphabetical and therefore stable across runs.
  std::map<std::string, std::vector<std::pair<const std::string*, uint64_t>>>
      counters;
  std::map<std::string, std::vector<std::pair<const std::string*, double>>>
      gauges;
  std::map<std::string,
           std::vector<std::pair<const std::string*, const HistogramStats*>>>
      summaries;
  for (const LabeledSnapshot& snap : snapshots) {
    for (const auto& [name, value] : snap.snapshot.counters)
      counters[PrometheusName(name)].emplace_back(&snap.labels, value);
    for (const auto& [name, value] : snap.snapshot.gauges)
      gauges[PrometheusName(name)].emplace_back(&snap.labels, value);
    for (const auto& [name, stats] : snap.snapshot.histograms)
      summaries[PrometheusName(name)].emplace_back(&snap.labels, &stats);
  }

  for (const auto& [metric, samples] : counters) {
    out << "# TYPE " << metric << " counter\n";
    for (const auto& [labels, value] : samples)
      WriteSample(out, metric, "", *labels, "", std::to_string(value));
  }
  for (const auto& [metric, samples] : gauges) {
    out << "# TYPE " << metric << " gauge\n";
    for (const auto& [labels, value] : samples)
      WriteSample(out, metric, "", *labels, "", FormatValue(value));
  }
  for (const auto& [metric, samples] : summaries) {
    out << "# TYPE " << metric << " summary\n";
    for (const auto& [labels, stats] : samples) {
      WriteSample(out, metric, "", *labels, "quantile=\"0.5\"",
                  FormatValue(stats->p50));
      WriteSample(out, metric, "", *labels, "quantile=\"0.99\"",
                  FormatValue(stats->p99));
      WriteSample(out, metric, "_sum", *labels, "", FormatValue(stats->sum));
      WriteSample(out, metric, "_count", *labels, "",
                  std::to_string(stats->count));
    }
  }
}

}  // namespace obs
}  // namespace massbft
