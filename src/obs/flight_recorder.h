#ifndef MASSBFT_OBS_FLIGHT_RECORDER_H_
#define MASSBFT_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

namespace massbft {
namespace obs {

/// One structured flight-recorder event. Category and name must be string
/// literals (stored unowned, like trace events); the two numeric slots
/// carry whatever small payload the site finds useful (destination node,
/// byte count, sequence number, ...).
struct FlightEvent {
  uint64_t t_ns = 0;  // Node trace timebase (ns since the node's epoch).
  const char* category = "";
  const char* name = "";
  double a = 0;
  double b = 0;
};

/// Fixed-size ring buffer holding the last N structured events of one node
/// — state transitions, sends, faults, reconnects — so a failed
/// fault-injection run can be debugged post-mortem without a full trace
/// (DESIGN.md §14). Recording is lock-guarded and wait-free in the
/// amortized sense (vector ring, no allocation after the first lap);
/// writers are the node's event loop plus transport-internal threads.
///
/// The runtime dumps every node's recorder automatically on agreement
/// failure or drain timeout; tests and tools can call Dump() directly.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 512;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Record(uint64_t t_ns, const char* category, const char* name,
              double a = 0, double b = 0);

  size_t capacity() const { return capacity_; }
  /// Total events ever recorded (>= capacity() means the ring wrapped and
  /// the oldest `recorded() - capacity()` events were overwritten).
  uint64_t recorded() const;

  /// The retained events, oldest first.
  std::vector<FlightEvent> Snapshot() const;

  /// Human-readable dump: a header naming the owner plus one line per
  /// retained event, oldest first. Format:
  ///   --- flight recorder <owner>: kept K of N events ---
  ///     [   12.345 ms] category/name a=1 b=2
  void Dump(std::ostream& out, const std::string& owner) const;

  void Clear();

 private:
  const size_t capacity_;
  // kObsRecorder: Record() runs under transport/runtime locks (connection
  // lifecycle events fire while tcp.mu is held).
  mutable RankedMutex mu_{"flight_recorder.mu", LockRank::kObsRecorder};
  // Insertion slot = count_ % capacity_.
  std::vector<FlightEvent> ring_ MASSBFT_GUARDED_BY(mu_);
  uint64_t count_ MASSBFT_GUARDED_BY(mu_) = 0;
};

}  // namespace obs
}  // namespace massbft

#endif  // MASSBFT_OBS_FLIGHT_RECORDER_H_
