#ifndef MASSBFT_OBS_PROMETHEUS_H_
#define MASSBFT_OBS_PROMETHEUS_H_

#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"

namespace massbft {
namespace obs {

/// One node's metrics snapshot plus the label set identifying it in the
/// exposition, e.g. `node="g0n1"`. The label string is emitted verbatim
/// inside `{...}` (values must already be quoted/escaped); empty means
/// no identifying labels.
struct LabeledSnapshot {
  std::string labels;
  MetricsSnapshot snapshot;
};

/// Maps a '/'-separated series name to a legal Prometheus metric name:
/// "net/wan_bytes_sent" -> "massbft_net_wan_bytes_sent". Characters
/// outside [a-zA-Z0-9_] become '_'.
std::string PrometheusName(const std::string& series);

/// Renders snapshots in the Prometheus text exposition format (version
/// 0.0.4). Series are grouped by metric name across all snapshots so each
/// `# TYPE` line appears exactly once; within a metric, samples keep the
/// snapshot order. Counters expose as `counter`, gauges as `gauge`,
/// histograms as `summary` (quantile 0.5/0.99 + _sum + _count).
/// Output is deterministic for fixed input.
void WritePrometheusText(const std::vector<LabeledSnapshot>& snapshots,
                         std::ostream& out);

}  // namespace obs
}  // namespace massbft

#endif  // MASSBFT_OBS_PROMETHEUS_H_
