#include "obs/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace massbft {
namespace obs {

namespace {

constexpr int kPollTimeoutMs = 100;
constexpr size_t kMaxRequestBytes = 8 * 1024;

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Error";
  }
}

void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return;  // Client went away; nothing to do for a scrape endpoint.
    }
    off += static_cast<size_t>(n);
  }
}

}  // namespace

StatsServer::~StatsServer() { Stop(); }

void StatsServer::RegisterHandler(const std::string& path, Handler handler) {
  handlers_[path] = std::move(handler);
}

Status StatsServer::Start(uint16_t port) {
  if (running_.load(std::memory_order_acquire))
    return Status::FailedPrecondition("stats server already running");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Unavailable("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("stats server bind() failed: " +
                               std::string(std::strerror(errno)));
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("stats server listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void StatsServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_ = 0;
}

void StatsServer::Serve() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, kPollTimeoutMs);
    if (ready <= 0) continue;  // Timeout (re-check running_) or EINTR.
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    HandleConnection(client);
    ::close(client);
  }
}

void StatsServer::HandleConnection(int fd) {
  // Read until the end of the request head; the request line is all we use.
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find('\n') == std::string::npos) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, kPollTimeoutMs * 10) <= 0) return;
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;
    request.append(buf, static_cast<size_t>(n));
  }

  Response response;
  size_t line_end = request.find('\n');
  std::string line = request.substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response.status = 405;
    response.body = "malformed request\n";
  } else if (line.substr(0, sp1) != "GET") {
    response.status = 405;
    response.body = "only GET is supported\n";
  } else {
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    auto it = handlers_.find(path);
    if (it == handlers_.end()) {
      response.status = 404;
      response.body = "no handler for " + path + "\n";
    } else {
      response = it->second();
    }
  }

  std::string head = "HTTP/1.0 " + std::to_string(response.status) + " " +
                     StatusText(response.status) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " +
                     std::to_string(response.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  WriteAll(fd, head + response.body);
}

}  // namespace obs
}  // namespace massbft
