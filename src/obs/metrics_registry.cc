#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>

namespace massbft {
namespace obs {

int Histogram::BucketIndex(double v) {
  if (!(v > 0)) return 0;
  int exp = 0;
  std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1).
  int index = exp - 1 + kBucketBias;
  return std::clamp(index, 0, kNumBuckets - 1);
}

double Histogram::BucketUpperBound(int index) {
  return std::ldexp(1.0, index - kBucketBias + 1);
}

void Histogram::Record(double v) {
  if (!enabled_) return;
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  ++buckets_[static_cast<size_t>(BucketIndex(v))];
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)];
    if (seen > rank) {
      // Clamp the bucket bound into the observed range so tight
      // distributions report sensible values.
      return std::clamp(BucketUpperBound(i), min_, max_);
    }
  }
  return max_;
}

void Histogram::Reset() {
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
  buckets_.fill(0);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
    slot->enabled_ = enabled_;
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
    slot->enabled_ = enabled_;
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
    slot->enabled_ = enabled_;
  }
  return slot.get();
}

void MetricsRegistry::set_enabled(bool enabled) {
  enabled_ = enabled;
  for (auto& [name, c] : counters_) c->enabled_ = enabled;
  for (auto& [name, g] : gauges_) g->enabled_ = enabled;
  for (auto& [name, h] : histograms_) h->enabled_ = enabled;
}

void MetricsRegistry::ResetAll() {
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

void MetricsRegistry::WriteJson(JsonWriter& writer) const {
  writer.BeginObject();
  writer.Key("counters");
  writer.BeginObject();
  for (const auto& [name, c] : counters_) writer.Member(name, c->value());
  writer.EndObject();
  writer.Key("gauges");
  writer.BeginObject();
  for (const auto& [name, g] : gauges_) writer.Member(name, g->value());
  writer.EndObject();
  writer.Key("histograms");
  writer.BeginObject();
  for (const auto& [name, h] : histograms_) {
    writer.Key(name);
    writer.BeginObject();
    writer.Member("count", h->count());
    writer.Member("sum", h->sum());
    writer.Member("min", h->min());
    writer.Member("max", h->max());
    writer.Member("mean", h->mean());
    writer.Member("p50", h->Percentile(0.5));
    writer.Member("p99", h->Percentile(0.99));
    writer.EndObject();
  }
  writer.EndObject();
  writer.EndObject();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramStats stats;
    stats.count = h->count();
    stats.sum = h->sum();
    stats.min = h->min();
    stats.max = h->max();
    stats.mean = h->mean();
    stats.p50 = h->Percentile(0.5);
    stats.p99 = h->Percentile(0.99);
    snap.histograms.emplace_back(name, stats);
  }
  return snap;
}

}  // namespace obs
}  // namespace massbft
