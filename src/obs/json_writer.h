#ifndef MASSBFT_OBS_JSON_WRITER_H_
#define MASSBFT_OBS_JSON_WRITER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace massbft {
namespace obs {

/// Minimal streaming JSON writer used by the trace and metrics exporters.
/// Emits syntactically valid JSON (correct quoting/escaping, no trailing
/// commas); nesting is tracked so keys and values cannot be emitted in an
/// invalid position. Numbers are written in a locale-independent format
/// that round-trips through standard parsers.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits the key of the next member (inside an object only).
  void Key(const std::string& key);

  void Value(const std::string& v);
  void Value(const char* v);
  void Value(double v);
  void Value(int64_t v);
  void Value(uint64_t v);
  void Value(int v) { Value(static_cast<int64_t>(v)); }
  void Value(unsigned v) { Value(static_cast<uint64_t>(v)); }
  void Value(bool v);
  void Null();

  // Convenience: Key + Value.
  template <typename T>
  void Member(const std::string& key, T&& v) {
    Key(key);
    Value(std::forward<T>(v));
  }

  /// Escapes `s` for inclusion inside a JSON string literal.
  static std::string Escape(const std::string& s);

 private:
  enum class Scope { kObject, kArray };
  void MaybeComma();

  std::ostream& out_;
  std::vector<Scope> stack_;
  std::vector<bool> first_;   // Parallel to stack_.
  bool key_pending_ = false;  // A key was just written; value must follow.
};

}  // namespace obs
}  // namespace massbft

#endif  // MASSBFT_OBS_JSON_WRITER_H_
