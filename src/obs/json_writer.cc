#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace massbft {
namespace obs {

void JsonWriter::MaybeComma() {
  if (key_pending_) {
    key_pending_ = false;
    return;  // Value following a key: no comma, the key emitted it.
  }
  if (stack_.empty()) return;
  if (first_.back()) {
    first_.back() = false;
  } else {
    out_ << ',';
  }
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_ << '{';
  stack_.push_back(Scope::kObject);
  first_.push_back(true);
}

void JsonWriter::EndObject() {
  MASSBFT_CHECK(!stack_.empty() && stack_.back() == Scope::kObject);
  stack_.pop_back();
  first_.pop_back();
  out_ << '}';
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_ << '[';
  stack_.push_back(Scope::kArray);
  first_.push_back(true);
}

void JsonWriter::EndArray() {
  MASSBFT_CHECK(!stack_.empty() && stack_.back() == Scope::kArray);
  stack_.pop_back();
  first_.pop_back();
  out_ << ']';
}

void JsonWriter::Key(const std::string& key) {
  MASSBFT_CHECK(!stack_.empty() && stack_.back() == Scope::kObject);
  MASSBFT_CHECK(!key_pending_);
  MaybeComma();
  out_ << '"' << Escape(key) << "\":";
  key_pending_ = true;
}

void JsonWriter::Value(const std::string& v) {
  MaybeComma();
  out_ << '"' << Escape(v) << '"';
}

void JsonWriter::Value(const char* v) { Value(std::string(v)); }

void JsonWriter::Value(double v) {
  MaybeComma();
  if (!std::isfinite(v)) {
    out_ << "null";  // JSON has no Inf/NaN.
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ << buf;
}

void JsonWriter::Value(int64_t v) {
  MaybeComma();
  out_ << v;
}

void JsonWriter::Value(uint64_t v) {
  MaybeComma();
  out_ << v;
}

void JsonWriter::Value(bool v) {
  MaybeComma();
  out_ << (v ? "true" : "false");
}

void JsonWriter::Null() {
  MaybeComma();
  out_ << "null";
}

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace massbft
