#include "obs/trace_recorder.h"

#include <fstream>

namespace massbft {
namespace obs {

namespace {

/// Chrome trace timestamps are microseconds; keep nanosecond precision as
/// a fraction.
double ToMicros(SimTime t) { return static_cast<double>(t) / 1e3; }

void WriteArgs(JsonWriter& writer, const TraceArgs& args) {
  bool any = false;
  for (const TraceArg& arg : args)
    if (arg.key != nullptr) any = true;
  if (!any) return;
  writer.Key("args");
  writer.BeginObject();
  for (const TraceArg& arg : args)
    if (arg.key != nullptr) writer.Member(arg.key, arg.value);
  writer.EndObject();
}

}  // namespace

void TraceRecorder::RegisterTrack(uint32_t track, const std::string& name) {
  MutexLock lock(&mu_);
  track_names_[track] = name;
}

void TraceRecorder::RecordSpan(uint32_t track, const char* category,
                               const char* name, SimTime start, SimTime end,
                               TraceArgs args) {
  if (!enabled_) return;
  if (end < start) end = start;
  MutexLock lock(&mu_);
  events_.push_back(Event{EventKind::kSpan, track, category, name, start, end,
                          0, args});
}

void TraceRecorder::RecordInstant(uint32_t track, const char* category,
                                  const char* name, SimTime at,
                                  TraceArgs args) {
  if (!enabled_) return;
  MutexLock lock(&mu_);
  events_.push_back(
      Event{EventKind::kInstant, track, category, name, at, at, 0, args});
}

void TraceRecorder::RecordCounter(uint32_t track, const char* name, SimTime at,
                                  double value) {
  if (!enabled_) return;
  MutexLock lock(&mu_);
  events_.push_back(Event{EventKind::kCounter, track, nullptr, name, at, at,
                          value, TraceArgs{}});
}

size_t TraceRecorder::event_count() const {
  MutexLock lock(&mu_);
  return events_.size();
}

void TraceRecorder::Clear() {
  MutexLock lock(&mu_);
  events_.clear();
}

std::vector<TraceRecorder::Event> TraceRecorder::snapshot() const {
  MutexLock lock(&mu_);
  return events_;
}

std::map<uint32_t, std::string> TraceRecorder::track_names() const {
  MutexLock lock(&mu_);
  return track_names_;
}

void TraceRecorder::WriteChromeTrace(std::ostream& out) const {
  const std::vector<Event> events = snapshot();
  const std::map<uint32_t, std::string> names = track_names();

  JsonWriter writer(out);
  writer.BeginObject();
  writer.Member("displayTimeUnit", "ms");
  writer.Key("traceEvents");
  writer.BeginArray();

  // Track metadata first: names and a stable sort order by track id.
  for (const auto& [track, name] : names) {
    writer.BeginObject();
    writer.Member("name", "thread_name");
    writer.Member("ph", "M");
    writer.Member("pid", 0);
    writer.Member("tid", static_cast<uint64_t>(track));
    writer.Key("args");
    writer.BeginObject();
    writer.Member("name", name);
    writer.EndObject();
    writer.EndObject();
    writer.BeginObject();
    writer.Member("name", "thread_sort_index");
    writer.Member("ph", "M");
    writer.Member("pid", 0);
    writer.Member("tid", static_cast<uint64_t>(track));
    writer.Key("args");
    writer.BeginObject();
    writer.Member("sort_index", static_cast<uint64_t>(track));
    writer.EndObject();
    writer.EndObject();
  }

  for (const Event& event : events) {
    writer.BeginObject();
    switch (event.kind) {
      case EventKind::kSpan:
        writer.Member("name", event.name);
        writer.Member("cat", event.category);
        writer.Member("ph", "X");
        writer.Member("ts", ToMicros(event.start));
        writer.Member("dur", ToMicros(event.end - event.start));
        writer.Member("pid", 0);
        writer.Member("tid", static_cast<uint64_t>(event.track));
        WriteArgs(writer, event.args);
        break;
      case EventKind::kInstant:
        writer.Member("name", event.name);
        writer.Member("cat", event.category);
        writer.Member("ph", "i");
        writer.Member("s", "t");  // Thread-scoped instant.
        writer.Member("ts", ToMicros(event.start));
        writer.Member("pid", 0);
        writer.Member("tid", static_cast<uint64_t>(event.track));
        WriteArgs(writer, event.args);
        break;
      case EventKind::kCounter:
        writer.Member("name", event.name);
        writer.Member("ph", "C");
        writer.Member("ts", ToMicros(event.start));
        writer.Member("pid", 0);
        writer.Member("tid", static_cast<uint64_t>(event.track));
        writer.Key("args");
        writer.BeginObject();
        writer.Member("value", event.value);
        writer.EndObject();
        break;
    }
    writer.EndObject();
  }

  writer.EndArray();
  writer.EndObject();
  out << '\n';
}

Status TraceRecorder::WriteChromeTraceFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open())
    return Status::Unavailable("cannot open trace file: " + path);
  WriteChromeTrace(out);
  out.flush();
  if (!out.good())
    return Status::Unavailable("failed writing trace file: " + path);
  return Status::OK();
}

}  // namespace obs
}  // namespace massbft
