#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/telemetry.h"

namespace massbft {

namespace {

constexpr int kPollTimeoutMs = 50;
constexpr size_t kReadChunk = 64 * 1024;

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

Result<TcpPortMap> MakeLocalPortMap(const std::vector<int>& group_sizes,
                                    uint16_t base) {
  uint32_t total = 0;
  for (int size : group_sizes) {
    if (size < 0) return Status::InvalidArgument("negative group size");
    total += static_cast<uint32_t>(size);
  }
  if (total > 0 && static_cast<uint32_t>(base) + total - 1 > 65535)
    return Status::InvalidArgument(
        "port range overflows 65535: base " + std::to_string(base) + " + " +
        std::to_string(total) + " nodes");
  TcpPortMap ports;
  uint32_t next = base;
  for (size_t g = 0; g < group_sizes.size(); ++g)
    for (int i = 0; i < group_sizes[g]; ++i)
      ports[NodeId{static_cast<uint16_t>(g), static_cast<uint16_t>(i)}
                .Packed()] = static_cast<uint16_t>(next++);
  return ports;
}

TcpTransport::TcpTransport(NodeId self, TcpPortMap ports)
    : TcpTransport(self, std::move(ports), Options{}) {}

TcpTransport::TcpTransport(NodeId self, TcpPortMap ports, Options options)
    : self_(self),
      ports_(std::move(ports)),
      options_(options),
      jitter_rng_(0x7C7Bull * (self.Packed() + 1)) {}

TcpTransport::~TcpTransport() { Stop(); }

void TcpTransport::BindTelemetry(obs::Telemetry* telemetry) {
  if (telemetry == nullptr) return;
  telemetry_ = telemetry;
  obs::MetricsRegistry& registry = telemetry->registry();
  queue_depth_gauge_ = registry.GetGauge("net/queue_depth");
  reconnects_counter_ = registry.GetCounter("net/reconnects");
  backpressure_counter_ = registry.GetCounter("net/dropped_backpressure");
}

Status TcpTransport::Start(DeliverFn deliver) {
  auto it = ports_.find(self_.Packed());
  if (it == ports_.end())
    return Status::InvalidArgument("self has no port assignment");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return Status::FailedPrecondition("transport running");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Unavailable("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddr(it->second);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("bind() failed: " +
                           std::string(std::strerror(errno)));
  }
  if (::listen(listen_fd_, 64) != 0) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("listen() failed");
  }
  if (::pipe(wake_pipe_) != 0 || ::pipe(writer_wake_pipe_) != 0) {
    CloseFd(listen_fd_);
    CloseFd(wake_pipe_[0]);
    CloseFd(wake_pipe_[1]);
    listen_fd_ = wake_pipe_[0] = wake_pipe_[1] = -1;
    return Status::Unavailable("pipe() failed");
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    deliver_ = std::move(deliver);
    running_ = true;
  }
  io_thread_ = std::thread([this] { IoLoop(); });
  writer_thread_ = std::thread([this] { WriterLoop(); });
  return Status::OK();
}

void TcpTransport::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  // Wake both loops so they observe the flag.
  uint8_t byte = 0;
  [[maybe_unused]] ssize_t n1 = ::write(wake_pipe_[1], &byte, 1);
  WakeWriter();
  if (io_thread_.joinable()) io_thread_.join();
  if (writer_thread_.joinable()) writer_thread_.join();

  CloseFd(listen_fd_);
  listen_fd_ = -1;
  CloseFd(wake_pipe_[0]);
  CloseFd(wake_pipe_[1]);
  CloseFd(writer_wake_pipe_[0]);
  CloseFd(writer_wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  writer_wake_pipe_[0] = writer_wake_pipe_[1] = -1;

  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [packed, peer] : peers_) CloseFd(peer->fd);
  // Drop connection state and queued frames; a restarted transport dials
  // fresh. Counters survive restarts.
  peers_.clear();
  total_queued_frames_ = 0;
  UpdateQueueGaugeLocked();
}

Status TcpTransport::Send(NodeId dst, const ProtocolMessage& msg) {
  return SendEncoded(dst, EncodeFrame(msg, self_));
}

Status TcpTransport::SendEncoded(NodeId dst, Bytes wire) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!running_) return Status::FailedPrecondition("transport stopped");
  if (ports_.find(dst.Packed()) == ports_.end()) {
    stats_.send_errors++;
    return Status::NotFound("destination has no port assignment");
  }
  Peer& peer = PeerLocked(dst.Packed());
  if (peer.queue.size() >= options_.max_queue_frames ||
      peer.queued_bytes + wire.size() > options_.max_queue_bytes) {
    stats_.dropped_backpressure++;
    if (backpressure_counter_ != nullptr) backpressure_counter_->Add();
    RecordNetEvent("backpressure_drop", static_cast<double>(dst.Packed()),
                   static_cast<double>(wire.size()));
    return Status::Unavailable("send queue full (backpressure drop)");
  }
  peer.queued_bytes += wire.size();
  peer.queue.push_back(std::move(wire));
  total_queued_frames_++;
  UpdateQueueGaugeLocked();
  WakeWriter();
  return Status::OK();
}

TcpTransport::Peer& TcpTransport::PeerLocked(uint32_t dst_packed) {
  auto& slot = peers_[dst_packed];
  if (!slot) {
    slot = std::make_unique<Peer>();
    slot->packed = dst_packed;
  }
  return *slot;
}

void TcpTransport::RecordNetEvent(const char* name, double peer,
                                  double detail) {
  if (telemetry_ == nullptr) return;
  const SimTime now = telemetry_->TraceNowNs();
  telemetry_->flight().Record(static_cast<uint64_t>(now), "net", name, peer,
                              detail);
  if (telemetry_->tracing()) {
    telemetry_->trace().RecordInstant(
        obs::Telemetry::NodeTrack(self_.Packed()), "net", name, now,
        obs::TraceArgs{{{"peer", peer}, {"detail", detail}}});
  }
}

void TcpTransport::WakeWriter() {
  if (writer_wake_pipe_[1] < 0) return;
  uint8_t byte = 0;
  [[maybe_unused]] ssize_t n = ::write(writer_wake_pipe_[1], &byte, 1);
}

void TcpTransport::UpdateQueueGaugeLocked() {
  if (queue_depth_gauge_ != nullptr)
    queue_depth_gauge_->Set(static_cast<double>(total_queued_frames_));
}

void TcpTransport::BeginConnectLocked(Peer& peer, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    DisconnectLocked(peer);
    return;
  }
  SetNonBlocking(fd);
  sockaddr_in addr = LoopbackAddr(port);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc == 0) {
    peer.fd = fd;
    OnConnectedLocked(peer);
    return;
  }
  if (errno == EINPROGRESS) {
    peer.fd = fd;
    peer.state = Peer::State::kConnecting;
    return;
  }
  CloseFd(fd);
  DisconnectLocked(peer);
}

void TcpTransport::FinishConnectLocked(Peer& peer) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(peer.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
      err != 0) {
    CloseFd(peer.fd);
    peer.fd = -1;
    DisconnectLocked(peer);
    return;
  }
  OnConnectedLocked(peer);
}

void TcpTransport::OnConnectedLocked(Peer& peer) {
  int one = 1;
  ::setsockopt(peer.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  peer.state = Peer::State::kConnected;
  peer.backoff_ms = 0;
  if (peer.ever_connected) {
    stats_.reconnects++;
    if (reconnects_counter_ != nullptr) reconnects_counter_->Add();
    RecordNetEvent("reconnect", static_cast<double>(peer.packed), 0);
  }
  peer.ever_connected = true;
  FlushLocked(peer);
}

void TcpTransport::DisconnectLocked(Peer& peer) {
  CloseFd(peer.fd);
  peer.fd = -1;
  peer.state = Peer::State::kIdle;
  // A frame already partially on the wire cannot be resumed on a fresh
  // connection; drop it whole (the BFT layer owns retries).
  if (peer.write_off > 0 && !peer.queue.empty()) {
    peer.queued_bytes -= peer.queue.front().size();
    peer.queue.pop_front();
    total_queued_frames_--;
    stats_.send_errors++;
    UpdateQueueGaugeLocked();
  }
  peer.write_off = 0;
  // Exponential backoff with uniform jitter in [0.5x, 1.5x].
  peer.backoff_ms = peer.backoff_ms == 0
                        ? options_.backoff_initial_ms
                        : std::min(peer.backoff_ms * 2, options_.backoff_max_ms);
  double jitter = 0.5 + jitter_rng_.NextDouble();
  peer.next_dial =
      Clock::now() + std::chrono::microseconds(static_cast<int64_t>(
                         1000.0 * jitter * peer.backoff_ms));
  if (peer.ever_connected)
    RecordNetEvent("disconnect", static_cast<double>(peer.packed),
                   static_cast<double>(peer.backoff_ms));
}

void TcpTransport::FlushLocked(Peer& peer) {
  while (!peer.queue.empty()) {
    const Bytes& front = peer.queue.front();
    ssize_t n = ::send(peer.fd, front.data() + peer.write_off,
                       front.size() - peer.write_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // Socket full.
      DisconnectLocked(peer);  // Peer died mid-write; reconnect with backoff.
      return;
    }
    peer.write_off += static_cast<size_t>(n);
    if (peer.write_off < front.size()) return;  // Partial; wait for POLLOUT.
    stats_.frames_sent++;
    stats_.bytes_sent += front.size();
    peer.queued_bytes -= front.size();
    peer.queue.pop_front();
    peer.write_off = 0;
    total_queued_frames_--;
    UpdateQueueGaugeLocked();
  }
}

void TcpTransport::WriterLoop() {
  std::vector<pollfd> fds;
  std::vector<Peer*> polled;
  for (;;) {
    fds.clear();
    polled.clear();
    int timeout_ms = kPollTimeoutMs;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!running_) break;
      const Clock::time_point now = Clock::now();
      for (auto& [packed, slot] : peers_) {
        Peer& peer = *slot;
        if (peer.state == Peer::State::kIdle && !peer.queue.empty()) {
          if (now >= peer.next_dial) {
            auto port_it = ports_.find(packed);
            if (port_it != ports_.end())
              BeginConnectLocked(peer, port_it->second);
          }
          if (peer.state == Peer::State::kIdle) {
            // Still backing off: wake when the next dial is due.
            auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
                            peer.next_dial - now)
                            .count();
            timeout_ms = std::max(
                1, std::min(timeout_ms, static_cast<int>(wait) + 1));
          }
        }
        if (peer.state == Peer::State::kConnecting ||
            (peer.state == Peer::State::kConnected && !peer.queue.empty())) {
          fds.push_back(pollfd{peer.fd, POLLOUT, 0});
          polled.push_back(&peer);
        }
      }
    }
    fds.push_back(pollfd{writer_wake_pipe_[0], POLLIN, 0});

    int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) break;

    if (fds.back().revents & POLLIN) {
      uint8_t buf[64];
      [[maybe_unused]] ssize_t n =
          ::read(writer_wake_pipe_[0], buf, sizeof(buf));
    }

    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) break;
    // Peer objects are stable (unique_ptr values, map never erased while
    // running), so the pointers collected above remain valid.
    for (size_t i = 0; i < polled.size(); ++i) {
      if (!(fds[i].revents & (POLLOUT | POLLERR | POLLHUP))) continue;
      Peer& peer = *polled[i];
      if (peer.state == Peer::State::kConnecting) FinishConnectLocked(peer);
      if (peer.state == Peer::State::kConnected) FlushLocked(peer);
    }
  }
}

bool TcpTransport::DrainFrames(Conn& conn) {
  size_t offset = 0;
  while (conn.buffer.size() - offset >= kFrameHeaderBytes) {
    auto frame_len =
        PeekFrameLength(conn.buffer.data() + offset, conn.buffer.size() - offset);
    if (!frame_len.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.decode_errors++;
      return false;  // Framing lost; drop the connection.
    }
    if (conn.buffer.size() - offset < *frame_len) break;  // Partial frame.
    auto frame = DecodeFrame(conn.buffer.data() + offset, *frame_len);
    offset += *frame_len;
    DeliverFn deliver;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!frame.ok()) {
        stats_.decode_errors++;
        return false;
      }
      stats_.frames_received++;
      stats_.bytes_received += *frame_len;
      deliver = deliver_;
    }
    if (deliver) deliver(std::move(*frame));
  }
  if (offset > 0)
    conn.buffer.erase(conn.buffer.begin(),
                      conn.buffer.begin() + static_cast<ptrdiff_t>(offset));
  return true;
}

void TcpTransport::IoLoop() {
  std::vector<Conn> conns;
  std::vector<pollfd> fds;
  Bytes chunk(kReadChunk);

  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!running_) break;
    }
    fds.clear();
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    for (const Conn& c : conns) fds.push_back(pollfd{c.fd, POLLIN, 0});

    int ready = ::poll(fds.data(), fds.size(), kPollTimeoutMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;

    if (fds[0].revents & POLLIN) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        conns.push_back(Conn{fd, {}});
      }
    }
    if (fds[1].revents & POLLIN) {
      uint8_t byte;
      [[maybe_unused]] ssize_t n = ::read(wake_pipe_[0], &byte, 1);
    }

    // Walk connections back-to-front so erasing doesn't shift unvisited
    // entries. fds[i + 2] corresponds to conns[i].
    for (size_t i = conns.size(); i-- > 0;) {
      if (!(fds[i + 2].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      Conn& conn = conns[i];
      ssize_t n = ::read(conn.fd, chunk.data(), chunk.size());
      bool keep = n > 0;
      if (n > 0) {
        conn.buffer.insert(conn.buffer.end(), chunk.begin(),
                           chunk.begin() + n);
        keep = DrainFrames(conn);
      } else if (n < 0 && (errno == EINTR || errno == EAGAIN)) {
        keep = true;
      }
      if (!keep) {
        CloseFd(conn.fd);
        conns.erase(conns.begin() + static_cast<ptrdiff_t>(i));
      }
    }
  }

  for (Conn& c : conns) CloseFd(c.fd);
}

Transport::Stats TcpTransport::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace massbft
