#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace massbft {

namespace {

constexpr int kPollTimeoutMs = 50;
constexpr int kDialAttempts = 40;
constexpr auto kDialRetryDelay = std::chrono::milliseconds(50);
constexpr size_t kReadChunk = 64 * 1024;

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

int DialOnce(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    CloseFd(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool WriteAll(int fd, const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

TcpPortMap MakeLocalPortMap(const std::vector<int>& group_sizes,
                            uint16_t base) {
  TcpPortMap ports;
  uint16_t next = base;
  for (size_t g = 0; g < group_sizes.size(); ++g)
    for (int i = 0; i < group_sizes[g]; ++i)
      ports[NodeId{static_cast<uint16_t>(g), static_cast<uint16_t>(i)}
                .Packed()] = next++;
  return ports;
}

TcpTransport::TcpTransport(NodeId self, TcpPortMap ports)
    : self_(self), ports_(std::move(ports)) {}

TcpTransport::~TcpTransport() { Stop(); }

Status TcpTransport::Start(DeliverFn deliver) {
  auto it = ports_.find(self_.Packed());
  if (it == ports_.end())
    return Status::InvalidArgument("self has no port assignment");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Unavailable("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(it->second);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("bind() failed: " +
                           std::string(std::strerror(errno)));
  }
  if (::listen(listen_fd_, 64) != 0) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("listen() failed");
  }
  if (::pipe(wake_pipe_) != 0) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("pipe() failed");
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    deliver_ = std::move(deliver);
    running_ = true;
  }
  io_thread_ = std::thread([this] { IoLoop(); });
  return Status::OK();
}

void TcpTransport::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  // Wake the poll loop so it observes the flag.
  uint8_t byte = 0;
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  if (io_thread_.joinable()) io_thread_.join();

  CloseFd(listen_fd_);
  listen_fd_ = -1;
  CloseFd(wake_pipe_[0]);
  CloseFd(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;

  std::lock_guard<std::mutex> peers_lock(peers_mu_);
  for (auto& [packed, peer] : peers_) {
    std::lock_guard<std::mutex> peer_lock(peer->mu);
    CloseFd(peer->fd);
    peer->fd = -1;
  }
}

Status TcpTransport::Send(NodeId dst, const ProtocolMessage& msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return Status::FailedPrecondition("transport stopped");
  }
  Peer* peer;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    auto& slot = peers_[dst.Packed()];
    if (!slot) slot = std::make_unique<Peer>();
    peer = slot.get();
  }

  Bytes wire = EncodeFrame(msg, self_);
  std::lock_guard<std::mutex> peer_lock(peer->mu);
  if (peer->fd < 0) peer->fd = DialLocked(dst.Packed());
  if (peer->fd < 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.send_errors++;
    return Status::Unavailable("connect failed");
  }
  if (!WriteAll(peer->fd, wire.data(), wire.size())) {
    CloseFd(peer->fd);
    peer->fd = -1;
    std::lock_guard<std::mutex> lock(mu_);
    stats_.send_errors++;
    return Status::Unavailable("write failed");
  }
  std::lock_guard<std::mutex> lock(mu_);
  stats_.frames_sent++;
  stats_.bytes_sent += wire.size();
  return Status::OK();
}

int TcpTransport::DialLocked(uint32_t dst_packed) {
  auto it = ports_.find(dst_packed);
  if (it == ports_.end()) return -1;
  for (int attempt = 0; attempt < kDialAttempts; ++attempt) {
    int fd = DialOnce(it->second);
    if (fd >= 0) return fd;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!running_) return -1;
    }
    std::this_thread::sleep_for(kDialRetryDelay);
  }
  return -1;
}

bool TcpTransport::DrainFrames(Conn& conn) {
  size_t offset = 0;
  while (conn.buffer.size() - offset >= kFrameHeaderBytes) {
    auto frame_len =
        PeekFrameLength(conn.buffer.data() + offset, conn.buffer.size() - offset);
    if (!frame_len.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.decode_errors++;
      return false;  // Framing lost; drop the connection.
    }
    if (conn.buffer.size() - offset < *frame_len) break;  // Partial frame.
    auto frame = DecodeFrame(conn.buffer.data() + offset, *frame_len);
    offset += *frame_len;
    DeliverFn deliver;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!frame.ok()) {
        stats_.decode_errors++;
        return false;
      }
      stats_.frames_received++;
      stats_.bytes_received += *frame_len;
      deliver = deliver_;
    }
    if (deliver) deliver(std::move(*frame));
  }
  if (offset > 0)
    conn.buffer.erase(conn.buffer.begin(),
                      conn.buffer.begin() + static_cast<ptrdiff_t>(offset));
  return true;
}

void TcpTransport::IoLoop() {
  std::vector<Conn> conns;
  std::vector<pollfd> fds;
  Bytes chunk(kReadChunk);

  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!running_) break;
    }
    fds.clear();
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    for (const Conn& c : conns) fds.push_back(pollfd{c.fd, POLLIN, 0});

    int ready = ::poll(fds.data(), fds.size(), kPollTimeoutMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;

    if (fds[0].revents & POLLIN) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        conns.push_back(Conn{fd, {}});
      }
    }
    if (fds[1].revents & POLLIN) {
      uint8_t byte;
      [[maybe_unused]] ssize_t n = ::read(wake_pipe_[0], &byte, 1);
    }

    // Walk connections back-to-front so erasing doesn't shift unvisited
    // entries. fds[i + 2] corresponds to conns[i].
    for (size_t i = conns.size(); i-- > 0;) {
      if (!(fds[i + 2].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      Conn& conn = conns[i];
      ssize_t n = ::read(conn.fd, chunk.data(), chunk.size());
      bool keep = n > 0;
      if (n > 0) {
        conn.buffer.insert(conn.buffer.end(), chunk.begin(),
                           chunk.begin() + n);
        keep = DrainFrames(conn);
      } else if (n < 0 && (errno == EINTR || errno == EAGAIN)) {
        keep = true;
      }
      if (!keep) {
        CloseFd(conn.fd);
        conns.erase(conns.begin() + static_cast<ptrdiff_t>(i));
      }
    }
  }

  for (Conn& c : conns) CloseFd(c.fd);
}

Transport::Stats TcpTransport::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace massbft
