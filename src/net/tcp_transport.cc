#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "net/buffer_pool.h"
#include "obs/telemetry.h"

namespace massbft {

namespace {

constexpr int kPollTimeoutMs = 50;
/// Receive chunk per recv() — large so one syscall drains a burst of small
/// frames — and the per-connection cap per wakeup so one firehose peer
/// cannot starve the others.
constexpr size_t kRecvChunk = 256 * 1024;
constexpr size_t kMaxReadPerWake = 1 << 20;
/// Sender batch bounds: at most this many frames (iovec entries) and bytes
/// per sendmsg(). IOV_MAX is >= 1024 everywhere; 64 already amortizes the
/// syscall to noise while keeping the partial-write walk short.
constexpr size_t kMaxBatchIov = 128;
constexpr size_t kMaxBatchBytes = 1 << 20;

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

Result<TcpPortMap> MakeLocalPortMap(const std::vector<int>& group_sizes,
                                    uint16_t base) {
  uint32_t total = 0;
  for (int size : group_sizes) {
    if (size < 0) return Status::InvalidArgument("negative group size");
    total += static_cast<uint32_t>(size);
  }
  if (total > 0 && static_cast<uint32_t>(base) + total - 1 > 65535)
    return Status::InvalidArgument(
        "port range overflows 65535: base " + std::to_string(base) + " + " +
        std::to_string(total) + " nodes");
  TcpPortMap ports;
  uint32_t next = base;
  for (size_t g = 0; g < group_sizes.size(); ++g)
    for (int i = 0; i < group_sizes[g]; ++i)
      ports[NodeId{static_cast<uint16_t>(g), static_cast<uint16_t>(i)}
                .Packed()] = static_cast<uint16_t>(next++);
  return ports;
}

TcpTransport::TcpTransport(NodeId self, TcpPortMap ports)
    : TcpTransport(self, std::move(ports), Options{}) {}

TcpTransport::TcpTransport(NodeId self, TcpPortMap ports, Options options)
    : self_(self),
      ports_(std::move(ports)),
      options_(options),
      jitter_rng_(0x7C7Bull * (self.Packed() + 1)) {}

TcpTransport::~TcpTransport() { Stop(); }

void TcpTransport::BindTelemetry(obs::Telemetry* telemetry) {
  if (telemetry == nullptr) return;
  telemetry_ = telemetry;
  obs::MetricsRegistry& registry = telemetry->registry();
  queue_depth_gauge_ = registry.GetGauge("net/queue_depth");
  reconnects_counter_ = registry.GetCounter("net/reconnects");
  backpressure_counter_ = registry.GetCounter("net/dropped_backpressure");
}

Status TcpTransport::Start(DeliverFn deliver) {
  auto it = ports_.find(self_.Packed());
  if (it == ports_.end())
    return Status::InvalidArgument("self has no port assignment");
  {
    MutexLock lock(&mu_);
    if (running_) return Status::FailedPrecondition("transport running");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Unavailable("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddr(it->second);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("bind() failed: " +
                           std::string(std::strerror(errno)));
  }
  if (::listen(listen_fd_, 64) != 0) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("listen() failed");
  }
  if (::pipe(wake_pipe_) != 0 || ::pipe(writer_wake_pipe_) != 0) {
    CloseFd(listen_fd_);
    CloseFd(wake_pipe_[0]);
    CloseFd(wake_pipe_[1]);
    listen_fd_ = wake_pipe_[0] = wake_pipe_[1] = -1;
    return Status::Unavailable("pipe() failed");
  }

  {
    MutexLock lock(&mu_);
    deliver_ = std::move(deliver);
    running_ = true;
  }
  io_thread_ = std::thread([this] { IoLoop(); });
  writer_thread_ = std::thread([this] { WriterLoop(); });
  return Status::OK();
}

void TcpTransport::Stop() {
  {
    MutexLock lock(&mu_);
    if (!running_) return;
    running_ = false;
  }
  // Wake both loops so they observe the flag.
  uint8_t byte = 0;
  [[maybe_unused]] ssize_t n1 = ::write(wake_pipe_[1], &byte, 1);
  WakeWriter();
  if (io_thread_.joinable()) io_thread_.join();
  if (writer_thread_.joinable()) writer_thread_.join();

  CloseFd(listen_fd_);
  listen_fd_ = -1;
  CloseFd(wake_pipe_[0]);
  CloseFd(wake_pipe_[1]);
  CloseFd(writer_wake_pipe_[0]);
  CloseFd(writer_wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  writer_wake_pipe_[0] = writer_wake_pipe_[1] = -1;

  MutexLock lock(&mu_);
  for (auto& [packed, peer] : peers_) {
    CloseFd(peer->fd);
    for (QueuedFrame& frame : peer->queue) RecycleFrame(frame);
  }
  // Drop connection state and queued frames; a restarted transport dials
  // fresh. Counters survive restarts.
  peers_.clear();
  total_queued_frames_ = 0;
  UpdateQueueGaugeLocked();
}

Status TcpTransport::Send(NodeId dst, const ProtocolMessage& msg) {
  // Encode outside mu_ into a pooled buffer: the hot path's only
  // allocation is the pool warming up, and encode cost never serializes
  // concurrent senders.
  Bytes wire = WireBufferPool().Acquire();
  EncodeFrameInto(msg, self_, &wire);
  return EnqueueFrame(dst, std::move(wire), /*pooled=*/true);
}

Status TcpTransport::SendEncoded(NodeId dst, Bytes wire) {
  return EnqueueFrame(dst, std::move(wire), /*pooled=*/false);
}

void TcpTransport::RecycleFrame(QueuedFrame& frame) {
  if (frame.pooled) WireBufferPool().Release(std::move(frame.wire));
}

Status TcpTransport::EnqueueFrame(NodeId dst, Bytes wire, bool pooled) {
  QueuedFrame frame{std::move(wire), pooled};
  MutexLock lock(&mu_);
  if (!running_) {
    RecycleFrame(frame);
    return Status::FailedPrecondition("transport stopped");
  }
  if (ports_.find(dst.Packed()) == ports_.end()) {
    stats_.send_errors++;
    RecycleFrame(frame);
    return Status::NotFound("destination has no port assignment");
  }
  Peer& peer = PeerLocked(dst.Packed());
  if (peer.queue.size() >= options_.max_queue_frames ||
      peer.queued_bytes + frame.wire.size() > options_.max_queue_bytes) {
    stats_.dropped_backpressure++;
    if (backpressure_counter_ != nullptr) backpressure_counter_->Add();
    RecordNetEvent("backpressure_drop", static_cast<double>(dst.Packed()),
                   static_cast<double>(frame.wire.size()));
    RecycleFrame(frame);
    return Status::Unavailable("send queue full (backpressure drop)");
  }
  const bool was_empty = peer.queue.empty();
  peer.queued_bytes += frame.wire.size();
  peer.queue.push_back(std::move(frame));
  total_queued_frames_++;
  UpdateQueueGaugeLocked();
  // Only the empty->nonempty transition needs a wake (a pipe write is a
  // syscall — on the per-frame path it would cost as much as the batched
  // sendmsg saves). With a nonempty queue the writer is already polling
  // this peer's socket or its dial timer.
  if (was_empty) WakeWriter();
  return Status::OK();
}

TcpTransport::Peer& TcpTransport::PeerLocked(uint32_t dst_packed) {
  auto& slot = peers_[dst_packed];
  if (!slot) {
    slot = std::make_unique<Peer>();
    slot->packed = dst_packed;
  }
  return *slot;
}

void TcpTransport::RecordNetEvent(const char* name, double peer,
                                  double detail) {
  if (telemetry_ == nullptr) return;
  const SimTime now = telemetry_->TraceNowNs();
  telemetry_->flight().Record(static_cast<uint64_t>(now), "net", name, peer,
                              detail);
  if (telemetry_->tracing()) {
    telemetry_->trace().RecordInstant(
        obs::Telemetry::NodeTrack(self_.Packed()), "net", name, now,
        obs::TraceArgs{{{"peer", peer}, {"detail", detail}}});
  }
}

void TcpTransport::WakeWriter() {
  if (writer_wake_pipe_[1] < 0) return;
  uint8_t byte = 0;
  [[maybe_unused]] ssize_t n = ::write(writer_wake_pipe_[1], &byte, 1);
}

void TcpTransport::UpdateQueueGaugeLocked() {
  if (queue_depth_gauge_ != nullptr)
    queue_depth_gauge_->Set(static_cast<double>(total_queued_frames_));
}

void TcpTransport::BeginConnectLocked(Peer& peer, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    DisconnectLocked(peer);
    return;
  }
  SetNonBlocking(fd);
  sockaddr_in addr = LoopbackAddr(port);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc == 0) {
    peer.fd = fd;
    OnConnectedLocked(peer);
    return;
  }
  if (errno == EINPROGRESS) {
    peer.fd = fd;
    peer.state = Peer::State::kConnecting;
    return;
  }
  CloseFd(fd);
  DisconnectLocked(peer);
}

void TcpTransport::FinishConnectLocked(Peer& peer) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(peer.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
      err != 0) {
    CloseFd(peer.fd);
    peer.fd = -1;
    DisconnectLocked(peer);
    return;
  }
  OnConnectedLocked(peer);
}

void TcpTransport::OnConnectedLocked(Peer& peer) {
  int one = 1;
  ::setsockopt(peer.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  peer.state = Peer::State::kConnected;
  peer.backoff_ms = 0;
  if (peer.ever_connected) {
    stats_.reconnects++;
    if (reconnects_counter_ != nullptr) reconnects_counter_->Add();
    RecordNetEvent("reconnect", static_cast<double>(peer.packed), 0);
  }
  peer.ever_connected = true;
  FlushLocked(peer);
}

void TcpTransport::DisconnectLocked(Peer& peer) {
  CloseFd(peer.fd);
  peer.fd = -1;
  peer.state = Peer::State::kIdle;
  // A frame already partially on the wire cannot be resumed on a fresh
  // connection; drop it whole (the BFT layer owns retries).
  if (peer.write_off > 0 && !peer.queue.empty()) {
    peer.queued_bytes -= peer.queue.front().wire.size();
    RecycleFrame(peer.queue.front());
    peer.queue.pop_front();
    total_queued_frames_--;
    stats_.send_errors++;
    UpdateQueueGaugeLocked();
  }
  peer.write_off = 0;
  // Exponential backoff with uniform jitter in [0.5x, 1.5x].
  peer.backoff_ms = peer.backoff_ms == 0
                        ? options_.backoff_initial_ms
                        : std::min(peer.backoff_ms * 2, options_.backoff_max_ms);
  double jitter = 0.5 + jitter_rng_.NextDouble();
  peer.next_dial =
      Clock::now() + std::chrono::microseconds(static_cast<int64_t>(
                         1000.0 * jitter * peer.backoff_ms));
  if (peer.ever_connected)
    RecordNetEvent("disconnect", static_cast<double>(peer.packed),
                   static_cast<double>(peer.backoff_ms));
}

void TcpTransport::FlushLocked(Peer& peer) {
  size_t popped = 0;
  // Pooled buffers from sent frames collect here and recycle under one
  // pool lock per flush instead of one per frame.
  recycle_scratch_.clear();
  while (!peer.queue.empty()) {
    // Gather up to kMaxBatchIov queued frames into one scatter-gather
    // write. The first entry starts at write_off when a previous call left
    // the front frame partially on the wire.
    iovec iov[kMaxBatchIov];
    size_t niov = 0;
    size_t batch_bytes = 0;
    size_t skip = peer.write_off;
    for (const QueuedFrame& frame : peer.queue) {
      if (niov == kMaxBatchIov || batch_bytes >= kMaxBatchBytes) break;
      iov[niov].iov_base = const_cast<uint8_t*>(frame.wire.data() + skip);
      iov[niov].iov_len = frame.wire.size() - skip;
      batch_bytes += iov[niov].iov_len;
      ++niov;
      skip = 0;
    }

    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = niov;
    ssize_t n = ::sendmsg(peer.fd, &mh, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;  // Socket full.
      if (popped > 0) UpdateQueueGaugeLocked();
      if (!recycle_scratch_.empty())
        WireBufferPool().ReleaseAll(&recycle_scratch_);
      DisconnectLocked(peer);  // Peer died mid-write; reconnect with backoff.
      return;
    }
    stats_.send_syscalls++;

    // Walk the accepted byte count over the queue: whole frames pop (and
    // their pooled buffers recycle), a trailing partial frame records its
    // resume offset in write_off.
    size_t accepted = static_cast<size_t>(n);
    while (accepted > 0) {
      QueuedFrame& front = peer.queue.front();
      const size_t remaining = front.wire.size() - peer.write_off;
      if (accepted < remaining) {
        peer.write_off += accepted;
        break;
      }
      accepted -= remaining;
      stats_.frames_sent++;
      stats_.bytes_sent += front.wire.size();
      peer.queued_bytes -= front.wire.size();
      if (front.pooled) recycle_scratch_.push_back(std::move(front.wire));
      peer.queue.pop_front();
      peer.write_off = 0;
      total_queued_frames_--;
      popped++;
    }
    if (static_cast<size_t>(n) < batch_bytes) break;  // Wait for POLLOUT.
  }
  // One gauge update per flush, not per frame: the gauge is for humans and
  // the per-pop Set() was measurable at millions of frames/sec.
  if (popped > 0) UpdateQueueGaugeLocked();
  if (!recycle_scratch_.empty()) WireBufferPool().ReleaseAll(&recycle_scratch_);
}

void TcpTransport::WriterLoop() {
  std::vector<pollfd> fds;
  std::vector<Peer*> polled;
  for (;;) {
    fds.clear();
    polled.clear();
    int timeout_ms = kPollTimeoutMs;
    {
      MutexLock lock(&mu_);
      if (!running_) break;
      const Clock::time_point now = Clock::now();
      for (auto& [packed, slot] : peers_) {
        Peer& peer = *slot;
        if (peer.state == Peer::State::kIdle && !peer.queue.empty()) {
          if (now >= peer.next_dial) {
            auto port_it = ports_.find(packed);
            if (port_it != ports_.end())
              BeginConnectLocked(peer, port_it->second);
          }
          if (peer.state == Peer::State::kIdle) {
            // Still backing off: wake when the next dial is due.
            auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
                            peer.next_dial - now)
                            .count();
            timeout_ms = std::max(
                1, std::min(timeout_ms, static_cast<int>(wait) + 1));
          }
        }
        if (peer.state == Peer::State::kConnecting ||
            (peer.state == Peer::State::kConnected && !peer.queue.empty())) {
          fds.push_back(pollfd{peer.fd, POLLOUT, 0});
          polled.push_back(&peer);
        }
      }
    }
    fds.push_back(pollfd{writer_wake_pipe_[0], POLLIN, 0});

    int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) break;

    if (fds.back().revents & POLLIN) {
      uint8_t buf[64];
      [[maybe_unused]] ssize_t n =
          ::read(writer_wake_pipe_[0], buf, sizeof(buf));
    }

    MutexLock lock(&mu_);
    if (!running_) break;
    // Peer objects are stable (unique_ptr values, map never erased while
    // running), so the pointers collected above remain valid.
    for (size_t i = 0; i < polled.size(); ++i) {
      if (!(fds[i].revents & (POLLOUT | POLLERR | POLLHUP))) continue;
      Peer& peer = *polled[i];
      if (peer.state == Peer::State::kConnecting) FinishConnectLocked(peer);
      if (peer.state == Peer::State::kConnected) FlushLocked(peer);
    }
  }
}

bool TcpTransport::ReadAndDeliver(Conn& conn) {
  // Drain the socket with large recv()s straight into the reassembler's
  // writable tail — no staging copy. Bounded per wakeup so one firehose
  // connection cannot starve the rest of the poll set.
  size_t read_total = 0;
  uint64_t reads = 0;
  bool closed = false;
  while (read_total < kMaxReadPerWake) {
    uint8_t* dst = conn.rx.WritableData(kRecvChunk);
    ssize_t n = ::read(conn.fd, dst, kRecvChunk);
    if (n > 0) {
      conn.rx.CommitWrite(static_cast<size_t>(n));
      read_total += static_cast<size_t>(n);
      reads++;
      if (static_cast<size_t>(n) < kRecvChunk) break;  // Socket drained.
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    closed = true;  // EOF or hard error; deliver what we have, then close.
    break;
  }

  // Decode the whole batch, then deliver in order. Frames decoded before a
  // framing error still reach the engine; the connection dies after.
  std::vector<Frame> frames;
  const size_t pending_before = conn.rx.PendingBytes();
  const Status drained = conn.rx.Drain(&frames);
  const size_t consumed = pending_before - conn.rx.PendingBytes();

  DeliverFn deliver;
  {
    MutexLock lock(&mu_);
    stats_.recv_syscalls += reads;
    stats_.frames_received += frames.size();
    stats_.bytes_received += consumed;
    if (!drained.ok()) stats_.decode_errors++;
    deliver = deliver_;
  }
  if (deliver)
    for (Frame& frame : frames) deliver(std::move(frame));
  return drained.ok() && !closed;
}

void TcpTransport::IoLoop() {
  std::vector<Conn> conns;
  std::vector<pollfd> fds;

  for (;;) {
    {
      MutexLock lock(&mu_);
      if (!running_) break;
    }
    fds.clear();
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    for (const Conn& c : conns) fds.push_back(pollfd{c.fd, POLLIN, 0});

    int ready = ::poll(fds.data(), fds.size(), kPollTimeoutMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;

    if (fds[0].revents & POLLIN) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        // Non-blocking so the recv-until-EAGAIN loop never stalls the
        // whole poll set on one connection.
        SetNonBlocking(fd);
        conns.emplace_back(fd);
      }
    }
    if (fds[1].revents & POLLIN) {
      uint8_t byte;
      [[maybe_unused]] ssize_t n = ::read(wake_pipe_[0], &byte, 1);
    }

    // Walk connections back-to-front so erasing doesn't shift unvisited
    // entries. fds[i + 2] corresponds to conns[i].
    for (size_t i = conns.size(); i-- > 0;) {
      if (!(fds[i + 2].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      if (!ReadAndDeliver(conns[i])) {
        CloseFd(conns[i].fd);
        conns.erase(conns.begin() + static_cast<ptrdiff_t>(i));
      }
    }
  }

  for (Conn& c : conns) CloseFd(c.fd);
}

Transport::Stats TcpTransport::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace massbft
