#ifndef MASSBFT_NET_FAULT_TRANSPORT_H_
#define MASSBFT_NET_FAULT_TRANSPORT_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/lock_rank.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "net/transport.h"

namespace massbft {

namespace obs {
class Counter;
class Telemetry;
}  // namespace obs

/// Fault schedule for one node's transport (paper Section VI-E-style
/// failure experiments). Rates are independent per-frame probabilities
/// drawn from a seeded Rng, so a run with the same seed and message
/// sequence injects the same faults.
struct FaultSpec {
  uint64_t seed = 1;
  /// P(outbound frame silently dropped).
  double drop_rate = 0;
  /// P(outbound frame sent twice).
  double duplicate_rate = 0;
  /// P(outbound frame sent with one byte flipped). The receiver's CRC
  /// rejects it and counts a decode error — corruption on the wire is
  /// exercised end to end, not simulated as a drop.
  double corrupt_rate = 0;
  /// P(outbound frame held back for a uniform delay in [min, max] ms).
  /// Delay stalls the link rather than reordering it: frames sent to the
  /// same destination after a delayed frame queue behind it, preserving
  /// per-link FIFO. Real TCP never reorders within a connection, and the
  /// VTS ordering engine's lower-bound inference (Algorithm 2) is only
  /// sound under that per-channel monotonicity — injecting reorderings
  /// would inject a fault no supported deployment can exhibit.
  double delay_rate = 0;
  double delay_min_ms = 1.0;
  double delay_max_ms = 20.0;

  /// During [start_s, end_s) since Start(), frames crossing between the
  /// groups in `side_a` and everyone else are dropped in both directions.
  struct Partition {
    double start_s = 0;
    double end_s = 0;
    std::vector<uint16_t> side_a;
  };
  std::vector<Partition> partitions;

  bool any() const {
    return drop_rate > 0 || duplicate_rate > 0 || corrupt_rate > 0 ||
           delay_rate > 0 || !partitions.empty();
  }
};

/// What the injector did, by fault class.
struct FaultStats {
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t corrupted = 0;
  uint64_t delayed = 0;
  uint64_t partition_dropped = 0;
  uint64_t total() const {
    return dropped + duplicated + corrupted + delayed + partition_dropped;
  }
};

/// Decorator that wraps any Transport and injects faults on the send path
/// (drop/duplicate/corrupt/delay, per FaultSpec) plus partition filtering
/// on both send and deliver paths. Delayed frames are re-sent as encoded
/// bytes from a dedicated timer thread via the inner transport's
/// SendEncoded seam, and the delay queue is FIFO per destination — faults
/// add latency, never reorderings (see FaultSpec::delay_rate); corrupted
/// frames likewise carry real mangled bytes so the receiving codec's CRC
/// rejection is exercised.
///
/// Observability (after BindTelemetry): counters `faults/dropped`,
/// `faults/duplicated`, `faults/corrupted`, `faults/delayed`,
/// `faults/partition_dropped` in the bound registry.
class FaultInjectingTransport : public Transport {
 public:
  FaultInjectingTransport(std::unique_ptr<Transport> inner, FaultSpec spec);
  ~FaultInjectingTransport() override;

  [[nodiscard]] Status Start(DeliverFn deliver) override;
  [[nodiscard]] Status Send(NodeId dst, const ProtocolMessage& msg) override;
  [[nodiscard]] Status SendEncoded(NodeId dst, Bytes wire) override;
  void Stop() override;
  void BindTelemetry(obs::Telemetry* telemetry) override;
  NodeId self() const override { return inner_->self(); }
  Stats stats() const override { return inner_->stats(); }

  FaultStats fault_stats() const;
  Transport* inner() { return inner_.get(); }

 private:
  using Clock = std::chrono::steady_clock;

  struct DelayedFrame {
    Clock::time_point due;
    uint64_t seq;  // Tie-break so equal due times keep enqueue order.
    NodeId dst;
    Bytes wire;
    bool operator>(const DelayedFrame& other) const {
      if (due != other.due) return due > other.due;
      return seq > other.seq;
    }
  };

  /// True when an active partition window separates the two nodes.
  bool PartitionedLocked(NodeId a, NodeId b) const MASSBFT_REQUIRES(mu_);
  /// Sends `wire` to dst preserving per-link FIFO: queues it behind any
  /// still-pending delayed frames to the same destination (with at least
  /// `delay_ms` of extra latency); sends immediately when the link is
  /// clear and no delay was drawn.
  [[nodiscard]] Status ForwardFifo(NodeId dst, Bytes wire, double delay_ms);
  void TimerLoop();
  /// Records one injected fault in the owning node's flight recorder and
  /// (when tracing) as a trace instant on its track.
  void RecordFaultEvent(const char* name, double peer, double detail);

  std::unique_ptr<Transport> inner_;
  FaultSpec spec_;

  // kFaultInjector ranks above the runtime that calls Send and below the
  // inner transport lock: the timer thread re-sends delayed frames through
  // inner_->SendEncoded with mu_ released, so the two never nest.
  mutable RankedMutex mu_{"fault.mu", LockRank::kFaultInjector};
  Rng rng_ MASSBFT_GUARDED_BY(mu_);
  FaultStats fault_stats_ MASSBFT_GUARDED_BY(mu_);
  bool running_ MASSBFT_GUARDED_BY(mu_) = false;
  bool epoch_set_ MASSBFT_GUARDED_BY(mu_) = false;
  // Partition windows are relative to this.
  Clock::time_point epoch_ MASSBFT_GUARDED_BY(mu_);
  std::priority_queue<DelayedFrame, std::vector<DelayedFrame>,
                      std::greater<DelayedFrame>>
      delayed_ MASSBFT_GUARDED_BY(mu_);
  uint64_t delay_seq_ MASSBFT_GUARDED_BY(mu_) = 0;
  /// Frames queued or in flight per destination (keyed by NodeId::Packed):
  /// while nonzero, every new frame to that destination must queue too,
  /// or it would overtake the delayed ones and reorder the link.
  std::unordered_map<uint32_t, int> link_pending_ MASSBFT_GUARDED_BY(mu_);
  /// Latest scheduled release time per destination; later frames to the
  /// same destination release no earlier.
  std::unordered_map<uint32_t, Clock::time_point> link_release_
      MASSBFT_GUARDED_BY(mu_);
  /// Signaled under mu_ (timer wakeups: new delayed frame or Stop()).
  std::condition_variable_any cv_;
  std::thread timer_thread_;

  // Pre-resolved observability handles (null when unwired).
  obs::Telemetry* telemetry_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;
  obs::Counter* duplicated_counter_ = nullptr;
  obs::Counter* corrupted_counter_ = nullptr;
  obs::Counter* delayed_counter_ = nullptr;
  obs::Counter* partition_counter_ = nullptr;
};

}  // namespace massbft

#endif  // MASSBFT_NET_FAULT_TRANSPORT_H_
