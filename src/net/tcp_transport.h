#ifndef MASSBFT_NET_TCP_TRANSPORT_H_
#define MASSBFT_NET_TCP_TRANSPORT_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/lock_rank.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/rng.h"
#include "net/rx_ring.h"
#include "net/transport.h"

namespace massbft {

namespace obs {
class Counter;
class Gauge;
class Telemetry;
}  // namespace obs

/// Maps every node to its TCP listen port on 127.0.0.1.
using TcpPortMap = std::unordered_map<uint32_t, uint16_t>;  // Packed -> port

/// Assigns consecutive ports starting at `base` to every node of the
/// given group sizes, group-major (the order of Topology::AllNodes()).
/// Fails with InvalidArgument when the range would run past port 65535.
[[nodiscard]] Result<TcpPortMap> MakeLocalPortMap(
    const std::vector<int>& group_sizes, uint16_t base);

/// Length-prefixed frame transport over localhost TCP, built to survive
/// peer failure without ever blocking the caller.
///
/// Threads:
///  * One reader thread polls the listen socket and all accepted
///    connections; each wakeup drains a ready socket with large recv()s
///    into a per-connection FrameReassembler, then decodes and delivers
///    every complete frame in one batch on that thread.
///  * One writer thread owns every outbound connection. Send() only
///    encodes (into a pooled buffer — see WireBufferPool) and enqueues onto
///    a bounded per-peer queue (drop-with-counter on overflow — BFT
///    protocols tolerate loss, unbounded memory does not), so a send to a
///    dead peer returns in microseconds. The writer coalesces all queued
///    frames for a peer into bounded scatter-gather sendmsg() batches —
///    one syscall moves up to kMaxBatchIov frames — resuming correctly
///    when the kernel accepts a prefix that ends mid-frame. It establishes
///    connections with non-blocking connect() and retries with exponential
///    backoff plus jitter; queued frames wait for the connection and flow
///    once it lands.
///
/// All socket writes use MSG_NOSIGNAL on non-blocking sockets: a peer that
/// closes mid-write yields an error handled by reconnect, never SIGPIPE.
///
/// Connections are used one-directionally: A->B traffic flows on the
/// connection A dialed, B->A on B's. Frames carry the sender id, so no
/// handshake is needed. A connection that delivers a corrupt frame is
/// closed (stream framing is lost once bytes are bad); the sender's writer
/// re-dials with backoff.
///
/// Observability (after BindTelemetry): gauge `net/queue_depth` (total
/// frames queued across peers), counters `net/reconnects` and
/// `net/dropped_backpressure`.
class TcpTransport : public Transport {
 public:
  struct Options {
    /// Per-peer send-queue bounds; the first one exceeded drops the frame.
    size_t max_queue_frames = 1024;
    size_t max_queue_bytes = 16 * 1024 * 1024;
    /// Reconnect backoff: initial delay doubles to the max, each delay
    /// jittered uniformly in [0.5x, 1.5x] to avoid thundering redials.
    int backoff_initial_ms = 5;
    int backoff_max_ms = 640;
  };

  // Two overloads instead of `Options options = Options{}`: a default
  // argument may not use the NSDMIs of a nested class still being defined.
  TcpTransport(NodeId self, TcpPortMap ports);
  TcpTransport(NodeId self, TcpPortMap ports, Options options);
  ~TcpTransport() override;

  [[nodiscard]] Status Start(DeliverFn deliver) override;
  [[nodiscard]] Status Send(NodeId dst, const ProtocolMessage& msg) override;
  [[nodiscard]] Status SendEncoded(NodeId dst, Bytes wire) override;
  void Stop() override;
  void BindTelemetry(obs::Telemetry* telemetry) override;
  NodeId self() const override { return self_; }
  Stats stats() const override;

 private:
  using Clock = std::chrono::steady_clock;

  struct Conn {
    explicit Conn(int f) : fd(f) {}
    int fd = -1;
    FrameReassembler rx;  // Unconsumed inbound bytes + frame boundaries.
  };

  /// One queued outbound frame. `pooled` frames were encoded into a
  /// WireBufferPool buffer and are Release()d back once the kernel accepts
  /// the last byte (or the frame is dropped); SendEncoded frames arrive
  /// from outside the pool and are simply freed.
  struct QueuedFrame {
    Bytes wire;
    bool pooled = false;
  };

  /// Outbound state machine for one destination. Owned by the writer
  /// thread; all fields are guarded by mu_ (socket syscalls are
  /// non-blocking, so holding mu_ across them is bounded).
  struct Peer {
    enum class State { kIdle, kConnecting, kConnected };
    State state = State::kIdle;
    uint32_t packed = 0;  // Destination NodeId::Packed (for diagnostics).
    int fd = -1;
    std::deque<QueuedFrame> queue;
    size_t queued_bytes = 0;
    size_t write_off = 0;  // Bytes of queue.front() already on the wire.
    Clock::time_point next_dial{};  // Earliest next connect attempt.
    int backoff_ms = 0;             // 0 = connect immediately.
    bool ever_connected = false;
  };

  void IoLoop();
  void WriterLoop();
  /// Reads the ready socket until EAGAIN (bounded for fairness), decodes
  /// every complete frame and delivers them in order; returns false when
  /// the connection must be closed (EOF or corrupt stream).
  bool ReadAndDeliver(Conn& conn);

  Peer& PeerLocked(uint32_t dst_packed) MASSBFT_REQUIRES(mu_);
  /// Enqueues one encoded frame for `dst` (shared Send/SendEncoded path).
  Status EnqueueFrame(NodeId dst, Bytes wire, bool pooled);
  /// Returns a pooled frame's buffer to WireBufferPool; frees the rest.
  static void RecycleFrame(QueuedFrame& frame);
  void BeginConnectLocked(Peer& peer, uint16_t port) MASSBFT_REQUIRES(mu_);
  void FinishConnectLocked(Peer& peer) MASSBFT_REQUIRES(mu_);
  void OnConnectedLocked(Peer& peer) MASSBFT_REQUIRES(mu_);
  /// Drops the connection and schedules the next dial with backoff.
  void DisconnectLocked(Peer& peer) MASSBFT_REQUIRES(mu_);
  /// Writes as much queued data as the socket accepts right now.
  void FlushLocked(Peer& peer) MASSBFT_REQUIRES(mu_);
  void UpdateQueueGaugeLocked() MASSBFT_REQUIRES(mu_);
  void WakeWriter();
  /// Records a connection-lifecycle event in the owning node's flight
  /// recorder and (when tracing) as a trace instant on its track, so
  /// reconnects and drops line up with protocol spans in the merged trace.
  void RecordNetEvent(const char* name, double peer, double detail);

  NodeId self_;
  TcpPortMap ports_;
  Options options_;

  // kTransport ranks above the runtime/fault layers that call into Send,
  // and below the buffer pool and obs recorders it calls while held.
  mutable RankedMutex mu_{"tcp.mu", LockRank::kTransport};
  DeliverFn deliver_ MASSBFT_GUARDED_BY(mu_);
  Stats stats_ MASSBFT_GUARDED_BY(mu_);
  bool running_ MASSBFT_GUARDED_BY(mu_) = false;
  std::unordered_map<uint32_t, std::unique_ptr<Peer>> peers_
      MASSBFT_GUARDED_BY(mu_);
  size_t total_queued_frames_ MASSBFT_GUARDED_BY(mu_) = 0;
  /// FlushLocked's reusable batch of sent pooled buffers awaiting release
  /// (writer thread only, under mu_).
  std::vector<Bytes> recycle_scratch_ MASSBFT_GUARDED_BY(mu_);
  Rng jitter_rng_ MASSBFT_GUARDED_BY(mu_);

  // Pre-resolved observability handles (null when unwired).
  obs::Telemetry* telemetry_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Counter* reconnects_counter_ = nullptr;
  obs::Counter* backpressure_counter_ = nullptr;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};         // Wakes the reader.
  int writer_wake_pipe_[2] = {-1, -1};  // Wakes the writer.
  std::thread io_thread_;
  std::thread writer_thread_;
};

}  // namespace massbft

#endif  // MASSBFT_NET_TCP_TRANSPORT_H_
