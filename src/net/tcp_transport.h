#ifndef MASSBFT_NET_TCP_TRANSPORT_H_
#define MASSBFT_NET_TCP_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/transport.h"

namespace massbft {

/// Maps every node to its TCP listen port on 127.0.0.1.
using TcpPortMap = std::unordered_map<uint32_t, uint16_t>;  // Packed -> port

/// Assigns consecutive ports starting at `base` to every node of the
/// given group sizes, group-major (the order of Topology::AllNodes()).
[[nodiscard]] TcpPortMap MakeLocalPortMap(const std::vector<int>& group_sizes,
                                          uint16_t base);

/// Length-prefixed frame transport over localhost TCP.
///
/// One background I/O thread per transport polls the listen socket and all
/// accepted connections; complete frames are decoded and handed to the
/// deliver callback on that thread. Sends run on the caller's thread over
/// lazily-established outbound connections (one per destination, guarded by
/// a per-destination mutex), so connections are used one-directionally:
/// A->B traffic flows on the connection A dialed, B->A on B's.
///
/// Frames carry the sender id, so no handshake is needed; a reader learns
/// who is talking from the frames themselves. A connection that delivers a
/// corrupt frame is closed (stream framing is lost once bytes are bad);
/// the peer re-dials on its next send.
class TcpTransport : public Transport {
 public:
  TcpTransport(NodeId self, TcpPortMap ports);
  ~TcpTransport() override;

  [[nodiscard]] Status Start(DeliverFn deliver) override;
  [[nodiscard]] Status Send(NodeId dst, const ProtocolMessage& msg) override;
  void Stop() override;
  NodeId self() const override { return self_; }
  Stats stats() const override;

 private:
  struct Conn {
    int fd = -1;
    Bytes buffer;  // Unconsumed inbound bytes.
  };
  struct Peer {
    std::mutex mu;  // Serializes connect+write per destination.
    int fd = -1;
  };

  void IoLoop();
  /// Consumes complete frames from `conn.buffer`; returns false when the
  /// connection must be closed (corrupt stream).
  bool DrainFrames(Conn& conn);
  /// Dials `dst`, retrying briefly so Start() races at cluster boot don't
  /// drop the first messages. Returns -1 on failure.
  int DialLocked(uint32_t dst_packed);

  NodeId self_;
  TcpPortMap ports_;

  mutable std::mutex mu_;  // Guards deliver_, stats_, running flips.
  DeliverFn deliver_;
  Stats stats_;
  bool running_ = false;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::thread io_thread_;

  std::mutex peers_mu_;  // Guards the peers_ map itself.
  std::unordered_map<uint32_t, std::unique_ptr<Peer>> peers_;
};

}  // namespace massbft

#endif  // MASSBFT_NET_TCP_TRANSPORT_H_
