#ifndef MASSBFT_NET_INPROC_TRANSPORT_H_
#define MASSBFT_NET_INPROC_TRANSPORT_H_

#include <memory>
#include <unordered_map>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"
#include "net/transport.h"

namespace massbft {

/// In-process transport fabric: every endpoint created from one hub can
/// reach every other by NodeId. Frames still pass through the full wire
/// codec — encode, CRC, decode — so tests over this transport exercise the
/// same byte path as TCP, minus the sockets. Delivery is synchronous on
/// the sender's thread, which keeps tests deterministic: a message is in
/// the receiver's queue before Send() returns.
///
/// Endpoints are restartable: Stop() detaches the deliver callback (sends
/// to the stopped node fail, like a dead socket) and a later Start()
/// reattaches it — used by RealCluster::KillNode/RestartNode.
class InProcHub {
 public:
  InProcHub() = default;
  InProcHub(const InProcHub&) = delete;
  InProcHub& operator=(const InProcHub&) = delete;
  ~InProcHub();

  /// Creates the endpoint for `self`. The hub must outlive it.
  [[nodiscard]] std::unique_ptr<Transport> CreateTransport(NodeId self);

 private:
  class Endpoint;

  /// Routes an encoded frame to `dst`; returns false if dst is not started.
  bool Route(NodeId dst, const Bytes& wire);
  void Deregister(NodeId self);

  // Shares kTransport with the endpoint locks: Route releases the hub
  // lock before touching an endpoint, so the two never nest.
  mutable RankedMutex mu_{"inproc.hub.mu", LockRank::kTransport};
  std::unordered_map<uint32_t, Endpoint*> endpoints_ MASSBFT_GUARDED_BY(mu_);
};

}  // namespace massbft

#endif  // MASSBFT_NET_INPROC_TRANSPORT_H_
