#include "net/crc32.h"

#include <array>

namespace massbft {

namespace {

constexpr uint32_t kPoly = 0xEDB88320u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? kPoly ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

void Crc32::Update(const uint8_t* data, size_t len) {
  uint32_t c = state_;
  for (size_t i = 0; i < len; ++i) c = kTable[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  state_ = c;
}

}  // namespace massbft
