#include "net/crc32.h"

#include <array>
#include <cstring>

#include "common/cpu.h"
#include "common/logging.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_acle.h>
#endif

namespace massbft {

namespace internal_crc32 {

namespace {

constexpr uint32_t kPoly = 0xEDB88320u;  // Reflected 0x04C11DB7.

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? kPoly ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

/// Slice-by-8 tables: kSlice[k][b] is the CRC contribution of byte b seen
/// k+1 positions before the end of an 8-byte group, so one loop iteration
/// consumes 8 bytes with 8 independent lookups instead of a serial chain
/// of 8 table steps.
constexpr std::array<std::array<uint32_t, 256>, 8> MakeSliceTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  tables[0] = MakeTable();
  for (size_t k = 1; k < 8; ++k)
    for (uint32_t i = 0; i < 256; ++i)
      tables[k][i] =
          (tables[k - 1][i] >> 8) ^ tables[0][tables[k - 1][i] & 0xFF];
  return tables;
}

constexpr std::array<std::array<uint32_t, 256>, 8> kSlice = MakeSliceTables();

uint32_t LoadLE32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;  // Little-endian hosts only (x86/aarch64), like the codec.
}

}  // namespace

uint32_t UpdateScalarTable(uint32_t state, const uint8_t* data, size_t len) {
  uint32_t c = state;
  for (size_t i = 0; i < len; ++i) c = kTable[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  return c;
}

uint32_t UpdateSlice8(uint32_t state, const uint8_t* data, size_t len) {
  uint32_t c = state;
  while (len >= 8) {
    const uint32_t lo = c ^ LoadLE32(data);
    const uint32_t hi = LoadLE32(data + 4);
    c = kSlice[7][lo & 0xFF] ^ kSlice[6][(lo >> 8) & 0xFF] ^
        kSlice[5][(lo >> 16) & 0xFF] ^ kSlice[4][lo >> 24] ^
        kSlice[3][hi & 0xFF] ^ kSlice[2][(hi >> 8) & 0xFF] ^
        kSlice[1][(hi >> 16) & 0xFF] ^ kSlice[0][hi >> 24];
    data += 8;
    len -= 8;
  }
  for (size_t i = 0; i < len; ++i) c = kTable[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  return c;
}

#if defined(__x86_64__)

namespace {

/// x^n mod P(x) for the non-reflected polynomial P = 0x104C11DB7, n >= 32.
constexpr uint32_t XPowModP(int n) {
  uint32_t rem = 0x04C11DB7u;  // x^32 mod P.
  for (int i = 32; i < n; ++i) {
    const bool carry = (rem & 0x80000000u) != 0;
    rem <<= 1;
    if (carry) rem ^= 0x04C11DB7u;
  }
  return rem;
}

constexpr uint32_t Reflect32(uint32_t v) {
  uint32_t r = 0;
  for (int i = 0; i < 32; ++i)
    if ((v >> i) & 1u) r |= 1u << (31 - i);
  return r;
}

/// Folding constant for the reflected-domain PCLMULQDQ algorithm: the
/// bit-reflection of x^n mod P, left-shifted once so the carry-less
/// product of two reflected operands lands bit-aligned (the same 33-bit
/// constants as the Linux kernel's crc32-pclmul tables).
constexpr uint64_t FoldK(int n) {
  return static_cast<uint64_t>(Reflect32(XPowModP(n))) << 1;
}

static_assert(FoldK(32) == 0x1DB710640ull, "fold constant math is off");
static_assert(FoldK(128 + 32) == 0x1751997D0ull, "fold constant math is off");
static_assert(FoldK(128 - 32) == 0x0CCAA009Eull, "fold constant math is off");

/// acc·x^(delta) ^ next, partially reduced: low and high 64-bit halves of
/// the accumulator each multiply their fold constant. Free functions (not
/// lambdas) because the target attribute does not propagate into closures.
__attribute__((target("pclmul,sse2"))) inline __m128i Fold128(__m128i acc,
                                                              __m128i k,
                                                              __m128i next) {
  return _mm_xor_si128(
      _mm_xor_si128(_mm_clmulepi64_si128(acc, k, 0x00),
                    _mm_clmulepi64_si128(acc, k, 0x11)),
      next);
}

__attribute__((target("sse2"))) inline __m128i Load128(const uint8_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

}  // namespace

/// Folds 64 bytes per step with carry-less multiplies; the final 128-bit
/// accumulator and sub-16-byte tail reduce through the table kernels, so
/// no Barrett step is needed. Validated against the scalar oracle by the
/// crc32 property tests.
__attribute__((target("pclmul,sse2"))) uint32_t UpdatePclmul(
    uint32_t state, const uint8_t* data, size_t len) {
  if (len < 64) return UpdateSlice8(state, data, len);

  // K512: fold a 16-byte lane forward over the 64-byte stride; K128: fold
  // adjacent 16-byte blocks when collapsing lanes and in the single-wide
  // tail loop.
  const __m128i k512 = _mm_set_epi64x(
      static_cast<int64_t>(FoldK(512 - 32)),
      static_cast<int64_t>(FoldK(512 + 32)));
  const __m128i k128 = _mm_set_epi64x(
      static_cast<int64_t>(FoldK(128 - 32)),
      static_cast<int64_t>(FoldK(128 + 32)));

  // The running state folds in by XOR into the low dword of the first
  // block (equivalent to CRC-ing with that initial state).
  __m128i x0 = _mm_xor_si128(Load128(data), _mm_cvtsi32_si128(
                                                static_cast<int>(state)));
  __m128i x1 = Load128(data + 16);
  __m128i x2 = Load128(data + 32);
  __m128i x3 = Load128(data + 48);
  data += 64;
  len -= 64;

  while (len >= 64) {
    x0 = Fold128(x0, k512, Load128(data));
    x1 = Fold128(x1, k512, Load128(data + 16));
    x2 = Fold128(x2, k512, Load128(data + 32));
    x3 = Fold128(x3, k512, Load128(data + 48));
    data += 64;
    len -= 64;
  }

  __m128i acc = Fold128(x0, k128, x1);
  acc = Fold128(acc, k128, x2);
  acc = Fold128(acc, k128, x3);
  while (len >= 16) {
    acc = Fold128(acc, k128, Load128(data));
    data += 16;
    len -= 16;
  }

  alignas(16) uint8_t residue[16];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(residue), acc);
  // The accumulator is congruent to the folded prefix, so CRC-ing its 16
  // bytes (from state 0 — the real state was already folded in above) and
  // then the tail finishes the job.
  return UpdateSlice8(UpdateSlice8(0, residue, 16), data, len);
}

#endif  // __x86_64__

#if defined(__aarch64__)

__attribute__((target("+crc"))) uint32_t UpdateArmv8(uint32_t state,
                                                     const uint8_t* data,
                                                     size_t len) {
  uint32_t c = state;
  while (len >= 8) {
    uint64_t v;
    std::memcpy(&v, data, 8);
    c = __crc32d(c, v);
    data += 8;
    len -= 8;
  }
  while (len > 0) {
    c = __crc32b(c, *data);
    ++data;
    --len;
  }
  return c;
}

#endif  // __aarch64__

namespace {

using UpdateFn = uint32_t (*)(uint32_t, const uint8_t*, size_t);

Crc32::Impl ResolveImpl(const std::string& override_value,
                        const CpuFeatures& features) {
  if (override_value == "scalar") return Crc32::Impl::kScalarTable;
#if defined(__x86_64__)
  if (features.pclmul) return Crc32::Impl::kPclmul;
#endif
#if defined(__aarch64__)
  if (features.arm_crc32) return Crc32::Impl::kArmv8;
#endif
  (void)features;
  return Crc32::Impl::kSlice8;
}

UpdateFn DispatchFor(Crc32::Impl impl) {
  switch (impl) {
    case Crc32::Impl::kScalarTable:
      return UpdateScalarTable;
#if defined(__x86_64__)
    case Crc32::Impl::kPclmul:
      return UpdatePclmul;
#endif
#if defined(__aarch64__)
    case Crc32::Impl::kArmv8:
      return UpdateArmv8;
#endif
    default:
      return UpdateSlice8;
  }
}

Crc32::Impl ResolvedImpl() {
  static const Crc32::Impl impl = [] {
    const Crc32::Impl chosen = ResolveImpl(SimdOverride(), GetCpuFeatures());
    MASSBFT_LOG(kInfo) << "crc32: dispatching frame checksum to "
                       << Crc32::ImplName(chosen)
                       << (SimdOverride().empty()
                               ? ""
                               : " (MASSBFT_SIMD=" + SimdOverride() + ")");
    return chosen;
  }();
  return impl;
}

}  // namespace

}  // namespace internal_crc32

void Crc32::Update(const uint8_t* data, size_t len) {
  static const internal_crc32::UpdateFn fn =
      internal_crc32::DispatchFor(internal_crc32::ResolvedImpl());
  state_ = fn(state_, data, len);
}

Crc32::Impl Crc32::ActiveImpl() { return internal_crc32::ResolvedImpl(); }

const char* Crc32::ImplName(Impl impl) {
  switch (impl) {
    case Impl::kScalarTable:
      return "scalar-table";
    case Impl::kSlice8:
      return "slice8";
    case Impl::kPclmul:
      return "pclmul";
    case Impl::kArmv8:
      return "armv8-crc";
  }
  return "unknown";
}

}  // namespace massbft
