#ifndef MASSBFT_NET_RX_RING_H_
#define MASSBFT_NET_RX_RING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "net/wire.h"

namespace massbft {

/// Per-connection receive buffer that turns a TCP byte stream back into
/// frames without per-read allocation or per-frame front-erase shuffling
/// (DESIGN.md §15).
///
/// The reader loop asks for writable space with WritableData(), recv()s
/// directly into it, commits the byte count, and calls Drain() once per
/// wakeup to decode every complete buffered frame. Consumed bytes advance a
/// read cursor instead of erasing from the front; the at-most-one partial
/// frame left after a drain is compacted to the buffer start, so the
/// recurring memmove is bounded by one frame, not by the drained batch.
///
/// Frame boundaries come from PeekFrameLength, so a frame split across any
/// number of recv()s — down to one byte at a time — reassembles exactly.
class FrameReassembler {
 public:
  /// `initial_capacity` sizes the backing store up front; it still grows if
  /// a single frame is larger.
  explicit FrameReassembler(size_t initial_capacity = 64 * 1024);

  /// Returns a pointer where at least `min_bytes` may be written. Grows the
  /// backing store if needed (after compacting pending bytes to the front).
  uint8_t* WritableData(size_t min_bytes);
  /// Number of bytes writable at WritableData without another call.
  size_t WritableBytes() const { return buf_.size() - end_; }

  /// Declares that `n` bytes were written at WritableData().
  void CommitWrite(size_t n);

  /// Decodes every complete frame currently buffered, appending to `*out`.
  /// On a framing error (bad magic/version/CRC/body) returns Corruption;
  /// frames decoded before the bad one are still appended, so the caller
  /// can deliver them before tearing the connection down.
  Status Drain(std::vector<Frame>* out);

  /// Bytes buffered but not yet consumed by Drain (a partial frame).
  size_t PendingBytes() const { return end_ - begin_; }

 private:
  /// Moves pending bytes to the buffer start, reclaiming consumed space.
  void Compact();

  Bytes buf_;     // Backing store; size() is capacity in use.
  size_t begin_ = 0;  // First unconsumed byte.
  size_t end_ = 0;    // One past the last written byte.
};

}  // namespace massbft

#endif  // MASSBFT_NET_RX_RING_H_
