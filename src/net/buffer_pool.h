#ifndef MASSBFT_NET_BUFFER_POOL_H_
#define MASSBFT_NET_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/lock_rank.h"
#include "common/thread_annotations.h"

namespace massbft {

/// Recycles the byte buffers frames are encoded into, so the steady-state
/// send path performs zero heap allocations per frame (DESIGN.md §15).
///
/// Ownership protocol: Acquire() hands out an empty buffer whose capacity
/// survives recycling; the caller encodes into it, the transport queues it,
/// and once the kernel has accepted the bytes (or the frame is dropped) the
/// buffer is Release()d back. A released buffer must never be touched again
/// by the releasing code path — with `poison` set, Release overwrites the
/// contents so a stale reader sees garbage instead of silently reading a
/// recycled frame (the reuse-after-recycle tests run this mode under
/// ASan/TSan).
///
/// Buffers above `max_retained_capacity` are dropped on release instead of
/// pooled: one multi-megabyte entry transfer must not pin its slab forever.
/// The free list is bounded by `max_free_buffers`; beyond it, released
/// buffers are freed (a burst should not become a permanent high-water
/// mark).
///
/// Thread-safe; acquire/release is a bounded-time push/pop under one lock.
class BufferPool {
 public:
  struct Options {
    /// Deep enough to absorb the sender/writer oscillation on a
    /// single-core host, where one scheduling quantum can enqueue
    /// thousands of frames before the writer runs and releases them.
    size_t max_free_buffers = 8192;
    size_t max_retained_capacity = 1 << 20;  // 1 MiB per buffer
    /// Total capacity the free list may pin; releases past it are freed.
    size_t max_retained_total_bytes = 64 << 20;  // 64 MiB
    /// Fill released buffers with kPoisonByte (tests; costs a memset).
    bool poison = false;
  };

  struct Stats {
    /// Acquires that had to heap-allocate a fresh buffer (empty free
    /// list). Flat in steady state — the zero-alloc-per-frame assertion.
    uint64_t allocations = 0;
    /// Acquires served from the free list.
    uint64_t reuses = 0;
    /// Buffers handed out and not yet released.
    uint64_t outstanding = 0;
    /// Releases that freed the buffer instead of pooling it (oversize or
    /// free list full).
    uint64_t discarded = 0;
  };

  static constexpr uint8_t kPoisonByte = 0xDB;

  BufferPool() : BufferPool(Options{}) {}
  explicit BufferPool(Options options) : options_(options) {}
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns an empty buffer (size 0, capacity from a previous life when
  /// the free list has one).
  [[nodiscard]] Bytes Acquire();

  /// Returns `buf` to the pool. Call exactly once per Acquire, after the
  /// last read of the contents.
  void Release(Bytes buf);

  /// Returns every buffer in `bufs` under one lock and clears the vector
  /// — the batched writer recycles a whole sendmsg batch this way instead
  /// of paying a lock per frame.
  void ReleaseAll(std::vector<Bytes>* bufs);

  Stats stats() const;

 private:
  void ReleaseLocked(Bytes buf) MASSBFT_REQUIRES(mu_);

  Options options_;  // Immutable after construction.
  // kBufferPool ranks below kTransport: the batched writer recycles whole
  // sendmsg batches while still holding the transport lock.
  mutable RankedMutex mu_{"buffer_pool.mu", LockRank::kBufferPool};
  std::vector<Bytes> free_ MASSBFT_GUARDED_BY(mu_);
  // Sum of free_ capacities.
  size_t retained_bytes_ MASSBFT_GUARDED_BY(mu_) = 0;
  Stats stats_ MASSBFT_GUARDED_BY(mu_);
};

/// The process-wide pool the wire layer encodes frames from. One pool per
/// process, not per transport: an in-process cluster runs many endpoints,
/// and sharing lets a node's release feed another's acquire.
BufferPool& WireBufferPool();

}  // namespace massbft

#endif  // MASSBFT_NET_BUFFER_POOL_H_
