#include "net/inproc_transport.h"

#include <utility>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"
#include "net/buffer_pool.h"

namespace massbft {

class InProcHub::Endpoint : public Transport {
 public:
  Endpoint(InProcHub* hub, NodeId self) : hub_(hub), self_(self) {}

  ~Endpoint() override {
    Stop();
    hub_->Deregister(self_);
  }

  Status Start(DeliverFn deliver) override {
    MutexLock lock(&mu_);
    deliver_ = std::move(deliver);
    return Status::OK();
  }

  Status Send(NodeId dst, const ProtocolMessage& msg) override {
    // Routing is synchronous (Receive decodes and delivers before Route
    // returns), so a pooled buffer can be borrowed for the whole hop and
    // recycled immediately — zero allocations per frame in steady state.
    Bytes wire = WireBufferPool().Acquire();
    EncodeFrameInto(msg, self_, &wire);
    Status status = RouteBorrowed(dst, wire);
    WireBufferPool().Release(std::move(wire));
    return status;
  }

  Status SendEncoded(NodeId dst, Bytes wire) override {
    return RouteBorrowed(dst, wire);
  }

  void Stop() override {
    MutexLock lock(&mu_);
    deliver_ = nullptr;
  }

  NodeId self() const override { return self_; }

  Stats stats() const override {
    MutexLock lock(&mu_);
    return stats_;
  }

  /// Shared send path over a borrowed frame; the caller keeps ownership.
  Status RouteBorrowed(NodeId dst, const Bytes& wire) {
    {
      MutexLock lock(&mu_);
      stats_.frames_sent++;
      stats_.bytes_sent += wire.size();
    }
    if (!hub_->Route(dst, wire)) {
      MutexLock lock(&mu_);
      stats_.send_errors++;
      return Status::NotFound("destination transport not started");
    }
    return Status::OK();
  }

  /// Called by the hub on the sender's thread. False when this endpoint
  /// is stopped (a stopped node's inbox is a closed socket).
  bool Receive(const Bytes& wire) {
    DeliverFn deliver;
    {
      MutexLock lock(&mu_);
      if (!deliver_) return false;
      stats_.bytes_received += wire.size();
      deliver = deliver_;
    }
    auto frame = DecodeFrame(wire);
    {
      MutexLock lock(&mu_);
      if (!frame.ok()) {
        stats_.decode_errors++;
        // Delivered-but-corrupt: the send itself succeeded, like a TCP
        // stream carrying mangled bytes the receiver's codec rejects.
        return true;
      }
      stats_.frames_received++;
    }
    // Deliver outside mu_: the callback runs arbitrary receiver code.
    deliver(std::move(*frame));
    return true;
  }

 private:
  InProcHub* hub_;
  NodeId self_;
  // Same kTransport rank as the hub lock: the two are never held together
  // (Route drops the hub lock before calling Receive), and equal ranks
  // abort if that invariant ever breaks.
  mutable RankedMutex mu_{"inproc.endpoint.mu", LockRank::kTransport};
  DeliverFn deliver_ MASSBFT_GUARDED_BY(mu_);
  Stats stats_ MASSBFT_GUARDED_BY(mu_);
};

InProcHub::~InProcHub() = default;

std::unique_ptr<Transport> InProcHub::CreateTransport(NodeId self) {
  auto endpoint = std::make_unique<Endpoint>(this, self);
  MutexLock lock(&mu_);
  endpoints_[self.Packed()] = endpoint.get();
  return endpoint;
}

bool InProcHub::Route(NodeId dst, const Bytes& wire) {
  Endpoint* target = nullptr;
  {
    MutexLock lock(&mu_);
    auto it = endpoints_.find(dst.Packed());
    if (it != endpoints_.end()) target = it->second;
  }
  if (!target) return false;
  return target->Receive(wire);
}

void InProcHub::Deregister(NodeId self) {
  MutexLock lock(&mu_);
  endpoints_.erase(self.Packed());
}

}  // namespace massbft
