#ifndef MASSBFT_NET_WIRE_H_
#define MASSBFT_NET_WIRE_H_

#include <cstdint>
#include <memory>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/signature.h"  // NodeId
#include "proto/messages.h"

namespace massbft {

/// Frame layout (little-endian, DESIGN.md §12):
///
///   offset  size  field
///        0     4  magic "MBFT"
///        4     1  wire version
///        5     1  message type (MessageType)
///        6     4  sender NodeId (NodeId::Packed)
///       10     4  body length
///       14     4  CRC-32 over bytes [4, 14) and the body
///       18   ...  body (ProtocolMessage::EncodeBodyTo)
///
/// The magic is excluded from the CRC so a resynchronizing reader can
/// cheaply test candidate offsets; everything else is covered.

/// On-wire bytes 'M' 'B' 'F' 'T' read as a little-endian u32.
constexpr uint32_t kWireMagic = 0x5446424Du;
constexpr uint8_t kWireVersion = 1;
constexpr size_t kFrameHeaderBytes = 18;
// The simulator charges kFrameOverheadBytes per message; the real wire must
// cost exactly the same.
static_assert(kFrameHeaderBytes == kFrameOverheadBytes,
              "frame header layout diverged from simulated accounting");

/// Decode-side cap on the claimed body length: bounds the allocation a
/// malformed or hostile frame can trigger. Generous — the largest honest
/// frame is an entry transfer of a full batch (a few MB).
constexpr uint32_t kMaxBodyBytes = 64u << 20;

/// A decoded frame: who sent it and the reconstructed message.
struct Frame {
  NodeId src;
  std::unique_ptr<ProtocolMessage> msg;
};

/// Serializes `msg` into a self-contained frame from `src`.
[[nodiscard]] Bytes EncodeFrame(const ProtocolMessage& msg, NodeId src);

/// Parses one complete frame. The buffer must contain exactly the frame
/// (PeekFrameLength gives the boundary when streaming). Returns Corruption
/// on bad magic/version/length/CRC, unknown type, or malformed body.
[[nodiscard]] Result<Frame> DecodeFrame(const uint8_t* data, size_t len);
[[nodiscard]] Result<Frame> DecodeFrame(const Bytes& buf);

/// Streaming helper: given at least kFrameHeaderBytes of buffered input,
/// returns the total length of the frame starting at `data` (header +
/// body), validating magic, version and the body-length cap so a reader
/// never waits on a frame that can't be completed.
[[nodiscard]] Result<size_t> PeekFrameLength(const uint8_t* data, size_t len);

}  // namespace massbft

#endif  // MASSBFT_NET_WIRE_H_
