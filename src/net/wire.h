#ifndef MASSBFT_NET_WIRE_H_
#define MASSBFT_NET_WIRE_H_

#include <cstdint>
#include <memory>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/signature.h"  // NodeId
#include "proto/messages.h"

namespace massbft {

/// Frame layout (little-endian, DESIGN.md §12/§14):
///
///   offset  size  field
///        0     4  magic "MBFT"
///        4     1  wire version
///        5     1  message type (MessageType)
///        6     1  flags (bit 0: trace context present)
///        7     4  sender NodeId (NodeId::Packed)
///       11     4  body length
///       15     4  CRC-32 over bytes [4, 15), the trace context and the body
///       19    22  trace context, iff flag bit 0 (gid u16, seq u64,
///                 origin NodeId u32, origin timestamp ns u64)
///        …   ...  body (ProtocolMessage::EncodeBodyTo)
///
/// The magic is excluded from the CRC so a resynchronizing reader can
/// cheaply test candidate offsets; everything else is covered. The trace
/// context flag is forced by the message type (CarriesTraceContext), never
/// by configuration, so frame sizes match the simulator's ByteSize()
/// accounting exactly whether or not tracing is on.

/// On-wire bytes 'M' 'B' 'F' 'T' read as a little-endian u32.
constexpr uint32_t kWireMagic = 0x5446424Du;
// v3: compact bitmap certificate encoding inside frame bodies.
constexpr uint8_t kWireVersion = 3;
constexpr size_t kFrameHeaderBytes = 19;
constexpr uint8_t kFrameFlagTraceContext = 0x01;
// The simulator charges kFrameOverheadBytes per message; the real wire must
// cost exactly the same.
static_assert(kFrameHeaderBytes == kFrameOverheadBytes,
              "frame header layout diverged from simulated accounting");

/// Decode-side cap on the claimed body length: bounds the allocation a
/// malformed or hostile frame can trigger. Generous — the largest honest
/// frame is an entry transfer of a full batch (a few MB).
constexpr uint32_t kMaxBodyBytes = 64u << 20;

/// Trace context carried by entry-bearing frames (DESIGN.md §14): the
/// entry's identity plus where and when this hop was sent. `origin_ts_ns`
/// is obs::TraceClock::NowNs() at encode time — already on the in-process
/// shared trace axis, so the receiver can pin a cross-node flow arrow
/// without any clock reconciliation.
struct TraceContext {
  uint16_t gid = 0;
  uint64_t seq = 0;
  uint32_t origin = 0;  // NodeId::Packed of the sending node.
  uint64_t origin_ts_ns = 0;
};
static_assert(kTraceContextBytes == 2 + 8 + 4 + 8,
              "wire trace context layout diverged from proto accounting");

/// A decoded frame: who sent it, the reconstructed message, and the trace
/// context when the message type carries one (has_trace mirrors
/// CarriesTraceContext(msg->message_type()); DecodeFrame enforces it).
struct Frame {
  NodeId src;
  std::unique_ptr<ProtocolMessage> msg;
  bool has_trace = false;
  TraceContext trace;
};

/// Serializes `msg` into a self-contained frame from `src`. For
/// entry-carrying types, stamps a trace context with the entry key from
/// msg.TraceKey() and origin_ts_ns = obs::TraceClock::NowNs().
[[nodiscard]] Bytes EncodeFrame(const ProtocolMessage& msg, NodeId src);
/// Same, with an explicit origin timestamp (deterministic tests).
[[nodiscard]] Bytes EncodeFrame(const ProtocolMessage& msg, NodeId src,
                                uint64_t origin_ts_ns);

/// Single-pass encode into a caller-supplied buffer (typically from
/// WireBufferPool): the frame is appended to `*out` after clearing it, with
/// no intermediate body/trace buffers — body length and CRC are patched in
/// place once the payload is written. Byte-identical to EncodeFrame; the
/// hot transports use this so steady-state sends reuse pooled capacity
/// instead of allocating per frame (DESIGN.md §15).
void EncodeFrameInto(const ProtocolMessage& msg, NodeId src, Bytes* out);
void EncodeFrameInto(const ProtocolMessage& msg, NodeId src,
                     uint64_t origin_ts_ns, Bytes* out);

/// Parses one complete frame. The buffer must contain exactly the frame
/// (PeekFrameLength gives the boundary when streaming). Returns Corruption
/// on bad magic/version/length/CRC, unknown type, or malformed body.
[[nodiscard]] Result<Frame> DecodeFrame(const uint8_t* data, size_t len);
[[nodiscard]] Result<Frame> DecodeFrame(const Bytes& buf);

/// Streaming helper: given at least kFrameHeaderBytes of buffered input,
/// returns the total length of the frame starting at `data` (header +
/// body), validating magic, version and the body-length cap so a reader
/// never waits on a frame that can't be completed.
[[nodiscard]] Result<size_t> PeekFrameLength(const uint8_t* data, size_t len);

}  // namespace massbft

#endif  // MASSBFT_NET_WIRE_H_
