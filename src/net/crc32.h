#ifndef MASSBFT_NET_CRC32_H_
#define MASSBFT_NET_CRC32_H_

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"

namespace massbft {

/// Incremental CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used as
/// the wire frame checksum. Catches corruption that slips past TCP's weak
/// 16-bit checksum; it is not a cryptographic integrity check — signatures
/// and digests provide that at the protocol layer.
class Crc32 {
 public:
  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& b) { Update(b.data(), b.size()); }
  uint32_t Finish() const { return ~state_; }

  static uint32_t Compute(const uint8_t* data, size_t len) {
    Crc32 crc;
    crc.Update(data, len);
    return crc.Finish();
  }
  static uint32_t Compute(const Bytes& b) { return Compute(b.data(), b.size()); }

 private:
  uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace massbft

#endif  // MASSBFT_NET_CRC32_H_
