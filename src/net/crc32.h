#ifndef MASSBFT_NET_CRC32_H_
#define MASSBFT_NET_CRC32_H_

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"

namespace massbft {

namespace internal_crc32 {

/// The crc32 update kernels, exposed so the property tests can cross-check
/// every fast path against the portable oracle on identical inputs. Each
/// takes the running (non-complemented) state and returns the new state.
///
/// UpdateScalarTable is the byte-at-a-time table implementation — the
/// scalar oracle the slice-by-8 and hardware kernels are validated
/// against. UpdateSlice8 is the portable fast path (eight table lookups
/// per 8-byte step). The hardware kernels fold with PCLMULQDQ on x86
/// (SSE4.2's crc32 instruction computes CRC-32C, the wrong polynomial for
/// this frame format) and with the ARMv8 CRC32 extension on aarch64; both
/// delegate short inputs and tails to the slice-by-8 kernel.
uint32_t UpdateScalarTable(uint32_t state, const uint8_t* data, size_t len);
uint32_t UpdateSlice8(uint32_t state, const uint8_t* data, size_t len);
#if defined(__x86_64__)
uint32_t UpdatePclmul(uint32_t state, const uint8_t* data, size_t len);
#endif
#if defined(__aarch64__)
uint32_t UpdateArmv8(uint32_t state, const uint8_t* data, size_t len);
#endif

}  // namespace internal_crc32

/// Incremental CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used as
/// the wire frame checksum. Catches corruption that slips past TCP's weak
/// 16-bit checksum; it is not a cryptographic integrity check — signatures
/// and digests provide that at the protocol layer.
///
/// The update kernel is selected once per process: PCLMULQDQ folding on
/// x86 with carry-less multiply, the ARMv8 CRC32 instructions on aarch64,
/// otherwise portable slice-by-8. MASSBFT_SIMD=scalar forces the
/// byte-at-a-time oracle (see common/cpu.h); the decision is logged at
/// first use.
class Crc32 {
 public:
  enum class Impl { kScalarTable, kSlice8, kPclmul, kArmv8 };

  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& b) { Update(b.data(), b.size()); }
  uint32_t Finish() const { return ~state_; }

  static uint32_t Compute(const uint8_t* data, size_t len) {
    Crc32 crc;
    crc.Update(data, len);
    return crc.Finish();
  }
  static uint32_t Compute(const Bytes& b) { return Compute(b.data(), b.size()); }

  /// The kernel Update dispatches to under the current CPU and override.
  static Impl ActiveImpl();
  static const char* ImplName(Impl impl);

 private:
  uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace massbft

#endif  // MASSBFT_NET_CRC32_H_
