#include "net/buffer_pool.h"

#include <algorithm>
#include <utility>

namespace massbft {

Bytes BufferPool::Acquire() {
  MutexLock lock(&mu_);
  stats_.outstanding++;
  if (free_.empty()) {
    stats_.allocations++;
    return Bytes();
  }
  stats_.reuses++;
  Bytes buf = std::move(free_.back());
  free_.pop_back();
  retained_bytes_ -= buf.capacity();
  buf.clear();  // Keeps capacity.
  return buf;
}

void BufferPool::Release(Bytes buf) {
  if (options_.poison)
    std::fill(buf.begin(), buf.end(), kPoisonByte);
  MutexLock lock(&mu_);
  ReleaseLocked(std::move(buf));
}

void BufferPool::ReleaseAll(std::vector<Bytes>* bufs) {
  if (options_.poison)
    for (Bytes& buf : *bufs) std::fill(buf.begin(), buf.end(), kPoisonByte);
  {
    MutexLock lock(&mu_);
    for (Bytes& buf : *bufs) ReleaseLocked(std::move(buf));
  }
  bufs->clear();
}

void BufferPool::ReleaseLocked(Bytes buf) {
  stats_.outstanding--;
  if (buf.capacity() > options_.max_retained_capacity ||
      free_.size() >= options_.max_free_buffers ||
      retained_bytes_ + buf.capacity() > options_.max_retained_total_bytes) {
    stats_.discarded++;
    return;  // `buf` frees on scope exit.
  }
  retained_bytes_ += buf.capacity();
  free_.push_back(std::move(buf));
}

BufferPool::Stats BufferPool::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

BufferPool& WireBufferPool() {
  static BufferPool* pool = new BufferPool();
  return *pool;
}

}  // namespace massbft
