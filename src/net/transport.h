#ifndef MASSBFT_NET_TRANSPORT_H_
#define MASSBFT_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "crypto/signature.h"  // NodeId
#include "net/wire.h"

namespace massbft {

/// Point-to-point frame transport for one node. Implementations encode
/// outgoing messages with EncodeFrame and hand decoded frames to the
/// deliver callback.
///
/// Threading contract: Send() may be called from any thread after Start().
/// The deliver callback may be invoked from a transport-internal thread (or
/// from the *sender's* thread for the in-process transport) — receivers
/// must enqueue into their own event loop rather than process inline.
class Transport {
 public:
  using DeliverFn = std::function<void(Frame frame)>;

  struct Stats {
    uint64_t frames_sent = 0;
    uint64_t bytes_sent = 0;
    uint64_t frames_received = 0;
    uint64_t bytes_received = 0;
    /// Frames dropped on receive: CRC mismatch, malformed body, bad header.
    uint64_t decode_errors = 0;
    /// Sends dropped because the destination was unknown or unreachable.
    uint64_t send_errors = 0;
  };

  virtual ~Transport() = default;

  /// Begins delivering inbound frames. Must be called before Send().
  [[nodiscard]] virtual Status Start(DeliverFn deliver) = 0;

  /// Encodes and sends `msg` to `dst`. Delivery is best-effort (the BFT
  /// layer owns retries/timeouts); an error Status reports only local
  /// failures such as an unknown destination.
  [[nodiscard]] virtual Status Send(NodeId dst, const ProtocolMessage& msg) = 0;

  /// Stops delivery and releases transport resources. Idempotent. After
  /// Stop() returns, the deliver callback will not be invoked again.
  virtual void Stop() = 0;

  virtual NodeId self() const = 0;
  virtual Stats stats() const = 0;
};

}  // namespace massbft

#endif  // MASSBFT_NET_TRANSPORT_H_
