#ifndef MASSBFT_NET_TRANSPORT_H_
#define MASSBFT_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "crypto/signature.h"  // NodeId
#include "net/wire.h"

namespace massbft {

namespace obs {
class Telemetry;
}  // namespace obs

/// Point-to-point frame transport for one node. Implementations encode
/// outgoing messages with EncodeFrame and hand decoded frames to the
/// deliver callback.
///
/// Threading contract: Send() may be called from any thread after Start().
/// The deliver callback may be invoked from a transport-internal thread (or
/// from the *sender's* thread for the in-process transport) — receivers
/// must enqueue into their own event loop rather than process inline.
///
/// Liveness contract: Send() never blocks on the network. A send to a dead
/// or slow peer enqueues (or drops, with a counter) and returns
/// immediately; connection management happens on transport-internal
/// threads.
class Transport {
 public:
  using DeliverFn = std::function<void(Frame frame)>;

  struct Stats {
    uint64_t frames_sent = 0;
    uint64_t bytes_sent = 0;
    uint64_t frames_received = 0;
    uint64_t bytes_received = 0;
    /// Frames dropped on receive: CRC mismatch, malformed body, bad header.
    uint64_t decode_errors = 0;
    /// Sends dropped because the destination was unknown or unreachable.
    uint64_t send_errors = 0;
    /// Sends dropped because the destination's bounded queue was full.
    /// BFT protocols tolerate loss; dropping beats unbounded memory.
    uint64_t dropped_backpressure = 0;
    /// Successful connection establishments after the first one per peer
    /// (each one means a previous connection died and backoff recovered).
    uint64_t reconnects = 0;
    /// Data-path syscalls: send/writev calls that moved >= 1 byte, and
    /// recv/read calls that returned >= 1 byte. syscalls-per-frame is the
    /// wire efficiency figure bench_wire tracks (batching drives it toward
    /// zero); connect/poll/wake bookkeeping is excluded. Zero for
    /// transports that make no syscalls (in-process).
    uint64_t send_syscalls = 0;
    uint64_t recv_syscalls = 0;
  };

  virtual ~Transport() = default;

  /// Begins delivering inbound frames. Must be called before Send().
  /// Implementations are restartable: Start() after Stop() resumes
  /// operation (fresh connections, retained counters).
  [[nodiscard]] virtual Status Start(DeliverFn deliver) = 0;

  /// Encodes and sends `msg` to `dst`. Delivery is best-effort (the BFT
  /// layer owns retries/timeouts); an error Status reports only local
  /// failures such as an unknown destination or a full send queue.
  [[nodiscard]] virtual Status Send(NodeId dst, const ProtocolMessage& msg) = 0;

  /// Sends pre-encoded wire bytes verbatim. The bytes need not decode
  /// cleanly — this is the seam fault injectors use to put corrupted
  /// frames on the wire so receiver-side CRC rejection is exercised for
  /// real. Default: not supported.
  [[nodiscard]] virtual Status SendEncoded(NodeId dst, Bytes wire) {
    (void)dst;
    (void)wire;
    return Status::Unavailable("SendEncoded not supported by this transport");
  }

  /// Stops delivery and releases transport resources. Idempotent. After
  /// Stop() returns, the deliver callback will not be invoked again.
  virtual void Stop() = 0;

  /// Points the transport at a node's observability context so it can
  /// publish `net/*` series (queue depth, reconnects, backpressure drops).
  /// Must be called before Start(); optional (no-op by default).
  virtual void BindTelemetry(obs::Telemetry* telemetry) { (void)telemetry; }

  virtual NodeId self() const = 0;
  virtual Stats stats() const = 0;
};

}  // namespace massbft

#endif  // MASSBFT_NET_TRANSPORT_H_
