#include "net/wire.h"

#include <utility>

#include "common/codec.h"
#include "net/crc32.h"
#include "obs/trace_clock.h"

namespace massbft {

namespace {

/// Bytes covered by the CRC before the (optional) trace context and body:
/// version..body_len, i.e. [4, kFrameHeaderBytes - 4).
constexpr size_t kCrcHeaderSpan = kFrameHeaderBytes - 4 - 4;

}  // namespace

Bytes EncodeFrame(const ProtocolMessage& msg, NodeId src) {
  return EncodeFrame(msg, src,
                     CarriesTraceContext(msg.message_type())
                         ? obs::TraceClock::NowNs()
                         : 0);
}

Bytes EncodeFrame(const ProtocolMessage& msg, NodeId src,
                  uint64_t origin_ts_ns) {
  Bytes out;
  EncodeFrameInto(msg, src, origin_ts_ns, &out);
  return out;
}

void EncodeFrameInto(const ProtocolMessage& msg, NodeId src, Bytes* out) {
  EncodeFrameInto(msg, src,
                  CarriesTraceContext(msg.message_type())
                      ? obs::TraceClock::NowNs()
                      : 0,
                  out);
}

void EncodeFrameInto(const ProtocolMessage& msg, NodeId src,
                     uint64_t origin_ts_ns, Bytes* out) {
  // Offsets of the two fields patched after the payload is appended.
  constexpr size_t kBodyLenOffset = kFrameHeaderBytes - 8;
  constexpr size_t kCrcOffset = kFrameHeaderBytes - 4;

  TraceContext ctx;
  const bool has_trace = msg.TraceKey(&ctx.gid, &ctx.seq);
  ctx.origin = src.Packed();
  ctx.origin_ts_ns = origin_ts_ns;

  BinaryWriter w(std::move(*out));
  w.PutU32(kWireMagic);
  w.PutU8(kWireVersion);
  w.PutU8(static_cast<uint8_t>(msg.message_type()));
  w.PutU8(has_trace ? kFrameFlagTraceContext : 0);
  w.PutU32(src.Packed());
  w.PutU32(0);  // body length, patched below
  w.PutU32(0);  // CRC, patched below
  if (has_trace) {
    w.PutU16(ctx.gid);
    w.PutU64(ctx.seq);
    w.PutU32(ctx.origin);
    w.PutU64(ctx.origin_ts_ns);
  }
  msg.EncodeBodyTo(&w);

  const size_t trace_len = has_trace ? kTraceContextBytes : 0;
  const size_t body_len = w.size() - kFrameHeaderBytes - trace_len;
  w.PatchU32(kBodyLenOffset, static_cast<uint32_t>(body_len));

  // The CRC spans version..body_len plus everything after the CRC field
  // itself; computing it over the assembled bytes needs no scratch buffers.
  *out = w.Release();
  Crc32 crc;
  crc.Update(out->data() + 4, kCrcHeaderSpan);
  crc.Update(out->data() + kFrameHeaderBytes, trace_len + body_len);
  const uint32_t digest = crc.Finish();
  for (int i = 0; i < 4; ++i)
    (*out)[kCrcOffset + static_cast<size_t>(i)] =
        static_cast<uint8_t>(digest >> (8 * i));
}

Result<size_t> PeekFrameLength(const uint8_t* data, size_t len) {
  if (len < kFrameHeaderBytes)
    return Status::InvalidArgument("need a full header to size a frame");
  BinaryReader r(data, kFrameHeaderBytes);
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t type = 0;
  uint8_t flags = 0;
  uint32_t src = 0;
  uint32_t body_len = 0;
  MASSBFT_RETURN_IF_ERROR(r.GetU32(&magic));
  MASSBFT_RETURN_IF_ERROR(r.GetU8(&version));
  MASSBFT_RETURN_IF_ERROR(r.GetU8(&type));
  MASSBFT_RETURN_IF_ERROR(r.GetU8(&flags));
  MASSBFT_RETURN_IF_ERROR(r.GetU32(&src));
  MASSBFT_RETURN_IF_ERROR(r.GetU32(&body_len));
  if (magic != kWireMagic) return Status::Corruption("bad frame magic");
  if (version != kWireVersion)
    return Status::Corruption("unsupported wire version");
  if ((flags & ~kFrameFlagTraceContext) != 0)
    return Status::Corruption("unknown frame flags");
  if (body_len > kMaxBodyBytes)
    return Status::Corruption("frame body length over cap");
  const size_t trace_len =
      (flags & kFrameFlagTraceContext) != 0 ? kTraceContextBytes : 0;
  return kFrameHeaderBytes + trace_len + static_cast<size_t>(body_len);
}

Result<Frame> DecodeFrame(const uint8_t* data, size_t len) {
  MASSBFT_ASSIGN_OR_RETURN(size_t frame_len, PeekFrameLength(data, len));
  if (len < frame_len) return Status::Corruption("truncated frame");
  if (len > frame_len) return Status::Corruption("trailing bytes after frame");

  BinaryReader header(data, kFrameHeaderBytes);
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t type = 0;
  uint8_t flags = 0;
  uint32_t src_packed = 0;
  uint32_t body_len = 0;
  uint32_t claimed_crc = 0;
  MASSBFT_RETURN_IF_ERROR(header.GetU32(&magic));
  MASSBFT_RETURN_IF_ERROR(header.GetU8(&version));
  MASSBFT_RETURN_IF_ERROR(header.GetU8(&type));
  MASSBFT_RETURN_IF_ERROR(header.GetU8(&flags));
  MASSBFT_RETURN_IF_ERROR(header.GetU32(&src_packed));
  MASSBFT_RETURN_IF_ERROR(header.GetU32(&body_len));
  MASSBFT_RETURN_IF_ERROR(header.GetU32(&claimed_crc));

  const bool has_trace = (flags & kFrameFlagTraceContext) != 0;
  const size_t trace_len = has_trace ? kTraceContextBytes : 0;

  Crc32 crc;
  crc.Update(data + 4, kCrcHeaderSpan);
  crc.Update(data + kFrameHeaderBytes, trace_len + body_len);
  if (crc.Finish() != claimed_crc)
    return Status::Corruption("frame CRC mismatch");

  // The trace flag is a function of the message type, not a choice: a
  // mismatch means a corrupted or hand-rolled frame whose size accounting
  // would diverge from the simulator's.
  if (has_trace != CarriesTraceContext(static_cast<MessageType>(type)))
    return Status::Corruption("trace context flag mismatches message type");

  Frame frame;
  frame.has_trace = has_trace;
  if (has_trace) {
    BinaryReader tr(data + kFrameHeaderBytes, kTraceContextBytes);
    MASSBFT_RETURN_IF_ERROR(tr.GetU16(&frame.trace.gid));
    MASSBFT_RETURN_IF_ERROR(tr.GetU64(&frame.trace.seq));
    MASSBFT_RETURN_IF_ERROR(tr.GetU32(&frame.trace.origin));
    MASSBFT_RETURN_IF_ERROR(tr.GetU64(&frame.trace.origin_ts_ns));
  }

  BinaryReader body(data + kFrameHeaderBytes + trace_len, body_len);
  MASSBFT_ASSIGN_OR_RETURN(
      std::unique_ptr<ProtocolMessage> msg,
      DecodeMessageBody(static_cast<MessageType>(type), &body));
  frame.src = NodeId::FromPacked(src_packed);
  frame.msg = std::move(msg);
  return frame;
}

Result<Frame> DecodeFrame(const Bytes& buf) {
  return DecodeFrame(buf.data(), buf.size());
}

}  // namespace massbft
