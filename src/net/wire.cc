#include "net/wire.h"

#include "common/codec.h"
#include "net/crc32.h"

namespace massbft {

Bytes EncodeFrame(const ProtocolMessage& msg, NodeId src) {
  BinaryWriter body;
  msg.EncodeBodyTo(&body);

  BinaryWriter w(kFrameHeaderBytes + body.size());
  w.PutU32(kWireMagic);
  w.PutU8(kWireVersion);
  w.PutU8(static_cast<uint8_t>(msg.message_type()));
  w.PutU32(src.Packed());
  w.PutU32(static_cast<uint32_t>(body.size()));

  Crc32 crc;
  crc.Update(w.buffer().data() + 4, 10);  // version..body_len
  crc.Update(body.buffer());
  w.PutU32(crc.Finish());
  w.PutRaw(body.buffer().data(), body.size());
  return w.Release();
}

Result<size_t> PeekFrameLength(const uint8_t* data, size_t len) {
  if (len < kFrameHeaderBytes)
    return Status::InvalidArgument("need a full header to size a frame");
  BinaryReader r(data, kFrameHeaderBytes);
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t type = 0;
  uint32_t src = 0;
  uint32_t body_len = 0;
  MASSBFT_RETURN_IF_ERROR(r.GetU32(&magic));
  MASSBFT_RETURN_IF_ERROR(r.GetU8(&version));
  MASSBFT_RETURN_IF_ERROR(r.GetU8(&type));
  MASSBFT_RETURN_IF_ERROR(r.GetU32(&src));
  MASSBFT_RETURN_IF_ERROR(r.GetU32(&body_len));
  if (magic != kWireMagic) return Status::Corruption("bad frame magic");
  if (version != kWireVersion)
    return Status::Corruption("unsupported wire version");
  if (body_len > kMaxBodyBytes)
    return Status::Corruption("frame body length over cap");
  return kFrameHeaderBytes + static_cast<size_t>(body_len);
}

Result<Frame> DecodeFrame(const uint8_t* data, size_t len) {
  MASSBFT_ASSIGN_OR_RETURN(size_t frame_len, PeekFrameLength(data, len));
  if (len < frame_len) return Status::Corruption("truncated frame");
  if (len > frame_len) return Status::Corruption("trailing bytes after frame");

  BinaryReader header(data, kFrameHeaderBytes);
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t type = 0;
  uint32_t src_packed = 0;
  uint32_t body_len = 0;
  uint32_t claimed_crc = 0;
  MASSBFT_RETURN_IF_ERROR(header.GetU32(&magic));
  MASSBFT_RETURN_IF_ERROR(header.GetU8(&version));
  MASSBFT_RETURN_IF_ERROR(header.GetU8(&type));
  MASSBFT_RETURN_IF_ERROR(header.GetU32(&src_packed));
  MASSBFT_RETURN_IF_ERROR(header.GetU32(&body_len));
  MASSBFT_RETURN_IF_ERROR(header.GetU32(&claimed_crc));

  Crc32 crc;
  crc.Update(data + 4, 10);
  crc.Update(data + kFrameHeaderBytes, body_len);
  if (crc.Finish() != claimed_crc)
    return Status::Corruption("frame CRC mismatch");

  BinaryReader body(data + kFrameHeaderBytes, body_len);
  MASSBFT_ASSIGN_OR_RETURN(
      std::unique_ptr<ProtocolMessage> msg,
      DecodeMessageBody(static_cast<MessageType>(type), &body));
  return Frame{NodeId::FromPacked(src_packed), std::move(msg)};
}

Result<Frame> DecodeFrame(const Bytes& buf) {
  return DecodeFrame(buf.data(), buf.size());
}

}  // namespace massbft
