#include "net/fault_transport.h"

#include <algorithm>
#include <utility>

#include "obs/telemetry.h"

namespace massbft {

FaultInjectingTransport::FaultInjectingTransport(
    std::unique_ptr<Transport> inner, FaultSpec spec)
    : inner_(std::move(inner)), spec_(std::move(spec)), rng_(spec_.seed) {}

FaultInjectingTransport::~FaultInjectingTransport() { Stop(); }

void FaultInjectingTransport::BindTelemetry(obs::Telemetry* telemetry) {
  inner_->BindTelemetry(telemetry);
  if (telemetry == nullptr) return;
  telemetry_ = telemetry;
  obs::MetricsRegistry& registry = telemetry->registry();
  dropped_counter_ = registry.GetCounter("faults/dropped");
  duplicated_counter_ = registry.GetCounter("faults/duplicated");
  corrupted_counter_ = registry.GetCounter("faults/corrupted");
  delayed_counter_ = registry.GetCounter("faults/delayed");
  partition_counter_ = registry.GetCounter("faults/partition_dropped");
}

Status FaultInjectingTransport::Start(DeliverFn deliver) {
  {
    MutexLock lock(&mu_);
    if (running_) return Status::FailedPrecondition("transport running");
    // The partition clock starts at the first Start() and keeps ticking
    // across kill/restart cycles: windows describe cluster time.
    if (!epoch_set_) {
      epoch_ = Clock::now();
      epoch_set_ = true;
    }
    running_ = true;
  }
  timer_thread_ = std::thread([this] { TimerLoop(); });

  // Partition-filter the deliver path too: during a window a frame from
  // the far side must not arrive even if the sender's own injector was
  // not configured (or the frame was already in flight).
  DeliverFn filtered = [this, deliver = std::move(deliver)](Frame frame) {
    {
      MutexLock lock(&mu_);
      if (PartitionedLocked(frame.src, inner_->self())) {
        fault_stats_.partition_dropped++;
        if (partition_counter_ != nullptr) partition_counter_->Add();
        RecordFaultEvent("partition_dropped",
                         static_cast<double>(frame.src.Packed()), 0);
        return;
      }
    }
    deliver(std::move(frame));
  };
  Status status = inner_->Start(std::move(filtered));
  if (!status.ok()) {
    Stop();
    return status;
  }
  return Status::OK();
}

void FaultInjectingTransport::Stop() {
  {
    MutexLock lock(&mu_);
    if (!running_) return;
    running_ = false;
    // Pending delayed frames die with the stop (they were counted when
    // scheduled; a stopped node sends nothing).
    while (!delayed_.empty()) delayed_.pop();
    link_pending_.clear();
    link_release_.clear();
  }
  cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
  inner_->Stop();
}

bool FaultInjectingTransport::PartitionedLocked(NodeId a, NodeId b) const {
  if (spec_.partitions.empty() || !epoch_set_) return false;
  const double now_s =
      std::chrono::duration<double>(Clock::now() - epoch_).count();
  for (const FaultSpec::Partition& p : spec_.partitions) {
    if (now_s < p.start_s || now_s >= p.end_s) continue;
    const bool a_in = std::find(p.side_a.begin(), p.side_a.end(), a.group) !=
                      p.side_a.end();
    const bool b_in = std::find(p.side_a.begin(), p.side_a.end(), b.group) !=
                      p.side_a.end();
    if (a_in != b_in) return true;
  }
  return false;
}

Status FaultInjectingTransport::Send(NodeId dst, const ProtocolMessage& msg) {
  enum class Action { kPass, kDrop, kPartition, kCorrupt, kDuplicate, kDelay };
  Action action = Action::kPass;
  double delay_ms = 0;
  {
    MutexLock lock(&mu_);
    if (!running_) return Status::FailedPrecondition("transport stopped");
    if (PartitionedLocked(inner_->self(), dst)) {
      action = Action::kPartition;
      fault_stats_.partition_dropped++;
      if (partition_counter_ != nullptr) partition_counter_->Add();
      RecordFaultEvent("partition_dropped", static_cast<double>(dst.Packed()),
                       0);
    } else if (rng_.NextBool(spec_.drop_rate)) {
      action = Action::kDrop;
      fault_stats_.dropped++;
      if (dropped_counter_ != nullptr) dropped_counter_->Add();
      RecordFaultEvent("dropped", static_cast<double>(dst.Packed()), 0);
    } else if (rng_.NextBool(spec_.corrupt_rate)) {
      action = Action::kCorrupt;
      fault_stats_.corrupted++;
      if (corrupted_counter_ != nullptr) corrupted_counter_->Add();
      RecordFaultEvent("corrupted", static_cast<double>(dst.Packed()), 0);
    } else if (rng_.NextBool(spec_.duplicate_rate)) {
      action = Action::kDuplicate;
      fault_stats_.duplicated++;
      if (duplicated_counter_ != nullptr) duplicated_counter_->Add();
      RecordFaultEvent("duplicated", static_cast<double>(dst.Packed()), 0);
    } else if (rng_.NextBool(spec_.delay_rate)) {
      action = Action::kDelay;
      fault_stats_.delayed++;
      if (delayed_counter_ != nullptr) delayed_counter_->Add();
      delay_ms = spec_.delay_min_ms +
                 rng_.NextDouble() * (spec_.delay_max_ms - spec_.delay_min_ms);
      RecordFaultEvent("delayed", static_cast<double>(dst.Packed()), delay_ms);
    }
  }

  // Loss is silent, like the network it models — and costs no encode.
  if (action == Action::kDrop || action == Action::kPartition)
    return Status::OK();

  // Every surviving action forwards bytes, so encode exactly once; the
  // duplicate path copies the encoded frame instead of re-encoding.
  Bytes wire = EncodeFrame(msg, inner_->self());
  switch (action) {
    case Action::kCorrupt: {
      MutexLock lock(&mu_);
      size_t index = rng_.NextBelow(wire.size());
      wire[index] ^= static_cast<uint8_t>(1 + rng_.NextBelow(255));
      break;
    }
    case Action::kDuplicate: {
      Bytes copy = wire;
      MASSBFT_RETURN_IF_ERROR(ForwardFifo(dst, std::move(copy), 0));
      break;
    }
    default:
      break;
  }
  return ForwardFifo(dst, std::move(wire),
                     action == Action::kDelay ? delay_ms : 0);
}

Status FaultInjectingTransport::ForwardFifo(NodeId dst, Bytes wire,
                                            double delay_ms) {
  bool queued = false;
  {
    MutexLock lock(&mu_);
    if (!running_) return Status::FailedPrecondition("transport stopped");
    auto pending = link_pending_.find(dst.Packed());
    const bool stalled = pending != link_pending_.end() && pending->second > 0;
    if (delay_ms > 0 || stalled) {
      Clock::time_point due =
          Clock::now() + std::chrono::microseconds(
                             static_cast<int64_t>(delay_ms * 1000.0));
      // A frame never releases before one queued earlier to the same
      // destination: the link stalls, it does not reorder.
      if (stalled) due = std::max(due, link_release_[dst.Packed()]);
      link_release_[dst.Packed()] = due;
      ++link_pending_[dst.Packed()];
      delayed_.push(DelayedFrame{due, delay_seq_++, dst, std::move(wire)});
      queued = true;
    }
  }
  if (!queued) return inner_->SendEncoded(dst, std::move(wire));
  // The timer thread releases the frame at `due`.
  cv_.notify_all();
  return Status::OK();
}

Status FaultInjectingTransport::SendEncoded(NodeId dst, Bytes wire) {
  // Raw bytes bypass injection: they come from this injector's own delay /
  // corruption paths or from tests that already decided the frame's fate.
  return inner_->SendEncoded(dst, std::move(wire));
}

void FaultInjectingTransport::TimerLoop() {
  for (;;) {
    DelayedFrame frame;
    {
      MutexLock lock(&mu_);
      while (running_) {
        if (delayed_.empty()) {
          cv_.wait(mu_);
          continue;
        }
        const Clock::time_point due = delayed_.top().due;
        if (Clock::now() < due) {
          cv_.wait_until(mu_, due);
          continue;
        }
        break;
      }
      if (!running_) return;
      // Move out of the heap top (safe: the element is popped immediately
      // and heap order does not depend on the moved-from wire bytes).
      frame = std::move(const_cast<DelayedFrame&>(delayed_.top()));
      delayed_.pop();
    }
    // Re-send with mu_ released: inner_->SendEncoded takes the transport
    // lock, which must never nest under the injector's.
    (void)inner_->SendEncoded(frame.dst, std::move(frame.wire));
    {
      MutexLock lock(&mu_);
      // The frame stays counted as pending until the send above finishes,
      // so a concurrent Send to the same destination cannot overtake it.
      auto pending = link_pending_.find(frame.dst.Packed());
      if (pending != link_pending_.end() && --pending->second == 0) {
        link_pending_.erase(pending);
        link_release_.erase(frame.dst.Packed());
      }
    }
  }
}

void FaultInjectingTransport::RecordFaultEvent(const char* name, double peer,
                                               double detail) {
  if (telemetry_ == nullptr) return;
  const SimTime now = telemetry_->TraceNowNs();
  telemetry_->flight().Record(static_cast<uint64_t>(now), "fault", name, peer,
                              detail);
  if (telemetry_->tracing()) {
    telemetry_->trace().RecordInstant(
        obs::Telemetry::NodeTrack(inner_->self().Packed()), "fault", name, now,
        obs::TraceArgs{{{"peer", peer}, {"detail", detail}}});
  }
}

FaultStats FaultInjectingTransport::fault_stats() const {
  MutexLock lock(&mu_);
  return fault_stats_;
}

}  // namespace massbft
