#include "net/rx_ring.h"

#include <cstring>
#include <utility>

namespace massbft {

FrameReassembler::FrameReassembler(size_t initial_capacity) {
  buf_.resize(initial_capacity > 0 ? initial_capacity : 1);
}

uint8_t* FrameReassembler::WritableData(size_t min_bytes) {
  if (buf_.size() - end_ < min_bytes) {
    Compact();
    if (buf_.size() - end_ < min_bytes) buf_.resize(end_ + min_bytes);
  }
  return buf_.data() + end_;
}

void FrameReassembler::CommitWrite(size_t n) { end_ += n; }

Status FrameReassembler::Drain(std::vector<Frame>* out) {
  while (end_ - begin_ >= kFrameHeaderBytes) {
    Result<size_t> frame_len = PeekFrameLength(buf_.data() + begin_,
                                               end_ - begin_);
    if (!frame_len.ok()) return frame_len.status();
    if (end_ - begin_ < *frame_len) break;  // Partial frame: wait for more.
    Result<Frame> frame = DecodeFrame(buf_.data() + begin_, *frame_len);
    if (!frame.ok()) return frame.status();
    out->push_back(std::move(*frame));
    begin_ += *frame_len;
  }
  Compact();
  return Status::OK();
}

void FrameReassembler::Compact() {
  if (begin_ == 0) return;
  const size_t pending = end_ - begin_;
  if (pending > 0) std::memmove(buf_.data(), buf_.data() + begin_, pending);
  begin_ = 0;
  end_ = pending;
}

}  // namespace massbft
