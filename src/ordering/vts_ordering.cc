#include "ordering/vts_ordering.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace massbft {

VtsOrderingEngine::VtsOrderingEngine(int num_groups, Callbacks callbacks)
    : num_groups_(num_groups), cb_(std::move(callbacks)),
      heads_(num_groups, 0) {
  // Materialize initial heads e_{g,0}: the own element is deterministic
  // (overlapped assignment, vts[g] = seq), others start as lower bound 0.
  for (int g = 0; g < num_groups_; ++g)
    GetEntry(static_cast<uint16_t>(g), 0);
}

void VtsOrderingEngine::set_telemetry(obs::Telemetry* telemetry,
                                      uint32_t trace_track,
                                      std::function<SimTime()> now) {
  telemetry_ = telemetry;
  trace_track_ = trace_track;
  now_ = std::move(now);
  if (telemetry_ == nullptr) {
    ts_counter_ = nullptr;
    exec_counter_ = nullptr;
    inferred_exec_counter_ = nullptr;
    return;
  }
  obs::MetricsRegistry& registry = telemetry_->registry();
  ts_counter_ = registry.GetCounter("vts/timestamps_received");
  exec_counter_ = registry.GetCounter("vts/executions");
  inferred_exec_counter_ = registry.GetCounter("vts/inferred_executions");
}

VtsOrderingEngine::EntryState& VtsOrderingEngine::GetEntry(uint16_t gid,
                                                           uint64_t seq) {
  auto [it, inserted] = entries_.try_emplace(Key{gid, seq});
  EntryState& e = it->second;
  if (inserted) {
    e.vts.assign(num_groups_, 0);
    e.set.assign(num_groups_, false);
    e.vts[gid] = seq;
    e.set[gid] = true;
  }
  return e;
}

void VtsOrderingEngine::OnTimestamp(uint16_t assigner, uint16_t target_gid,
                                    uint64_t target_seq, uint64_t ts) {
  if (assigner >= num_groups_ || target_gid >= num_groups_) return;
  if (ts_counter_ != nullptr) ts_counter_->Add();
  // Drop stamps for already-executed entries; they cannot regress heads
  // because inference below still consumes the clock value.
  if (target_seq >= heads_[target_gid]) {
    EntryState& e = GetEntry(target_gid, target_seq);
    if (!e.set[assigner]) {
      e.vts[assigner] = ts;
      e.set[assigner] = true;
    }
  }

  // Algorithm 2 lines 6-7: group clocks stamp in non-decreasing order, so
  // any unset head element from `assigner` can be inferred up to `ts`.
  for (int g = 0; g < num_groups_; ++g) {
    EntryState& head = GetEntry(static_cast<uint16_t>(g), heads_[g]);
    if (!head.set[assigner])
      head.vts[assigner] = std::max(head.vts[assigner], ts);
  }

  RunExecutionLoop();
}

bool VtsOrderingEngine::Prec(const EntryState& e1, uint16_t g1,
                             const EntryState& e2, uint16_t g2) const {
  // Algorithm 2 lines 21-30.
  for (int j = 0; j < num_groups_; ++j) {
    if (e1.set[j]) {
      if (e1.vts[j] < e2.vts[j]) return true;  // Lower bound on e2 suffices.
      if (e2.set[j] && e1.vts[j] == e2.vts[j]) continue;
    }
    return false;  // Unset element of e1, e1 > e2 here, or undecidable.
  }
  // Identical, fully-set VTSs: break ties by (seq, gid). The head seqs are
  // the entries' sequence numbers.
  uint64_t s1 = e1.vts[g1];
  uint64_t s2 = e2.vts[g2];
  if (s1 != s2) return s1 < s2;
  return g1 < g2;
}

int VtsOrderingEngine::GlobalMinimum() const {
  for (int g1 = 0; g1 < num_groups_; ++g1) {
    const EntryState& e1 =
        entries_.at(Key{static_cast<uint16_t>(g1), heads_[g1]});
    bool precedes_all = true;
    for (int g2 = 0; g2 < num_groups_ && precedes_all; ++g2) {
      if (g2 == g1) continue;
      const EntryState& e2 =
          entries_.at(Key{static_cast<uint16_t>(g2), heads_[g2]});
      if (!Prec(e1, static_cast<uint16_t>(g1), e2, static_cast<uint16_t>(g2)))
        precedes_all = false;
    }
    if (precedes_all) return g1;
  }
  return -1;
}

void VtsOrderingEngine::RunExecutionLoop() {
  if (in_loop_) return;  // Execute() callbacks may re-enter via Poke().
  in_loop_ = true;
  while (true) {
    int g = num_groups_ == 1 ? 0 : GlobalMinimum();
    if (g < 0) break;
    uint64_t seq = heads_[g];
    if (!cb_.can_execute(static_cast<uint16_t>(g), seq)) break;

    // Algorithm 2 lines 9-15: execute, promote the successor to head and
    // seed its unset elements from the predecessor's (valid lower bounds).
    EntryState pre = entries_.at(Key{static_cast<uint16_t>(g), seq});
    if (exec_counter_ != nullptr) {
      exec_counter_->Add();
      // Executed on inferred lower bounds rather than a full VTS — the
      // asynchronous fast path of Algorithm 2.
      bool fully_set =
          std::all_of(pre.set.begin(), pre.set.end(), [](bool b) { return b; });
      if (!fully_set) inferred_exec_counter_->Add();
      obs::TraceRecorder& trace = telemetry_->trace();
      if (trace.enabled() && now_) {
        trace.RecordInstant(
            trace_track_, "vts", "vts_execute", now_(),
            obs::TraceArgs{{{"gid", static_cast<double>(g)},
                            {"seq", static_cast<double>(seq)},
                            {"inferred", fully_set ? 0.0 : 1.0}}});
      }
    }
    cb_.execute(static_cast<uint16_t>(g), seq);
    ++executed_count_;
    entries_.erase(Key{static_cast<uint16_t>(g), seq});
    heads_[g] = seq + 1;
    EntryState& nxt = GetEntry(static_cast<uint16_t>(g), seq + 1);
    for (int j = 0; j < num_groups_; ++j) {
      if (!nxt.set[j]) nxt.vts[j] = std::max(nxt.vts[j], pre.vts[j]);
    }
  }
  in_loop_ = false;
}

void VtsOrderingEngine::Poke() { RunExecutionLoop(); }

VtsOrderingEngine::HeadState VtsOrderingEngine::HeadStateFor(int gid) const {
  const EntryState& e =
      entries_.at(Key{static_cast<uint16_t>(gid), heads_[gid]});
  return HeadState{e.vts, e.set};
}

}  // namespace massbft
