#include "ordering/round_ordering.h"

#include <utility>

namespace massbft {

RoundOrderingEngine::RoundOrderingEngine(int num_groups, Callbacks callbacks)
    : num_groups_(num_groups), cb_(std::move(callbacks)) {}

void RoundOrderingEngine::Poke() {
  if (in_loop_) return;
  in_loop_ = true;
  while (true) {
    // The round may proceed only when every participating group's round-r
    // entry is executable.
    bool complete = true;
    for (int g = 0; g < num_groups_ && complete; ++g) {
      if (excluded_.contains(static_cast<uint16_t>(g))) continue;
      if (!cb_.can_execute(static_cast<uint16_t>(g), round_)) complete = false;
    }
    if (!complete) break;
    for (int g = 0; g < num_groups_; ++g) {
      if (excluded_.contains(static_cast<uint16_t>(g))) continue;
      cb_.execute(static_cast<uint16_t>(g), round_);
      ++executed_count_;
    }
    ++round_;
  }
  in_loop_ = false;
}

void RoundOrderingEngine::ExcludeGroup(uint16_t gid) {
  excluded_.insert(gid);
  Poke();
}

EpochOrderingEngine::EpochOrderingEngine(int num_groups, Callbacks callbacks)
    : num_groups_(num_groups), cb_(std::move(callbacks)) {}

void EpochOrderingEngine::OnEpochSealed(uint16_t gid, uint64_t epoch,
                                        uint64_t first_seq, uint64_t count) {
  plans_[epoch].per_group[gid] = {first_seq, count};
  Poke();
}

void EpochOrderingEngine::Poke() {
  if (in_loop_) return;
  in_loop_ = true;
  while (true) {
    auto it = plans_.find(epoch_);
    if (it == plans_.end()) break;
    EpochPlan& plan = it->second;
    if (static_cast<int>(plan.per_group.size()) < num_groups_) break;

    // All groups sealed this epoch; every declared entry must be
    // executable before the barrier opens.
    bool ready = true;
    for (const auto& [gid, range] : plan.per_group) {
      for (uint64_t s = range.first; s < range.first + range.second && ready;
           ++s)
        if (!cb_.can_execute(gid, s)) ready = false;
      if (!ready) break;
    }
    if (!ready) break;

    for (const auto& [gid, range] : plan.per_group) {
      for (uint64_t s = range.first; s < range.first + range.second; ++s) {
        cb_.execute(gid, s);
        ++executed_count_;
      }
    }
    plans_.erase(it);
    ++epoch_;
  }
  in_loop_ = false;
}

}  // namespace massbft
