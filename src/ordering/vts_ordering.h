#ifndef MASSBFT_ORDERING_VTS_ORDERING_H_
#define MASSBFT_ORDERING_VTS_ORDERING_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "obs/telemetry.h"
#include "sim/time.h"

namespace massbft {

/// Asynchronous log ordering by vector timestamps — the paper's Algorithm 2
/// plus Section V-D's total order (Lemma V.4):
///   e1 < e2  iff  e1.vts < e2.vts (element-wise lexicographic), ties broken
///   by (seq, gid).
///
/// Each group G_j assigns its local clock value to every entry it accepts;
/// elements arrive asynchronously (OnTimestamp). Entries proposed by G_i
/// deterministically carry vts[i] = seq (the overlapped assignment of
/// Fig 7b). Unset elements of the per-group *head* entries are inferred as
/// lower bounds (group clocks stamp in non-decreasing order), letting fast
/// groups execute without waiting for full VTSs.
///
/// The engine is a pure, deterministic state machine: feed it the same
/// events in any order consistent with per-group monotonicity and every
/// node executes the identical sequence (Theorem V.6, agreement).
class VtsOrderingEngine {
 public:
  struct Callbacks {
    /// May e_{gid,seq} execute now? (Globally committed and payload
    /// present on this node.) The engine never executes a head for which
    /// this returns false; callers re-Poke() when state advances.
    std::function<bool(uint16_t gid, uint64_t seq)> can_execute;
    /// Executes e_{gid,seq}. Called in the global deterministic order.
    std::function<void(uint16_t gid, uint64_t seq)> execute;
  };

  VtsOrderingEngine(int num_groups, Callbacks callbacks);

  /// Wires observability (optional). Counters "vts/timestamps_received",
  /// "vts/executions" and "vts/inferred_executions" (heads executed before
  /// their VTS was fully stamped — the paper's asynchronous fast path)
  /// land in the registry; when tracing and `now` is set, each execution
  /// emits an instant event on `trace_track`.
  void set_telemetry(obs::Telemetry* telemetry, uint32_t trace_track,
                     std::function<SimTime()> now);

  /// Group `assigner` stamped e_{target_gid,target_seq} with clock value
  /// `ts` (from an accept receipt or a TimestampAssign takeover message).
  void OnTimestamp(uint16_t assigner, uint16_t target_gid,
                   uint64_t target_seq, uint64_t ts);

  /// Re-runs the execution loop (call when commit/payload state advances).
  void Poke();

  uint64_t executed_count() const { return executed_count_; }
  /// Next unexecuted sequence for a group (the head).
  uint64_t HeadSeq(int gid) const { return heads_[gid]; }

  /// Diagnostic: the head entry's VTS and set-bits (tests / debugging).
  struct HeadState {
    std::vector<uint64_t> vts;
    std::vector<bool> set;
  };
  HeadState HeadStateFor(int gid) const;

 private:
  struct EntryState {
    std::vector<uint64_t> vts;
    std::vector<bool> set;
  };
  using Key = std::pair<uint16_t, uint64_t>;

  EntryState& GetEntry(uint16_t gid, uint64_t seq);
  /// True iff e1 (head of g1) must precede e2 (head of g2) — Prec().
  bool Prec(const EntryState& e1, uint16_t g1, const EntryState& e2,
            uint16_t g2) const;
  /// Index of the global-minimum head, or -1 if undecidable.
  int GlobalMinimum() const;
  void RunExecutionLoop();

  int num_groups_;
  Callbacks cb_;
  /// heads_[g] = seq of the next unexecuted entry from group g.
  std::vector<uint64_t> heads_;
  /// States of heads and of future entries with early timestamps.
  std::map<Key, EntryState> entries_;
  uint64_t executed_count_ = 0;
  bool in_loop_ = false;

  // Pre-resolved observability handles (null when not wired).
  obs::Telemetry* telemetry_ = nullptr;
  uint32_t trace_track_ = 0;
  std::function<SimTime()> now_;
  obs::Counter* ts_counter_ = nullptr;
  obs::Counter* exec_counter_ = nullptr;
  obs::Counter* inferred_exec_counter_ = nullptr;
};

}  // namespace massbft

#endif  // MASSBFT_ORDERING_VTS_ORDERING_H_
