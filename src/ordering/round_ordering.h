#ifndef MASSBFT_ORDERING_ROUND_ORDERING_H_
#define MASSBFT_ORDERING_ROUND_ORDERING_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

namespace massbft {

/// Round-based synchronous ordering (the scheme GeoBFT / Baseline / ISS use,
/// paper Section II-A): in round r every group contributes exactly its
/// entry with local sequence r; the round executes — in group-id order —
/// only once every (non-excluded) group's round-r entry is executable.
/// This is precisely the mechanism that chains fast groups to slow ones
/// (paper Fig 2), which MassBFT's VTS ordering removes.
class RoundOrderingEngine {
 public:
  struct Callbacks {
    /// May e_{gid,seq} execute now (committed + payload present)?
    std::function<bool(uint16_t gid, uint64_t seq)> can_execute;
    std::function<void(uint16_t gid, uint64_t seq)> execute;
  };

  RoundOrderingEngine(int num_groups, Callbacks callbacks);

  /// Re-evaluates round completion (call when commit/payload state
  /// advances).
  void Poke();

  /// Removes a group from future rounds (e.g. after it provably crashed).
  /// Rounds already blocked on it unblock.
  void ExcludeGroup(uint16_t gid);

  uint64_t current_round() const { return round_; }
  uint64_t executed_count() const { return executed_count_; }

 private:
  int num_groups_;
  Callbacks cb_;
  uint64_t round_ = 0;
  uint64_t executed_count_ = 0;
  std::set<uint16_t> excluded_;
  bool in_loop_ = false;
};

/// Epoch-bucketed ordering (ISS): entries are grouped into epochs by their
/// proposing group; an epoch executes once every group has sealed it (sent
/// its epoch marker declaring how many entries it contributed). Within an
/// epoch, entries run in (gid, seq) order. Frequent epoch boundaries act as
/// global synchronization barriers — the latency effect the paper reports
/// for ISS.
class EpochOrderingEngine {
 public:
  struct Callbacks {
    std::function<bool(uint16_t gid, uint64_t seq)> can_execute;
    std::function<void(uint16_t gid, uint64_t seq)> execute;
  };

  EpochOrderingEngine(int num_groups, Callbacks callbacks);

  /// Group `gid` sealed `epoch` with entries [first_seq, first_seq+count).
  void OnEpochSealed(uint16_t gid, uint64_t epoch, uint64_t first_seq,
                     uint64_t count);

  void Poke();

  uint64_t current_epoch() const { return epoch_; }
  uint64_t executed_count() const { return executed_count_; }

 private:
  struct EpochPlan {
    std::map<uint16_t, std::pair<uint64_t, uint64_t>> per_group;  // first,count
  };

  int num_groups_;
  Callbacks cb_;
  uint64_t epoch_ = 0;
  uint64_t executed_count_ = 0;
  std::map<uint64_t, EpochPlan> plans_;
  bool in_loop_ = false;
};

}  // namespace massbft

#endif  // MASSBFT_ORDERING_ROUND_ORDERING_H_
