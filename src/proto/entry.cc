#include "proto/entry.h"

#include <set>
#include <utility>

namespace massbft {

void Transaction::EncodeTo(BinaryWriter* w) const {
  w->PutU64(id);
  w->PutU32(client);
  w->PutI64(submit_time);
  w->PutBytes(payload);
}

Result<Transaction> Transaction::DecodeFrom(BinaryReader* r) {
  Transaction txn;
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&txn.id));
  MASSBFT_RETURN_IF_ERROR(r->GetU32(&txn.client));
  MASSBFT_RETURN_IF_ERROR(r->GetI64(&txn.submit_time));
  MASSBFT_RETURN_IF_ERROR(r->GetBytes(&txn.payload));
  return txn;
}

Entry::Entry(uint16_t gid, uint64_t seq, std::vector<Transaction> txns)
    : gid_(gid), seq_(seq), txns_(std::move(txns)) {
  BinaryWriter w;
  w.PutU16(gid_);
  w.PutU64(seq_);
  w.PutVarint(txns_.size());
  for (const Transaction& txn : txns_) txn.EncodeTo(&w);
  encoded_ = w.Release();
}

Entry::Entry(uint16_t gid, uint64_t seq, std::vector<Transaction> txns,
             Bytes encoded)
    : gid_(gid),
      seq_(seq),
      txns_(std::move(txns)),
      encoded_(std::move(encoded)) {}

Result<EntryPtr> Entry::Decode(const Bytes& encoded) {
  BinaryReader r(encoded);
  uint16_t gid;
  uint64_t seq;
  uint64_t count;
  MASSBFT_RETURN_IF_ERROR(r.GetU16(&gid));
  MASSBFT_RETURN_IF_ERROR(r.GetU64(&seq));
  MASSBFT_RETURN_IF_ERROR(r.GetVarint(&count));
  if (count > encoded.size())  // Cheap sanity bound before allocating.
    return Status::Corruption("implausible transaction count");
  std::vector<Transaction> txns;
  txns.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    MASSBFT_ASSIGN_OR_RETURN(Transaction txn, Transaction::DecodeFrom(&r));
    txns.push_back(std::move(txn));
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes after entry");
  // Adopt the already-validated wire bytes as the canonical encoding; the
  // writer side always emits canonical varints, so re-encoding would
  // reproduce `encoded` byte for byte.
  return std::make_shared<const Entry>(gid, seq, std::move(txns), encoded);
}

void Certificate::EncodeTo(BinaryWriter* w) const {
  w->PutU16(gid);
  w->PutRaw(digest.data(), digest.size());
  w->PutU16(static_cast<uint16_t>(sigs.size()));
  for (const auto& [node, sig] : sigs) {
    w->PutU32(node.Packed());
    w->PutRaw(sig.data(), sig.size());
  }
}

Result<Certificate> Certificate::DecodeFrom(BinaryReader* r) {
  Certificate cert;
  MASSBFT_RETURN_IF_ERROR(r->GetU16(&cert.gid));
  MASSBFT_RETURN_IF_ERROR(r->GetRaw(cert.digest.data(), cert.digest.size()));
  uint16_t count = 0;
  MASSBFT_RETURN_IF_ERROR(r->GetU16(&count));
  cert.sigs.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    uint32_t packed = 0;
    Signature sig;
    MASSBFT_RETURN_IF_ERROR(r->GetU32(&packed));
    MASSBFT_RETURN_IF_ERROR(r->GetRaw(sig.data(), sig.size()));
    cert.sigs.emplace_back(NodeId::FromPacked(packed), sig);
  }
  return cert;
}

bool Certificate::Verify(const KeyRegistry& registry, int quorum) const {
  std::set<uint32_t> seen;
  int valid = 0;
  for (const auto& [node, sig] : sigs) {
    if (node.group != gid) return false;  // Foreign signer: malformed.
    if (!seen.insert(node.Packed()).second) continue;  // Duplicate.
    if (registry.Verify(node, digest.data(), digest.size(), sig)) ++valid;
  }
  return valid >= quorum;
}

}  // namespace massbft
