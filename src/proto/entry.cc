#include "proto/entry.h"

#include <bit>
#include <utility>

namespace massbft {

void Transaction::EncodeTo(BinaryWriter* w) const {
  w->PutU64(id);
  w->PutU32(client);
  w->PutI64(submit_time);
  w->PutBytes(payload);
}

Result<Transaction> Transaction::DecodeFrom(BinaryReader* r) {
  Transaction txn;
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&txn.id));
  MASSBFT_RETURN_IF_ERROR(r->GetU32(&txn.client));
  MASSBFT_RETURN_IF_ERROR(r->GetI64(&txn.submit_time));
  MASSBFT_RETURN_IF_ERROR(r->GetBytes(&txn.payload));
  return txn;
}

Entry::Entry(uint16_t gid, uint64_t seq, std::vector<Transaction> txns)
    : gid_(gid), seq_(seq), txns_(std::move(txns)) {
  BinaryWriter w;
  w.PutU16(gid_);
  w.PutU64(seq_);
  w.PutVarint(txns_.size());
  for (const Transaction& txn : txns_) txn.EncodeTo(&w);
  encoded_ = w.Release();
}

Entry::Entry(uint16_t gid, uint64_t seq, std::vector<Transaction> txns,
             Bytes encoded)
    : gid_(gid),
      seq_(seq),
      txns_(std::move(txns)),
      encoded_(std::move(encoded)) {}

Result<EntryPtr> Entry::Decode(const Bytes& encoded) {
  BinaryReader r(encoded);
  uint16_t gid;
  uint64_t seq;
  uint64_t count;
  MASSBFT_RETURN_IF_ERROR(r.GetU16(&gid));
  MASSBFT_RETURN_IF_ERROR(r.GetU64(&seq));
  MASSBFT_RETURN_IF_ERROR(r.GetVarint(&count));
  if (count > encoded.size())  // Cheap sanity bound before allocating.
    return Status::Corruption("implausible transaction count");
  std::vector<Transaction> txns;
  txns.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    MASSBFT_ASSIGN_OR_RETURN(Transaction txn, Transaction::DecodeFrom(&r));
    txns.push_back(std::move(txn));
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes after entry");
  // Adopt the already-validated wire bytes as the canonical encoding; the
  // writer side always emits canonical varints, so re-encoding would
  // reproduce `encoded` byte for byte.
  return std::make_shared<const Entry>(gid, seq, std::move(txns), encoded);
}

void Certificate::AddSignature(uint16_t index, const Signature& sig) {
  if (HasSigner(index)) return;
  const size_t byte = index / 8;
  if (byte >= bitmap_.size()) bitmap_.resize(byte + 1, 0);
  bitmap_[byte] |= static_cast<uint8_t>(1u << (index % 8));
  // Insert at the signature's rank: the number of set bits below `index`.
  size_t rank = 0;
  for (size_t b = 0; b < byte; ++b) rank += std::popcount(bitmap_[b]);
  rank += std::popcount(
      static_cast<uint8_t>(bitmap_[byte] & ((1u << (index % 8)) - 1)));
  sigs_.insert(sigs_.begin() + static_cast<ptrdiff_t>(rank), sig);
}

bool Certificate::HasSigner(uint16_t index) const {
  const size_t byte = index / 8;
  return byte < bitmap_.size() &&
         (bitmap_[byte] & (1u << (index % 8))) != 0;
}

std::vector<uint16_t> Certificate::Signers() const {
  std::vector<uint16_t> out;
  out.reserve(sigs_.size());
  for (size_t b = 0; b < bitmap_.size(); ++b)
    for (int bit = 0; bit < 8; ++bit)
      if (bitmap_[b] & (1u << bit))
        out.push_back(static_cast<uint16_t>(8 * b + bit));
  return out;
}

void Certificate::EncodeTo(BinaryWriter* w) const {
  w->PutU16(gid);
  w->PutRaw(digest.data(), digest.size());
  w->PutU16(static_cast<uint16_t>(bitmap_.size()));
  w->PutRaw(bitmap_.data(), bitmap_.size());
  for (const Signature& sig : sigs_) w->PutRaw(sig.data(), sig.size());
}

Result<Certificate> Certificate::DecodeFrom(BinaryReader* r) {
  Certificate cert;
  MASSBFT_RETURN_IF_ERROR(r->GetU16(&cert.gid));
  MASSBFT_RETURN_IF_ERROR(r->GetRaw(cert.digest.data(), cert.digest.size()));
  uint16_t bitmap_len = 0;
  MASSBFT_RETURN_IF_ERROR(r->GetU16(&bitmap_len));
  // Node indices are 16-bit, so the bitmap never exceeds 2^16/8 bytes.
  if (bitmap_len > 8192) return Status::Corruption("implausible cert bitmap");
  cert.bitmap_.resize(bitmap_len);
  MASSBFT_RETURN_IF_ERROR(r->GetRaw(cert.bitmap_.data(), bitmap_len));
  // Canonicality: one bitmap per signer set. Trailing zero bytes would
  // let the same certificate have multiple encodings.
  if (bitmap_len > 0 && cert.bitmap_.back() == 0)
    return Status::Corruption("non-canonical cert bitmap");
  size_t count = 0;
  for (uint8_t b : cert.bitmap_) count += std::popcount(b);
  cert.sigs_.resize(count);
  for (Signature& sig : cert.sigs_)
    MASSBFT_RETURN_IF_ERROR(r->GetRaw(sig.data(), sig.size()));
  return cert;
}

bool Certificate::Verify(const KeyRegistry& registry, int quorum,
                         std::vector<uint16_t>* forgers) const {
  // Duplicate and foreign-group signers are unrepresentable in the bitmap
  // encoding, so every entry counts toward the quorum check exactly once.
  const std::vector<uint16_t> signers = Signers();
  std::vector<NodeId> nodes;
  nodes.reserve(signers.size());
  for (uint16_t index : signers) nodes.push_back(NodeId{gid, index});
  std::vector<const Signature*> sig_ptrs;
  sig_ptrs.reserve(sigs_.size());
  for (const Signature& sig : sigs_) sig_ptrs.push_back(&sig);

  if (registry.VerifyBatch(nodes, digest.data(), digest.size(), sig_ptrs))
    return static_cast<int>(sigs_.size()) >= quorum;

  // Combined check failed (or a signer is unregistered): fall back to
  // scalar verification to count the valid signatures and name the bad.
  int valid = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (registry.Verify(nodes[i], digest.data(), digest.size(), sigs_[i])) {
      ++valid;
    } else if (forgers != nullptr) {
      forgers->push_back(signers[i]);
    }
  }
  return valid >= quorum;
}

}  // namespace massbft
