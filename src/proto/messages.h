#ifndef MASSBFT_PROTO_MESSAGES_H_
#define MASSBFT_PROTO_MESSAGES_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/codec.h"
#include "common/result.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "crypto/signature.h"
#include "proto/entry.h"
#include "sim/network.h"
#include "sim/time.h"

namespace massbft {

/// Wire message kinds. Values are stable (serialized as one byte).
enum class MessageType : uint8_t {
  kClientRequest = 1,
  kClientReply = 2,
  // Local PBFT (intra-group).
  kPrePrepare = 10,
  kPrepare = 11,
  kCommit = 12,
  kViewChange = 13,
  kNewView = 14,
  kCertifyRequest = 15,  // Skip-prepare decision certification (Ziziphus).
  kCertifyVote = 16,
  // Global replication payloads.
  kEntryTransfer = 20,  // Full entry copy (one-way / bijective / GeoBFT).
  kChunkBatch = 21,     // Erasure-coded chunks with Merkle proofs (EBR).
  // Global Raft control plane.
  kRaftPropose = 30,
  kRaftAccept = 31,
  kRaftCommit = 32,
  kTimestampAssign = 33,
  kGroupHeartbeat = 34,
  kGroupRelay = 35,  // Leader -> group members: raft outcomes over LAN.
  // Protocol-specific.
  kEpochMarker = 40,    // ISS epoch boundary.
  kLeaderForward = 41,  // Steward: remote group -> global leader.
  // Crash recovery (Section V-C, "When G_i recovers later...").
  kCatchUpRequest = 50,
  kFreezeQuery = 51,
  kFreezeReport = 52,
  kCatchUpDone = 53,
};

/// Fixed frame overhead charged on every message in addition to the body:
/// the net/ wire format's frame header (magic u32, version u8, type u8,
/// flags u8, sender NodeId u32, body length u32, CRC32 u32 — see DESIGN.md
/// §12). net/wire.cc static_asserts that its header layout matches this
/// constant, so simulated link accounting and the real transport charge
/// identical per-message overhead.
constexpr size_t kFrameOverheadBytes = 4 + 1 + 1 + 1 + 4 + 4 + 4;

/// Size of the wire trace context (gid u16, seq u64, origin NodeId u32,
/// origin timestamp u64 — DESIGN.md §14) that entry-carrying frames
/// attach after the header. Always present for those types regardless of
/// whether tracing is enabled, so byte accounting never depends on
/// observability settings.
constexpr size_t kTraceContextBytes = 2 + 8 + 4 + 8;

/// True for the message types that carry an entry (or propose one) across
/// the wire and therefore attach a trace context: the hops that stitch an
/// entry's cross-node lifecycle together in the merged trace.
constexpr bool CarriesTraceContext(MessageType type) {
  return type == MessageType::kPrePrepare ||
         type == MessageType::kEntryTransfer ||
         type == MessageType::kChunkBatch ||
         type == MessageType::kRaftPropose ||
         type == MessageType::kLeaderForward;
}

/// Stable lowercase name for diagnostics (health views, flight-recorder
/// dumps). Never returns null.
const char* MessageTypeName(MessageType type);

/// Common base for every wire message. The encoded body is the single
/// source of truth for message size: ByteSize() runs the real encoder once
/// and memoizes the result (messages are immutable after construction and
/// not shared across threads before their first ByteSize/encode, so the
/// lazy init is safe in both the single-threaded simulation and the
/// runtime, where each message is encoded on its sending node's thread).
class ProtocolMessage : public SimMessage {
 public:
  explicit ProtocolMessage(MessageType type) : type_(type) {}

  int type() const override { return static_cast<int>(type_); }
  MessageType message_type() const { return type_; }
  size_t ByteSize() const override {
    return kFrameOverheadBytes +
           (CarriesTraceContext(type_) ? kTraceContextBytes : 0) + body_size();
  }

  /// Entry identity for cross-node trace correlation. Returns true and
  /// fills (gid, seq) exactly for the types where CarriesTraceContext()
  /// holds (the wire layer static-asserts nothing, but DecodeFrame rejects
  /// frames whose flag disagrees with the type, which keeps this invariant
  /// honest end to end).
  virtual bool TraceKey(uint16_t* gid, uint64_t* seq) const {
    (void)gid;
    (void)seq;
    return false;
  }

  /// Serializes the message body (everything after the frame header) in the
  /// canonical wire layout. DecodeMessageBody() inverts it.
  virtual void EncodeBodyTo(BinaryWriter* w) const = 0;

  /// Encoded body size in bytes, derived from the real encoder.
  size_t body_size() const {
    if (body_size_ == kUnknownBodySize) {
      BinaryWriter w;
      EncodeBodyTo(&w);
      body_size_ = w.size();
    }
    return body_size_;
  }

 private:
  static constexpr size_t kUnknownBodySize = static_cast<size_t>(-1);

  MessageType type_;
  mutable size_t body_size_ = kUnknownBodySize;
};

/// Decodes one message body of the given type (the inverse of
/// EncodeBodyTo). Rejects unknown types, truncated or trailing bytes with
/// an error Status — never crashes on malformed input.
[[nodiscard]] Result<std::unique_ptr<ProtocolMessage>> DecodeMessageBody(
    MessageType type, BinaryReader* r);

// ------------------------------------------------------------------ Client

/// One client transaction submitted to its nearest group leader.
class ClientRequestMsg : public ProtocolMessage {
 public:
  explicit ClientRequestMsg(Transaction txn)
      : ProtocolMessage(MessageType::kClientRequest), txn_(std::move(txn)) {}
  const Transaction& txn() const { return txn_; }
  void EncodeBodyTo(BinaryWriter* w) const override;

 private:
  Transaction txn_;
};

/// Commit notification back to the client (small).
class ClientReplyMsg : public ProtocolMessage {
 public:
  ClientReplyMsg(uint64_t txn_id, bool committed)
      : ProtocolMessage(MessageType::kClientReply),
        txn_id_(txn_id),
        committed_(committed) {}
  uint64_t txn_id() const { return txn_id_; }
  bool committed() const { return committed_; }
  void EncodeBodyTo(BinaryWriter* w) const override;

 private:
  uint64_t txn_id_;
  bool committed_;
};

// ------------------------------------------------------------------ PBFT

/// PBFT pre-prepare: the group leader's proposal carrying the full entry.
class PrePrepareMsg : public ProtocolMessage {
 public:
  PrePrepareMsg(uint64_t view, uint64_t seq, EntryPtr entry, Signature sig)
      : ProtocolMessage(MessageType::kPrePrepare),
        view_(view),
        seq_(seq),
        entry_(std::move(entry)),
        sig_(sig) {}
  uint64_t view() const { return view_; }
  uint64_t seq() const { return seq_; }
  const EntryPtr& entry() const { return entry_; }
  const Signature& sig() const { return sig_; }
  void EncodeBodyTo(BinaryWriter* w) const override;
  bool TraceKey(uint16_t* gid, uint64_t* seq) const override {
    *gid = entry_->gid();
    *seq = entry_->seq();
    return true;
  }

 private:
  uint64_t view_;
  uint64_t seq_;
  EntryPtr entry_;
  Signature sig_;
};

/// PBFT prepare / commit votes (digest + signature).
class PbftVoteMsg : public ProtocolMessage {
 public:
  PbftVoteMsg(MessageType type, uint64_t view, uint64_t seq,
              const Digest& digest, Signature sig)
      : ProtocolMessage(type),
        view_(view),
        seq_(seq),
        digest_(digest),
        sig_(sig) {}
  uint64_t view() const { return view_; }
  uint64_t seq() const { return seq_; }
  const Digest& digest() const { return digest_; }
  const Signature& sig() const { return sig_; }
  void EncodeBodyTo(BinaryWriter* w) const override;

 private:
  uint64_t view_;
  uint64_t seq_;
  Digest digest_;
  Signature sig_;
};

/// PBFT view change / new view. The proof payload (prepared-certificate
/// set) is summarized as an opaque zero blob of the modeled size; the
/// fields that drive the protocol (new view, last sequence) are carried
/// for real.
class ViewChangeMsg : public ProtocolMessage {
 public:
  ViewChangeMsg(MessageType type, uint64_t new_view, uint64_t last_seq,
                size_t proof_bytes)
      : ProtocolMessage(type),
        new_view_(new_view),
        last_seq_(last_seq),
        proof_bytes_(proof_bytes) {}
  uint64_t new_view() const { return new_view_; }
  uint64_t last_seq() const { return last_seq_; }
  size_t proof_bytes() const { return proof_bytes_; }
  void EncodeBodyTo(BinaryWriter* w) const override;

 private:
  uint64_t new_view_;
  uint64_t last_seq_;
  size_t proof_bytes_;
};

/// Identifies a group-level decision being certified by skip-prepare
/// consensus: e.g. "group `voter_gid` accepts entry e_{target_gid,seq} and
/// stamps it with clock value ts".
struct DecisionId {
  uint8_t kind = 0;  // DigestCertifier::Kind.
  uint16_t voter_gid = 0;
  uint16_t target_gid = 0;
  uint64_t target_seq = 0;
  uint64_t ts = 0;

  void EncodeTo(BinaryWriter* w) const;
  [[nodiscard]] static Result<DecisionId> DecodeFrom(BinaryReader* r);

  friend bool operator==(const DecisionId&, const DecisionId&) = default;
  friend auto operator<=>(const DecisionId&, const DecisionId&) = default;
};

/// Leader -> group: request signatures over a decision (PBFT with the
/// prepare phase skipped; valid because the consensus input was already
/// certified by the proposing group — see the paper's Baseline and
/// Ziziphus).
class CertifyRequestMsg : public ProtocolMessage {
 public:
  CertifyRequestMsg(DecisionId decision, Signature sig)
      : ProtocolMessage(MessageType::kCertifyRequest),
        decision_(decision),
        sig_(sig) {}
  const DecisionId& decision() const { return decision_; }
  const Signature& sig() const { return sig_; }
  void EncodeBodyTo(BinaryWriter* w) const override;

 private:
  DecisionId decision_;
  Signature sig_;
};

/// Follower -> leader: signature share over the decision.
class CertifyVoteMsg : public ProtocolMessage {
 public:
  CertifyVoteMsg(DecisionId decision, Signature sig)
      : ProtocolMessage(MessageType::kCertifyVote),
        decision_(decision),
        sig_(sig) {}
  const DecisionId& decision() const { return decision_; }
  const Signature& sig() const { return sig_; }
  void EncodeBodyTo(BinaryWriter* w) const override;

 private:
  DecisionId decision_;
  Signature sig_;
};

// ------------------------------------------------- Replication payloads

/// A full entry copy with its local-consensus certificate.
class EntryTransferMsg : public ProtocolMessage {
 public:
  EntryTransferMsg(EntryPtr entry, Certificate cert)
      : ProtocolMessage(MessageType::kEntryTransfer),
        entry_(std::move(entry)),
        cert_(std::move(cert)) {}
  const EntryPtr& entry() const { return entry_; }
  const Certificate& cert() const { return cert_; }
  void EncodeBodyTo(BinaryWriter* w) const override;
  bool TraceKey(uint16_t* gid, uint64_t* seq) const override {
    *gid = entry_->gid();
    *seq = entry_->seq();
    return true;
  }

 private:
  EntryPtr entry_;
  Certificate cert_;
};

/// One erasure-coded chunk plus its Merkle proof.
struct Chunk {
  uint32_t chunk_id = 0;
  Bytes data;
  MerkleProof proof;

  void EncodeTo(BinaryWriter* w) const;
  [[nodiscard]] static Result<Chunk> DecodeFrom(BinaryReader* r);
  size_t ByteSize() const {
    return 4 + VarintSize(data.size()) + data.size() + proof.ByteSize();
  }
};

/// The chunks one sender node transfers to one receiver node (paper
/// Algorithm 1 gives contiguous chunk runs per sender/receiver pair), with
/// the Merkle root and entry certificate for optimistic rebuild.
class ChunkBatchMsg : public ProtocolMessage {
 public:
  ChunkBatchMsg(uint16_t gid, uint64_t seq, Digest merkle_root,
                Certificate cert, std::vector<Chunk> chunks, size_t entry_size)
      : ProtocolMessage(MessageType::kChunkBatch),
        gid_(gid),
        seq_(seq),
        merkle_root_(merkle_root),
        cert_(std::move(cert)),
        chunks_(std::move(chunks)),
        entry_size_(entry_size) {}

  uint16_t gid() const { return gid_; }
  uint64_t seq() const { return seq_; }
  const Digest& merkle_root() const { return merkle_root_; }
  const Certificate& cert() const { return cert_; }
  const std::vector<Chunk>& chunks() const { return chunks_; }
  size_t entry_size() const { return entry_size_; }
  void EncodeBodyTo(BinaryWriter* w) const override;
  bool TraceKey(uint16_t* gid, uint64_t* seq) const override {
    *gid = gid_;
    *seq = seq_;
    return true;
  }

 private:
  uint16_t gid_;
  uint64_t seq_;
  Digest merkle_root_;
  Certificate cert_;
  std::vector<Chunk> chunks_;
  size_t entry_size_;
};

// ------------------------------------------------------- Global control

/// One vector-timestamp element assignment: group `assigner_gid` stamps
/// entry e_{target_gid, target_seq} with its clock value `ts`.
struct TimestampElement {
  uint16_t assigner_gid = 0;
  uint16_t target_gid = 0;
  uint64_t target_seq = 0;
  uint64_t ts = 0;

  void EncodeTo(BinaryWriter* w) const;
  [[nodiscard]] static Result<TimestampElement> DecodeFrom(BinaryReader* r);

  static constexpr size_t kByteSize = 2 + 2 + 8 + 8;
  friend bool operator==(const TimestampElement&,
                         const TimestampElement&) = default;
};

/// Raft propose control message (leader group -> follower groups): the
/// entry digest + certificate; the payload itself travels via the
/// replication strategy. Carries piggybacked VTS assignments (MassBFT's
/// overlapped design).
class RaftProposeMsg : public ProtocolMessage {
 public:
  RaftProposeMsg(uint16_t gid, uint64_t seq, Digest digest, Certificate cert,
                 std::vector<TimestampElement> piggyback,
                 uint16_t origin_gid = 0, uint64_t origin_seq = 0)
      : ProtocolMessage(MessageType::kRaftPropose),
        gid_(gid),
        seq_(seq),
        digest_(digest),
        cert_(std::move(cert)),
        piggyback_(std::move(piggyback)),
        origin_gid_(origin_gid),
        origin_seq_(origin_seq) {}
  uint16_t gid() const { return gid_; }
  uint64_t seq() const { return seq_; }
  const Digest& digest() const { return digest_; }
  const Certificate& cert() const { return cert_; }
  const std::vector<TimestampElement>& piggyback() const { return piggyback_; }
  /// Steward: the (origin group, origin sequence) of the funneled entry
  /// proposed under the master's global sequence.
  uint16_t origin_gid() const { return origin_gid_; }
  uint64_t origin_seq() const { return origin_seq_; }
  void EncodeBodyTo(BinaryWriter* w) const override;
  bool TraceKey(uint16_t* gid, uint64_t* seq) const override {
    *gid = gid_;
    *seq = seq_;
    return true;
  }

 private:
  uint16_t gid_;
  uint64_t seq_;
  Digest digest_;
  Certificate cert_;
  std::vector<TimestampElement> piggyback_;
  uint16_t origin_gid_;
  uint64_t origin_seq_;
};

/// Raft accept: follower group's receipt for e_{gid,seq}, protected by a
/// certificate from the accepting group (PBFT skip-prepare, Ziziphus-style).
/// `ts` is the accepting group's clock assignment for the entry (MassBFT).
class RaftAcceptMsg : public ProtocolMessage {
 public:
  RaftAcceptMsg(uint16_t gid, uint64_t seq, uint16_t from_group,
                Certificate cert, uint64_t ts)
      : ProtocolMessage(MessageType::kRaftAccept),
        gid_(gid),
        seq_(seq),
        from_group_(from_group),
        cert_(std::move(cert)),
        ts_(ts) {}
  uint16_t gid() const { return gid_; }
  uint64_t seq() const { return seq_; }
  uint16_t from_group() const { return from_group_; }
  const Certificate& cert() const { return cert_; }
  uint64_t ts() const { return ts_; }
  void EncodeBodyTo(BinaryWriter* w) const override;

 private:
  uint16_t gid_;
  uint64_t seq_;
  uint16_t from_group_;
  Certificate cert_;
  uint64_t ts_;
};

/// Raft commit: proposer announces e_{gid,seq} is globally replicated.
class RaftCommitMsg : public ProtocolMessage {
 public:
  RaftCommitMsg(uint16_t gid, uint64_t seq, Certificate cert)
      : ProtocolMessage(MessageType::kRaftCommit),
        gid_(gid),
        seq_(seq),
        cert_(std::move(cert)) {}
  uint16_t gid() const { return gid_; }
  uint64_t seq() const { return seq_; }
  const Certificate& cert() const { return cert_; }
  void EncodeBodyTo(BinaryWriter* w) const override;

 private:
  uint16_t gid_;
  uint64_t seq_;
  Certificate cert_;
};

/// Standalone VTS replication for groups with no propose traffic to
/// piggyback on, and for crashed-group takeover (paper Section V-C).
class TimestampAssignMsg : public ProtocolMessage {
 public:
  explicit TimestampAssignMsg(std::vector<TimestampElement> elements,
                              bool replay = false)
      : ProtocolMessage(MessageType::kTimestampAssign),
        elements_(std::move(elements)),
        replay_(replay) {}
  const std::vector<TimestampElement>& elements() const { return elements_; }
  bool replay() const { return replay_; }
  void EncodeBodyTo(BinaryWriter* w) const override;

 private:
  std::vector<TimestampElement> elements_;
  bool replay_;
};

/// Marks the end of a catch-up replay stream (same FIFO link as the
/// replay messages, so its arrival means the history is fully delivered).
class CatchUpDoneMsg : public ProtocolMessage {
 public:
  CatchUpDoneMsg() : ProtocolMessage(MessageType::kCatchUpDone) {}
  void EncodeBodyTo(BinaryWriter* w) const override;
};

/// One global-consensus outcome relayed from a group leader to its group
/// members over LAN, so every node tracks commit/timestamp state.
struct RelayEvent {
  enum Type : uint8_t { kCommitted = 1, kTimestamp = 2 };
  uint8_t type = 0;
  uint16_t gid = 0;        // Proposer group of the entry.
  uint64_t seq = 0;        // Entry sequence.
  uint16_t assigner = 0;   // For kTimestamp: the stamping group.
  uint64_t ts = 0;         // For kTimestamp: the clock value.

  void EncodeTo(BinaryWriter* w) const;
  [[nodiscard]] static Result<RelayEvent> DecodeFrom(BinaryReader* r);

  static constexpr size_t kByteSize = 1 + 2 + 8 + 2 + 8;
};

/// Leader -> group members: batched raft outcomes. `replay` marks
/// catch-up history (applied ahead of buffered live events on a
/// recovering node, preserving per-assigner timestamp order).
class GroupRelayMsg : public ProtocolMessage {
 public:
  explicit GroupRelayMsg(std::vector<RelayEvent> events, bool replay = false)
      : ProtocolMessage(MessageType::kGroupRelay),
        events_(std::move(events)),
        replay_(replay) {}
  const std::vector<RelayEvent>& events() const { return events_; }
  bool replay() const { return replay_; }
  void EncodeBodyTo(BinaryWriter* w) const override;

 private:
  std::vector<RelayEvent> events_;
  bool replay_;
};

/// Group liveness heartbeat (crash detection for Raft leader takeover).
class GroupHeartbeatMsg : public ProtocolMessage {
 public:
  GroupHeartbeatMsg(uint16_t gid, uint64_t last_seq)
      : ProtocolMessage(MessageType::kGroupHeartbeat),
        gid_(gid),
        last_seq_(last_seq) {}
  uint16_t gid() const { return gid_; }
  uint64_t last_seq() const { return last_seq_; }
  void EncodeBodyTo(BinaryWriter* w) const override;

 private:
  uint16_t gid_;
  uint64_t last_seq_;
};

/// ISS epoch boundary marker: group `gid` declares `count` entries in
/// epoch `epoch`.
class EpochMarkerMsg : public ProtocolMessage {
 public:
  EpochMarkerMsg(uint16_t gid, uint64_t epoch, uint64_t count)
      : ProtocolMessage(MessageType::kEpochMarker),
        gid_(gid),
        epoch_(epoch),
        count_(count) {}
  uint16_t gid() const { return gid_; }
  uint64_t epoch() const { return epoch_; }
  uint64_t count() const { return count_; }
  void EncodeBodyTo(BinaryWriter* w) const override;

 private:
  uint16_t gid_;
  uint64_t epoch_;
  uint64_t count_;
};

/// Takeover freeze agreement: before assigning a crashed group's clock,
/// the takeover leader collects every alive leader's highest observed
/// stamp from that group, so the frozen value never regresses below a
/// stamp that reached only part of the cluster.
class FreezeMsg : public ProtocolMessage {
 public:
  FreezeMsg(MessageType type, uint16_t dead_gid, uint64_t max_seen)
      : ProtocolMessage(type), dead_gid_(dead_gid), max_seen_(max_seen) {}
  uint16_t dead_gid() const { return dead_gid_; }
  uint64_t max_seen() const { return max_seen_; }
  void EncodeBodyTo(BinaryWriter* w) const override;

 private:
  uint16_t dead_gid_;
  uint64_t max_seen_;
};

/// A recovered group's leader asks a peer group leader to replay what it
/// missed: entry payloads, commit decisions, and VTS assignments past the
/// requester's per-instance execution frontier.
class CatchUpRequestMsg : public ProtocolMessage {
 public:
  explicit CatchUpRequestMsg(std::vector<std::pair<uint16_t, uint64_t>>
                                 executed_next)
      : ProtocolMessage(MessageType::kCatchUpRequest),
        executed_next_(std::move(executed_next)) {}
  /// (gid, next sequence the requester would execute).
  const std::vector<std::pair<uint16_t, uint64_t>>& executed_next() const {
    return executed_next_;
  }
  void EncodeBodyTo(BinaryWriter* w) const override;

 private:
  std::vector<std::pair<uint16_t, uint64_t>> executed_next_;
};

/// Steward: a remote group forwards its locally-certified entry to the
/// global leader group, which alone may propose.
class LeaderForwardMsg : public ProtocolMessage {
 public:
  LeaderForwardMsg(EntryPtr entry, Certificate cert)
      : ProtocolMessage(MessageType::kLeaderForward),
        entry_(std::move(entry)),
        cert_(std::move(cert)) {}
  const EntryPtr& entry() const { return entry_; }
  const Certificate& cert() const { return cert_; }
  void EncodeBodyTo(BinaryWriter* w) const override;
  bool TraceKey(uint16_t* gid, uint64_t* seq) const override {
    *gid = entry_->gid();
    *seq = entry_->seq();
    return true;
  }

 private:
  EntryPtr entry_;
  Certificate cert_;
};

}  // namespace massbft

#endif  // MASSBFT_PROTO_MESSAGES_H_
