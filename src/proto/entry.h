#ifndef MASSBFT_PROTO_ENTRY_H_
#define MASSBFT_PROTO_ENTRY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/codec.h"
#include "common/result.h"
#include "crypto/sha256.h"
#include "crypto/signature.h"
#include "sim/time.h"

namespace massbft {

/// A client transaction as carried inside a log entry. `payload` is the
/// workload-encoded operation (YCSB/SmallBank/TPC-C, see workload/); its
/// length matches the paper's reported average transaction sizes.
struct Transaction {
  uint64_t id = 0;
  /// Issuing client (for reply routing) and its group.
  uint32_t client = 0;
  /// Client submit time; carried for end-to-end latency measurement.
  SimTime submit_time = 0;
  Bytes payload;

  void EncodeTo(BinaryWriter* w) const;
  [[nodiscard]] static Result<Transaction> DecodeFrom(BinaryReader* r);
  size_t ByteSize() const {
    return 8 + 4 + 8 + VarintSize(payload.size()) + payload.size();
  }

  friend bool operator==(const Transaction&, const Transaction&) = default;
};

/// A log entry (block): a batch of transactions proposed by group `gid`
/// with group-local sequence number `seq` (paper notation e_{gid,seq}).
/// Immutable after construction; shared by pointer across the simulation.
class Entry {
 public:
  Entry(uint16_t gid, uint64_t seq, std::vector<Transaction> txns);

  /// Decode-path constructor: adopts `encoded` as the canonical
  /// serialization instead of re-encoding the parsed fields. The caller
  /// (Entry::Decode) guarantees the bytes parse back to exactly these
  /// fields.
  Entry(uint16_t gid, uint64_t seq, std::vector<Transaction> txns,
        Bytes encoded);

  uint16_t gid() const { return gid_; }
  uint64_t seq() const { return seq_; }
  const std::vector<Transaction>& txns() const { return txns_; }
  int num_txns() const { return static_cast<int>(txns_.size()); }

  /// Canonical serialized form; chunks are carved from these bytes.
  const Bytes& Encoded() const { return encoded_; }
  size_t ByteSize() const { return encoded_.size(); }

  /// SHA-256 of the canonical encoding — the value certificates sign.
  /// Memoized on first use, so the N nodes sharing this immutable entry
  /// hash it once instead of once per verifier. (Lazy init is not
  /// thread-safe; the simulation is single-threaded.)
  const Digest& digest() const {
    if (!digest_valid_) {
      digest_ = Sha256::Hash(encoded_);
      digest_valid_ = true;
    }
    return digest_;
  }

  [[nodiscard]] static Result<std::shared_ptr<const Entry>> Decode(
      const Bytes& encoded);

 private:
  uint16_t gid_;
  uint64_t seq_;
  std::vector<Transaction> txns_;
  Bytes encoded_;
  mutable Digest digest_{};
  mutable bool digest_valid_ = false;
};

using EntryPtr = std::shared_ptr<const Entry>;

/// PBFT certificate: >= 2f+1 signatures from one group over an entry (or
/// decision) digest. Protects entries from tampering during global
/// replication (paper Section II-A).
struct Certificate {
  uint16_t gid = 0;
  Digest digest{};
  std::vector<std::pair<NodeId, Signature>> sigs;

  void EncodeTo(BinaryWriter* w) const;
  [[nodiscard]] static Result<Certificate> DecodeFrom(BinaryReader* r);
  size_t ByteSize() const { return 2 + 32 + 2 + sigs.size() * (4 + 64); }

  /// True if the certificate carries at least `quorum` valid signatures
  /// from distinct nodes of group `gid` over `digest`.
  [[nodiscard]] bool Verify(const KeyRegistry& registry, int quorum) const;
};

}  // namespace massbft

#endif  // MASSBFT_PROTO_ENTRY_H_
