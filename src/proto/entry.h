#ifndef MASSBFT_PROTO_ENTRY_H_
#define MASSBFT_PROTO_ENTRY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/codec.h"
#include "common/result.h"
#include "crypto/sha256.h"
#include "crypto/signature.h"
#include "sim/time.h"

namespace massbft {

/// A client transaction as carried inside a log entry. `payload` is the
/// workload-encoded operation (YCSB/SmallBank/TPC-C, see workload/); its
/// length matches the paper's reported average transaction sizes.
struct Transaction {
  uint64_t id = 0;
  /// Issuing client (for reply routing) and its group.
  uint32_t client = 0;
  /// Client submit time; carried for end-to-end latency measurement.
  SimTime submit_time = 0;
  Bytes payload;

  void EncodeTo(BinaryWriter* w) const;
  [[nodiscard]] static Result<Transaction> DecodeFrom(BinaryReader* r);
  size_t ByteSize() const {
    return 8 + 4 + 8 + VarintSize(payload.size()) + payload.size();
  }

  friend bool operator==(const Transaction&, const Transaction&) = default;
};

/// A log entry (block): a batch of transactions proposed by group `gid`
/// with group-local sequence number `seq` (paper notation e_{gid,seq}).
/// Immutable after construction; shared by pointer across the simulation.
class Entry {
 public:
  Entry(uint16_t gid, uint64_t seq, std::vector<Transaction> txns);

  /// Decode-path constructor: adopts `encoded` as the canonical
  /// serialization instead of re-encoding the parsed fields. The caller
  /// (Entry::Decode) guarantees the bytes parse back to exactly these
  /// fields.
  Entry(uint16_t gid, uint64_t seq, std::vector<Transaction> txns,
        Bytes encoded);

  uint16_t gid() const { return gid_; }
  uint64_t seq() const { return seq_; }
  const std::vector<Transaction>& txns() const { return txns_; }
  int num_txns() const { return static_cast<int>(txns_.size()); }

  /// Canonical serialized form; chunks are carved from these bytes.
  const Bytes& Encoded() const { return encoded_; }
  size_t ByteSize() const { return encoded_.size(); }

  /// SHA-256 of the canonical encoding — the value certificates sign.
  /// Memoized on first use, so the N nodes sharing this immutable entry
  /// hash it once instead of once per verifier. (Lazy init is not
  /// thread-safe; the simulation is single-threaded.)
  const Digest& digest() const {
    if (!digest_valid_) {
      digest_ = Sha256::Hash(encoded_);
      digest_valid_ = true;
    }
    return digest_;
  }

  [[nodiscard]] static Result<std::shared_ptr<const Entry>> Decode(
      const Bytes& encoded);

 private:
  uint16_t gid_;
  uint64_t seq_;
  std::vector<Transaction> txns_;
  Bytes encoded_;
  mutable Digest digest_{};
  mutable bool digest_valid_ = false;
};

using EntryPtr = std::shared_ptr<const Entry>;

/// PBFT certificate: >= 2f+1 signatures from one group over an entry (or
/// decision) digest. Protects entries from tampering during global
/// replication (paper Section II-A).
///
/// Compact representation (wire v3, DESIGN.md §17): signers are recorded
/// as an ordered participation bitmap over node indices of group `gid`
/// (bit i = node {gid, i} signed), and the signatures ride in a parallel
/// array sorted by index. Versus the old explicit (NodeId, Signature)
/// pair list this drops the per-signature 4-byte id to ~1/8 byte, makes
/// duplicate signers unrepresentable, and makes foreign-group signers
/// unencodable — two whole classes of malformed certificate gone by
/// construction.
class Certificate {
 public:
  uint16_t gid = 0;
  Digest digest{};

  /// Records node {gid, index}'s signature. Idempotent: re-adding an
  /// index keeps the first signature (duplicates can't inflate a quorum).
  void AddSignature(uint16_t index, const Signature& sig);

  [[nodiscard]] size_t NumSignatures() const { return sigs_.size(); }
  [[nodiscard]] bool HasSigner(uint16_t index) const;
  /// Signer indices in ascending order.
  [[nodiscard]] std::vector<uint16_t> Signers() const;
  /// Signatures in ascending signer-index order, parallel to Signers().
  const std::vector<Signature>& Signatures() const { return sigs_; }

  void EncodeTo(BinaryWriter* w) const;
  [[nodiscard]] static Result<Certificate> DecodeFrom(BinaryReader* r);
  /// Derived, not hardcoded: header + bitmap + packed signature array.
  size_t ByteSize() const {
    return 2 + digest.size() + 2 + bitmap_.size() +
           sigs_.size() * sizeof(Signature);
  }

  /// True if the certificate carries at least `quorum` valid signatures
  /// over `digest`. The hot path batch-verifies all signatures in one
  /// pass (one multi-scalar multiplication under ed25519); only if that
  /// combined check fails does it fall back to per-signature verification
  /// to count the valid ones — and, when `forgers` is non-null, to name
  /// the indices whose signatures failed.
  [[nodiscard]] bool Verify(const KeyRegistry& registry, int quorum,
                            std::vector<uint16_t>* forgers = nullptr) const;

  friend bool operator==(const Certificate&, const Certificate&) = default;

 private:
  /// Participation bitmap, little-endian within each byte (bit i of byte
  /// b = node index 8*b + i). Canonical: never has a trailing zero byte.
  Bytes bitmap_;
  std::vector<Signature> sigs_;
};

}  // namespace massbft

#endif  // MASSBFT_PROTO_ENTRY_H_
