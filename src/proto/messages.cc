#include "proto/messages.h"

#include <utility>

namespace massbft {

// Per-message canonical body layouts (DESIGN.md §12). Every encoder here
// has exactly one decoder inverse in DecodeMessageBody; ByteSize() runs
// these encoders, so simulated byte accounting and the real transport agree
// by construction.

namespace {

/// Decode-side sanity bound on repeated-element counts: no legitimate
/// message carries more elements than bytes remaining in its body.
Status CheckCount(uint64_t count, const BinaryReader& r) {
  if (count > r.Remaining())
    return Status::Corruption("implausible element count");
  return Status::OK();
}

void PutSignature(BinaryWriter* w, const Signature& sig) {
  w->PutRaw(sig.data(), sig.size());
}

Status GetSignature(BinaryReader* r, Signature* sig) {
  return r->GetRaw(sig->data(), sig->size());
}

void PutDigest(BinaryWriter* w, const Digest& d) {
  w->PutRaw(d.data(), d.size());
}

Status GetDigest(BinaryReader* r, Digest* d) {
  return r->GetRaw(d->data(), d->size());
}

/// Entries travel as a length-prefixed blob of their canonical encoding.
void PutEntry(BinaryWriter* w, const EntryPtr& entry) {
  w->PutBytes(entry->Encoded());
}

Result<EntryPtr> GetEntry(BinaryReader* r) {
  Bytes blob;
  MASSBFT_RETURN_IF_ERROR(r->GetBytes(&blob));
  return Entry::Decode(blob);
}

}  // namespace

// ---------------------------------------------------------------- Structs

void DecisionId::EncodeTo(BinaryWriter* w) const {
  w->PutU8(kind);
  w->PutU16(voter_gid);
  w->PutU16(target_gid);
  w->PutU64(target_seq);
  w->PutU64(ts);
}

Result<DecisionId> DecisionId::DecodeFrom(BinaryReader* r) {
  DecisionId d;
  MASSBFT_RETURN_IF_ERROR(r->GetU8(&d.kind));
  MASSBFT_RETURN_IF_ERROR(r->GetU16(&d.voter_gid));
  MASSBFT_RETURN_IF_ERROR(r->GetU16(&d.target_gid));
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&d.target_seq));
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&d.ts));
  return d;
}

void Chunk::EncodeTo(BinaryWriter* w) const {
  w->PutU32(chunk_id);
  w->PutBytes(data);
  proof.EncodeTo(w);
}

Result<Chunk> Chunk::DecodeFrom(BinaryReader* r) {
  Chunk c;
  MASSBFT_RETURN_IF_ERROR(r->GetU32(&c.chunk_id));
  MASSBFT_RETURN_IF_ERROR(r->GetBytes(&c.data));
  MASSBFT_ASSIGN_OR_RETURN(c.proof, MerkleProof::DecodeFrom(r));
  return c;
}

void TimestampElement::EncodeTo(BinaryWriter* w) const {
  w->PutU16(assigner_gid);
  w->PutU16(target_gid);
  w->PutU64(target_seq);
  w->PutU64(ts);
}

Result<TimestampElement> TimestampElement::DecodeFrom(BinaryReader* r) {
  TimestampElement e;
  MASSBFT_RETURN_IF_ERROR(r->GetU16(&e.assigner_gid));
  MASSBFT_RETURN_IF_ERROR(r->GetU16(&e.target_gid));
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&e.target_seq));
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&e.ts));
  return e;
}

void RelayEvent::EncodeTo(BinaryWriter* w) const {
  w->PutU8(type);
  w->PutU16(gid);
  w->PutU64(seq);
  w->PutU16(assigner);
  w->PutU64(ts);
}

Result<RelayEvent> RelayEvent::DecodeFrom(BinaryReader* r) {
  RelayEvent e;
  MASSBFT_RETURN_IF_ERROR(r->GetU8(&e.type));
  MASSBFT_RETURN_IF_ERROR(r->GetU16(&e.gid));
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&e.seq));
  MASSBFT_RETURN_IF_ERROR(r->GetU16(&e.assigner));
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&e.ts));
  return e;
}

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kClientRequest:
      return "client_request";
    case MessageType::kClientReply:
      return "client_reply";
    case MessageType::kPrePrepare:
      return "pre_prepare";
    case MessageType::kPrepare:
      return "prepare";
    case MessageType::kCommit:
      return "commit";
    case MessageType::kViewChange:
      return "view_change";
    case MessageType::kNewView:
      return "new_view";
    case MessageType::kCertifyRequest:
      return "certify_request";
    case MessageType::kCertifyVote:
      return "certify_vote";
    case MessageType::kEntryTransfer:
      return "entry_transfer";
    case MessageType::kChunkBatch:
      return "chunk_batch";
    case MessageType::kRaftPropose:
      return "raft_propose";
    case MessageType::kRaftAccept:
      return "raft_accept";
    case MessageType::kRaftCommit:
      return "raft_commit";
    case MessageType::kTimestampAssign:
      return "timestamp_assign";
    case MessageType::kGroupHeartbeat:
      return "group_heartbeat";
    case MessageType::kGroupRelay:
      return "group_relay";
    case MessageType::kEpochMarker:
      return "epoch_marker";
    case MessageType::kLeaderForward:
      return "leader_forward";
    case MessageType::kCatchUpRequest:
      return "catch_up_request";
    case MessageType::kFreezeQuery:
      return "freeze_query";
    case MessageType::kFreezeReport:
      return "freeze_report";
    case MessageType::kCatchUpDone:
      return "catch_up_done";
  }
  return "unknown";
}

// --------------------------------------------------------------- Encoders

void ClientRequestMsg::EncodeBodyTo(BinaryWriter* w) const {
  txn_.EncodeTo(w);
}

void ClientReplyMsg::EncodeBodyTo(BinaryWriter* w) const {
  w->PutU64(txn_id_);
  w->PutU8(committed_ ? 1 : 0);
}

void PrePrepareMsg::EncodeBodyTo(BinaryWriter* w) const {
  w->PutU64(view_);
  w->PutU64(seq_);
  PutEntry(w, entry_);
  PutSignature(w, sig_);
}

void PbftVoteMsg::EncodeBodyTo(BinaryWriter* w) const {
  w->PutU64(view_);
  w->PutU64(seq_);
  PutDigest(w, digest_);
  PutSignature(w, sig_);
}

void ViewChangeMsg::EncodeBodyTo(BinaryWriter* w) const {
  w->PutU64(new_view_);
  w->PutU64(last_seq_);
  // The prepared-certificate proof set is summarized as an opaque blob of
  // the modeled size (documented substitution, DESIGN.md §12): the wire
  // carries `proof_bytes_` zeros so real frames cost what the model charges.
  w->PutVarint(proof_bytes_);
  for (size_t i = 0; i < proof_bytes_; ++i) w->PutU8(0);
}

void CertifyRequestMsg::EncodeBodyTo(BinaryWriter* w) const {
  decision_.EncodeTo(w);
  PutSignature(w, sig_);
}

void CertifyVoteMsg::EncodeBodyTo(BinaryWriter* w) const {
  decision_.EncodeTo(w);
  PutSignature(w, sig_);
}

void EntryTransferMsg::EncodeBodyTo(BinaryWriter* w) const {
  PutEntry(w, entry_);
  cert_.EncodeTo(w);
}

void ChunkBatchMsg::EncodeBodyTo(BinaryWriter* w) const {
  w->PutU16(gid_);
  w->PutU64(seq_);
  PutDigest(w, merkle_root_);
  w->PutU64(entry_size_);
  cert_.EncodeTo(w);
  w->PutVarint(chunks_.size());
  for (const Chunk& c : chunks_) c.EncodeTo(w);
}

void RaftProposeMsg::EncodeBodyTo(BinaryWriter* w) const {
  w->PutU16(gid_);
  w->PutU64(seq_);
  PutDigest(w, digest_);
  cert_.EncodeTo(w);
  w->PutU16(origin_gid_);
  w->PutU64(origin_seq_);
  w->PutVarint(piggyback_.size());
  for (const TimestampElement& e : piggyback_) e.EncodeTo(w);
}

void RaftAcceptMsg::EncodeBodyTo(BinaryWriter* w) const {
  w->PutU16(gid_);
  w->PutU64(seq_);
  w->PutU16(from_group_);
  w->PutU64(ts_);
  cert_.EncodeTo(w);
}

void RaftCommitMsg::EncodeBodyTo(BinaryWriter* w) const {
  w->PutU16(gid_);
  w->PutU64(seq_);
  cert_.EncodeTo(w);
}

void TimestampAssignMsg::EncodeBodyTo(BinaryWriter* w) const {
  w->PutU8(replay_ ? 1 : 0);
  w->PutVarint(elements_.size());
  for (const TimestampElement& e : elements_) e.EncodeTo(w);
}

void CatchUpDoneMsg::EncodeBodyTo(BinaryWriter*) const {}

void GroupRelayMsg::EncodeBodyTo(BinaryWriter* w) const {
  w->PutU8(replay_ ? 1 : 0);
  w->PutVarint(events_.size());
  for (const RelayEvent& e : events_) e.EncodeTo(w);
}

void GroupHeartbeatMsg::EncodeBodyTo(BinaryWriter* w) const {
  w->PutU16(gid_);
  w->PutU64(last_seq_);
}

void EpochMarkerMsg::EncodeBodyTo(BinaryWriter* w) const {
  w->PutU16(gid_);
  w->PutU64(epoch_);
  w->PutU64(count_);
}

void FreezeMsg::EncodeBodyTo(BinaryWriter* w) const {
  w->PutU16(dead_gid_);
  w->PutU64(max_seen_);
}

void CatchUpRequestMsg::EncodeBodyTo(BinaryWriter* w) const {
  w->PutVarint(executed_next_.size());
  for (const auto& [gid, next] : executed_next_) {
    w->PutU16(gid);
    w->PutU64(next);
  }
}

void LeaderForwardMsg::EncodeBodyTo(BinaryWriter* w) const {
  PutEntry(w, entry_);
  cert_.EncodeTo(w);
}

// ---------------------------------------------------------------- Decoder

namespace {

using MsgResult = Result<std::unique_ptr<ProtocolMessage>>;

MsgResult DecodeClientRequest(BinaryReader* r) {
  MASSBFT_ASSIGN_OR_RETURN(Transaction txn, Transaction::DecodeFrom(r));
  return std::unique_ptr<ProtocolMessage>(
      std::make_unique<ClientRequestMsg>(std::move(txn)));
}

MsgResult DecodeClientReply(BinaryReader* r) {
  uint64_t txn_id = 0;
  uint8_t committed = 0;
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&txn_id));
  MASSBFT_RETURN_IF_ERROR(r->GetU8(&committed));
  return std::unique_ptr<ProtocolMessage>(
      std::make_unique<ClientReplyMsg>(txn_id, committed != 0));
}

MsgResult DecodePrePrepare(BinaryReader* r) {
  uint64_t view = 0;
  uint64_t seq = 0;
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&view));
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&seq));
  MASSBFT_ASSIGN_OR_RETURN(EntryPtr entry, GetEntry(r));
  Signature sig;
  MASSBFT_RETURN_IF_ERROR(GetSignature(r, &sig));
  return std::unique_ptr<ProtocolMessage>(
      std::make_unique<PrePrepareMsg>(view, seq, std::move(entry), sig));
}

MsgResult DecodePbftVote(MessageType type, BinaryReader* r) {
  uint64_t view = 0;
  uint64_t seq = 0;
  Digest digest{};
  Signature sig;
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&view));
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&seq));
  MASSBFT_RETURN_IF_ERROR(GetDigest(r, &digest));
  MASSBFT_RETURN_IF_ERROR(GetSignature(r, &sig));
  return std::unique_ptr<ProtocolMessage>(
      std::make_unique<PbftVoteMsg>(type, view, seq, digest, sig));
}

MsgResult DecodeViewChange(MessageType type, BinaryReader* r) {
  uint64_t new_view = 0;
  uint64_t last_seq = 0;
  Bytes proof;
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&new_view));
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&last_seq));
  MASSBFT_RETURN_IF_ERROR(r->GetBytes(&proof));
  return std::unique_ptr<ProtocolMessage>(std::make_unique<ViewChangeMsg>(
      type, new_view, last_seq, proof.size()));
}

MsgResult DecodeCertify(MessageType type, BinaryReader* r) {
  MASSBFT_ASSIGN_OR_RETURN(DecisionId decision, DecisionId::DecodeFrom(r));
  Signature sig;
  MASSBFT_RETURN_IF_ERROR(GetSignature(r, &sig));
  if (type == MessageType::kCertifyRequest)
    return std::unique_ptr<ProtocolMessage>(
        std::make_unique<CertifyRequestMsg>(decision, sig));
  return std::unique_ptr<ProtocolMessage>(
      std::make_unique<CertifyVoteMsg>(decision, sig));
}

MsgResult DecodeEntryTransfer(BinaryReader* r) {
  MASSBFT_ASSIGN_OR_RETURN(EntryPtr entry, GetEntry(r));
  MASSBFT_ASSIGN_OR_RETURN(Certificate cert, Certificate::DecodeFrom(r));
  return std::unique_ptr<ProtocolMessage>(
      std::make_unique<EntryTransferMsg>(std::move(entry), std::move(cert)));
}

MsgResult DecodeChunkBatch(BinaryReader* r) {
  uint16_t gid = 0;
  uint64_t seq = 0;
  Digest root{};
  uint64_t entry_size = 0;
  MASSBFT_RETURN_IF_ERROR(r->GetU16(&gid));
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&seq));
  MASSBFT_RETURN_IF_ERROR(GetDigest(r, &root));
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&entry_size));
  MASSBFT_ASSIGN_OR_RETURN(Certificate cert, Certificate::DecodeFrom(r));
  uint64_t count = 0;
  MASSBFT_RETURN_IF_ERROR(r->GetVarint(&count));
  MASSBFT_RETURN_IF_ERROR(CheckCount(count, *r));
  std::vector<Chunk> chunks;
  chunks.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    MASSBFT_ASSIGN_OR_RETURN(Chunk c, Chunk::DecodeFrom(r));
    chunks.push_back(std::move(c));
  }
  return std::unique_ptr<ProtocolMessage>(std::make_unique<ChunkBatchMsg>(
      gid, seq, root, std::move(cert), std::move(chunks), entry_size));
}

MsgResult DecodeRaftPropose(BinaryReader* r) {
  uint16_t gid = 0;
  uint64_t seq = 0;
  Digest digest{};
  uint16_t origin_gid = 0;
  uint64_t origin_seq = 0;
  MASSBFT_RETURN_IF_ERROR(r->GetU16(&gid));
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&seq));
  MASSBFT_RETURN_IF_ERROR(GetDigest(r, &digest));
  MASSBFT_ASSIGN_OR_RETURN(Certificate cert, Certificate::DecodeFrom(r));
  MASSBFT_RETURN_IF_ERROR(r->GetU16(&origin_gid));
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&origin_seq));
  uint64_t count = 0;
  MASSBFT_RETURN_IF_ERROR(r->GetVarint(&count));
  MASSBFT_RETURN_IF_ERROR(CheckCount(count, *r));
  std::vector<TimestampElement> piggyback;
  piggyback.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    MASSBFT_ASSIGN_OR_RETURN(TimestampElement e,
                             TimestampElement::DecodeFrom(r));
    piggyback.push_back(e);
  }
  return std::unique_ptr<ProtocolMessage>(std::make_unique<RaftProposeMsg>(
      gid, seq, digest, std::move(cert), std::move(piggyback), origin_gid,
      origin_seq));
}

MsgResult DecodeRaftAccept(BinaryReader* r) {
  uint16_t gid = 0;
  uint64_t seq = 0;
  uint16_t from_group = 0;
  uint64_t ts = 0;
  MASSBFT_RETURN_IF_ERROR(r->GetU16(&gid));
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&seq));
  MASSBFT_RETURN_IF_ERROR(r->GetU16(&from_group));
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&ts));
  MASSBFT_ASSIGN_OR_RETURN(Certificate cert, Certificate::DecodeFrom(r));
  return std::unique_ptr<ProtocolMessage>(std::make_unique<RaftAcceptMsg>(
      gid, seq, from_group, std::move(cert), ts));
}

MsgResult DecodeRaftCommit(BinaryReader* r) {
  uint16_t gid = 0;
  uint64_t seq = 0;
  MASSBFT_RETURN_IF_ERROR(r->GetU16(&gid));
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&seq));
  MASSBFT_ASSIGN_OR_RETURN(Certificate cert, Certificate::DecodeFrom(r));
  return std::unique_ptr<ProtocolMessage>(
      std::make_unique<RaftCommitMsg>(gid, seq, std::move(cert)));
}

MsgResult DecodeTimestampAssign(BinaryReader* r) {
  uint8_t replay = 0;
  uint64_t count = 0;
  MASSBFT_RETURN_IF_ERROR(r->GetU8(&replay));
  MASSBFT_RETURN_IF_ERROR(r->GetVarint(&count));
  MASSBFT_RETURN_IF_ERROR(CheckCount(count, *r));
  std::vector<TimestampElement> elements;
  elements.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    MASSBFT_ASSIGN_OR_RETURN(TimestampElement e,
                             TimestampElement::DecodeFrom(r));
    elements.push_back(e);
  }
  return std::unique_ptr<ProtocolMessage>(std::make_unique<TimestampAssignMsg>(
      std::move(elements), replay != 0));
}

MsgResult DecodeGroupRelay(BinaryReader* r) {
  uint8_t replay = 0;
  uint64_t count = 0;
  MASSBFT_RETURN_IF_ERROR(r->GetU8(&replay));
  MASSBFT_RETURN_IF_ERROR(r->GetVarint(&count));
  MASSBFT_RETURN_IF_ERROR(CheckCount(count, *r));
  std::vector<RelayEvent> events;
  events.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    MASSBFT_ASSIGN_OR_RETURN(RelayEvent e, RelayEvent::DecodeFrom(r));
    events.push_back(e);
  }
  return std::unique_ptr<ProtocolMessage>(
      std::make_unique<GroupRelayMsg>(std::move(events), replay != 0));
}

MsgResult DecodeGroupHeartbeat(BinaryReader* r) {
  uint16_t gid = 0;
  uint64_t last_seq = 0;
  MASSBFT_RETURN_IF_ERROR(r->GetU16(&gid));
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&last_seq));
  return std::unique_ptr<ProtocolMessage>(
      std::make_unique<GroupHeartbeatMsg>(gid, last_seq));
}

MsgResult DecodeEpochMarker(BinaryReader* r) {
  uint16_t gid = 0;
  uint64_t epoch = 0;
  uint64_t count = 0;
  MASSBFT_RETURN_IF_ERROR(r->GetU16(&gid));
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&epoch));
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&count));
  return std::unique_ptr<ProtocolMessage>(
      std::make_unique<EpochMarkerMsg>(gid, epoch, count));
}

MsgResult DecodeFreeze(MessageType type, BinaryReader* r) {
  uint16_t dead_gid = 0;
  uint64_t max_seen = 0;
  MASSBFT_RETURN_IF_ERROR(r->GetU16(&dead_gid));
  MASSBFT_RETURN_IF_ERROR(r->GetU64(&max_seen));
  return std::unique_ptr<ProtocolMessage>(
      std::make_unique<FreezeMsg>(type, dead_gid, max_seen));
}

MsgResult DecodeCatchUpRequest(BinaryReader* r) {
  uint64_t count = 0;
  MASSBFT_RETURN_IF_ERROR(r->GetVarint(&count));
  MASSBFT_RETURN_IF_ERROR(CheckCount(count, *r));
  std::vector<std::pair<uint16_t, uint64_t>> executed_next;
  executed_next.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint16_t gid = 0;
    uint64_t next = 0;
    MASSBFT_RETURN_IF_ERROR(r->GetU16(&gid));
    MASSBFT_RETURN_IF_ERROR(r->GetU64(&next));
    executed_next.emplace_back(gid, next);
  }
  return std::unique_ptr<ProtocolMessage>(
      std::make_unique<CatchUpRequestMsg>(std::move(executed_next)));
}

MsgResult DecodeLeaderForward(BinaryReader* r) {
  MASSBFT_ASSIGN_OR_RETURN(EntryPtr entry, GetEntry(r));
  MASSBFT_ASSIGN_OR_RETURN(Certificate cert, Certificate::DecodeFrom(r));
  return std::unique_ptr<ProtocolMessage>(
      std::make_unique<LeaderForwardMsg>(std::move(entry), std::move(cert)));
}

MsgResult DecodeBodySwitch(MessageType type, BinaryReader* r) {
  switch (type) {
    case MessageType::kClientRequest:
      return DecodeClientRequest(r);
    case MessageType::kClientReply:
      return DecodeClientReply(r);
    case MessageType::kPrePrepare:
      return DecodePrePrepare(r);
    case MessageType::kPrepare:
    case MessageType::kCommit:
      return DecodePbftVote(type, r);
    case MessageType::kViewChange:
    case MessageType::kNewView:
      return DecodeViewChange(type, r);
    case MessageType::kCertifyRequest:
    case MessageType::kCertifyVote:
      return DecodeCertify(type, r);
    case MessageType::kEntryTransfer:
      return DecodeEntryTransfer(r);
    case MessageType::kChunkBatch:
      return DecodeChunkBatch(r);
    case MessageType::kRaftPropose:
      return DecodeRaftPropose(r);
    case MessageType::kRaftAccept:
      return DecodeRaftAccept(r);
    case MessageType::kRaftCommit:
      return DecodeRaftCommit(r);
    case MessageType::kTimestampAssign:
      return DecodeTimestampAssign(r);
    case MessageType::kGroupHeartbeat:
      return DecodeGroupHeartbeat(r);
    case MessageType::kGroupRelay:
      return DecodeGroupRelay(r);
    case MessageType::kEpochMarker:
      return DecodeEpochMarker(r);
    case MessageType::kLeaderForward:
      return DecodeLeaderForward(r);
    case MessageType::kCatchUpRequest:
      return DecodeCatchUpRequest(r);
    case MessageType::kFreezeQuery:
    case MessageType::kFreezeReport:
      return DecodeFreeze(type, r);
    case MessageType::kCatchUpDone:
      return std::unique_ptr<ProtocolMessage>(
          std::make_unique<CatchUpDoneMsg>());
  }
  return Status::Corruption("unknown message type");
}

}  // namespace

Result<std::unique_ptr<ProtocolMessage>> DecodeMessageBody(MessageType type,
                                                           BinaryReader* r) {
  MASSBFT_ASSIGN_OR_RETURN(std::unique_ptr<ProtocolMessage> msg,
                           DecodeBodySwitch(type, r));
  if (!r->AtEnd()) return Status::Corruption("trailing bytes after message");
  return msg;
}

}  // namespace massbft
